package cluster

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/heuristic"
	"repro/internal/isa"
	"repro/internal/reach"
	"repro/internal/trace"
	"repro/internal/workload"
)

// pipeline runs the full analysis pipeline for a program and returns
// the trace and the profile-based spawn table.
func pipeline(t *testing.T, p *isa.Program, sel core.Config) (*trace.Trace, *core.Table, *emu.Profile) {
	t.Helper()
	res, err := emu.Run(p, emu.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(res.Profile).Prune(0.9, 256)
	if err != nil {
		t.Fatal(err)
	}
	r, err := reach.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := core.Select(res.Profile, g, r, res.Trace, sel)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace, tab, res.Profile
}

func TestSingleTUBaselineSanity(t *testing.T) {
	tr, _, _ := pipeline(t, workload.KernelIndependentMap(64, 8), core.Config{})
	res, err := Simulate(tr, Config{TUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != int64(tr.Len()) {
		t.Errorf("committed %d != trace %d", res.Committed, tr.Len())
	}
	if res.IPC <= 0.5 || res.IPC > 4 {
		t.Errorf("suspicious baseline IPC %v", res.IPC)
	}
	if res.Spawns != 0 || res.ThreadsCommitted != 0 {
		t.Error("baseline must not spawn")
	}
	if res.AvgActiveThreads > 1.0001 {
		t.Errorf("baseline active threads %v > 1", res.AvgActiveThreads)
	}
}

func TestSpeculationBeatsBaseline(t *testing.T) {
	tr, tab, _ := pipeline(t, workload.KernelIndependentMap(128, 16), core.Config{})
	base, err := Simulate(tr, Config{TUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Simulate(tr, Config{TUs: 16, Pairs: tab})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cycles >= base.Cycles {
		t.Errorf("16-TU run (%d cycles) not faster than baseline (%d)", spec.Cycles, base.Cycles)
	}
	if spec.Spawns == 0 {
		t.Error("no threads spawned on an ideal map loop")
	}
	if spec.AvgActiveThreads < 2 {
		t.Errorf("average active threads %v too low", spec.AvgActiveThreads)
	}
}

func TestMoreTUsNeverMuchWorse(t *testing.T) {
	tr, tab, _ := pipeline(t, workload.MustGenerate("m88ksim", workload.SizeTest), core.Config{})
	var prev int64
	for i, tus := range []int{2, 4, 8, 16} {
		res, err := Simulate(tr, Config{TUs: tus, Pairs: tab})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && float64(res.Cycles) > 1.1*float64(prev) {
			t.Errorf("TUs=%d cycles %d much worse than fewer TUs %d", tus, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// TestCommittedAlwaysTraceLength: whatever the policy mix, the committed
// instruction count must equal the trace length (architectural
// correctness of the speculation machinery).
func TestCommittedAlwaysTraceLength(t *testing.T) {
	tr, tab, pr := pipeline(t, workload.MustGenerate("compress", workload.SizeTest), core.Config{})
	htab := heuristic.Pairs(pr.Program, pr, tr, heuristic.Combined, heuristic.Config{})
	configs := []Config{
		{TUs: 1},
		{TUs: 4, Pairs: tab},
		{TUs: 16, Pairs: tab},
		{TUs: 16, Pairs: tab, Predictor: Stride},
		{TUs: 16, Pairs: tab, Predictor: Context, SpawnOverhead: 8},
		{TUs: 16, Pairs: tab, RemovalCycles: 50},
		{TUs: 16, Pairs: tab, RemovalCycles: 50, RemovalOccurrences: 8},
		{TUs: 16, Pairs: tab, Reassign: true},
		{TUs: 16, Pairs: tab, MinThreadSize: 32},
		{TUs: 16, Pairs: htab},
		{TUs: 16, Pairs: htab, Predictor: Stride, SpawnOverhead: 8},
		{TUs: 16, Pairs: tab, SpawnWindowFactor: 4},
	}
	for i, cfgSim := range configs {
		res, err := Simulate(tr, cfgSim)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if res.Committed != int64(tr.Len()) {
			t.Errorf("config %d: committed %d != %d", i, res.Committed, tr.Len())
		}
		if res.Fetched < res.Committed {
			t.Errorf("config %d: fetched %d < committed %d", i, res.Fetched, res.Committed)
		}
		if res.Cycles <= 0 {
			t.Errorf("config %d: cycles %d", i, res.Cycles)
		}
	}
}

func TestPerfectPredictionNoValidationSquash(t *testing.T) {
	tr, tab, _ := pipeline(t, workload.MustGenerate("ijpeg", workload.SizeTest), core.Config{})
	res, err := Simulate(tr, Config{TUs: 16, Pairs: tab, Predictor: Perfect})
	if err != nil {
		t.Fatal(err)
	}
	if res.MispredictStalls != 0 {
		t.Errorf("perfect prediction produced %d validation squashes", res.MispredictStalls)
	}
	if res.VPLookups != 0 {
		t.Errorf("perfect prediction counted %d lookups", res.VPLookups)
	}
}

func TestStridePredictorMeasuresAccuracy(t *testing.T) {
	tr, tab, _ := pipeline(t, workload.MustGenerate("ijpeg", workload.SizeTest), core.Config{})
	res, err := Simulate(tr, Config{TUs: 16, Pairs: tab, Predictor: Stride})
	if err != nil {
		t.Fatal(err)
	}
	if res.VPLookups == 0 {
		t.Fatal("no live-in predictions made")
	}
	acc := res.VPAccuracy()
	if acc < 0.3 || acc > 1.0 {
		t.Errorf("stride accuracy %v implausible", acc)
	}
	// Realistic prediction must cost performance vs perfect.
	perfect, err := Simulate(tr, Config{TUs: 16, Pairs: tab, Predictor: Perfect})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < perfect.Cycles {
		t.Errorf("stride (%d cycles) beat perfect (%d)", res.Cycles, perfect.Cycles)
	}
}

func TestSpawnOverheadCostsCycles(t *testing.T) {
	tr, tab, _ := pipeline(t, workload.MustGenerate("m88ksim", workload.SizeTest), core.Config{})
	noOv, err := Simulate(tr, Config{TUs: 16, Pairs: tab, Predictor: Stride})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := Simulate(tr, Config{TUs: 16, Pairs: tab, Predictor: Stride, SpawnOverhead: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Overhead shifts spawn timing, which perturbs squash patterns, so
	// small inversions are possible — but it must not make the run
	// substantially faster.
	if float64(ov.Cycles) < 0.93*float64(noOv.Cycles) {
		t.Errorf("8-cycle overhead made the run much faster (%d vs %d)", ov.Cycles, noOv.Cycles)
	}
}

func TestMinThreadSizeRemovesPairs(t *testing.T) {
	// Heuristic tables include short-callee pairs whose threads are
	// tiny; min-size enforcement must remove some.
	p := workload.MustGenerate("li", workload.SizeTest)
	tr, _, pr := pipeline(t, p, core.Config{})
	htab := heuristic.Pairs(p, pr, tr, heuristic.Combined, heuristic.Config{})
	res, err := Simulate(tr, Config{TUs: 16, Pairs: htab, MinThreadSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsRemovedMinSize == 0 {
		t.Error("min-size policy removed nothing on a heuristic table")
	}
}

func TestReassignUsesAlternates(t *testing.T) {
	tr, tab, _ := pipeline(t, workload.MustGenerate("perl", workload.SizeTest), core.Config{})
	if len(tab.Alternates) == 0 {
		t.Skip("no alternates in table")
	}
	a, err := Simulate(tr, Config{TUs: 16, Pairs: tab})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tr, Config{TUs: 16, Pairs: tab, Reassign: true})
	if err != nil {
		t.Fatal(err)
	}
	// Reassign changes spawn behaviour (paper: slightly worse on
	// average); just require it to run and differ.
	if a.Spawns == b.Spawns && a.Cycles == b.Cycles {
		t.Log("reassign produced identical run (acceptable but unexpected)")
	}
}

func TestMemoryViolationsDetected(t *testing.T) {
	// compress has the highest shared-write density: cross-thread
	// violations must occur and be recovered from.
	tr, tab, _ := pipeline(t, workload.MustGenerate("compress", workload.SizeTest), core.Config{})
	res, err := Simulate(tr, Config{TUs: 16, Pairs: tab})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemViolationSquashes == 0 && res.SVCForwards == 0 {
		t.Error("no cross-thread memory activity at all on compress")
	}
}

func TestDeterminism(t *testing.T) {
	tr, tab, _ := pipeline(t, workload.MustGenerate("go", workload.SizeTest), core.Config{})
	a, err := Simulate(tr, Config{TUs: 16, Pairs: tab, Predictor: Stride})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tr, Config{TUs: 16, Pairs: tab, Predictor: Stride})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Spawns != b.Spawns || a.VPHits != b.VPHits {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, err := Simulate(&trace.Trace{Program: &isa.Program{}}, Config{TUs: 1}); err == nil {
		t.Error("expected error for empty trace")
	}
}

func TestPairStatsCollected(t *testing.T) {
	tr, tab, _ := pipeline(t, workload.MustGenerate("ijpeg", workload.SizeTest), core.Config{})
	res, err := Simulate(tr, Config{TUs: 16, Pairs: tab, CollectPairStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PairStats) == 0 {
		t.Fatal("no pair stats collected")
	}
	var spawns int64
	for _, st := range res.PairStats {
		spawns += st.Spawns
	}
	if spawns != res.Spawns {
		t.Errorf("per-pair spawns %d != total %d", spawns, res.Spawns)
	}
}

func TestPredictorKindString(t *testing.T) {
	for k := Perfect; k <= LastValue; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if PredictorKind(42).String() == "" {
		t.Error("unknown kind must print")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.TUs != 16 || c.FetchWidth != 4 || c.ROB != 64 || c.ForwardLat != 3 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.PredictorBytes != 16<<10 || c.RemovalOccurrences != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
}
