package cluster

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/heuristic"
	"repro/internal/isa"
	"repro/internal/reach"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fullPipeline runs emulate → prune → reach → select for a program.
func fullPipeline(p *isa.Program) (*trace.Trace, *core.Table, *emu.Profile, error) {
	res, err := emu.Run(p, emu.Config{CollectTrace: true})
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := cfg.Build(res.Profile).Prune(0.9, 256)
	if err != nil {
		return nil, nil, nil, err
	}
	r, err := reach.Compute(g)
	if err != nil {
		return nil, nil, nil, err
	}
	tab, err := core.Select(res.Profile, g, r, res.Trace, core.Config{})
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Trace, tab, res.Profile, nil
}

// TestInvariantsAcrossConfigMatrix drives the simulator through a grid
// of configurations on two structurally different programs and checks
// the architectural invariants that must hold regardless of policy:
// exact committed instruction count, termination, non-negative stats,
// and spawn/commit bookkeeping consistency.
func TestInvariantsAcrossConfigMatrix(t *testing.T) {
	programs := map[string]func() (*coreTableTrace, error){
		"map-kernel": func() (*coreTableTrace, error) {
			return buildCTT(workload.KernelIndependentMap(96, 14))
		},
		"li": func() (*coreTableTrace, error) {
			return buildCTT(workload.MustGenerate("li", workload.SizeTest))
		},
	}
	for name, build := range programs {
		ctt, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, tus := range []int{2, 5, 16} {
			for _, pred := range []PredictorKind{Perfect, Stride, Hybrid} {
				for _, window := range []float64{0, 4} {
					cfgSim := Config{
						TUs: tus, Pairs: ctt.tab, Predictor: pred,
						SpawnWindowFactor: window,
						RemovalCycles:     50, MinThreadSize: 16,
					}
					res, err := Simulate(ctt.tr, cfgSim)
					if err != nil {
						t.Fatalf("%s tus=%d pred=%v win=%v: %v", name, tus, pred, window, err)
					}
					if res.Committed != int64(ctt.tr.Len()) {
						t.Errorf("%s tus=%d pred=%v: committed %d != %d",
							name, tus, pred, res.Committed, ctt.tr.Len())
					}
					if res.Fetched < res.Committed {
						t.Errorf("%s: fetched < committed", name)
					}
					if res.AvgActiveThreads > float64(tus)+1e-9 {
						t.Errorf("%s: active %.2f > TUs %d", name, res.AvgActiveThreads, tus)
					}
					if res.AvgAllocatedThreads > float64(tus)+1e-9 {
						t.Errorf("%s: allocated %.2f > TUs %d", name, res.AvgAllocatedThreads, tus)
					}
					if res.VPHits > res.VPLookups {
						t.Errorf("%s: hits > lookups", name)
					}
					if res.ThreadsCommitted > res.Spawns {
						t.Errorf("%s: committed threads %d > spawns %d",
							name, res.ThreadsCommitted, res.Spawns)
					}
				}
			}
		}
	}
}

type coreTableTrace struct {
	tr  *trace.Trace
	tab *core.Table
}

func buildCTT(p *isa.Program) (*coreTableTrace, error) {
	tr, tab, _, err := fullPipeline(p)
	if err != nil {
		return nil, err
	}
	return &coreTableTrace{tr: tr, tab: tab}, nil
}

// TestHeuristicTablesShareInvariants runs the invariant set over the
// heuristic policy too.
func TestHeuristicTablesShareInvariants(t *testing.T) {
	p := workload.MustGenerate("go", workload.SizeTest)
	tr, _, pr, err := fullPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []heuristic.Scheme{
		heuristic.LoopIteration, heuristic.LoopContinuation,
		heuristic.SubroutineContinuation, heuristic.Combined,
	} {
		tab := heuristic.Pairs(p, pr, tr, scheme, heuristic.Config{})
		res, err := Simulate(tr, Config{TUs: 8, Pairs: tab, Predictor: Stride})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Committed != int64(tr.Len()) {
			t.Errorf("%v: committed %d != %d", scheme, res.Committed, tr.Len())
		}
	}
}

// TestRemovalVariants exercises the footnoted policy variants.
func TestRemovalVariants(t *testing.T) {
	p := workload.MustGenerate("perl", workload.SizeTest)
	tr, tab, _, err := fullPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	few, err := Simulate(tr, Config{TUs: 16, Pairs: tab, RemovalCycles: 50, RemovalFewThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Simulate(tr, Config{TUs: 16, Pairs: tab, RemovalCycles: 50})
	if err != nil {
		t.Fatal(err)
	}
	if few.PairsRemovedAlone < strict.PairsRemovedAlone {
		t.Errorf("few-threshold removed fewer pairs (%d) than strict alone (%d)",
			few.PairsRemovedAlone, strict.PairsRemovedAlone)
	}
	revisit, err := Simulate(tr, Config{TUs: 16, Pairs: tab,
		RemovalCycles: 50, RemovalFewThreshold: 4, RemovalRevisit: 500})
	if err != nil {
		t.Fatal(err)
	}
	if few.PairsRemovedAlone > 0 && revisit.PairsRevisited == 0 {
		t.Log("no pair re-enabled within the run (acceptable: depends on timing)")
	}
	if revisit.Committed != int64(tr.Len()) {
		t.Error("revisit run lost instructions")
	}
}

// TestScalingMonotoneOnIdealKernel: on a fully independent map loop
// with perfect prediction, more thread units must help substantially.
func TestScalingMonotoneOnIdealKernel(t *testing.T) {
	ctt, err := buildCTT(workload.KernelIndependentMap(128, 16))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(ctt.tr, Config{TUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := Simulate(ctt.tr, Config{TUs: 4, Pairs: ctt.tab})
	if err != nil {
		t.Fatal(err)
	}
	s16, err := Simulate(ctt.tr, Config{TUs: 16, Pairs: ctt.tab})
	if err != nil {
		t.Fatal(err)
	}
	sp4 := float64(base.Cycles) / float64(s4.Cycles)
	sp16 := float64(base.Cycles) / float64(s16.Cycles)
	if sp4 < 1.3 {
		t.Errorf("4-TU speed-up %.2f too low on ideal kernel", sp4)
	}
	if sp16 < sp4 {
		t.Errorf("16 TUs (%.2f) worse than 4 TUs (%.2f)", sp16, sp4)
	}
}

// TestControlSquashesOnLoopExits: heuristic loop-iteration pairs on a
// variable-trip workload must produce wrong-path spawns at loop exits,
// and the construct detector must catch them.
func TestControlSquashesOnLoopExits(t *testing.T) {
	p := workload.MustGenerate("perl", workload.SizeTest)
	tr, _, pr, err := fullPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	htab := heuristic.Pairs(p, pr, tr, heuristic.LoopIteration, heuristic.Config{})
	res, err := Simulate(tr, Config{TUs: 16, Pairs: htab})
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlSquashes == 0 {
		t.Error("no control squashes despite data-dependent loop exits")
	}
}

// TestDoomedThreadsReleaseTUs: wrong-path spawns must not leak thread
// units (the run terminates and later spawns still occur).
func TestDoomedThreadsReleaseTUs(t *testing.T) {
	p := workload.MustGenerate("go", workload.SizeTest)
	tr, tab, _, err := fullPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, Config{TUs: 4, Pairs: tab, SpawnWindowFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlSquashes == 0 {
		t.Skip("tight window produced no dooms on this workload")
	}
	if res.Spawns == 0 {
		t.Error("dooms starved all spawns: TU leak")
	}
}
