package cluster

import (
	"fmt"
	"sort"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/svc"
	"repro/internal/trace"
	"repro/internal/vpred"
)

type threadState uint8

const (
	running threadState = iota
	finished
)

// thread is one in-flight speculative thread: a contiguous segment
// [start, end) of the dynamic trace executing on a thread unit. The
// program-order key is the start position, which is stable across
// restarts.
type thread struct {
	order      int
	tu         int
	start, end int
	pos        int
	state      threadState
	pair       *core.Pair
	spawnPos   int

	regReady   [isa.NumRegs]int64
	rob        []int64
	robHead    int
	robCount   int
	fetchReady int64

	written  uint32 // bitmask of registers written by this thread
	consumed uint32 // registers read before being written
	okCache  map[isa.Reg]bool
	// stalled marks a thread waiting for a mispredicted live-in's
	// correct value to be forwarded from its producer (stall-on-use
	// recovery; see checkInput).
	stalled   bool
	stallReg  isa.Reg
	validated bool

	aloneCycles  int64
	aloneCounted bool
	restarts     int
}

// tuState is the per-thread-unit hardware that persists across the
// threads scheduled onto the unit (the paper keeps predictor and cache
// state warm across spawns).
type tuState struct {
	bp    *bpred.Gshare
	l1    *cache.Cache
	issue *ring
	fus   [isa.NumFUClasses]*ring
}

// pendingSpawn is a spawn request waiting for a free thread unit: the
// spawn hardware holds the request and grants it when a context
// becomes available, provided the requester has not yet crossed the
// target CQIP occurrence.
type pendingSpawn struct {
	requester *thread
	pair      *core.Pair
	q         int
}

// doomed is a wrong-path thread: its pair predicted the CQIP would be
// reached soon after the SP, but control flow went elsewhere. The
// thread unit is occupied until the spawner passes the expected join
// region, at which point the misprediction is detectable and the
// thread is squashed.
type doomed struct {
	tu         int
	spawner    *thread
	releasePos int
}

// minSizeOccurrences is how many below-minimum threads a pair must
// commit before the minimum-thread-size policy removes it.
const minSizeOccurrences = 8

type pairKey struct{ sp, cqip uint32 }

type pairRuntime struct {
	disabled      bool
	disabledAt    int64
	aloneOccur    int
	smallObserved int
}

type sim struct {
	cfg    Config
	tr     *trace.Trace
	events []trace.Event
	regIdx *trace.RegIndex

	svcMem    *svc.Memory
	tus       []*tuState
	threads   []*thread
	freeTUs   []int
	bySP      map[uint32][]*core.Pair
	pairState map[pairKey]*pairRuntime
	predictor vpred.Predictor

	now           int64
	pendingSquash []int // orders to squash after the cycle
	pendingSpawns []pendingSpawn
	doomedThreads []doomed

	res           Result
	activeSum     float64
	allocatedSum  float64
	threadSizeSum int64
}

// Simulate runs the processor model over the trace and returns the
// statistics. The trace index must be buildable (it is built here).
func Simulate(tr *trace.Trace, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if tr.Len() == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	if cfg.TUs < 1 {
		return nil, fmt.Errorf("cluster: TUs = %d", cfg.TUs)
	}
	tr.BuildIndex()

	s := &sim{
		cfg:       cfg,
		tr:        tr,
		events:    tr.Events,
		svcMem:    svc.New(cfg.ForwardLat),
		pairState: make(map[pairKey]*pairRuntime),
	}
	if cfg.Pairs != nil {
		s.regIdx = trace.NewRegIndex(tr)
		s.bySP = make(map[uint32][]*core.Pair, cfg.Pairs.Len())
		for i := range cfg.Pairs.Primary {
			p := &cfg.Pairs.Primary[i]
			s.bySP[p.SP] = append(s.bySP[p.SP], p)
		}
		if cfg.Reassign {
			for sp, alts := range cfg.Pairs.Alternates {
				for i := range alts {
					s.bySP[sp] = append(s.bySP[sp], &alts[i])
				}
			}
		}
		switch cfg.Predictor {
		case Stride:
			s.predictor = vpred.NewStride(cfg.PredictorBytes)
		case Context:
			s.predictor = vpred.NewFCM(cfg.PredictorBytes)
		case LastValue:
			s.predictor = vpred.NewLastValue(cfg.PredictorBytes)
		case Hybrid:
			s.predictor = vpred.NewHybrid(cfg.PredictorBytes)
		}
	}

	s.tus = make([]*tuState, cfg.TUs)
	for i := range s.tus {
		tu := &tuState{
			bp:    bpred.NewGshare(cfg.BPredBits),
			l1:    cache.New(cfg.Cache),
			issue: newRing(cfg.IssueWidth),
		}
		tu.fus[isa.FUIntALU] = newRing(2)
		tu.fus[isa.FUIntMul] = newRing(1)
		tu.fus[isa.FULoadStore] = newRing(2)
		tu.fus[isa.FUFPAdd] = newRing(2)
		tu.fus[isa.FUFPMul] = newRing(1)
		tu.fus[isa.FUFPDiv] = newRing(1)
		s.tus[i] = tu
	}
	for i := cfg.TUs - 1; i >= 1; i-- {
		s.freeTUs = append(s.freeTUs, i)
	}

	root := &thread{
		order: 0, tu: 0, start: 0, end: tr.Len(), pos: 0,
		state: running, validated: true,
		rob: make([]int64, cfg.ROB),
	}
	s.threads = []*thread{root}

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 200*int64(tr.Len()) + 1_000_000
	}

	for len(s.threads) > 0 {
		if s.now >= maxCycles {
			return nil, fmt.Errorf("cluster: exceeded %d cycles (deadlock?)", maxCycles)
		}
		s.now++
		active := 0
		for _, t := range s.threads {
			executing := t.state == running || t.robCount > 0
			s.stepThread(t)
			if executing {
				active++
			}
		}
		s.activeSum += float64(active)
		s.allocatedSum += float64(len(s.threads))

		if len(s.pendingSquash) > 0 {
			s.applyViolations()
		}
		s.applyRemovalPolicy(active)
		s.validateSuccessors()
		s.commitHead()
		s.releaseDoomed()
		s.grantPending()
	}

	s.res.Cycles = s.now
	s.res.Committed = int64(tr.Len())
	s.res.IPC = float64(s.res.Committed) / float64(s.res.Cycles)
	s.res.AvgActiveThreads = s.activeSum / float64(s.now)
	s.res.AvgAllocatedThreads = s.allocatedSum / float64(s.now)
	if s.res.ThreadsCommitted > 0 {
		s.res.AvgThreadSize = float64(s.threadSizeSum) / float64(s.res.ThreadsCommitted)
	}
	for _, tu := range s.tus {
		s.res.CacheHits += tu.l1.Hits
		s.res.CacheMisses += tu.l1.Misses
	}
	s.res.SVCForwards = s.svcMem.Forwards
	s.res.SVCViolations = s.svcMem.Violations
	return &s.res, nil
}

// stepThread advances one thread unit by one cycle: retire up to
// CommitWidth completed instructions in order, then fetch up to
// FetchWidth instructions (stopping at taken branches, mispredictions,
// a full ROB, or the segment end), scheduling each fetched instruction
// onto the issue ports and functional units.
func (s *sim) stepThread(t *thread) {
	retired := 0
	for t.robCount > 0 && retired < s.cfg.CommitWidth {
		if t.rob[t.robHead] > s.now {
			break
		}
		t.robHead = (t.robHead + 1) % len(t.rob)
		t.robCount--
		retired++
	}
	if t.state == finished || t.fetchReady > s.now {
		return
	}
	tu := s.tus[t.tu]
	fetched := 0
	for fetched < s.cfg.FetchWidth {
		if t.pos >= t.end {
			t.state = finished
			return
		}
		if t.robCount == len(t.rob) {
			return // ROB full
		}
		ev := &s.events[t.pos]

		if s.bySP != nil {
			if cands, ok := s.bySP[ev.PC]; ok {
				if s.trySpawn(t, cands) {
					// The spawn operation occupies the front-end this
					// cycle: the fetch group ends after this
					// instruction's dispatch.
					fetched = s.cfg.FetchWidth - 1
				}
			}
		}

		dispatch := s.now + 1
		ready := dispatch
		ins := isa.Instruction{Op: ev.Op, Dst: ev.Dst, Src1: ev.Src1, Src2: ev.Src2}
		regs, n := ins.Reads()
		for i := 0; i < n; i++ {
			r := regs[i]
			if t.written&(1<<r) == 0 {
				t.consumed |= 1 << r
				if t.pair != nil && !t.validated {
					s.checkInput(t, r)
				}
			}
			if t.regReady[r] > ready {
				ready = t.regReady[r]
			}
		}

		class := ev.Op.FU()
		var issue int64
		if class == isa.FUNone {
			issue = ready
		} else {
			issue = allocJoint(tu.issue, tu.fus[class], ready)
		}

		var done int64
		switch ev.Op {
		case isa.OpLoad:
			addrReady := issue + 1
			svcReady, _, fromSVC := s.svcMem.Load(t.order, t.tu, ev.Addr, t.pos, addrReady)
			if fromSVC {
				done = svcReady
			} else {
				done = tu.l1.Access(ev.Addr, addrReady)
			}
			if done < addrReady {
				done = addrReady
			}
		case isa.OpStore:
			done = issue + 1
			for _, v := range s.svcMem.Store(t.order, t.tu, ev.Addr, t.pos, done) {
				s.pendingSquash = append(s.pendingSquash, v.Order)
			}
		default:
			done = issue + int64(ev.Op.Latency())
		}

		if ev.Op.WritesReg() && ev.Dst != 0 {
			t.regReady[ev.Dst] = done
			t.written |= 1 << ev.Dst
		}
		t.rob[(t.robHead+t.robCount)%len(t.rob)] = done
		t.robCount++
		t.pos++
		fetched++
		s.res.Fetched++

		if ev.Op.IsBranch() {
			taken := ev.Next != ev.PC+1
			pred := tu.bp.Predict(ev.PC)
			tu.bp.Update(ev.PC, taken)
			s.res.Branches++
			if pred != taken {
				s.res.BranchMispredicts++
				t.fetchReady = done + 1
				return
			}
			if taken {
				return // taken branches end the fetch group
			}
		} else if ev.Op.IsControl() && ev.Op != isa.OpHalt {
			return // jmp/call/ret redirect fetch (perfect target prediction)
		}
	}
}

// checkInput handles a speculative thread reading register r before
// writing it. Live-ins covered by the value predictor were classified
// at spawn time; any other register is correct iff its value did not
// change between the spawn point and the CQIP (the spawned thread
// inherits the spawner's register file). A mispredicted input is
// recovered selectively: the correct value is forwarded when its
// producer executes, so instructions dependent on it simply see the
// register become ready at the producer's (estimated) completion time,
// while independent instructions proceed — the timing of selective
// reissue in the paper's architecture family.
func (s *sim) checkInput(t *thread, r isa.Reg) {
	if v, ok := t.okCache[r]; ok && v {
		return
	} else if ok && !v {
		// classified wrong at spawn; apply the forwarding delay once
	} else {
		correct := s.regIdx.ValueAt(r, t.start) == s.regIdx.ValueAt(r, t.spawnPos)
		t.okCache[r] = correct
		if correct {
			return
		}
	}
	s.res.MispredictStalls++
	at := s.deliveryEstimate(t, r)
	if t.regReady[r] < at {
		t.regReady[r] = at
	}
	t.okCache[r] = true // the forwarded value is correct from now on
}

// deliveryEstimate returns the cycle at which the architecturally
// correct value of register r (as of t.start) is forwarded to t: the
// producing instruction's estimated completion plus the inter-unit
// forwarding latency. Producers that already executed (or committed)
// forward immediately.
func (s *sim) deliveryEstimate(t *thread, r isa.Reg) int64 {
	pp := s.regIdx.LastWriteBefore(r, t.start)
	if pp < 0 {
		return s.now + 1 // never written: architected zero
	}
	owner := s.threadOwning(pp)
	if owner == nil || owner.pos > pp {
		return s.now + s.cfg.ForwardLat
	}
	// The producer is (pp - owner.pos) instructions ahead of the
	// owning thread's fetch point; assume it advances at roughly half
	// its fetch width.
	est := int64(pp-owner.pos)*2/int64(s.cfg.FetchWidth) + 1
	return s.now + est + s.cfg.ForwardLat
}

// threadOwning returns the active thread whose region contains the
// trace position, or nil if that region has committed.
func (s *sim) threadOwning(pos int) *thread {
	for _, t := range s.threads {
		if pos >= t.start && pos < t.end {
			return t
		}
	}
	return nil
}

// trySpawn attempts to create a thread at the first viable candidate
// pair (primary, then alternates under the reassign policy). When no
// thread unit is free the request is queued and granted when one frees.
// It reports whether a spawn operation was issued (including wrong-path
// spawns), which costs the spawner its fetch group.
func (s *sim) trySpawn(t *thread, cands []*core.Pair) bool {
	for _, p := range cands {
		if s.pairDisabled(p) {
			continue
		}
		q := s.tr.NextOccurrence(p.CQIP, t.pos)
		if q < 0 || q >= t.end {
			s.res.SpawnsBlockedRegion++
			if st := s.pairStat(p); st != nil {
				st.BlockedRegion++
			}
			continue
		}
		if s.threadAt(q) != nil {
			s.res.SpawnsBlockedOccupied++
			continue
		}
		if bad, detectPos := s.misspeculated(t, p, q); bad {
			// Control misspeculation: the CQIP is not actually
			// reached the way the pair predicted (the loop exited, or
			// the return is not the matching one). The hardware
			// cannot know that yet — it burns a thread unit on a
			// wrong-path thread until the failed join is detectable,
			// bounded by the squash hardware's resolution window.
			if st := s.pairStat(p); st != nil {
				st.Doomed++
			}
			if len(s.freeTUs) > 0 {
				tu := s.freeTUs[len(s.freeTUs)-1]
				s.freeTUs = s.freeTUs[:len(s.freeTUs)-1]
				if cap := t.pos + s.cfg.SpawnWindowMin; detectPos > cap || detectPos <= t.pos {
					detectPos = cap
				}
				s.doomedThreads = append(s.doomedThreads, doomed{
					tu: tu, spawner: t, releasePos: detectPos,
				})
			}
			return true
		}
		if len(s.freeTUs) == 0 {
			s.res.SpawnsBlockedNoTU++
			if st := s.pairStat(p); st != nil {
				st.BlockedNoTU++
			}
			s.queueSpawn(t, p, q)
			return false
		}
		s.spawn(t, p, q)
		return true
	}
	return false
}

// spawnWindow returns the misspeculation window for a pair in
// instructions.
func (s *sim) spawnWindow(p *core.Pair) int {
	w := int(s.cfg.SpawnWindowFactor * p.Dist)
	if w < s.cfg.SpawnWindowMin {
		w = s.cfg.SpawnWindowMin
	}
	return w
}

// misspeculated decides whether a spawn at trace position t.pos
// targeting the next CQIP occurrence q is a wrong-path thread, using
// the spawn hardware's own semantics for each pair kind:
//
//   - loop-iteration / loop-continuation constructs predict the CQIP is
//     reached without leaving the loop — leaving the static loop body
//     at the loop's own call depth (or returning out of its function)
//     means the loop exited first;
//   - subroutine continuations (including the profile scheme's return
//     pairs) use return-address-stack semantics — the thread is correct
//     only if q is the matching return of this call;
//   - other profile-table pairs have no construct to mispredict: the
//     thread targets the next dynamic CQIP occurrence wherever it is,
//     and a distant one simply lives long (the cost the paper's
//     removal policy addresses). An optional expected-distance window
//     (SpawnWindowFactor) is available for ablation.
//
// The second return value is the trace position at which the spawner
// can detect the failed join (the wrong-path thread is squashed when
// the spawner crosses it).
func (s *sim) misspeculated(t *thread, p *core.Pair, q int) (bool, int) {
	switch p.Kind {
	case core.KindLoopIter, core.KindLoopCont:
		return s.leavesLoop(t.pos, q, p.SP, p.LoopEnd)
	case core.KindSubCont, core.KindReturn:
		if !s.matchingReturn(t.pos, q) {
			return true, q
		}
		return false, 0
	default:
		if s.cfg.SpawnWindowFactor > 0 {
			if w := s.spawnWindow(p); q-t.pos > w {
				return true, t.pos + w
			}
		}
		return false, 0
	}
}

// leavesLoop reports whether the dynamic path strictly between p and q
// leaves the static loop body [head, backedge] at the loop's own call
// depth, or returns out of the loop's function entirely; the second
// return value is the position where it first does so.
func (s *sim) leavesLoop(p, q int, head, backedge uint32) (bool, int) {
	depth := 0
	for i := p + 1; i < q; i++ {
		ev := &s.events[i]
		if depth == 0 && (ev.PC < head || ev.PC > backedge) {
			return true, i
		}
		switch ev.Op {
		case isa.OpCall:
			depth++
		case isa.OpRet:
			depth--
			if depth < 0 {
				return true, i
			}
		}
	}
	return false, 0
}

// matchingReturn reports whether position q (the next occurrence of the
// call's fall-through PC) is reached by the matching return of the call
// at position p — i.e., the call depth is back to zero when control
// arrives at q.
func (s *sim) matchingReturn(p, q int) bool {
	depth := 0
	for i := p; i < q; i++ {
		switch s.events[i].Op {
		case isa.OpCall:
			depth++
		case isa.OpRet:
			depth--
		}
	}
	return depth == 0
}

// releaseDoomed frees the thread units of wrong-path threads whose
// misprediction has become detectable.
func (s *sim) releaseDoomed() {
	if len(s.doomedThreads) == 0 {
		return
	}
	kept := s.doomedThreads[:0]
	for _, d := range s.doomedThreads {
		alive := false
		for _, t := range s.threads {
			if t == d.spawner {
				alive = true
				break
			}
		}
		if alive && d.spawner.state == running && d.spawner.pos < d.releasePos {
			kept = append(kept, d)
			continue
		}
		s.freeTUs = append(s.freeTUs, d.tu)
		s.res.ControlSquashes++
	}
	s.doomedThreads = kept
}

func (s *sim) threadAt(q int) *thread {
	for _, u := range s.threads {
		if u.start == q {
			return u
		}
	}
	return nil
}

// queueSpawn files a pending spawn request (one per target position,
// bounded queue).
func (s *sim) queueSpawn(t *thread, p *core.Pair, q int) {
	for i := range s.pendingSpawns {
		if s.pendingSpawns[i].q == q {
			return
		}
	}
	if len(s.pendingSpawns) >= 4*s.cfg.TUs {
		return
	}
	s.pendingSpawns = append(s.pendingSpawns, pendingSpawn{requester: t, pair: p, q: q})
}

// grantPending issues queued spawn requests to freed thread units, in
// program order, dropping requests invalidated by execution having
// moved past them.
func (s *sim) grantPending() {
	if len(s.pendingSpawns) == 0 {
		return
	}
	sort.Slice(s.pendingSpawns, func(a, b int) bool { return s.pendingSpawns[a].q < s.pendingSpawns[b].q })
	kept := s.pendingSpawns[:0]
	for _, ps := range s.pendingSpawns {
		if s.pairDisabled(ps.pair) {
			continue
		}
		alive := false
		for _, t := range s.threads {
			if t == ps.requester {
				alive = true
				break
			}
		}
		if !alive || ps.requester.pos >= ps.q || ps.q >= ps.requester.end || s.threadAt(ps.q) != nil {
			continue
		}
		if len(s.freeTUs) == 0 {
			kept = append(kept, ps)
			continue
		}
		s.spawn(ps.requester, ps.pair, ps.q)
	}
	s.pendingSpawns = kept
}

// pairDisabled reports whether a pair is currently removed, honouring
// the revisit policy that re-enables removed pairs after a while.
func (s *sim) pairDisabled(p *core.Pair) bool {
	st := s.pairRT(p)
	if !st.disabled {
		return false
	}
	if s.cfg.RemovalRevisit > 0 && s.now-st.disabledAt >= s.cfg.RemovalRevisit {
		st.disabled = false
		st.aloneOccur = 0
		st.smallObserved = 0
		s.res.PairsRevisited++
		return false
	}
	return true
}

func (s *sim) pairRT(p *core.Pair) *pairRuntime {
	k := pairKey{p.SP, p.CQIP}
	st, ok := s.pairState[k]
	if !ok {
		st = &pairRuntime{}
		s.pairState[k] = st
	}
	return st
}

// pairStat returns the per-pair stats record (nil unless enabled).
func (s *sim) pairStat(p *core.Pair) *PairStat {
	if !s.cfg.CollectPairStats || p == nil {
		return nil
	}
	if s.res.PairStats == nil {
		s.res.PairStats = make(map[PairID]*PairStat)
	}
	id := PairID{p.SP, p.CQIP}
	st, ok := s.res.PairStats[id]
	if !ok {
		st = &PairStat{}
		s.res.PairStats[id] = st
	}
	return st
}

// spawn allocates a TU and inserts the new thread in program order.
func (s *sim) spawn(t *thread, p *core.Pair, q int) {
	tuIdx := s.freeTUs[len(s.freeTUs)-1]
	s.freeTUs = s.freeTUs[:len(s.freeTUs)-1]

	start := s.now + 1 + s.cfg.SpawnOverhead
	child := &thread{
		order: q, tu: tuIdx, start: q, end: t.end, pos: q,
		state: running, pair: p, spawnPos: t.pos,
		fetchReady: start,
		rob:        make([]int64, s.cfg.ROB),
		okCache:    make(map[isa.Reg]bool, len(p.LiveIns)),
	}
	for r := range child.regReady {
		child.regReady[r] = start
	}
	s.tus[tuIdx].bp.ResetHistory()
	if s.cfg.Predictor == Perfect || s.predictor == nil {
		child.validated = true
	} else {
		for _, r := range p.LiveIns {
			actual := s.regIdx.ValueAt(r, q)
			predicted, known := s.predictor.Predict(p.SP, p.CQIP, r)
			s.predictor.Update(p.SP, p.CQIP, r, actual)
			ok := known && predicted == actual
			s.res.VPLookups++
			if ok {
				s.res.VPHits++
			}
			child.okCache[r] = ok
		}
	}
	t.end = q

	// Insert in program order.
	i := sort.Search(len(s.threads), func(i int) bool { return s.threads[i].start > q })
	s.threads = append(s.threads, nil)
	copy(s.threads[i+1:], s.threads[i:])
	s.threads[i] = child
	s.res.Spawns++
	if st := s.pairStat(p); st != nil {
		st.Spawns++
	}
}

// applyViolations squashes the least speculative violating thread
// (restarting it in place) and kills everything more speculative.
func (s *sim) applyViolations() {
	min := s.pendingSquash[0]
	for _, o := range s.pendingSquash[1:] {
		if o < min {
			min = o
		}
	}
	s.pendingSquash = s.pendingSquash[:0]
	for _, t := range s.threads {
		if t.order == min {
			s.squashRestart(t)
			s.res.MemViolationSquashes++
			return
		}
	}
	// The violating thread may already have been squashed this cycle.
}

// squashRestart discards a thread's work and every more speculative
// thread, then restarts the thread at its start position.
func (s *sim) squashRestart(u *thread) {
	idx := -1
	for i, t := range s.threads {
		if t == u {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	lastEnd := s.threads[len(s.threads)-1].end
	for _, v := range s.threads[idx+1:] {
		s.svcMem.Release(v.order)
		s.freeTUs = append(s.freeTUs, v.tu)
		s.res.ThreadsKilled++
	}
	s.threads = s.threads[:idx+1]
	u.end = lastEnd

	s.svcMem.Release(u.order)
	u.pos = u.start
	u.state = running
	u.robHead, u.robCount = 0, 0
	u.fetchReady = s.now + 1
	for r := range u.regReady {
		u.regReady[r] = s.now + 1
	}
	u.written = 0
	u.consumed = 0
	u.validated = s.cfg.Predictor == Perfect || idx == 0 || s.threads[idx-1].state == finished
	u.restarts++
	u.aloneCycles = 0
	u.aloneCounted = false
	if st := s.pairStat(u.pair); st != nil {
		st.Squashes++
	}
}

// validateSuccessors marks threads whose predecessor has reached its
// end: all their input values are architected from then on, so the
// input checks can be skipped. (Value misprediction recovery itself is
// handled eagerly by the producer watches.)
func (s *sim) validateSuccessors() {
	for i := 1; i < len(s.threads); i++ {
		t := s.threads[i]
		if !t.validated && s.threads[i-1].state == finished {
			t.validated = true
		}
	}
}

// commitHead retires head threads once they have fetched their whole
// segment and drained their ROB. At most ThreadCommitsPerCycle threads
// commit per cycle: merging a thread unit's speculative state into
// architected state is a serialising operation.
func (s *sim) commitHead() {
	for n := 0; n < s.cfg.ThreadCommitsPerCycle && len(s.threads) > 0; n++ {
		h := s.threads[0]
		if h.state != finished || h.robCount != 0 {
			return
		}
		if h.pair != nil {
			size := h.end - h.start
			s.threadSizeSum += int64(size)
			s.res.ThreadsCommitted++
			if st := s.pairStat(h.pair); st != nil {
				st.Committed++
				st.CommitInstrs += int64(size)
			}
			if s.cfg.MinThreadSize > 0 && size < s.cfg.MinThreadSize {
				// Remove pairs whose threads are chronically small;
				// a single truncated thread (cut short by a later
				// spawn) is not evidence the pair is bad.
				st := s.pairRT(h.pair)
				st.smallObserved++
				if st.smallObserved >= minSizeOccurrences && !st.disabled {
					st.disabled = true
					st.disabledAt = s.now
					s.res.PairsRemovedMinSize++
				}
			}
		}
		s.svcMem.Release(h.order)
		s.freeTUs = append(s.freeTUs, h.tu)
		s.threads = s.threads[1:]
		if len(s.threads) > 0 {
			s.threads[0].validated = true
		}
	}
}

// applyRemovalPolicy implements §4.2's dynamic spawning-pair removal:
// a thread executing alone (or, under the footnoted variant, with at
// most RemovalFewThreshold threads while others wait) for RemovalCycles
// counts one occurrence against its pair; after RemovalOccurrences the
// pair is removed.
func (s *sim) applyRemovalPolicy(active int) {
	if s.cfg.RemovalCycles <= 0 {
		return
	}
	threshold := s.cfg.RemovalFewThreshold
	if threshold < 1 {
		threshold = 1
	}
	if active < 1 || active > threshold || len(s.threads) <= active {
		return
	}
	var rt *thread
	for _, t := range s.threads {
		if t.state == running {
			rt = t
			break
		}
	}
	if rt == nil || rt.pair == nil || rt.aloneCounted {
		return
	}
	rt.aloneCycles++
	if rt.aloneCycles < s.cfg.RemovalCycles {
		return
	}
	rt.aloneCounted = true
	st := s.pairRT(rt.pair)
	st.aloneOccur++
	if st.aloneOccur >= s.cfg.RemovalOccurrences && !st.disabled {
		st.disabled = true
		st.disabledAt = s.now
		s.res.PairsRemovedAlone++
	}
}
