package cluster

// ring is a per-cycle bandwidth ledger: it answers "how many slots of
// this resource are already taken at absolute cycle c" with lazy reset,
// so schedules can run ahead of the simulated clock (bounded by the
// ring size).
type ring struct {
	width  int
	mask   int64
	tags   []int64
	counts []int
}

const ringSize = 1 << 13 // must exceed any scheduling horizon

func newRing(width int) *ring {
	return &ring{
		width:  width,
		mask:   ringSize - 1,
		tags:   make([]int64, ringSize),
		counts: make([]int, ringSize),
	}
}

// avail reports whether a slot is free at cycle c.
func (r *ring) avail(c int64) bool {
	i := c & r.mask
	if r.tags[i] != c {
		return r.width > 0
	}
	return r.counts[i] < r.width
}

// take consumes a slot at cycle c.
func (r *ring) take(c int64) {
	i := c & r.mask
	if r.tags[i] != c {
		r.tags[i] = c
		r.counts[i] = 0
	}
	r.counts[i]++
}

// allocJoint finds the earliest cycle ≥ start with capacity in both
// rings and consumes one slot from each.
func allocJoint(a, b *ring, start int64) int64 {
	c := start
	for {
		if a.avail(c) && b.avail(c) {
			a.take(c)
			b.take(c)
			return c
		}
		c++
		if c-start > ringSize/2 {
			panic("cluster: scheduling horizon exceeded")
		}
	}
}
