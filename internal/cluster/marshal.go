package cluster

import (
	"fmt"
	"sort"

	"repro/internal/binio"
)

// resultVersion tags the cluster.Result wire format. The scalar block
// is written in struct declaration order; adding a field means bumping
// the version so stale disk artifacts miss cleanly.
const resultVersion = 1

// MarshalBinary serialises the simulation result deterministically
// (PairStats in sorted key order). The encoding is exact — float bits
// round-trip — so a decoded result renders to byte-identical JSON.
func (r *Result) MarshalBinary() ([]byte, error) {
	w := binio.NewWriter(256 + len(r.PairStats)*64)
	w.U8(resultVersion)
	w.Varint(r.Cycles)
	w.Varint(r.Committed)
	w.Varint(r.Fetched)
	w.F64(r.IPC)
	w.F64(r.AvgActiveThreads)
	w.F64(r.AvgAllocatedThreads)
	w.Varint(r.ThreadsCommitted)
	w.F64(r.AvgThreadSize)
	w.Varint(r.Spawns)
	w.Varint(r.SpawnsBlockedNoTU)
	w.Varint(r.SpawnsBlockedOccupied)
	w.Varint(r.SpawnsBlockedRegion)
	w.Varint(r.MispredictStalls)
	w.Varint(r.MemViolationSquashes)
	w.Varint(r.ControlSquashes)
	w.Varint(r.ThreadsKilled)
	w.Varint(r.VPLookups)
	w.Varint(r.VPHits)
	w.Varint(r.PairsRemovedAlone)
	w.Varint(r.PairsRemovedMinSize)
	w.Varint(r.PairsRevisited)
	w.Varint(r.Branches)
	w.Varint(r.BranchMispredicts)
	w.Uvarint(r.CacheHits)
	w.Uvarint(r.CacheMisses)
	w.Uvarint(r.SVCForwards)
	w.Uvarint(r.SVCViolations)
	w.Bool(r.PairStats != nil)
	if r.PairStats != nil {
		ids := make([]PairID, 0, len(r.PairStats))
		for id := range r.PairStats {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].SP != ids[j].SP {
				return ids[i].SP < ids[j].SP
			}
			return ids[i].CQIP < ids[j].CQIP
		})
		w.Uvarint(uint64(len(ids)))
		for _, id := range ids {
			st := r.PairStats[id]
			w.U32(id.SP)
			w.U32(id.CQIP)
			w.Varint(st.Spawns)
			w.Varint(st.Committed)
			w.Varint(st.CommitInstrs)
			w.Varint(st.Doomed)
			w.Varint(st.BlockedRegion)
			w.Varint(st.BlockedNoTU)
			w.Varint(st.Squashes)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a result written by MarshalBinary.
func (r *Result) UnmarshalBinary(data []byte) error {
	rd := binio.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != resultVersion {
		return fmt.Errorf("cluster: result format version %d (want %d)", v, resultVersion)
	}
	var out Result
	out.Cycles = rd.Varint()
	out.Committed = rd.Varint()
	out.Fetched = rd.Varint()
	out.IPC = rd.F64()
	out.AvgActiveThreads = rd.F64()
	out.AvgAllocatedThreads = rd.F64()
	out.ThreadsCommitted = rd.Varint()
	out.AvgThreadSize = rd.F64()
	out.Spawns = rd.Varint()
	out.SpawnsBlockedNoTU = rd.Varint()
	out.SpawnsBlockedOccupied = rd.Varint()
	out.SpawnsBlockedRegion = rd.Varint()
	out.MispredictStalls = rd.Varint()
	out.MemViolationSquashes = rd.Varint()
	out.ControlSquashes = rd.Varint()
	out.ThreadsKilled = rd.Varint()
	out.VPLookups = rd.Varint()
	out.VPHits = rd.Varint()
	out.PairsRemovedAlone = rd.Varint()
	out.PairsRemovedMinSize = rd.Varint()
	out.PairsRevisited = rd.Varint()
	out.Branches = rd.Varint()
	out.BranchMispredicts = rd.Varint()
	out.CacheHits = rd.Uvarint()
	out.CacheMisses = rd.Uvarint()
	out.SVCForwards = rd.Uvarint()
	out.SVCViolations = rd.Uvarint()
	if rd.Bool() {
		n := rd.Count(10)
		out.PairStats = make(map[PairID]*PairStat, n)
		for ; n > 0; n-- {
			id := PairID{SP: rd.U32(), CQIP: rd.U32()}
			out.PairStats[id] = &PairStat{
				Spawns:        rd.Varint(),
				Committed:     rd.Varint(),
				CommitInstrs:  rd.Varint(),
				Doomed:        rd.Varint(),
				BlockedRegion: rd.Varint(),
				BlockedNoTU:   rd.Varint(),
				Squashes:      rd.Varint(),
			}
		}
	}
	if err := rd.Close(); err != nil {
		return err
	}
	*r = out
	return nil
}
