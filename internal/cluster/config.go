// Package cluster is the trace-driven, cycle-level model of the
// Clustered Speculative Multithreaded Processor the paper evaluates on
// (HPCA'02 §4.1): 4–16 thread units, each a 4-wide out-of-order core
// with a 64-entry reorder buffer, the paper's functional-unit mix,
// a 10-bit gshare branch predictor and a 32KB non-blocking L1 per unit,
// connected through a speculative versioning memory with a 3-cycle
// inter-unit forwarding latency.
//
// Threads are segments of the sequential dynamic trace. Reaching a
// spawning point allocates a free thread unit at the next dynamic
// occurrence of the control quasi-independent point; threads commit in
// program order; consuming a mispredicted live-in squashes and restarts
// the thread at join-time validation, and memory dependence violations
// squash the offending thread and everything more speculative. The
// dynamic policies of §4.2 — spawning-pair removal by alone-cycles
// (with delayed occurrences), CQIP reassignment, and minimum thread
// size — are all implemented here.
package cluster

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// PredictorKind selects the live-in value predictor.
type PredictorKind int

// Value predictor kinds of §4.3.1.
const (
	// Perfect makes every thread input value available and correct at
	// spawn time.
	Perfect PredictorKind = iota
	// Stride is the 16KB last-value+stride predictor.
	Stride
	// Context is the 16KB order-2 FCM predictor.
	Context
	// LastValue predicts the previously observed value.
	LastValue
	// Hybrid combines stride and context with a per-entry chooser
	// (extension; not in the paper's evaluation).
	Hybrid
)

// String names the predictor kind.
func (k PredictorKind) String() string {
	switch k {
	case Perfect:
		return "perfect"
	case Stride:
		return "stride"
	case Context:
		return "context"
	case LastValue:
		return "last-value"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("predictor(%d)", int(k))
	}
}

// Config parameterises a simulation. The zero value (plus a Pairs
// table) reproduces the paper's 16-TU perfect-prediction baseline.
type Config struct {
	// TUs is the number of thread units (default 16; the paper studies
	// 4 and 16). With a nil Pairs table one TU executes the program
	// sequentially — the paper's single-threaded baseline.
	TUs int
	// FetchWidth / IssueWidth / CommitWidth default to 4.
	FetchWidth, IssueWidth, CommitWidth int
	// ROB is the per-TU reorder buffer size (default 64).
	ROB int
	// BPredBits is the gshare history length (default 10).
	BPredBits uint
	// Cache configures each TU's L1 (zero = the paper's 32KB 2-way).
	Cache cache.Config
	// ForwardLat is the inter-TU memory forwarding latency (default 3).
	ForwardLat int64
	// SpawnOverhead is the thread initialisation penalty in cycles
	// suffered by the spawned thread (§4.3.2; 0 or 8).
	SpawnOverhead int64
	// Predictor selects the live-in value predictor (§4.3.1).
	Predictor PredictorKind
	// PredictorBytes is the predictor hardware budget (default 16KB).
	PredictorBytes int
	// Pairs is the spawn-pair table; nil disables speculation.
	Pairs *core.Table
	// Reassign enables the §4.2 reassign policy: when the preferred
	// CQIP is unavailable or removed, the next candidate for the same
	// SP is tried.
	Reassign bool
	// RemovalCycles enables spawning-pair removal: a pair is removed
	// once a thread it created has executed alone for this many cycles
	// (0 disables; the paper studies 50 and 200).
	RemovalCycles int64
	// RemovalOccurrences delays removal until the alone condition has
	// been observed this many times (default 1; the paper studies 8
	// and 16).
	RemovalOccurrences int
	// RemovalFewThreshold widens the removal trigger from "executing
	// alone" to "executing with at most this many threads while others
	// wait" (the paper's footnoted variant; 0 keeps the strict alone
	// condition, i.e. threshold 1).
	RemovalFewThreshold int
	// RemovalRevisit re-enables a removed pair after this many cycles
	// (the paper's footnoted variant reports "very small improvements";
	// 0 = removed pairs stay removed).
	RemovalRevisit int64
	// MinThreadSize removes pairs whose committed threads are smaller
	// than this many instructions (0 disables; the paper uses 32).
	MinThreadSize int
	// SpawnWindowFactor, when positive, adds an expected-distance
	// window to profile-table pairs: a spawn whose actual SP→CQIP
	// distance exceeds factor × the pair's expected distance is
	// treated as a wrong-path thread. The paper's hardware has no such
	// window (distant threads simply live long and the removal policy
	// copes), so the default is 0; the knob exists for the ablation
	// study. Construct pairs (loop iteration/continuation, subroutine
	// continuation) always use construct-level misspeculation
	// detection.
	SpawnWindowFactor float64
	// SpawnWindowMin is the floor of the optional window in
	// instructions (default 64).
	SpawnWindowMin int
	// ThreadCommitsPerCycle bounds how many threads can merge their
	// speculative state into architected state per cycle (default 1).
	ThreadCommitsPerCycle int
	// MaxCycles aborts runaway simulations (default 200× trace length).
	MaxCycles int64
	// CollectPairStats enables Result.PairStats.
	CollectPairStats bool
}

func (c Config) withDefaults() Config {
	if c.TUs == 0 {
		c.TUs = 16
	}
	if c.FetchWidth == 0 {
		c.FetchWidth = 4
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = 4
	}
	if c.CommitWidth == 0 {
		c.CommitWidth = 4
	}
	if c.ROB == 0 {
		c.ROB = 64
	}
	if c.BPredBits == 0 {
		c.BPredBits = 10
	}
	if c.ForwardLat == 0 {
		c.ForwardLat = 3
	}
	if c.PredictorBytes == 0 {
		c.PredictorBytes = 16 << 10
	}
	if c.RemovalOccurrences == 0 {
		c.RemovalOccurrences = 1
	}
	if c.SpawnWindowMin == 0 {
		c.SpawnWindowMin = 64
	}
	if c.ThreadCommitsPerCycle == 0 {
		c.ThreadCommitsPerCycle = 1
	}
	return c
}

// Result carries the statistics of one simulation.
type Result struct {
	Cycles int64
	// Committed is the number of architecturally committed
	// instructions (always the trace length).
	Committed int64
	// Fetched counts all fetched instructions, including squashed
	// work.
	Fetched int64
	// IPC is Committed/Cycles.
	IPC float64

	// AvgActiveThreads is the time-average number of threads executing
	// instructions (Figure 4's metric); AvgAllocatedThreads includes
	// finished threads waiting to commit.
	AvgActiveThreads    float64
	AvgAllocatedThreads float64

	// ThreadsCommitted counts committed speculative threads;
	// AvgThreadSize is their mean size in instructions (Figure 7a).
	ThreadsCommitted int64
	AvgThreadSize    float64

	// Spawn accounting.
	Spawns                int64
	SpawnsBlockedNoTU     int64
	SpawnsBlockedOccupied int64
	SpawnsBlockedRegion   int64

	// Squash accounting. MispredictStalls counts stall-on-use
	// recoveries of mispredicted thread inputs (selective reissue
	// timing); the others count full thread squashes.
	MispredictStalls     int64
	MemViolationSquashes int64
	ControlSquashes      int64
	ThreadsKilled        int64

	// Value prediction (live-ins only, §4.3.1).
	VPLookups int64
	VPHits    int64

	// Policy effects.
	PairsRemovedAlone   int64
	PairsRemovedMinSize int64
	PairsRevisited      int64

	// Substrate stats.
	Branches, BranchMispredicts int64
	CacheHits, CacheMisses      uint64
	SVCForwards, SVCViolations  uint64

	// PairStats (when Config.CollectPairStats) records per-pair spawn
	// effectiveness, keyed by (SP, CQIP).
	PairStats map[PairID]*PairStat
}

// ApproxBytes reports the result's approximate resident size for
// engine cache accounting: a fixed block of counters plus the optional
// per-pair statistics map.
func (r *Result) ApproxBytes() int64 {
	return 512 + int64(len(r.PairStats))*96
}

// PairID keys per-pair statistics.
type PairID struct{ SP, CQIP uint32 }

// MarshalText renders the key as "SP-CQIP" so Result (whose PairStats
// map is keyed by PairID) serialises to JSON — the spmt-server API
// returns Result bodies verbatim.
func (id PairID) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("%d-%d", id.SP, id.CQIP)), nil
}

// PairStat aggregates one pair's dynamic behaviour.
type PairStat struct {
	Spawns        int64 // threads created
	Committed     int64 // threads that committed
	CommitInstrs  int64 // instructions committed by those threads
	Doomed        int64 // wrong-path spawns
	BlockedRegion int64
	BlockedNoTU   int64
	Squashes      int64 // validation + violation restarts of its threads
}

// VPAccuracy returns the live-in prediction hit ratio (0 when no
// predictions were made).
func (r *Result) VPAccuracy() float64 {
	if r.VPLookups == 0 {
		return 0
	}
	return float64(r.VPHits) / float64(r.VPLookups)
}
