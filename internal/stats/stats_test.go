package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{2, 2, 2}); got != 2 {
		t.Errorf("hmean(2,2,2) = %v", got)
	}
	// Classic: hmean(1,2) = 4/3.
	if got := HarmonicMean([]float64{1, 2}); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("hmean(1,2) = %v", got)
	}
	if HarmonicMean(nil) != 0 {
		t.Error("hmean(nil) != 0")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("hmean with zero must guard")
	}
	if HarmonicMean([]float64{1, -2}) != 0 {
		t.Error("hmean with negative must guard")
	}
}

func TestMeans(t *testing.T) {
	if ArithmeticMean([]float64{1, 2, 3}) != 2 {
		t.Error("amean wrong")
	}
	if ArithmeticMean(nil) != 0 {
		t.Error("amean(nil) != 0")
	}
	if got := GeometricMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("gmean(2,8) = %v", got)
	}
	if GeometricMean([]float64{2, 0}) != 0 {
		t.Error("gmean with zero must guard")
	}
	if GeometricMean(nil) != 0 {
		t.Error("gmean(nil) != 0")
	}
}

// TestMeanInequality: hmean <= gmean <= amean for positive values.
func TestMeanInequality(t *testing.T) {
	f := func(raw []uint16) bool {
		var vals []float64
		for _, v := range raw {
			vals = append(vals, float64(v%1000)+1)
		}
		if len(vals) == 0 {
			return true
		}
		h, g, a := HarmonicMean(vals), GeometricMean(vals), ArithmeticMean(vals)
		return h <= g+1e-9 && g <= a+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedupAndRatio(t *testing.T) {
	if Speedup(100, 50) != 2 {
		t.Error("speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Error("speedup zero guard")
	}
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Error("ratio wrong")
	}
}

func TestPercentiles(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	ps := Percentiles(vals, 0, 50, 100)
	if ps[0] != 1 || ps[1] != 3 || ps[2] != 5 {
		t.Errorf("percentiles = %v", ps)
	}
	if got := Percentiles(nil, 50); got[0] != 0 {
		t.Error("empty percentile != 0")
	}
	// Interpolation: p25 of [0,10] is 2.5.
	if got := Percentiles([]float64{0, 10}, 25); math.Abs(got[0]-2.5) > 1e-12 {
		t.Errorf("p25 = %v", got[0])
	}
	// Clamping.
	if got := Percentiles(vals, -5, 200); got[0] != 1 || got[1] != 5 {
		t.Errorf("clamped = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-5, 3, 15, 99, 1000} {
		h.Add(v)
	}
	if h.Total != 5 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Counts[0] != 2 { // -5 clamps into [0,10), 3 lands there
		t.Errorf("bucket 0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 99 and 1000 clamp to the last bucket
		t.Errorf("bucket 4 = %d", h.Counts[4])
	}
	if h.String() == "" {
		t.Error("histogram render empty")
	}
}
