// Package stats provides the aggregate statistics the paper reports:
// harmonic means for speed-ups, arithmetic means for counts, ratios,
// and simple histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// HarmonicMean returns the harmonic mean of positive values (the
// paper's aggregate for speed-ups). It returns 0 for an empty input and
// an error-free NaN-safe result otherwise.
func HarmonicMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 || math.IsNaN(v) {
			return 0
		}
		sum += 1 / v
	}
	return float64(len(vals)) / sum
}

// ArithmeticMean returns the mean (0 for empty input).
func ArithmeticMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// GeometricMean returns the geometric mean of positive values.
func GeometricMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Speedup returns base/new, guarding against zero.
func Speedup(baseCycles, newCycles int64) float64 {
	if newCycles <= 0 {
		return 0
	}
	return float64(baseCycles) / float64(newCycles)
}

// Ratio returns a/b, guarding against zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Percentiles returns the requested percentiles (0..100) of the values.
func Percentiles(vals []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(vals) == 0 {
		return out
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for i, p := range ps {
		if p <= 0 {
			out[i] = sorted[0]
			continue
		}
		if p >= 100 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		idx := p / 100 * float64(len(sorted)-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		frac := idx - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out
}

// Histogram counts values into fixed-width buckets starting at lo.
type Histogram struct {
	Lo, Width float64
	Counts    []int
	Total     int
}

// NewHistogram returns a histogram with n buckets of the given width.
func NewHistogram(lo, width float64, n int) *Histogram {
	return &Histogram{Lo: lo, Width: width, Counts: make([]int, n)}
}

// Add records a value (clamping to the outer buckets).
func (h *Histogram) Add(v float64) {
	i := int((v - h.Lo) / h.Width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// String renders bucket fractions.
func (h *Histogram) String() string {
	s := ""
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo := h.Lo + float64(i)*h.Width
		s += fmt.Sprintf("[%g,%g): %.1f%%  ", lo, lo+h.Width, 100*float64(c)/float64(h.Total))
	}
	return s
}
