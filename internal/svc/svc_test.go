package svc

import (
	"testing"
	"testing/quick"
)

func TestForwardingFromEarlierThread(t *testing.T) {
	m := New(3)
	// Thread 0 (TU 0) stores at pos 10, ready cycle 100.
	if v := m.Store(0, 0, 0x100, 10, 100); v != nil {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Thread 1000 (TU 1) loads at pos 1005 with address ready at 50.
	ready, srcPos, ok := m.Load(1000, 1, 0x100, 1005, 50)
	if !ok || srcPos != 10 {
		t.Fatalf("ok=%v srcPos=%d", ok, srcPos)
	}
	if ready != 103 {
		t.Errorf("ready = %d, want 103 (store ready 100 + 3 fwd)", ready)
	}
	if m.Forwards != 1 {
		t.Errorf("forwards = %d", m.Forwards)
	}
}

func TestSameTUForwardingCheaper(t *testing.T) {
	m := New(3)
	m.Store(0, 2, 0x100, 10, 100)
	ready, _, ok := m.Load(0, 2, 0x100, 12, 50)
	if !ok || ready != 101 {
		t.Errorf("same-TU forward ready = %d (ok=%v), want 101", ready, ok)
	}
}

func TestAddrReadyDominates(t *testing.T) {
	m := New(3)
	m.Store(0, 0, 0x100, 10, 5)
	ready, _, ok := m.Load(1000, 1, 0x100, 1005, 200)
	if !ok || ready != 200 {
		t.Errorf("ready = %d, want 200 (address ready later than data)", ready)
	}
}

func TestNoVersionFallsToCache(t *testing.T) {
	m := New(3)
	_, srcPos, ok := m.Load(0, 0, 0x500, 5, 10)
	if ok || srcPos != -1 {
		t.Errorf("ok=%v srcPos=%d, want miss to cache", ok, srcPos)
	}
}

func TestViolationDetected(t *testing.T) {
	m := New(3)
	// Consumer thread (order 1000) loads pos 1005 before the producer's
	// store at pos 500 is known: it reads architected state.
	m.Load(1000, 1, 0x200, 1005, 10)
	viols := m.Store(0, 0, 0x200, 500, 50)
	if len(viols) != 1 || viols[0].Order != 1000 || viols[0].LoadPos != 1005 {
		t.Fatalf("violations = %+v", viols)
	}
	if m.Violations != 1 {
		t.Errorf("violation count = %d", m.Violations)
	}
}

func TestNoViolationWhenLoadSawTheStore(t *testing.T) {
	m := New(3)
	m.Store(0, 0, 0x200, 500, 50)
	m.Load(1000, 1, 0x200, 1005, 10) // srcPos = 500
	// A later, older store (pos 400) does not invalidate: the load's
	// version (500) is newer.
	if v := m.Store(0, 0, 0x200, 400, 60); v != nil {
		t.Errorf("unexpected violation: %+v", v)
	}
}

func TestNoViolationForEarlierLoads(t *testing.T) {
	m := New(3)
	m.Load(0, 0, 0x200, 100, 10) // load BEFORE the store in program order
	if v := m.Store(1000, 1, 0x200, 500, 50); v != nil {
		t.Errorf("later store must not violate earlier load: %+v", v)
	}
}

func TestViolationDedupedPerThread(t *testing.T) {
	m := New(3)
	m.Load(1000, 1, 0x200, 1005, 10)
	m.Load(1000, 1, 0x200, 1007, 11)
	viols := m.Store(0, 0, 0x200, 500, 50)
	if len(viols) != 1 {
		t.Errorf("violations = %+v, want single entry per thread", viols)
	}
}

func TestReleaseRemovesRecords(t *testing.T) {
	m := New(3)
	m.Store(0, 0, 0x100, 10, 100)
	m.Load(1000, 1, 0x100, 1005, 10)
	m.Release(0)
	// The version is gone: load falls back to cache.
	_, _, ok := m.Load(2000, 2, 0x100, 2005, 10)
	if ok {
		t.Error("released version still visible")
	}
	m.Release(1000)
	m.Release(2000)
	if m.ActiveRecords() != 0 {
		t.Errorf("records leak: %d", m.ActiveRecords())
	}
}

func TestSquashedConsumerReloadsCleanly(t *testing.T) {
	m := New(3)
	m.Load(1000, 1, 0x200, 1005, 10)
	viols := m.Store(0, 0, 0x200, 500, 50)
	if len(viols) != 1 {
		t.Fatal("expected violation")
	}
	m.Release(1000) // consumer squashed
	// Re-executed load now sees the version.
	ready, srcPos, ok := m.Load(1000, 1, 0x200, 1005, 60)
	if !ok || srcPos != 500 || ready != 60 {
		t.Errorf("re-load: ready=%d srcPos=%d ok=%v", ready, srcPos, ok)
	}
	// And no stale violation remains against it.
	if v := m.Store(0, 0, 0x200, 400, 70); v != nil {
		t.Errorf("stale violation: %+v", v)
	}
}

// TestViolationOracleProperty: on random interleavings of one producer
// store and one consumer load to the same address, a violation is
// reported iff the load executed before the store was recorded and the
// store precedes the load in program order.
func TestViolationOracleProperty(t *testing.T) {
	f := func(loadFirst bool, storePos, loadDelta uint8) bool {
		m := New(3)
		sp := int(storePos)
		lp := sp + 1 + int(loadDelta)
		if loadFirst {
			m.Load(lp, 1, 0x42, lp, 0)
			viols := m.Store(0, 0, 0x42, sp, 10)
			return len(viols) == 1 && viols[0].Order == lp
		}
		m.Store(0, 0, 0x42, sp, 10)
		_, srcPos, ok := m.Load(lp, 1, 0x42, lp, 0)
		return ok && srcPos == sp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultipleVersionsPickNearest(t *testing.T) {
	m := New(3)
	m.Store(0, 0, 0x300, 100, 10)
	m.Store(2000, 2, 0x300, 2000, 30)
	m.Store(1000, 1, 0x300, 1000, 20) // inserted out of order
	_, srcPos, ok := m.Load(2500, 3, 0x300, 2500, 0)
	if !ok || srcPos != 2000 {
		t.Errorf("srcPos = %d, want 2000 (nearest earlier version)", srcPos)
	}
	_, srcPos, _ = m.Load(1500, 3, 0x300, 1500, 0)
	if srcPos != 1000 {
		t.Errorf("srcPos = %d, want 1000", srcPos)
	}
}
