// Package svc is a behavioural model of the Speculative Versioning
// Cache [Gopal et al., HPCA'98] as the paper's Clustered Speculative
// Multithreaded Processor uses it (HPCA'02 §4.1): it tracks the memory
// versions created by in-flight speculative threads, services loads from
// the nearest earlier version (with a configurable inter-thread-unit
// forwarding latency), detects memory dependence violations — a load
// that executed before an earlier thread's store to the same address —
// and discards a thread's versions on commit or squash.
//
// Threads are identified by their program order key (the trace position
// at which the thread starts), which is unique and stable across
// restarts. Values never appear here — the trace supplies them; the SVC
// provides timing and violation detection.
package svc

import "sort"

// Violation reports a load that consumed a stale version.
type Violation struct {
	Order   int // program-order key of the violating (consumer) thread
	LoadPos int // trace position of the stale load
}

type storeRec struct {
	order int
	pos   int
	ready int64
	tu    int
}

type loadRec struct {
	order  int
	pos    int
	srcPos int // position of the version consumed (-1 = architected)
	tu     int
}

type word struct {
	stores []storeRec // sorted by pos
	loads  []loadRec
}

// Memory is the versioned-memory model shared by all thread units.
type Memory struct {
	fwdLat  int64
	selfLat int64
	words   map[uint64]*word
	touched map[int]map[uint64]bool // order -> addresses with records
	// Stats
	Forwards, Violations uint64
}

// New returns an empty versioned memory with the given inter-TU
// forwarding latency in cycles (the paper uses 3).
func New(fwdLat int64) *Memory {
	if fwdLat <= 0 {
		fwdLat = 3
	}
	return &Memory{
		fwdLat:  fwdLat,
		selfLat: 1,
		words:   make(map[uint64]*word),
		touched: make(map[int]map[uint64]bool),
	}
}

func (m *Memory) wordAt(addr uint64) *word {
	w, ok := m.words[addr]
	if !ok {
		w = &word{}
		m.words[addr] = w
	}
	return w
}

func (m *Memory) touch(order int, addr uint64) {
	t, ok := m.touched[order]
	if !ok {
		t = make(map[uint64]bool)
		m.touched[order] = t
	}
	t[addr] = true
}

// Load services a load by the thread with the given program-order key
// executing on thread unit tu, at trace position pos, whose address is
// ready at cycle addrReady. It returns the cycle at which the data is
// available from an in-flight version, or ok=false when no in-flight
// version precedes the load (the caller then uses its local cache), and
// records the load for violation detection.
func (m *Memory) Load(order, tu int, addr uint64, pos int, addrReady int64) (ready int64, srcPos int, ok bool) {
	w := m.wordAt(addr)
	srcPos = -1
	var src *storeRec
	// Latest store strictly before the load in program order.
	i := sort.Search(len(w.stores), func(i int) bool { return w.stores[i].pos >= pos })
	if i > 0 {
		src = &w.stores[i-1]
		srcPos = src.pos
	}
	w.loads = append(w.loads, loadRec{order: order, pos: pos, srcPos: srcPos, tu: tu})
	m.touch(order, addr)
	if src == nil {
		return 0, -1, false
	}
	lat := m.selfLat
	if src.tu != tu {
		lat = m.fwdLat
		m.Forwards++
	}
	ready = src.ready + lat
	if addrReady > ready {
		ready = addrReady
	}
	return ready, srcPos, true
}

// Store records a version created by a thread's store and returns the
// set of threads whose already-performed loads are now known to have
// consumed a stale version (loads after the store in program order that
// read a version older than this store).
func (m *Memory) Store(order, tu int, addr uint64, pos int, ready int64) []Violation {
	w := m.wordAt(addr)
	i := sort.Search(len(w.stores), func(i int) bool { return w.stores[i].pos >= pos })
	w.stores = append(w.stores, storeRec{})
	copy(w.stores[i+1:], w.stores[i:])
	w.stores[i] = storeRec{order: order, pos: pos, ready: ready, tu: tu}
	m.touch(order, addr)

	var out []Violation
	seen := map[int]bool{}
	for _, l := range w.loads {
		if l.pos > pos && l.srcPos < pos && l.order != order && !seen[l.order] {
			seen[l.order] = true
			out = append(out, Violation{Order: l.order, LoadPos: l.pos})
		}
	}
	if len(out) > 0 {
		m.Violations += uint64(len(out))
		sort.Slice(out, func(a, b int) bool { return out[a].Order < out[b].Order })
	}
	return out
}

// Release discards every record of the given thread — used both when a
// thread commits (its stores become architected state, visible through
// the regular caches) and when it is squashed.
func (m *Memory) Release(order int) {
	addrs := m.touched[order]
	if addrs == nil {
		return
	}
	delete(m.touched, order)
	for addr := range addrs {
		w := m.words[addr]
		if w == nil {
			continue
		}
		stores := w.stores[:0]
		for _, s := range w.stores {
			if s.order != order {
				stores = append(stores, s)
			}
		}
		w.stores = stores
		loads := w.loads[:0]
		for _, l := range w.loads {
			if l.order != order {
				loads = append(loads, l)
			}
		}
		w.loads = loads
		if len(w.stores) == 0 && len(w.loads) == 0 {
			delete(m.words, addr)
		}
	}
}

// ActiveRecords reports the number of addresses with live records (for
// tests and leak checks).
func (m *Memory) ActiveRecords() int { return len(m.words) }
