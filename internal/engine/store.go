// Tiered artifact store: the engine memoizes job outputs through the
// Store interface. The default store is the in-memory byte-weighted
// LRU (Cache); wiring in a DiskTier upgrades it to a TieredStore whose
// Get transparently promotes disk hits into memory and whose memory
// evictions are demoted to disk, so a restarted process warms from the
// artifacts a previous run already computed.
package engine

import "sync"

// Store is the artifact store Exec memoizes through. Implementations
// must be safe for concurrent use.
type Store interface {
	// Get returns the artifact stored under key, if present.
	Get(key string) (any, bool)
	// Recheck is Get for the engine's double-checked leader path: it
	// consults only what is immediately resident (no disk read) and
	// records no hit/miss statistics, so the overwhelmingly-common
	// miss does not skew observability.
	Recheck(key string) (any, bool)
	// Add stores an artifact under its content key.
	Add(key string, val any)
}

// Recheck implements Store for the bare memory tier.
func (c *Cache) Recheck(key string) (any, bool) { return c.lookup(key, false) }

// Codec translates artifacts to and from a self-describing byte form
// for the disk tier. Implementations live outside this package (see
// internal/engine/codec) so the engine stays independent of the
// artifact types it caches.
type Codec interface {
	// Encode renders v as (kind, payload). ok reports whether the codec
	// supports v's dynamic type — unsupported artifacts simply stay
	// memory-only.
	Encode(v any) (kind string, data []byte, ok bool, err error)
	// Decode reconstructs an artifact of the given kind from data.
	Decode(kind string, data []byte) (any, error)
}

// TieredStore chains the in-memory LRU in front of a disk tier.
type TieredStore struct {
	mem  *Cache
	disk *DiskTier
	// promote serialises disk-to-memory promotion so concurrent misses
	// on the same key decode once and every caller observes the same
	// promoted pointer — the same identity guarantee the memory tier
	// alone provides.
	promote sync.Mutex
}

// NewTieredStore builds a store over the given memory and disk tiers
// and wires memory evictions to demote onto disk. The disk tier may be
// nil, in which case the store degenerates to the memory tier.
func NewTieredStore(mem *Cache, disk *DiskTier) *TieredStore {
	t := &TieredStore{mem: mem, disk: disk}
	if disk != nil {
		mem.OnEvict(func(key string, val any) { disk.Demote(key, val) })
	}
	return t
}

// Memory returns the memory tier.
func (t *TieredStore) Memory() *Cache { return t.mem }

// Disk returns the disk tier (nil when the store is memory-only).
func (t *TieredStore) Disk() *DiskTier { return t.disk }

// Get returns the artifact under key, reading through the tiers:
// memory first, then disk, promoting a disk hit into memory so the
// next lookup is free.
func (t *TieredStore) Get(key string) (any, bool) {
	if v, ok := t.mem.Get(key); ok {
		return v, true
	}
	if t.disk == nil {
		return nil, false
	}
	t.promote.Lock()
	defer t.promote.Unlock()
	// A concurrent caller may have promoted while we waited.
	if v, ok := t.mem.lookup(key, false); ok {
		return v, true
	}
	v, ok := t.disk.Get(key)
	if !ok {
		return nil, false
	}
	// A concurrent Add of this key may have landed while we read the
	// disk (its write-through is what made the key disk-resident in
	// the first place: Add fills memory before disk, so a disk hit
	// implies the computed artifact already reached the memory tier).
	// That in-memory artifact wins over our freshly-decoded copy —
	// every caller of a key must observe one pointer, or downstream
	// identity checks (reach result vs. its graph) break.
	if mv, ok := t.mem.lookup(key, false); ok {
		return mv, true
	}
	t.mem.Add(key, v)
	return v, true
}

// Recheck consults the memory tier only: the leader double-check runs
// after every store miss, and pulling the disk into it would pay a
// decode on the hot path for a race that Add's write-through ordering
// already confines to memory.
func (t *TieredStore) Recheck(key string) (any, bool) { return t.mem.lookup(key, false) }

// Add stores the artifact in memory and queues it for the disk tier's
// background writer (when its type has a codec), so every computed
// artifact becomes durable without the encode+write riding the job's
// completion path. The queue never drops writes — a full queue blocks
// — so a flushed store is exactly what synchronous write-through would
// have produced.
func (t *TieredStore) Add(key string, val any) {
	t.mem.Add(key, val)
	if t.disk != nil {
		t.disk.PutAsync(key, val)
	}
}
