package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// blob is the test artifact: a string payload with a controllable
// reported size.
type blob struct {
	S     string
	Bytes int64
}

func (b *blob) ApproxBytes() int64 { return b.Bytes }

// blobCodec serialises *blob and nothing else.
type blobCodec struct{}

func (blobCodec) Encode(v any) (string, []byte, bool, error) {
	b, ok := v.(*blob)
	if !ok {
		return "", nil, false, nil
	}
	return "blob", []byte(fmt.Sprintf("%d|%s", b.Bytes, b.S)), true, nil
}

func (blobCodec) Decode(kind string, data []byte) (any, error) {
	if kind != "blob" {
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
	var b blob
	s := string(data)
	i := strings.IndexByte(s, '|')
	if i < 0 {
		return nil, fmt.Errorf("bad blob payload")
	}
	if _, err := fmt.Sscanf(s[:i], "%d", &b.Bytes); err != nil {
		return nil, err
	}
	b.S = s[i+1:]
	return &b, nil
}

func openTestTier(t *testing.T, dir string, maxBytes int64) *DiskTier {
	t.Helper()
	dt, err := OpenDiskTier(dir, maxBytes, blobCodec{})
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func TestTieredStoreWriteThroughAndPromotion(t *testing.T) {
	dir := t.TempDir()
	dt := openTestTier(t, dir, 0)
	ts := NewTieredStore(NewCacheSized(8, 0), dt)

	ts.Add("k1", &blob{S: "hello", Bytes: 64})
	dt.Flush()
	if !dt.Has("k1") {
		t.Fatal("Add must write through to disk")
	}

	// A fresh tier over the same directory simulates a restart: the
	// memory tier is cold, the disk tier warm.
	dt2 := openTestTier(t, dir, 0)
	ts2 := NewTieredStore(NewCacheSized(8, 0), dt2)
	v, ok := ts2.Get("k1")
	if !ok || v.(*blob).S != "hello" {
		t.Fatalf("disk read-through = %v, %v", v, ok)
	}
	// Promotion: the second lookup must be a memory hit returning the
	// identical pointer.
	v2, ok := ts2.Get("k1")
	if !ok || v2 != v {
		t.Fatal("disk hit was not promoted into memory")
	}
	if st := ts2.Memory().Stats(); st.Hits != 1 {
		t.Errorf("memory hits = %d, want 1", st.Hits)
	}
	if st := dt2.Stats(); st.Hits != 1 {
		t.Errorf("disk hits = %d, want 1", st.Hits)
	}
}

func TestMemoryEvictionDemotesToDisk(t *testing.T) {
	dir := t.TempDir()
	dt := openTestTier(t, dir, 0)
	// Tiny memory budget: adding the second artifact evicts the first.
	ts := NewTieredStore(NewCacheSized(8, 100), dt)
	ts.Add("a", &blob{S: "first", Bytes: 80})
	dt.Flush()
	// Delete the write-through copy so only demotion can restore it.
	dt.mu.Lock()
	if el, ok := dt.items["a"]; ok {
		dt.dropLocked(el)
	}
	dt.mu.Unlock()
	ts.Add("b", &blob{S: "second", Bytes: 80})
	dt.Flush()
	if ts.Memory().Len() != 1 {
		t.Fatalf("memory entries = %d, want 1", ts.Memory().Len())
	}
	if !dt.Has("a") {
		t.Fatal("evicted entry was not demoted to disk")
	}
	if v, ok := ts.Get("a"); !ok || v.(*blob).S != "first" {
		t.Fatalf("demoted entry unreadable: %v, %v", v, ok)
	}
}

func TestDiskTierCorruptionIsAMissNotAFatal(t *testing.T) {
	dir := t.TempDir()
	dt := openTestTier(t, dir, 0)
	dt.Put("k", &blob{S: strings.Repeat("x", 100), Bytes: 100})
	path := dt.artPath("k")
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	// Truncate the artifact mid-payload.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, img[:len(img)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := dt.Get("k"); ok {
		t.Fatal("truncated artifact must be a miss")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt artifact file must be deleted")
	}
	if st := dt.Stats(); st.Errors == 0 || st.Misses == 0 {
		t.Errorf("stats = %+v, want errors and misses recorded", st)
	}

	// The slot is rewritable: the next Put restores it.
	dt.Put("k", &blob{S: "fresh", Bytes: 5})
	if v, ok := dt.Get("k"); !ok || v.(*blob).S != "fresh" {
		t.Fatal("rewrite after corruption failed")
	}

	// Scribbled checksum: flip a payload byte.
	img, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-6] ^= 0xff
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := dt.Get("k"); ok {
		t.Fatal("checksum mismatch must be a miss")
	}
}

func TestDiskTierOpenScansAndCleans(t *testing.T) {
	dir := t.TempDir()
	dt := openTestTier(t, dir, 0)
	dt.Put("alpha", &blob{S: "a", Bytes: 1})
	dt.Put("beta", &blob{S: "b", Bytes: 1})

	// Crash debris: an in-progress temp file and a corrupt artifact.
	if err := os.WriteFile(filepath.Join(dir, "tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.art"), []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	dt2 := openTestTier(t, dir, 0)
	if dt2.Len() != 2 {
		t.Fatalf("reopened tier has %d entries, want 2", dt2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp-123")); !os.IsNotExist(err) {
		t.Error("temp debris must be removed at open")
	}
	if _, err := os.Stat(filepath.Join(dir, "junk.art")); !os.IsNotExist(err) {
		t.Error("unparseable artifact must be removed at open")
	}
	for _, key := range []string{"alpha", "beta"} {
		if v, ok := dt2.Get(key); !ok || v.(*blob).S == "" {
			t.Errorf("key %q unreadable after reopen: %v, %v", key, v, ok)
		}
	}
}

func TestDiskTierByteBudgetEvicts(t *testing.T) {
	dir := t.TempDir()
	dt := openTestTier(t, dir, 200)
	for i := 0; i < 6; i++ {
		dt.Put(fmt.Sprintf("k%d", i), &blob{S: strings.Repeat("x", 80), Bytes: 80})
	}
	st := dt.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions under a 200-byte budget", st)
	}
	if st.BytesResident > 200 && st.Entries > 1 {
		t.Errorf("resident %d bytes exceeds budget with %d entries", st.BytesResident, st.Entries)
	}
	// Files for evicted keys are gone.
	files, err := filepath.Glob(filepath.Join(dir, "*"+artExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != st.Entries {
		t.Errorf("%d files on disk for %d index entries", len(files), st.Entries)
	}
}

// negSizer reports a nonsense negative size; Add must log and charge
// the default, not panic or corrupt the ledger.
type negSizer struct{}

func (negSizer) ApproxBytes() int64 { return -42 }

func TestCacheRejectsNegativeSizer(t *testing.T) {
	c := NewCacheSized(4, 1<<20)
	c.Add("neg", negSizer{})
	if c.Bytes() != defaultEntryBytes {
		t.Errorf("negative Sizer charged %d bytes, want default %d", c.Bytes(), defaultEntryBytes)
	}
	if v, ok := c.Get("neg"); !ok || v == nil {
		t.Error("entry with negative size must still be stored")
	}
}

// emptyCodec encodes everything to zero bytes — the disk tier must
// refuse the write rather than index an undecodable artifact.
type emptyCodec struct{}

func (emptyCodec) Encode(v any) (string, []byte, bool, error) { return "empty", nil, true, nil }
func (emptyCodec) Decode(kind string, data []byte) (any, error) {
	return nil, fmt.Errorf("nothing to decode")
}

func TestDiskTierRefusesZeroByteArtifacts(t *testing.T) {
	dt, err := OpenDiskTier(t.TempDir(), 0, emptyCodec{})
	if err != nil {
		t.Fatal(err)
	}
	dt.Put("zero", struct{}{})
	if dt.Len() != 0 {
		t.Fatal("zero-byte artifact must not be indexed")
	}
	if _, ok := dt.Get("zero"); ok {
		t.Fatal("zero-byte artifact must be a miss")
	}
}

func TestTieredStoreUnsupportedTypeStaysMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	dt := openTestTier(t, dir, 0)
	ts := NewTieredStore(NewCacheSized(8, 0), dt)
	ts.Add("mem-only", 42) // int has no codec
	if dt.Len() != 0 {
		t.Fatal("unsupported type must not reach disk")
	}
	if v, ok := ts.Get("mem-only"); !ok || v != 42 {
		t.Fatal("unsupported type must still be served from memory")
	}
}

// slowCodec widens the write-through and promote windows so the
// identity race below has room to fire without the fixes in
// TieredStore.Get / Engine.Exec.
type slowCodec struct{ blobCodec }

func (c slowCodec) Encode(v any) (string, []byte, bool, error) {
	time.Sleep(200 * time.Microsecond)
	return c.blobCodec.Encode(v)
}

func (c slowCodec) Decode(kind string, data []byte) (any, error) {
	time.Sleep(200 * time.Microsecond)
	return c.blobCodec.Decode(kind, data)
}

// TestTieredExecPointerIdentity: every consumer of a key must observe
// the same pointer within one process life, even when the key's
// write-through lands on disk while another dependent is mid-lookup.
// This is the bench/cfg/reach diamond that core.Select's identity
// check guards: without the promote-path memory recheck and the
// leader double-check, a dependent could receive a freshly-decoded
// duplicate of an artifact its sibling already holds.
func TestTieredExecPointerIdentity(t *testing.T) {
	dir := t.TempDir()
	dt, err := OpenDiskTier(dir, 0, slowCodec{})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Workers: 4, Disk: dt})
	ctx := context.Background()
	for iter := 0; iter < 200; iter++ {
		var mu sync.Mutex
		var seen []any
		record := func(v any) {
			mu.Lock()
			seen = append(seen, v)
			mu.Unlock()
		}
		cJob := Job{
			Key: fmt.Sprintf("c/%d", iter),
			Run: func(ctx context.Context, deps []any) (any, error) {
				return &blob{S: "c", Bytes: 16}, nil
			},
		}
		rJob := Job{
			Key:  fmt.Sprintf("r/%d", iter),
			Deps: []Job{cJob},
			Run: func(ctx context.Context, deps []any) (any, error) {
				record(deps[0])
				return &blob{S: "r", Bytes: 16}, nil
			},
		}
		bJob := Job{
			Key:  fmt.Sprintf("b/%d", iter),
			Deps: []Job{cJob, rJob},
			Run: func(ctx context.Context, deps []any) (any, error) {
				record(deps[0])
				return &blob{S: "b", Bytes: 16}, nil
			},
		}
		if _, err := eng.Exec(ctx, bJob); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		for i := 1; i < len(seen); i++ {
			if seen[i] != seen[0] {
				t.Fatalf("iter %d: dependents observed distinct pointers for one key", iter)
			}
		}
		mu.Unlock()
	}
}

func TestEngineWarmFromDisk(t *testing.T) {
	dir := t.TempDir()
	dt := openTestTier(t, dir, 0)
	eng := New(Options{Workers: 1, Disk: dt})
	ts := eng.local.(*TieredStore)
	ts.Add("w1", &blob{S: "one", Bytes: 8})
	ts.Add("w2", &blob{S: "two", Bytes: 8})
	eng.Close()

	dt2 := openTestTier(t, dir, 0)
	eng2 := New(Options{Workers: 1, Disk: dt2})
	if n := eng2.WarmFromDisk(); n != 2 {
		t.Fatalf("warmed %d artifacts, want 2", n)
	}
	if eng2.mem.Len() != 2 {
		t.Fatalf("memory tier holds %d entries after warm, want 2", eng2.mem.Len())
	}
	st := eng2.Stats()
	if st.Disk == nil || st.Disk.Hits != 2 {
		t.Errorf("disk stats after warm = %+v", st.Disk)
	}
}

// TestWarmFromDiskRespectsMemoryBudget: boot-time warm-up must not
// decode a whole store the memory tier cannot hold — only the
// most-recently-used artifacts that fit are promoted.
func TestWarmFromDiskRespectsMemoryBudget(t *testing.T) {
	dir := t.TempDir()
	dt := openTestTier(t, dir, 0)
	eng := New(Options{Workers: 1, Disk: dt})
	ts := eng.local.(*TieredStore)
	now := time.Now()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("w%d", i)
		ts.Add(key, &blob{S: fmt.Sprintf("v%d", i), Bytes: 16})
		dt.Flush()
		// Reopening orders by mtime; the writes above land within one
		// timestamp tick, so spread them explicitly.
		if err := os.Chtimes(dt.artPath(key), now, now.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	dt2 := openTestTier(t, dir, 0)
	eng2 := New(Options{Workers: 1, CacheEntries: 2, Disk: dt2})
	if n := eng2.WarmFromDisk(); n != 2 {
		t.Fatalf("warmed %d artifacts into a 2-entry memory tier, want 2", n)
	}
	if st := dt2.Stats(); st.Hits != 2 {
		t.Errorf("disk decodes = %d, want 2 (cold artifacts must stay undecoded)", st.Hits)
	}
	// The two most recently used artifacts won.
	for _, key := range []string{"w3", "w4"} {
		if _, ok := eng2.mem.lookup(key, false); !ok {
			t.Errorf("hot artifact %q missing after budgeted warm", key)
		}
	}
	if _, ok := eng2.mem.lookup("w0", false); ok {
		t.Error("cold artifact w0 must not occupy the budgeted memory tier")
	}
}
