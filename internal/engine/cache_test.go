package engine

import "testing"

func TestCacheHitMissStats(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("get a = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Capacity != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a") // a is now most recently used
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction, want LRU evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

func TestCacheReAddRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Add("a", 1)
	c.Add("a", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Errorf("a = %v, want refreshed value 2", v)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewCache(0)
	if got := c.Stats().Capacity; got != DefaultCacheEntries {
		t.Errorf("capacity = %d, want %d", got, DefaultCacheEntries)
	}
}

func TestKeyHashStableAndDistinct(t *testing.T) {
	a1 := KeyHash("coverage", 0.9, "nodes", 256)
	a2 := KeyHash("coverage", 0.9, "nodes", 256)
	b := KeyHash("coverage", 0.95, "nodes", 256)
	if a1 != a2 {
		t.Errorf("hash not stable: %s vs %s", a1, a2)
	}
	if a1 == b {
		t.Errorf("distinct configs collide: %s", a1)
	}
}
