// Package engine is the concurrent job-execution engine behind the
// experiment suite and the spmt-server HTTP service. It models the
// analysis pipeline (generate → emulate → prune CFG → reach →
// select/heuristic tables → simulate) as keyed jobs with dependencies
// and runs them on the process's work-stealing scheduler
// (internal/sched), deduplicating in-flight work singleflight-style
// and memoizing completed artifacts in a content-keyed LRU cache.
//
// Every job is a pure function of its dependency outputs, so execution
// is deterministic: a run with 8 workers produces results identical to
// a serial run, only faster. A scheduler worker is held only while a
// job's Run function executes; waits on dependencies or on another
// caller's in-flight computation are helping waits (the worker runs
// other queued tasks meanwhile), so arbitrarily deep dependency chains
// cannot deadlock the pool. Because jobs run on the same scheduler
// that reach's per-source fan-out and linalg's tile fan-out fork into,
// one core budget covers every parallelism level at once.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Job is one keyed unit of work. Deps are executed (or fetched from
// cache) before Run is invoked; their outputs are passed to Run in
// declaration order. A Job with an empty Key is never cached or
// deduplicated — it always runs.
type Job struct {
	// Key is the content key: it must encode everything that
	// determines the output (program, size class, config hash).
	Key string
	// Deps are resolved concurrently before Run.
	Deps []Job
	// Run computes the artifact. deps[i] is the output of Deps[i].
	Run func(ctx context.Context, deps []any) (any, error)
}

// Options configures an Engine.
type Options struct {
	// Sched, when non-nil, is the work-stealing scheduler jobs execute
	// on — normally the one process-wide scheduler, so engine jobs,
	// reach fan-outs and linalg tile fan-outs share a single core
	// budget. When nil the engine builds its own scheduler with
	// Workers workers.
	Sched *sched.Scheduler
	// Workers sizes the scheduler the engine builds when Sched is nil
	// (<= 0 selects runtime.GOMAXPROCS(0)); Workers == 1 gives serial
	// execution. Ignored when Sched is set.
	Workers int
	// CacheEntries bounds the artifact cache (<= 0 selects
	// DefaultCacheEntries).
	CacheEntries int
	// CacheBytes bounds the artifact cache's approximate resident
	// bytes (<= 0 means unbounded). Artifacts implementing Sizer are
	// charged their reported size; traces dominate, so a byte budget
	// keeps memory flat where an entry count alone would not.
	CacheBytes int64
	// Disk, when non-nil, backs the in-memory cache with a persistent
	// tier: cache misses read through to disk (promoting hits into
	// memory), computed artifacts are written through, and memory
	// evictions are demoted instead of discarded. See OpenDiskTier.
	Disk *DiskTier
	// Remote, when non-nil, is consulted after a local store miss and
	// before computing: a shard cluster wires this to the owning
	// node's artifact-exchange endpoint so artifacts transfer instead
	// of being recomputed. Fetched artifacts are added through the
	// local store (and so written through to Disk).
	Remote RemoteFetcher
	// Replicate, when non-nil, is handed every locally-COMPUTED
	// artifact right after it is persisted — the R=2 write-through
	// hook a shard cluster uses to push the artifact to the key's
	// replica owners. Fetched, injected, or store-resident artifacts
	// never reach it (they exist elsewhere by construction), so a
	// replication push can never cascade into another push.
	// Implementations must return quickly (the shard replicator only
	// enqueues) — the hook rides the job-completion path.
	Replicate Replicator
}

// Replicator receives locally-computed artifacts for asynchronous
// replication. Implementations must be safe for concurrent use.
type Replicator interface {
	Replicate(ctx context.Context, key string, val any)
}

// Stats is a point-in-time snapshot of engine activity.
type Stats struct {
	// Cache is the in-memory tier of the artifact store; Disk is the
	// persistent tier (absent when the engine runs memory-only).
	Cache CacheStats `json:"cache"`
	Disk  *DiskStats `json:"disk,omitempty"`
	// Executed counts Run invocations (cache misses that were not
	// deduplicated onto another caller's in-flight run).
	Executed uint64 `json:"executed"`
	// Deduped counts calls that joined an in-flight computation of the
	// same key instead of running it again.
	Deduped uint64 `json:"deduped"`
	// Workers is the scheduler's pool size.
	Workers int `json:"workers"`
	// Latency holds per-job-kind Run-latency histograms, keyed by the
	// leading segment of the job key ("emu", "reach", "sim", …).
	Latency map[string]LatencyStats `json:"latency,omitempty"`
	// Sched snapshots the work-stealing scheduler the engine runs on:
	// steals, queue depths, per-worker occupancy.
	Sched sched.Stats `json:"sched"`
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// Engine runs jobs on a bounded worker pool over a shared artifact
// cache. It is safe for concurrent use; a single Engine is meant to be
// shared by every suite and server request in the process so they hit
// each other's warm artifacts.
type Engine struct {
	sched *sched.Scheduler
	// local is the store chain Exec memoizes through (memory, or
	// memory+disk) — also the view Peek and WarmFromDisk use. rstore,
	// when non-nil, is the remote-fetch stage consulted between a local
	// miss and a fresh computation.
	local    Store
	rstore   *remoteStore
	repl     Replicator
	mem      *Cache
	disk     *DiskTier
	latency  *latencyRecorder
	mu       sync.Mutex
	inflight map[string]*call
	executed atomic.Uint64
	deduped  atomic.Uint64
}

// New builds an Engine.
func New(opts Options) *Engine {
	s := opts.Sched
	if s == nil {
		s = sched.New(opts.Workers)
	}
	mem := NewCacheSized(opts.CacheEntries, opts.CacheBytes)
	var local Store = mem
	if opts.Disk != nil {
		local = NewTieredStore(mem, opts.Disk)
	}
	var rstore *remoteStore
	if opts.Remote != nil {
		rstore = newRemoteStore(local, opts.Remote)
	}
	return &Engine{
		sched:    s,
		local:    local,
		rstore:   rstore,
		repl:     opts.Replicate,
		mem:      mem,
		disk:     opts.Disk,
		latency:  newLatencyRecorder(),
		inflight: make(map[string]*call),
	}
}

// Workers returns the scheduler's pool size.
func (e *Engine) Workers() int { return e.sched.Workers() }

// Sched returns the scheduler the engine runs jobs on, so nested
// parallelism (reach fan-out, linalg tiles, suite sweeps) can fork
// into the same core budget.
func (e *Engine) Sched() *sched.Scheduler { return e.sched }

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Cache:    e.mem.Stats(),
		Executed: e.executed.Load(),
		Deduped:  e.deduped.Load(),
		Workers:  e.sched.Workers(),
		Latency:  e.latency.snapshot(),
		Sched:    e.sched.Stats(),
	}
	if e.disk != nil {
		ds := e.disk.Stats()
		s.Disk = &ds
	}
	return s
}

// Disk returns the engine's disk tier, or nil when memory-only.
func (e *Engine) Disk() *DiskTier { return e.disk }

// Close drains the disk tier's async-write queue and stops its
// background writer, so every computed artifact is durable before the
// process exits. A memory-only engine closes trivially; the engine
// itself stays usable (later disk writes degrade to synchronous).
// Close is idempotent and safe to call concurrently with itself and
// with in-flight Exec calls — every Close returns only after the queue
// has drained, so an ops shutdown path racing a SIGTERM drain cannot
// observe a half-flushed store.
func (e *Engine) Close() {
	if e.disk != nil {
		e.disk.Close()
	}
}

// Drop discards the artifact stored under key from every local tier —
// memory and disk, with the async write queue flushed first so an
// in-flight write-through cannot resurrect the key. It reports whether
// any tier held the key. Drop exists for tests and cache-invalidation
// tooling; it does not touch remote replicas.
func (e *Engine) Drop(key string) bool {
	dropped := e.mem.Remove(key)
	if e.disk != nil {
		e.disk.Flush()
		if e.disk.Remove(key) {
			dropped = true
		}
	}
	return dropped
}

// WarmFromDisk promotes disk-resident artifacts into the memory tier —
// the cold-start path for a server or CLI pointed at a warm store
// directory — and returns how many artifacts were loaded. Only the
// most-recently-used artifacts that fit the memory budget are decoded
// (file size approximates resident cost), so boot time scales with
// the memory tier, not the store directory; the selected set is then
// replayed least recently used first so recency ends hottest-first. A
// memory-only engine warms nothing.
func (e *Engine) WarmFromDisk() int {
	ts, ok := e.local.(*TieredStore)
	if !ok || e.disk == nil {
		return 0
	}
	entries := e.disk.Entries() // LRU first
	start := len(entries)
	var bytes int64
	for i := len(entries) - 1; i >= 0; i-- {
		bytes += entries[i].Bytes
		if (e.mem.maxBytes > 0 && bytes > e.mem.maxBytes) ||
			len(entries)-i > e.mem.capacity {
			break
		}
		start = i
	}
	n := 0
	for _, ent := range entries[start:] {
		if _, ok := ts.mem.lookup(ent.Key, false); ok {
			continue
		}
		if _, ok := ts.Get(ent.Key); ok {
			n++
		}
	}
	return n
}

// Exec resolves a job: cache hit, join of an identical in-flight
// computation, or a fresh run on the worker pool (dependencies first,
// concurrently). The error of a failed run is propagated to every
// joined caller; failures are never cached, so a later Exec retries.
//
// Under an active trace, every keyed resolution records an
// "exec <kind>" span whose tier attribute names how the artifact was
// obtained — mem, disk, remote, deduped, or computed — the per-stage
// attribution the span tree exists for. An untraced call pays one
// context lookup and nothing else.
func (e *Engine) Exec(ctx context.Context, j Job) (any, error) {
	if j.Key != "" {
		span, ctx := obs.StartSpan(ctx, "exec "+JobKind(j.Key), obs.A("key", j.Key))
		defer span.End()
		if IsSpeculative(ctx) {
			span.SetAttr("speculative", "true")
		}
		// The memory peek exists only to split the mem/disk tier
		// attribute; it records no stats and is skipped untraced.
		memResident := false
		if span.Active() && e.disk != nil {
			_, memResident = e.mem.Recheck(j.Key)
		}
		if v, ok := e.local.Get(j.Key); ok {
			if e.disk != nil && !memResident {
				span.SetAttr("tier", "disk")
			} else {
				span.SetAttr("tier", "mem")
			}
			return v, nil
		}
		if e.rstore != nil {
			if v, ok := e.rstore.Fetch(ctx, j.Key); ok {
				span.SetAttr("tier", "remote")
				return v, nil
			}
		}
		// Singleflight: join an identical in-flight computation.
		e.mu.Lock()
		if c, ok := e.inflight[j.Key]; ok {
			e.mu.Unlock()
			e.deduped.Add(1)
			span.SetAttr("tier", "deduped")
			// A scheduler worker that joins here lends its core to a
			// substitute worker for the duration of the wait, so the
			// leader's Run always has a runner and no core idles.
			if err := e.sched.Block(ctx, c.done); err != nil {
				return nil, err
			}
			if c.err != nil && ctx.Err() == nil &&
				(errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				// The leader was cancelled under its own context;
				// retry under ours rather than surfacing a foreign
				// cancellation.
				return e.Exec(ctx, j)
			}
			return c.val, c.err
		}
		c := &call{done: make(chan struct{})}
		e.inflight[j.Key] = c
		e.mu.Unlock()

		completed := false
		fromStore := false
		defer func() {
			if !completed {
				// j.Run panicked. Record an error so joined callers
				// unblock and the key is not wedged forever, then let
				// the panic propagate to our own caller.
				c.err = fmt.Errorf("engine: job %q panicked", j.Key)
			}
			if c.err == nil && !fromStore {
				ps, pctx := obs.StartSpan(ctx, "persist "+JobKind(j.Key), obs.A("key", j.Key))
				e.local.Add(j.Key, c.val)
				if e.repl != nil {
					// Only freshly-computed artifacts replicate: this
					// branch is unreachable for store hits, remote
					// fetches, and injected pushes.
					e.repl.Replicate(pctx, j.Key, c.val)
				}
				ps.End()
			}
			e.mu.Lock()
			delete(e.inflight, j.Key)
			e.mu.Unlock()
			close(c.done)
		}()
		// Double-check now that we are the leader: a racing leader may
		// have completed — and published — this key between our store
		// miss above and the inflight registration. Re-running the job
		// would mint a second pointer for artifacts the racer's
		// consumers already hold.
		if v, ok := e.local.Recheck(j.Key); ok {
			span.SetAttr("tier", "mem")
			c.val, fromStore, completed = v, true, true
			return c.val, nil
		}
		// Committed to computing: consult the request's admission hook.
		// This is the authoritative gate — a warm classification made at
		// the HTTP layer can be stale by now (the artifact evicted
		// between probe and here), and only this point knows a compute
		// is really about to happen.
		if gate := computeGateFrom(ctx); gate != nil {
			release, gerr := e.gateCompute(ctx, gate)
			if gerr != nil {
				span.SetAttr("tier", "rejected")
				span.SetAttr("error", gerr.Error())
				c.err = gerr
				completed = true
				return nil, gerr
			}
			if release != nil {
				defer release()
			}
		}
		span.SetAttr("tier", "computed")
		c.val, c.err = e.run(ctx, j)
		completed = true
		if c.err != nil {
			span.SetAttr("error", c.err.Error())
		}
		return c.val, c.err
	}
	return e.run(ctx, j)
}

// run resolves dependencies and executes j.Run as a scheduler task:
// queued for a worker when called from an external goroutine, inline
// when the caller already is one (a dependency resolved on a worker
// must not wait for a second worker to free up).
func (e *Engine) run(ctx context.Context, j Job) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deps, err := e.resolveDeps(ctx, j.Deps)
	if err != nil {
		return nil, err
	}
	var v any
	if derr := e.sched.Do(ctx, JobKind(j.Key), func() {
		e.executed.Add(1)
		rs, rctx := obs.StartSpan(ctx, "run "+JobKind(j.Key))
		start := time.Now()
		v, err = j.Run(rctx, deps)
		e.latency.observe(JobKind(j.Key), time.Since(start))
		rs.End()
	}); derr != nil {
		return nil, derr
	}
	if err != nil {
		return nil, fmt.Errorf("engine: job %q: %w", j.Key, err)
	}
	return v, nil
}

// resolveDeps executes the dependency jobs concurrently — a
// caller-participating parallel-for over the declaration list — and
// returns their outputs in declaration order.
func (e *Engine) resolveDeps(ctx context.Context, deps []Job) ([]any, error) {
	switch len(deps) {
	case 0:
		return nil, nil
	case 1:
		v, err := e.Exec(ctx, deps[0])
		if err != nil {
			return nil, err
		}
		return []any{v}, nil
	}
	vals := make([]any, len(deps))
	errs := make([]error, len(deps))
	e.sched.For("dep", len(deps), func(i int) {
		vals[i], errs[i] = e.Exec(ctx, deps[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return vals, nil
}
