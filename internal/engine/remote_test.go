package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeFetcher serves a fixed key map and counts calls.
type fakeFetcher struct {
	mu    sync.Mutex
	vals  map[string]any
	calls atomic.Int64
}

func (f *fakeFetcher) Fetch(ctx context.Context, key string) (any, bool) {
	f.calls.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.vals[key]
	return v, ok
}

// TestRemoteFetchSkipsCompute: a key the fetcher serves must never run
// its job, and the fetched value must be memoized locally so later
// Execs skip even the fetch.
func TestRemoteFetchSkipsCompute(t *testing.T) {
	ff := &fakeFetcher{vals: map[string]any{"sim/warm": "remote-value"}}
	e := New(Options{Workers: 2, Remote: ff})

	ran := false
	job := Job{Key: "sim/warm", Run: func(ctx context.Context, deps []any) (any, error) {
		ran = true
		return "local-value", nil
	}}
	v, err := e.Exec(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if ran || v != "remote-value" {
		t.Fatalf("Exec = %v (ran=%v), want remote-value without running", v, ran)
	}
	if _, err := e.Exec(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if n := ff.calls.Load(); n != 1 {
		t.Errorf("fetcher called %d times, want 1 (second Exec must hit the local cache)", n)
	}

	// A key the fetcher misses computes locally exactly once.
	miss := Job{Key: "sim/cold", Run: func(ctx context.Context, deps []any) (any, error) {
		return "computed", nil
	}}
	if v, err := e.Exec(context.Background(), miss); err != nil || v != "computed" {
		t.Fatalf("miss Exec = %v, %v", v, err)
	}
}

// TestRemoteFetchSingleDecode: concurrent Execs of one remote-served
// key must observe a single value instance (the fetch-and-add path is
// serialised), mirroring the tiered store's promotion identity
// guarantee.
func TestRemoteFetchSingleDecode(t *testing.T) {
	type box struct{ n int }
	ff := &fakeFetcher{vals: map[string]any{"reach/x": &box{7}}}
	e := New(Options{Workers: 4, Remote: ff})
	job := Job{Key: "reach/x", Run: func(ctx context.Context, deps []any) (any, error) {
		t.Error("job must not run")
		return nil, nil
	}}
	var wg sync.WaitGroup
	got := make([]any, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := e.Exec(context.Background(), job)
			if err != nil {
				t.Error(err)
			}
			got[i] = v
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d observed a different pointer", i)
		}
	}
}

// TestPeekStaysLocal: Peek must consult only the local tiers — a
// remote-served key is invisible to it until something Execs it.
func TestPeekStaysLocal(t *testing.T) {
	ff := &fakeFetcher{vals: map[string]any{"sim/remote-only": "v"}}
	e := New(Options{Workers: 1, Remote: ff})
	if _, ok := e.Peek("sim/remote-only"); ok {
		t.Fatal("Peek must not consult the remote fetcher")
	}
	if n := ff.calls.Load(); n != 0 {
		t.Fatalf("Peek triggered %d fetches", n)
	}
	if _, err := e.Exec(context.Background(), Job{Key: "sim/remote-only",
		Run: func(ctx context.Context, deps []any) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Peek("sim/remote-only"); !ok || v != "v" {
		t.Fatalf("Peek after Exec = %v, %v", v, ok)
	}
	if _, ok := e.Peek(""); ok {
		t.Error("empty key must miss")
	}
}
