// Per-job-kind latency accounting: every Run invocation is timed and
// recorded into a fixed-bucket histogram keyed by the job's kind (the
// leading segment of its cache key — "emu", "reach", "sim", …), so
// /v1/stats exposes where a full-size sweep spends its time without any
// external profiler.
package engine

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBucketsMS lists the histogram's bucket upper bounds in
// milliseconds; a final implicit +Inf bucket catches the rest. An
// array (not a slice) so counts sizing is a compile-time constant and
// no caller can mutate the bounds out from under live histograms.
var latencyBucketsMS = [...]float64{1, 5, 25, 100, 500, 2500, 10000}

// LatencyStats is one job kind's latency histogram snapshot.
type LatencyStats struct {
	// Count is the number of Run invocations of this kind.
	Count uint64 `json:"count"`
	// TotalMS and MaxMS aggregate wall time in milliseconds.
	TotalMS float64 `json:"total_ms"`
	MaxMS   float64 `json:"max_ms"`
	// BucketsMS are the bucket upper bounds; Counts has one extra
	// trailing element for the +Inf bucket.
	BucketsMS []float64 `json:"buckets_ms"`
	Counts    []uint64  `json:"counts"`
}

// latencyHist is the mutable histogram behind a LatencyStats snapshot.
type latencyHist struct {
	count   uint64
	totalMS float64
	maxMS   float64
	counts  [len(latencyBucketsMS) + 1]uint64
}

func (h *latencyHist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.count++
	h.totalMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
	i := sort.SearchFloat64s(latencyBucketsMS[:], ms)
	h.counts[i]++
}

func (h *latencyHist) snapshot() LatencyStats {
	s := LatencyStats{
		Count:     h.count,
		TotalMS:   h.totalMS,
		MaxMS:     h.maxMS,
		BucketsMS: append([]float64(nil), latencyBucketsMS[:]...),
		Counts:    make([]uint64, len(h.counts)),
	}
	copy(s.Counts, h.counts[:])
	return s
}

// latencyRecorder aggregates histograms per job kind.
type latencyRecorder struct {
	mu     sync.Mutex
	byKind map[string]*latencyHist
}

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{byKind: make(map[string]*latencyHist)}
}

func (r *latencyRecorder) observe(kind string, d time.Duration) {
	r.mu.Lock()
	h := r.byKind[kind]
	if h == nil {
		h = &latencyHist{}
		r.byKind[kind] = h
	}
	h.observe(d)
	r.mu.Unlock()
}

func (r *latencyRecorder) snapshot() map[string]LatencyStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]LatencyStats, len(r.byKind))
	for k, h := range r.byKind {
		out[k] = h.snapshot()
	}
	return out
}

// JobKind extracts the job-kind label from a cache key: the segment
// before the first '/'. Keyless (ad-hoc) jobs are grouped as "adhoc".
func JobKind(key string) string {
	if key == "" {
		return "adhoc"
	}
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	return key
}
