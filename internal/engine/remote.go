// Remote artifact fetch: a clustered engine consults a RemoteFetcher
// on every store miss before computing, so an artifact another shard
// already computed is transferred (one codec decode) instead of
// re-derived (emulation, factorisation, simulation). The hook layers
// over the tiered store — a fetched artifact is Added through it, so
// it lands in the memory tier and write-through makes it durable in
// the local disk tier like any locally-computed artifact.
package engine

import (
	"context"
	"sync"
)

// RemoteFetcher fetches an artifact computed elsewhere (typically the
// owning shard of a cluster) by its content key. Implementations
// report ok=false for any failure — unknown key, unreachable peer,
// corrupt image — and the engine computes locally. Implementations
// must be safe for concurrent use, and must bound their own latency
// (the shard fetcher's FetchTimeout). The context carries trace
// identity for span recording and header propagation only — an
// implementation should detach the caller's cancellation
// (context.WithoutCancel) before any network call, because a fetch is
// shared by every concurrent miss on the key, not owned by the caller
// whose context happens to arrive first.
type RemoteFetcher interface {
	Fetch(ctx context.Context, key string) (any, bool)
}

// remoteStore is the remote-fetch stage Exec consults between a local
// store miss and a fresh computation.
type remoteStore struct {
	local  Store
	remote RemoteFetcher
	// Fetch-and-add is serialised PER KEY (a fetch is a network round
	// trip that can run for seconds — a global mutex here would stall
	// every unrelated store miss in the process behind one slow
	// owner): concurrent misses on one key decode a fetched image once
	// and observe a single pointer, the identity guarantee the tiered
	// store's promotion path provides, extended over the network.
	mu       sync.Mutex
	inflight map[string]*fetchCall
}

type fetchCall struct {
	done chan struct{}
	v    any
	ok   bool
}

func newRemoteStore(local Store, remote RemoteFetcher) *remoteStore {
	return &remoteStore{local: local, remote: remote, inflight: make(map[string]*fetchCall)}
}

// Fetch resolves key via the remote fetcher, deduplicating concurrent
// misses on the key and publishing a successful fetch through the
// local store tiers.
func (s *remoteStore) Fetch(ctx context.Context, key string) (any, bool) {
	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		return c.v, c.ok
	}
	c := &fetchCall{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()
	// A concurrent caller may have fetched (or a compute leader
	// completed and published) between our miss and the registration.
	if v, ok := s.local.Recheck(key); ok {
		c.v, c.ok = v, true
	} else if v, ok := s.remote.Fetch(ctx, key); ok {
		s.local.Add(key, v)
		c.v, c.ok = v, true
	}
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)
	return c.v, c.ok
}

// Peek returns the artifact under key from the local store tiers only
// — never the remote fetcher, never by running a job. It is the
// lookup behind a shard's artifact-exchange endpoint, where consulting
// the remote would bounce a request between nodes that disagree about
// ownership instead of reporting a clean miss.
func (e *Engine) Peek(key string) (any, bool) {
	if key == "" {
		return nil, false
	}
	return e.local.Get(key)
}

// PeekMemory is Peek restricted to the memory tier (no disk read, no
// promotion, no stats).
func (e *Engine) PeekMemory(key string) (any, bool) {
	if key == "" {
		return nil, false
	}
	return e.mem.Recheck(key)
}

// Has reports whether the artifact under key is resident in any local
// tier — memory, disk, or the disk tier's async-write queue — without
// decoding, promoting, or recording stats. It answers a peer's
// replication check (GET /v1/artifacts?check=1).
func (e *Engine) Has(key string) bool {
	if key == "" {
		return false
	}
	if _, ok := e.mem.Recheck(key); ok {
		return true
	}
	return e.disk != nil && e.disk.HasOrPending(key)
}

// Inject stores an artifact a PEER computed — the receive side of R=2
// write-through replication — and reports whether it was stored (false
// when the key is already resident or being computed here; the
// in-flight leader's own persist supersedes the push, so accepting it
// would mint a second pointer for consumers the leader already
// served). The value lands through the tiered store like any computed
// artifact: memory tier plus async disk write-through.
func (e *Engine) Inject(key string, v any) bool {
	if key == "" || v == nil {
		return false
	}
	e.mu.Lock()
	_, busy := e.inflight[key]
	e.mu.Unlock()
	if busy {
		return false
	}
	if e.Has(key) {
		return false
	}
	e.local.Add(key, v)
	return true
}

// PeekImage returns the already-encoded disk image of a disk-resident
// artifact (kind tag + payload) without decoding it or promoting it
// into the memory tier. A memory-only engine, a memory-only key, or a
// queued-but-unwritten artifact reports false; callers then encode via
// Peek.
func (e *Engine) PeekImage(key string) (kind string, data []byte, ok bool) {
	if key == "" || e.disk == nil {
		return "", nil, false
	}
	return e.disk.Image(key)
}
