package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func leaf(key string, v any) Job {
	return Job{Key: key, Run: func(ctx context.Context, deps []any) (any, error) { return v, nil }}
}

func TestExecCachesByKey(t *testing.T) {
	e := New(Options{Workers: 4})
	var runs atomic.Int64
	j := Job{Key: "k", Run: func(ctx context.Context, deps []any) (any, error) {
		runs.Add(1)
		return 42, nil
	}}
	for i := 0; i < 3; i++ {
		v, err := e.Exec(context.Background(), j)
		if err != nil || v.(int) != 42 {
			t.Fatalf("exec %d: v=%v err=%v", i, v, err)
		}
	}
	if runs.Load() != 1 {
		t.Errorf("runs = %d, want 1", runs.Load())
	}
	st := e.Stats()
	if st.Cache.Hits != 2 || st.Executed != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 executed", st)
	}
}

func TestSingleflightDedup(t *testing.T) {
	e := New(Options{Workers: 4})
	var runs atomic.Int64
	release := make(chan struct{})
	j := Job{Key: "slow", Run: func(ctx context.Context, deps []any) (any, error) {
		runs.Add(1)
		<-release
		return "done", nil
	}}
	const callers = 16
	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := e.Exec(context.Background(), j)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Let the callers pile up on the in-flight computation, then
	// release it. A few stragglers may arrive after completion and be
	// served from cache instead — both paths must return "done" and
	// only one Run may ever happen.
	for e.Stats().Deduped == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if runs.Load() != 1 {
		t.Errorf("runs = %d, want 1 (singleflight)", runs.Load())
	}
	for i, v := range results {
		if v != "done" {
			t.Errorf("caller %d got %v", i, v)
		}
	}
	if st := e.Stats(); st.Deduped == 0 {
		t.Errorf("stats = %+v, want deduped > 0", st)
	}
}

func TestDepsResolveInOrder(t *testing.T) {
	e := New(Options{Workers: 4})
	sum := Job{
		Key:  "sum",
		Deps: []Job{leaf("a", 1), leaf("b", 2), leaf("c", 3)},
		Run: func(ctx context.Context, deps []any) (any, error) {
			// Outputs must arrive in declaration order.
			return deps[0].(int)*100 + deps[1].(int)*10 + deps[2].(int), nil
		},
	}
	v, err := e.Exec(context.Background(), sum)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 123 {
		t.Errorf("sum = %v, want 123", v)
	}
}

func TestSharedDepRunsOnce(t *testing.T) {
	e := New(Options{Workers: 8})
	var baseRuns atomic.Int64
	base := Job{Key: "base", Run: func(ctx context.Context, deps []any) (any, error) {
		baseRuns.Add(1)
		return 7, nil
	}}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := Job{
				Key:  fmt.Sprintf("derived/%d", i),
				Deps: []Job{base},
				Run: func(ctx context.Context, deps []any) (any, error) {
					return deps[0].(int) * i, nil
				},
			}
			if _, err := e.Exec(context.Background(), j); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if baseRuns.Load() != 1 {
		t.Errorf("base ran %d times, want 1", baseRuns.Load())
	}
}

func TestDeepChainDoesNotDeadlockPool(t *testing.T) {
	// A dependency chain much deeper than the pool: slots must be
	// released while waiting on deps or this hangs.
	e := New(Options{Workers: 1})
	j := leaf("d0", 0)
	for i := 1; i <= 64; i++ {
		prev := j
		j = Job{
			Key:  fmt.Sprintf("d%d", i),
			Deps: []Job{prev},
			Run: func(ctx context.Context, deps []any) (any, error) {
				return deps[0].(int) + 1, nil
			},
		}
	}
	v, err := e.Exec(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 64 {
		t.Errorf("depth = %v, want 64", v)
	}
}

func TestErrorsPropagateAndAreNotCached(t *testing.T) {
	e := New(Options{Workers: 2})
	boom := errors.New("boom")
	var runs atomic.Int64
	j := Job{Key: "flaky", Run: func(ctx context.Context, deps []any) (any, error) {
		if runs.Add(1) == 1 {
			return nil, boom
		}
		return "ok", nil
	}}
	if _, err := e.Exec(context.Background(), j); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be cached: the retry runs and succeeds.
	v, err := e.Exec(context.Background(), j)
	if err != nil || v != "ok" {
		t.Fatalf("retry: v=%v err=%v", v, err)
	}
	// A dependency failure aborts the parent before its Run.
	parent := Job{
		Key:  "parent",
		Deps: []Job{{Key: "dep-fail", Run: func(ctx context.Context, deps []any) (any, error) { return nil, boom }}},
		Run: func(ctx context.Context, deps []any) (any, error) {
			t.Error("parent ran despite failed dep")
			return nil, nil
		},
	}
	if _, err := e.Exec(context.Background(), parent); !errors.Is(err, boom) {
		t.Errorf("parent err = %v, want boom", err)
	}
}

func TestContextCancellation(t *testing.T) {
	e := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Exec(ctx, leaf("never", 1))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestUnkeyedJobsAlwaysRun(t *testing.T) {
	e := New(Options{Workers: 2})
	var runs atomic.Int64
	j := Job{Run: func(ctx context.Context, deps []any) (any, error) {
		return runs.Add(1), nil
	}}
	for want := int64(1); want <= 3; want++ {
		v, err := e.Exec(context.Background(), j)
		if err != nil || v.(int64) != want {
			t.Fatalf("v=%v err=%v, want %d", v, err, want)
		}
	}
}

// TestParallelDeterminism checks the engine contract the experiment
// suite relies on: the same DAG evaluated serially and with many
// workers yields identical results.
func TestParallelDeterminism(t *testing.T) {
	build := func(workers int) []any {
		e := New(Options{Workers: workers})
		dag := make([]Job, 8)
		for i := range dag {
			gen := leaf(fmt.Sprintf("gen/%d", i), uint64(i)+1)
			emu := Job{
				Key:  fmt.Sprintf("emu/%d", i),
				Deps: []Job{gen},
				Run: func(ctx context.Context, deps []any) (any, error) {
					x := deps[0].(uint64)
					for k := 0; k < 1000; k++ {
						x = x*6364136223846793005 + 1442695040888963407
					}
					return x, nil
				},
			}
			dag[i] = Job{
				Key:  fmt.Sprintf("final/%d", i),
				Deps: []Job{gen, emu},
				Run: func(ctx context.Context, deps []any) (any, error) {
					return deps[0].(uint64) ^ deps[1].(uint64), nil
				},
			}
		}
		out := make([]any, len(dag))
		var wg sync.WaitGroup
		for i, j := range dag {
			wg.Add(1)
			go func(i int, j Job) {
				defer wg.Done()
				v, err := e.Exec(context.Background(), j)
				if err != nil {
					t.Error(err)
				}
				out[i] = v
			}(i, j)
		}
		wg.Wait()
		return out
	}
	serial, parallel := build(1), build(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("item %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

// TestPanickedJobDoesNotWedgeKey: a panic in Run must propagate to the
// caller but still clean up the in-flight entry, so the key stays
// usable and joined callers unblock with an error instead of hanging.
func TestPanickedJobDoesNotWedgeKey(t *testing.T) {
	e := New(Options{Workers: 2})
	var runs atomic.Int64
	j := Job{Key: "panicky", Run: func(ctx context.Context, deps []any) (any, error) {
		if runs.Add(1) == 1 {
			panic("kaboom")
		}
		return "ok", nil
	}}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the caller")
			}
		}()
		e.Exec(context.Background(), j)
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := e.Exec(context.Background(), j)
		if err != nil || v != "ok" {
			t.Errorf("retry after panic: v=%v err=%v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key wedged: retry after panic hung")
	}
}

// TestJoinerRetriesAfterLeaderCancelled: a joiner with a live context
// must not inherit the leader's cancellation — it re-runs the job
// under its own context.
func TestJoinerRetriesAfterLeaderCancelled(t *testing.T) {
	e := New(Options{Workers: 2})
	leaderCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once sync.Once
	var runs atomic.Int64
	j := Job{Key: "k", Run: func(ctx context.Context, deps []any) (any, error) {
		if runs.Add(1) == 1 {
			once.Do(func() { close(started) })
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return "ok", nil
	}}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Exec(leaderCtx, j)
		leaderErr <- err
	}()
	<-started
	joined := make(chan struct{})
	go func() {
		defer close(joined)
		v, err := e.Exec(context.Background(), j)
		if err != nil || v != "ok" {
			t.Errorf("joiner: v=%v err=%v, want ok under own live context", v, err)
		}
	}()
	// Give the joiner a moment to join (or arrive late and run fresh —
	// either path must yield "ok"), then cancel the leader.
	for e.Stats().Deduped == 0 && runs.Load() < 2 {
		runtime.Gosched()
	}
	cancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Errorf("leader err = %v, want context.Canceled", err)
	}
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		t.Fatal("joiner hung after leader cancellation")
	}
}
