package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/fault"
	"repro/internal/linalg"
)

// faultArtifact builds a small encodable artifact for disk-tier tests.
func faultArtifact() *linalg.Matrix {
	return linalg.Identity(3)
}

func TestDiskFaultReadError(t *testing.T) {
	d, err := engine.OpenDiskTier(t.TempDir(), 0, codec.New())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put("k", faultArtifact())
	if _, ok := d.Get("k"); !ok {
		t.Fatal("artifact not readable before injection")
	}

	inj := fault.New(9)
	inj.Enable(fault.DiskRead, 1, 0)
	d.SetFaults(inj)
	if _, ok := d.Get("k"); ok {
		t.Fatal("read succeeded under 100% disk.read faults")
	}
	// The injected error flows the corruption-tolerance path: the file
	// is dropped, counted, and the next write repairs it.
	st := d.Stats()
	if st.Errors == 0 || d.Has("k") {
		t.Fatalf("stats = %+v, has = %v; want dropped + counted", st, d.Has("k"))
	}
	d.SetFaults(nil)
	d.Put("k", faultArtifact())
	if _, ok := d.Get("k"); !ok {
		t.Fatal("artifact not rewritable after clearing faults")
	}
}

func TestDiskFaultWriteErrorAndTorn(t *testing.T) {
	d, err := engine.OpenDiskTier(t.TempDir(), 0, codec.New())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Write errors: the artifact never lands.
	inj := fault.New(9)
	inj.Enable(fault.DiskWrite, 1, 0)
	d.SetFaults(inj)
	d.Put("w", faultArtifact())
	if d.Has("w") {
		t.Fatal("write landed under 100% disk.write faults")
	}
	if d.Stats().Errors == 0 {
		t.Fatal("failed write not counted")
	}

	// Torn writes: the file lands but its CRC is broken, so the next
	// read detects the tear, drops it, and reports a miss.
	torn := fault.New(9)
	torn.Enable(fault.DiskTorn, 1, 0)
	d.SetFaults(torn)
	d.Put("t", faultArtifact())
	if !d.Has("t") {
		t.Fatal("torn write should still land on disk")
	}
	if _, ok := d.Get("t"); ok {
		t.Fatal("torn artifact decoded successfully")
	}
	if d.Has("t") {
		t.Fatal("torn artifact not dropped on read")
	}
}
