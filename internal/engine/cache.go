// Artifact cache: a thread-safe, content-keyed LRU memo for pipeline
// outputs (programs, traces, pruned CFGs, reach matrices, spawn tables,
// simulation results). Keys are produced by the job definitions from
// everything that determines the artifact's content — program name,
// size class, and a hash of the stage configuration — so a hit is
// guaranteed to be byte-identical to a recomputation.
//
// Eviction is cost-aware: artifacts that implement Sizer report their
// approximate resident bytes (traces are orders of magnitude heavier
// than tables), and the cache bounds total resident bytes in addition
// to the entry count, evicting least-recently-used entries until both
// budgets hold.
package engine

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"strconv"
	"strings"
	"sync"
)

// DefaultCacheEntries bounds the artifact cache when Options.CacheEntries
// is zero. The full evaluation needs ~8 benchmarks × (5 pipeline stages +
// ~5 tables + ~40 sim configs), so 4096 keeps every artifact of a full
// figure sweep resident with generous headroom.
const DefaultCacheEntries = 4096

// Sizer is implemented by artifacts that can report their approximate
// resident size. The cache uses it to weight LRU entries so a byte
// budget evicts one multi-megabyte trace instead of a thousand tables.
type Sizer interface {
	ApproxBytes() int64
}

// defaultEntryBytes is charged for artifacts that do not implement
// Sizer (small results, scalars).
const defaultEntryBytes = 1 << 10

// sizeOf returns the byte cost charged for an artifact. A Sizer that
// reports a non-positive size is charged the default: a negative size
// would corrupt the byte ledger (and a zero-byte entry would divide
// hit-rate math by zero), so it is logged and clamped, never trusted
// and never a panic.
func sizeOf(v any) int64 {
	if s, ok := v.(Sizer); ok {
		switch b := s.ApproxBytes(); {
		case b > 0:
			return b
		case b < 0:
			log.Printf("engine: %T reports negative ApproxBytes %d; charging default %d", v, b, defaultEntryBytes)
		}
	}
	return defaultEntryBytes
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	// BytesResident is the approximate resident size of all entries;
	// BytesCapacity is the byte budget (0 = unbounded).
	BytesResident int64 `json:"bytes_resident"`
	BytesCapacity int64 `json:"bytes_capacity,omitempty"`
}

type cacheEntry struct {
	key   string
	val   any
	bytes int64
}

// Cache is the in-memory LRU tier of the artifact store, shared by all
// workers of an Engine.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	maxBytes  int64 // 0 = unbounded
	bytes     int64
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	// onEvict, when set, receives every evicted entry after the cache
	// lock is released — the tiered store uses it to demote evictions
	// to the disk tier.
	onEvict func(key string, val any)
}

// NewCache returns an empty cache holding at most capacity entries
// (capacity <= 0 selects DefaultCacheEntries) with no byte bound.
func NewCache(capacity int) *Cache { return NewCacheSized(capacity, 0) }

// NewCacheSized returns an empty cache bounded by both an entry count
// (capacity <= 0 selects DefaultCacheEntries) and an approximate
// resident-byte budget (maxBytes <= 0 means unbounded). The most
// recently used entry is always retained, even when it alone exceeds
// the byte budget.
func NewCacheSized(capacity int, maxBytes int64) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Cache{
		capacity: capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// OnEvict registers a callback receiving every entry the cache evicts.
// It is invoked after the cache lock is released, so the callback may
// freely call back into the cache or perform I/O (the disk tier's
// demotion path). Set it before the cache is shared across goroutines.
func (c *Cache) OnEvict(fn func(key string, val any)) { c.onEvict = fn }

// Get returns the artifact stored under key, marking it most recently
// used. The second result reports whether the key was present.
func (c *Cache) Get(key string) (any, bool) { return c.lookup(key, true) }

// lookup is Get with optional stats recording: the tiered store's
// promotion path re-checks membership without double-counting a
// hit or miss.
func (c *Cache) lookup(key string, record bool) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if record {
			c.misses++
		}
		return nil, false
	}
	if record {
		c.hits++
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add stores an artifact, evicting the least recently used entries
// while the cache is over its entry or byte budget. Re-adding an
// existing key refreshes its value, cost, and recency.
func (c *Cache) Add(key string, val any) {
	bytes := sizeOf(val)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += bytes - ent.bytes
		ent.val, ent.bytes = val, bytes
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, bytes: bytes})
		c.bytes += bytes
	}
	evicted := c.evict()
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, ent := range evicted {
			c.onEvict(ent.key, ent.val)
		}
	}
}

// evict drops LRU entries until both budgets hold, always keeping the
// most recently used entry, and returns the dropped entries so Add can
// hand them to the eviction callback outside the lock. Callers must
// hold c.mu.
func (c *Cache) evict() []*cacheEntry {
	var evicted []*cacheEntry
	for c.ll.Len() > 1 &&
		(c.ll.Len() > c.capacity || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.bytes -= ent.bytes
		c.evictions++
		if c.onEvict != nil {
			evicted = append(evicted, ent)
		}
	}
	return evicted
}

// Remove discards the entry stored under key, if present, and reports
// whether it was. Unlike eviction, removal does NOT invoke the OnEvict
// callback: the caller wants the artifact gone from the store, not
// demoted to the next tier.
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, key)
	c.bytes -= ent.bytes
	return true
}

// Len returns the number of resident artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the approximate resident size of all entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats snapshots the hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Entries:       c.ll.Len(),
		Capacity:      c.capacity,
		BytesResident: c.bytes,
		BytesCapacity: c.maxBytes,
	}
}

// KeyHash folds arbitrary configuration values into a short stable hex
// digest for use inside cache keys. Callers pass every parameter that
// influences the artifact's content.
func KeyHash(parts ...any) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// ParseBytes parses a human byte size ("64MB", "1.5gb", "8192") into
// bytes. A bare number is bytes; suffixes B, KB, MB, GB, TB are powers
// of 1024 and case-insensitive.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" {
		return 0, fmt.Errorf("engine: empty byte size")
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "TB"):
		mult, t = 1<<40, t[:len(t)-2]
	case strings.HasSuffix(t, "GB"):
		mult, t = 1<<30, t[:len(t)-2]
	case strings.HasSuffix(t, "MB"):
		mult, t = 1<<20, t[:len(t)-2]
	case strings.HasSuffix(t, "KB"):
		mult, t = 1<<10, t[:len(t)-2]
	case strings.HasSuffix(t, "B"):
		t = t[:len(t)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("engine: bad byte size %q", s)
	}
	b := v * float64(mult)
	if b > math.MaxInt64 {
		return 0, fmt.Errorf("engine: byte size %q overflows int64", s)
	}
	return int64(b), nil
}
