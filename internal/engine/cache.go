// Artifact cache: a thread-safe, content-keyed LRU memo for pipeline
// outputs (programs, traces, pruned CFGs, reach matrices, spawn tables,
// simulation results). Keys are produced by the job definitions from
// everything that determines the artifact's content — program name,
// size class, and a hash of the stage configuration — so a hit is
// guaranteed to be byte-identical to a recomputation.
package engine

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
)

// DefaultCacheEntries bounds the artifact cache when Options.CacheEntries
// is zero. The full evaluation needs ~8 benchmarks × (5 pipeline stages +
// ~5 tables + ~40 sim configs), so 4096 keeps every artifact of a full
// figure sweep resident with generous headroom.
const DefaultCacheEntries = 4096

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

type cacheEntry struct {
	key string
	val any
}

// Cache is the LRU artifact store shared by all workers of an Engine.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewCache returns an empty cache holding at most capacity entries
// (capacity <= 0 selects DefaultCacheEntries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the artifact stored under key, marking it most recently
// used. The second result reports whether the key was present.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Add stores an artifact, evicting the least recently used entries if
// the cache is over capacity. Re-adding an existing key refreshes its
// value and recency.
func (c *Cache) Add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the number of resident artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
}

// KeyHash folds arbitrary configuration values into a short stable hex
// digest for use inside cache keys. Callers pass every parameter that
// influences the artifact's content.
func KeyHash(parts ...any) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	return strconv.FormatUint(h.Sum64(), 16)
}
