package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestAsyncWriterDrainsEverything floods the queue well past its
// bound from several producers: the block-on-full policy means every
// single artifact must reach disk by the time Flush returns.
func TestAsyncWriterDrainsEverything(t *testing.T) {
	dt := openTestTier(t, t.TempDir(), 0)
	const producers, per = 4, 2*asyncQueueCap + 7
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				dt.PutAsync(fmt.Sprintf("k%d-%d", p, i), &blob{S: "v", Bytes: 1})
			}
		}(p)
	}
	wg.Wait()
	dt.Flush()
	st := dt.Stats()
	if st.Entries != producers*per {
		t.Fatalf("drained tier holds %d artifacts, want %d", st.Entries, producers*per)
	}
	if st.AsyncWrites != producers*per {
		t.Errorf("async_writes = %d, want %d", st.AsyncWrites, producers*per)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue_depth = %d after Flush, want 0", st.QueueDepth)
	}
	if st.Flushes == 0 {
		t.Error("flush counter not recorded")
	}
}

// TestAsyncWriterDedupsQueuedKeys: a key queued but not yet written
// must not be queued twice (Add + Demote race on the same artifact).
func TestAsyncWriterDedupsQueuedKeys(t *testing.T) {
	dt := openTestTier(t, t.TempDir(), 0)
	for i := 0; i < 10; i++ {
		dt.PutAsync("same", &blob{S: "v", Bytes: 1})
	}
	dt.Flush()
	st := dt.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	// At least the first call was queued; the rest were dropped as
	// resident-or-pending, so writes cannot exceed async accepts.
	if st.AsyncWrites == 0 || st.Writes > st.AsyncWrites {
		t.Errorf("async_writes = %d, writes = %d", st.AsyncWrites, st.Writes)
	}
}

// gateCodec blocks every Encode until release is closed, holding
// queued artifacts in the writer deterministically.
type gateCodec struct {
	blobCodec
	release chan struct{}
}

func (c gateCodec) Encode(v any) (string, []byte, bool, error) {
	<-c.release
	return c.blobCodec.Encode(v)
}

// TestQueuedArtifactsServeReads: an artifact accepted by PutAsync must
// be readable before its file write lands — otherwise a memory-tier
// eviction inside that window would recompute data the process still
// holds in the queue.
func TestQueuedArtifactsServeReads(t *testing.T) {
	release := make(chan struct{})
	dt, err := OpenDiskTier(t.TempDir(), 0, gateCodec{release: release})
	if err != nil {
		t.Fatal(err)
	}
	want := &blob{S: "inflight", Bytes: 8}
	dt.PutAsync("k", want)
	v, ok := dt.Get("k")
	if !ok {
		t.Fatal("queued artifact invisible to Get")
	}
	if v != want {
		t.Fatal("queued artifact served as a different pointer")
	}
	if st := dt.Stats(); st.Hits == 0 || st.QueueDepth != 1 {
		t.Errorf("stats = %+v, want a hit with one queued write", st)
	}
	close(release)
	dt.Flush()
	if v, ok := dt.Get("k"); !ok || v.(*blob).S != "inflight" {
		t.Fatal("artifact unreadable after the write landed")
	}
	if st := dt.Stats(); st.QueueDepth != 0 || st.Writes != 1 {
		t.Errorf("stats after drain = %+v", st)
	}
}

// TestCloseDrainsAndDegradesToSync: Close must flush queued writes,
// and a PutAsync after Close must still persist (synchronously) rather
// than panic or vanish.
func TestCloseDrainsAndDegradesToSync(t *testing.T) {
	dt := openTestTier(t, t.TempDir(), 0)
	dt.PutAsync("before", &blob{S: "b", Bytes: 1})
	dt.Close()
	if !dt.Has("before") {
		t.Fatal("Close must drain the queue")
	}
	dt.Close() // idempotent
	dt.PutAsync("after", &blob{S: "a", Bytes: 1})
	if !dt.Has("after") {
		t.Fatal("PutAsync after Close must write synchronously")
	}
	dt.Flush() // no-op after Close, must not hang
	if st := dt.Stats(); st.QueueDepth != 0 {
		t.Errorf("queue_depth = %d, want 0", st.QueueDepth)
	}
}

// TestConcurrentCloseWaitsForDrain: when several goroutines race Close
// (ops shutdown path vs SIGTERM drain), EVERY caller must block until
// the queue has drained — a loser that returned early would tear down
// the process around a writer that is still flushing.
func TestConcurrentCloseWaitsForDrain(t *testing.T) {
	release := make(chan struct{})
	dt, err := OpenDiskTier(t.TempDir(), 0, gateCodec{release: release})
	if err != nil {
		t.Fatal(err)
	}
	dt.PutAsync("k", &blob{S: "v", Bytes: 8})
	const closers = 4
	done := make(chan struct{}, closers)
	for i := 0; i < closers; i++ {
		go func() {
			dt.Close()
			done <- struct{}{}
		}()
	}
	select {
	case <-done:
		t.Fatal("a Close returned while the queued write was still gated")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	for i := 0; i < closers; i++ {
		<-done
	}
	if !dt.Has("k") {
		t.Fatal("queued write lost across concurrent Close")
	}
	if st := dt.Stats(); st.Flushes != 1 {
		t.Errorf("flushes = %d, want exactly 1 for n racing Closes", st.Flushes)
	}
}

// TestEngineCloseRacesExec: Engine.Close must be idempotent and safe
// while Exec traffic is still producing artifacts; every artifact a
// completed Exec produced must be durable once the last Close returns.
func TestEngineCloseRacesExec(t *testing.T) {
	dt := openTestTier(t, t.TempDir(), 0)
	e := New(Options{Workers: 4, Disk: dt})
	const producers, per = 8, 20
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("sim/%d-%d", p, i)
				if _, err := e.Exec(context.Background(), Job{Key: key,
					Run: func(ctx context.Context, deps []any) (any, error) {
						return &blob{S: key, Bytes: 1}, nil
					}}); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
	}
	wg.Wait()
	e.Close()
	for p := 0; p < producers; p++ {
		for i := 0; i < per; i++ {
			if key := fmt.Sprintf("sim/%d-%d", p, i); !dt.Has(key) {
				t.Fatalf("artifact %q not durable after Close", key)
			}
		}
	}
}
