package engine

import "context"

// gateCtxKey / specCtxKey are the context keys of the two request
// markers the server threads through Exec.
type gateCtxKey struct{}
type specCtxKey struct{}

// ComputeGate is the admission hook Exec consults at the moment it
// commits to COMPUTING a keyed artifact (store miss, remote miss, and
// this caller is the singleflight leader). It returns a release
// function to call when the computation finishes, or an error to
// refuse it; both may be nil (admit for free — the request already
// holds gate capacity, or re-admission is a no-op for this request).
//
// The hook closes the warm-probe TOCTOU window: a request classified
// warm by an index probe bypasses the server's admission gate, but the
// artifact can be evicted between probe and Exec — without this hook
// that request would compute ungated under saturation. Exec calls the
// gate only on the compute path, so genuinely warm traffic still
// bypasses for free.
type ComputeGate func(ctx context.Context) (release func(), err error)

// WithComputeGate returns a context carrying gate; Exec consults it
// before every leader computation under this context (dependency jobs
// included — they run under the same context). Contexts without a gate
// (CLIs, speculative launches, replication pushes) compute ungated.
func WithComputeGate(ctx context.Context, gate ComputeGate) context.Context {
	return context.WithValue(ctx, gateCtxKey{}, gate)
}

// computeGateFrom extracts the gate installed by WithComputeGate.
func computeGateFrom(ctx context.Context) ComputeGate {
	g, _ := ctx.Value(gateCtxKey{}).(ComputeGate)
	return g
}

// WithSpeculative marks ctx as driving a speculative (predicted, not
// demanded) computation: Exec stamps speculative=true on its exec
// spans so traces distinguish predicted work from demand work.
func WithSpeculative(ctx context.Context) context.Context {
	return context.WithValue(ctx, specCtxKey{}, true)
}

// IsSpeculative reports whether ctx was marked by WithSpeculative.
func IsSpeculative(ctx context.Context) bool {
	v, _ := ctx.Value(specCtxKey{}).(bool)
	return v
}

// gateCompute runs the context's ComputeGate without holding a
// scheduler core through the gate's (possibly queued) wait: called on
// a worker, sched.Block lends the core to a substitute until the gate
// answers. If the wait is abandoned (ctx cancelled) while the gate is
// still deciding, a shed goroutine releases whatever the gate
// eventually grants.
func (e *Engine) gateCompute(ctx context.Context, gate ComputeGate) (func(), error) {
	type answer struct {
		release func()
		err     error
	}
	ch := make(chan answer, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		rel, err := gate(ctx)
		ch <- answer{rel, err}
	}()
	if err := e.sched.Block(ctx, done); err != nil {
		go func() {
			if a := <-ch; a.release != nil {
				a.release()
			}
		}()
		return nil, err
	}
	a := <-ch
	return a.release, a.err
}
