package codec_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cfg"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/engine/codec"
	"repro/internal/isa"
	"repro/internal/linalg"
	"repro/internal/reach"
	"repro/internal/trace"
)

// fuzzKinds mirrors the codec's wire kind tags (stable constants: a
// rename orphans every disk artifact, so hardcoding them here is a
// feature — the fuzzer fails loudly if one drifts).
var fuzzKinds = []string{
	"program", "trace", "profile", "emu", "cfg", "matrix", "reach", "table", "sim",
}

// seedImages encodes one small instance of every artifact kind.
func seedImages(f *testing.F) [][2]any {
	c := codec.New()
	ctr := 0
	fixGraph := func(g *cfg.Graph) {
		g.Succ = g.Succ[:0]
		for range g.Nodes {
			g.Succ = append(g.Succ, []cfg.Edge{{To: 0, W: 1.5}})
		}
		g.ByPC = make(map[uint32]int, len(g.Nodes))
		for i := range g.Nodes {
			g.ByPC[g.Nodes[i].PC] = i
		}
	}
	mk := func(v any, fix func()) [2]any {
		fill(reflect.ValueOf(v).Elem(), &ctr)
		if fix != nil {
			fix()
		}
		kind, data, ok, err := c.Encode(v)
		if err != nil || !ok {
			f.Fatalf("seed encode %T: ok=%v err=%v", v, ok, err)
		}
		return [2]any{kind, data}
	}
	g := new(cfg.Graph)
	r := new(reach.Result)
	m := new(linalg.Matrix)
	er := new(emu.Result)
	return [][2]any{
		mk(new(isa.Program), nil),
		mk(new(trace.Trace), nil),
		mk(new(emu.Profile), nil),
		mk(er, func() { er.Profile.Program = er.Trace.Program }),
		mk(g, func() { fixGraph(g) }),
		mk(m, func() { m.Rows, m.Cols = 1, len(m.Data) }),
		mk(r, func() {
			fixGraph(r.G)
			r.Prob.Rows, r.Prob.Cols = 1, len(r.Prob.Data)
			r.Dist.Rows, r.Dist.Cols = 1, len(r.Dist.Data)
		}),
		mk(new(core.Table), nil),
		mk(new(cluster.Result), nil),
	}
}

// FuzzDecode is the disk/artifact-exchange hardening contract: a
// corrupted or truncated artifact image must produce an error — never
// a panic, never an unbounded allocation — and a successful decode
// must yield an internally-consistent artifact: re-encodable,
// deterministically, with no byte of it aliasing the input image.
func FuzzDecode(f *testing.F) {
	seeds := seedImages(f)
	for ki := range fuzzKinds {
		data := seeds[ki][1].([]byte)
		f.Add(uint8(ki), data)
		// Truncations and a scribbled header as explicit corruption
		// seeds.
		f.Add(uint8(ki), data[:len(data)/2])
		if len(data) > 4 {
			bad := bytes.Clone(data)
			bad[2] ^= 0xFF
			f.Add(uint8(ki), bad)
		}
	}

	c := codec.New()
	f.Fuzz(func(t *testing.T, ki uint8, data []byte) {
		kind := fuzzKinds[int(ki)%len(fuzzKinds)]
		// Decode sees data itself (not a copy): the scribble below then
		// proves no decoded state aliases the input image.
		v, err := c.Decode(kind, data)
		if err != nil {
			return // corrupt image, cleanly rejected
		}
		kind2, enc1, ok, err := c.Encode(v)
		if err != nil || !ok {
			t.Fatalf("decoded %s does not re-encode: ok=%v err=%v", kind, ok, err)
		}
		if kind2 != kind {
			t.Fatalf("round trip changed kind %s -> %s", kind, kind2)
		}
		// No aliasing: scribbling the input image must not change the
		// decoded artifact's wire form.
		for i := range data {
			data[i] = ^data[i]
		}
		_, enc2, _, err := c.Encode(v)
		if err != nil {
			t.Fatalf("re-encode after input scribble: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%s: decoded artifact aliases its input buffer", kind)
		}
		// The canonical image must decode.
		if _, err := c.Decode(kind, enc1); err != nil {
			t.Fatalf("canonical %s image does not decode: %v", kind, err)
		}
	})
}
