// Package codec implements engine.Codec over the repository's artifact
// types: it maps every cacheable pipeline artifact — programs, traces,
// profiles, emulation results, pruned CFGs, dense matrices, reach
// results, spawn tables, simulation results — to a short kind tag and
// its binary wire form (each type's MarshalBinary/UnmarshalBinary), so
// the engine's disk tier can persist and restore them without knowing
// the types themselves.
//
// Artifact types outside this table (e.g. the expt.Bench composite,
// which is cheaply reassembled from its cached stages) simply stay
// memory-only: Encode reports ok=false and the engine skips the disk
// write.
package codec

import (
	"encoding"
	"fmt"

	"repro/internal/cfg"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/linalg"
	"repro/internal/reach"
	"repro/internal/trace"
)

// Kind tags stored in artifact file headers. Stable across releases:
// renaming one orphans every existing disk artifact of that kind.
const (
	kindProgram = "program"
	kindTrace   = "trace"
	kindProfile = "profile"
	kindEmu     = "emu"
	kindGraph   = "cfg"
	kindMatrix  = "matrix"
	kindReach   = "reach"
	kindTable   = "table"
	kindSim     = "sim"
)

// decoders maps a kind tag to a constructor for its zero artifact.
var decoders = map[string]func() encoding.BinaryUnmarshaler{
	kindProgram: func() encoding.BinaryUnmarshaler { return new(isa.Program) },
	kindTrace:   func() encoding.BinaryUnmarshaler { return new(trace.Trace) },
	kindProfile: func() encoding.BinaryUnmarshaler { return new(emu.Profile) },
	kindEmu:     func() encoding.BinaryUnmarshaler { return new(emu.Result) },
	kindGraph:   func() encoding.BinaryUnmarshaler { return new(cfg.Graph) },
	kindMatrix:  func() encoding.BinaryUnmarshaler { return new(linalg.Matrix) },
	kindReach:   func() encoding.BinaryUnmarshaler { return new(reach.Result) },
	kindTable:   func() encoding.BinaryUnmarshaler { return new(core.Table) },
	kindSim:     func() encoding.BinaryUnmarshaler { return new(cluster.Result) },
}

// artifactCodec implements engine.Codec; see New.
type artifactCodec struct{}

// New returns the codec covering every disk-persistable artifact type.
func New() engine.Codec { return artifactCodec{} }

// Encode maps v to its kind tag and wire form. A nil typed pointer or
// a type outside the artifact table reports ok=false (memory-only).
func (artifactCodec) Encode(v any) (kind string, data []byte, ok bool, err error) {
	var m encoding.BinaryMarshaler
	switch a := v.(type) {
	case *isa.Program:
		if a == nil {
			return "", nil, false, nil
		}
		kind, m = kindProgram, a
	case *trace.Trace:
		if a == nil {
			return "", nil, false, nil
		}
		kind, m = kindTrace, a
	case *emu.Profile:
		if a == nil {
			return "", nil, false, nil
		}
		kind, m = kindProfile, a
	case *emu.Result:
		if a == nil {
			return "", nil, false, nil
		}
		kind, m = kindEmu, a
	case *cfg.Graph:
		if a == nil {
			return "", nil, false, nil
		}
		kind, m = kindGraph, a
	case *linalg.Matrix:
		if a == nil {
			return "", nil, false, nil
		}
		kind, m = kindMatrix, a
	case *reach.Result:
		if a == nil {
			return "", nil, false, nil
		}
		kind, m = kindReach, a
	case *core.Table:
		if a == nil {
			return "", nil, false, nil
		}
		kind, m = kindTable, a
	case *cluster.Result:
		if a == nil {
			return "", nil, false, nil
		}
		kind, m = kindSim, a
	default:
		return "", nil, false, nil
	}
	data, err = m.MarshalBinary()
	if err != nil {
		return "", nil, false, fmt.Errorf("codec: encode %s: %w", kind, err)
	}
	return kind, data, true, nil
}

// Decode reconstructs an artifact of the given kind.
func (artifactCodec) Decode(kind string, data []byte) (any, error) {
	mk, ok := decoders[kind]
	if !ok {
		return nil, fmt.Errorf("codec: unknown artifact kind %q", kind)
	}
	v := mk()
	if err := v.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("codec: decode %s: %w", kind, err)
	}
	return v, nil
}
