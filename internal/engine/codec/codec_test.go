package codec_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cfg"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/engine/codec"
	"repro/internal/isa"
	"repro/internal/linalg"
	"repro/internal/reach"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fill populates every exported field of v with distinct values, so a
// codec that drops any field fails the round-trip comparison below.
func fill(v reflect.Value, ctr *int) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*ctr++
		v.SetInt(int64(*ctr))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*ctr++
		v.SetUint(uint64(*ctr))
	case reflect.Float32, reflect.Float64:
		*ctr++
		v.SetFloat(float64(*ctr) + 0.5)
	case reflect.String:
		*ctr++
		v.SetString(fmt.Sprintf("s%d", *ctr))
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < 2; i++ {
			fill(s.Index(i), ctr)
		}
		v.Set(s)
	case reflect.Map:
		m := reflect.MakeMap(v.Type())
		for i := 0; i < 2; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			fill(k, ctr)
			val := reflect.New(v.Type().Elem()).Elem()
			fill(val, ctr)
			m.SetMapIndex(k, val)
		}
		v.Set(m)
	case reflect.Pointer:
		p := reflect.New(v.Type().Elem())
		fill(p.Elem(), ctr)
		v.Set(p)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				fill(v.Field(i), ctr)
			}
		}
	}
}

// equalExported compares two values over exported fields only —
// unexported state (lazy indexes, sync.Once) is codec-irrelevant.
func equalExported(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case reflect.Pointer:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return equalExported(a.Elem(), b.Elem())
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !a.Type().Field(i).IsExported() {
				continue
			}
			if !equalExported(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Slice:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !equalExported(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.Len() != b.Len() {
			return false
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() || !equalExported(a.MapIndex(k), bv) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a.Interface(), b.Interface())
	}
}

// TestFilledRoundTrips fills every artifact type exhaustively and
// round-trips it through the codec: a marshal or unmarshal that misses
// a field cannot pass.
func TestFilledRoundTrips(t *testing.T) {
	fixGraph := func(g *cfg.Graph) {
		// ByPC is derived from Nodes (the codec rebuilds it), and the
		// adjacency list count must match the node count.
		g.Succ = g.Succ[:0]
		for range g.Nodes {
			g.Succ = append(g.Succ, []cfg.Edge{{To: 1, W: 2.5}, {To: 3, W: 4.5}})
		}
		g.ByPC = make(map[uint32]int, len(g.Nodes))
		for i := range g.Nodes {
			g.ByPC[g.Nodes[i].PC] = i
		}
	}
	fixMatrix := func(m *linalg.Matrix) { m.Rows, m.Cols = 1, len(m.Data) }

	artifacts := []struct {
		name string
		make func(ctr *int) any
	}{
		{"program", func(ctr *int) any {
			p := new(isa.Program)
			fill(reflect.ValueOf(p).Elem(), ctr)
			return p
		}},
		{"trace", func(ctr *int) any {
			tr := new(trace.Trace)
			fill(reflect.ValueOf(tr).Elem(), ctr)
			return tr
		}},
		{"profile", func(ctr *int) any {
			pr := new(emu.Profile)
			fill(reflect.ValueOf(pr).Elem(), ctr)
			return pr
		}},
		{"emu-result", func(ctr *int) any {
			r := new(emu.Result)
			fill(reflect.ValueOf(r).Elem(), ctr)
			// A real emulation shares one program between trace and
			// profile; the codec restores exactly that aliasing.
			r.Profile.Program = r.Trace.Program
			return r
		}},
		{"graph", func(ctr *int) any {
			g := new(cfg.Graph)
			fill(reflect.ValueOf(g).Elem(), ctr)
			fixGraph(g)
			return g
		}},
		{"matrix", func(ctr *int) any {
			m := new(linalg.Matrix)
			fill(reflect.ValueOf(m).Elem(), ctr)
			fixMatrix(m)
			return m
		}},
		{"reach-result", func(ctr *int) any {
			r := new(reach.Result)
			fill(reflect.ValueOf(r).Elem(), ctr)
			fixGraph(r.G)
			fixMatrix(r.Prob)
			fixMatrix(r.Dist)
			return r
		}},
		{"table", func(ctr *int) any {
			tab := new(core.Table)
			fill(reflect.ValueOf(tab).Elem(), ctr)
			return tab
		}},
		{"sim-result", func(ctr *int) any {
			r := new(cluster.Result)
			fill(reflect.ValueOf(r).Elem(), ctr)
			return r
		}},
	}

	c := codec.New()
	for _, tc := range artifacts {
		t.Run(tc.name, func(t *testing.T) {
			ctr := 0
			orig := tc.make(&ctr)
			kind, data, ok, err := c.Encode(orig)
			if err != nil || !ok {
				t.Fatalf("Encode(%T) = %q, ok=%v, err=%v", orig, kind, ok, err)
			}
			got, err := c.Decode(kind, data)
			if err != nil {
				t.Fatalf("Decode(%q): %v", kind, err)
			}
			if reflect.TypeOf(got) != reflect.TypeOf(orig) {
				t.Fatalf("Decode type = %T, want %T", got, orig)
			}
			if !equalExported(reflect.ValueOf(orig), reflect.ValueOf(got)) {
				t.Errorf("round trip lost data:\norig: %+v\ngot:  %+v", orig, got)
			}
			// Deterministic encoding: a second encode of the decoded
			// value is byte-identical.
			_, data2, _, err := c.Encode(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(data2) {
				t.Error("re-encode of decoded artifact differs (non-deterministic encoding)")
			}
		})
	}
}

func TestUnsupportedAndNilTypesAreMemoryOnly(t *testing.T) {
	c := codec.New()
	for _, v := range []any{42, "str", (*cluster.Result)(nil), (*core.Table)(nil), nil} {
		if kind, _, ok, err := c.Encode(v); ok || err != nil {
			t.Errorf("Encode(%#v) = %q, ok=%v, err=%v; want memory-only", v, kind, ok, err)
		}
	}
	if _, err := c.Decode("no-such-kind", nil); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestCorruptPayloadsErrorCleanly(t *testing.T) {
	c := codec.New()
	m := &linalg.Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	kind, data, _, err := c.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string][]byte{
		"empty":     {},
		"truncated": data[:len(data)/2],
		"version":   append([]byte{99}, data[1:]...),
	} {
		if _, err := c.Decode(kind, bad); err == nil {
			t.Errorf("%s payload must error", name)
		}
	}
}

// TestAllBenchmarkProgramsRoundTrip round-trips every benchmark's
// generated program: instruction mixes differ per benchmark (immediate
// widths change the encoded size), so one benchmark alone can miss a
// decode-guard bug another trips.
func TestAllBenchmarkProgramsRoundTrip(t *testing.T) {
	c := codec.New()
	for _, name := range workload.Benchmarks {
		prog, err := workload.Generate(name, workload.SizeTest)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		kind, data, ok, err := c.Encode(prog)
		if err != nil || !ok {
			t.Fatalf("%s: Encode ok=%v err=%v", name, ok, err)
		}
		got, err := c.Decode(kind, data)
		if err != nil {
			t.Fatalf("%s: Decode: %v", name, err)
		}
		if !equalExported(reflect.ValueOf(prog), reflect.ValueOf(got)) {
			t.Errorf("%s: program changed across round trip", name)
		}
	}
}

// TestPipelineArtifactsRoundTrip runs the real pipeline on one small
// benchmark and round-trips every stage artifact, asserting that a
// decoded simulation result renders byte-identical JSON — the property
// the server's determinism guarantee rests on.
func TestPipelineArtifactsRoundTrip(t *testing.T) {
	prog, err := workload.Generate("compress", workload.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := emu.Run(prog, emu.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res.Trace.BuildIndex()
	full := cfg.Build(res.Profile)
	g, err := full.Prune(0.9, 256)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := reach.ComputeOpts(g, reach.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := core.Select(res.Profile, g, rr, res.Trace, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cluster.Simulate(res.Trace, cluster.Config{TUs: 4, Pairs: tab, SpawnWindowFactor: 4})
	if err != nil {
		t.Fatal(err)
	}

	c := codec.New()
	roundTrip := func(v any) any {
		t.Helper()
		kind, data, ok, err := c.Encode(v)
		if err != nil || !ok {
			t.Fatalf("Encode(%T) ok=%v err=%v", v, ok, err)
		}
		got, err := c.Decode(kind, data)
		if err != nil {
			t.Fatalf("Decode(%T): %v", v, err)
		}
		return got
	}

	// Trace: events and index behaviour survive.
	tr2 := roundTrip(res.Trace).(*trace.Trace)
	if tr2.Len() != res.Trace.Len() {
		t.Fatalf("trace length %d -> %d", res.Trace.Len(), tr2.Len())
	}
	probe := res.Trace.Events[res.Trace.Len()/2].PC
	if a, b := res.Trace.NextOccurrence(probe, 0), tr2.NextOccurrence(probe, 0); a != b {
		t.Errorf("NextOccurrence diverges after round trip: %d vs %d", a, b)
	}

	// Emu result: the decoded profile shares the decoded trace's
	// program, as a fresh run does.
	er2 := roundTrip(res).(*emu.Result)
	if er2.Profile.Program != er2.Trace.Program {
		t.Error("decoded emu result must share one program between trace and profile")
	}
	if er2.Instrs != res.Instrs || er2.Profile.TotalInstrs != res.Profile.TotalInstrs {
		t.Error("emu result counters lost in round trip")
	}

	// Graph, reach, table: exported-field equality.
	for _, pair := range []struct {
		name string
		a, b any
	}{
		{"graph", g, roundTrip(g)},
		{"reach", rr, roundTrip(rr)},
		{"table", tab, roundTrip(tab)},
	} {
		if !equalExported(reflect.ValueOf(pair.a), reflect.ValueOf(pair.b)) {
			t.Errorf("%s artifact changed across round trip", pair.name)
		}
	}

	// Simulation result: byte-identical JSON (the /v1/simulate body).
	sim2 := roundTrip(sim).(*cluster.Result)
	j1, err := json.Marshal(sim)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(sim2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Errorf("simulation result JSON differs after round trip:\n%s\nvs\n%s", j1, j2)
	}
}
