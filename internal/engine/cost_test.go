package engine

import (
	"context"
	"testing"
	"time"
)

// sized is a test artifact with an explicit byte cost.
type sized int64

func (s sized) ApproxBytes() int64 { return int64(s) }

func TestCacheByteWeightedEviction(t *testing.T) {
	c := NewCacheSized(100, 1000)
	c.Add("heavy", sized(600))
	c.Add("light1", sized(100))
	c.Add("light2", sized(100))
	if got := c.Bytes(); got != 800 {
		t.Fatalf("bytes = %d, want 800", got)
	}
	// Touch heavy so the lights are LRU, then push over budget: both
	// lights must go (600+100+100+400 = 1200 → evict to 1000).
	c.Get("heavy")
	c.Add("big", sized(400))
	if _, ok := c.Get("big"); !ok {
		t.Error("most recent entry evicted")
	}
	if _, ok := c.Get("heavy"); !ok {
		t.Error("recently used heavy entry evicted before LRU lights")
	}
	if _, ok := c.Get("light1"); ok {
		t.Error("LRU light1 survived byte-budget eviction")
	}
	if _, ok := c.Get("light2"); ok {
		t.Error("LRU light2 survived byte-budget eviction")
	}
	st := c.Stats()
	if st.BytesResident != 1000 {
		t.Errorf("bytes resident = %d, want 1000", st.BytesResident)
	}
	if st.BytesCapacity != 1000 {
		t.Errorf("bytes capacity = %d, want 1000", st.BytesCapacity)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestCacheOversizedEntryRetained(t *testing.T) {
	// A single entry larger than the budget must still be cached (the
	// alternative is thrashing: recompute on every access).
	c := NewCacheSized(10, 100)
	c.Add("whale", sized(1000))
	if _, ok := c.Get("whale"); !ok {
		t.Fatal("oversized entry not retained")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheDefaultCostForUnsizedValues(t *testing.T) {
	c := NewCacheSized(10, 0)
	c.Add("plain", 42)
	if got := c.Bytes(); got != defaultEntryBytes {
		t.Errorf("bytes = %d, want default %d", got, defaultEntryBytes)
	}
}

func TestCacheReAddAdjustsBytes(t *testing.T) {
	c := NewCacheSized(10, 0)
	c.Add("k", sized(100))
	c.Add("k", sized(300))
	if got := c.Bytes(); got != 300 {
		t.Errorf("bytes = %d, want 300 after re-add", got)
	}
}

func TestEngineCacheBytesOption(t *testing.T) {
	e := New(Options{Workers: 1, CacheBytes: 2048})
	run := func(key string, cost int64) {
		_, err := e.Exec(context.Background(), Job{
			Key: key,
			Run: func(ctx context.Context, deps []any) (any, error) { return sized(cost), nil },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	run("trace/a", 2000)
	run("trace/b", 2000)
	st := e.Stats()
	if st.Cache.BytesResident > 2048+2000 {
		t.Errorf("bytes resident = %d, budget not applied", st.Cache.BytesResident)
	}
	if st.Cache.BytesCapacity != 2048 {
		t.Errorf("bytes capacity = %d, want 2048", st.Cache.BytesCapacity)
	}
}

func TestLatencyHistograms(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx := context.Background()
	for i, key := range []string{"sim/a", "sim/b", "reach/a", ""} {
		_, err := e.Exec(ctx, Job{
			Key: key,
			Run: func(ctx context.Context, deps []any) (any, error) {
				time.Sleep(time.Duration(i) * time.Millisecond)
				return i, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	lat := e.Stats().Latency
	if lat["sim"].Count != 2 {
		t.Errorf("sim count = %d, want 2", lat["sim"].Count)
	}
	if lat["reach"].Count != 1 {
		t.Errorf("reach count = %d, want 1", lat["reach"].Count)
	}
	if lat["adhoc"].Count != 1 {
		t.Errorf("adhoc count = %d, want 1", lat["adhoc"].Count)
	}
	for kind, h := range lat {
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		if sum != h.Count {
			t.Errorf("%s: bucket counts sum %d != count %d", kind, sum, h.Count)
		}
		if len(h.Counts) != len(h.BucketsMS)+1 {
			t.Errorf("%s: %d counts for %d buckets", kind, len(h.Counts), len(h.BucketsMS))
		}
		if h.TotalMS < 0 || h.MaxMS < 0 {
			t.Errorf("%s: negative latency %+v", kind, h)
		}
	}
	// Cached re-exec must not record a new observation.
	before := lat["sim"].Count
	if _, err := e.Exec(ctx, Job{Key: "sim/a", Run: func(ctx context.Context, deps []any) (any, error) { return 0, nil }}); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Latency["sim"].Count; got != before {
		t.Errorf("cache hit recorded a latency observation (%d -> %d)", before, got)
	}
}

func TestJobKind(t *testing.T) {
	cases := map[string]string{
		"":            "adhoc",
		"sim/a/b":     "sim",
		"reach/x":     "reach",
		"nopathsep":   "nopathsep",
		"/leadslash":  "",
		"table/x/y/z": "table",
	}
	for key, want := range cases {
		if got := JobKind(key); got != want {
			t.Errorf("JobKind(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"0":      0,
		"8192":   8192,
		"64KB":   64 << 10,
		"64kb":   64 << 10,
		" 2 MB ": 2 << 20,
		"1.5GB":  3 << 29, // 1.5 * 2^30
		"1TB":    1 << 40,
		"100B":   100,
	}
	for in, want := range good {
		got, err := ParseBytes(in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "-5", "12QB", "MB", "nan", "inf", "-inf", "1e30GB", "999999999999TB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", bad)
		}
	}
}
