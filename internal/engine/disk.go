// Disk tier of the artifact store: one file per artifact under a
// store directory, named by a hash of the content key. Writes are
// atomic (temp file + rename), the tier is byte-budgeted with
// LRU eviction, and reads are corruption-tolerant: a truncated,
// scribbled, or stale-format file is treated as a miss and deleted so
// the next Put rewrites it — never a panic, never a fatal error.
//
// Write-through is asynchronous: PutAsync hands the artifact to a
// background writer through a bounded queue, so the encode and file
// write happen off the job-completion path. A full queue blocks the
// producer rather than dropping the write — durability is never
// traded away, so a drained store holds exactly what a synchronous
// one would and cold-start stays byte-identical. Flush waits for the
// queue to drain; Close drains and stops the writer (later writes
// fall back to the synchronous path).
package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/binio"
)

// artMagic leads every artifact file; a version bump means old files
// are deleted on first touch rather than misread.
const artMagic = "SPMTART1"

// artExt is the artifact file extension; tmpPrefix marks in-progress
// writes, cleaned up at Open (a crash mid-write leaves only tmp files,
// never a truncated artifact under its final name).
const (
	artExt    = ".art"
	tmpPrefix = "tmp-"
)

// DiskStats is a point-in-time snapshot of disk-tier effectiveness.
type DiskStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Writes    uint64 `json:"writes"`
	Evictions uint64 `json:"evictions"`
	// Errors counts corrupt or unreadable artifact files dropped
	// (each also counts as a miss) and failed writes.
	Errors  uint64 `json:"errors"`
	Entries int    `json:"entries"`
	// BytesResident is the total size of resident artifact files;
	// BytesCapacity is the byte budget (0 = unbounded).
	BytesResident int64 `json:"bytes_resident"`
	BytesCapacity int64 `json:"bytes_capacity,omitempty"`
	// AsyncWrites counts artifacts accepted onto the background
	// writer's queue; QueueDepth is how many of them have not yet
	// reached disk; Flushes counts explicit queue drains (Flush and
	// Close).
	AsyncWrites uint64 `json:"async_writes"`
	QueueDepth  int    `json:"queue_depth"`
	Flushes     uint64 `json:"flushes"`
}

type diskEntry struct {
	key   string
	path  string
	bytes int64
}

// asyncQueueCap bounds the background writer's queue. Queued artifacts
// are live pointers (the memory tier usually also holds them), so the
// bound caps how much evicted-but-unwritten data the queue can pin; a
// producer hitting the bound blocks until the writer catches up.
const asyncQueueCap = 64

// diskWrite is one unit of background-writer work: an artifact to
// persist, or a flush token (done != nil) that the writer acknowledges
// by closing done.
type diskWrite struct {
	key  string
	val  any
	done chan struct{}
}

// DiskFaults is the disk tier's fault-injection seam (implemented by
// internal/fault.Injector). ReadError/WriteError fail the operation
// as if the file were unreadable/unwritable; MangleImage may corrupt
// the encoded image before it reaches disk (a torn write — the CRC
// catches it on the next read). A nil DiskFaults injects nothing;
// production code never sets one.
type DiskFaults interface {
	ReadError(key string) error
	WriteError(key string) error
	MangleImage(key string, img []byte) []byte
}

// DiskTier is the persistent tier of the artifact store. All methods
// are safe for concurrent use.
type DiskTier struct {
	dir      string
	maxBytes int64 // 0 = unbounded
	codec    Codec

	// sendMu serialises queue sends with Close, so a producer can
	// never send on a closed queue. The writer goroutine only receives
	// and never takes sendMu, so a producer blocked on a full queue
	// always drains.
	sendMu sync.Mutex
	closed bool
	queue  chan diskWrite
	wg     sync.WaitGroup

	mu     sync.Mutex
	faults DiskFaults // nil in production; see SetFaults
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	// pending holds artifacts accepted for the background writer but
	// not yet on disk, keyed to their live value: reads are served from
	// it, so an artifact is never invisible between Add and the write
	// landing (a memory-tier eviction in that window would otherwise
	// force a recompute of data the process still holds).
	pending     map[string]any
	bytes       int64
	hits        uint64
	misses      uint64
	writes      uint64
	evictions   uint64
	errors      uint64
	asyncWrites uint64
	flushes     uint64
}

// OpenDiskTier opens (creating if needed) a disk tier rooted at dir,
// bounded by maxBytes (<= 0 means unbounded), using codec to
// serialise artifacts. Existing artifact files are indexed by reading
// their headers only — payloads are decoded lazily on Get — ordered
// oldest-modified first so eviction drops stale artifacts before warm
// ones. Leftover temp files from an interrupted write are removed;
// unreadable artifact files are deleted and counted, never fatal.
func OpenDiskTier(dir string, maxBytes int64, codec Codec) (*DiskTier, error) {
	if codec == nil {
		return nil, fmt.Errorf("engine: disk tier needs a codec")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: disk tier: %w", err)
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	t := &DiskTier{
		dir:      dir,
		maxBytes: maxBytes,
		codec:    codec,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		pending:  make(map[string]any),
		queue:    make(chan diskWrite, asyncQueueCap),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("engine: disk tier: %w", err)
	}
	type scanned struct {
		ent   *diskEntry
		mtime int64
	}
	var found []scanned
	for _, de := range entries {
		name := de.Name()
		path := filepath.Join(dir, name)
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(path) //nolint:errcheck // best-effort cleanup
			continue
		}
		if de.IsDir() || !strings.HasSuffix(name, artExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		key, ok := t.readHeader(path)
		if !ok {
			t.errors++
			os.Remove(path) //nolint:errcheck // corrupt file, drop it
			continue
		}
		found = append(found, scanned{
			ent:   &diskEntry{key: key, path: path, bytes: info.Size()},
			mtime: info.ModTime().UnixNano(),
		})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	// Push oldest first so the list front ends up most recent.
	for _, s := range found {
		if _, dup := t.items[s.ent.key]; dup {
			continue
		}
		t.items[s.ent.key] = t.ll.PushFront(s.ent)
		t.bytes += s.ent.bytes
	}
	t.mu.Lock()
	t.evict()
	t.mu.Unlock()
	t.wg.Add(1)
	go t.writer()
	return t, nil
}

// writer is the background goroutine draining the async-write queue.
func (t *DiskTier) writer() {
	defer t.wg.Done()
	for req := range t.queue {
		if req.done != nil {
			t.mu.Lock()
			t.flushes++
			t.mu.Unlock()
			close(req.done)
			continue
		}
		t.Put(req.key, req.val)
		t.mu.Lock()
		delete(t.pending, req.key)
		t.mu.Unlock()
	}
}

// PutAsync queues the artifact for the background writer and returns
// immediately — the completion-path form of Put. A full queue blocks
// until the writer catches up (writes are never dropped); after Close
// the write happens synchronously instead.
func (t *DiskTier) PutAsync(key string, val any) {
	if key == "" {
		return
	}
	t.mu.Lock()
	_, resident := t.items[key]
	_, queued := t.pending[key]
	if resident || queued {
		t.mu.Unlock()
		return
	}
	t.pending[key] = val
	t.asyncWrites++
	t.mu.Unlock()

	t.sendMu.Lock()
	if t.closed {
		t.sendMu.Unlock()
		t.Put(key, val)
		t.mu.Lock()
		delete(t.pending, key)
		t.mu.Unlock()
		return
	}
	t.queue <- diskWrite{key: key, val: val}
	t.sendMu.Unlock()
}

// Flush blocks until every write queued before the call has reached
// disk. After Close it is a no-op (Close already drained).
func (t *DiskTier) Flush() {
	t.sendMu.Lock()
	if t.closed {
		t.sendMu.Unlock()
		return
	}
	done := make(chan struct{})
	t.queue <- diskWrite{done: done}
	t.sendMu.Unlock()
	<-done
}

// Close drains the async-write queue and stops the background writer.
// The tier remains readable and writable — subsequent PutAsync calls
// degrade to synchronous writes. Close is idempotent and safe to call
// concurrently: EVERY caller blocks until the queue has drained, so
// whichever of two racing shutdown paths (ops handler, signal handler)
// returns first still observes a fully-flushed store.
func (t *DiskTier) Close() {
	t.sendMu.Lock()
	first := !t.closed
	if first {
		t.closed = true
		close(t.queue)
	}
	t.sendMu.Unlock()
	t.wg.Wait()
	if first {
		t.mu.Lock()
		t.flushes++
		t.mu.Unlock()
	}
}

// Dir returns the store directory.
func (t *DiskTier) Dir() string { return t.dir }

// SetFaults installs a fault injector behind the read/write paths
// (nil clears it). Injected failures flow through the SAME
// corruption-tolerance paths real ones do — a read error drops the
// file and reports a miss, a failed or torn write is a counted
// error — which is exactly what the degradation suite exercises.
func (t *DiskTier) SetFaults(f DiskFaults) {
	t.mu.Lock()
	t.faults = f
	t.mu.Unlock()
}

// faultHook returns the current injector (nil almost always).
func (t *DiskTier) faultHook() DiskFaults {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults
}

// artPath maps a content key to its file path: keys contain slashes
// and arbitrary config hashes, so the name is a digest of the key
// (the key itself is stored in the file header and verified on read).
func (t *DiskTier) artPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(t.dir, hex.EncodeToString(sum[:20])+artExt)
}

// encodeFile renders the on-disk artifact image: header, payload, and
// a trailing CRC over everything before it.
func encodeFile(kind, key string, data []byte) []byte {
	w := binio.NewWriter(len(artMagic) + len(kind) + len(key) + len(data) + 24)
	w.Raw([]byte(artMagic))
	w.String(kind)
	w.String(key)
	w.Blob(data)
	w.U32(crc32.ChecksumIEEE(w.Bytes()))
	return w.Bytes()
}

// decodeFile parses an artifact image, verifying magic and CRC.
func decodeFile(img []byte) (kind, key string, data []byte, err error) {
	if len(img) < len(artMagic)+4 {
		return "", "", nil, fmt.Errorf("artifact file too short (%d bytes)", len(img))
	}
	body, sum := img[:len(img)-4], img[len(img)-4:]
	r := binio.NewReader(body)
	if string(r.Raw(len(artMagic))) != artMagic {
		return "", "", nil, fmt.Errorf("bad artifact magic")
	}
	kind = r.String()
	key = r.String()
	data = r.Blob()
	if err := r.Close(); err != nil {
		return "", "", nil, err
	}
	r2 := binio.NewReader(sum)
	if got := crc32.ChecksumIEEE(body); got != r2.U32() {
		return "", "", nil, fmt.Errorf("artifact checksum mismatch")
	}
	return kind, key, data, nil
}

// readHeader parses only magic/kind/key from the start of a file —
// enough to index it at Open without decoding the payload.
func (t *DiskTier) readHeader(path string) (key string, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return "", false
	}
	defer f.Close()
	// Kind and key are short; 4KB covers any header this repo writes.
	buf := make([]byte, 4096)
	n, _ := f.Read(buf)
	r := binio.NewReader(buf[:n])
	if string(r.Raw(len(artMagic))) != artMagic {
		return "", false
	}
	_ = r.String() // kind
	key = r.String()
	if r.Err() != nil || key == "" {
		return "", false
	}
	return key, true
}

// Has reports whether key is resident on disk (no recency update).
func (t *DiskTier) Has(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.items[key]
	return ok
}

// HasOrPending is Has extended to artifacts accepted for the
// background writer but not yet on disk — the "held here" notion the
// replication receive path needs, where a queued write must count or a
// double-push lands twice.
func (t *DiskTier) HasOrPending(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.items[key]; ok {
		return true
	}
	_, queued := t.pending[key]
	return queued
}

// Keys returns the resident keys, least recently used first (the order
// a memory warm-up should replay them so the hottest end up freshest).
func (t *DiskTier) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, t.ll.Len())
	for e := t.ll.Back(); e != nil; e = e.Prev() {
		keys = append(keys, e.Value.(*diskEntry).key)
	}
	return keys
}

// EntryInfo describes one resident artifact for warm-up planning: the
// file size approximates the decoded artifact's resident cost.
type EntryInfo struct {
	Key   string
	Bytes int64
}

// Entries returns the resident artifacts, least recently used first.
func (t *DiskTier) Entries() []EntryInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]EntryInfo, 0, t.ll.Len())
	for e := t.ll.Back(); e != nil; e = e.Prev() {
		ent := e.Value.(*diskEntry)
		out = append(out, EntryInfo{Key: ent.key, Bytes: ent.bytes})
	}
	return out
}

// Get reads, verifies, and decodes the artifact stored under key. Any
// corruption — truncation, checksum mismatch, key collision, codec
// failure — deletes the file and reports a miss, so the artifact is
// simply recomputed and rewritten.
func (t *DiskTier) Get(key string) (any, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.items[key]
	if !ok {
		// Queued for the background writer: the artifact is as good as
		// resident — serve the live value instead of recomputing it.
		if v, queued := t.pending[key]; queued {
			t.hits++
			return v, true
		}
		t.misses++
		return nil, false
	}
	ent := el.Value.(*diskEntry)
	v, err := t.load(ent, key)
	if err != nil {
		t.dropLocked(el)
		t.errors++
		t.misses++
		log.Printf("engine: disk tier: dropping %s: %v", ent.path, err)
		return nil, false
	}
	t.hits++
	t.ll.MoveToFront(el)
	return v, true
}

// Image returns the stored encoded image (kind tag + payload) under
// key without decoding it — the cheap path behind a shard's artifact
// exchange, where the bytes are about to cross the wire anyway and a
// decode would only pollute the memory tier. Magic/CRC/key are still
// verified (corrupt files are dropped and reported as a miss, exactly
// like Get). Pending (queued-but-unwritten) artifacts are not served
// here; callers fall back to the decoded-value path for those.
func (t *DiskTier) Image(key string) (kind string, data []byte, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, found := t.items[key]
	if !found {
		return "", nil, false
	}
	ent := el.Value.(*diskEntry)
	var img []byte
	var err error
	if t.faults != nil {
		err = t.faults.ReadError(key)
	}
	if err == nil {
		img, err = os.ReadFile(ent.path)
	}
	if err == nil {
		var fileKey string
		kind, fileKey, data, err = decodeFile(img)
		if err == nil && fileKey != key {
			err = fmt.Errorf("key collision: file holds %q", fileKey)
		}
	}
	if err != nil {
		t.dropLocked(el)
		t.errors++
		log.Printf("engine: disk tier: dropping %s: %v", ent.path, err)
		return "", nil, false
	}
	t.ll.MoveToFront(el)
	return kind, data, true
}

// load reads and decodes one artifact file. Callers must hold t.mu.
func (t *DiskTier) load(ent *diskEntry, key string) (any, error) {
	if t.faults != nil {
		if err := t.faults.ReadError(key); err != nil {
			return nil, err
		}
	}
	img, err := os.ReadFile(ent.path)
	if err != nil {
		return nil, err
	}
	kind, fileKey, data, err := decodeFile(img)
	if err != nil {
		return nil, err
	}
	if fileKey != key {
		return nil, fmt.Errorf("key collision: file holds %q", fileKey)
	}
	v, err := t.codec.Decode(kind, data)
	if err != nil {
		return nil, fmt.Errorf("decode %q: %w", kind, err)
	}
	return v, nil
}

// Put synchronously persists the artifact under key if its type has a
// codec and it is not already resident (PutAsync is the completion-
// path form). The write is atomic: a temp file in the store directory
// renamed into place, so readers never observe a partial artifact
// under a final name.
func (t *DiskTier) Put(key string, val any) {
	if key == "" || t.Has(key) {
		return
	}
	kind, data, ok, err := t.codec.Encode(val)
	if err != nil {
		t.fail("encode %T: %v", val, err)
		return
	}
	if !ok {
		return // memory-only artifact type
	}
	if len(data) == 0 {
		// A zero-byte artifact would index as resident yet decode to
		// nothing; refuse it loudly instead of corrupting hit math.
		log.Printf("engine: disk tier: refusing zero-byte artifact %q (%T)", key, val)
		return
	}
	img := encodeFile(kind, key, data)
	path := t.artPath(key)
	if f := t.faultHook(); f != nil {
		if err := f.WriteError(key); err != nil {
			t.fail("write %s: %v", path, err)
			return
		}
		img = f.MangleImage(key, img)
	}

	// Write the temp file outside the tier lock: trace-sized images
	// are tens of megabytes, and holding t.mu across the write would
	// stall every concurrent Get/Put on the completion path. Only the
	// dup-check, rename, and index insert are serialised.
	tmp, err := os.CreateTemp(t.dir, tmpPrefix+"*")
	if err != nil {
		t.fail("create temp: %v", err)
		return
	}
	_, werr := tmp.Write(img)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		t.fail("write %s: %v", path, firstErr(werr, cerr))
		return
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.items[key]; dup {
		// Lost a write race; identical content either way.
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		t.failLocked("rename %s: %v", path, err)
		return
	}
	t.items[key] = t.ll.PushFront(&diskEntry{key: key, path: path, bytes: int64(len(img))})
	t.bytes += int64(len(img))
	t.writes++
	t.evict()
}

// Demote queues a memory-tier eviction for the background writer
// unless it is already resident or queued (the write-through path
// usually got there first). Asynchronous: eviction happens on an Add's
// completion path, which must not absorb an encode of a trace-sized
// artifact.
func (t *DiskTier) Demote(key string, val any) { t.PutAsync(key, val) }

// Remove discards the artifact stored (or pending) under key and
// reports whether anything was dropped. A write already handed to the
// background writer may still land afterwards; callers that need the
// key gone for certain should Flush first (Engine.Drop does).
func (t *DiskTier) Remove(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, pending := t.pending[key]
	delete(t.pending, key)
	el, resident := t.items[key]
	if resident {
		t.dropLocked(el)
	}
	return pending || resident
}

// evict removes least recently used artifact files until the byte
// budget holds, always keeping the most recently used artifact.
// Callers must hold t.mu.
func (t *DiskTier) evict() {
	for t.maxBytes > 0 && t.bytes > t.maxBytes && t.ll.Len() > 1 {
		oldest := t.ll.Back()
		if oldest == nil {
			return
		}
		t.dropLocked(oldest)
		t.evictions++
	}
}

// dropLocked removes an entry and its file. Callers must hold t.mu.
func (t *DiskTier) dropLocked(el *list.Element) {
	ent := el.Value.(*diskEntry)
	os.Remove(ent.path) //nolint:errcheck // already dropping it
	t.ll.Remove(el)
	delete(t.items, ent.key)
	t.bytes -= ent.bytes
}

func (t *DiskTier) fail(format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failLocked(format, args...)
}

// failLocked logs a non-fatal disk-tier failure. Callers must hold
// t.mu.
func (t *DiskTier) failLocked(format string, args ...any) {
	t.errors++
	log.Printf("engine: disk tier: "+format, args...)
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of resident artifacts.
func (t *DiskTier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len()
}

// Bytes returns the total size of resident artifact files.
func (t *DiskTier) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes
}

// Stats snapshots the disk-tier counters.
func (t *DiskTier) Stats() DiskStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return DiskStats{
		Hits:          t.hits,
		Misses:        t.misses,
		Writes:        t.writes,
		Evictions:     t.evictions,
		Errors:        t.errors,
		Entries:       t.ll.Len(),
		BytesResident: t.bytes,
		BytesCapacity: t.maxBytes,
		AsyncWrites:   t.asyncWrites,
		QueueDepth:    len(t.pending),
		Flushes:       t.flushes,
	}
}
