package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// suiteDAG mirrors the shape of experiment-suite construction: nBench
// independent four-stage chains (generate → emulate → prune → reach),
// each stage CPU-bound. It exercises exactly the path expt.NewSuite
// takes through the engine.
func suiteDAG(e *Engine, nBench, work int) error {
	spin := func(seed uint64) uint64 {
		x := seed
		for i := 0; i < work; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		return x
	}
	stage := func(name string, deps ...Job) Job {
		return Job{
			Key:  name,
			Deps: deps,
			Run: func(ctx context.Context, dv []any) (any, error) {
				var seed uint64 = 1
				for _, d := range dv {
					seed ^= d.(uint64)
				}
				return spin(seed), nil
			},
		}
	}
	errs := make([]error, nBench)
	var wg sync.WaitGroup
	for i := 0; i < nBench; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := stage(fmt.Sprintf("gen/%d", i))
			emu := stage(fmt.Sprintf("emu/%d", i), gen)
			prune := stage(fmt.Sprintf("prune/%d", i), emu)
			reach := stage(fmt.Sprintf("reach/%d", i), prune)
			_, errs[i] = e.Exec(context.Background(), reach)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func benchmarkSuiteBuild(b *testing.B, workers int) {
	const nBench, work = 8, 2_000_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Fresh engine each iteration: this measures cold construction,
		// not cache hits.
		if err := suiteDAG(New(Options{Workers: workers}), nBench, work); err != nil {
			b.Fatal(err)
		}
	}
}

// On >= 2 cores the parallel build should beat the serial one by
// roughly min(workers, nBench, cores).
func BenchmarkSuiteBuildSerial(b *testing.B)     { benchmarkSuiteBuild(b, 1) }
func BenchmarkSuiteBuildWorkers2(b *testing.B)   { benchmarkSuiteBuild(b, 2) }
func BenchmarkSuiteBuildWorkers8(b *testing.B)   { benchmarkSuiteBuild(b, 8) }
func BenchmarkSuiteBuildGOMAXPROCS(b *testing.B) { benchmarkSuiteBuild(b, 0) }

func BenchmarkCacheHit(b *testing.B) {
	e := New(Options{Workers: 1})
	j := Job{Key: "warm", Run: func(ctx context.Context, deps []any) (any, error) { return 1, nil }}
	if _, err := e.Exec(context.Background(), j); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(context.Background(), j); err != nil {
			b.Fatal(err)
		}
	}
}
