package vpred

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func trainAndScore(p Predictor, vals []uint64, warm int) (hits, trials int) {
	for i, v := range vals {
		if i >= warm {
			pred, known := p.Predict(1000, 2000, 5)
			trials++
			if known && pred == v {
				hits++
			}
		}
		p.Update(1000, 2000, 5, v)
	}
	return
}

func TestStrideLearnsStrideSequence(t *testing.T) {
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = 0x1000 + uint64(i)*8
	}
	hits, trials := trainAndScore(NewStride(16<<10), vals, 4)
	if hits != trials {
		t.Errorf("stride sequence hits = %d/%d", hits, trials)
	}
}

func TestStrideLearnsConstant(t *testing.T) {
	vals := make([]uint64, 32)
	for i := range vals {
		vals[i] = 42
	}
	hits, trials := trainAndScore(NewStride(16<<10), vals, 2)
	if hits != trials {
		t.Errorf("constant hits = %d/%d", hits, trials)
	}
}

func TestStrideFailsOnRandom(t *testing.T) {
	s := uint64(99)
	vals := make([]uint64, 64)
	for i := range vals {
		s = s*6364136223846793005 + 1442695040888963407
		vals[i] = s
	}
	hits, trials := trainAndScore(NewStride(16<<10), vals, 4)
	if hits > trials/8 {
		t.Errorf("random sequence hits = %d/%d, suspiciously high", hits, trials)
	}
}

func TestFCMLearnsRepeatingPattern(t *testing.T) {
	// Period-3 pattern is invisible to a stride predictor but exactly
	// the FCM's specialty.
	pattern := []uint64{7, 100, 13}
	vals := make([]uint64, 120)
	for i := range vals {
		vals[i] = pattern[i%3]
	}
	fcmHits, fcmTrials := trainAndScore(NewFCM(16<<10), vals, 24)
	if float64(fcmHits) < 0.9*float64(fcmTrials) {
		t.Errorf("FCM pattern hits = %d/%d", fcmHits, fcmTrials)
	}
	strideHits, strideTrials := trainAndScore(NewStride(16<<10), vals, 24)
	if strideHits >= fcmHits {
		t.Errorf("stride (%d) should not beat FCM (%d) on period-3 pattern over %d trials",
			strideHits, fcmHits, strideTrials)
	}
}

func TestLastValue(t *testing.T) {
	lv := NewLastValue(16 << 10)
	if _, known := lv.Predict(1, 2, 3); known {
		t.Error("cold entry must report unknown")
	}
	lv.Update(1, 2, 3, 77)
	if v, known := lv.Predict(1, 2, 3); !known || v != 77 {
		t.Errorf("Predict = %d,%v", v, known)
	}
}

func TestDistinctKeysDontInterfere(t *testing.T) {
	s := NewStride(16 << 10)
	s.Update(1, 2, 3, 100)
	s.Update(1, 2, 3, 108)
	s.Update(1, 2, 3, 116)
	s.Update(9, 9, 9, 5)
	if v, _ := s.Predict(1, 2, 3); v != 124 {
		t.Errorf("stride prediction after unrelated update = %d, want 124", v)
	}
}

func TestNames(t *testing.T) {
	for _, p := range []Predictor{NewStride(1 << 10), NewFCM(1 << 10), NewLastValue(1 << 10)} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestPow2Entries(t *testing.T) {
	if n := pow2Entries(16<<10, 16); n != 1024 {
		t.Errorf("16KB/16B = %d entries, want 1024", n)
	}
	if n := pow2Entries(0, 16); n != 16 {
		t.Errorf("zero budget = %d entries, want floor of 16", n)
	}
	if n := pow2Entries(24<<10, 16); n != 1024 {
		t.Errorf("24KB/16B = %d entries, want 1024 (power of two)", n)
	}
}

func TestPredictorsNeverPanic(t *testing.T) {
	preds := []Predictor{NewStride(4 << 10), NewFCM(4 << 10), NewLastValue(4 << 10)}
	f := func(sp, cqip uint32, reg uint8, v uint64) bool {
		for _, p := range preds {
			p.Update(sp, cqip, isa.Reg(reg%32), v)
			p.Predict(sp, cqip, isa.Reg(reg%32))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHybridTracksBestComponent(t *testing.T) {
	// Strided stream: hybrid must match the stride predictor.
	vals := make([]uint64, 96)
	for i := range vals {
		vals[i] = 0x100 + uint64(i)*16
	}
	hHits, hTrials := trainAndScore(NewHybrid(16<<10), vals, 8)
	if float64(hHits) < 0.95*float64(hTrials) {
		t.Errorf("hybrid on stride stream: %d/%d", hHits, hTrials)
	}
	// Period-3 stream: hybrid must approach the FCM.
	pattern := []uint64{7, 100, 13}
	vals = make([]uint64, 150)
	for i := range vals {
		vals[i] = pattern[i%3]
	}
	hHits, hTrials = trainAndScore(NewHybrid(16<<10), vals, 30)
	if float64(hHits) < 0.85*float64(hTrials) {
		t.Errorf("hybrid on period-3 stream: %d/%d", hHits, hTrials)
	}
}

func TestHybridColdAndName(t *testing.T) {
	h := NewHybrid(8 << 10)
	if _, known := h.Predict(1, 2, 3); known {
		t.Error("cold hybrid must report unknown")
	}
	if h.Name() != "hybrid" {
		t.Error("name wrong")
	}
}
