package vpred

import "repro/internal/isa"

// Hybrid combines a stride and a context predictor with a per-entry
// 2-bit chooser, in the spirit of the follow-up predictor study the
// paper cites ([14]): stride captures induction live-ins, the FCM
// captures repeating non-arithmetic sequences, and the chooser tracks
// which component has been right for each (SP, CQIP, register) stream.
// The byte budget is split between the two components (the chooser is
// counted against the stride half).
type Hybrid struct {
	stride  *Stride
	context *FCM
	choose  []uint8 // 0..3; >=2 prefers context
	mask    uint64
}

// NewHybrid returns a hybrid predictor within the byte budget.
func NewHybrid(bytes int) *Hybrid {
	n := pow2Entries(bytes/2, 17)
	return &Hybrid{
		stride:  NewStride(bytes / 2),
		context: NewFCM(bytes / 2),
		choose:  make([]uint8, n),
		mask:    uint64(n - 1),
	}
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return "hybrid" }

// Predict implements Predictor: the chooser selects the component, with
// fallback to whichever component has a basis when the preferred one is
// cold.
func (h *Hybrid) Predict(sp, cqip uint32, reg isa.Reg) (uint64, bool) {
	sv, sok := h.stride.Predict(sp, cqip, reg)
	cv, cok := h.context.Predict(sp, cqip, reg)
	preferContext := h.choose[hash(sp, cqip, reg)&h.mask] >= 2
	switch {
	case preferContext && cok:
		return cv, true
	case !preferContext && sok:
		return sv, true
	case cok:
		return cv, true
	case sok:
		return sv, true
	default:
		return 0, false
	}
}

// Update implements Predictor: both components train; the chooser moves
// toward whichever one was right.
func (h *Hybrid) Update(sp, cqip uint32, reg isa.Reg, actual uint64) {
	sv, sok := h.stride.Predict(sp, cqip, reg)
	cv, cok := h.context.Predict(sp, cqip, reg)
	sHit := sok && sv == actual
	cHit := cok && cv == actual
	i := hash(sp, cqip, reg) & h.mask
	if cHit && !sHit && h.choose[i] < 3 {
		h.choose[i]++
	}
	if sHit && !cHit && h.choose[i] > 0 {
		h.choose[i]--
	}
	h.stride.Update(sp, cqip, reg, actual)
	h.context.Update(sp, cqip, reg, actual)
}
