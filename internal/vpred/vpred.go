// Package vpred implements the live-in value predictors the paper
// evaluates (HPCA'02 §4.3.1): a stride predictor [6][19] and a
// context-based FCM predictor [20], both sized to a 16KB hardware
// budget, plus last-value and perfect reference predictors. Tables are
// indexed by hashing the spawning point PC, the control quasi-
// independent point PC, and the register identifier, as the paper
// describes.
package vpred

import "repro/internal/isa"

// Predictor predicts the value of one live-in register of a thread
// spawned by the (sp, cqip) pair and is trained with the architected
// value observed at validation time.
type Predictor interface {
	// Predict returns the predicted value. The boolean reports whether
	// the predictor has any basis for the prediction (cold entries
	// return false and predict zero).
	Predict(sp, cqip uint32, reg isa.Reg) (uint64, bool)
	// Update trains the entry with the actual architected value.
	Update(sp, cqip uint32, reg isa.Reg, actual uint64)
	// Name identifies the predictor in reports.
	Name() string
}

// hash mixes the pair PCs and register id into a table index.
func hash(sp, cqip uint32, reg isa.Reg) uint64 {
	h := uint64(sp)*0x9e3779b97f4a7c15 ^ uint64(cqip)*0xc2b2ae3d27d4eb4f ^ uint64(reg)*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Stride is a last-value + stride predictor. Each of its 1024 entries
// holds a last value, a stride, and a 2-bit confidence counter
// (16 bytes + tag bits ≈ 16KB).
type Stride struct {
	entries []strideEntry
	mask    uint64
}

type strideEntry struct {
	last   uint64
	stride uint64
	conf   uint8
	valid  bool
}

// NewStride returns a stride predictor with the given table size in
// bytes (the paper's budget is 16KB → 1024 entries of 16 bytes).
func NewStride(bytes int) *Stride {
	n := pow2Entries(bytes, 16)
	return &Stride{entries: make([]strideEntry, n), mask: uint64(n - 1)}
}

// Name implements Predictor.
func (s *Stride) Name() string { return "stride" }

// Predict implements Predictor: last + stride when confident, last
// value otherwise.
func (s *Stride) Predict(sp, cqip uint32, reg isa.Reg) (uint64, bool) {
	e := &s.entries[hash(sp, cqip, reg)&s.mask]
	if !e.valid {
		return 0, false
	}
	if e.conf >= 1 {
		return e.last + e.stride, true
	}
	return e.last, true
}

// Update implements Predictor.
func (s *Stride) Update(sp, cqip uint32, reg isa.Reg, actual uint64) {
	e := &s.entries[hash(sp, cqip, reg)&s.mask]
	if !e.valid {
		e.last = actual
		e.valid = true
		e.conf = 0
		e.stride = 0
		return
	}
	stride := actual - e.last
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = stride
		}
	}
	e.last = actual
}

// FCM is an order-2 context-based predictor: a first-level table maps
// the hashed history of recent values to a second-level table of
// predicted values. The byte budget is split between the two levels.
type FCM struct {
	l1     []fcmHist // history per (sp,cqip,reg)
	l1mask uint64
	l2     []fcmValue // value per context
	l2mask uint64
}

type fcmHist struct {
	h1, h2 uint64
	valid  bool
}

type fcmValue struct {
	value uint64
	conf  uint8
	valid bool
}

// NewFCM returns a context predictor within the given byte budget
// (split half/half between levels; the paper's budget is 16KB).
func NewFCM(bytes int) *FCM {
	n1 := pow2Entries(bytes/2, 17)
	n2 := pow2Entries(bytes/2, 9)
	return &FCM{
		l1: make([]fcmHist, n1), l1mask: uint64(n1 - 1),
		l2: make([]fcmValue, n2), l2mask: uint64(n2 - 1),
	}
}

// Name implements Predictor.
func (f *FCM) Name() string { return "context" }

func (f *FCM) context(h *fcmHist) uint64 {
	c := h.h1*0x9e3779b97f4a7c15 ^ h.h2*0x94d049bb133111eb
	c ^= c >> 31
	return c & f.l2mask
}

// Predict implements Predictor.
func (f *FCM) Predict(sp, cqip uint32, reg isa.Reg) (uint64, bool) {
	h := &f.l1[hash(sp, cqip, reg)&f.l1mask]
	if !h.valid {
		return 0, false
	}
	v := &f.l2[f.context(h)]
	if !v.valid {
		return 0, false
	}
	return v.value, true
}

// Update implements Predictor.
func (f *FCM) Update(sp, cqip uint32, reg isa.Reg, actual uint64) {
	h := &f.l1[hash(sp, cqip, reg)&f.l1mask]
	if h.valid {
		v := &f.l2[f.context(h)]
		if v.valid && v.value == actual {
			if v.conf < 3 {
				v.conf++
			}
		} else if v.valid && v.conf > 0 {
			v.conf--
		} else {
			v.value = actual
			v.valid = true
			v.conf = 1
		}
	}
	h.h2 = h.h1
	h.h1 = actual
	h.valid = true
}

// LastValue predicts the previously observed value.
type LastValue struct {
	entries []lvEntry
	mask    uint64
}

type lvEntry struct {
	value uint64
	valid bool
}

// NewLastValue returns a last-value predictor within the byte budget.
func NewLastValue(bytes int) *LastValue {
	n := pow2Entries(bytes, 9)
	return &LastValue{entries: make([]lvEntry, n), mask: uint64(n - 1)}
}

// Name implements Predictor.
func (l *LastValue) Name() string { return "last-value" }

// Predict implements Predictor.
func (l *LastValue) Predict(sp, cqip uint32, reg isa.Reg) (uint64, bool) {
	e := &l.entries[hash(sp, cqip, reg)&l.mask]
	return e.value, e.valid
}

// Update implements Predictor.
func (l *LastValue) Update(sp, cqip uint32, reg isa.Reg, actual uint64) {
	e := &l.entries[hash(sp, cqip, reg)&l.mask]
	e.value = actual
	e.valid = true
}

// pow2Entries returns the largest power-of-two entry count fitting the
// byte budget at the given entry size.
func pow2Entries(bytes, entrySize int) int {
	n := 1
	for n*2*entrySize <= bytes {
		n *= 2
	}
	if n < 16 {
		n = 16
	}
	return n
}
