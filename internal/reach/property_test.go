package reach

import (
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/emu"
	"repro/internal/workload"
)

// randomFlowGraph builds a small substochastic chain from fuzz bytes.
func randomFlowGraph(raw []uint16) *cfg.Graph {
	n := 2 + int(raw[0]%6)
	g := &cfg.Graph{ByPC: map[uint32]int{}, Coverage: 1}
	for i := 0; i < n; i++ {
		g.ByPC[uint32(i)] = i
		g.Nodes = append(g.Nodes, cfg.Node{PC: uint32(i), Len: 1 + int(raw[(i+1)%len(raw)]%30), Count: 100})
	}
	g.Succ = make([][]cfg.Edge, n)
	k := 1
	next := func() int {
		v := int(raw[k%len(raw)])
		k++
		return v
	}
	for i := 0; i < n; i++ {
		deg := next() % 3 // 0..2 successors; 0 = absorbing
		total := 0.0
		var edges []cfg.Edge
		for d := 0; d < deg; d++ {
			w := float64(1 + next()%50)
			edges = append(edges, cfg.Edge{To: next() % n, W: w})
			total += w
		}
		// Scale so outflow ≤ count (possibly leaking).
		scale := 100.0 / (total + float64(1+next()%40))
		for e := range edges {
			edges[e].W *= scale
		}
		g.Succ[i] = edges
	}
	return g
}

// TestComputeBoundsProperty: on random chains every probability is in
// [0,1] and every positive-probability distance is at least the source
// block's length.
func TestComputeBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		g := randomFlowGraph(raw)
		res, err := Compute(g)
		if err != nil {
			// Singular taboo chains can arise from degenerate random
			// graphs; skip rather than fail.
			return true
		}
		n := len(g.Nodes)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := res.Prob.At(i, j)
				if p < 0 || p > 1 {
					return false
				}
				d := res.Dist.At(i, j)
				if p > 1e-9 && d < float64(g.Nodes[i].Len)-1e-6 {
					return false
				}
				if p <= 1e-12 && d != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSelfProbabilityIsReturnProbability: RP(i,i) can never exceed the
// total outflow probability of i.
func TestSelfProbabilityIsReturnProbability(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		g := randomFlowGraph(raw)
		res, err := Compute(g)
		if err != nil {
			return true
		}
		for i := range g.Nodes {
			out := g.OutWeight(i) / g.Nodes[i].Count
			if out > 1 {
				out = 1
			}
			if res.Prob.At(i, i) > out+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMatrixVsEmpiricalOnBenchmark cross-validates the two engines on a
// real benchmark for the confident pairs the selection relies on.
func TestMatrixVsEmpiricalOnBenchmark(t *testing.T) {
	prog := workload.MustGenerate("m88ksim", workload.SizeTest)
	runRes, err := emu.Run(prog, emu.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(runRes.Profile).Prune(0.9, 256)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	emp := Empirical(g, VisitsFromTrace(runRes.Trace, g))
	n := len(g.Nodes)
	var checked, agree int
	for i := 0; i < n; i++ {
		if g.Nodes[i].Count < 100 {
			continue
		}
		for j := 0; j < n; j++ {
			mp := mat.Prob.At(i, j)
			if mp < 0.95 {
				continue
			}
			checked++
			if emp.Prob.At(i, j) > 0.85 {
				agree++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no confident pairs to check")
	}
	if float64(agree) < 0.85*float64(checked) {
		t.Errorf("only %d/%d high-probability pairs confirmed empirically", agree, checked)
	}
}
