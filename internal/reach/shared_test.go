package reach

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/emu"
	"repro/internal/workload"
)

// maxAbsDiff returns the largest |a-b| over two equally-shaped matrices.
func maxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// TestSharedMatchesDirectProperty is the engine's parity acceptance
// test: on randomised CFGs the shared-factorisation path must agree
// with the per-source-factorisation reference within 1e-9 on both the
// probability and distance matrices.
func TestSharedMatchesDirectProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		g := randomFlowGraph(raw)
		direct, derr := ComputeDirect(g)
		shared, serr := Compute(g)
		if derr != nil || serr != nil {
			// Degenerate random chains may be singular; both paths must
			// agree that they are.
			return (derr == nil) == (serr == nil)
		}
		if d := maxAbsDiff(direct.Prob.Data, shared.Prob.Data); d > 1e-9 {
			t.Logf("Prob diverges by %g", d)
			return false
		}
		if d := maxAbsDiff(direct.Dist.Data, shared.Dist.Data); d > 1e-9 {
			t.Logf("Dist diverges by %g", d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestSharedMatchesDirectRegressions replays fuzz inputs that once
// broke parity. The first one builds a chain whose only return path to
// one node runs through an absorbing self-loop: the return probability
// is pure round-off, and both engines used to divide noise by noise
// (diverging by ~17 instructions) instead of reporting the pair
// unreachable.
func TestSharedMatchesDirectRegressions(t *testing.T) {
	inputs := [][]uint16{
		{0xcf0b, 0xfaba, 0x3e91, 0x8b76, 0x2558, 0x9980, 0xae4a, 0xfe86,
			0x325c, 0x5cc3, 0x4b2f, 0x3569, 0x5bdb, 0x4664, 0x29f4, 0xb50d, 0xc7d3},
	}
	for ii, raw := range inputs {
		g := randomFlowGraph(raw)
		direct, derr := ComputeDirect(g)
		shared, serr := Compute(g)
		if (derr == nil) != (serr == nil) {
			t.Fatalf("input %d: error mismatch: %v vs %v", ii, derr, serr)
		}
		if derr != nil {
			continue
		}
		if d := maxAbsDiff(direct.Prob.Data, shared.Prob.Data); d > 1e-9 {
			t.Errorf("input %d: Prob diverges by %g", ii, d)
		}
		if d := maxAbsDiff(direct.Dist.Data, shared.Dist.Data); d > 1e-9 {
			t.Errorf("input %d: Dist diverges by %g", ii, d)
		}
	}
}

// TestSharedMatchesDirectOnBenchmark checks parity on a real pruned
// benchmark CFG. Real chains can be orders of magnitude worse
// conditioned than the randomised ones (hot loops leak very little), so
// the tolerance here allows conditioning headroom.
func TestSharedMatchesDirectOnBenchmark(t *testing.T) {
	for _, name := range []string{"compress", "m88ksim"} {
		g := benchGraph(t, name)
		direct, err := ComputeDirect(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		shared, err := Compute(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := maxAbsDiff(direct.Prob.Data, shared.Prob.Data); d > 1e-6 {
			t.Errorf("%s: Prob diverges by %g", name, d)
		}
		// Distances are in instructions; agree to far better than one
		// instruction.
		if d := maxAbsDiff(direct.Dist.Data, shared.Dist.Data); d > 1e-3 {
			t.Errorf("%s: Dist diverges by %g", name, d)
		}
	}
}

func benchGraph(t *testing.T, name string) *cfg.Graph {
	t.Helper()
	prog := workload.MustGenerate(name, workload.SizeTest)
	runRes, err := emu.Run(prog, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(runRes.Profile).Prune(0.9, 256)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func matrixBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, res.Prob.Data); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&buf, binary.LittleEndian, res.Dist.Data); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelMatchesSerialByteIdentical: the per-source fan-out writes
// disjoint result rows from a shared read-only factorisation, so every
// worker count must produce bit-for-bit identical output. Run with
// -race this also exercises the fan-out for data races.
func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	graphs := []*cfg.Graph{
		benchGraph(t, "compress"),
		twoNodeLoop(0.8),
		threeNode(0.25),
	}
	for _, seed := range []uint64{3, 99} {
		g, _ := randomChainAndWalk(seed, 12, 30000)
		graphs = append(graphs, g)
	}
	for gi, g := range graphs {
		serial, err := ComputeOpts(g, Options{Workers: 1})
		if err != nil {
			t.Fatalf("graph %d serial: %v", gi, err)
		}
		want := matrixBytes(t, serial)
		for _, workers := range []int{2, 3, 8, 64} {
			par, err := ComputeOpts(g, Options{Workers: workers})
			if err != nil {
				t.Fatalf("graph %d workers=%d: %v", gi, workers, err)
			}
			if !bytes.Equal(want, matrixBytes(t, par)) {
				t.Errorf("graph %d: workers=%d output differs from serial", gi, workers)
			}
		}
	}
}

// TestParallelRepeatedRuns hammers the concurrent fan-out (and the
// workspace pool) under -race.
func TestParallelRepeatedRuns(t *testing.T) {
	g, _ := randomChainAndWalk(7, 10, 20000)
	want, err := ComputeOpts(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for k := 0; k < 8; k++ {
		go func() {
			for r := 0; r < 5; r++ {
				res, err := ComputeOpts(g, Options{Workers: 4})
				if err != nil {
					done <- err
					return
				}
				if maxAbsDiff(res.Prob.Data, want.Prob.Data) != 0 {
					done <- errNondeterministic
					return
				}
			}
			done <- nil
		}()
	}
	for k := 0; k < 8; k++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errNondeterministic = errorString("parallel run diverged from serial")

type errorString string

func (e errorString) Error() string { return string(e) }
