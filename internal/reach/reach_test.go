package reach

import (
	"math"
	"testing"

	"repro/internal/cfg"
	"repro/internal/emu"
	"repro/internal/workload"
)

// twoNodeLoop: A self-loops with probability p and exits to B otherwise.
func twoNodeLoop(p float64) *cfg.Graph {
	const count = 1000
	return &cfg.Graph{
		Nodes: []cfg.Node{
			{PC: 0, Len: 10, Count: count},
			{PC: 10, Len: 5, Count: count * (1 - p)},
		},
		Succ: [][]cfg.Edge{
			{{To: 0, W: count * p}, {To: 1, W: count * (1 - p)}},
			{},
		},
		ByPC:     map[uint32]int{0: 0, 10: 1},
		Coverage: 1,
	}
}

func TestComputeTwoNodeLoop(t *testing.T) {
	p := 0.8
	res, err := Compute(twoNodeLoop(p))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Prob.At(0, 0); math.Abs(got-p) > 1e-9 {
		t.Errorf("RP(A,A) = %v, want %v", got, p)
	}
	if got := res.Dist.At(0, 0); math.Abs(got-10) > 1e-9 {
		t.Errorf("D(A,A) = %v, want 10 (direct self-loop)", got)
	}
	if got := res.Prob.At(0, 1); math.Abs(got-(1-p)) > 1e-9 {
		t.Errorf("RP(A,B) = %v, want %v", got, 1-p)
	}
	if got := res.Dist.At(0, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("D(A,B) = %v, want 10", got)
	}
	if got := res.Prob.At(1, 0); got != 0 {
		t.Errorf("RP(B,A) = %v, want 0 (terminal)", got)
	}
}

// threeNode: A→B (1−q), A→C (q); B→A always; C terminal.
func threeNode(q float64) *cfg.Graph {
	const count = 1000
	return &cfg.Graph{
		Nodes: []cfg.Node{
			{PC: 0, Len: 4, Count: count},
			{PC: 10, Len: 7, Count: count * (1 - q)},
			{PC: 20, Len: 3, Count: count * q},
		},
		Succ: [][]cfg.Edge{
			{{To: 1, W: count * (1 - q)}, {To: 2, W: count * q}},
			{{To: 0, W: count * (1 - q)}},
			{},
		},
		ByPC:     map[uint32]int{0: 0, 10: 1, 20: 2},
		Coverage: 1,
	}
}

func TestComputeThreeNodeTaboo(t *testing.T) {
	q := 0.25
	res, err := Compute(threeNode(q))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		i, j int
		rp   float64
		dist float64
	}{
		{0, 0, 1 - q, 4 + 7}, // A→B→A
		{0, 1, 1 - q, 4},     // direct
		{0, 2, q, 4},         // direct only: the B path returns to A first
		{1, 0, 1, 7},         // B→A always
		{1, 2, q, 7 + 4},     // B→A→C; revisiting B is failure
		{2, 0, 0, 0},         // terminal
	}
	for _, c := range cases {
		if got := res.Prob.At(c.i, c.j); math.Abs(got-c.rp) > 1e-9 {
			t.Errorf("RP(%d,%d) = %v, want %v", c.i, c.j, got, c.rp)
		}
		if got := res.Dist.At(c.i, c.j); math.Abs(got-c.dist) > 1e-9 {
			t.Errorf("D(%d,%d) = %v, want %v", c.i, c.j, got, c.dist)
		}
	}
	// RP(1,0) is certain even though B revisits are allowed: check an
	// intermediate-repeat case. RP(2,*) all zero.
	for j := 0; j < 3; j++ {
		if got := res.Prob.At(2, j); got != 0 {
			t.Errorf("RP(2,%d) = %v, want 0", j, got)
		}
	}
}

// TestComputeIntermediateRepeats: i→a→a→…→j — intermediate nodes may
// repeat without ending the sequence (the paper's only constraint is on
// the endpoints).
func TestComputeIntermediateRepeats(t *testing.T) {
	// i(0)→a(1); a self-loops with prob s, else →j(2); j terminal.
	s := 0.6
	const count = 1000
	g := &cfg.Graph{
		Nodes: []cfg.Node{
			{PC: 0, Len: 2, Count: count},
			{PC: 10, Len: 3, Count: count / (1 - s)},
			{PC: 20, Len: 5, Count: count},
		},
		Succ: [][]cfg.Edge{
			{{To: 1, W: count}},
			{{To: 1, W: count * s / (1 - s)}, {To: 2, W: count}},
			{},
		},
		ByPC:     map[uint32]int{0: 0, 10: 1, 20: 2},
		Coverage: 1,
	}
	res, err := Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Prob.At(0, 2); math.Abs(got-1) > 1e-9 {
		t.Errorf("RP(i,j) = %v, want 1", got)
	}
	// Expected visits of a: 1/(1-s) = 2.5, each of length 3.
	want := 2.0 + 3.0/(1-s)
	if got := res.Dist.At(0, 2); math.Abs(got-want) > 1e-9 {
		t.Errorf("D(i,j) = %v, want %v", got, want)
	}
}

func TestComputeEmptyGraph(t *testing.T) {
	if _, err := Compute(&cfg.Graph{}); err == nil {
		t.Fatal("expected error on empty graph")
	}
}

// TestMatrixMatchesEmpiricalOnMarkovWalk: generate a random irreducible
// chain, sample a long walk from it, and require the matrix engine to
// agree with direct measurement within sampling error.
func TestMatrixMatchesEmpiricalOnMarkovWalk(t *testing.T) {
	seeds := []uint64{1, 7, 42}
	for _, seed := range seeds {
		g, walk := randomChainAndWalk(seed, 6, 120000)
		mat, err := Compute(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		emp := Empirical(g, walk)
		n := len(g.Nodes)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				mp, ep := mat.Prob.At(i, j), emp.Prob.At(i, j)
				if math.Abs(mp-ep) > 0.04 {
					t.Errorf("seed %d RP(%d,%d): matrix %v vs empirical %v", seed, i, j, mp, ep)
				}
				if mp > 0.2 && ep > 0 {
					md, ed := mat.Dist.At(i, j), emp.Dist.At(i, j)
					if rel := math.Abs(md-ed) / math.Max(ed, 1); rel > 0.08 {
						t.Errorf("seed %d D(%d,%d): matrix %v vs empirical %v", seed, i, j, md, ed)
					}
				}
			}
		}
	}
}

// randomChainAndWalk builds a dense random chain over n nodes and
// samples a walk of the given length.
func randomChainAndWalk(seed uint64, n, steps int) (*cfg.Graph, []Visit) {
	s := seed
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 0x2545f4914f6cdd1d
	}
	probs := make([][]float64, n)
	for i := range probs {
		probs[i] = make([]float64, n)
		total := 0.0
		for j := range probs[i] {
			v := float64(next()%1000) + 1
			probs[i][j] = v
			total += v
		}
		for j := range probs[i] {
			probs[i][j] /= total
		}
	}
	lens := make([]int, n)
	for i := range lens {
		lens[i] = 1 + int(next()%20)
	}

	// Sample the walk.
	visits := make([]Visit, 0, steps)
	cur := 0
	cum := 0.0
	counts := make([]float64, n)
	weights := make([][]float64, n)
	for i := range weights {
		weights[i] = make([]float64, n)
	}
	for k := 0; k < steps; k++ {
		visits = append(visits, Visit{Node: cur, Cum: cum})
		counts[cur]++
		cum += float64(lens[cur])
		r := float64(next()%1e9) / 1e9
		nxt := n - 1
		for j := 0; j < n; j++ {
			if r < probs[cur][j] {
				nxt = j
				break
			}
			r -= probs[cur][j]
		}
		if k+1 < steps {
			weights[cur][nxt]++
		}
		cur = nxt
	}

	// Build the graph from the *observed* walk so the chain the matrix
	// sees is exactly the empirical transition structure.
	g := &cfg.Graph{ByPC: map[uint32]int{}, Coverage: 1}
	for i := 0; i < n; i++ {
		g.ByPC[uint32(i*10)] = i
		g.Nodes = append(g.Nodes, cfg.Node{PC: uint32(i * 10), Len: lens[i], Count: counts[i]})
	}
	g.Succ = make([][]cfg.Edge, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if weights[i][j] > 0 {
				g.Succ[i] = append(g.Succ[i], cfg.Edge{To: j, W: weights[i][j]})
			}
		}
	}
	return g, visits
}

// TestPipelineCountLoop runs the real pipeline over the counted-loop
// kernel and checks the loop-iteration pair's probability and distance.
func TestPipelineCountLoop(t *testing.T) {
	trips, pad := 200, 6
	prog := workload.KernelCountLoop(trips, pad)
	runRes, err := emu.Run(prog, emu.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(runRes.Profile).Prune(0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	body, ok := g.ByPC[2]
	if !ok {
		t.Fatalf("body node missing; nodes %+v", g.Nodes)
	}
	wantRP := float64(trips-1) / float64(trips)
	if got := res.Prob.At(body, body); math.Abs(got-wantRP) > 1e-9 {
		t.Errorf("RP(body,body) = %v, want %v", got, wantRP)
	}
	bodyLen := float64(g.Nodes[body].Len)
	if got := res.Dist.At(body, body); math.Abs(got-bodyLen) > 1e-9 {
		t.Errorf("D(body,body) = %v, want %v", got, bodyLen)
	}

	// Cross-check with the empirical estimator on the same trace.
	emp := Empirical(g, VisitsFromTrace(runRes.Trace, g))
	if got := emp.Prob.At(body, body); math.Abs(got-wantRP) > 1e-9 {
		t.Errorf("empirical RP = %v, want %v", got, wantRP)
	}
	if got := emp.Dist.At(body, body); math.Abs(got-bodyLen) > 1e-9 {
		t.Errorf("empirical D = %v, want %v", got, bodyLen)
	}
}

// TestPipelineBenchmarksAgree compares matrix vs empirical estimates on
// real generated benchmarks. Real traces are not Markovian, so this is a
// loose agreement check on confident pairs only — it guards against
// gross engine errors, not sampling noise.
func TestPipelineBenchmarksAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline comparison is slow")
	}
	for _, name := range []string{"compress", "ijpeg"} {
		prog := workload.MustGenerate(name, workload.SizeTest)
		runRes, err := emu.Run(prog, emu.Config{CollectTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		g, err := cfg.Build(runRes.Profile).Prune(0.9, 128)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := Compute(g)
		if err != nil {
			t.Fatal(err)
		}
		emp := Empirical(g, VisitsFromTrace(runRes.Trace, g))
		n := len(g.Nodes)
		disagree, confident := 0, 0
		for i := 0; i < n; i++ {
			if g.Nodes[i].Count < 50 {
				continue
			}
			for j := 0; j < n; j++ {
				mp, ep := mat.Prob.At(i, j), emp.Prob.At(i, j)
				if mp > 0.95 || ep > 0.95 {
					confident++
					if math.Abs(mp-ep) > 0.25 {
						disagree++
					}
				}
			}
		}
		if confident == 0 {
			t.Errorf("%s: no confident pairs found", name)
		}
		if float64(disagree) > 0.15*float64(confident) {
			t.Errorf("%s: %d/%d confident pairs disagree by > 0.25", name, disagree, confident)
		}
	}
}
