package reach

import (
	"fmt"

	"repro/internal/binio"
	"repro/internal/cfg"
	"repro/internal/linalg"
)

// resultVersion tags the reach.Result wire format.
const resultVersion = 1

// MarshalBinary serialises the result (graph plus both dense matrices)
// as one self-contained artifact.
func (r *Result) MarshalBinary() ([]byte, error) {
	w := binio.NewWriter(64)
	w.U8(resultVersion)
	writeOpt := func(v interface{ MarshalBinary() ([]byte, error) }, present bool) error {
		w.Bool(present)
		if !present {
			return nil
		}
		b, err := v.MarshalBinary()
		if err != nil {
			return err
		}
		w.Blob(b)
		return nil
	}
	if err := writeOpt(r.G, r.G != nil); err != nil {
		return nil, err
	}
	if err := writeOpt(r.Prob, r.Prob != nil); err != nil {
		return nil, err
	}
	if err := writeOpt(r.Dist, r.Dist != nil); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a result written by MarshalBinary.
func (r *Result) UnmarshalBinary(data []byte) error {
	rd := binio.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != resultVersion {
		return fmt.Errorf("reach: result format version %d (want %d)", v, resultVersion)
	}
	var g *cfg.Graph
	if rd.Bool() {
		g = new(cfg.Graph)
		if b := rd.Blob(); rd.Err() == nil {
			if err := g.UnmarshalBinary(b); err != nil {
				return fmt.Errorf("reach: result graph: %w", err)
			}
		}
	}
	readMat := func() (*linalg.Matrix, error) {
		if !rd.Bool() {
			return nil, nil
		}
		m := new(linalg.Matrix)
		b := rd.Blob()
		if rd.Err() != nil {
			return nil, nil
		}
		if err := m.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		return m, nil
	}
	prob, err := readMat()
	if err != nil {
		return fmt.Errorf("reach: result prob: %w", err)
	}
	dist, err := readMat()
	if err != nil {
		return fmt.Errorf("reach: result dist: %w", err)
	}
	if err := rd.Close(); err != nil {
		return err
	}
	r.G, r.Prob, r.Dist = g, prob, dist
	return nil
}
