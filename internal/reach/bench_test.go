package reach

import (
	"fmt"
	"testing"

	"repro/internal/cfg"
)

// syntheticCFG builds a deterministic leaky random chain of n nodes —
// the benchmark's "medium CFG" shape (sparse successors, healthy
// absorption, like a pruned profile graph).
func syntheticCFG(n int, seed uint64) *cfg.Graph {
	s := seed
	next := func() uint64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return s * 0x2545f4914f6cdd1d
	}
	g := &cfg.Graph{ByPC: map[uint32]int{}, Coverage: 1}
	for i := 0; i < n; i++ {
		g.ByPC[uint32(i*10)] = i
		g.Nodes = append(g.Nodes, cfg.Node{PC: uint32(i * 10), Len: 1 + int(next()%30), Count: 1000})
	}
	g.Succ = make([][]cfg.Edge, n)
	for i := 0; i < n; i++ {
		deg := 2 + int(next()%3)
		total := 0.0
		var edges []cfg.Edge
		for d := 0; d < deg; d++ {
			w := float64(1 + next()%50)
			edges = append(edges, cfg.Edge{To: int(next() % uint64(n)), W: w})
			total += w
		}
		// Scale outflow to 70–95% of the node count: every row leaks.
		outflow := 0.70 + float64(next()%26)/100
		for e := range edges {
			edges[e].W *= 1000 * outflow / total
		}
		g.Succ[i] = edges
	}
	return g
}

// BenchmarkReach compares the shared-factorisation engine (serial and
// parallel) against the per-source-factorisation reference on
// increasing CFG sizes. scripts/bench_reach.sh records these numbers in
// BENCH_reach.json across PRs. The O(n⁴) direct reference stops at
// n=256 — at 512 a single iteration runs the better part of a minute
// and measures nothing the smaller sizes do not.
func BenchmarkReach(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		g := syntheticCFG(n, 42)
		b.Run(fmt.Sprintf("shared/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeOpts(g, Options{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeOpts(g, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n > 256 {
			continue
		}
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeDirect(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
