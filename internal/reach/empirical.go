package reach

import (
	"repro/internal/cfg"
	"repro/internal/linalg"
	"repro/internal/trace"
)

// Visit is one dynamic entry into a retained CFG node.
type Visit struct {
	Node int     // node index in the graph
	Cum  float64 // dynamic instructions executed before this visit
}

// VisitsFromTrace projects a dynamic trace onto the retained nodes of g:
// every execution of a retained block leader becomes a visit, annotated
// with the cumulative instruction count. Pruned blocks simply contribute
// instructions between visits, matching the splice semantics.
func VisitsFromTrace(tr *trace.Trace, g *cfg.Graph) []Visit {
	visits := make([]Visit, 0, len(tr.Events)/8)
	for i := range tr.Events {
		if node, ok := g.ByPC[tr.Events[i].PC]; ok {
			visits = append(visits, Visit{Node: node, Cum: float64(i)})
		}
	}
	return visits
}

// Empirical measures reaching probabilities and distances directly from
// a visit sequence: for each occurrence of source i, the pair (i,j)
// succeeds if j is visited again before i is, and the distance is the
// instruction count between the two visits. It is the measurement the
// matrix engine should agree with when the underlying process is
// Markovian, and serves as its cross-validation oracle.
func Empirical(g *cfg.Graph, visits []Visit) *Result {
	n := len(g.Nodes)
	res := &Result{G: g, Prob: linalg.NewMatrix(n, n), Dist: linalg.NewMatrix(n, n)}

	// Per-node visit position lists (indices into visits).
	occ := make([][]int32, n)
	for idx, v := range visits {
		occ[v.Node] = append(occ[v.Node], int32(idx))
	}

	for i := 0; i < n; i++ {
		vi := occ[i]
		if len(vi) == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			vj := occ[j]
			if len(vj) == 0 {
				continue
			}
			var hits, trials float64
			var distSum float64
			pj := 0
			for k, t := range vi {
				trials++
				// Next visit of i after t.
				nextI := int32(-1)
				if i == j {
					if k+1 < len(vi) {
						nextI = vi[k+1]
					}
					if nextI >= 0 {
						hits++
						distSum += visits[nextI].Cum - visits[t].Cum
					}
					continue
				}
				if k+1 < len(vi) {
					nextI = vi[k+1]
				}
				// Advance pj to the first visit of j after t.
				for pj < len(vj) && vj[pj] <= t {
					pj++
				}
				if pj == len(vj) {
					continue // j never visited again
				}
				if nextI < 0 || vj[pj] < nextI {
					hits++
					distSum += visits[vj[pj]].Cum - visits[t].Cum
				}
			}
			if trials > 0 && hits > 0 {
				res.Prob.Set(i, j, hits/trials)
				res.Dist.Set(i, j, distSum/hits)
			}
		}
	}
	return res
}
