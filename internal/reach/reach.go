// Package reach computes the paper's reaching-probability and expected-
// distance matrices over the pruned dynamic CFG (HPCA'02 §3.1).
//
// RP(i,j) is the probability that, after executing block i, block j is
// executed before i is executed again — the paper's constraint that the
// source and destination appear only as the first and last nodes of each
// control-flow sequence, with every other block free to repeat. D(i,j)
// is the expected number of instructions executed from the first
// instruction of i (inclusive) to the first instruction of j
// (exclusive), conditioned on reaching j.
//
// # Exact formulation
//
// The computation is exact over the graph's Markov chain. For each
// source i the chain with transitions into i removed (taboo) has
// fundamental matrix Nᵢ = (I−Qᵢ)⁻¹, and:
//
//	F(u,j) = Nᵢ(u,j)/Nᵢ(j,j)            first-passage u→j avoiding i
//	RP(i,j) = Σ_v P(i→v)·F(v,j)
//
// Conditional distances come from the same factorisation via a
// Sherman–Morrison reduction: with Mᵢ = Nᵢ·diag(len)·Nᵢ,
//
//	g_j = Mᵢ(:,j)/Nᵢ(j,j) − Nᵢ(:,j)·len(j) − Nᵢ(:,j)·β_j
//
// accumulates the expected block lengths of intermediate nodes on
// successful paths, and D(i,j) = len(i) + Σ_v P(i→v)g_j(v) / RP(i,j).
// First-return pairs (i == j, the loop-iteration shape) use the hitting
// vector h = Nᵢ·P(:,i) on the same factorisation.
//
// # Shared factorisation
//
// Refactorising (I−Qᵢ) for every source costs O(n³) per node — O(n⁴)
// per CFG. Instead, the engine factorises the base chain A = I−P once
// and derives every taboo chain from it: zeroing row i and column i of
// P is the rank-2 update
//
//	A_i = A + U·Vᵀ,  U = [e_i, c'_i],  Vᵀ = [r_iᵀ; e_iᵀ]
//
// where r_i is row i of P and c'_i is column i of P with entry i
// zeroed. By the Woodbury identity, with N = A⁻¹ and M0 = N·diag(len)·N
// computed once,
//
//	Nᵢ = N − K·S⁻¹·W,   K = N·U,  W = Vᵀ·N,  S = I₂ + Vᵀ·K (2×2)
//	Mᵢ = M0 − K·T̃ − G·W  (rank-4, all pieces O(n²) per source)
//
// so every Nᵢ/Mᵢ entry the formulas above need is evaluated pointwise
// in O(1) from a handful of length-n vectors. Per-CFG cost collapses
// from O(n⁴) to O(n³) (one LU + one inverse + one blocked matmul), and
// the per-source fan-out is embarrassingly parallel: Compute distributes
// sources across a bounded worker group, each writing only its own rows
// of the result, so the parallel output is byte-identical to a serial
// run. All scratch comes from pooled linalg.Workspaces — steady-state
// computation performs no per-source allocation.
//
// ComputeDirect keeps the per-source factorisation as the reference
// implementation; Compute falls back to it (whole-graph, or per source)
// when the base chain is singular or too ill-conditioned for the
// low-rank updates to be trustworthy.
package reach

import (
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/linalg"
	"repro/internal/sched"
)

// Result holds the dense pairwise matrices over graph nodes.
type Result struct {
	G *cfg.Graph
	// Prob[i][j] is RP(i,j) in [0,1].
	Prob *linalg.Matrix
	// Dist[i][j] is D(i,j) in instructions (0 where Prob is 0).
	Dist *linalg.Matrix
}

// ApproxBytes reports the result's resident size for cache accounting.
func (r *Result) ApproxBytes() int64 {
	var b int64 = 64
	if r.Prob != nil {
		b += r.Prob.ApproxBytes()
	}
	if r.Dist != nil {
		b += r.Dist.ApproxBytes()
	}
	return b
}

// damping is applied on a retry if a taboo chain is numerically
// singular (a closed recurrent class with no leak, which cannot arise
// from a terminating profile except through float round-off).
const damping = 1e-9

// condLimit bounds the base chain's ∞-norm condition estimate beyond
// which the shared-factorisation path hands the whole graph to the
// better-conditioned per-source reference path.
const condLimit = 1e12

// Options tunes Compute. The zero value selects the defaults: the
// per-source fan-out runs on the process-wide scheduler.
type Options struct {
	// Sched, when non-nil, is the work-stealing scheduler the
	// per-source fan-out (and the nested linalg tile fan-out) forks
	// into — normally the engine's scheduler, so reach work shares the
	// one core budget. When nil and Workers is unset, sched.Default()
	// is used. Output is byte-identical for every scheduler size.
	Sched *sched.Scheduler

	// Workers bounds the fan-out with a transient private scheduler of
	// that size (1 is serial). Ignored when Sched is set.
	//
	// Deprecated: set Sched instead, so reach work draws from the one
	// scheduler budget rather than adding a pool on top of it.
	Workers int
}

// warnWorkersOnce emits the one-time deprecation notice for the
// private-pool Options.Workers knob.
var warnWorkersOnce sync.Once

// Compute evaluates the exact reaching-probability and distance
// matrices for every ordered node pair of g using the shared-
// factorisation engine with default options.
func Compute(g *cfg.Graph) (*Result, error) { return ComputeOpts(g, Options{}) }

// wsPool amortises workspaces across Compute calls and workers.
var wsPool = sync.Pool{New: func() any { return linalg.NewWorkspace() }}

// ComputeOpts is Compute with explicit options.
func ComputeOpts(g *cfg.Graph, opts Options) (*Result, error) {
	n := len(g.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("reach: empty graph")
	}
	ws := wsPool.Get().(*linalg.Workspace)
	P := buildChain(g, ws)
	lens := ws.Vec(n)
	for i := 0; i < n; i++ {
		lens[i] = float64(g.Nodes[i].Len)
	}
	res := &Result{G: g, Prob: linalg.NewMatrix(n, n), Dist: linalg.NewMatrix(n, n)}

	// Resolve the scheduler the fan-out forks into: an explicit one, a
	// serial run (Workers == 1), a transient private pool for the
	// deprecated Workers knob, or the process-wide default.
	s := opts.Sched
	if s == nil {
		switch {
		case opts.Workers == 1:
			// s stays nil: fully serial.
		case opts.Workers > 1:
			warnWorkersOnce.Do(func() {
				slog.Warn("reach: Options.Workers is deprecated; set Options.Sched to share the scheduler budget")
			})
			t := sched.New(opts.Workers)
			defer t.Close()
			s = t
		default:
			s = sched.Default()
		}
	}
	workers := 1
	if s != nil {
		workers = s.Workers()
	}
	if workers > n {
		workers = n
	}

	sc, ok := newSharedChain(P, lens, ws, s)
	if !ok {
		// Singular or ill-conditioned base chain: the rank-2 updates
		// would amplify factorisation error, so run the reference path.
		err := computeDirectInto(P, lens, res)
		ws.PutVec(lens)
		ws.PutMatrix(P)
		wsPool.Put(ws)
		return finish(res, err)
	}

	var err error
	if workers <= 1 {
		ss := newSourceScratch(n, ws)
		for i := 0; i < n; i++ {
			if serr := computeSource(sc, i, res.Prob.Row(i), res.Dist.Row(i), ss); serr != nil {
				err = fmt.Errorf("reach: source %d: %w", i, serr)
				break
			}
		}
		ss.release(ws)
	} else {
		// Caller-participating claimer tasks on the shared scheduler:
		// the caller plus up to workers-1 group tasks claim sources
		// from an atomic counter, each with its own pooled workspace.
		// Every source i is a reservation of rows i of Prob/Dist —
		// disjoint slots, so claim order cannot affect the output.
		errs := make([]error, n)
		var next atomic.Int64
		claim := func() {
			wws := wsPool.Get().(*linalg.Workspace)
			ss := newSourceScratch(n, wws)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				errs[i] = computeSource(sc, i, res.Prob.Row(i), res.Dist.Row(i), ss)
			}
			ss.release(wws)
			wsPool.Put(wws)
		}
		g := s.NewGroup()
		for w := 0; w < workers-1; w++ {
			g.Go("reach", claim)
		}
		claim()
		g.Wait()
		for i, serr := range errs {
			if serr != nil {
				err = fmt.Errorf("reach: source %d: %w", i, serr)
				break
			}
		}
	}

	sc.release(ws)
	ws.PutVec(lens)
	ws.PutMatrix(P)
	wsPool.Put(ws)
	return finish(res, err)
}

func finish(res *Result, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	return res, nil
}

// buildChain derives the row-normalised transition matrix of the pruned
// graph. Rows are normalised by the node execution count, so flow that
// leaves the pruned graph (program exit or fully cold paths) appears as
// absorption.
func buildChain(g *cfg.Graph, ws *linalg.Workspace) *linalg.Matrix {
	n := len(g.Nodes)
	P := ws.Matrix(n, n)
	for i := 0; i < n; i++ {
		cnt := g.Nodes[i].Count
		if cnt <= 0 {
			continue
		}
		row := P.Row(i)
		for _, e := range g.Succ[i] {
			row[e.To] += e.W / cnt
		}
		// Guard against round-off pushing a row above 1.
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum > 1 {
			for j := range row {
				row[j] /= sum
			}
		}
	}
	return P
}

// sharedChain is the per-CFG state every source derives from: the base
// chain, its materialised fundamental matrix N = (I−P)⁻¹, the distance
// product M0 = N·diag(len)·N, and the column (predecessor) adjacency.
type sharedChain struct {
	n    int
	P    *linalg.Matrix
	lens []float64
	N    *linalg.Matrix
	M0   *linalg.Matrix
	// Column-sparse view of P excluding the diagonal: predecessors of
	// node i are predU[predIdx[i]:predIdx[i+1]] with probabilities
	// predP at the same positions.
	predIdx []int32
	predU   []int32
	predP   []float64
}

// newSharedChain factorises the base chain once and materialises the
// shared products — all through the packed register-blocked kernels,
// with the trailing-update fan-out forked onto s (nil = serial;
// deterministic: the products are byte-identical for every scheduler
// size). ok is false when the base chain is singular or so
// ill-conditioned that per-source refactorisation is the safer path.
func newSharedChain(P *linalg.Matrix, lens []float64, ws *linalg.Workspace, s *sched.Scheduler) (*sharedChain, bool) {
	n := P.Rows
	A := ws.Matrix(n, n)
	for r := 0; r < n; r++ {
		Arow := A.Row(r)
		Prow := P.Row(r)
		for c := 0; c < n; c++ {
			Arow[c] = -Prow[c]
		}
		Arow[r] += 1
	}
	lu := ws.LU(n)
	// Pooled LUs keep their fan-out fields across uses; set both so a
	// stale private-pool count never survives into this call.
	lu.Sched, lu.Workers = s, 0
	if err := lu.FactorInto(A); err != nil {
		ws.PutMatrix(A)
		ws.PutLU(lu)
		return nil, false
	}
	N := ws.Matrix(n, n)
	lu.InverseInto(N)
	ws.PutLU(lu)

	// ∞-norm condition estimate: beyond condLimit the O(εκ) error of
	// the shared inverse could exceed the engine's accuracy contract.
	normA, normN := normInf(A), normInf(N)
	ws.PutMatrix(A)
	if !(normN < math.Inf(1)) || normA*normN > condLimit {
		ws.PutMatrix(N)
		return nil, false
	}

	// M0 = N·diag(len)·N via one blocked multiply.
	ND := ws.Matrix(n, n)
	for r := 0; r < n; r++ {
		src := N.Row(r)
		dst := ND.Row(r)
		for c := 0; c < n; c++ {
			dst[c] = src[c] * lens[c]
		}
	}
	M0 := ws.Matrix(n, n)
	linalg.MulIntoSched(M0, ND, N, s, ws)
	ws.PutMatrix(ND)

	sc := &sharedChain{n: n, P: P, lens: lens, N: N, M0: M0}
	sc.predIdx = make([]int32, n+1)
	nnz := 0
	for u := 0; u < n; u++ {
		for c, v := range P.Row(u) {
			if v != 0 && c != u {
				nnz++
			}
		}
	}
	sc.predU = make([]int32, 0, nnz)
	sc.predP = make([]float64, 0, nnz)
	// Column-major fill: for each column i collect its off-diagonal
	// predecessors in ascending u order.
	for i := 0; i < n; i++ {
		for u := 0; u < n; u++ {
			if u == i {
				continue
			}
			if v := P.At(u, i); v != 0 {
				sc.predU = append(sc.predU, int32(u))
				sc.predP = append(sc.predP, v)
			}
		}
		sc.predIdx[i+1] = int32(len(sc.predU))
	}
	return sc, true
}

func (sc *sharedChain) release(ws *linalg.Workspace) {
	ws.PutMatrix(sc.N)
	ws.PutMatrix(sc.M0)
}

func normInf(m *linalg.Matrix) float64 {
	max := 0.0
	for r := 0; r < m.Rows; r++ {
		s := 0.0
		for _, v := range m.Row(r) {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// sourceScratch holds one worker's per-source vectors. All storage
// comes from (and returns to) a linalg.Workspace.
type sourceScratch struct {
	k1, k2, k2a, k2b []float64 // K = N·U and K·S⁻¹
	w1               []float64 // row 1 of W = Vᵀ·N (row 2 is N's row i)
	wl, wdn1         []float64 // (w1 ⊙ len) and (w1 ⊙ len)·N
	tta, ttb         []float64 // T̃ = S⁻¹·W·D·N − Z·W
	ndk1, ndk2       []float64 // N·diag(len)·K columns
	ga, gb           []float64 // G = N·diag(len)·K·S⁻¹
	h, y, gcirc      []float64 // first-return vectors
	srcIdx           []int32   // non-zero successor indices of the source
	srcP             []float64
}

func newSourceScratch(n int, ws *linalg.Workspace) *sourceScratch {
	return &sourceScratch{
		k1: ws.Vec(n), k2: ws.Vec(n), k2a: ws.Vec(n), k2b: ws.Vec(n),
		w1: ws.Vec(n), wl: ws.Vec(n), wdn1: ws.Vec(n),
		tta: ws.Vec(n), ttb: ws.Vec(n),
		ndk1: ws.Vec(n), ndk2: ws.Vec(n),
		ga: ws.Vec(n), gb: ws.Vec(n),
		h: ws.Vec(n), y: ws.Vec(n), gcirc: ws.Vec(n),
		srcIdx: make([]int32, 0, n), srcP: make([]float64, 0, n),
	}
}

func (ss *sourceScratch) release(ws *linalg.Workspace) {
	for _, v := range [][]float64{
		ss.k1, ss.k2, ss.k2a, ss.k2b, ss.w1, ss.wl, ss.wdn1,
		ss.tta, ss.ttb, ss.ndk1, ss.ndk2, ss.ga, ss.gb,
		ss.h, ss.y, ss.gcirc,
	} {
		ws.PutVec(v)
	}
}

// computeSource fills rows i of the probability and distance matrices
// from the shared factorisation in O(n²): a handful of dense
// vector-matrix products build the rank-2/rank-4 correction vectors,
// after which every Nᵢ/Mᵢ entry is a few fused multiply-adds.
func computeSource(sc *sharedChain, i int, probRow, distRow []float64, ss *sourceScratch) error {
	n := sc.n
	N, M0, lens := sc.N, sc.M0, sc.lens
	srcRow := sc.P.Row(i)
	w2 := N.Row(i)   // row 2 of W is N's row i
	m0i := M0.Row(i) // row 2 of W·D·N is M0's row i

	// Sparse successor list of the source (ascending order, matching
	// the reference path's dense iteration).
	ss.srcIdx, ss.srcP = ss.srcIdx[:0], ss.srcP[:0]
	for v, pv := range srcRow {
		if pv != 0 {
			ss.srcIdx = append(ss.srcIdx, int32(v))
			ss.srcP = append(ss.srcP, pv)
		}
	}

	// K = N·U: k1 = N(:,i); k2 = N·c'_i over the sparse predecessors.
	k1, k2 := ss.k1, ss.k2
	for v := 0; v < n; v++ {
		k1[v] = N.At(v, i)
		k2[v] = 0
	}
	// Accumulate k2 row-wise for cache friendliness: k2[v] = Σ_u p·N(v,u).
	pb, pe := sc.predIdx[i], sc.predIdx[i+1]
	for v := 0; v < n; v++ {
		row := N.Row(v)
		s := 0.0
		for e := pb; e < pe; e++ {
			s += sc.predP[e] * row[sc.predU[e]]
		}
		k2[v] = s
	}

	// W row 1 = r_iᵀ·N over the sparse successors.
	w1 := ss.w1
	for u := range w1 {
		w1[u] = 0
	}
	for e, v := range ss.srcIdx {
		linalg.Axpy(ss.srcP[e], N.Row(int(v)), w1)
	}

	// Capture matrix S = I₂ + Vᵀ·K and its inverse.
	s00, s01 := 1.0, 0.0
	for e, v := range ss.srcIdx {
		pv := ss.srcP[e]
		s00 += pv * k1[v]
		s01 += pv * k2[v]
	}
	s10, s11 := k1[i], 1+k2[i]
	det := s00*s11 - s01*s10
	norm := math.Max(math.Max(math.Abs(s00), math.Abs(s01)), math.Max(math.Abs(s10), math.Abs(s11)))
	if norm < 1 {
		norm = 1
	}
	if math.Abs(det) < 1e-12*norm*norm || math.IsNaN(det) {
		// The taboo chain is (numerically) singular under the low-rank
		// update; refactorise this source directly, with the reference
		// path's damping retry.
		return computeSourceDirect(sc.P, lens, i, probRow, distRow)
	}
	si00, si01 := s11/det, -s01/det
	si10, si11 := -s10/det, s00/det

	// K·S⁻¹ — the rank-2 correction of Nᵢ: Nᵢ(v,u) = N(v,u) − k2a[v]·w1[u] − k2b[v]·w2[u].
	k2a, k2b := ss.k2a, ss.k2b
	for v := 0; v < n; v++ {
		k2a[v] = k1[v]*si00 + k2[v]*si10
		k2b[v] = k1[v]*si01 + k2[v]*si11
	}

	// Rank-4 pieces of Mᵢ = M0 − K·T̃ − G·W.
	wl := ss.wl
	for v := 0; v < n; v++ {
		wl[v] = w1[v] * lens[v]
	}
	N.MulVecT(wl, ss.wdn1) // (W·D·N) row 1; row 2 is M0's row i
	wdk00, wdk01, wdk10, wdk11 := 0.0, 0.0, 0.0, 0.0
	for v := 0; v < n; v++ {
		nl := w2[v] * lens[v]
		wdk00 += wl[v] * k1[v]
		wdk01 += wl[v] * k2[v]
		wdk10 += nl * k1[v]
		wdk11 += nl * k2[v]
	}
	// Z = S⁻¹·(W·D·K)·S⁻¹ (2×2).
	u00 := si00*wdk00 + si01*wdk10
	u01 := si00*wdk01 + si01*wdk11
	u10 := si10*wdk00 + si11*wdk10
	u11 := si10*wdk01 + si11*wdk11
	z00, z01 := u00*si00+u01*si10, u00*si01+u01*si11
	z10, z11 := u10*si00+u11*si10, u10*si01+u11*si11
	tta, ttb := ss.tta, ss.ttb
	for u := 0; u < n; u++ {
		t1a := si00*ss.wdn1[u] + si01*m0i[u]
		t1b := si10*ss.wdn1[u] + si11*m0i[u]
		tta[u] = t1a - (z00*w1[u] + z01*w2[u])
		ttb[u] = t1b - (z10*w1[u] + z11*w2[u])
	}
	// G = (N·D·K)·S⁻¹: column 1 of N·D·K is M0(:,i), column 2 is N·(len ⊙ k2).
	ndk1, ndk2 := ss.ndk1, ss.ndk2
	for v := 0; v < n; v++ {
		ndk1[v] = M0.At(v, i)
		ss.y[v] = lens[v] * k2[v] // reuse y as the (len ⊙ k2) operand
	}
	N.MulVec(ss.y, ndk2)
	ga, gb := ss.ga, ss.gb
	for v := 0; v < n; v++ {
		ga[v] = ndk1[v]*si00 + ndk2[v]*si10
		gb[v] = ndk1[v]*si01 + ndk2[v]*si11
	}

	// Pointwise evaluators for the derived matrices.
	niAt := func(v, u int) float64 {
		return N.At(v, u) - k2a[v]*w1[u] - k2b[v]*w2[u]
	}
	miAt := func(v, j int) float64 {
		return M0.At(v, j) - k1[v]*tta[j] - k2[v]*ttb[j] - ga[v]*w1[j] - gb[v]*w2[j]
	}

	// j == i: first-return probability and distance.
	// h = Nᵢ·c'_i = k2 − K·S⁻¹·(W·c'_i).
	wc1, wc2 := 0.0, 0.0
	for e := pb; e < pe; e++ {
		u, p := int(sc.predU[e]), sc.predP[e]
		wc1 += p * w1[u]
		wc2 += p * w2[u]
	}
	q1 := si00*wc1 + si01*wc2
	q2 := si10*wc1 + si11*wc2
	h := ss.h
	for v := 0; v < n; v++ {
		h[v] = k2[v] - k1[v]*q1 - k2[v]*q2
	}
	// g° = Nᵢ·(len ⊙ h) with the taboo column zeroed.
	y := ss.y
	for u := 0; u < n; u++ {
		y[u] = lens[u] * h[u]
	}
	y[i] = 0
	N.MulVec(y, ss.gcirc) // N·y, corrected below
	wy1, wy2 := 0.0, 0.0
	for u := 0; u < n; u++ {
		wy1 += w1[u] * y[u]
		wy2 += w2[u] * y[u]
	}
	r1 := si00*wy1 + si01*wy2
	r2 := si10*wy1 + si11*wy2
	gcirc := ss.gcirc
	for v := 0; v < n; v++ {
		gcirc[v] -= k1[v]*r1 + k2[v]*r2
	}
	rpII := srcRow[i] // immediate self-loop: success, no intermediates
	numII := 0.0
	for e, v32 := range ss.srcIdx {
		v := int(v32)
		if v == i {
			continue
		}
		pv := ss.srcP[e]
		rpII += pv * h[v]
		numII += pv * gcirc[v]
	}
	probRow[i] = clamp01(rpII)
	// Same guard as the j != i pairs: a return probability at round-off
	// scale would make numII/rpII a noise ratio (and the two engines
	// disagree on noise), so such pairs report distance 0 like any other
	// unreachable pair.
	if rpII > 1e-12 {
		distRow[i] = lens[i] + numII/rpII
	}

	// j != i.
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		njj := niAt(j, j)
		if njj <= 0 {
			continue
		}
		invjj := 1 / njj
		lj := lens[j]
		// β = (q_jᵀ·x)/njj, q_j = row j of the taboo chain (col i zeroed),
		// x(v) = Mᵢ(v,j)/njj − Nᵢ(v,j)·len(j).
		beta := 0.0
		Pj := sc.P.Row(j)
		for v := 0; v < n; v++ {
			pv := Pj[v]
			if pv == 0 || v == i {
				continue
			}
			beta += pv * (miAt(v, j)*invjj - niAt(v, j)*lj)
		}
		beta *= invjj

		rp := 0.0
		num := 0.0
		for e, v32 := range ss.srcIdx {
			v := int(v32)
			if v == i {
				continue
			}
			pv := ss.srcP[e]
			if v == j {
				rp += pv // direct hit, no intermediates
				continue
			}
			nvj := niAt(v, j)
			rp += pv * nvj * invjj
			// g_j(v) = x(v) − Nᵢ(v,j)·β
			num += pv * (miAt(v, j)*invjj - nvj*lj - nvj*beta)
		}
		probRow[j] = clamp01(rp)
		if rp > 1e-12 {
			d := lens[i] + num/rp
			if d < lens[i] {
				d = lens[i]
			}
			distRow[j] = d
		}
	}
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
