// Package reach computes the paper's reaching-probability and expected-
// distance matrices over the pruned dynamic CFG (HPCA'02 §3.1).
//
// RP(i,j) is the probability that, after executing block i, block j is
// executed before i is executed again — the paper's constraint that the
// source and destination appear only as the first and last nodes of each
// control-flow sequence, with every other block free to repeat. D(i,j)
// is the expected number of instructions executed from the first
// instruction of i (inclusive) to the first instruction of j
// (exclusive), conditioned on reaching j.
//
// The computation is exact over the graph's Markov chain. For each
// source i the chain with transitions into i removed (taboo) has
// fundamental matrix N = (I-Q_i)⁻¹, and:
//
//	F(u,j) = N(u,j)/N(j,j)              first-passage u→j avoiding i
//	RP(i,j) = Σ_v P(i→v)·F(v,j)
//
// Conditional distances come from the same factorisation via a
// Sherman–Morrison reduction: with M = N·diag(len)·N,
//
//	g_j = M(:,j)/N(j,j) − N(:,j)·len(j) − N(:,j)·β_j
//
// accumulates the expected block lengths of intermediate nodes on
// successful paths, and D(i,j) = len(i) + Σ_v P(i→v)g_j(v) / RP(i,j).
// First-return pairs (i == j, the loop-iteration shape) use the hitting
// vector h = N·P(:,i) on the same factorisation.
package reach

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/linalg"
)

// Result holds the dense pairwise matrices over graph nodes.
type Result struct {
	G *cfg.Graph
	// Prob[i][j] is RP(i,j) in [0,1].
	Prob *linalg.Matrix
	// Dist[i][j] is D(i,j) in instructions (0 where Prob is 0).
	Dist *linalg.Matrix
}

// damping is applied on a retry if a taboo chain is numerically
// singular (a closed recurrent class with no leak, which cannot arise
// from a terminating profile except through float round-off).
const damping = 1e-9

// Compute evaluates the exact reaching-probability and distance
// matrices for every ordered node pair of g.
func Compute(g *cfg.Graph) (*Result, error) {
	n := len(g.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("reach: empty graph")
	}
	// Row-normalised transition probabilities. Rows are normalised by
	// the node execution count, so flow that leaves the pruned graph
	// (program exit or fully cold paths) appears as absorption.
	P := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cnt := g.Nodes[i].Count
		if cnt <= 0 {
			continue
		}
		row := P.Row(i)
		for _, e := range g.Succ[i] {
			row[e.To] += e.W / cnt
		}
		// Guard against round-off pushing a row above 1.
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum > 1 {
			for j := range row {
				row[j] /= sum
			}
		}
	}

	lens := make([]float64, n)
	for i := 0; i < n; i++ {
		lens[i] = float64(g.Nodes[i].Len)
	}

	res := &Result{G: g, Prob: linalg.NewMatrix(n, n), Dist: linalg.NewMatrix(n, n)}
	x := make([]float64, n)
	gv := make([]float64, n)
	h := make([]float64, n)
	gcirc := make([]float64, n)

	for i := 0; i < n; i++ {
		N, err := tabooFundamental(P, i, 1)
		if err != nil {
			if N, err = tabooFundamental(P, i, 1-damping); err != nil {
				return nil, fmt.Errorf("reach: source %d: %w", i, err)
			}
		}
		// M = N·diag(len)·N.
		ND := N.Clone()
		for r := 0; r < n; r++ {
			row := ND.Row(r)
			for c := 0; c < n; c++ {
				row[c] *= lens[c]
			}
		}
		M := linalg.Mul(ND, N)

		srcRow := P.Row(i)

		// j == i: first-return probability and distance.
		// h(v) = Pr_v(hit i before leaking) = (N·a)(v), a = P(:,i).
		for v := 0; v < n; v++ {
			s := 0.0
			Nrow := N.Row(v)
			for u := 0; u < n; u++ {
				if u == i {
					continue
				}
				s += Nrow[u] * P.At(u, i)
			}
			h[v] = s
		}
		// g°(v) = (N·(len ⊙ h))(v).
		for v := 0; v < n; v++ {
			s := 0.0
			Nrow := N.Row(v)
			for u := 0; u < n; u++ {
				if u == i {
					continue
				}
				s += Nrow[u] * lens[u] * h[u]
			}
			gcirc[v] = s
		}
		rpII := srcRow[i] // immediate self-loop: success, no intermediates
		numII := 0.0
		for v := 0; v < n; v++ {
			if v == i || srcRow[v] == 0 {
				continue
			}
			rpII += srcRow[v] * h[v]
			numII += srcRow[v] * gcirc[v]
		}
		res.Prob.Set(i, i, clamp01(rpII))
		if rpII > 0 {
			res.Dist.Set(i, i, lens[i]+numII/rpII)
		}

		// j != i.
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			njj := N.At(j, j)
			if njj <= 0 {
				continue
			}
			// x = M(:,j)/njj − N(:,j)·len(j)
			for v := 0; v < n; v++ {
				x[v] = M.At(v, j)/njj - N.At(v, j)*lens[j]
			}
			// β = (q_jᵀ·x)/njj, q_j = row j of taboo chain (col i zeroed).
			beta := 0.0
			Pj := P.Row(j)
			for v := 0; v < n; v++ {
				if v == i {
					continue
				}
				beta += Pj[v] * x[v]
			}
			beta /= njj
			for v := 0; v < n; v++ {
				gv[v] = x[v] - N.At(v, j)*beta
			}
			gv[j] = 0

			rp := 0.0
			num := 0.0
			for v := 0; v < n; v++ {
				pv := srcRow[v]
				if pv == 0 || v == i {
					continue
				}
				if v == j {
					rp += pv // direct hit, no intermediates
				} else {
					rp += pv * (N.At(v, j) / njj)
					num += pv * gv[v]
				}
			}
			res.Prob.Set(i, j, clamp01(rp))
			if rp > 1e-12 {
				d := lens[i] + num/rp
				if d < lens[i] {
					d = lens[i]
				}
				res.Dist.Set(i, j, d)
			}
		}
	}
	return res, nil
}

// tabooFundamental computes N = (I − s·Q_i)⁻¹ where Q_i is P with row i
// and column i zeroed.
func tabooFundamental(P *linalg.Matrix, i int, s float64) (*linalg.Matrix, error) {
	n := P.Rows
	A := linalg.NewMatrix(n, n)
	for r := 0; r < n; r++ {
		Arow := A.Row(r)
		Arow[r] = 1
		if r == i {
			continue
		}
		Prow := P.Row(r)
		for c := 0; c < n; c++ {
			if c == i {
				continue
			}
			Arow[c] -= s * Prow[c]
		}
	}
	return linalg.Invert(A)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
