package reach

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/linalg"
)

// ComputeDirect is the reference implementation: it LU-factorises a
// fresh taboo chain (I−Qᵢ) for every source node — O(n³) per node,
// O(n⁴) per CFG. Compute derives the same matrices from a single
// shared factorisation in O(n³) total; this path is kept as the
// numerical ground truth for the parity property tests, as the
// benchmark baseline, and as the fallback Compute uses when the base
// chain is singular or ill-conditioned.
func ComputeDirect(g *cfg.Graph) (*Result, error) {
	n := len(g.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("reach: empty graph")
	}
	ws := wsPool.Get().(*linalg.Workspace)
	P := buildChain(g, ws)
	lens := ws.Vec(n)
	for i := 0; i < n; i++ {
		lens[i] = float64(g.Nodes[i].Len)
	}
	res := &Result{G: g, Prob: linalg.NewMatrix(n, n), Dist: linalg.NewMatrix(n, n)}
	err := computeDirectInto(P, lens, res)
	ws.PutVec(lens)
	ws.PutMatrix(P)
	wsPool.Put(ws)
	return finish(res, err)
}

// computeDirectInto runs the per-source factorisation over every source.
func computeDirectInto(P *linalg.Matrix, lens []float64, res *Result) error {
	n := P.Rows
	for i := 0; i < n; i++ {
		if err := computeSourceDirect(P, lens, i, res.Prob.Row(i), res.Dist.Row(i)); err != nil {
			return fmt.Errorf("reach: source %d: %w", i, err)
		}
	}
	return nil
}

// computeSourceDirect fills rows i of the probability and distance
// matrices by factorising the taboo chain of source i from scratch.
func computeSourceDirect(P *linalg.Matrix, lens []float64, i int, probRow, distRow []float64) error {
	n := P.Rows
	N, err := tabooFundamental(P, i, 1)
	if err != nil {
		if N, err = tabooFundamental(P, i, 1-damping); err != nil {
			return err
		}
	}
	// M = N·diag(len)·N.
	ND := N.Clone()
	for r := 0; r < n; r++ {
		row := ND.Row(r)
		for c := 0; c < n; c++ {
			row[c] *= lens[c]
		}
	}
	M := linalg.Mul(ND, N)

	srcRow := P.Row(i)
	x := make([]float64, n)
	gv := make([]float64, n)
	h := make([]float64, n)
	gcirc := make([]float64, n)

	// j == i: first-return probability and distance.
	// h(v) = Pr_v(hit i before leaking) = (N·a)(v), a = P(:,i).
	for v := 0; v < n; v++ {
		s := 0.0
		Nrow := N.Row(v)
		for u := 0; u < n; u++ {
			if u == i {
				continue
			}
			s += Nrow[u] * P.At(u, i)
		}
		h[v] = s
	}
	// g°(v) = (N·(len ⊙ h))(v).
	for v := 0; v < n; v++ {
		s := 0.0
		Nrow := N.Row(v)
		for u := 0; u < n; u++ {
			if u == i {
				continue
			}
			s += Nrow[u] * lens[u] * h[u]
		}
		gcirc[v] = s
	}
	rpII := srcRow[i] // immediate self-loop: success, no intermediates
	numII := 0.0
	for v := 0; v < n; v++ {
		if v == i || srcRow[v] == 0 {
			continue
		}
		rpII += srcRow[v] * h[v]
		numII += srcRow[v] * gcirc[v]
	}
	probRow[i] = clamp01(rpII)
	// Matches the shared engine: distances are only defined where the
	// return probability is meaningfully above round-off.
	if rpII > 1e-12 {
		distRow[i] = lens[i] + numII/rpII
	}

	// j != i.
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		njj := N.At(j, j)
		if njj <= 0 {
			continue
		}
		// x = M(:,j)/njj − N(:,j)·len(j)
		for v := 0; v < n; v++ {
			x[v] = M.At(v, j)/njj - N.At(v, j)*lens[j]
		}
		// β = (q_jᵀ·x)/njj, q_j = row j of taboo chain (col i zeroed).
		beta := 0.0
		Pj := P.Row(j)
		for v := 0; v < n; v++ {
			if v == i {
				continue
			}
			beta += Pj[v] * x[v]
		}
		beta /= njj
		for v := 0; v < n; v++ {
			gv[v] = x[v] - N.At(v, j)*beta
		}
		gv[j] = 0

		rp := 0.0
		num := 0.0
		for v := 0; v < n; v++ {
			pv := srcRow[v]
			if pv == 0 || v == i {
				continue
			}
			if v == j {
				rp += pv // direct hit, no intermediates
			} else {
				rp += pv * (N.At(v, j) / njj)
				num += pv * gv[v]
			}
		}
		probRow[j] = clamp01(rp)
		if rp > 1e-12 {
			d := lens[i] + num/rp
			if d < lens[i] {
				d = lens[i]
			}
			distRow[j] = d
		}
	}
	return nil
}

// tabooFundamental computes N = (I − s·Q_i)⁻¹ where Q_i is P with row i
// and column i zeroed.
func tabooFundamental(P *linalg.Matrix, i int, s float64) (*linalg.Matrix, error) {
	n := P.Rows
	A := linalg.NewMatrix(n, n)
	for r := 0; r < n; r++ {
		Arow := A.Row(r)
		Arow[r] = 1
		if r == i {
			continue
		}
		Prow := P.Row(r)
		for c := 0; c < n; c++ {
			if c == i {
				continue
			}
			Arow[c] -= s * Prow[c]
		}
	}
	return linalg.Invert(A)
}
