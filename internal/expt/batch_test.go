package expt

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// TestSimBatchMatchesSequential: a batch must return exactly the
// results (the identical cached pointers) the equivalent sequence of
// Sim calls produces, in request order.
func TestSimBatchMatchesSequential(t *testing.T) {
	s, err := NewSuiteEngine(engine.New(engine.Options{Workers: 4}), workload.SizeTest, []string{"compress", "ijpeg"})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []SimReq
	for _, b := range s.Benches {
		reqs = append(reqs,
			SimReq{Bench: b, Spec: BaselineSpec()},
			SimReq{Bench: b, Spec: SimSpec{Policy: "profile", TUs: 16}},
			SimReq{Bench: b, Spec: SimSpec{Policy: "heuristics", TUs: 4}},
			// Duplicate spec: must dedup onto the same artifact.
			SimReq{Bench: b, Spec: SimSpec{Policy: "profile", TUs: 16}},
		)
	}
	batch, err := s.SimBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(batch), len(reqs))
	}
	for i, r := range reqs {
		seq, err := s.Sim(r.Bench, r.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != seq {
			t.Errorf("req %d: batch result pointer differs from sequential Sim", i)
		}
	}
	// The duplicated spec must resolve to the same artifact.
	if batch[1] != batch[3] {
		t.Error("duplicate specs in one batch returned distinct artifacts")
	}
}

// TestSimBatchUnknownPolicy surfaces spec errors before any work runs.
func TestSimBatchUnknownPolicy(t *testing.T) {
	s, err := NewSuite(workload.SizeTest, []string{"compress"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SimBatch([]SimReq{{Bench: s.Benches[0], Spec: SimSpec{Policy: "bogus", TUs: 1}}})
	if err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

// TestSimBatchEmpty returns immediately.
func TestSimBatchEmpty(t *testing.T) {
	s, err := NewSuite(workload.SizeTest, []string{"compress"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.SimBatch(nil)
	if err != nil || out != nil {
		t.Fatalf("empty batch = %v, %v; want nil, nil", out, err)
	}
}

// TestFigureRecordsSimLatency: running a figure through the batch layer
// must leave per-kind latency observations on the engine.
func TestFigureRecordsSimLatency(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	s, err := NewSuiteEngine(eng, workload.SizeTest, []string{"compress"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run("fig3"); err != nil {
		t.Fatal(err)
	}
	lat := eng.Stats().Latency
	for _, kind := range []string{"sim", "table", "reach", "emu"} {
		if lat[kind].Count == 0 {
			t.Errorf("no %q latency recorded: %v", kind, lat)
		}
	}
}
