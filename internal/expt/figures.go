package expt

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/stats"
)

// Runner produces one figure's table.
//
// Every runner declares its whole simulation grid up front and submits
// it through Suite.gridSims as a single engine dependency layer, so one
// figure saturates the worker pool (and dedups against warm artifacts)
// instead of issuing its simulations sequentially. Assembly from the
// positional results is then pure formatting, so a parallel run stays
// byte-identical to a serial one.
type Runner func(s *Suite) (*report.Table, error)

// figures maps figure IDs to runners. See DESIGN.md §4 for the index.
var figures = map[string]Runner{
	"fig2":   Fig2PairCounts,
	"fig3":   Fig3ProfileSpeedup,
	"fig4":   Fig4ActiveThreads,
	"fig5a":  Fig5aRemoval,
	"fig5b":  Fig5bOccurrences,
	"fig6":   Fig6Reassign,
	"fig7a":  Fig7aThreadSize,
	"fig7b":  Fig7bMinSize,
	"fig8":   Fig8VsHeuristics,
	"fig9a":  Fig9aVPAccuracy,
	"fig9b":  Fig9bStrideSpeedup,
	"fig10a": Fig10aCriteriaAccuracy,
	"fig10b": Fig10bCriteriaSpeedup,
	"fig11":  Fig11Overhead,
	"fig12":  Fig12FourTU,
}

// Run executes the runner for a figure ID.
func (s *Suite) Run(id string) (*report.Table, error) {
	r, ok := figures[id]
	if !ok {
		return nil, fmt.Errorf("expt: unknown figure %q (have %v)", id, FigureIDs())
	}
	return r(s)
}

// removalFor returns the per-benchmark alone-cycle removal threshold the
// paper settles on: 50 cycles, except compress where aggressive removal
// collapses its small pair set and 200 is used (§4.2, Figure 6).
func removalFor(name string) int64 {
	if name == "compress" {
		return 200
	}
	return 50
}

// speedups divides the baseline cycle count (results column base) by
// each of the given result columns.
func speedup(base *cluster.Result, r *cluster.Result) float64 {
	return stats.Speedup(base.Cycles, r.Cycles)
}

// Fig2PairCounts reproduces Figure 2: candidate spawning pairs passing
// the thresholds vs selected pairs (distinct spawning points).
func Fig2PairCounts(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 2: candidate pairs vs selected pairs (min prob 0.95, min distance 32)",
		Columns: []string{"benchmark", "total-pairs", "selected", "return-pairs", "cfg-nodes", "coverage"},
	}
	// No simulations here, but the per-benchmark table builds are still
	// submitted as one engine layer.
	jobs := make([]engine.Job, len(s.Benches))
	for i, b := range s.Benches {
		jobs[i] = b.profileTableJob(core.MaxDistance)
	}
	vals, err := s.execLayer(jobs)
	if err != nil {
		return nil, err
	}
	var totals, selected float64
	for i, b := range s.Benches {
		tab := vals[i].(*core.Table)
		returns := 0
		for _, p := range tab.Primary {
			if p.Kind == core.KindReturn {
				returns++
			}
		}
		t.AddRow(b.Name, report.FmtInt(int64(tab.TotalCandidates)), report.FmtInt(int64(tab.Len())),
			report.FmtInt(int64(returns)), report.FmtInt(int64(len(b.Graph.Nodes))), report.FmtPct(b.Graph.Coverage))
		totals += float64(tab.TotalCandidates)
		selected += float64(tab.Len())
	}
	n := float64(len(s.Benches))
	t.AddRow("Amean", report.Fmt(totals/n), report.Fmt(selected/n), "", "", "")
	t.Note = "paper: avg 6218 total / 499 selected on full SpecInt95; shape target = total >> selected, gcc largest, compress smallest"
	return t, nil
}

// Fig3ProfileSpeedup reproduces Figure 3: 16-TU speed-up over a single
// thread, profile policy, perfect value prediction.
func Fig3ProfileSpeedup(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 3: speed-up, 16 TUs, profile-based pairs, perfect value prediction",
		Columns: []string{"benchmark", "base-cycles", "smt-cycles", "speed-up"},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		return []SimSpec{BaselineSpec(), {Policy: "profile", TUs: 16}}
	})
	if err != nil {
		return nil, err
	}
	var sp []float64
	for bi, b := range s.Benches {
		base, r := res[bi][0], res[bi][1]
		v := speedup(base, r)
		sp = append(sp, v)
		t.AddRow(b.Name, report.FmtInt(base.Cycles), report.FmtInt(r.Cycles), report.Fmt(v))
	}
	t.AddRow("Hmean", "", "", report.Fmt(stats.HarmonicMean(sp)))
	t.Note = "paper: hmean 7.2, ijpeg highest (11.9)"
	return t, nil
}

// Fig4ActiveThreads reproduces Figure 4: average number of active
// threads for the Figure 3 configuration.
func Fig4ActiveThreads(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 4: average active threads, 16 TUs, profile pairs, perfect prediction",
		Columns: []string{"benchmark", "active-threads", "allocated-threads"},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		return []SimSpec{{Policy: "profile", TUs: 16}}
	})
	if err != nil {
		return nil, err
	}
	var act []float64
	for bi, b := range s.Benches {
		r := res[bi][0]
		act = append(act, r.AvgActiveThreads)
		t.AddRow(b.Name, report.Fmt(r.AvgActiveThreads), report.Fmt(r.AvgAllocatedThreads))
	}
	t.AddRow("Amean", report.Fmt(stats.ArithmeticMean(act)), "")
	t.Note = "paper: amean 7.5, ijpeg 9.0"
	return t, nil
}

// Fig5aRemoval reproduces Figure 5a: spawning-pair removal after
// executing alone for 0 (never) / 50 / 200 cycles.
func Fig5aRemoval(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 5a: speed-up under spawning-pair removal (alone-cycle thresholds)",
		Columns: []string{"benchmark", "no-removal", "removal-50", "removal-200"},
	}
	removals := []int64{0, 50, 200}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		specs := []SimSpec{BaselineSpec()}
		for _, rm := range removals {
			specs = append(specs, SimSpec{Policy: "profile", TUs: 16, Removal: rm})
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	means := make([][]float64, len(removals))
	for bi, b := range s.Benches {
		base := res[bi][0]
		row := []string{b.Name}
		for ri := range removals {
			v := speedup(base, res[bi][1+ri])
			row = append(row, report.Fmt(v))
			means[ri] = append(means[ri], v)
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(means[0])), report.Fmt(stats.HarmonicMean(means[1])), report.Fmt(stats.HarmonicMean(means[2])))
	t.Note = "paper: 200-cycle removal ~10% over no removal; compress drops sharply at 50"
	return t, nil
}

// Fig5bOccurrences reproduces Figure 5b: delaying 50-cycle removal until
// the alone condition has occurred 1 / 8 / 16 times.
func Fig5bOccurrences(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 5b: 50-cycle removal delayed by occurrence count",
		Columns: []string{"benchmark", "1-occurrence", "8-occurrences", "16-occurrences"},
	}
	occurs := []int{1, 8, 16}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		specs := []SimSpec{BaselineSpec()}
		for _, oc := range occurs {
			specs = append(specs, SimSpec{Policy: "profile", TUs: 16, Removal: 50, Occur: oc})
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	means := make([][]float64, len(occurs))
	for bi, b := range s.Benches {
		base := res[bi][0]
		row := []string{b.Name}
		for oi := range occurs {
			v := speedup(base, res[bi][1+oi])
			row = append(row, report.Fmt(v))
			means[oi] = append(means[oi], v)
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(means[0])), report.Fmt(stats.HarmonicMean(means[1])), report.Fmt(stats.HarmonicMean(means[2])))
	t.Note = "paper: delay helps mainly compress; others lose slightly"
	return t, nil
}

// Fig6Reassign reproduces Figure 6: reassign policy vs plain removal.
func Fig6Reassign(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 6: reassign policy vs removal (50 cycles; compress 200)",
		Columns: []string{"benchmark", "removal", "reassign"},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		rm := removalFor(b.Name)
		return []SimSpec{
			BaselineSpec(),
			{Policy: "profile", TUs: 16, Removal: rm},
			{Policy: "profile", TUs: 16, Removal: rm, Reassign: true},
		}
	})
	if err != nil {
		return nil, err
	}
	var vr, va []float64
	for bi, b := range s.Benches {
		base := res[bi][0]
		s1, s2 := speedup(base, res[bi][1]), speedup(base, res[bi][2])
		vr = append(vr, s1)
		va = append(va, s2)
		t.AddRow(b.Name, report.Fmt(s1), report.Fmt(s2))
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(vr)), report.Fmt(stats.HarmonicMean(va)))
	t.Note = "paper: reassign is slightly worse (it creates small threads)"
	return t, nil
}

// Fig7aThreadSize reproduces Figure 7a: average committed speculative
// thread size under the removal policy.
func Fig7aThreadSize(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 7a: average thread size (instructions), removal policy, no reassign",
		Columns: []string{"benchmark", "avg-thread-size", "threads-committed"},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		return []SimSpec{{Policy: "profile", TUs: 16, Removal: removalFor(b.Name)}}
	})
	if err != nil {
		return nil, err
	}
	var sizes []float64
	for bi, b := range s.Benches {
		r := res[bi][0]
		sizes = append(sizes, r.AvgThreadSize)
		t.AddRow(b.Name, report.Fmt(r.AvgThreadSize), report.FmtInt(r.ThreadsCommitted))
	}
	t.AddRow("Amean", report.Fmt(stats.ArithmeticMean(sizes)), "")
	t.Note = "paper: most benchmarks below 32 due to overlapped spawns truncating threads"
	return t, nil
}

// Fig7bMinSize reproduces Figure 7b: enforcing a 32-instruction minimum
// thread size.
func Fig7bMinSize(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 7b: enforcing minimum thread size 32 (removal 50; compress 200)",
		Columns: []string{"benchmark", "no-minimum", "minimum-32"},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		rm := removalFor(b.Name)
		return []SimSpec{
			BaselineSpec(),
			{Policy: "profile", TUs: 16, Removal: rm},
			{Policy: "profile", TUs: 16, Removal: rm, MinSize: 32},
		}
	})
	if err != nil {
		return nil, err
	}
	var v0, v32 []float64
	for bi, b := range s.Benches {
		base := res[bi][0]
		s1, s2 := speedup(base, res[bi][1]), speedup(base, res[bi][2])
		v0 = append(v0, s1)
		v32 = append(v32, s2)
		t.AddRow(b.Name, report.Fmt(s1), report.Fmt(s2))
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(v0)), report.Fmt(stats.HarmonicMean(v32)))
	t.Note = "paper: ~10% over the plain removal policy"
	return t, nil
}

// Fig8VsHeuristics reproduces Figure 8: profile-based speed-up over the
// combined traditional heuristics (perfect prediction, 16 TUs).
func Fig8VsHeuristics(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 8: profile-based vs combined heuristics (16 TUs, perfect prediction)",
		Columns: []string{"benchmark", "profile", "heuristics", "ratio"},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		return []SimSpec{
			BaselineSpec(),
			{Policy: "profile", TUs: 16},
			{Policy: "heuristics", TUs: 16},
		}
	})
	if err != nil {
		return nil, err
	}
	var vp, vh []float64
	for bi, b := range s.Benches {
		base := res[bi][0]
		sp, sh := speedup(base, res[bi][1]), speedup(base, res[bi][2])
		vp = append(vp, sp)
		vh = append(vh, sh)
		t.AddRow(b.Name, report.Fmt(sp), report.Fmt(sh), report.Fmt(stats.Ratio(sp, sh)))
	}
	hp, hh := stats.HarmonicMean(vp), stats.HarmonicMean(vh)
	t.AddRow("Hmean", report.Fmt(hp), report.Fmt(hh), report.Fmt(stats.Ratio(hp, hh)))
	t.Note = "paper: profile wins by ~20% on average; perl slightly loses"
	return t, nil
}

// Fig9aVPAccuracy reproduces Figure 9a: live-in value prediction
// accuracy for stride and context predictors under both policies.
func Fig9aVPAccuracy(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 9a: live-in value prediction accuracy (16KB predictors)",
		Columns: []string{"benchmark", "stride+profile", "context+profile", "stride+heur", "context+heur"},
	}
	combos := []struct {
		pol  string
		pred cluster.PredictorKind
	}{
		{"profile", cluster.Stride}, {"profile", cluster.Context},
		{"heuristics", cluster.Stride}, {"heuristics", cluster.Context},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		specs := make([]SimSpec, len(combos))
		for i, c := range combos {
			specs[i] = SimSpec{Policy: c.pol, TUs: 16, Predictor: c.pred}
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	accs := make([][]float64, len(combos))
	for bi, b := range s.Benches {
		row := []string{b.Name}
		for ci := range combos {
			acc := res[bi][ci].VPAccuracy()
			row = append(row, report.FmtPct(acc))
			accs[ci] = append(accs[ci], acc)
		}
		t.AddRow(row...)
	}
	t.AddRow("Amean", report.FmtPct(stats.ArithmeticMean(accs[0])), report.FmtPct(stats.ArithmeticMean(accs[1])),
		report.FmtPct(stats.ArithmeticMean(accs[2])), report.FmtPct(stats.ArithmeticMean(accs[3])))
	t.Note = "paper: ~70% for all four combinations"
	return t, nil
}

// Fig9bStrideSpeedup reproduces Figure 9b: perfect vs stride prediction
// speed-ups for both policies.
func Fig9bStrideSpeedup(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 9b: speed-ups with perfect vs stride prediction (16 TUs)",
		Columns: []string{"benchmark", "perfect+profile", "stride+profile", "perfect+heur", "stride+heur"},
	}
	combos := []struct {
		pol  string
		pred cluster.PredictorKind
	}{
		{"profile", cluster.Perfect}, {"profile", cluster.Stride},
		{"heuristics", cluster.Perfect}, {"heuristics", cluster.Stride},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		specs := []SimSpec{BaselineSpec()}
		for _, c := range combos {
			specs = append(specs, SimSpec{Policy: c.pol, TUs: 16, Predictor: c.pred})
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, len(combos))
	for bi, b := range s.Benches {
		base := res[bi][0]
		row := []string{b.Name}
		for ci := range combos {
			v := speedup(base, res[bi][1+ci])
			row = append(row, report.Fmt(v))
			cols[ci] = append(cols[ci], v)
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(cols[0])), report.Fmt(stats.HarmonicMean(cols[1])),
		report.Fmt(stats.HarmonicMean(cols[2])), report.Fmt(stats.HarmonicMean(cols[3])))
	t.Note = "paper: stride keeps >6 (profile) vs ~5.5 (heuristics); both lose 25-34% vs perfect"
	return t, nil
}

// Fig10aCriteriaAccuracy reproduces Figure 10a: prediction accuracy when
// CQIPs are chosen by the independent / predictable criteria.
func Fig10aCriteriaAccuracy(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 10a: prediction accuracy for independent/predictable ordering criteria",
		Columns: []string{"benchmark", "stride+indep", "context+indep", "stride+pred", "context+pred"},
	}
	combos := []struct {
		pol  string
		pred cluster.PredictorKind
	}{
		{"profile-indep", cluster.Stride}, {"profile-indep", cluster.Context},
		{"profile-pred", cluster.Stride}, {"profile-pred", cluster.Context},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		specs := make([]SimSpec, len(combos))
		for i, c := range combos {
			specs[i] = SimSpec{Policy: c.pol, TUs: 16, Predictor: c.pred}
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	accs := make([][]float64, len(combos))
	for bi, b := range s.Benches {
		row := []string{b.Name}
		for ci := range combos {
			acc := res[bi][ci].VPAccuracy()
			row = append(row, report.FmtPct(acc))
			accs[ci] = append(accs[ci], acc)
		}
		t.AddRow(row...)
	}
	t.AddRow("Amean", report.FmtPct(stats.ArithmeticMean(accs[0])), report.FmtPct(stats.ArithmeticMean(accs[1])),
		report.FmtPct(stats.ArithmeticMean(accs[2])), report.FmtPct(stats.ArithmeticMean(accs[3])))
	t.Note = "paper: the predictable criterion reaches ~75%, best accuracy"
	return t, nil
}

// Fig10bCriteriaSpeedup reproduces Figure 10b: speed-ups of the
// independent and predictable criteria (stride predictor).
func Fig10bCriteriaSpeedup(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 10b: speed-up of independent/predictable criteria vs max-distance (stride)",
		Columns: []string{"benchmark", "max-distance", "independent", "predictable"},
	}
	policies := []string{"profile", "profile-indep", "profile-pred"}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		specs := []SimSpec{BaselineSpec()}
		for _, pol := range policies {
			specs = append(specs, SimSpec{Policy: pol, TUs: 16, Predictor: cluster.Stride})
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, len(policies))
	for bi, b := range s.Benches {
		base := res[bi][0]
		row := []string{b.Name}
		for pi := range policies {
			v := speedup(base, res[bi][1+pi])
			row = append(row, report.Fmt(v))
			cols[pi] = append(cols[pi], v)
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(cols[0])), report.Fmt(stats.HarmonicMean(cols[1])),
		report.Fmt(stats.HarmonicMean(cols[2])))
	t.Note = "paper: both alternatives ~35% below max-distance (smaller threads)"
	return t, nil
}

// Fig11Overhead reproduces Figure 11: slow-down from an 8-cycle thread
// initialisation overhead (stride predictor).
func Fig11Overhead(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 11: slow-down from 8-cycle spawn overhead (stride predictor)",
		Columns: []string{"benchmark", "profile", "heuristics"},
	}
	policies := []string{"profile", "heuristics"}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		var specs []SimSpec
		for _, pol := range policies {
			specs = append(specs,
				SimSpec{Policy: pol, TUs: 16, Predictor: cluster.Stride},
				SimSpec{Policy: pol, TUs: 16, Predictor: cluster.Stride, Overhead: 8})
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	var vp, vh []float64
	for bi, b := range s.Benches {
		row := []string{b.Name}
		for pi, pol := range policies {
			r0, r8 := res[bi][2*pi], res[bi][2*pi+1]
			// Slow-down: fraction of performance retained with overhead.
			v := float64(r0.Cycles) / float64(r8.Cycles)
			row = append(row, report.Fmt(v))
			if pol == "profile" {
				vp = append(vp, v)
			} else {
				vh = append(vh, v)
			}
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(vp)), report.Fmt(stats.HarmonicMean(vh)))
	t.Note = "paper: ~12% slow-down (value ~0.88) for both policies"
	return t, nil
}

// Fig12FourTU reproduces Figure 12: average speed-ups on a 4-TU
// processor for perfect, stride, and stride+overhead.
func Fig12FourTU(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 12: average speed-ups, 4 thread units",
		Columns: []string{"config", "profile", "heuristics"},
	}
	type cfgRow struct {
		name string
		pred cluster.PredictorKind
		ov   int64
	}
	rows := []cfgRow{
		{"perfect", cluster.Perfect, 0},
		{"stride", cluster.Stride, 0},
		{"stride+overhead", cluster.Stride, 8},
	}
	res, err := s.gridSims(func(b *Bench) []SimSpec {
		specs := []SimSpec{BaselineSpec()}
		for _, cr := range rows {
			specs = append(specs,
				SimSpec{Policy: "profile", TUs: 4, Predictor: cr.pred, Overhead: cr.ov},
				SimSpec{Policy: "heuristics", TUs: 4, Predictor: cr.pred, Overhead: cr.ov})
		}
		return specs
	})
	if err != nil {
		return nil, err
	}
	for ri, cr := range rows {
		var vp, vh []float64
		for bi := range s.Benches {
			base := res[bi][0]
			vp = append(vp, speedup(base, res[bi][1+2*ri]))
			vh = append(vh, speedup(base, res[bi][2+2*ri]))
		}
		t.AddRow(cr.name, report.Fmt(stats.HarmonicMean(vp)), report.Fmt(stats.HarmonicMean(vh)))
	}
	t.Note = "paper: perfect 2.75 / stride ~2 / stride+overhead ~1.9 (profile)"
	return t, nil
}
