package expt

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
)

// Runner produces one figure's table.
type Runner func(s *Suite) (*report.Table, error)

// figures maps figure IDs to runners. See DESIGN.md §4 for the index.
var figures = map[string]Runner{
	"fig2":   Fig2PairCounts,
	"fig3":   Fig3ProfileSpeedup,
	"fig4":   Fig4ActiveThreads,
	"fig5a":  Fig5aRemoval,
	"fig5b":  Fig5bOccurrences,
	"fig6":   Fig6Reassign,
	"fig7a":  Fig7aThreadSize,
	"fig7b":  Fig7bMinSize,
	"fig8":   Fig8VsHeuristics,
	"fig9a":  Fig9aVPAccuracy,
	"fig9b":  Fig9bStrideSpeedup,
	"fig10a": Fig10aCriteriaAccuracy,
	"fig10b": Fig10bCriteriaSpeedup,
	"fig11":  Fig11Overhead,
	"fig12":  Fig12FourTU,
}

// Run executes the runner for a figure ID.
func (s *Suite) Run(id string) (*report.Table, error) {
	r, ok := figures[id]
	if !ok {
		return nil, fmt.Errorf("expt: unknown figure %q (have %v)", id, FigureIDs())
	}
	return r(s)
}

// removalFor returns the per-benchmark alone-cycle removal threshold the
// paper settles on: 50 cycles, except compress where aggressive removal
// collapses its small pair set and 200 is used (§4.2, Figure 6).
func removalFor(name string) int64 {
	if name == "compress" {
		return 200
	}
	return 50
}

// Fig2PairCounts reproduces Figure 2: candidate spawning pairs passing
// the thresholds vs selected pairs (distinct spawning points).
func Fig2PairCounts(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 2: candidate pairs vs selected pairs (min prob 0.95, min distance 32)",
		Columns: []string{"benchmark", "total-pairs", "selected", "return-pairs", "cfg-nodes", "coverage"},
	}
	var totals, selected float64
	for _, b := range s.Benches {
		tab, err := b.ProfileTable(core.MaxDistance)
		if err != nil {
			return nil, err
		}
		returns := 0
		for _, p := range tab.Primary {
			if p.Kind == core.KindReturn {
				returns++
			}
		}
		t.AddRow(b.Name, report.FmtInt(int64(tab.TotalCandidates)), report.FmtInt(int64(tab.Len())),
			report.FmtInt(int64(returns)), report.FmtInt(int64(len(b.Graph.Nodes))), report.FmtPct(b.Graph.Coverage))
		totals += float64(tab.TotalCandidates)
		selected += float64(tab.Len())
	}
	n := float64(len(s.Benches))
	t.AddRow("Amean", report.Fmt(totals/n), report.Fmt(selected/n), "", "", "")
	t.Note = "paper: avg 6218 total / 499 selected on full SpecInt95; shape target = total >> selected, gcc largest, compress smallest"
	return t, nil
}

// Fig3ProfileSpeedup reproduces Figure 3: 16-TU speed-up over a single
// thread, profile policy, perfect value prediction.
func Fig3ProfileSpeedup(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 3: speed-up, 16 TUs, profile-based pairs, perfect value prediction",
		Columns: []string{"benchmark", "base-cycles", "smt-cycles", "speed-up"},
	}
	var sp []float64
	for _, b := range s.Benches {
		base, err := s.Baseline(b)
		if err != nil {
			return nil, err
		}
		r, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16})
		if err != nil {
			return nil, err
		}
		v := stats.Speedup(base, r.Cycles)
		sp = append(sp, v)
		t.AddRow(b.Name, report.FmtInt(base), report.FmtInt(r.Cycles), report.Fmt(v))
	}
	t.AddRow("Hmean", "", "", report.Fmt(stats.HarmonicMean(sp)))
	t.Note = "paper: hmean 7.2, ijpeg highest (11.9)"
	return t, nil
}

// Fig4ActiveThreads reproduces Figure 4: average number of active
// threads for the Figure 3 configuration.
func Fig4ActiveThreads(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 4: average active threads, 16 TUs, profile pairs, perfect prediction",
		Columns: []string{"benchmark", "active-threads", "allocated-threads"},
	}
	var act []float64
	for _, b := range s.Benches {
		r, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16})
		if err != nil {
			return nil, err
		}
		act = append(act, r.AvgActiveThreads)
		t.AddRow(b.Name, report.Fmt(r.AvgActiveThreads), report.Fmt(r.AvgAllocatedThreads))
	}
	t.AddRow("Amean", report.Fmt(stats.ArithmeticMean(act)), "")
	t.Note = "paper: amean 7.5, ijpeg 9.0"
	return t, nil
}

// Fig5aRemoval reproduces Figure 5a: spawning-pair removal after
// executing alone for 0 (never) / 50 / 200 cycles.
func Fig5aRemoval(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 5a: speed-up under spawning-pair removal (alone-cycle thresholds)",
		Columns: []string{"benchmark", "no-removal", "removal-50", "removal-200"},
	}
	var v0, v50, v200 []float64
	for _, b := range s.Benches {
		base, err := s.Baseline(b)
		if err != nil {
			return nil, err
		}
		row := []string{b.Name}
		for _, rm := range []int64{0, 50, 200} {
			r, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16, Removal: rm})
			if err != nil {
				return nil, err
			}
			v := stats.Speedup(base, r.Cycles)
			row = append(row, report.Fmt(v))
			switch rm {
			case 0:
				v0 = append(v0, v)
			case 50:
				v50 = append(v50, v)
			default:
				v200 = append(v200, v)
			}
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(v0)), report.Fmt(stats.HarmonicMean(v50)), report.Fmt(stats.HarmonicMean(v200)))
	t.Note = "paper: 200-cycle removal ~10% over no removal; compress drops sharply at 50"
	return t, nil
}

// Fig5bOccurrences reproduces Figure 5b: delaying 50-cycle removal until
// the alone condition has occurred 1 / 8 / 16 times.
func Fig5bOccurrences(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 5b: 50-cycle removal delayed by occurrence count",
		Columns: []string{"benchmark", "1-occurrence", "8-occurrences", "16-occurrences"},
	}
	means := map[int][]float64{}
	for _, b := range s.Benches {
		base, err := s.Baseline(b)
		if err != nil {
			return nil, err
		}
		row := []string{b.Name}
		for _, oc := range []int{1, 8, 16} {
			r, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16, Removal: 50, Occur: oc})
			if err != nil {
				return nil, err
			}
			v := stats.Speedup(base, r.Cycles)
			row = append(row, report.Fmt(v))
			means[oc] = append(means[oc], v)
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(means[1])), report.Fmt(stats.HarmonicMean(means[8])), report.Fmt(stats.HarmonicMean(means[16])))
	t.Note = "paper: delay helps mainly compress; others lose slightly"
	return t, nil
}

// Fig6Reassign reproduces Figure 6: reassign policy vs plain removal.
func Fig6Reassign(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 6: reassign policy vs removal (50 cycles; compress 200)",
		Columns: []string{"benchmark", "removal", "reassign"},
	}
	var vr, va []float64
	for _, b := range s.Benches {
		base, err := s.Baseline(b)
		if err != nil {
			return nil, err
		}
		rm := removalFor(b.Name)
		r1, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16, Removal: rm})
		if err != nil {
			return nil, err
		}
		r2, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16, Removal: rm, Reassign: true})
		if err != nil {
			return nil, err
		}
		s1, s2 := stats.Speedup(base, r1.Cycles), stats.Speedup(base, r2.Cycles)
		vr = append(vr, s1)
		va = append(va, s2)
		t.AddRow(b.Name, report.Fmt(s1), report.Fmt(s2))
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(vr)), report.Fmt(stats.HarmonicMean(va)))
	t.Note = "paper: reassign is slightly worse (it creates small threads)"
	return t, nil
}

// Fig7aThreadSize reproduces Figure 7a: average committed speculative
// thread size under the removal policy.
func Fig7aThreadSize(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 7a: average thread size (instructions), removal policy, no reassign",
		Columns: []string{"benchmark", "avg-thread-size", "threads-committed"},
	}
	var sizes []float64
	for _, b := range s.Benches {
		r, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16, Removal: removalFor(b.Name)})
		if err != nil {
			return nil, err
		}
		sizes = append(sizes, r.AvgThreadSize)
		t.AddRow(b.Name, report.Fmt(r.AvgThreadSize), report.FmtInt(r.ThreadsCommitted))
	}
	t.AddRow("Amean", report.Fmt(stats.ArithmeticMean(sizes)), "")
	t.Note = "paper: most benchmarks below 32 due to overlapped spawns truncating threads"
	return t, nil
}

// Fig7bMinSize reproduces Figure 7b: enforcing a 32-instruction minimum
// thread size.
func Fig7bMinSize(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 7b: enforcing minimum thread size 32 (removal 50; compress 200)",
		Columns: []string{"benchmark", "no-minimum", "minimum-32"},
	}
	var v0, v32 []float64
	for _, b := range s.Benches {
		base, err := s.Baseline(b)
		if err != nil {
			return nil, err
		}
		rm := removalFor(b.Name)
		r1, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16, Removal: rm})
		if err != nil {
			return nil, err
		}
		r2, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16, Removal: rm, MinSize: 32})
		if err != nil {
			return nil, err
		}
		s1, s2 := stats.Speedup(base, r1.Cycles), stats.Speedup(base, r2.Cycles)
		v0 = append(v0, s1)
		v32 = append(v32, s2)
		t.AddRow(b.Name, report.Fmt(s1), report.Fmt(s2))
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(v0)), report.Fmt(stats.HarmonicMean(v32)))
	t.Note = "paper: ~10% over the plain removal policy"
	return t, nil
}

// Fig8VsHeuristics reproduces Figure 8: profile-based speed-up over the
// combined traditional heuristics (perfect prediction, 16 TUs).
func Fig8VsHeuristics(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 8: profile-based vs combined heuristics (16 TUs, perfect prediction)",
		Columns: []string{"benchmark", "profile", "heuristics", "ratio"},
	}
	var vp, vh []float64
	for _, b := range s.Benches {
		base, err := s.Baseline(b)
		if err != nil {
			return nil, err
		}
		rp, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16})
		if err != nil {
			return nil, err
		}
		rh, err := s.Sim(b, SimSpec{Policy: "heuristics", TUs: 16})
		if err != nil {
			return nil, err
		}
		sp, sh := stats.Speedup(base, rp.Cycles), stats.Speedup(base, rh.Cycles)
		vp = append(vp, sp)
		vh = append(vh, sh)
		t.AddRow(b.Name, report.Fmt(sp), report.Fmt(sh), report.Fmt(stats.Ratio(sp, sh)))
	}
	hp, hh := stats.HarmonicMean(vp), stats.HarmonicMean(vh)
	t.AddRow("Hmean", report.Fmt(hp), report.Fmt(hh), report.Fmt(stats.Ratio(hp, hh)))
	t.Note = "paper: profile wins by ~20% on average; perl slightly loses"
	return t, nil
}

// Fig9aVPAccuracy reproduces Figure 9a: live-in value prediction
// accuracy for stride and context predictors under both policies.
func Fig9aVPAccuracy(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 9a: live-in value prediction accuracy (16KB predictors)",
		Columns: []string{"benchmark", "stride+profile", "context+profile", "stride+heur", "context+heur"},
	}
	accs := make(map[string][]float64)
	for _, b := range s.Benches {
		row := []string{b.Name}
		for _, c := range []struct {
			pol  string
			pred cluster.PredictorKind
			key  string
		}{
			{"profile", cluster.Stride, "sp"}, {"profile", cluster.Context, "cp"},
			{"heuristics", cluster.Stride, "sh"}, {"heuristics", cluster.Context, "ch"},
		} {
			r, err := s.Sim(b, SimSpec{Policy: c.pol, TUs: 16, Predictor: c.pred})
			if err != nil {
				return nil, err
			}
			row = append(row, report.FmtPct(r.VPAccuracy()))
			accs[c.key] = append(accs[c.key], r.VPAccuracy())
		}
		t.AddRow(row...)
	}
	t.AddRow("Amean", report.FmtPct(stats.ArithmeticMean(accs["sp"])), report.FmtPct(stats.ArithmeticMean(accs["cp"])),
		report.FmtPct(stats.ArithmeticMean(accs["sh"])), report.FmtPct(stats.ArithmeticMean(accs["ch"])))
	t.Note = "paper: ~70% for all four combinations"
	return t, nil
}

// Fig9bStrideSpeedup reproduces Figure 9b: perfect vs stride prediction
// speed-ups for both policies.
func Fig9bStrideSpeedup(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 9b: speed-ups with perfect vs stride prediction (16 TUs)",
		Columns: []string{"benchmark", "perfect+profile", "stride+profile", "perfect+heur", "stride+heur"},
	}
	cols := map[string][]float64{}
	for _, b := range s.Benches {
		base, err := s.Baseline(b)
		if err != nil {
			return nil, err
		}
		row := []string{b.Name}
		for _, c := range []struct {
			pol  string
			pred cluster.PredictorKind
			key  string
		}{
			{"profile", cluster.Perfect, "pp"}, {"profile", cluster.Stride, "sp"},
			{"heuristics", cluster.Perfect, "ph"}, {"heuristics", cluster.Stride, "sh"},
		} {
			r, err := s.Sim(b, SimSpec{Policy: c.pol, TUs: 16, Predictor: c.pred})
			if err != nil {
				return nil, err
			}
			v := stats.Speedup(base, r.Cycles)
			row = append(row, report.Fmt(v))
			cols[c.key] = append(cols[c.key], v)
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(cols["pp"])), report.Fmt(stats.HarmonicMean(cols["sp"])),
		report.Fmt(stats.HarmonicMean(cols["ph"])), report.Fmt(stats.HarmonicMean(cols["sh"])))
	t.Note = "paper: stride keeps >6 (profile) vs ~5.5 (heuristics); both lose 25-34% vs perfect"
	return t, nil
}

// Fig10aCriteriaAccuracy reproduces Figure 10a: prediction accuracy when
// CQIPs are chosen by the independent / predictable criteria.
func Fig10aCriteriaAccuracy(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 10a: prediction accuracy for independent/predictable ordering criteria",
		Columns: []string{"benchmark", "stride+indep", "context+indep", "stride+pred", "context+pred"},
	}
	accs := map[string][]float64{}
	for _, b := range s.Benches {
		row := []string{b.Name}
		for _, c := range []struct {
			pol  string
			pred cluster.PredictorKind
			key  string
		}{
			{"profile-indep", cluster.Stride, "si"}, {"profile-indep", cluster.Context, "ci"},
			{"profile-pred", cluster.Stride, "sp"}, {"profile-pred", cluster.Context, "cp"},
		} {
			r, err := s.Sim(b, SimSpec{Policy: c.pol, TUs: 16, Predictor: c.pred})
			if err != nil {
				return nil, err
			}
			row = append(row, report.FmtPct(r.VPAccuracy()))
			accs[c.key] = append(accs[c.key], r.VPAccuracy())
		}
		t.AddRow(row...)
	}
	t.AddRow("Amean", report.FmtPct(stats.ArithmeticMean(accs["si"])), report.FmtPct(stats.ArithmeticMean(accs["ci"])),
		report.FmtPct(stats.ArithmeticMean(accs["sp"])), report.FmtPct(stats.ArithmeticMean(accs["cp"])))
	t.Note = "paper: the predictable criterion reaches ~75%, best accuracy"
	return t, nil
}

// Fig10bCriteriaSpeedup reproduces Figure 10b: speed-ups of the
// independent and predictable criteria (stride predictor).
func Fig10bCriteriaSpeedup(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 10b: speed-up of independent/predictable criteria vs max-distance (stride)",
		Columns: []string{"benchmark", "max-distance", "independent", "predictable"},
	}
	cols := map[string][]float64{}
	for _, b := range s.Benches {
		base, err := s.Baseline(b)
		if err != nil {
			return nil, err
		}
		row := []string{b.Name}
		for _, c := range []struct{ pol, key string }{
			{"profile", "d"}, {"profile-indep", "i"}, {"profile-pred", "p"},
		} {
			r, err := s.Sim(b, SimSpec{Policy: c.pol, TUs: 16, Predictor: cluster.Stride})
			if err != nil {
				return nil, err
			}
			v := stats.Speedup(base, r.Cycles)
			row = append(row, report.Fmt(v))
			cols[c.key] = append(cols[c.key], v)
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(cols["d"])), report.Fmt(stats.HarmonicMean(cols["i"])),
		report.Fmt(stats.HarmonicMean(cols["p"])))
	t.Note = "paper: both alternatives ~35% below max-distance (smaller threads)"
	return t, nil
}

// Fig11Overhead reproduces Figure 11: slow-down from an 8-cycle thread
// initialisation overhead (stride predictor).
func Fig11Overhead(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 11: slow-down from 8-cycle spawn overhead (stride predictor)",
		Columns: []string{"benchmark", "profile", "heuristics"},
	}
	var vp, vh []float64
	for _, b := range s.Benches {
		row := []string{b.Name}
		for _, pol := range []string{"profile", "heuristics"} {
			r0, err := s.Sim(b, SimSpec{Policy: pol, TUs: 16, Predictor: cluster.Stride})
			if err != nil {
				return nil, err
			}
			r8, err := s.Sim(b, SimSpec{Policy: pol, TUs: 16, Predictor: cluster.Stride, Overhead: 8})
			if err != nil {
				return nil, err
			}
			// Slow-down: fraction of performance retained with overhead.
			v := float64(r0.Cycles) / float64(r8.Cycles)
			row = append(row, report.Fmt(v))
			if pol == "profile" {
				vp = append(vp, v)
			} else {
				vh = append(vh, v)
			}
		}
		t.AddRow(row...)
	}
	t.AddRow("Hmean", report.Fmt(stats.HarmonicMean(vp)), report.Fmt(stats.HarmonicMean(vh)))
	t.Note = "paper: ~12% slow-down (value ~0.88) for both policies"
	return t, nil
}

// Fig12FourTU reproduces Figure 12: average speed-ups on a 4-TU
// processor for perfect, stride, and stride+overhead.
func Fig12FourTU(s *Suite) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 12: average speed-ups, 4 thread units",
		Columns: []string{"config", "profile", "heuristics"},
	}
	type cfgRow struct {
		name string
		pred cluster.PredictorKind
		ov   int64
	}
	rows := []cfgRow{
		{"perfect", cluster.Perfect, 0},
		{"stride", cluster.Stride, 0},
		{"stride+overhead", cluster.Stride, 8},
	}
	for _, cr := range rows {
		var vp, vh []float64
		for _, b := range s.Benches {
			base, err := s.Baseline(b)
			if err != nil {
				return nil, err
			}
			rp, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 4, Predictor: cr.pred, Overhead: cr.ov})
			if err != nil {
				return nil, err
			}
			rh, err := s.Sim(b, SimSpec{Policy: "heuristics", TUs: 4, Predictor: cr.pred, Overhead: cr.ov})
			if err != nil {
				return nil, err
			}
			vp = append(vp, stats.Speedup(base, rp.Cycles))
			vh = append(vh, stats.Speedup(base, rh.Cycles))
		}
		t.AddRow(cr.name, report.Fmt(stats.HarmonicMean(vp)), report.Fmt(stats.HarmonicMean(vh)))
	}
	t.Note = "paper: perfect 2.75 / stride ~2 / stride+overhead ~1.9 (profile)"
	return t, nil
}
