package expt

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/workload"
)

// TestSchedDeterminismAcrossWorkerCounts pins the scheduler's
// reserve/commit contract end to end: a full figure sweep — engine
// dependency layers, reach's per-source fan-out, and the GEMM/LU tile
// fan-out all riding the same work-stealing pool — must render
// byte-identical output for every worker count, including one.
func TestSchedDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep at four worker counts")
	}
	names := []string{"compress"}
	var ref []byte
	for _, w := range []int{1, 2, 3, 8} {
		s, err := NewSuiteEngine(engine.New(engine.Options{Workers: w}), workload.SizeTest, names)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		out := renderAll(t, s)
		if ref == nil {
			ref = out
		} else if !bytes.Equal(out, ref) {
			t.Fatalf("w=%d: figure sweep diverged from w=1 output", w)
		}
	}
}

// TestNestedGroupStress drives the full nesting depth — batch → sims →
// reach → tiles — on a deliberately tiny pool, repeatedly, and pins
// zero result divergence against a serial engine. Two benches' whole
// pipelines are built inside the batch (nothing prewarmed), so sim
// tasks, reach source tasks, and tile tasks all contend for the same
// three workers while singleflight joins lend cores back and forth.
func TestNestedGroupStress(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated cold pipeline builds")
	}
	grid := func(s *Suite) []SimReq {
		var reqs []SimReq
		for _, b := range s.Benches {
			for _, tus := range []int{1, 4, 16} {
				reqs = append(reqs,
					SimReq{Bench: b, Spec: SimSpec{Policy: "profile", TUs: tus}},
					SimReq{Bench: b, Spec: SimSpec{Policy: "heuristics", TUs: tus}})
			}
		}
		return reqs
	}
	run := func(workers int) []string {
		s, err := NewSuiteEngine(engine.New(engine.Options{Workers: workers}), workload.SizeTest,
			[]string{"compress", "ijpeg"})
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		out, err := s.SimBatch(grid(s))
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		keys := make([]string, len(out))
		for i, r := range out {
			keys[i] = fmt.Sprintf("%+v", *r)
		}
		return keys
	}
	ref := run(1)
	for round := 0; round < 3; round++ {
		got := run(3)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("round %d, result %d diverged from serial:\nserial: %s\nw=3:    %s",
					round, i, ref[i], got[i])
			}
		}
	}
}

// TestGoroutineCountBoundedBySweep is the acceptance bound: goroutine
// count during a full sweep must be O(workers) — primaries plus a
// bounded set of Block substitutes — never O(workers × sources ×
// tiles) as the old pool-per-level design allowed.
func TestGoroutineCountBoundedBySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build and sweep")
	}
	const workers = 8
	before := runtime.NumGoroutine()
	var peak atomic.Int64
	sample := func() {
		n := int64(runtime.NumGoroutine())
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				return
			}
		}
	}
	// The cold build fans out bench pipelines → reach sources → tiles.
	eng := engine.New(engine.Options{Workers: workers})
	s, err := NewSuiteEngine(eng, workload.SizeTest, []string{"compress", "ijpeg"})
	if err != nil {
		t.Fatal(err)
	}
	sample()
	var reqs []SimReq
	for _, b := range s.Benches {
		for _, tus := range []int{1, 2, 4, 8, 16} {
			reqs = append(reqs, SimReq{Bench: b, Spec: SimSpec{Policy: "profile", TUs: tus}})
		}
	}
	if err := s.SimEach(context.Background(), reqs, func(int, *cluster.Result, error) { sample() }); err != nil {
		t.Fatal(err)
	}
	sample()
	// Budget: the 8 primaries, substitutes covering singleflight joins
	// (bounded by concurrent blocked joins, a small multiple of W, not
	// by sources × tiles), and slack for the runtime and harness. The
	// pool-per-level design this replaces held workers × reach_workers
	// × tile_workers goroutines — hundreds at GOMAXPROCS 8.
	limit := int64(before + workers + 8*workers + 16)
	if got := peak.Load(); got > limit {
		t.Fatalf("peak goroutines %d > limit %d (baseline %d, %d workers): fan-out is not O(workers)",
			got, limit, before, workers)
	}
}

// sweepGrid is the mixed /v1/batch-shaped workload the scheduler bench
// measures: every bench × policy × TU-count combination, so sim tasks,
// table builds, reach fan-outs, and GEMM tiles all land on the pool in
// one burst.
func sweepGrid(s *Suite) []SimReq {
	var reqs []SimReq
	for _, b := range s.Benches {
		for _, policy := range []string{"none", "profile", "heuristics"} {
			for _, tus := range []int{1, 2, 4, 8, 16} {
				reqs = append(reqs, SimReq{Bench: b, Spec: SimSpec{Policy: policy, TUs: tus}})
			}
		}
	}
	return reqs
}

// benchmarkSchedSweep measures one cold end-to-end sweep: pipeline
// build (emu → cfg → reach → tiles) plus the mixed sim grid, per
// iteration. reachPrivate > 0 reproduces the pool-per-level seed
// topology (engine pool + a private reach pool per in-flight reach
// job) at the same core budget — the baseline BENCH_sched.json's
// summary compares the unified scheduler against.
func benchmarkSchedSweep(b *testing.B, workers, reachPrivate int) {
	names := []string{"compress", "ijpeg", "li", "go"}
	for i := 0; i < b.N; i++ {
		// Collect the previous iteration's (and sub-benchmark's) engine
		// off the clock: each sweep allocates hundreds of MB, and
		// letting its collection land inside the next timed iteration
		// makes later sub-benchmarks read slower than earlier ones.
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
		eng := engine.New(engine.Options{Workers: workers})
		s := &Suite{Size: workload.SizeTest, eng: eng, ctx: context.Background(), reachWorkers: reachPrivate}
		benches := make([]*Bench, len(names))
		var failed atomic.Value
		eng.Sched().For("bench", len(names), func(i int) {
			v, err := eng.Exec(s.ctx, s.benchJob(names[i]))
			if err != nil {
				failed.Store(err)
				return
			}
			benches[i] = v.(*Bench)
		})
		if err := failed.Load(); err != nil {
			b.Fatal(err)
		}
		s.Benches = benches
		if _, err := s.SimBatch(sweepGrid(s)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedSweep(b *testing.B) {
	full := runtime.GOMAXPROCS(0)
	half := full / 2
	if half < 1 {
		half = 1
	}
	b.Run("unified/w=1", func(b *testing.B) { benchmarkSchedSweep(b, 1, 0) })
	b.Run("unified/w=half", func(b *testing.B) { benchmarkSchedSweep(b, half, 0) })
	b.Run("unified/w=full", func(b *testing.B) { benchmarkSchedSweep(b, full, 0) })
	b.Run("threepool/w=full", func(b *testing.B) { benchmarkSchedSweep(b, full, full) })
}
