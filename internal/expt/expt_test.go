package expt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// smallSuite builds a two-benchmark suite once for the package tests.
var testSuite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if testSuite == nil {
		s, err := NewSuite(workload.SizeTest, []string{"compress", "ijpeg"})
		if err != nil {
			t.Fatal(err)
		}
		testSuite = s
	}
	return testSuite
}

func TestFigureIDsCompleteAndOrdered(t *testing.T) {
	ids := FigureIDs()
	want := []string{"fig2", "fig3", "fig4", "fig5a", "fig5b", "fig6",
		"fig7a", "fig7b", "fig8", "fig9a", "fig9b", "fig10a", "fig10b", "fig11", "fig12"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestAllFiguresRender(t *testing.T) {
	s := getSuite(t)
	for _, id := range FigureIDs() {
		tab, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
		if !strings.Contains(buf.String(), "Figure") {
			t.Errorf("%s: missing title", id)
		}
		buf.Reset()
		if err := tab.RenderCSV(&buf); err != nil {
			t.Fatalf("%s csv: %v", id, err)
		}
	}
}

func TestUnknownFigureRejected(t *testing.T) {
	s := getSuite(t)
	if _, err := s.Run("fig99"); err == nil {
		t.Error("expected error for unknown figure")
	}
}

func TestSimCacheHits(t *testing.T) {
	s := getSuite(t)
	b := s.Bench("compress")
	if b == nil {
		t.Fatal("bench lookup failed")
	}
	r1, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical SimSpec did not hit the cache")
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	s := getSuite(t)
	if _, err := s.Sim(s.Benches[0], SimSpec{Policy: "wat", TUs: 4}); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func TestNamesAndBaseline(t *testing.T) {
	s := getSuite(t)
	names := s.Names()
	if len(names) != 2 || names[0] != "compress" || names[1] != "ijpeg" {
		t.Fatalf("names = %v", names)
	}
	base, err := s.Baseline(s.Benches[0])
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Errorf("baseline cycles = %d", base)
	}
	if s.Bench("nonesuch") != nil {
		t.Error("Bench(unknown) != nil")
	}
}

func TestProfileVsHeuristicsShape(t *testing.T) {
	// The headline result at full suite scale is checked in
	// EXPERIMENTS.md; at test scale we just require both policies to
	// produce real speed-ups on the regular benchmark.
	s := getSuite(t)
	b := s.Bench("ijpeg")
	base, err := s.Baseline(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"profile", "heuristics"} {
		r, err := s.Sim(b, SimSpec{Policy: pol, TUs: 16})
		if err != nil {
			t.Fatal(err)
		}
		if sp := float64(base) / float64(r.Cycles); sp < 2 {
			t.Errorf("%s speed-up %.2f < 2 on ijpeg", pol, sp)
		}
	}
}

func TestCriteriaTablesDiffer(t *testing.T) {
	s := getSuite(t)
	b := s.Bench("ijpeg")
	td, err := b.ProfileTable(0)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := b.ProfileTable(1)
	if err != nil {
		t.Fatal(err)
	}
	if td == ti {
		t.Error("criteria share a table instance")
	}
}

func TestRemovalForCompressException(t *testing.T) {
	if removalFor("compress") != 200 || removalFor("gcc") != 50 {
		t.Error("removal thresholds wrong")
	}
}

func TestPredictorsProduceAccuracy(t *testing.T) {
	s := getSuite(t)
	b := s.Bench("ijpeg")
	for _, pk := range []cluster.PredictorKind{cluster.Stride, cluster.Context} {
		r, err := s.Sim(b, SimSpec{Policy: "profile", TUs: 16, Predictor: pk})
		if err != nil {
			t.Fatal(err)
		}
		if r.VPLookups == 0 {
			t.Errorf("%v: no lookups", pk)
		}
		if a := r.VPAccuracy(); a < 0.2 || a > 1 {
			t.Errorf("%v accuracy %.2f implausible", pk, a)
		}
	}
}
