// Package expt reproduces the paper's evaluation: one runner per figure
// (Figures 2–12), sharing a per-benchmark pipeline cache (program →
// trace → profile → pruned CFG → reach matrices → spawn tables) and a
// simulation-result cache so figures that reuse configurations do not
// re-simulate.
package expt

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/heuristic"
	"repro/internal/reach"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Coverage and node cap for the pruned dynamic CFG (paper: 90%).
const (
	pruneCoverage = 0.90
	pruneMaxNodes = 256
)

// spawnWindowFactor is the expected-distance misspeculation window
// applied to profile-table pairs (see cluster.Config.SpawnWindowFactor
// and DESIGN.md §3.2). Construct pairs always use construct-level
// detection.
const spawnWindowFactor = 4

// Bench caches every pipeline artefact for one benchmark.
type Bench struct {
	Name    string
	Trace   *trace.Trace
	Profile *emu.Profile
	Graph   *cfg.Graph
	Reach   *reach.Result

	profTables map[core.Criterion]*core.Table
	heurTable  *core.Table
}

// Suite is the whole evaluation context.
type Suite struct {
	Size    workload.SizeClass
	Benches []*Bench

	simCache map[string]*cluster.Result
}

// NewSuite builds the pipeline for the given benchmarks (nil = the full
// SpecInt95-like suite) at the given size.
func NewSuite(size workload.SizeClass, names []string) (*Suite, error) {
	if names == nil {
		names = workload.Benchmarks
	}
	s := &Suite{Size: size, simCache: make(map[string]*cluster.Result)}
	for _, name := range names {
		b, err := buildBench(name, size)
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", name, err)
		}
		s.Benches = append(s.Benches, b)
	}
	return s, nil
}

func buildBench(name string, size workload.SizeClass) (*Bench, error) {
	prog, err := workload.Generate(name, size)
	if err != nil {
		return nil, err
	}
	res, err := emu.Run(prog, emu.Config{CollectTrace: true})
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(res.Profile).Prune(pruneCoverage, pruneMaxNodes)
	if err != nil {
		return nil, err
	}
	r, err := reach.Compute(g)
	if err != nil {
		return nil, err
	}
	res.Trace.BuildIndex()
	return &Bench{
		Name:       name,
		Trace:      res.Trace,
		Profile:    res.Profile,
		Graph:      g,
		Reach:      r,
		profTables: make(map[core.Criterion]*core.Table),
	}, nil
}

// ProfileTable returns (building on first use) the profile-based spawn
// table under the given ordering criterion.
func (b *Bench) ProfileTable(crit core.Criterion) (*core.Table, error) {
	if t, ok := b.profTables[crit]; ok {
		return t, nil
	}
	t, err := core.Select(b.Profile, b.Graph, b.Reach, b.Trace, core.Config{Criterion: crit})
	if err != nil {
		return nil, err
	}
	b.profTables[crit] = t
	return t, nil
}

// HeuristicTable returns (building on first use) the combined
// traditional-heuristics table.
func (b *Bench) HeuristicTable() *core.Table {
	if b.heurTable == nil {
		b.heurTable = heuristic.Pairs(b.Trace.Program, b.Profile, b.Trace, heuristic.Combined, heuristic.Config{})
	}
	return b.heurTable
}

// SimSpec names a simulation configuration for caching.
type SimSpec struct {
	Bench     string
	Policy    string // "none", "profile", "heuristics", "profile-indep", "profile-pred"
	TUs       int
	Predictor cluster.PredictorKind
	Overhead  int64
	Removal   int64
	Occur     int
	Reassign  bool
	MinSize   int
}

func (sp SimSpec) key() string {
	return fmt.Sprintf("%s/%s/tu%d/p%d/ov%d/rm%d/oc%d/ra%v/ms%d",
		sp.Bench, sp.Policy, sp.TUs, sp.Predictor, sp.Overhead, sp.Removal, sp.Occur, sp.Reassign, sp.MinSize)
}

// table resolves the policy name to a spawn table (nil for "none").
func (s *Suite) table(b *Bench, policy string) (*core.Table, error) {
	switch policy {
	case "none":
		return nil, nil
	case "profile":
		return b.ProfileTable(core.MaxDistance)
	case "profile-indep":
		return b.ProfileTable(core.MaxIndependent)
	case "profile-pred":
		return b.ProfileTable(core.MaxPredictable)
	case "heuristics":
		return b.HeuristicTable(), nil
	default:
		return nil, fmt.Errorf("expt: unknown policy %q", policy)
	}
}

// Sim runs (or fetches from cache) one simulation.
func (s *Suite) Sim(b *Bench, sp SimSpec) (*cluster.Result, error) {
	sp.Bench = b.Name
	key := sp.key()
	if r, ok := s.simCache[key]; ok {
		return r, nil
	}
	tab, err := s.table(b, sp.Policy)
	if err != nil {
		return nil, err
	}
	cfgSim := cluster.Config{
		TUs:                sp.TUs,
		Pairs:              tab,
		Predictor:          sp.Predictor,
		SpawnOverhead:      sp.Overhead,
		RemovalCycles:      sp.Removal,
		RemovalOccurrences: sp.Occur,
		Reassign:           sp.Reassign,
		MinThreadSize:      sp.MinSize,
		SpawnWindowFactor:  spawnWindowFactor,
	}
	r, err := cluster.Simulate(b.Trace, cfgSim)
	if err != nil {
		return nil, fmt.Errorf("expt: %s: %w", key, err)
	}
	s.simCache[key] = r
	return r, nil
}

// Baseline returns the single-threaded cycle count for a benchmark.
func (s *Suite) Baseline(b *Bench) (int64, error) {
	r, err := s.Sim(b, SimSpec{Policy: "none", TUs: 1})
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}

// Bench returns the named benchmark from the suite, or nil.
func (s *Suite) Bench(name string) *Bench {
	for _, b := range s.Benches {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names returns the suite's benchmark names in order.
func (s *Suite) Names() []string {
	names := make([]string, len(s.Benches))
	for i, b := range s.Benches {
		names[i] = b.Name
	}
	return names
}

// FigureIDs lists every reproducible figure in paper order.
func FigureIDs() []string {
	ids := make([]string, 0, len(figures))
	for id := range figures {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		na, nb := figOrder(ids[a]), figOrder(ids[b])
		if na != nb {
			return na < nb
		}
		return ids[a] < ids[b]
	})
	return ids
}

func figOrder(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}
