// Package expt reproduces the paper's evaluation: one runner per figure
// (Figures 2–12). All pipeline artefacts — program → trace → profile →
// pruned CFG → reach matrices → spawn tables → simulation results — are
// produced as keyed jobs on a shared engine.Engine, so suites built over
// the same engine deduplicate work across benchmarks, figures, and
// concurrent server requests, and a multi-worker run is bit-identical
// to a serial one.
package expt

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/engine"
	"repro/internal/heuristic"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Coverage and node cap for the pruned dynamic CFG (paper: 90%).
const (
	pruneCoverage = 0.90
	pruneMaxNodes = 256
)

// spawnWindowFactor is the expected-distance misspeculation window
// applied to profile-table pairs (see cluster.Config.SpawnWindowFactor
// and DESIGN.md §3.2). Construct pairs always use construct-level
// detection.
const spawnWindowFactor = 4

// pipeHash fingerprints the fixed pipeline configuration so artifact
// keys change if these constants do (content-keyed caching).
var pipeHash = engine.KeyHash("coverage", pruneCoverage, "maxnodes", pruneMaxNodes, "window", spawnWindowFactor)

// BenchKey returns the engine artifact key of the composite bench job
// for one benchmark — the routing key a shard cluster hashes to place
// /v1/analyze- and /v1/pairs-style work. It is computable without
// building any artifact.
func BenchKey(name string, size workload.SizeClass) string {
	return "bench/" + name + "/" + size.String() + "/" + pipeHash
}

// profileTableKey is the artifact key of a profile-based spawn table.
func profileTableKey(name string, size workload.SizeClass, crit core.Criterion) string {
	return fmt.Sprintf("table/%s/%s/%s/%v", name, size, pipeHash, crit)
}

// heuristicTableKey is the artifact key of the combined-heuristics
// spawn table.
func heuristicTableKey(name string, size workload.SizeClass) string {
	return fmt.Sprintf("heur/%s/%s/%s", name, size, pipeHash)
}

// TableKey returns the artifact key of the spawn table the policy
// selects for one benchmark (the /v1/pairs routing key). Policy "none"
// builds no table and returns ""; an unknown policy errors.
func TableKey(name string, size workload.SizeClass, policy string) (string, error) {
	switch policy {
	case "none":
		return "", nil
	case "profile":
		return profileTableKey(name, size, core.MaxDistance), nil
	case "profile-indep":
		return profileTableKey(name, size, core.MaxIndependent), nil
	case "profile-pred":
		return profileTableKey(name, size, core.MaxPredictable), nil
	case "heuristics":
		return heuristicTableKey(name, size), nil
	default:
		return "", fmt.Errorf("expt: unknown policy %q", policy)
	}
}

// SimKey returns the artifact key of one simulation (sp.Bench must be
// set) — the per-spec routing key for /v1/simulate and /v1/batch.
func SimKey(size workload.SizeClass, sp SimSpec) string {
	return fmt.Sprintf("sim/%s/%s/%s", size, pipeHash, sp.key())
}

// Bench caches every pipeline artefact for one benchmark. Spawn tables
// and simulation results are memoized on the suite's engine, so a
// Bench is safe to share across goroutines.
type Bench struct {
	Name    string
	Trace   *trace.Trace
	Profile *emu.Profile
	Graph   *cfg.Graph
	Reach   *reach.Result

	size workload.SizeClass
	eng  *engine.Engine
}

// ApproxBytes reports the artifacts a resident Bench pins for engine
// cache accounting. The same artifacts are charged to their own
// pipeline-stage cache entries too: the cache deliberately over- rather
// than under-counts shared references, because a resident Bench keeps
// them alive no matter what happens to the stage entries.
func (b *Bench) ApproxBytes() int64 {
	var n int64 = 128
	if b.Trace != nil {
		n += b.Trace.ApproxBytes()
	}
	if b.Profile != nil {
		n += b.Profile.ApproxBytes()
	}
	if b.Graph != nil {
		n += b.Graph.ApproxBytes()
	}
	if b.Reach != nil {
		n += b.Reach.ApproxBytes()
	}
	return n
}

// Suite is the whole evaluation context. A Suite is a view over its
// engine's artifact cache: two suites sharing an engine share every
// artefact, and constructing a second suite over warm artifacts is
// nearly free.
type Suite struct {
	Size    workload.SizeClass
	Benches []*Bench

	eng *engine.Engine
	// ctx is the context every engine submission runs under. A suite is
	// a request-lifetime view (the server builds one per request), so
	// carrying the request's context here is what lets cancellation and
	// trace identity reach the engine's spans.
	ctx context.Context
	// reachWorkers, when non-zero, routes reach jobs through a private
	// pool of that size instead of the engine's scheduler — the
	// pool-per-level topology the unified scheduler replaced. It exists
	// solely so BenchmarkSchedSweep can measure that baseline; nothing
	// sets it in production.
	reachWorkers int
}

// NewSuite builds the pipeline for the given benchmarks (nil = the full
// SpecInt95-like suite) at the given size, serially on a private
// single-worker engine — the deterministic baseline the parallel path
// is tested against.
func NewSuite(size workload.SizeClass, names []string) (*Suite, error) {
	return NewSuiteEngine(engine.New(engine.Options{Workers: 1}), size, names)
}

// NewSuiteEngine builds the pipeline on the given engine, constructing
// the per-benchmark artefact chains concurrently up to the engine's
// worker bound. A nil engine selects a GOMAXPROCS-sized one.
func NewSuiteEngine(eng *engine.Engine, size workload.SizeClass, names []string) (*Suite, error) {
	return NewSuiteEngineCtx(context.Background(), eng, size, names)
}

// NewSuiteEngineCtx is NewSuiteEngine under a caller context: every
// engine submission the suite makes — construction here and later
// Table/Sim/figure work — runs under ctx, so cancelling it abandons
// the work and any trace it carries extends into the engine.
func NewSuiteEngineCtx(ctx context.Context, eng *engine.Engine, size workload.SizeClass, names []string) (*Suite, error) {
	if eng == nil {
		eng = engine.New(engine.Options{})
	}
	if names == nil {
		names = workload.Benchmarks
	}
	s := &Suite{Size: size, eng: eng, ctx: ctx}
	benches := make([]*Bench, len(names))
	errs := make([]error, len(names))
	eng.Sched().For("bench", len(names), func(i int) {
		v, err := eng.Exec(ctx, s.benchJob(names[i]))
		if err != nil {
			errs[i] = fmt.Errorf("expt: %s: %w", names[i], err)
		} else {
			benches[i] = v.(*Bench)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.Benches = benches
	return s, nil
}

// Engine returns the engine the suite's artefacts live on.
func (s *Suite) Engine() *engine.Engine { return s.eng }

// benchJob builds the four-stage artefact chain for one benchmark:
// generate → emulate (trace+profile) → prune CFG → reach matrices.
// Every stage is a pure function of its inputs, keyed by benchmark,
// size class, and pipeline-config hash.
func (s *Suite) benchJob(name string) engine.Job {
	stem := name + "/" + s.Size.String()
	progJob := engine.Job{
		Key: "program/" + stem,
		Run: func(ctx context.Context, deps []any) (any, error) {
			return workload.Generate(name, s.Size)
		},
	}
	emuJob := engine.Job{
		Key:  "emu/" + stem,
		Deps: []engine.Job{progJob},
		Run: func(ctx context.Context, deps []any) (any, error) {
			res, err := emu.Run(deps[0].(*isa.Program), emu.Config{CollectTrace: true})
			if err != nil {
				return nil, err
			}
			// Index before publishing: every later consumer reads the
			// index concurrently.
			res.Trace.BuildIndex()
			return res, nil
		},
	}
	cfgJob := engine.Job{
		Key:  "cfg/" + stem + "/" + pipeHash,
		Deps: []engine.Job{emuJob},
		Run: func(ctx context.Context, deps []any) (any, error) {
			return cfg.Build(deps[0].(*emu.Result).Profile).Prune(pruneCoverage, pruneMaxNodes)
		},
	}
	reachJob := engine.Job{
		Key:  "reach/" + stem + "/" + pipeHash,
		Deps: []engine.Job{cfgJob},
		Run: func(ctx context.Context, deps []any) (any, error) {
			// The per-source fan-out forks into the engine's own
			// scheduler: when other benchmarks keep the workers busy the
			// group runs on the worker it started on (no oversubscription),
			// and when this job is the only work the idle workers steal
			// its sources. Output is identical for every worker count.
			ro := reach.Options{Sched: s.eng.Sched()}
			if s.reachWorkers > 0 {
				// Benchmark-only baseline: the seed's private pool.
				ro = reach.Options{Workers: s.reachWorkers}
			}
			return reach.ComputeOpts(deps[0].(*cfg.Graph), ro)
		},
	}
	return engine.Job{
		Key:  BenchKey(name, s.Size),
		Deps: []engine.Job{emuJob, cfgJob, reachJob},
		Run: func(ctx context.Context, deps []any) (any, error) {
			res := deps[0].(*emu.Result)
			return &Bench{
				Name:    name,
				Trace:   res.Trace,
				Profile: res.Profile,
				Graph:   deps[1].(*cfg.Graph),
				Reach:   deps[2].(*reach.Result),
				size:    s.Size,
				eng:     s.eng,
			}, nil
		},
	}
}

// profileTableJob is the keyed engine job building b's profile-based
// spawn table under the given ordering criterion.
func (b *Bench) profileTableJob(crit core.Criterion) engine.Job {
	return engine.Job{
		Key: profileTableKey(b.Name, b.size, crit),
		Run: func(ctx context.Context, deps []any) (any, error) {
			return core.Select(b.Profile, b.Graph, b.Reach, b.Trace, core.Config{Criterion: crit})
		},
	}
}

// heuristicTableJob is the keyed engine job building b's combined
// traditional-heuristics table.
func (b *Bench) heuristicTableJob() engine.Job {
	return engine.Job{
		Key: heuristicTableKey(b.Name, b.size),
		Run: func(ctx context.Context, deps []any) (any, error) {
			return heuristic.Pairs(b.Trace.Program, b.Profile, b.Trace, heuristic.Combined, heuristic.Config{}), nil
		},
	}
}

// tableJob resolves a policy name to the job producing its spawn table.
// For "none" the job yields a nil table (simulate single-threaded).
func (b *Bench) tableJob(policy string) (engine.Job, error) {
	switch policy {
	case "none":
		return engine.Job{
			Run: func(ctx context.Context, deps []any) (any, error) { return (*core.Table)(nil), nil },
		}, nil
	case "profile":
		return b.profileTableJob(core.MaxDistance), nil
	case "profile-indep":
		return b.profileTableJob(core.MaxIndependent), nil
	case "profile-pred":
		return b.profileTableJob(core.MaxPredictable), nil
	case "heuristics":
		return b.heuristicTableJob(), nil
	default:
		return engine.Job{}, fmt.Errorf("expt: unknown policy %q", policy)
	}
}

// ProfileTable returns (building through the engine on first use) the
// profile-based spawn table under the given ordering criterion.
func (b *Bench) ProfileTable(crit core.Criterion) (*core.Table, error) {
	v, err := b.eng.Exec(context.Background(), b.profileTableJob(crit))
	if err != nil {
		return nil, err
	}
	return v.(*core.Table), nil
}

// HeuristicTable returns (building through the engine on first use) the
// combined traditional-heuristics table.
func (b *Bench) HeuristicTable() *core.Table {
	v, err := b.eng.Exec(context.Background(), b.heuristicTableJob())
	if err != nil {
		// Background context and an error-free builder: unreachable.
		panic(err)
	}
	return v.(*core.Table)
}

// SimSpec names a simulation configuration for caching.
type SimSpec struct {
	Bench     string
	Policy    string // "none", "profile", "heuristics", "profile-indep", "profile-pred"
	TUs       int
	Predictor cluster.PredictorKind
	Overhead  int64
	Removal   int64
	Occur     int
	Reassign  bool
	MinSize   int
}

func (sp SimSpec) key() string {
	return fmt.Sprintf("%s/%s/tu%d/p%d/ov%d/rm%d/oc%d/ra%v/ms%d",
		sp.Bench, sp.Policy, sp.TUs, sp.Predictor, sp.Overhead, sp.Removal, sp.Occur, sp.Reassign, sp.MinSize)
}

// Table resolves a policy name to its spawn table (nil for "none").
// This is the single policy-name vocabulary; Policies lists the
// accepted names.
func (s *Suite) Table(b *Bench, policy string) (*core.Table, error) {
	j, err := b.tableJob(policy)
	if err != nil {
		return nil, err
	}
	v, err := s.eng.Exec(s.ctx, j)
	if err != nil {
		return nil, err
	}
	return v.(*core.Table), nil
}

// Policies lists the spawn-policy names Sim accepts.
func Policies() []string {
	return []string{"none", "profile", "heuristics", "profile-indep", "profile-pred"}
}

// simJob builds the keyed engine job for one simulation, declaring the
// spawn table as a dependency so batches of sims form a proper
// dependency layer: the engine resolves (or dedups) every table and
// simulation concurrently up to its worker bound.
func (s *Suite) simJob(b *Bench, sp SimSpec) (engine.Job, error) {
	sp.Bench = b.Name
	tj, err := b.tableJob(sp.Policy)
	if err != nil {
		return engine.Job{}, err
	}
	return engine.Job{
		Key:  SimKey(s.Size, sp),
		Deps: []engine.Job{tj},
		Run: func(ctx context.Context, deps []any) (any, error) {
			return cluster.Simulate(b.Trace, cluster.Config{
				TUs:                sp.TUs,
				Pairs:              deps[0].(*core.Table),
				Predictor:          sp.Predictor,
				SpawnOverhead:      sp.Overhead,
				RemovalCycles:      sp.Removal,
				RemovalOccurrences: sp.Occur,
				Reassign:           sp.Reassign,
				MinThreadSize:      sp.MinSize,
				SpawnWindowFactor:  spawnWindowFactor,
			})
		},
	}, nil
}

// Sim runs (or fetches from the engine's artifact cache) one
// simulation. Identical SimSpecs return the identical *cluster.Result.
func (s *Suite) Sim(b *Bench, sp SimSpec) (*cluster.Result, error) {
	j, err := s.simJob(b, sp)
	if err != nil {
		return nil, err
	}
	v, err := s.eng.Exec(s.ctx, j)
	if err != nil {
		return nil, fmt.Errorf("expt: %s: %w", j.Key, err)
	}
	return v.(*cluster.Result), nil
}

// execLayer submits the jobs as one dependency layer of an anonymous
// (uncached) gather job: the engine resolves every dependency
// concurrently, bounded by its worker pool, and returns the outputs in
// declaration order.
func (s *Suite) execLayer(jobs []engine.Job) ([]any, error) {
	v, err := s.eng.Exec(s.ctx, engine.Job{
		Deps: jobs,
		Run:  func(ctx context.Context, deps []any) (any, error) { return deps, nil },
	})
	if err != nil {
		return nil, err
	}
	return v.([]any), nil
}

// SimReq names one simulation of a batch: a benchmark and its spec.
type SimReq struct {
	Bench *Bench
	Spec  SimSpec
}

// SimEach runs every requested simulation concurrently as a task group
// on the engine's scheduler (tables resolved as dependencies, identical
// specs deduplicated in flight) and invokes done(i, result, err) as
// each simulation completes. done is called exactly once per request,
// concurrently from multiple goroutines, so it must be safe for
// concurrent use; SimEach returns after every callback has fired. A
// spec that fails to resolve to a job (unknown policy) fails the whole
// call up front, before any work is submitted. Under an active trace
// the whole batch runs as one "exec batch" span recording the group
// size.
func (s *Suite) SimEach(ctx context.Context, reqs []SimReq, done func(i int, r *cluster.Result, err error)) error {
	jobs := make([]engine.Job, len(reqs))
	for i, r := range reqs {
		j, err := s.simJob(r.Bench, r.Spec)
		if err != nil {
			return err
		}
		jobs[i] = j
	}
	span, ctx := obs.StartSpan(ctx, "exec batch", obs.A("group_size", fmt.Sprint(len(jobs))))
	defer span.End()
	s.eng.Sched().For("sim", len(jobs), func(i int) {
		v, err := s.eng.Exec(ctx, jobs[i])
		if err != nil {
			done(i, nil, err)
			return
		}
		done(i, v.(*cluster.Result), nil)
	})
	return nil
}

// SimBatch runs every requested simulation as one engine dependency
// layer, so a figure's whole configuration grid saturates the worker
// pool instead of being issued sequentially. Results are positional:
// out[i] answers reqs[i]. Identical specs are deduplicated by the
// engine (in-flight and cached), and results are deterministic — a
// batch returns the same *cluster.Result pointers the equivalent
// sequence of Sim calls would.
func (s *Suite) SimBatch(reqs []SimReq) ([]*cluster.Result, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]*cluster.Result, len(reqs))
	errs := make([]error, len(reqs))
	if err := s.SimEach(context.Background(), reqs, func(i int, r *cluster.Result, err error) {
		out[i], errs[i] = r, err
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// gridSims builds one request per (benchmark, spec) — specs may vary
// per benchmark — runs them as one layer, and returns results indexed
// [bench][spec].
func (s *Suite) gridSims(specs func(b *Bench) []SimSpec) ([][]*cluster.Result, error) {
	var reqs []SimReq
	counts := make([]int, len(s.Benches))
	for bi, b := range s.Benches {
		list := specs(b)
		counts[bi] = len(list)
		for _, sp := range list {
			reqs = append(reqs, SimReq{Bench: b, Spec: sp})
		}
	}
	flat, err := s.SimBatch(reqs)
	if err != nil {
		return nil, err
	}
	out := make([][]*cluster.Result, len(s.Benches))
	k := 0
	for bi := range s.Benches {
		out[bi] = flat[k : k+counts[bi]]
		k += counts[bi]
	}
	return out, nil
}

// BaselineSpec is the single-threaded reference configuration every
// speed-up is measured against.
func BaselineSpec() SimSpec { return SimSpec{Policy: "none", TUs: 1} }

// Baseline returns the single-threaded cycle count for a benchmark.
func (s *Suite) Baseline(b *Bench) (int64, error) {
	r, err := s.Sim(b, BaselineSpec())
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}

// Bench returns the named benchmark from the suite, or nil.
func (s *Suite) Bench(name string) *Bench {
	for _, b := range s.Benches {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names returns the suite's benchmark names in order.
func (s *Suite) Names() []string {
	names := make([]string, len(s.Benches))
	for i, b := range s.Benches {
		names[i] = b.Name
	}
	return names
}

// FigureIDs lists every reproducible figure in paper order.
func FigureIDs() []string {
	ids := make([]string, 0, len(figures))
	for id := range figures {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		na, nb := figOrder(ids[a]), figOrder(ids[b])
		if na != nb {
			return na < nb
		}
		return ids[a] < ids[b]
	})
	return ids
}

func figOrder(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}
