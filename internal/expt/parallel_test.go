package expt

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// renderAll runs every figure and returns the concatenated rendered
// tables — the exact bytes the CLI would print.
func renderAll(t testing.TB, s *Suite) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, id := range FigureIDs() {
		tab, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := tab.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
	}
	return buf.Bytes()
}

// TestParallelRunMatchesSerial is the engine's determinism acceptance
// test: a full figure sweep on an 8-worker engine must be byte-identical
// to the serial baseline.
func TestParallelRunMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	names := []string{"compress", "ijpeg"}
	serialSuite, err := NewSuite(workload.SizeTest, names)
	if err != nil {
		t.Fatal(err)
	}
	parallelSuite, err := NewSuiteEngine(engine.New(engine.Options{Workers: 8}), workload.SizeTest, names)
	if err != nil {
		t.Fatal(err)
	}
	serial := renderAll(t, serialSuite)
	parallel := renderAll(t, parallelSuite)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestSuitesShareEngineArtifacts checks the cross-suite warm path the
// server relies on: a second suite over the same engine must not
// recompute any pipeline artefact.
func TestSuitesShareEngineArtifacts(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	if _, err := NewSuiteEngine(eng, workload.SizeTest, []string{"compress"}); err != nil {
		t.Fatal(err)
	}
	cold := eng.Stats()
	s2, err := NewSuiteEngine(eng, workload.SizeTest, []string{"compress"})
	if err != nil {
		t.Fatal(err)
	}
	warm := eng.Stats()
	if warm.Executed != cold.Executed {
		t.Errorf("second suite executed %d new jobs, want 0", warm.Executed-cold.Executed)
	}
	if warm.Cache.Hits <= cold.Cache.Hits {
		t.Errorf("second suite recorded no cache hits (%+v -> %+v)", cold.Cache, warm.Cache)
	}
	if s2.Bench("compress") == nil {
		t.Fatal("warm suite lost its bench")
	}
}

func TestNewSuiteEngineNilEngine(t *testing.T) {
	s, err := NewSuiteEngine(nil, workload.SizeTest, []string{"compress"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine() == nil {
		t.Fatal("nil engine not defaulted")
	}
}

func benchmarkSuiteBuild(b *testing.B, workers int) {
	names := []string{"compress", "ijpeg", "li", "go"}
	for i := 0; i < b.N; i++ {
		// Fresh engine each iteration: cold construction cost.
		eng := engine.New(engine.Options{Workers: workers})
		if _, err := NewSuiteEngine(eng, workload.SizeTest, names); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteBuildSerial(b *testing.B)   { benchmarkSuiteBuild(b, 1) }
func BenchmarkSuiteBuildParallel(b *testing.B) { benchmarkSuiteBuild(b, 0) }
