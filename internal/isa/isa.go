// Package isa defines the RISC-like instruction set used throughout the
// repository: opcodes, functional-unit classes with the latencies of the
// paper's machine model (HPCA'02 §4.1), the Instruction and Program
// containers, and a disassembler.
//
// The ISA is deliberately small. The spawning analysis and the
// trace-driven simulator only need (a) control flow — branches, calls,
// returns — (b) register dataflow, (c) memory addresses, and (d) an
// opcode→functional-unit mapping for timing. Any RISC ISA with those
// properties is behaviourally equivalent for this study; see DESIGN.md §1.
package isa

import "fmt"

// NumRegs is the number of architectural integer registers. Register 0 is
// hardwired to zero, as in most RISC ISAs.
const NumRegs = 32

// Reg identifies an architectural register (0..NumRegs-1).
type Reg uint8

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. Arithmetic ops read Src1 and Src2 and write Dst.
// Immediate forms read Src1 and Imm. Loads read mem[Src1+Imm] into Dst;
// stores write Src2 to mem[Src1+Imm]. Conditional branches compare Src1
// against Src2 and jump to Target when the condition holds. Call pushes
// the fall-through PC on the return stack and jumps to Target; Ret pops.
const (
	OpNop Op = iota
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSltu // set if Src1 < Src2 (unsigned)
	OpAddi
	OpLui // Dst = Imm (load immediate)
	OpMul // integer multiply, 4-cycle latency
	OpLoad
	OpStore
	OpBeq
	OpBne
	OpBltu // branch if Src1 < Src2 (unsigned)
	OpBgeu
	OpJmp
	OpCall
	OpRet
	OpFAdd // simple FP, 4-cycle latency
	OpFMul // FP multiply, 6-cycle latency
	OpFDiv // FP divide, 17-cycle latency
	OpHalt
	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSltu: "sltu",
	OpAddi: "addi", OpLui: "lui", OpMul: "mul",
	OpLoad: "load", OpStore: "store",
	OpBeq: "beq", OpBne: "bne", OpBltu: "bltu", OpBgeu: "bgeu",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret",
	OpFAdd: "fadd", OpFMul: "fmul", OpFDiv: "fdiv", OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// FUClass identifies the functional-unit pool an opcode executes on.
type FUClass uint8

// Functional-unit classes with the counts and latencies of the paper's
// thread unit: 2 simple integer (1 cycle), 2 load/store (1 cycle address
// calculation + cache access), 1 integer multiply (4), 2 simple FP (4),
// 1 FP multiply (6), 1 FP divide (17).
const (
	FUIntALU FUClass = iota
	FUIntMul
	FULoadStore
	FUFPAdd
	FUFPMul
	FUFPDiv
	FUNone // control-only ops that consume no execution unit
	NumFUClasses
)

var fuNames = [NumFUClasses]string{
	FUIntALU: "int-alu", FUIntMul: "int-mul", FULoadStore: "load-store",
	FUFPAdd: "fp-add", FUFPMul: "fp-mul", FUFPDiv: "fp-div", FUNone: "none",
}

// String returns the functional-unit class name.
func (c FUClass) String() string {
	if int(c) < len(fuNames) {
		return fuNames[c]
	}
	return fmt.Sprintf("fu(%d)", uint8(c))
}

// FU returns the functional-unit class an opcode executes on.
func (o Op) FU() FUClass {
	switch o {
	case OpMul:
		return FUIntMul
	case OpLoad, OpStore:
		return FULoadStore
	case OpFAdd:
		return FUFPAdd
	case OpFMul:
		return FUFPMul
	case OpFDiv:
		return FUFPDiv
	case OpNop, OpHalt:
		return FUNone
	default:
		return FUIntALU
	}
}

// Latency returns the execution latency in cycles for the opcode.
// Loads report the address-calculation cycle only; the cache model adds
// the access latency. Branches, jumps, calls, and returns resolve on the
// integer ALU in one cycle.
func (o Op) Latency() int {
	switch o {
	case OpMul, OpFAdd:
		return 4
	case OpFMul:
		return 6
	case OpFDiv:
		return 17
	case OpNop, OpHalt:
		return 1
	default:
		return 1
	}
}

// IsBranch reports whether the opcode is a conditional branch.
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBltu, OpBgeu:
		return true
	}
	return false
}

// IsControl reports whether the opcode can redirect the PC.
func (o Op) IsControl() bool {
	switch o {
	case OpBeq, OpBne, OpBltu, OpBgeu, OpJmp, OpCall, OpRet, OpHalt:
		return true
	}
	return false
}

// WritesReg reports whether the opcode writes its Dst register.
func (o Op) WritesReg() bool {
	switch o {
	case OpNop, OpStore, OpBeq, OpBne, OpBltu, OpBgeu, OpJmp, OpCall, OpRet, OpHalt:
		return false
	}
	return true
}

// Instruction is one static instruction. PCs are instruction indices into
// the Program's Code slice (word addressing), not byte addresses.
type Instruction struct {
	Op     Op
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Target uint32 // branch/jump/call target PC
}

// Reads returns the registers the instruction reads (r0 excluded since it
// is constant). The second return value is the number of valid entries.
func (ins *Instruction) Reads() (regs [2]Reg, n int) {
	add := func(r Reg) {
		if r != 0 {
			regs[n] = r
			n++
		}
	}
	switch ins.Op {
	case OpNop, OpHalt, OpJmp, OpCall, OpRet, OpLui:
		return
	case OpAddi, OpLoad:
		add(ins.Src1)
	case OpStore:
		add(ins.Src1)
		add(ins.Src2)
	default:
		add(ins.Src1)
		add(ins.Src2)
	}
	return
}

// String disassembles the instruction.
func (ins Instruction) String() string {
	switch ins.Op {
	case OpNop, OpHalt, OpRet:
		return ins.Op.String()
	case OpLui:
		return fmt.Sprintf("%s r%d, %d", ins.Op, ins.Dst, ins.Imm)
	case OpAddi:
		return fmt.Sprintf("%s r%d, r%d, %d", ins.Op, ins.Dst, ins.Src1, ins.Imm)
	case OpLoad:
		return fmt.Sprintf("%s r%d, %d(r%d)", ins.Op, ins.Dst, ins.Imm, ins.Src1)
	case OpStore:
		return fmt.Sprintf("%s r%d, %d(r%d)", ins.Op, ins.Src2, ins.Imm, ins.Src1)
	case OpBeq, OpBne, OpBltu, OpBgeu:
		return fmt.Sprintf("%s r%d, r%d, @%d", ins.Op, ins.Src1, ins.Src2, ins.Target)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s @%d", ins.Op, ins.Target)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", ins.Op, ins.Dst, ins.Src1, ins.Src2)
	}
}

// Function records a named code region (used for subroutine-continuation
// heuristics and diagnostics).
type Function struct {
	Name  string
	Entry uint32 // PC of the first instruction
	End   uint32 // PC one past the last instruction
}

// Program is a complete executable: straight-line code plus function
// metadata and the entry point.
type Program struct {
	Name  string
	Code  []Instruction
	Funcs []Function
	Entry uint32
}

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Code) }

// ApproxBytes reports the program's approximate resident size for
// engine cache accounting (24B per instruction, ~48B per function).
func (p *Program) ApproxBytes() int64 {
	return int64(len(p.Code))*24 + int64(len(p.Funcs))*48 + int64(len(p.Name)) + 64
}

// FuncAt returns the function containing pc, or nil.
func (p *Program) FuncAt(pc uint32) *Function {
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if pc >= f.Entry && pc < f.End {
			return f
		}
	}
	return nil
}

// Validate checks structural invariants: targets in range, entry valid,
// registers in range, and that the program contains a halt. It returns a
// descriptive error for the first violation found.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q has no code", p.Name)
	}
	if int(p.Entry) >= len(p.Code) {
		return fmt.Errorf("isa: program %q entry %d out of range", p.Name, p.Entry)
	}
	hasHalt := false
	for pc, ins := range p.Code {
		if ins.Op >= numOps {
			return fmt.Errorf("isa: pc %d: invalid opcode %d", pc, ins.Op)
		}
		if ins.Op == OpHalt {
			hasHalt = true
		}
		if ins.Op.IsControl() && ins.Op != OpRet && ins.Op != OpHalt {
			if int(ins.Target) >= len(p.Code) {
				return fmt.Errorf("isa: pc %d: target %d out of range", pc, ins.Target)
			}
		}
		if ins.Dst >= NumRegs || ins.Src1 >= NumRegs || ins.Src2 >= NumRegs {
			return fmt.Errorf("isa: pc %d: register out of range", pc)
		}
		if ins.Op.WritesReg() && ins.Dst == 0 {
			return fmt.Errorf("isa: pc %d: write to r0", pc)
		}
	}
	if !hasHalt {
		return fmt.Errorf("isa: program %q has no halt", p.Name)
	}
	return nil
}
