package isa

import (
	"fmt"

	"repro/internal/binio"
)

// programVersion tags the Program wire format; bump on layout changes
// so stale disk artifacts decode to a clean error instead of garbage.
const programVersion = 1

// MarshalBinary serialises the program (code, function metadata, entry
// point) in a deterministic little-endian format for the disk artifact
// store.
func (p *Program) MarshalBinary() ([]byte, error) {
	w := binio.NewWriter(16 + len(p.Name) + len(p.Code)*12 + len(p.Funcs)*24)
	w.U8(programVersion)
	w.String(p.Name)
	w.Uvarint(uint64(len(p.Code)))
	for i := range p.Code {
		ins := &p.Code[i]
		w.U8(uint8(ins.Op))
		w.U8(uint8(ins.Dst))
		w.U8(uint8(ins.Src1))
		w.U8(uint8(ins.Src2))
		w.Varint(ins.Imm)
		w.U32(ins.Target)
	}
	w.Uvarint(uint64(len(p.Funcs)))
	for i := range p.Funcs {
		f := &p.Funcs[i]
		w.String(f.Name)
		w.U32(f.Entry)
		w.U32(f.End)
	}
	w.U32(p.Entry)
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a program written by MarshalBinary.
func (p *Program) UnmarshalBinary(data []byte) error {
	r := binio.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != programVersion {
		return fmt.Errorf("isa: program format version %d (want %d)", v, programVersion)
	}
	p.Name = r.String()
	// Min encoded instruction: 4 one-byte fields + 1-byte varint + u32.
	code := make([]Instruction, r.Count(9))
	for i := range code {
		code[i] = Instruction{
			Op:   Op(r.U8()),
			Dst:  Reg(r.U8()),
			Src1: Reg(r.U8()),
			Src2: Reg(r.U8()),
			Imm:  r.Varint(),
		}
		code[i].Target = r.U32()
	}
	p.Code = code
	funcs := make([]Function, r.Count(9))
	for i := range funcs {
		funcs[i] = Function{Name: r.String(), Entry: r.U32(), End: r.U32()}
	}
	p.Funcs = funcs
	p.Entry = r.U32()
	return r.Close()
}
