package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op      Op
		fu      FUClass
		lat     int
		branch  bool
		control bool
		writes  bool
	}{
		{OpAdd, FUIntALU, 1, false, false, true},
		{OpMul, FUIntMul, 4, false, false, true},
		{OpLoad, FULoadStore, 1, false, false, true},
		{OpStore, FULoadStore, 1, false, false, false},
		{OpBeq, FUIntALU, 1, true, true, false},
		{OpJmp, FUIntALU, 1, false, true, false},
		{OpCall, FUIntALU, 1, false, true, false},
		{OpRet, FUIntALU, 1, false, true, false},
		{OpFAdd, FUFPAdd, 4, false, false, true},
		{OpFMul, FUFPMul, 6, false, false, true},
		{OpFDiv, FUFPDiv, 17, false, false, true},
		{OpHalt, FUNone, 1, false, true, false},
		{OpNop, FUNone, 1, false, false, false},
	}
	for _, c := range cases {
		if c.op.FU() != c.fu {
			t.Errorf("%v FU = %v, want %v", c.op, c.op.FU(), c.fu)
		}
		if c.op.Latency() != c.lat {
			t.Errorf("%v latency = %d, want %d", c.op, c.op.Latency(), c.lat)
		}
		if c.op.IsBranch() != c.branch {
			t.Errorf("%v IsBranch = %v", c.op, c.op.IsBranch())
		}
		if c.op.IsControl() != c.control {
			t.Errorf("%v IsControl = %v", c.op, c.op.IsControl())
		}
		if c.op.WritesReg() != c.writes {
			t.Errorf("%v WritesReg = %v", c.op, c.op.WritesReg())
		}
	}
}

func TestEveryOpHasNameAndFU(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if op.FU() >= NumFUClasses {
			t.Errorf("op %v has invalid FU", op)
		}
		if op.Latency() <= 0 {
			t.Errorf("op %v has non-positive latency", op)
		}
	}
}

func TestBranchesAreControl(t *testing.T) {
	// Property: every branch is a control op and writes no register.
	f := func(raw uint8) bool {
		op := Op(raw % uint8(numOps))
		if op.IsBranch() && (!op.IsControl() || op.WritesReg()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReads(t *testing.T) {
	ins := Instruction{Op: OpAdd, Dst: 3, Src1: 1, Src2: 2}
	regs, n := ins.Reads()
	if n != 2 || regs[0] != 1 || regs[1] != 2 {
		t.Errorf("add reads = %v/%d", regs, n)
	}
	ins = Instruction{Op: OpAdd, Dst: 3, Src1: 0, Src2: 2}
	regs, n = ins.Reads()
	if n != 1 || regs[0] != 2 {
		t.Errorf("add with r0 reads = %v/%d", regs, n)
	}
	ins = Instruction{Op: OpLui, Dst: 3, Imm: 7}
	if _, n := ins.Reads(); n != 0 {
		t.Errorf("lui reads %d regs", n)
	}
	ins = Instruction{Op: OpStore, Src1: 4, Src2: 5}
	regs, n = ins.Reads()
	if n != 2 || regs[0] != 4 || regs[1] != 5 {
		t.Errorf("store reads = %v/%d", regs, n)
	}
	ins = Instruction{Op: OpLoad, Dst: 3, Src1: 4}
	regs, n = ins.Reads()
	if n != 1 || regs[0] != 4 {
		t.Errorf("load reads = %v/%d", regs, n)
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main")
	b.Li(1, 5)
	b.Label("top")
	b.Addi(1, 1, -1)
	b.Branch(OpBne, 1, 0, "top")
	b.Call("f")
	b.Halt()
	b.Func("f")
	b.Nop()
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 7 {
		t.Errorf("len = %d, want 7", p.Len())
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(p.Funcs))
	}
	if p.Funcs[0].Name != "main" || p.Funcs[0].Entry != 0 || p.Funcs[0].End != 5 {
		t.Errorf("main func meta = %+v", p.Funcs[0])
	}
	if p.Funcs[1].Entry != 5 || p.Funcs[1].End != 7 {
		t.Errorf("f func meta = %+v", p.Funcs[1])
	}
	if f := p.FuncAt(6); f == nil || f.Name != "f" {
		t.Errorf("FuncAt(6) = %v", f)
	}
	// Branch target patched to "top" = pc 1.
	if p.Code[2].Target != 1 {
		t.Errorf("branch target = %d", p.Code[2].Target)
	}
	// Call target patched forward to f = pc 5.
	if p.Code[3].Target != 5 {
		t.Errorf("call target = %d", p.Code[3].Target)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("t")
	b.Jmp("missing")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("expected undefined-label error")
	}

	b = NewBuilder("t")
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("expected duplicate-label error")
	}

	b = NewBuilder("t")
	b.Branch(OpAdd, 1, 2, "x")
	if _, err := b.Build(); err == nil {
		t.Error("expected non-branch error")
	}

	b = NewBuilder("t")
	b.Halt()
	b.SetEntry("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("expected undefined-entry error")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Program{
		{Name: "empty"},
		{Name: "noentry", Code: []Instruction{{Op: OpHalt}}, Entry: 5},
		{Name: "nohalt", Code: []Instruction{{Op: OpNop}}},
		{Name: "badtarget", Code: []Instruction{{Op: OpJmp, Target: 9}, {Op: OpHalt}}},
		{Name: "r0write", Code: []Instruction{{Op: OpAdd, Dst: 0}, {Op: OpHalt}}},
	}
	for i := range cases {
		if err := cases[i].Validate(); err == nil {
			t.Errorf("%s: expected validation error", cases[i].Name)
		}
	}
}

func TestInstructionString(t *testing.T) {
	cases := map[string]Instruction{
		"add r3, r1, r2":  {Op: OpAdd, Dst: 3, Src1: 1, Src2: 2},
		"addi r3, r1, 4":  {Op: OpAddi, Dst: 3, Src1: 1, Imm: 4},
		"lui r2, 9":       {Op: OpLui, Dst: 2, Imm: 9},
		"load r2, 8(r1)":  {Op: OpLoad, Dst: 2, Src1: 1, Imm: 8},
		"store r2, 8(r1)": {Op: OpStore, Src1: 1, Src2: 2, Imm: 8},
		"beq r1, r2, @7":  {Op: OpBeq, Src1: 1, Src2: 2, Target: 7},
		"jmp @3":          {Op: OpJmp, Target: 3},
		"call @3":         {Op: OpCall, Target: 3},
		"ret":             {Op: OpRet},
		"halt":            {Op: OpHalt},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
