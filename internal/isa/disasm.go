package isa

import (
	"fmt"
	"io"
)

// Disassemble writes a human-readable listing of the program: function
// headers, per-instruction addresses, and mnemonics.
func Disassemble(w io.Writer, p *Program) error {
	funcAt := make(map[uint32]*Function, len(p.Funcs))
	for i := range p.Funcs {
		funcAt[p.Funcs[i].Entry] = &p.Funcs[i]
	}
	for pc := range p.Code {
		if f, ok := funcAt[uint32(pc)]; ok {
			if _, err := fmt.Fprintf(w, "\n%s:\n", f.Name); err != nil {
				return err
			}
		}
		marker := " "
		if uint32(pc) == p.Entry {
			marker = ">"
		}
		if _, err := fmt.Fprintf(w, "%s %6d  %s\n", marker, pc, p.Code[pc].String()); err != nil {
			return err
		}
	}
	return nil
}
