package isa

import "fmt"

// Builder assembles a Program incrementally with symbolic labels, so the
// workload generator and tests never hand-compute PCs. Forward references
// are patched when the label is bound.
type Builder struct {
	name     string
	code     []Instruction
	funcs    []Function
	labels   map[string]uint32
	fixups   map[string][]int // label -> instruction indices awaiting patch
	openFn   int              // index into funcs of the open function, or -1
	errs     []error
	entrySet bool
	entry    string
}

// NewBuilder returns an empty program builder.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]uint32),
		fixups: make(map[string][]int),
		openFn: -1,
	}
}

// PC returns the PC the next emitted instruction will occupy.
func (b *Builder) PC() uint32 { return uint32(len(b.code)) }

// Label binds name to the current PC and patches forward references.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return
	}
	pc := b.PC()
	b.labels[name] = pc
	for _, idx := range b.fixups[name] {
		b.code[idx].Target = pc
	}
	delete(b.fixups, name)
}

// Func opens a function: binds a label and records metadata. The function
// extends until the next Func call or Build.
func (b *Builder) Func(name string) {
	b.closeFunc()
	b.Label(name)
	b.funcs = append(b.funcs, Function{Name: name, Entry: b.PC()})
	b.openFn = len(b.funcs) - 1
}

func (b *Builder) closeFunc() {
	if b.openFn >= 0 {
		b.funcs[b.openFn].End = b.PC()
		b.openFn = -1
	}
}

// SetEntry selects the label execution starts at (default: PC 0).
func (b *Builder) SetEntry(label string) {
	b.entrySet = true
	b.entry = label
}

func (b *Builder) emit(ins Instruction) {
	b.code = append(b.code, ins)
}

func (b *Builder) emitTo(ins Instruction, label string) {
	if pc, ok := b.labels[label]; ok {
		ins.Target = pc
	} else {
		b.fixups[label] = append(b.fixups[label], len(b.code))
	}
	b.emit(ins)
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Instruction{Op: OpNop}) }

// Op3 emits a three-register ALU/FP operation.
func (b *Builder) Op3(op Op, dst, src1, src2 Reg) {
	b.emit(Instruction{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// Addi emits dst = src + imm.
func (b *Builder) Addi(dst, src Reg, imm int64) {
	b.emit(Instruction{Op: OpAddi, Dst: dst, Src1: src, Imm: imm})
}

// Li emits dst = imm.
func (b *Builder) Li(dst Reg, imm int64) {
	b.emit(Instruction{Op: OpLui, Dst: dst, Imm: imm})
}

// Load emits dst = mem[base+off].
func (b *Builder) Load(dst, base Reg, off int64) {
	b.emit(Instruction{Op: OpLoad, Dst: dst, Src1: base, Imm: off})
}

// Store emits mem[base+off] = val.
func (b *Builder) Store(val, base Reg, off int64) {
	b.emit(Instruction{Op: OpStore, Src1: base, Src2: val, Imm: off})
}

// Branch emits a conditional branch to label.
func (b *Builder) Branch(op Op, src1, src2 Reg, label string) {
	if !op.IsBranch() {
		b.errs = append(b.errs, fmt.Errorf("isa: %v is not a branch", op))
		return
	}
	b.emitTo(Instruction{Op: op, Src1: src1, Src2: src2}, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) { b.emitTo(Instruction{Op: OpJmp}, label) }

// Call emits a call to label.
func (b *Builder) Call(label string) { b.emitTo(Instruction{Op: OpCall}, label) }

// Ret emits a return.
func (b *Builder) Ret() { b.emit(Instruction{Op: OpRet}) }

// Halt emits a halt.
func (b *Builder) Halt() { b.emit(Instruction{Op: OpHalt}) }

// Build finalises the program, validating labels and structure.
func (b *Builder) Build() (*Program, error) {
	b.closeFunc()
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for label, idxs := range b.fixups {
		if len(idxs) > 0 {
			return nil, fmt.Errorf("isa: undefined label %q", label)
		}
	}
	p := &Program{Name: b.name, Code: b.code, Funcs: b.funcs}
	if b.entrySet {
		pc, ok := b.labels[b.entry]
		if !ok {
			return nil, fmt.Errorf("isa: undefined entry label %q", b.entry)
		}
		p.Entry = pc
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// input is known-good by construction.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
