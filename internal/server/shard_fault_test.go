package server

import (
	"bufio"
	"bytes"
	"net/http"
	"testing"
)

// TestClusterSurvivesDeadShard is the fault-injection suite: a 3-shard
// cluster answers the full parity request set, one member is killed
// mid-suite, and the survivors must keep answering every request —
// including batches whose sub-streams now hit a dead owner — with
// bytes identical to a single-node run (re-routing to local compute).
func TestClusterSurvivesDeadShard(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection suite is slow")
	}
	ref := referenceResponses(t)
	nodes := startTestCluster(t, 3)

	// Healthy pass through entry node 0: warms the cluster and proves
	// the baseline.
	for _, req := range parityRequests() {
		status, body := doRequest(t, nodes[0].url, req)
		if status != http.StatusOK {
			t.Fatalf("healthy %s: status %d: %s", req.name, status, body)
		}
		if !bytes.Equal(body, ref[req.name]) {
			t.Fatalf("healthy %s: bytes differ from single-node run", req.name)
		}
	}

	// Kill one member mid-suite. Node 2 is never used as an entry
	// point below, so every difference it makes is as a (now dead)
	// owner of someone else's keys.
	nodes[2].ts.Close()

	var before []uint64
	for _, n := range nodes[:2] {
		before = append(before, n.srv.Cluster().Stats().ProxyFallbacks+
			n.srv.Cluster().Stats().BatchFallbackSpecs)
	}

	for entry, node := range nodes[:2] {
		for _, req := range parityRequests() {
			status, body := doRequest(t, node.url, req)
			if status != http.StatusOK {
				t.Fatalf("degraded entry %d, %s: status %d: %s", entry, req.name, status, body)
			}
			if !bytes.Equal(body, ref[req.name]) {
				t.Errorf("degraded entry %d, %s: response differs from single-node run\n got: %.300s\nwant: %.300s",
					entry, req.name, body, ref[req.name])
			}
		}
	}

	// The survivors must have taken over at least some of the dead
	// member's keys via the fallback paths (the parity set spans many
	// keys; with 3 members the dead one owned ~1/3 of them). The
	// healthy pass left results only on the (partly dead) owners, so
	// the degraded pass cannot be answered purely from entry-local
	// caches.
	var after []uint64
	for _, n := range nodes[:2] {
		after = append(after, n.srv.Cluster().Stats().ProxyFallbacks+
			n.srv.Cluster().Stats().BatchFallbackSpecs)
	}
	if after[0] == before[0] && after[1] == before[1] {
		t.Error("no fallback was recorded while a member was dead")
	}
}

// TestDegradedBatchStreamStaysOrdered re-checks the NDJSON contract
// under failure: with a dead owner in the ring, a batch through a
// survivor must still stream exactly one line per spec, indexed in
// request order.
func TestDegradedBatchStreamStaysOrdered(t *testing.T) {
	nodes := startTestCluster(t, 3)
	nodes[1].ts.Close()

	req := clusterRequest{"batch", "POST", "/v1/batch",
		`{"size":"test","sweep":{"benches":["compress"],"tus":[1,2,4,8]}}`}
	status, body := doRequest(t, nodes[0].url, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	idx := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		want := []byte(`{"index":` + string(rune('0'+idx)) + `,`)
		if !bytes.HasPrefix(line, want) {
			t.Fatalf("line %d starts %.40s, want prefix %s", idx, line, want)
		}
		if bytes.Contains(line, []byte(`"error"`)) {
			t.Fatalf("line %d is an error line: %.200s", idx, line)
		}
		idx++
	}
	if idx != 4 {
		t.Fatalf("stream has %d lines, want 4", idx)
	}
}
