// POST /v1/batch: one request sweeps a whole simulation-configuration
// grid. The grid is given either as an explicit spec list, as a
// cross-product sweep, or both (explicit specs first, then the sweep
// expansion in deterministic nested order). Every simulation is fanned
// out through the shared engine as one dependency layer — spawn tables
// resolved as dependencies, identical specs deduplicated in flight and
// against the artifact store — and results stream back as NDJSON in
// request order as they complete, each line byte-identical to the
// (compacted) body the equivalent /v1/simulate call returns.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/expt"
	"repro/internal/workload"
)

// maxBatchSpecs bounds one request's expanded grid: a full figure
// sweep is a few hundred sims; 4096 leaves room without letting one
// request occupy the engine for hours.
const maxBatchSpecs = 4096

// batchSpec is one simulation configuration of a batch — the
// /v1/simulate request shape minus the size, which is batch-global so
// the whole grid shares one suite.
type batchSpec struct {
	Bench       string `json:"bench"`
	Policy      string `json:"policy"`    // default "profile"
	TUs         int    `json:"tus"`       // default 16
	Predictor   string `json:"predictor"` // default "perfect"
	Overhead    int64  `json:"overhead"`
	Removal     int64  `json:"removal"`
	Occurrences int    `json:"occurrences"`
	Reassign    bool   `json:"reassign"`
	MinSize     int    `json:"min_size"`
}

// batchSweep is a cross-product grid: every combination of the listed
// values, expanded in nested order (benches outermost, min_sizes
// innermost). Empty dimensions take the /v1/simulate defaults.
type batchSweep struct {
	Benches     []string `json:"benches"`    // default: every benchmark
	Policies    []string `json:"policies"`   // default: ["profile"]
	TUs         []int    `json:"tus"`        // default: [16]
	Predictors  []string `json:"predictors"` // default: ["perfect"]
	Overheads   []int64  `json:"overheads"`  // default: [0]
	Removals    []int64  `json:"removals"`   // default: [0]
	Occurrences []int    `json:"occurrences"`
	Reassign    []bool   `json:"reassign"`
	MinSizes    []int    `json:"min_sizes"`
}

type batchRequest struct {
	Size  string      `json:"size"`
	Specs []batchSpec `json:"specs,omitempty"`
	Sweep *batchSweep `json:"sweep,omitempty"`
}

// batchItem is one NDJSON result line: the /v1/simulate response with
// the request index prepended.
type batchItem struct {
	Index int `json:"index"`
	simulateResponse
}

// batchError is one NDJSON failure line.
type batchError struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// expand renders the sweep as a spec list in deterministic nested
// order.
func (sw *batchSweep) expand() []batchSpec {
	benches := sw.Benches
	if len(benches) == 0 {
		benches = workload.Benchmarks
	}
	or := func(vals []string, def string) []string {
		if len(vals) == 0 {
			return []string{def}
		}
		return vals
	}
	orInt := func(vals []int, def int) []int {
		if len(vals) == 0 {
			return []int{def}
		}
		return vals
	}
	orI64 := func(vals []int64) []int64 {
		if len(vals) == 0 {
			return []int64{0}
		}
		return vals
	}
	policies := or(sw.Policies, "profile")
	tus := orInt(sw.TUs, 16)
	preds := or(sw.Predictors, "perfect")
	overheads := orI64(sw.Overheads)
	removals := orI64(sw.Removals)
	occurrences := orInt(sw.Occurrences, 0)
	reassign := sw.Reassign
	if len(reassign) == 0 {
		reassign = []bool{false}
	}
	minSizes := orInt(sw.MinSizes, 0)

	var specs []batchSpec
	for _, b := range benches {
		for _, pol := range policies {
			for _, tu := range tus {
				for _, pred := range preds {
					for _, ov := range overheads {
						for _, rm := range removals {
							for _, oc := range occurrences {
								for _, ra := range reassign {
									for _, ms := range minSizes {
										specs = append(specs, batchSpec{
											Bench: b, Policy: pol, TUs: tu, Predictor: pred,
											Overhead: ov, Removal: rm, Occurrences: oc,
											Reassign: ra, MinSize: ms,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return specs
}

// validate applies /v1/simulate's defaults and checks, returning the
// resolved SimSpec (bench name carried in SimSpec.Bench).
func (sp *batchSpec) validate(i int) (expt.SimSpec, error) {
	if sp.Policy == "" {
		sp.Policy = "profile"
	}
	if sp.TUs == 0 {
		sp.TUs = 16
	}
	if err := validBench(sp.Bench); err != nil {
		return expt.SimSpec{}, fmt.Errorf("spec %d: %w", i, err)
	}
	if err := validPolicy(sp.Policy, false); err != nil {
		return expt.SimSpec{}, fmt.Errorf("spec %d: %w", i, err)
	}
	if sp.TUs < 1 || sp.Overhead < 0 || sp.Removal < 0 || sp.Occurrences < 0 || sp.MinSize < 0 {
		return expt.SimSpec{}, fmt.Errorf(
			"spec %d: tus must be >= 1 and overhead/removal/occurrences/min_size must be >= 0", i)
	}
	pred, err := parsePredictor(sp.Predictor)
	if err != nil {
		return expt.SimSpec{}, fmt.Errorf("spec %d: %w", i, err)
	}
	return expt.SimSpec{
		Bench:     sp.Bench,
		Policy:    sp.Policy,
		TUs:       sp.TUs,
		Predictor: pred,
		Overhead:  sp.Overhead,
		Removal:   sp.Removal,
		Occur:     sp.Occurrences,
		Reassign:  sp.Reassign,
		MinSize:   sp.MinSize,
	}, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req batchRequest
	if err := decodeBody(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	specs := req.Specs
	if req.Sweep != nil {
		specs = append(specs, req.Sweep.expand()...)
	}
	if len(specs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch needs specs or a sweep"))
		return
	}
	if len(specs) > maxBatchSpecs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch expands to %d specs (max %d)", len(specs), maxBatchSpecs))
		return
	}
	sz, err := parseSize(req.Size)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Validate the whole grid before any work or output: a bad spec is
	// a clean 400, not a broken half-stream.
	resolved := make([]expt.SimSpec, len(specs))
	var benches []string
	seen := make(map[string]bool)
	for i := range specs {
		sp, err := specs[i].validate(i)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resolved[i] = sp
		if !seen[sp.Bench] {
			seen[sp.Bench] = true
			benches = append(benches, sp.Bench)
		}
	}
	// Peer mode: fan the validated grid out per-spec to the owning
	// shards and merge their NDJSON streams back in request order.
	// Forwarded sub-batches land below, on the plain local path.
	if s.cluster != nil && !forwarded(r) {
		s.handleBatchSharded(w, r, sz, specs, resolved)
		return
	}
	// Admission: a batch weighs what it still has to compute — resolved
	// specs and bench chains already in the store are free, so a fully
	// warm batch bypasses the gate entirely.
	cold := 0
	for i := range resolved {
		if !s.eng.Has(expt.SimKey(sz, resolved[i])) {
			cold++
		}
	}
	for _, n := range benches {
		if !s.eng.Has(expt.BenchKey(n, sz)) {
			cold++
		}
	}
	release, ok := s.admitCompute(w, r, "/v1/batch", cold, cold == 0)
	if !ok {
		return
	}
	defer release()
	suite, err := expt.NewSuiteEngineCtx(r.Context(), s.eng, sz, benches)
	if err != nil {
		s.computeError(w, http.StatusInternalServerError, err)
		return
	}
	reqs := make([]expt.SimReq, len(resolved))
	for i, sp := range resolved {
		reqs[i] = expt.SimReq{Bench: suite.Bench(sp.Bench), Spec: sp}
	}

	// Stream results in request order, flushing each line as soon as it
	// and all its predecessors are done: output order (and bytes) are
	// deterministic while later sims still overlap earlier writes.
	type slot struct {
		res *cluster.Result
		err error
	}
	slots := make([]chan slot, len(reqs))
	for i := range slots {
		slots[i] = make(chan slot, 1)
	}
	ctx := r.Context()
	go func() {
		// Spec errors were caught above; SimEach only fails on job
		// build, which validate has already excluded.
		if err := suite.SimEach(ctx, reqs, func(i int, res *cluster.Result, err error) {
			slots[i] <- slot{res, err}
		}); err != nil {
			for i := range slots {
				select {
				case slots[i] <- slot{nil, err}:
				default:
				}
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range reqs {
		select {
		case <-ctx.Done():
			return
		case sl := <-slots[i]:
			var line any
			if sl.err != nil {
				line = batchError{Index: i, Error: sl.err.Error()}
			} else {
				// The batch stream IS the request stream for the
				// predictor: each completed spec is observed in request
				// order, so a sweep teaches its own progression.
				s.noteSim(sz, resolved[i])
				line = batchItem{
					Index: i,
					simulateResponse: simulateResponse{
						Bench:  resolved[i].Bench,
						Size:   suite.Size.String(),
						Policy: resolved[i].Policy,
						TUs:    resolved[i].TUs,
						Result: sl.res,
					},
				}
			}
			if err := enc.Encode(line); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
