// Server-side observability: the tracing/metrics middleware around the
// route table, the /v1/traces query endpoints (with cross-node
// stitching), the hand-rolled Prometheus /metrics exposition, and the
// separate ops listener's handler (metrics + pprof + healthz).
//
// Invariant (enforced by the cluster parity suite): nothing in this
// file may alter a /v1 response BODY. Tracing lives in the X-Spmt-Trace
// header, side endpoints, and process memory; metrics are read-only
// snapshots of counters the handlers already maintain.
package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime/debug"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shard"
)

// httpDurationBuckets are the per-endpoint latency bucket bounds in
// seconds (a warm cache hit is sub-millisecond; a cold full-size
// figure sweep runs for many seconds).
var httpDurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// statusWriter records the response status for metrics/span labels. It
// passes Flush through so the NDJSON batch stream keeps flushing
// per-line exactly as it does unwrapped.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traceable reports whether requests to path get a trace: all of /v1
// except the trace-query endpoints themselves, whose requests (and the
// stitcher's side-channel fetches) would otherwise churn the very ring
// they are reading, and the cluster control plane, whose periodic
// probes and gossip would drown real request traces in heartbeat
// noise.
func traceable(path string) bool {
	return strings.HasPrefix(path, "/v1/") &&
		!strings.HasPrefix(path, "/v1/traces") &&
		!strings.HasPrefix(path, "/v1/cluster")
}

// observe wraps the route table with the observability and
// overload-safety middleware: every request is counted and timed per
// endpoint pattern, traceable requests run under a trace adopted from
// X-Spmt-Trace (a forwarded hop lands its spans in the same trace the
// entry node started) or freshly minted AND under the cluster-wide
// deadline (adopted from X-Spmt-Deadline, or minted from the
// configured default), and handler panics are contained to a 500.
func (s *Server) observe(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		var span *obs.Span
		if traceable(r.URL.Path) {
			ctx := r.Context()
			// Cluster-wide deadline: a forwarded leg carries the sender's
			// remaining budget in whole milliseconds; an entry request gets
			// the configured default (0 = none). The context cancels engine
			// work when the budget is spent, which handlers map to 504 and
			// the admission gate folds into its wait bound.
			var cancel context.CancelFunc
			if h := r.Header.Get(shard.DeadlineHeader); h != "" {
				if ms, err := strconv.ParseInt(h, 10, 64); err == nil {
					if ms > 0 {
						ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
					} else {
						// An explicit "0" (or below) is a SPENT budget,
						// not an absent one: adopt an already-expired
						// context so cold compute rejects as 504
						// immediately while store-resolvable work still
						// answers. Ignoring it would grant this hop an
						// unbounded budget the sender never had.
						ctx, cancel = context.WithTimeout(ctx, -time.Millisecond)
					}
				}
			} else if s.defaultDeadline > 0 {
				ctx, cancel = context.WithTimeout(ctx, s.defaultDeadline)
			}
			if cancel != nil {
				defer cancel()
			}
			// Arm the engine-side admission hook: a request classified
			// warm by the handler's index probe bypasses the HTTP gate,
			// but eviction can turn it cold by the time Exec commits to
			// computing — the hook re-checks at that moment, closing the
			// probe/compute TOCTOU window. Requests that acquired the
			// gate up front pass for free via admitState.
			if s.gate != nil {
				ctx = s.withComputeGate(ctx)
			}
			tr := s.tracer.Trace(r.Header.Get(obs.TraceHeader))
			ctx = obs.ContextWithTrace(ctx, tr)
			// The header goes out before the handler commits a status, so
			// clients always learn the ID to query /v1/traces/{id} with.
			w.Header().Set(obs.TraceHeader, tr.ID())
			span, ctx = obs.StartSpan(ctx, "http "+r.Method+" "+r.URL.Path)
			r = r.WithContext(ctx)
		}
		start := time.Now()
		s.serveRecovered(mux, sw, r)
		// ServeMux stamped r.Pattern while routing; the pattern (not the
		// raw path) keys the metrics so figure IDs and junk paths cannot
		// explode label cardinality.
		endpoint := "unmatched"
		if p := r.Pattern; p != "" {
			endpoint = p
			if i := strings.IndexByte(p, ' '); i >= 0 {
				endpoint = p[i+1:]
			}
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.httpReqs.Add(1, endpoint, strconv.Itoa(status))
		s.httpDur.Observe(time.Since(start).Seconds(), endpoint)
		if span != nil {
			span.SetAttr("endpoint", endpoint)
			span.SetAttr("status", strconv.Itoa(status))
			span.End()
		}
	})
}

// serveRecovered runs the route table under the panic barrier: a
// panicking handler becomes a logged 500 (when no bytes have been
// written yet) and a counter bump, not a torn-down connection — one
// poisoned request must not look like a node failure to the client or
// to the cluster's prober. http.ErrAbortHandler passes through: it is
// net/http's own sentinel for a deliberately-aborted response.
func (s *Server) serveRecovered(mux *http.ServeMux, sw *statusWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		s.httpPanics.Add(1)
		slog.Error("server: handler panic",
			"method", r.Method, "path", r.URL.Path, "panic", rec,
			"trace", obs.TraceIDFrom(r.Context()), "stack", string(debug.Stack()))
		if sw.status == 0 {
			writeError(sw, http.StatusInternalServerError,
				fmt.Errorf("internal error: handler panic (see server log)"))
		}
	}()
	mux.ServeHTTP(sw, r)
}

// tracesResponse is the GET /v1/traces body.
type tracesResponse struct {
	Node   string             `json:"node,omitempty"`
	Traces []obs.TraceSummary `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, tracesResponse{
		Node:   s.tracer.Node(),
		Traces: s.tracer.Recent(limit),
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.tracer.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("trace %q is not resident (ring keeps the most recent %d)", id, obs.DefaultTraceCapacity))
		return
	}
	tj := tr.JSON()
	if s.cluster != nil && r.URL.Query().Get("scope") != "local" {
		s.stitchTrace(r.Context(), tj)
	}
	writeJSON(w, http.StatusOK, tj)
}

// peerRef is one span that crossed the wire to a peer (attr "peer"),
// the graft point for that peer's span subtree.
type peerRef struct {
	peer string
	span *obs.SpanJSON
}

// collectPeerRefs walks the tree in display order and returns the
// first referencing span for each peer not yet visited.
func collectPeerRefs(spans []*obs.SpanJSON, visited map[string]bool) []peerRef {
	var refs []peerRef
	seen := map[string]bool{}
	var walk func([]*obs.SpanJSON)
	walk = func(ss []*obs.SpanJSON) {
		for _, sp := range ss {
			if peer := sp.Attrs["peer"]; peer != "" && !visited[peer] && !seen[peer] {
				seen[peer] = true
				refs = append(refs, peerRef{peer: peer, span: sp})
			}
			walk(sp.Children)
		}
	}
	walk(spans)
	return refs
}

// stitchTrace grafts peers' span subtrees into the local tree: any
// span carrying a "peer" attribute names a node that handled part of
// this trace, so its local subtree (fetched via the ?scope=local
// side channel) is appended under the first such span. Newly-grafted
// subtrees are scanned too — an artifact-fetch chain can extend a
// trace across nodes the entry node never spoke to — with the visited
// set keeping the walk loop-free. Unreachable peers leave a
// stitch_error attribute instead of failing the whole trace.
func (s *Server) stitchTrace(ctx context.Context, tj *obs.TraceJSON) {
	visited := map[string]bool{s.cluster.Self(): true}
	members := s.cluster.Members()
	pending := collectPeerRefs(tj.Roots, visited)
	// Each round strictly grows visited, so membership bounds the walk.
	for round := 0; round < len(members) && len(pending) > 0; round++ {
		var next []peerRef
		for _, ref := range pending {
			if visited[ref.peer] || !slices.Contains(members, ref.peer) {
				continue
			}
			visited[ref.peer] = true
			var sub obs.TraceJSON
			if err := s.cluster.GetJSON(ctx, ref.peer,
				"/v1/traces/"+url.PathEscape(tj.ID)+"?scope=local", &sub); err != nil {
				if ref.span.Attrs == nil {
					ref.span.Attrs = map[string]string{}
				}
				ref.span.Attrs["stitch_error"] = err.Error()
				continue
			}
			ref.span.Children = append(ref.span.Children, sub.Roots...)
			tj.Spans += sub.Spans
			tj.Dropped += sub.Dropped
			next = append(next, collectPeerRefs(sub.Roots, visited)...)
		}
		pending = next
	}
}

// handleMetrics renders the Prometheus exposition. Every value is
// snapshotted from the same counters /v1/stats serves, so the two
// views can never disagree about a total.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mw := obs.NewMetricsWriter()
	es := s.eng.Stats()

	mw.Counter("spmt_engine_jobs_executed_total",
		"Engine job Run invocations (store misses not deduplicated).", float64(es.Executed))
	mw.Counter("spmt_engine_jobs_deduped_total",
		"Engine calls that joined an identical in-flight computation.", float64(es.Deduped))
	mw.Gauge("spmt_engine_workers", "Engine worker-pool size.", float64(es.Workers))
	for _, kind := range sortedKeys(es.Latency) {
		mw.Histogram("spmt_engine_job_duration_seconds",
			"Engine job Run latency by job kind.", latencySnapshot(es.Latency[kind]),
			obs.A("kind", kind))
	}

	ss := es.Sched
	mw.Gauge("spmt_sched_workers",
		"Work-stealing scheduler core budget (primary workers).", float64(ss.Workers))
	mw.Counter("spmt_sched_tasks_submitted_total",
		"Tasks handed to the scheduler (inline runs included).", float64(ss.Submitted))
	mw.Counter("spmt_sched_tasks_completed_total",
		"Tasks retired by the scheduler (cancelled tasks included).", float64(ss.Completed))
	mw.Counter("spmt_sched_tasks_inline_total",
		"Do calls that ran inline on a worker already holding a core.", float64(ss.Inline))
	for _, kind := range sortedKeys(ss.TasksByKind) {
		mw.Counter("spmt_sched_tasks_total",
			"Tasks submitted by kind (emu, sim, reach, tile, ...).",
			float64(ss.TasksByKind[kind]), obs.A("kind", kind))
	}
	mw.Counter("spmt_sched_steals_total",
		"Tasks claimed from another worker's deque.", float64(ss.Steals))
	mw.Counter("spmt_sched_parks_total",
		"Worker idle-park transitions (blocking waits included).", float64(ss.Parks))
	mw.Counter("spmt_sched_unparks_total",
		"Worker wake-ups from an idle park.", float64(ss.Unparks))
	mw.Gauge("spmt_sched_queue_depth",
		"Tasks queued across the global queue and every deque.", float64(ss.QueueDepth))
	mw.Counter("spmt_sched_substitutes_spawned_total",
		"Substitute workers spawned to cover blocked primaries.", float64(ss.SubstitutesSpawned))
	mw.Gauge("spmt_sched_substitutes_alive",
		"Substitute workers currently live.", float64(ss.SubstitutesAlive))
	var busy float64
	for _, pw := range ss.PerWorker {
		busy += pw.BusyMS
	}
	mw.Counter("spmt_sched_worker_busy_seconds_total",
		"Cumulative task-execution time summed over primary workers.", busy/1000)

	writeTierCounter := func(name, help string, mem uint64, disk func(*engine.DiskStats) uint64) {
		mw.Counter(name, help, float64(mem), obs.A("tier", "mem"))
		if es.Disk != nil {
			mw.Counter(name, help, float64(disk(es.Disk)), obs.A("tier", "disk"))
		}
	}
	writeTierGauge := func(name, help string, mem int64, disk func(*engine.DiskStats) int64) {
		mw.Gauge(name, help, float64(mem), obs.A("tier", "mem"))
		if es.Disk != nil {
			mw.Gauge(name, help, float64(disk(es.Disk)), obs.A("tier", "disk"))
		}
	}
	writeTierCounter("spmt_store_hits_total", "Artifact store hits by tier.",
		es.Cache.Hits, func(d *engine.DiskStats) uint64 { return d.Hits })
	writeTierCounter("spmt_store_misses_total", "Artifact store misses by tier.",
		es.Cache.Misses, func(d *engine.DiskStats) uint64 { return d.Misses })
	writeTierCounter("spmt_store_evictions_total", "Artifact store evictions by tier.",
		es.Cache.Evictions, func(d *engine.DiskStats) uint64 { return d.Evictions })
	writeTierGauge("spmt_store_entries", "Artifacts resident by tier.",
		int64(es.Cache.Entries), func(d *engine.DiskStats) int64 { return int64(d.Entries) })
	writeTierGauge("spmt_store_bytes_resident", "Approximate resident bytes by tier.",
		es.Cache.BytesResident, func(d *engine.DiskStats) int64 { return d.BytesResident })
	writeTierGauge("spmt_store_bytes_capacity", "Byte budget by tier (0 = unbounded).",
		es.Cache.BytesCapacity, func(d *engine.DiskStats) int64 { return d.BytesCapacity })
	if es.Disk != nil {
		mw.Counter("spmt_store_disk_writes_total", "Artifact images written to disk.", float64(es.Disk.Writes))
		mw.Counter("spmt_store_disk_errors_total", "Disk tier write/read/decode errors.", float64(es.Disk.Errors))
		mw.Counter("spmt_store_disk_async_writes_total", "Writes accepted by the async queue.", float64(es.Disk.AsyncWrites))
		mw.Gauge("spmt_store_disk_queue_depth", "Writes queued for the background writer.", float64(es.Disk.QueueDepth))
		mw.Counter("spmt_store_disk_flushes_total", "Explicit flushes (Flush/Close) of the async queue.", float64(es.Disk.Flushes))
	}

	ts := s.tracer.Stats()
	mw.Counter("spmt_traces_started_total", "Traces created (fresh and adopted IDs).", float64(ts.Started))
	mw.Counter("spmt_trace_spans_dropped_total", "Spans discarded over the per-trace budget.", float64(ts.SpansDropped))
	mw.Gauge("spmt_traces_resident", "Traces held in the ring.", float64(ts.Resident))

	mw.Counter("spmt_http_panics_total",
		"Handler panics recovered by the HTTP barrier.", float64(s.httpPanics.Load()))

	// Admission gate (all-zero when disabled — the families stay
	// scrapeable either way).
	gs := s.gate.Stats()
	mw.Gauge("spmt_admit_capacity", "Admission gate weighted capacity (0 = gate disabled).", float64(gs.Capacity))
	mw.Gauge("spmt_admit_in_use", "Weight units held by admitted computes.", float64(gs.InUse))
	mw.Gauge("spmt_admit_waiting", "Requests queued for admission.", float64(gs.Waiting))
	mw.Counter("spmt_admit_admitted_total", "Cold computes admitted through the gate.", float64(gs.Admitted))
	mw.Counter("spmt_admit_bypassed_total", "Store-resolvable requests that bypassed the gate.", float64(gs.Bypassed))
	mw.Counter("spmt_admit_rejected_total", "Requests shed by the admission gate, by cause.",
		float64(gs.RejectedFull), obs.A("reason", "full"))
	mw.Counter("spmt_admit_rejected_total", "Requests shed by the admission gate, by cause.",
		float64(gs.RejectedDeadline), obs.A("reason", "deadline"))
	mw.Counter("spmt_admit_rejected_total", "Requests shed by the admission gate, by cause.",
		float64(gs.RejectedWait), obs.A("reason", "wait"))
	mw.Counter("spmt_admit_rejected_total", "Requests shed by the admission gate, by cause.",
		float64(gs.Canceled), obs.A("reason", "canceled"))
	s.admitDecisions.Write(mw, "spmt_admit_decisions_total",
		"Admission decisions by endpoint and decision.")

	// Speculative precomputation (present only with -speculate: the
	// families would be all-zero noise on a server that cannot move
	// them).
	if s.spec != nil {
		sp := s.spec.stats()
		mw.Counter("spmt_spec_predictions_total", "Successor predictions produced by the spawn-point predictor.", float64(sp.Predictions))
		mw.Counter("spmt_spec_launches_total", "Speculative artifact computations launched on idle workers.", float64(sp.Launches))
		mw.Counter("spmt_spec_hits_total", "Speculatively-launched artifacts later requested on the demand path.", float64(sp.Hits))
		mw.Counter("spmt_spec_withdrawn_total", "Predictions stood down for saturation or drain.", float64(sp.Withdrawn))
		mw.Counter("spmt_spec_skipped_total", "Predictions vetoed as already stored or not self-owned.", float64(sp.Skipped))
		mw.Counter("spmt_spec_errors_total", "Speculative launches that failed.", float64(sp.Errors))
		mw.Counter("spmt_spec_dropped_total", "Predictions shed by the bounded queue.", float64(sp.Dropped))
		mw.Gauge("spmt_spec_queue_depth", "Predictions queued for launch.", float64(sp.QueueDepth))
		mw.Gauge("spmt_spec_wasted_bytes", "Store bytes held by launched artifacts no demand request has asked for.", float64(sp.WastedBytes))
		mw.Gauge("spmt_spec_accuracy", "Hits/launches — the spawn-scheme accuracy analogue.", sp.Accuracy)
		mw.Gauge("spmt_spec_predictor_states", "Source keys tracked by the transition table.", float64(sp.Predictor.States))
		mw.Counter("spmt_spec_predictor_observations_total", "Transitions recorded by the predictor.", float64(sp.Predictor.Observations))
		mw.Counter("spmt_spec_predictor_evictions_total", "Predictor states dropped by the LRU bound.", float64(sp.Predictor.Evictions))
	}

	// Fault injector (testing only; absent in production processes).
	if s.fault != nil {
		fs := s.fault.Stats()
		for _, op := range sortedKeys(fs.Decisions) {
			mw.Counter("spmt_fault_decisions_total",
				"Fault-injection coin flips by operation.", float64(fs.Decisions[op]), obs.A("op", op))
		}
		for _, op := range sortedKeys(fs.Injected) {
			mw.Counter("spmt_fault_injected_total",
				"Faults actually injected by operation.", float64(fs.Injected[op]), obs.A("op", op))
		}
	}

	if s.cluster != nil {
		cs := s.cluster.Stats()
		mw.Gauge("spmt_shard_members", "Cluster member count.", float64(len(cs.Members)))
		mw.Counter("spmt_shard_proxied_total", "Requests forwarded to their owning shard.", float64(cs.Proxied))
		for _, reason := range sortedKeys(cs.ProxyFallbackReasons) {
			mw.Counter("spmt_shard_proxy_fallbacks_total",
				"Failed forwards answered by local compute, by cause.",
				float64(cs.ProxyFallbackReasons[reason]), obs.A("reason", reason))
		}
		mw.Counter("spmt_shard_batch_fanouts_total", "Sub-batches sent to owning shards.", float64(cs.BatchFanouts))
		for _, reason := range sortedKeys(cs.BatchFallbackReasons) {
			mw.Counter("spmt_shard_batch_fallback_specs_total",
				"Batch specs recomputed locally after a sub-batch failure, by cause.",
				float64(cs.BatchFallbackReasons[reason]), obs.A("reason", reason))
		}
		mw.Counter("spmt_shard_remote_fetches_total", "Artifact images fetched from owning shards.", float64(cs.RemoteFetches))
		mw.Counter("spmt_shard_fetch_misses_total", "Artifact fetches the owner could not serve.", float64(cs.FetchMisses))
		for _, reason := range sortedKeys(cs.FetchErrorReasons) {
			mw.Counter("spmt_shard_fetch_errors_total",
				"Artifact fetch failures by cause (transport vs decode).",
				float64(cs.FetchErrorReasons[reason]), obs.A("reason", reason))
		}
		mw.Counter("spmt_shard_artifacts_served_total", "Artifact images served to peers.", float64(cs.ArtifactsServed))

		mw.Gauge("spmt_shard_membership_epoch", "Membership version; bumps on every join/leave.", float64(cs.Epoch))
		mw.Gauge("spmt_shard_ring_version", "Effective-ring rebuilds (membership + suspicion changes).", float64(cs.RingVersion))
		mw.Gauge("spmt_shard_replicas", "Configured replication factor R.", float64(cs.Replicas))
		mw.Gauge("spmt_shard_suspects", "Members currently excluded from the effective ring.", float64(len(cs.Suspects)))
		mw.Counter("spmt_shard_probes_total", "Health probes sent to peers.", float64(cs.Probes))
		mw.Counter("spmt_shard_probe_failures_total", "Health probes that failed.", float64(cs.ProbeFailures))
		mw.Counter("spmt_shard_suspicions_total", "Peers suspected after K consecutive probe failures.", float64(cs.Suspicions))
		mw.Counter("spmt_shard_readmissions_total", "Suspected peers readmitted on probe success.", float64(cs.Readmissions))
		mw.Counter("spmt_shard_peer_retries_total", "Transiently-failed peer calls retried against the replica.", float64(cs.PeerRetries))
		mw.Counter("spmt_shard_peer_retry_successes_total", "Replica retries that answered.", float64(cs.PeerRetrySuccesses))

		rs := cs.Replication
		mw.Counter("spmt_shard_replication_pushed_total", "Artifact images pushed to replica owners.", float64(rs.Pushed))
		mw.Counter("spmt_shard_replication_push_errors_total", "Failed replication pushes.", float64(rs.PushErrors))
		mw.Counter("spmt_shard_replication_dropped_total", "Write-through pushes shed on a full queue.", float64(rs.Dropped))
		mw.Gauge("spmt_shard_replication_pending", "Write-through pushes queued or in flight.", float64(rs.Pending))
		mw.Counter("spmt_shard_replication_received_total", "Pushed artifact images stored from peers.", float64(rs.Received))
		mw.Counter("spmt_shard_replication_received_duplicate_total", "Pushed images for already-resident keys.", float64(rs.ReceivedDuplicate))
		mw.Counter("spmt_shard_replication_sweeps_total", "Completed re-replication sweeps.", float64(rs.Sweeps))
		mw.Counter("spmt_shard_replication_sweep_keys_total", "Store keys scanned by re-replication sweeps.", float64(rs.SweepKeys))
		mw.Counter("spmt_shard_replication_sweep_pushed_total", "Images pushed by re-replication sweeps.", float64(rs.SweepPushed))
		mw.Counter("spmt_shard_replication_sweep_errors_total", "Check/push failures during re-replication sweeps.", float64(rs.SweepErrors))
		mw.Gauge("spmt_shard_replication_last_sweep_epoch", "Membership epoch of the last completed sweep.", float64(rs.LastSweepEpoch))

		bs := cs.Breaker
		mw.Counter("spmt_breaker_opens_total", "Peer circuits opened after consecutive failures.", float64(bs.Opens))
		mw.Counter("spmt_breaker_closes_total", "Peer circuits closed by a successful half-open probe.", float64(bs.Closes))
		mw.Counter("spmt_breaker_fast_fails_total", "Peer calls fast-failed by an open circuit.", float64(bs.FastFails))
		mw.Counter("spmt_breaker_half_open_probes_total", "Trial calls admitted by half-open circuits.", float64(bs.HalfOpenProbes))
		mw.Gauge("spmt_breaker_open_circuits", "Peer circuits currently open.", float64(len(bs.Open)))
	}

	s.httpReqs.Write(mw, "spmt_http_requests_total", "HTTP requests by endpoint pattern and status code.")
	s.httpDur.Write(mw, "spmt_http_request_duration_seconds", "HTTP request latency by endpoint pattern.")

	out, err := mw.Bytes()
	if err != nil {
		// A name/label bug must fail the scrape loudly, not emit a
		// half-document Prometheus would half-ingest.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(out) //nolint:errcheck // client went away
}

// latencySnapshot converts the engine's millisecond histogram into the
// seconds-based exposition form.
func latencySnapshot(ls engine.LatencyStats) obs.HistSnapshot {
	bounds := make([]float64, len(ls.BucketsMS))
	for i, ms := range ls.BucketsMS {
		bounds[i] = ms / 1000
	}
	return obs.HistSnapshot{
		Bounds: bounds,
		Counts: ls.Counts,
		Sum:    ls.TotalMS / 1000,
		Count:  ls.Count,
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OpsHandler returns the separate ops listener's route table: metrics,
// health, and pprof. It is deliberately not part of Handler() — the
// profiling endpoints never belong on the client-facing port; /metrics
// appears on both so single-listener deployments can still be scraped.
//
// Health is split in two: /healthz is pure liveness (the process is up
// and serving — restart it if this fails), while /readyz is readiness
// (route traffic here?) and answers 503 while the node is draining for
// shutdown or its admission queue is saturated.
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n") //nolint:errcheck // client went away
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleReadyz answers the readiness probe: 200 while the node should
// receive traffic, 503 while it is draining for shutdown or its
// admission queue is saturated (new work would only be shed anyway).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n") //nolint:errcheck // client went away
	case s.gate.Saturated():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "saturated\n") //nolint:errcheck // client went away
	default:
		io.WriteString(w, "ready\n") //nolint:errcheck // client went away
	}
}

// Tracer exposes the server's trace ring (for tests and embedding).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }
