package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/expt"
	"repro/internal/shard"
	"repro/internal/workload"
)

// switchHandler lets us allocate httptest listeners (and learn their
// URLs) before the servers that need those URLs exist.
type switchHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *switchHandler) set(h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = h
}

func (s *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// clusterNode is one in-process shard: its own engine, its own temp
// store directory, its own HTTP listener.
type clusterNode struct {
	srv *Server
	ts  *httptest.Server
	url string
}

// startTestCluster spins n in-process shard servers, each over one
// temp store dir, all agreeing on the member list.
func startTestCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	urls := make([]string, n)
	switches := make([]*switchHandler, n)
	for i := range nodes {
		switches[i] = &switchHandler{}
		ts := httptest.NewServer(switches[i])
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{ts: ts, url: ts.URL}
		urls[i] = ts.URL
	}
	for i := range nodes {
		cl, err := shard.New(urls[i], urls, shard.Options{})
		if err != nil {
			t.Fatal(err)
		}
		disk, err := engine.OpenDiskTier(t.TempDir(), 0, codec.New())
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(engine.Options{
			Workers: 2,
			Disk:    disk,
			Remote:  shard.NewFetcher(cl, codec.New()),
		})
		t.Cleanup(eng.Close)
		nodes[i].srv = NewCluster(eng, cl)
		switches[i].set(nodes[i].srv.Handler())
	}
	return nodes
}

// clusterRequest is one deterministic API call of the parity suite.
type clusterRequest struct {
	name, method, path, body string
}

// parityRequests covers every deterministic endpoint, including an
// NDJSON batch whose sweep spans benchmarks and a batch with explicit
// specs (different policies land on different owners).
func parityRequests() []clusterRequest {
	return []clusterRequest{
		{"analyze", "POST", "/v1/analyze", `{"bench":"compress","size":"test"}`},
		{"pairs", "POST", "/v1/pairs", `{"bench":"ijpeg","size":"test","policy":"profile"}`},
		{"simulate-profile", "POST", "/v1/simulate", `{"bench":"compress","size":"test","policy":"profile","tus":16}`},
		{"simulate-heur", "POST", "/v1/simulate", `{"bench":"ijpeg","size":"test","policy":"heuristics","tus":4,"predictor":"stride"}`},
		{"batch-sweep", "POST", "/v1/batch", `{"size":"test","sweep":{"benches":["compress","ijpeg"],"tus":[1,4]}}`},
		{"batch-specs", "POST", "/v1/batch", `{"size":"test","specs":[{"bench":"ijpeg","policy":"none","tus":1},{"bench":"compress","tus":8},{"bench":"compress","tus":8}]}`},
		{"figure", "GET", "/v1/figures/fig2?size=test&bench=compress,ijpeg", ""},
	}
}

// doRequest returns (status, body) for one clusterRequest against a
// base URL.
func doRequest(t *testing.T, base string, req clusterRequest) (int, []byte) {
	t.Helper()
	var resp *http.Response
	var err error
	if req.method == "POST" {
		resp, err = http.Post(base+req.path, "application/json", strings.NewReader(req.body))
	} else {
		resp, err = http.Get(base + req.path)
	}
	if err != nil {
		t.Fatalf("%s %s: %v", req.method, req.path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read body: %v", req.method, req.path, err)
	}
	return resp.StatusCode, body
}

// referenceResponses runs the parity suite against a fresh standalone
// single-node server — the byte-level ground truth.
func referenceResponses(t *testing.T) map[string][]byte {
	t.Helper()
	srv := New(engine.New(engine.Options{Workers: 2}))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ref := make(map[string][]byte)
	for _, req := range parityRequests() {
		status, body := doRequest(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("reference %s: status %d: %s", req.name, status, body)
		}
		ref[req.name] = body
	}
	return ref
}

// TestClusterByteParity is the acceptance test: an N-shard in-process
// cluster answers every /v1/* request byte-identical to a single-node
// server — for N ∈ {1, 2, 4} and through ANY entry node, including the
// merged NDJSON batch stream.
func TestClusterByteParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node parity suite is slow")
	}
	ref := referenceResponses(t)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			nodes := startTestCluster(t, n)
			for entry, node := range nodes {
				for _, req := range parityRequests() {
					status, body := doRequest(t, node.url, req)
					if status != http.StatusOK {
						t.Fatalf("entry %d, %s: status %d: %s", entry, req.name, status, body)
					}
					if !bytes.Equal(body, ref[req.name]) {
						t.Errorf("entry %d, %s: response differs from single-node run\n got: %.300s\nwant: %.300s",
							entry, req.name, body, ref[req.name])
					}
				}
			}
			if n < 2 {
				return
			}
			// With >= 2 members and every node used as an entry point,
			// some requests must have crossed the ring.
			var proxied, fanouts uint64
			for _, node := range nodes {
				st := node.srv.Cluster().Stats()
				proxied += st.Proxied
				fanouts += st.BatchFanouts
			}
			if proxied == 0 {
				t.Error("no request was proxied to its owner in a multi-node cluster")
			}
			if fanouts == 0 {
				t.Error("no batch sub-request was fanned out in a multi-node cluster")
			}
		})
	}
}

// TestClusterStatsViews checks the /v1/stats shard and cluster
// sections: every member visible, aggregate counters summing, and the
// local scope staying recursion-free.
func TestClusterStatsViews(t *testing.T) {
	nodes := startTestCluster(t, 3)
	// Generate a little cross-shard traffic first.
	doRequest(t, nodes[0].url, clusterRequest{"sim", "POST", "/v1/simulate",
		`{"bench":"compress","size":"test","tus":4}`})

	var st statsResponse
	if resp := getJSON(t, nodes[0].url+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if st.Shard == nil {
		t.Fatal("peer-mode stats must include a shard section")
	}
	if st.Shard.Self != nodes[0].url || len(st.Shard.Members) != 3 {
		t.Errorf("shard view: self=%q members=%v", st.Shard.Self, st.Shard.Members)
	}
	if st.Cluster == nil {
		t.Fatal("default scope must include the cluster view")
	}
	if st.Cluster.Aggregate.Members != 3 || st.Cluster.Aggregate.Reachable != 3 {
		t.Errorf("aggregate members/reachable = %d/%d, want 3/3",
			st.Cluster.Aggregate.Members, st.Cluster.Aggregate.Reachable)
	}
	if len(st.Cluster.Nodes) != 3 {
		t.Errorf("cluster view has %d nodes, want 3", len(st.Cluster.Nodes))
	}
	var sumReq uint64
	for url, ns := range st.Cluster.Nodes {
		if !ns.Reachable {
			t.Errorf("node %s unreachable: %s", url, ns.Error)
		}
		sumReq += ns.Requests
	}
	if st.Cluster.Aggregate.Requests != sumReq {
		t.Errorf("aggregate requests = %d, want sum %d", st.Cluster.Aggregate.Requests, sumReq)
	}

	var local statsResponse
	if resp := getJSON(t, nodes[1].url+"/v1/stats?scope=local", &local); resp.StatusCode != http.StatusOK {
		t.Fatalf("local stats status = %d", resp.StatusCode)
	}
	if local.Cluster != nil {
		t.Error("scope=local must omit the cluster fan-out")
	}
	if local.Shard == nil {
		t.Error("scope=local must keep the node's shard view")
	}
}

// TestArtifactExchangeEndpoint drives the shard-exchange endpoint
// directly: computed artifacts are served as decodable images, misses
// and bad requests are clean errors.
func TestArtifactExchangeEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/simulate", `{"bench":"compress","size":"test","tus":4}`)

	// The bench chain is resident now; its emu artifact must serve.
	resp, err := http.Get(ts.URL + "/v1/artifacts?key=" + "emu%2Fcompress%2Ftest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact status = %d", resp.StatusCode)
	}
	kind := resp.Header.Get(shard.ArtifactKindHeader)
	img, _ := io.ReadAll(resp.Body)
	if kind == "" || len(img) == 0 {
		t.Fatalf("artifact response: kind=%q, %d bytes", kind, len(img))
	}
	if _, err := codec.New().Decode(kind, img); err != nil {
		t.Fatalf("served artifact image does not decode: %v", err)
	}
	if _, ok := srv.Engine().Peek("emu/compress/test"); !ok {
		t.Error("Peek must see the artifact the endpoint served")
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/artifacts?key=emu%2Fnonesuch%2Ftest", http.StatusNotFound},
		{"/v1/artifacts", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestPeekImageServesDiskImage pins the exchange endpoint's cheap
// path: a disk-resident artifact is served as its stored image —
// CRC-verified, not decoded — and that image decodes on the receiving
// side.
func TestPeekImageServesDiskImage(t *testing.T) {
	nodes := startTestCluster(t, 1)
	status, body := doRequest(t, nodes[0].url, clusterRequest{"sim", "POST", "/v1/simulate",
		`{"bench":"compress","size":"test","tus":4}`})
	if status != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", status, body)
	}
	eng := nodes[0].srv.Engine()
	eng.Disk().Flush() // drain async writes so the image is on disk

	kind, data, ok := eng.PeekImage("emu/compress/test")
	if !ok {
		t.Fatal("PeekImage missed a flushed disk-resident artifact")
	}
	if _, err := codec.New().Decode(kind, data); err != nil {
		t.Fatalf("disk image (%s, %d bytes) does not decode: %v", kind, len(data), err)
	}
	if _, _, ok := eng.PeekImage("emu/nonesuch/test"); ok {
		t.Error("PeekImage must miss absent keys")
	}
}

// TestRemoteArtifactTransfer proves shards exchange artifacts instead
// of recomputing. Construction: /v1/pairs routes to the spawn table's
// owner, which computes and keeps the table; a /v1/simulate needing
// that table but owned by the OTHER node must then pull the table
// image from its owner rather than re-running core.Select.
func TestRemoteArtifactTransfer(t *testing.T) {
	nodes := startTestCluster(t, 2)
	cl := nodes[0].srv.Cluster()

	// Find a benchmark whose table key and sim key land on different
	// members (with 8 benchmarks and 2 nodes this exists essentially
	// always; the loop keeps the test honest about the precondition).
	var bench string
	var simSpec expt.SimSpec
	for _, name := range workload.Benchmarks {
		tabKey, err := expt.TableKey(name, workload.SizeTest, "profile")
		if err != nil {
			t.Fatal(err)
		}
		sp := expt.SimSpec{Bench: name, Policy: "profile", TUs: 16}
		if cl.Owner(tabKey) != cl.Owner(expt.SimKey(workload.SizeTest, sp)) {
			bench, simSpec = name, sp
			break
		}
	}
	if bench == "" {
		t.Skip("every benchmark's table and sim keys hash to one owner")
	}

	status, body := doRequest(t, nodes[0].url, clusterRequest{"pairs", "POST", "/v1/pairs",
		fmt.Sprintf(`{"bench":%q,"size":"test","policy":"profile"}`, bench)})
	if status != http.StatusOK {
		t.Fatalf("pairs status %d: %s", status, body)
	}
	status, body = doRequest(t, nodes[0].url, clusterRequest{"sim", "POST", "/v1/simulate",
		fmt.Sprintf(`{"bench":%q,"size":"test","policy":"profile","tus":%d}`, bench, simSpec.TUs)})
	if status != http.StatusOK {
		t.Fatalf("simulate status %d: %s", status, body)
	}

	var fetched, served uint64
	for _, node := range nodes {
		st := node.srv.Cluster().Stats()
		fetched += st.RemoteFetches
		served += st.ArtifactsServed
	}
	if fetched == 0 || served == 0 {
		t.Errorf("table artifact did not cross the wire: fetched=%d served=%d", fetched, served)
	}
}
