package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/expt"
	"repro/internal/obs"
	"repro/internal/workload"
)

// walkTree visits every span of a rendered trace tree in display
// order.
func walkTree(roots []*obs.SpanJSON, f func(*obs.SpanJSON)) {
	for _, sp := range roots {
		f(sp)
		walkTree(sp.Children, f)
	}
}

// findSpan returns the first span (in display order) matching pred.
func findSpan(roots []*obs.SpanJSON, pred func(*obs.SpanJSON) bool) *obs.SpanJSON {
	var found *obs.SpanJSON
	walkTree(roots, func(sp *obs.SpanJSON) {
		if found == nil && pred(sp) {
			found = sp
		}
	})
	return found
}

func spanNamed(name string) func(*obs.SpanJSON) bool {
	return func(sp *obs.SpanJSON) bool { return sp.Name == name }
}

// fetchTrace polls GET /v1/traces/{id} until done reports the stitched
// tree converged: the handler's root span ends (and records) only
// after the response body the client saw was written, so the first
// read can legitimately catch the trace mid-assembly.
func fetchTrace(t *testing.T, base, id string, done func(*obs.TraceJSON) bool) *obs.TraceJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last *obs.TraceJSON
	for time.Now().Before(deadline) {
		var tj obs.TraceJSON
		if resp := getJSON(t, base+"/v1/traces/"+id, &tj); resp.StatusCode == http.StatusOK {
			if done(&tj) {
				return &tj
			}
			last = &tj
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("trace %s never converged; last view: %+v", id, last)
	return nil
}

// TestTraceProxiedSimulate drives a /v1/simulate owned by the OTHER
// node through an entry node and asserts the single stitched trace:
// the entry's route span names the owner, and grafted under it is the
// owner's own span subtree containing the engine execution.
func TestTraceProxiedSimulate(t *testing.T) {
	nodes := startTestCluster(t, 2)
	cl := nodes[0].srv.Cluster()

	var bench, simKey string
	for _, name := range workload.Benchmarks {
		key := expt.SimKey(workload.SizeTest, expt.SimSpec{Bench: name, Policy: "profile", TUs: 4})
		if cl.Owner(key) == nodes[1].url {
			bench, simKey = name, key
			break
		}
	}
	if bench == "" {
		t.Skip("every benchmark's sim key hashes to the entry node")
	}

	resp, body := postJSON(t, nodes[0].url+"/v1/simulate",
		fmt.Sprintf(`{"bench":%q,"size":"test","policy":"profile","tus":4}`, bench))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(obs.TraceHeader)
	if id == "" {
		t.Fatalf("response must carry %s", obs.TraceHeader)
	}

	tj := fetchTrace(t, nodes[0].url, id, func(tj *obs.TraceJSON) bool {
		route := findSpan(tj.Roots, spanNamed("route"))
		return route != nil && route.Attrs["decision"] == "proxied" &&
			findSpan(route.Children, func(sp *obs.SpanJSON) bool { return sp.Node == nodes[1].url }) != nil &&
			findSpan(route.Children, spanNamed("exec sim")) != nil
	})

	if tj.ID != id || tj.Node != nodes[0].url {
		t.Errorf("trace id/node = %s/%s, want %s/%s", tj.ID, tj.Node, id, nodes[0].url)
	}
	root := findSpan(tj.Roots, spanNamed("http POST /v1/simulate"))
	if root == nil || root.Node != nodes[0].url {
		t.Fatalf("entry root span missing or mislabeled: %+v", tj.Roots)
	}
	route := findSpan(root.Children, spanNamed("route"))
	if route == nil {
		t.Fatal("no route span under the entry http span")
	}
	if route.Attrs["owner"] != nodes[1].url || route.Attrs["peer"] != nodes[1].url ||
		route.Attrs["key"] != simKey {
		t.Errorf("route attrs = %v, want owner/peer %s and key %s", route.Attrs, nodes[1].url, simKey)
	}
	// The grafted subtree: the owner's http root, carrying the owning
	// node's name, with the engine execution inside it. (The stitcher
	// may graft further roots — e.g. artifact GETs served under the
	// same trace — so the graft is found by name, not position.)
	graft := findSpan(route.Children, func(sp *obs.SpanJSON) bool {
		return sp.Node == nodes[1].url && sp.Name == "http POST /v1/simulate"
	})
	if graft == nil {
		t.Fatal("owner's http span subtree was not stitched under the route span")
	}
	exec := findSpan([]*obs.SpanJSON{graft}, func(sp *obs.SpanJSON) bool {
		return sp.Name == "exec sim" && sp.Attrs["key"] == simKey
	})
	if exec == nil {
		t.Fatal("owner's subtree has no exec span for the sim key")
	}
	if exec.Attrs["tier"] == "" {
		t.Errorf("exec span records no resolution tier: %v", exec.Attrs)
	}
}

// TestTraceFannedBatch drives a /v1/batch whose specs span both nodes
// and asserts one stitched trace: a fanout span naming the peer shard,
// with the peer's sub-batch subtree grafted under it, plus the locally
// owned spec's execution in the entry's own tree.
func TestTraceFannedBatch(t *testing.T) {
	nodes := startTestCluster(t, 2)
	cl := nodes[0].srv.Cluster()

	key := func(name string) string {
		return expt.SimKey(workload.SizeTest, expt.SimSpec{Bench: name, Policy: "profile", TUs: 2})
	}
	var local, remote string
	for _, name := range workload.Benchmarks {
		switch cl.Owner(key(name)) {
		case nodes[0].url:
			if local == "" {
				local = name
			}
		case nodes[1].url:
			if remote == "" {
				remote = name
			}
		}
	}
	if local == "" || remote == "" {
		t.Skip("batch specs cannot be split across both nodes")
	}

	resp, body := postJSON(t, nodes[0].url+"/v1/batch", fmt.Sprintf(
		`{"size":"test","specs":[{"bench":%q,"policy":"profile","tus":2},{"bench":%q,"policy":"profile","tus":2}]}`,
		local, remote))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if lines := strings.Count(strings.TrimSpace(string(body)), "\n") + 1; lines != 2 {
		t.Fatalf("batch returned %d NDJSON lines, want 2", lines)
	}
	id := resp.Header.Get(obs.TraceHeader)
	if id == "" {
		t.Fatalf("response must carry %s", obs.TraceHeader)
	}

	isBatchGraft := func(sp *obs.SpanJSON) bool {
		return sp.Node == nodes[1].url && sp.Name == "http POST /v1/batch"
	}
	tj := fetchTrace(t, nodes[0].url, id, func(tj *obs.TraceJSON) bool {
		fanout := findSpan(tj.Roots, spanNamed("fanout"))
		return fanout != nil &&
			findSpan(fanout.Children, isBatchGraft) != nil &&
			findSpan(fanout.Children, func(sp *obs.SpanJSON) bool {
				return sp.Name == "exec sim" && sp.Attrs["key"] == key(remote)
			}) != nil &&
			findSpan(tj.Roots, func(sp *obs.SpanJSON) bool {
				return sp.Name == "exec sim" && sp.Attrs["key"] == key(local)
			}) != nil
	})

	fanout := findSpan(tj.Roots, spanNamed("fanout"))
	if fanout.Attrs["owner"] != nodes[1].url || fanout.Attrs["peer"] != nodes[1].url ||
		fanout.Attrs["specs"] != "1" {
		t.Errorf("fanout attrs = %v, want owner/peer %s over 1 spec", fanout.Attrs, nodes[1].url)
	}
	if fanout.Attrs["fallback_specs"] != "" {
		t.Errorf("healthy fan-out recorded a fallback: %v", fanout.Attrs)
	}
	graft := findSpan(fanout.Children, isBatchGraft)
	if findSpan([]*obs.SpanJSON{graft}, func(sp *obs.SpanJSON) bool {
		return sp.Name == "exec sim" && sp.Attrs["key"] == key(remote)
	}) == nil {
		t.Error("peer's batch subtree has no exec span for the remote-owned spec")
	}
}

// expoEntry is one parsed series line of an exposition document.
type expoEntry struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	expoNameRe  = regexp.MustCompile(`^spmt_[a-z][a-z0-9_]*$`)
	expoLabelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// parseExposition strictly parses a Prometheus text-format document:
// every family must be HELP'd and TYPE'd before its series, families
// must be consecutive and spmt_-prefixed snake_case, histogram buckets
// must be cumulative with the +Inf bucket equal to _count. Returns the
// series (full name with label set, exactly as serialized) → value.
func parseExposition(t *testing.T, doc string) map[string]float64 {
	t.Helper()
	series := make(map[string]float64)
	types := make(map[string]string)
	var entries []expoEntry
	var current string // family of the series block being read

	// family resolves a series name to its family, peeling histogram
	// sample suffixes only when the family is a histogram.
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name && types[base] == "histogram" {
				return base
			}
		}
		return name
	}

	for ln, line := range strings.Split(doc, "\n") {
		lno := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", lno, line)
			}
			name := parts[2]
			if !expoNameRe.MatchString(name) {
				t.Fatalf("line %d: family %q is not spmt_-prefixed snake_case", lno, name)
			}
			if parts[1] == "TYPE" {
				if _, dup := types[name]; dup {
					t.Fatalf("line %d: duplicate TYPE for %q", lno, name)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("line %d: bad type %q", lno, parts[3])
				}
				types[name] = parts[3]
				current = name
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed series %q", lno, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", lno, valStr, err)
		}
		name := key
		labels := map[string]string{}
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set %q", lno, key)
			}
			name = key[:i]
			for _, lab := range strings.Split(key[i+1:len(key)-1], ",") {
				m := expoLabelRe.FindStringSubmatch(lab)
				if m == nil {
					t.Fatalf("line %d: malformed label %q", lno, lab)
				}
				labels[m[1]] = m[2]
			}
		}
		fam := family(name)
		if _, ok := types[fam]; !ok {
			t.Fatalf("line %d: series %q has no TYPE header", lno, key)
		}
		if fam != current {
			t.Fatalf("line %d: series %q is not consecutive with its family (current %q)", lno, key, current)
		}
		if _, dup := series[key]; dup {
			t.Fatalf("line %d: duplicate series %q", lno, key)
		}
		series[key] = val
		entries = append(entries, expoEntry{name: name, labels: labels, value: val})
	}

	// Histogram shape: per label set, le values ascending, buckets
	// cumulative, +Inf bucket == _count.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		type hist struct {
			lastLe   float64
			lastVal  float64
			inf      float64
			count    float64
			hasInf   bool
			hasCount bool
		}
		groups := make(map[string]*hist)
		gkey := func(labels map[string]string) string {
			var ks []string
			for k, v := range labels {
				if k != "le" {
					ks = append(ks, k+"="+v)
				}
			}
			sort.Strings(ks)
			return "{" + strings.Join(ks, ",") + "}"
		}
		get := func(g string) *hist {
			if groups[g] == nil {
				groups[g] = &hist{lastLe: math.Inf(-1)}
			}
			return groups[g]
		}
		for _, e := range entries {
			switch e.name {
			case fam + "_bucket":
				h := get(gkey(e.labels))
				if e.labels["le"] == "+Inf" {
					h.inf, h.hasInf = e.value, true
					continue
				}
				le, err := strconv.ParseFloat(e.labels["le"], 64)
				if err != nil {
					t.Fatalf("%s: bad le %q", fam, e.labels["le"])
				}
				if le <= h.lastLe {
					t.Errorf("%s %s: le %g out of order after %g", fam, gkey(e.labels), le, h.lastLe)
				}
				if e.value < h.lastVal {
					t.Errorf("%s %s: bucket le=%g not cumulative (%g < %g)", fam, gkey(e.labels), le, e.value, h.lastVal)
				}
				h.lastLe, h.lastVal = le, e.value
			case fam + "_count":
				h := get(gkey(e.labels))
				h.count, h.hasCount = e.value, true
			}
		}
		for g, h := range groups {
			if !h.hasInf || !h.hasCount {
				t.Errorf("%s %s: missing +Inf bucket or _count", fam, g)
				continue
			}
			if h.inf < h.lastVal || h.inf != h.count {
				t.Errorf("%s %s: +Inf bucket %g vs last %g and count %g", fam, g, h.inf, h.lastVal, h.count)
			}
		}
	}
	return series
}

// TestMetricsExposition scrapes /metrics after real traffic, strictly
// parses the exposition, and cross-checks the load-bearing series
// against the /v1/stats counters they must mirror.
func TestMetricsExposition(t *testing.T) {
	nodes := startTestCluster(t, 1)
	base := nodes[0].url

	// Traffic: a cold simulate (executes), the same simulate again
	// (memory hit), and an analyze.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, base+"/v1/simulate", `{"bench":"compress","size":"test","tus":4}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
		}
	}
	postJSON(t, base+"/v1/analyze", `{"bench":"compress","size":"test"}`)
	nodes[0].srv.Engine().Disk().Flush() // settle async writes so queue gauges are stable

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	doc, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := parseExposition(t, string(doc))

	var st statsResponse
	if resp := getJSON(t, base+"/v1/stats?scope=local", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}

	// No engine/shard traffic ran between the scrape and the stats
	// snapshot, so these totals must agree exactly.
	for key, want := range map[string]float64{
		"spmt_engine_jobs_executed_total":     float64(st.Engine.Executed),
		"spmt_engine_jobs_deduped_total":      float64(st.Engine.Deduped),
		"spmt_engine_workers":                 float64(st.Engine.Workers),
		`spmt_store_hits_total{tier="mem"}`:   float64(st.Engine.Cache.Hits),
		`spmt_store_misses_total{tier="mem"}`: float64(st.Engine.Cache.Misses),
		`spmt_store_hits_total{tier="disk"}`:  float64(st.Engine.Disk.Hits),
		"spmt_store_disk_writes_total":        float64(st.Engine.Disk.Writes),
		"spmt_store_disk_async_writes_total":  float64(st.Engine.Disk.AsyncWrites),
		"spmt_shard_members":                  float64(len(st.Shard.Members)),
		"spmt_shard_proxied_total":            float64(st.Shard.Proxied),
		"spmt_shard_artifacts_served_total":   float64(st.Shard.ArtifactsServed),
	} {
		got, ok := series[key]
		if !ok {
			t.Errorf("series %s missing from the exposition", key)
			continue
		}
		if got != want {
			t.Errorf("%s = %g, /v1/stats says %g", key, got, want)
		}
	}
	if series["spmt_engine_jobs_executed_total"] == 0 {
		t.Error("no engine executions recorded after real traffic")
	}
	if series[`spmt_store_hits_total{tier="mem"}`] == 0 {
		t.Error("repeat simulate did not record a memory-tier hit")
	}
	if n := series[`spmt_engine_job_duration_seconds_count{kind="sim"}`]; n < 1 {
		t.Errorf("sim latency histogram count = %g, want >= 1", n)
	}
	if n := series[`spmt_http_requests_total{endpoint="/v1/simulate",code="200"}`]; n != 2 {
		t.Errorf("http counter for /v1/simulate = %g, want 2", n)
	}
	if n := series[`spmt_http_request_duration_seconds_count{endpoint="/v1/simulate"}`]; n != 2 {
		t.Errorf("http latency count for /v1/simulate = %g, want 2", n)
	}
	if series["spmt_traces_started_total"] < 3 {
		t.Errorf("traces_started = %g, want >= 3", series["spmt_traces_started_total"])
	}

	// A second scrape must now expose the first scrape's own request.
	resp2, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	doc2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	series2 := parseExposition(t, string(doc2))
	if n := series2[`spmt_http_requests_total{endpoint="/metrics",code="200"}`]; n < 1 {
		t.Errorf("second scrape does not count the first: %g", n)
	}
}

// TestTraceEndpoints covers the listing and the error paths: recent
// traces appear newest-first with roots named, unknown IDs 404, bad
// limits 400, and trace-query requests never trace themselves.
func TestTraceEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/analyze", `{"bench":"compress","size":"test"}`)

	var list tracesResponse
	if resp := getJSON(t, ts.URL+"/v1/traces", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("traces status %d", resp.StatusCode)
	}
	if len(list.Traces) != 1 {
		t.Fatalf("listing has %d traces, want exactly the analyze (got %+v)", len(list.Traces), list.Traces)
	}
	sum := list.Traces[0]
	if sum.Root != "http POST /v1/analyze" || sum.Spans == 0 {
		t.Errorf("summary = %+v, want the analyze root with spans", sum)
	}

	var tj obs.TraceJSON
	if resp := getJSON(t, ts.URL+"/v1/traces/"+sum.ID, &tj); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d", resp.StatusCode)
	}
	if findSpan(tj.Roots, func(sp *obs.SpanJSON) bool { return strings.HasPrefix(sp.Name, "exec ") }) == nil {
		t.Error("analyze trace reaches no engine exec span")
	}

	for path, want := range map[string]int{
		"/v1/traces/nonesuch": http.StatusNotFound,
		"/v1/traces?limit=x":  http.StatusBadRequest,
		"/v1/traces?limit=0":  http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestOpsHandler covers the separate ops listener: health, metrics,
// and the pprof index all answer.
func TestOpsHandler(t *testing.T) {
	srv, api := newTestServer(t)
	postJSON(t, api.URL+"/v1/analyze", `{"bench":"compress","size":"test"}`)
	ops := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ops.Close)

	resp, err := http.Get(ops.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	series := parseExposition(t, string(doc))
	if series["spmt_engine_jobs_executed_total"] == 0 {
		t.Error("ops /metrics does not reflect API traffic")
	}

	resp, err = http.Get(ops.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}

	// The ops mux serves no API: a /v1 path must 404, keeping the
	// profiling port safely unroutable to compute.
	resp, err = http.Get(ops.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ops /v1/stats status %d, want 404", resp.StatusCode)
	}
}
