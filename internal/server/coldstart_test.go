package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/codec"
)

// diskServer builds a server whose engine persists artifacts under
// dir, warming the memory tier from whatever a previous instance left
// there — the -store-dir wiring of cmd/spmt-server.
func diskServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	dt, err := engine.OpenDiskTier(dir, 0, codec.New())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 2, Disk: dt})
	eng.WarmFromDisk()
	srv := New(eng)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestColdStartServesFromDiskStore is the PR's acceptance test: a
// server restarted on a warm store directory answers a previously-seen
// /v1/simulate and a previously-seen /v1/batch grid without executing
// a single emulation (or simulation) job, and the answers are
// byte-identical to the first run's.
func TestColdStartServesFromDiskStore(t *testing.T) {
	dir := t.TempDir()
	simBody := `{"bench":"compress","size":"test","policy":"profile","tus":16}`
	batchBody := `{"size":"test","sweep":{"benches":["compress"],"policies":["none","profile"],"tus":[1,8]}}`

	// First life: compute everything, persisting via write-through.
	srv1, ts1 := diskServer(t, dir)
	resp, simFirst := postJSON(t, ts1.URL+"/v1/simulate", simBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status = %d: %s", resp.StatusCode, simFirst)
	}
	bresp, batchFirst := postJSON(t, ts1.URL+"/v1/batch", batchBody)
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", bresp.StatusCode)
	}
	// Shut the first life down the way the server binary does: Close
	// drains the async write-through queue, so everything the run
	// computed is durable before the "restart".
	srv1.Engine().Close()
	firstStats := srv1.Engine().Stats()
	if firstStats.Latency["emu"].Count == 0 {
		t.Fatal("first run executed no emulation jobs; test is vacuous")
	}
	if firstStats.Disk == nil || firstStats.Disk.Writes == 0 {
		t.Fatalf("first run wrote nothing to disk: %+v", firstStats.Disk)
	}
	if firstStats.Disk.AsyncWrites == 0 {
		t.Fatalf("write-through did not go through the async queue: %+v", firstStats.Disk)
	}
	if firstStats.Disk.QueueDepth != 0 {
		t.Fatalf("Close left %d writes queued", firstStats.Disk.QueueDepth)
	}
	ts1.Close()

	// Second life: a fresh process over the same directory.
	srv2, ts2 := diskServer(t, dir)
	resp2, simSecond := postJSON(t, ts2.URL+"/v1/simulate", simBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restarted simulate status = %d: %s", resp2.StatusCode, simSecond)
	}
	if string(simFirst) != string(simSecond) {
		t.Errorf("simulate response changed across restart:\n%s\nvs\n%s", simFirst, simSecond)
	}
	bresp2, batchSecond := postJSON(t, ts2.URL+"/v1/batch", batchBody)
	if bresp2.StatusCode != http.StatusOK {
		t.Fatalf("restarted batch status = %d", bresp2.StatusCode)
	}
	if string(batchFirst) != string(batchSecond) {
		t.Errorf("batch NDJSON changed across restart:\n%s\nvs\n%s", batchFirst, batchSecond)
	}

	// A table that was never built in the first life: core.Select now
	// runs over the disk-promoted graph and reach artifacts (decoded
	// copies, not the original pointers) and must accept them.
	presp, pbody := postJSON(t, ts2.URL+"/v1/pairs",
		`{"bench":"compress","size":"test","policy":"profile-indep"}`)
	if presp.StatusCode != http.StatusOK {
		t.Errorf("fresh table over promoted artifacts: status %d: %s", presp.StatusCode, pbody)
	}

	st := srv2.Engine().Stats()
	// The heavy pipeline stages never re-ran: the store answered them.
	// ("table" is exempt above via a deliberately fresh policy, so only
	// previously-seen kinds are asserted zero.)
	for _, kind := range []string{"emu", "program", "cfg", "reach", "sim", "heur"} {
		if n := st.Latency[kind].Count; n != 0 {
			t.Errorf("restarted server executed %d %q jobs, want 0", n, kind)
		}
	}
	if st.Cache.Hits == 0 {
		t.Error("restarted server recorded no store hits")
	}
	if st.Disk == nil {
		t.Fatal("restarted server reports no disk tier in stats")
	}
	if st.Disk.Hits == 0 {
		t.Error("warm boot read nothing from disk")
	}
}

// TestStatsExposesDiskTier: /v1/stats carries per-tier counters when a
// disk tier is configured, and omits the disk block when memory-only.
func TestStatsExposesDiskTier(t *testing.T) {
	_, tsMem := newTestServer(t)
	var memStats statsResponse
	getJSON(t, tsMem.URL+"/v1/stats", &memStats)
	if memStats.Engine.Disk != nil {
		t.Error("memory-only engine must not report a disk tier")
	}

	srvDisk, tsDisk := diskServer(t, t.TempDir())
	resp, _ := postJSON(t, tsDisk.URL+"/v1/simulate",
		`{"bench":"compress","size":"test","policy":"none","tus":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("simulate failed")
	}
	// Writes are asynchronous now; drain before asserting counters.
	srvDisk.Engine().Disk().Flush()
	var st statsResponse
	getJSON(t, tsDisk.URL+"/v1/stats", &st)
	if st.Engine.Disk == nil {
		t.Fatal("disk tier missing from /v1/stats")
	}
	if st.Engine.Disk.Writes == 0 || st.Engine.Disk.Entries == 0 || st.Engine.Disk.BytesResident == 0 {
		t.Errorf("disk tier stats look empty: %+v", st.Engine.Disk)
	}
	if st.Engine.Disk.AsyncWrites == 0 || st.Engine.Disk.Flushes == 0 {
		t.Errorf("async writer counters missing from /v1/stats: %+v", st.Engine.Disk)
	}
	if st.Engine.Disk.QueueDepth != 0 {
		t.Errorf("queue_depth = %d after flush, want 0", st.Engine.Disk.QueueDepth)
	}
}
