// Re-replication sweep: after any membership change (join, leave,
// adopted gossip) or a readmission, every node scans its own disk
// tier's key index — header-only, no payload decode — and pushes each
// artifact to any member of the key's current owner set that lacks it.
// Two effects from one mechanism: the moved arc (~1/N of keys)
// migrates to a joining node, and replicas thinned by a departure or
// outage are rebuilt to R copies. A check-then-push round trip bounds
// redundant bytes: converged keys cost one 204 per target and no
// payload.
//
// Suspicion alone does NOT trigger a sweep: a wobbling peer that
// flaps in and out of the effective ring should not start data
// migration — its keys are still served by the surviving replica —
// but its READMISSION does, repairing whatever write-through pushes it
// missed while out.
package server

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"repro/internal/shard"
)

// sweepCallTimeout bounds one check or push within a sweep (the fetch
// client's own timeout also applies; this keeps a sweep from wedging
// on a peer that dies mid-sweep).
const sweepCallTimeout = 30 * time.Second

// defaultReplRepairInterval paces the drop-repair tick (see
// Config.ReplRepairInterval).
const defaultReplRepairInterval = 2 * time.Second

// sweeper serialises re-replication sweeps: concurrent triggers
// coalesce into one "dirty" re-run, so a gossip storm costs at most
// one extra sweep, and Close waits for the active sweep to finish.
type sweeper struct {
	s *Server

	mu     sync.Mutex
	active bool
	dirty  bool
	closed bool
	wg     sync.WaitGroup

	// stopRepair ends the drop-repair tick goroutine (nil when the
	// server runs without a cluster or disk tier).
	stopRepair chan struct{}
}

// trigger schedules a sweep (or marks the running one dirty).
func (sw *sweeper) trigger() {
	if sw.s.cluster == nil || sw.s.eng.Disk() == nil {
		return
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed {
		return
	}
	if sw.active {
		sw.dirty = true
		return
	}
	sw.active = true
	sw.wg.Add(1)
	go sw.loop()
}

// close stops the repair tick and new sweeps, then waits for the
// active sweep.
func (sw *sweeper) close() {
	sw.mu.Lock()
	sw.closed = true
	stop := sw.stopRepair
	sw.stopRepair = nil
	sw.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	sw.wg.Wait()
}

func (sw *sweeper) loop() {
	defer sw.wg.Done()
	for {
		sw.s.runSweep()
		sw.mu.Lock()
		if !sw.dirty || sw.closed {
			sw.active = false
			sw.mu.Unlock()
			return
		}
		sw.dirty = false
		sw.mu.Unlock()
	}
}

// runSweep performs one pass over the local disk index. The membership
// epoch is captured FIRST: if the view moves mid-sweep, the stats
// record the epoch the sweep was consistent with, and the change that
// moved it triggers another sweep anyway.
func (s *Server) runSweep() {
	cl := s.cluster
	disk := s.eng.Disk()
	epoch := cl.Epoch()
	keys := disk.Keys()
	var scanned, pushed, skipped, errors uint64
	ctx := context.Background()
	for _, key := range keys {
		owners := cl.ReplicaSet(key)
		var targets []string
		for _, n := range owners {
			if n != cl.Self() {
				targets = append(targets, n)
			}
		}
		if len(targets) == 0 {
			continue
		}
		scanned++
		// The encoded image is loaded at most once per key, and only
		// after some target actually needs it.
		var kind string
		var data []byte
		for _, t := range targets {
			cctx, cancel := context.WithTimeout(ctx, sweepCallTimeout)
			has, err := cl.CheckArtifact(cctx, t, key)
			cancel()
			if err != nil {
				errors++
				continue
			}
			if has {
				skipped++
				continue
			}
			if data == nil {
				var ok bool
				if kind, data, ok = s.eng.PeekImage(key); !ok {
					// Queued-but-unwritten, or evicted since Keys():
					// encode the live value if the store still holds it.
					v, live := s.eng.Peek(key)
					if !live {
						break
					}
					var err error
					if kind, data, ok, err = s.codec.Encode(v); err != nil || !ok {
						break
					}
				}
			}
			pctx, cancel := context.WithTimeout(ctx, sweepCallTimeout)
			_, err = cl.PushArtifact(pctx, t, key, kind, data)
			cancel()
			if err != nil {
				errors++
				slog.Warn("server: re-replication push failed", "key", key, "peer", t, "err", err)
				continue
			}
			pushed++
		}
	}
	cl.NoteSweep(epoch, scanned, pushed, skipped, errors)
	slog.Info("server: re-replication sweep complete",
		"epoch", epoch, "keys", scanned, "pushed", pushed, "skipped", skipped, "errors", errors)
}

// wireSweeper hooks the sweeper into the cluster's change
// notifications and starts the drop-repair tick. Called once from
// NewWithConfig.
func (s *Server) wireSweeper(repairInterval time.Duration) {
	if s.cluster == nil {
		return
	}
	s.cluster.OnChange(func(reason shard.ChangeReason) {
		if reason == shard.ChangeSuspect {
			return
		}
		s.sweep.trigger()
	})
	// Drop-repair tick: write-through pushes shed on a full replicator
	// queue leave their keys at R=1, and with stable membership nothing
	// would ever resweep them. Watching the drop counter turns an
	// overflow burst into one coalesced sweep per interval instead of a
	// permanent under-replication.
	if s.eng.Disk() == nil {
		return
	}
	if repairInterval <= 0 {
		repairInterval = defaultReplRepairInterval
	}
	stop := make(chan struct{})
	s.sweep.stopRepair = stop
	go func() {
		tick := time.NewTicker(repairInterval)
		defer tick.Stop()
		last := s.cluster.ReplicationDropped()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if n := s.cluster.ReplicationDropped(); n != last {
					last = n
					s.sweep.trigger()
				}
			}
		}
	}()
}
