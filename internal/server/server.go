// Package server implements the spmt-server HTTP API: the paper's
// analysis pipeline and Clustered SpMT simulator exposed as a JSON
// service. Every endpoint resolves its work through one shared
// engine.Engine, so concurrent clients deduplicate in-flight
// computations and repeat requests are served from the content-keyed
// artifact cache (observable via /v1/stats).
//
// Endpoints:
//
//	POST /v1/analyze      {"bench","size"}            → pipeline artefact summary
//	POST /v1/pairs        {"bench","size","policy"}   → spawn-pair table
//	POST /v1/simulate     {"bench","size","policy",…} → simulation result
//	POST /v1/batch        {"size","specs"|"sweep"}    → NDJSON stream, one sim per line
//	GET  /v1/figures/{id} ?size=test&bench=a,b        → one paper figure as JSON
//	GET  /v1/artifacts    ?key=…                      → encoded artifact image (shard exchange)
//	GET  /v1/stats                                    → engine/store/shard counters
//	GET  /v1/traces       ?limit=N                    → recent trace summaries
//	GET  /v1/traces/{id}  ?scope=local                → one trace's span tree (cluster-stitched)
//	GET  /metrics                                     → Prometheus text exposition
//
// Every /v1 request runs under a trace: the X-Spmt-Trace header names
// it (adopted when a peer forwarded the request, minted otherwise) and
// is echoed on the response, so a client can fetch the cluster-wide
// span tree from /v1/traces/{id} on the node it talked to. See obs.go.
//
// In peer mode (NewCluster) a consistent-hash ring over the member
// list routes every request to the node owning its artifact key:
// owned work runs locally, everything else is proxied to the owner,
// and a proxy failure falls back to local compute so a degraded
// cluster still answers — byte-identically, because every node runs
// the same deterministic pipeline. See shard.go.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// maxBodyBytes bounds request bodies; every request here is a small
// JSON document (the largest legitimate body is a 4096-spec batch,
// well under 1 MB).
const maxBodyBytes = 1 << 20

// Config carries the overload-safety knobs. The zero value disables
// all of them (no admission gate, no default deadline, no fault
// injection) — the library default; the spmt-server binary enables
// admission and deadlines via flags.
type Config struct {
	// DefaultDeadline is the per-request time budget minted for /v1
	// requests that arrive without an X-Spmt-Deadline header (0 = no
	// deadline). It propagates across every cluster hop, shrinking at
	// each leg, and cancels engine work when spent (→ 504).
	DefaultDeadline time.Duration
	// AdmitCapacity enables the cost-tiered admission gate with the
	// given weighted concurrency (0 = gate disabled). Store-resolvable
	// requests bypass the gate; cold computes queue (bounded) and shed
	// with 429 + Retry-After.
	AdmitCapacity int
	// AdmitQueue bounds the gate's wait queue (0 = 4×capacity).
	AdmitQueue int
	// AdmitMaxWait bounds one request's queue wait (0 = 2s).
	AdmitMaxWait time.Duration
	// Fault installs a deterministic fault injector whose stats are
	// exposed under /v1/stats and /metrics (testing only; nil in
	// production). Wiring the injector into the disk tier and peer
	// transports is the caller's job — this reference only makes the
	// injection observable.
	Fault *fault.Injector
	// Speculate enables speculative artifact precomputation: a spawn-
	// point predictor over the request stream (internal/spec) launches
	// predicted cold artifacts on idle scheduler workers. Off by
	// default; /v1 responses are byte-identical either way.
	Speculate bool
	// ReplRepairInterval paces the replication drop-repair tick (0 =
	// 2s): accumulated write-through drops trigger a coalescing
	// re-replication sweep so an overflow burst converges back to R
	// copies without waiting for a membership change.
	ReplRepairInterval time.Duration
}

// Server shares one engine across all requests.
type Server struct {
	eng      *engine.Engine
	cluster  *shard.Cluster
	codec    engine.Codec
	requests atomic.Uint64
	sweep    sweeper

	gate            *admit.Gate  // nil = admission disabled
	spec            *speculation // nil = speculation disabled
	defaultDeadline time.Duration
	fault           *fault.Injector // nil = no injection
	draining        atomic.Bool
	httpPanics      atomic.Uint64

	tracer         *obs.Tracer
	httpReqs       *obs.CounterVec   // by endpoint pattern, status code
	httpDur        *obs.HistogramVec // by endpoint pattern
	admitDecisions *obs.CounterVec   // by endpoint, decision
}

// New builds a standalone Server over the given engine (nil selects a
// GOMAXPROCS-sized engine with the default cache).
func New(eng *engine.Engine) *Server { return NewCluster(eng, nil) }

// NewCluster builds a Server participating in a shard cluster (nil cl
// degenerates to a standalone server). The engine should be built with
// engine.Options.Remote wired to shard.NewFetcher over the same
// cluster, so store misses pull artifact images from their owners.
func NewCluster(eng *engine.Engine, cl *shard.Cluster) *Server {
	return NewWithConfig(eng, cl, Config{})
}

// NewWithConfig builds a Server with explicit overload-safety
// configuration (see Config).
func NewWithConfig(eng *engine.Engine, cl *shard.Cluster, cfg Config) *Server {
	if eng == nil {
		eng = engine.New(engine.Options{})
	}
	node := ""
	if cl != nil {
		node = cl.Self()
	}
	s := &Server{
		eng:             eng,
		cluster:         cl,
		codec:           codec.New(),
		defaultDeadline: cfg.DefaultDeadline,
		fault:           cfg.Fault,
		tracer:          obs.NewTracer(node, 0, 0),
		httpReqs:        obs.NewCounterVec("endpoint", "code"),
		httpDur:         obs.NewHistogramVec(httpDurationBuckets, "endpoint"),
		admitDecisions:  obs.NewCounterVec("endpoint", "decision"),
	}
	if cfg.AdmitCapacity > 0 {
		s.gate = admit.NewGate(admit.Options{
			Capacity:   cfg.AdmitCapacity,
			QueueLimit: cfg.AdmitQueue,
			MaxWait:    cfg.AdmitMaxWait,
		})
	}
	if cfg.Speculate {
		s.spec = newSpeculation(s)
	}
	s.sweep.s = s
	s.wireSweeper(cfg.ReplRepairInterval)
	return s
}

// SetDraining marks the server as shutting down: /readyz answers 503
// so load balancers stop routing, while in-flight requests and
// /healthz (liveness) are unaffected.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Close stops the server's background work (the re-replication
// sweeper and the speculator), waiting for an active sweep to finish.
// It does not close the engine or the cluster — the caller owns those.
func (s *Server) Close() {
	if s.spec != nil {
		s.spec.close()
	}
	s.sweep.close()
}

// Engine returns the server's engine (for tests and embedding).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Cluster returns the server's shard cluster view (nil when
// standalone).
func (s *Server) Cluster() *shard.Cluster { return s.cluster }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/pairs", s.handlePairs)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/figures/{id}", s.handleFigure)
	mux.HandleFunc("GET /v1/artifacts", s.handleArtifact)
	mux.HandleFunc("PUT /v1/artifacts", s.handleArtifactPut)
	mux.HandleFunc("POST /v1/cluster/join", s.handleClusterJoin)
	mux.HandleFunc("POST /v1/cluster/leave", s.handleClusterLeave)
	mux.HandleFunc("GET /v1/cluster/membership", s.handleMembershipGet)
	mux.HandleFunc("POST /v1/cluster/membership", s.handleMembershipPost)
	mux.HandleFunc("GET /v1/cluster/health", s.handleClusterHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s.observe(mux)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers already sent
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// readBody consumes the bounded request body: handlers keep the raw
// bytes so peer-mode routing can forward the request verbatim.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	return data, nil
}

func decodeBody(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// parseSize maps the wire size name (default "test" — the responsive
// class; pass "small" or "full" explicitly for paper-scale runs).
func parseSize(s string) (workload.SizeClass, error) {
	if s == "" {
		return workload.SizeTest, nil
	}
	return workload.ParseSize(s)
}

func validBench(name string) error {
	for _, b := range workload.Benchmarks {
		if b == name {
			return nil
		}
	}
	return fmt.Errorf("unknown benchmark %q (have %v)", name, workload.Benchmarks)
}

// checkBench validates the benchmark/size pair without building
// anything — handlers need the size class for routing before they
// commit to local work.
func checkBench(name, size string) (workload.SizeClass, error) {
	if err := validBench(name); err != nil {
		return 0, err
	}
	return parseSize(size)
}

func parsePredictor(s string) (cluster.PredictorKind, error) {
	switch s {
	case "", "perfect":
		return cluster.Perfect, nil
	case "stride":
		return cluster.Stride, nil
	case "context":
		return cluster.Context, nil
	case "last-value":
		return cluster.LastValue, nil
	}
	return 0, fmt.Errorf("unknown predictor %q (want perfect, stride, context, or last-value)", s)
}

// bench resolves one benchmark's artefact chain through the engine: a
// warm request touches only the cache. The request context carries the
// trace into every engine job the chain submits.
func (s *Server) bench(ctx context.Context, name string, sz workload.SizeClass) (*expt.Suite, *expt.Bench, error) {
	suite, err := expt.NewSuiteEngineCtx(ctx, s.eng, sz, []string{name})
	if err != nil {
		return nil, nil, err
	}
	return suite, suite.Bench(name), nil
}

type analyzeRequest struct {
	Bench string `json:"bench"`
	Size  string `json:"size"`
}

type analyzeResponse struct {
	Bench       string  `json:"bench"`
	Size        string  `json:"size"`
	ProgramLen  int     `json:"program_len"`
	TraceEvents int     `json:"trace_events"`
	CFGNodes    int     `json:"cfg_nodes"`
	Coverage    float64 `json:"coverage"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req analyzeRequest
	if err := decodeBody(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sz, err := checkBench(req.Bench, req.Size)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := expt.BenchKey(req.Bench, sz)
	if s.routeToOwner(w, r, key, body) {
		return
	}
	release, ok := s.admitCompute(w, r, "/v1/analyze", weightAnalyze, s.eng.Has(key))
	if !ok {
		return
	}
	defer release()
	suite, b, err := s.bench(r.Context(), req.Bench, sz)
	if err != nil {
		s.computeError(w, http.StatusBadRequest, err)
		return
	}
	s.noteAnalyze(req.Bench, sz)
	writeJSON(w, http.StatusOK, analyzeResponse{
		Bench:       b.Name,
		Size:        suite.Size.String(),
		ProgramLen:  b.Trace.Program.Len(),
		TraceEvents: b.Trace.Len(),
		CFGNodes:    len(b.Graph.Nodes),
		Coverage:    b.Graph.Coverage,
	})
}

type pairsRequest struct {
	Bench  string `json:"bench"`
	Size   string `json:"size"`
	Policy string `json:"policy"` // default "profile"
}

type pairJSON struct {
	SP      uint32  `json:"sp"`
	CQIP    uint32  `json:"cqip"`
	Kind    string  `json:"kind"`
	Prob    float64 `json:"prob"`
	Dist    float64 `json:"dist"`
	Score   float64 `json:"score"`
	LiveIns int     `json:"live_ins"`
}

type pairsResponse struct {
	Bench           string     `json:"bench"`
	Size            string     `json:"size"`
	Policy          string     `json:"policy"`
	TotalCandidates int        `json:"total_candidates"`
	Selected        int        `json:"selected"`
	Pairs           []pairJSON `json:"pairs"`
}

// validPolicy reports whether expt accepts the policy name.
// withPairs additionally excludes "none", which selects no table.
func validPolicy(policy string, withPairs bool) error {
	if policy == "none" && withPairs {
		withTable := slices.DeleteFunc(expt.Policies(), func(p string) bool { return p == "none" })
		return fmt.Errorf(`policy "none" selects no spawn pairs (want one of %v)`, withTable)
	}
	if slices.Contains(expt.Policies(), policy) {
		return nil
	}
	return fmt.Errorf("unknown policy %q (want one of %v)", policy, expt.Policies())
}

func (s *Server) handlePairs(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req pairsRequest
	if err := decodeBody(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Policy == "" {
		req.Policy = "profile"
	}
	if err := validPolicy(req.Policy, true); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sz, err := checkBench(req.Bench, req.Size)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Route by the spawn table's own artifact key: the policy is
	// validated, so TableKey cannot fail (and "none" is excluded).
	tableKey, keyErr := expt.TableKey(req.Bench, sz, req.Policy)
	if keyErr == nil && s.routeToOwner(w, r, tableKey, body) {
		return
	}
	warm := keyErr == nil && s.eng.Has(tableKey) && s.eng.Has(expt.BenchKey(req.Bench, sz))
	release, ok := s.admitCompute(w, r, "/v1/pairs", weightTable, warm)
	if !ok {
		return
	}
	defer release()
	suite, b, err := s.bench(r.Context(), req.Bench, sz)
	if err != nil {
		s.computeError(w, http.StatusBadRequest, err)
		return
	}
	tab, err := suite.Table(b, req.Policy)
	if err != nil {
		s.computeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := pairsResponse{
		Bench:           b.Name,
		Size:            suite.Size.String(),
		Policy:          req.Policy,
		TotalCandidates: tab.TotalCandidates,
		Selected:        tab.Len(),
		Pairs:           make([]pairJSON, 0, tab.Len()),
	}
	for _, p := range tab.Primary {
		resp.Pairs = append(resp.Pairs, pairJSON{
			SP: p.SP, CQIP: p.CQIP, Kind: p.Kind.String(),
			Prob: p.Prob, Dist: p.Dist, Score: p.Score, LiveIns: len(p.LiveIns),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type simulateRequest struct {
	Bench       string `json:"bench"`
	Size        string `json:"size"`
	Policy      string `json:"policy"`    // default "profile"
	TUs         int    `json:"tus"`       // default 16
	Predictor   string `json:"predictor"` // default "perfect"
	Overhead    int64  `json:"overhead"`
	Removal     int64  `json:"removal"`
	Occurrences int    `json:"occurrences"`
	Reassign    bool   `json:"reassign"`
	MinSize     int    `json:"min_size"`
}

type simulateResponse struct {
	Bench  string          `json:"bench"`
	Size   string          `json:"size"`
	Policy string          `json:"policy"`
	TUs    int             `json:"tus"`
	Result *cluster.Result `json:"result"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req simulateRequest
	if err := decodeBody(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Policy == "" {
		req.Policy = "profile"
	}
	if req.TUs == 0 {
		req.TUs = 16
	}
	if err := validPolicy(req.Policy, false); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.TUs < 1 || req.Overhead < 0 || req.Removal < 0 || req.Occurrences < 0 || req.MinSize < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("tus must be >= 1 and overhead/removal/occurrences/min_size must be >= 0"))
		return
	}
	pred, err := parsePredictor(req.Predictor)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sz, err := checkBench(req.Bench, req.Size)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sp := expt.SimSpec{
		Bench:     req.Bench,
		Policy:    req.Policy,
		TUs:       req.TUs,
		Predictor: pred,
		Overhead:  req.Overhead,
		Removal:   req.Removal,
		Occur:     req.Occurrences,
		Reassign:  req.Reassign,
		MinSize:   req.MinSize,
	}
	simKey := expt.SimKey(sz, sp)
	if s.routeToOwner(w, r, simKey, body) {
		return
	}
	warm := s.eng.Has(simKey) && s.eng.Has(expt.BenchKey(req.Bench, sz))
	release, ok := s.admitCompute(w, r, "/v1/simulate", weightTable, warm)
	if !ok {
		return
	}
	defer release()
	suite, b, err := s.bench(r.Context(), req.Bench, sz)
	if err != nil {
		s.computeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := suite.Sim(b, sp)
	if err != nil {
		s.computeError(w, http.StatusInternalServerError, err)
		return
	}
	s.noteSim(sz, sp)
	writeJSON(w, http.StatusOK, simulateResponse{
		Bench: b.Name, Size: suite.Size.String(), Policy: req.Policy, TUs: req.TUs, Result: res,
	})
}

type figureResponse struct {
	ID      string     `json:"id"`
	Size    string     `json:"size"`
	Benches []string   `json:"benches"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Note    string     `json:"note,omitempty"`
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !slices.Contains(expt.FigureIDs(), id) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown figure %q (have %v)", id, expt.FigureIDs()))
		return
	}
	sz, err := parseSize(r.URL.Query().Get("size"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var names []string
	if bq := r.URL.Query().Get("bench"); bq != "" {
		names = strings.Split(bq, ",")
		for _, n := range names {
			if err := validBench(n); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		}
	}
	// Figures have no single engine artifact; any stable key works as
	// a routing key, and colocating one figure's whole sweep maximises
	// its internal cache sharing — so the key is canonical over the
	// bench SET (sorted, deduped), not the client's list order.
	canon := slices.Clone(names)
	slices.Sort(canon)
	canon = slices.Compact(canon)
	figKey := "fig/" + id + "/" + sz.String() + "/" + strings.Join(canon, ",")
	if s.routeToOwner(w, r, figKey, nil) {
		return
	}
	// Figures fan a whole sweep into the engine and have no single
	// store artifact to probe for warmness, so they are always gated as
	// heavy; a warm repeat still admits instantly and releases the gate
	// in microseconds.
	release, ok := s.admitCompute(w, r, "/v1/figures/{id}", weightFigure, false)
	if !ok {
		return
	}
	defer release()
	suite, err := expt.NewSuiteEngineCtx(r.Context(), s.eng, sz, names)
	if err != nil {
		s.computeError(w, http.StatusInternalServerError, err)
		return
	}
	tab, err := suite.Run(id)
	if err != nil {
		s.computeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, figureResponse{
		ID:      id,
		Size:    suite.Size.String(),
		Benches: suite.Names(),
		Title:   tab.Title,
		Columns: tab.Columns,
		Rows:    tab.Rows,
		Note:    tab.Note,
	})
}

// handleArtifact serves the encoded image of a locally-resident
// artifact — the shard-exchange endpoint peers pull through instead of
// recomputing. Strictly local (Engine.Peek): a miss here must be a
// clean 404 so the asking shard computes, never a chained fetch.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing key parameter"))
		return
	}
	// check=1 is the residency probe the re-replication sweep runs
	// before shipping an image: 204 here means "don't push", for the
	// cost of headers only.
	if r.URL.Query().Get("check") == "1" {
		if s.eng.Has(key) {
			w.WriteHeader(http.StatusNoContent)
		} else {
			w.WriteHeader(http.StatusNotFound)
		}
		return
	}
	// Serve order: encode a memory-resident object; else relay the
	// already-encoded disk image verbatim (no decode, no memory-tier
	// pollution — traces are tens of MB); else the pending-write queue
	// via the full Peek.
	var kind string
	var data []byte
	v, ok := s.eng.PeekMemory(key)
	if !ok {
		if kind, data, ok = s.eng.PeekImage(key); !ok {
			v, ok = s.eng.Peek(key)
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("artifact %q is not resident", key))
		return
	}
	if data == nil {
		var err error
		kind, data, ok, err = s.codec.Encode(v)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("artifact %q has no wire form", key))
			return
		}
	}
	if s.cluster != nil {
		s.cluster.NoteArtifactServed()
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(shard.ArtifactKindHeader, kind)
	w.Write(data) //nolint:errcheck // client went away
}

type statsResponse struct {
	Engine   engine.Stats `json:"engine"`
	Requests uint64       `json:"requests"`
	// Shard is this node's shard view (peer mode only); Cluster is the
	// fanned-out per-member + aggregate view (omitted for
	// ?scope=local, which is what members serve each other).
	Shard   *shard.Stats  `json:"shard,omitempty"`
	Cluster *clusterStats `json:"cluster,omitempty"`
	// Admit and Fault are the overload-safety views: admission-gate
	// counters (present when the gate is enabled) and fault-injector
	// counters (testing only).
	Admit *admit.Stats `json:"admit,omitempty"`
	Fault *fault.Stats `json:"fault,omitempty"`
	// Spec is the speculative-precomputation view (present when the
	// server runs with Config.Speculate).
	Spec *specStats `json:"spec,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Engine:   s.eng.Stats(),
		Requests: s.requests.Load(),
	}
	if s.gate != nil {
		gs := s.gate.Stats()
		resp.Admit = &gs
	}
	if s.fault != nil {
		fs := s.fault.Stats()
		resp.Fault = &fs
	}
	if s.spec != nil {
		ss := s.spec.stats()
		resp.Spec = &ss
	}
	if s.cluster != nil {
		st := s.cluster.Stats()
		resp.Shard = &st
		if r.URL.Query().Get("scope") != "local" {
			resp.Cluster = s.clusterView(r, resp)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
