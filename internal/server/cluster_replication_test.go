package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/linalg"
	"repro/internal/shard"
)

// waitFor polls cond until it holds. Cluster tests observe membership
// epochs, ring versions, and replication gauges instead of sleeping
// fixed amounts — the stats exist for exactly this.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startReplicatedNode builds one in-process shard with the full R=2
// write path wired: fetcher, write-through replicator, and the server's
// re-replication sweeper. sw must already be serving (the node's URL
// exists before the node does).
func startReplicatedNode(t *testing.T, sw *switchHandler, ts *httptest.Server, members []string) *clusterNode {
	t.Helper()
	cl, err := shard.New(ts.URL, members, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := engine.OpenDiskTier(t.TempDir(), 0, codec.New())
	if err != nil {
		t.Fatal(err)
	}
	repl := shard.NewReplicator(cl, codec.New())
	eng := engine.New(engine.Options{
		Workers:   2,
		Disk:      disk,
		Remote:    shard.NewFetcher(cl, codec.New()),
		Replicate: repl,
	})
	t.Cleanup(eng.Close)
	t.Cleanup(repl.Close)
	node := &clusterNode{srv: NewCluster(eng, cl), ts: ts, url: ts.URL}
	t.Cleanup(node.srv.Close)
	sw.set(node.srv.Handler())
	return node
}

// startReplicatedCluster is startTestCluster plus the R=2 write path.
// No prober runs: suspicion is exercised in internal/shard, and the
// degraded tests here want the dead member to stay in the ring so the
// retry/fallback paths are what absorbs the fault.
func startReplicatedCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	urls := make([]string, n)
	switches := make([]*switchHandler, n)
	servers := make([]*httptest.Server, n)
	for i := range nodes {
		switches[i] = &switchHandler{}
		servers[i] = httptest.NewServer(switches[i])
		t.Cleanup(servers[i].Close)
		urls[i] = servers[i].URL
	}
	for i := range nodes {
		nodes[i] = startReplicatedNode(t, switches[i], servers[i], urls)
	}
	return nodes
}

// replQuiesced reports whether every node's write-through queue has
// fully drained.
func replQuiesced(nodes []*clusterNode) bool {
	for _, n := range nodes {
		if n.srv.Cluster().Stats().Replication.Pending != 0 {
			return false
		}
	}
	return true
}

// pipelineRuns sums the executed-job counts of the pipeline kinds
// replication must keep warm — the recompute meter of the fault test.
func pipelineRuns(n *clusterNode) uint64 {
	lat := n.srv.Engine().Stats().Latency
	var total uint64
	for _, kind := range []string{"emu", "reach", "table", "sim"} {
		total += lat[kind].Count
	}
	return total
}

// TestReplicatedFaultAbsorption is the R=2 acceptance test: after a
// warm pass and write-through quiescence, killing one member costs the
// survivors NO pipeline recompute — every artifact the dead node owned
// has a live replica — while every response stays byte-identical to a
// single-node run.
func TestReplicatedFaultAbsorption(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated fault suite is slow")
	}
	ref := referenceResponses(t)
	nodes := startReplicatedCluster(t, 3)

	for _, req := range parityRequests() {
		status, body := doRequest(t, nodes[0].url, req)
		if status != http.StatusOK {
			t.Fatalf("warm %s: status %d: %s", req.name, status, body)
		}
		if !bytes.Equal(body, ref[req.name]) {
			t.Fatalf("warm %s: bytes differ from single-node run", req.name)
		}
	}

	// Write-through must quiesce before the fault: pending 0 with no
	// drops or errors means every computed artifact reached its replica.
	waitFor(t, "write-through to quiesce", func() bool { return replQuiesced(nodes) })
	for i, n := range nodes {
		r := n.srv.Cluster().Stats().Replication
		if r.Dropped != 0 || r.PushErrors != 0 {
			t.Fatalf("node %d: dropped=%d push_errors=%d before the fault", i, r.Dropped, r.PushErrors)
		}
	}

	nodes[2].ts.Close()
	before := []uint64{pipelineRuns(nodes[0]), pipelineRuns(nodes[1])}

	for entry, node := range nodes[:2] {
		for _, req := range parityRequests() {
			status, body := doRequest(t, node.url, req)
			if status != http.StatusOK {
				t.Fatalf("degraded entry %d, %s: status %d: %s", entry, req.name, status, body)
			}
			if !bytes.Equal(body, ref[req.name]) {
				t.Errorf("degraded entry %d, %s: response differs from single-node run\n got: %.300s\nwant: %.300s",
					entry, req.name, body, ref[req.name])
			}
		}
	}

	for i, n := range nodes[:2] {
		if got := pipelineRuns(n); got != before[i] {
			t.Errorf("node %d ran %d pipeline jobs while degraded; R=2 must serve all of them warm",
				i, got-before[i])
		}
	}
}

// TestJoinAndReReplication drives the elastic path end to end: a fresh
// node with a single-member view joins through a seed, gossip converges
// every membership, the membership change triggers re-replication
// sweeps on the seeds, and the sweeps restore R=2 — every disk-resident
// key ends up resident on every member of its owner set, including the
// arc that moved to the joiner.
func TestJoinAndReReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("join/re-replication suite is slow")
	}
	nodes := startReplicatedCluster(t, 2)

	for _, req := range []clusterRequest{
		{"sim", "POST", "/v1/simulate", `{"bench":"compress","size":"test","policy":"profile","tus":16}`},
		{"pairs", "POST", "/v1/pairs", `{"bench":"ijpeg","size":"test","policy":"profile"}`},
	} {
		if status, body := doRequest(t, nodes[0].url, req); status != http.StatusOK {
			t.Fatalf("warm-up %s: status %d: %s", req.name, status, body)
		}
	}
	waitFor(t, "write-through to quiesce", func() bool { return replQuiesced(nodes) })
	for _, n := range nodes {
		n.srv.Engine().Disk().Flush() // the sweep scans the disk index
	}

	// Boot the joiner knowing only itself, then join through node 0.
	sw := &switchHandler{}
	ts := httptest.NewServer(sw)
	t.Cleanup(ts.Close)
	joiner := startReplicatedNode(t, sw, ts, []string{ts.URL})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ms, err := joiner.srv.Cluster().JoinVia(ctx, nodes[0].url)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Members) != 3 || !slices.Contains(ms.Members, joiner.url) {
		t.Fatalf("join answered %+v", ms)
	}

	all := append(slices.Clone(nodes), joiner)
	waitFor(t, "membership convergence", func() bool {
		for _, n := range all {
			m := n.srv.Cluster().Membership()
			if m.Epoch != ms.Epoch || len(m.Members) != 3 {
				return false
			}
		}
		return true
	})

	byURL := make(map[string]*clusterNode, len(all))
	for _, n := range all {
		byURL[n.url] = n
	}
	waitFor(t, "re-replication convergence", func() bool {
		for _, n := range nodes { // the seeds hold the pre-join artifacts
			st := n.srv.Cluster().Stats().Replication
			if st.LastSweepEpoch != ms.Epoch || st.Pending != 0 {
				return false
			}
		}
		for _, n := range all {
			for _, key := range n.srv.Engine().Disk().Keys() {
				for _, owner := range n.srv.Cluster().ReplicaSet(key) {
					if o := byURL[owner]; o != nil && !o.srv.Engine().Has(key) {
						return false
					}
				}
			}
		}
		return true
	})

	// The joiner's arc covers ~1/3 of a multi-key warm set; if any key
	// maps to it, the sweep must have pushed real data its way.
	moved := false
	cl0 := nodes[0].srv.Cluster()
	for _, n := range nodes {
		for _, key := range n.srv.Engine().Disk().Keys() {
			if slices.Contains(cl0.ReplicaSet(key), joiner.url) {
				moved = true
			}
		}
	}
	if moved && joiner.srv.Cluster().Stats().Replication.Received == 0 {
		t.Error("keys map to the joiner but it received no pushed artifact")
	}
}

// TestClusterControlEndpoints drives the membership control plane over
// HTTP: join and leave mutate the epoch, gossip carries the change to
// the other member, and the health document fingerprints the view.
func TestClusterControlEndpoints(t *testing.T) {
	nodes := startTestCluster(t, 2)

	var ms shard.Membership
	if resp := getJSON(t, nodes[0].url+"/v1/cluster/membership", &ms); resp.StatusCode != http.StatusOK {
		t.Fatalf("membership status = %d", resp.StatusCode)
	}
	if ms.Epoch != 1 || len(ms.Members) != 2 {
		t.Fatalf("boot membership = %+v", ms)
	}

	// Admit a phantom third member (never actually serving — gossip to
	// it fails harmlessly; the live peer must still converge).
	phantom := "http://127.0.0.1:9"
	resp, body := postJSON(t, nodes[0].url+"/v1/cluster/join", `{"node":"`+phantom+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join status = %d: %s", resp.StatusCode, body)
	}
	if err := decodeBody(body, &ms); err != nil {
		t.Fatal(err)
	}
	if ms.Epoch != 2 || !slices.Contains(ms.Members, phantom) {
		t.Fatalf("post-join view = %+v", ms)
	}
	waitFor(t, "join gossip", func() bool { return nodes[1].srv.Cluster().Epoch() == 2 })

	// Idempotent re-join must not move the epoch.
	resp, body = postJSON(t, nodes[0].url+"/v1/cluster/join", `{"node":"`+phantom+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-join status = %d", resp.StatusCode)
	}
	if err := decodeBody(body, &ms); err != nil || ms.Epoch != 2 {
		t.Fatalf("re-join view = %+v (err %v)", ms, err)
	}

	resp, body = postJSON(t, nodes[0].url+"/v1/cluster/leave", `{"node":"`+phantom+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave status = %d: %s", resp.StatusCode, body)
	}
	if err := decodeBody(body, &ms); err != nil || ms.Epoch != 3 || len(ms.Members) != 2 {
		t.Fatalf("post-leave view = %+v (err %v)", ms, err)
	}
	waitFor(t, "leave gossip", func() bool { return nodes[1].srv.Cluster().Epoch() == 3 })

	var doc shard.HealthDoc
	if resp := getJSON(t, nodes[0].url+"/v1/cluster/health", &doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d", resp.StatusCode)
	}
	if !doc.OK || doc.Epoch != 3 || doc.Node != nodes[0].url || doc.Hash == "" {
		t.Errorf("health doc = %+v", doc)
	}

	if resp, _ := postJSON(t, nodes[0].url+"/v1/cluster/join", `{"node":"ftp://nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed join node: status = %d, want 400", resp.StatusCode)
	}
}

// TestClusterEndpointsStandalone: a node not in peer mode answers the
// control plane with 503, never a panic or a silent no-op.
func TestClusterEndpointsStandalone(t *testing.T) {
	_, ts := newTestServer(t)
	for _, p := range []string{"/v1/cluster/join", "/v1/cluster/leave", "/v1/cluster/membership"} {
		if resp, _ := postJSON(t, ts.URL+p, `{"node":"http://a:1"}`); resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s: status = %d, want 503", p, resp.StatusCode)
		}
	}
	for _, p := range []string{"/v1/cluster/membership", "/v1/cluster/health"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s: status = %d, want 503", p, resp.StatusCode)
		}
	}
}

// TestArtifactPushAndCheck drives the replication transport endpoints:
// PUT stores an image once (duplicates dedupe), and the check probe
// answers residency without a payload.
func TestArtifactPushAndCheck(t *testing.T) {
	nodes := startTestCluster(t, 2)
	cl := nodes[0].srv.Cluster()
	ctx := context.Background()
	const key = "reach/pushed/1"

	if has, err := cl.CheckArtifact(ctx, nodes[1].url, key); err != nil || has {
		t.Fatalf("pre-push check: has=%v err=%v", has, err)
	}

	cod := codec.New()
	want := &linalg.Matrix{Rows: 1, Cols: 2, Data: []float64{1, 2.5}}
	kind, img, ok, err := cod.Encode(want)
	if err != nil || !ok {
		t.Fatalf("encode fixture: ok=%v err=%v", ok, err)
	}
	if stored, err := cl.PushArtifact(ctx, nodes[1].url, key, kind, img); err != nil || !stored {
		t.Fatalf("first push: stored=%v err=%v", stored, err)
	}
	if stored, err := cl.PushArtifact(ctx, nodes[1].url, key, kind, img); err != nil || stored {
		t.Fatalf("duplicate push: stored=%v err=%v (want dedupe)", stored, err)
	}
	if has, err := cl.CheckArtifact(ctx, nodes[1].url, key); err != nil || !has {
		t.Fatalf("post-push check: has=%v err=%v", has, err)
	}
	if v, ok := nodes[1].srv.Engine().Peek(key); !ok {
		t.Error("pushed artifact not resident on the receiver")
	} else if got, isMat := v.(*linalg.Matrix); !isMat || got.Data[1] != 2.5 {
		t.Errorf("pushed artifact decoded to %#v", v)
	}
	st := nodes[1].srv.Cluster().Stats().Replication
	if st.Received != 1 || st.ReceivedDuplicate != 1 {
		t.Errorf("receiver counters: received=%d duplicate=%d, want 1/1", st.Received, st.ReceivedDuplicate)
	}

	// A push without a kind header is a 400, surfaced as an error.
	if _, err := cl.PushArtifact(ctx, nodes[1].url, "reach/pushed/2", "", img); err == nil {
		t.Error("kindless push must fail")
	}
}
