package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/engine"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(engine.New(engine.Options{Workers: 2}))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

func stats(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	var st statsResponse
	if resp := getJSON(t, ts.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	return st
}

func TestAnalyzeEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"bench":"compress","size":"test"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var ar analyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if ar.Bench != "compress" || ar.TraceEvents == 0 || ar.CFGNodes == 0 {
		t.Errorf("implausible analyze response: %+v", ar)
	}
	if ar.Coverage < 0.5 || ar.Coverage > 1 {
		t.Errorf("coverage = %v", ar.Coverage)
	}
}

func TestPairsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/pairs", `{"bench":"ijpeg","size":"test"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var pr pairsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if pr.Policy != "profile" || pr.Selected == 0 || len(pr.Pairs) != pr.Selected {
		t.Errorf("implausible pairs response: policy=%s selected=%d pairs=%d",
			pr.Policy, pr.Selected, len(pr.Pairs))
	}
	for _, p := range pr.Pairs {
		if p.Prob < 0 || p.Prob > 1 || p.Dist <= 0 {
			t.Errorf("implausible pair %+v", p)
		}
	}
}

// TestSimulateServedFromCache is the acceptance test: a second
// identical /v1/simulate request must be served from the artifact
// cache, observable through the /v1/stats hit counters.
func TestSimulateServedFromCache(t *testing.T) {
	_, ts := newTestServer(t)
	req := `{"bench":"compress","size":"test","policy":"profile","tus":16}`

	resp1, body1 := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp1.StatusCode, body1)
	}
	var sr simulateResponse
	if err := json.Unmarshal(body1, &sr); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if sr.Result == nil || sr.Result.Cycles <= 0 {
		t.Fatalf("implausible sim result: %+v", sr.Result)
	}
	cold := stats(t, ts)

	resp2, body2 := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request status = %d", resp2.StatusCode)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("second identical request returned different body")
	}
	warm := stats(t, ts)

	if warm.Engine.Cache.Hits <= cold.Engine.Cache.Hits {
		t.Errorf("cache hits did not increase: %d -> %d",
			cold.Engine.Cache.Hits, warm.Engine.Cache.Hits)
	}
	// The simulation itself must not have re-run.
	if warm.Engine.Executed != cold.Engine.Executed {
		t.Errorf("warm request executed %d new jobs, want 0",
			warm.Engine.Executed-cold.Engine.Executed)
	}
	if warm.Requests <= cold.Requests {
		t.Errorf("request counter stuck at %d", warm.Requests)
	}
}

func TestFigureEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var fr figureResponse
	resp := getJSON(t, ts.URL+"/v1/figures/fig3?size=test&bench=compress,ijpeg", &fr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if fr.ID != "fig3" || len(fr.Columns) == 0 || len(fr.Rows) == 0 {
		t.Errorf("implausible figure response: %+v", fr)
	}
	// 2 benchmarks + the Hmean summary row.
	if len(fr.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(fr.Rows))
	}
	if len(fr.Benches) != 2 {
		t.Errorf("benches = %v", fr.Benches)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"unknown bench", "POST", "/v1/analyze", `{"bench":"nonesuch"}`, http.StatusBadRequest},
		{"bad size", "POST", "/v1/analyze", `{"bench":"compress","size":"huge"}`, http.StatusBadRequest},
		{"bad json", "POST", "/v1/analyze", `{`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/analyze", `{"wat":1}`, http.StatusBadRequest},
		{"bad policy", "POST", "/v1/pairs", `{"bench":"compress","policy":"wat"}`, http.StatusBadRequest},
		{"none policy has no pairs", "POST", "/v1/pairs", `{"bench":"compress","policy":"none"}`, http.StatusBadRequest},
		{"bad predictor", "POST", "/v1/simulate", `{"bench":"compress","predictor":"psychic"}`, http.StatusBadRequest},
		{"negative tus", "POST", "/v1/simulate", `{"bench":"compress","tus":-1}`, http.StatusBadRequest},
		{"negative overhead", "POST", "/v1/simulate", `{"bench":"compress","overhead":-8}`, http.StatusBadRequest},
		{"bad sim policy", "POST", "/v1/simulate", `{"bench":"compress","policy":"wat"}`, http.StatusBadRequest},
		{"unknown figure", "GET", "/v1/figures/fig99?bench=compress", "", http.StatusNotFound},
		{"wrong method", "GET", "/v1/simulate", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.method == "POST" {
				resp, err = http.Post(ts.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
			} else {
				resp, err = http.Get(ts.URL + tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
		})
	}
}

// TestConcurrentClientsShareArtifacts hammers the server with identical
// and overlapping requests; under -race this doubles as the server's
// thread-safety test, and the singleflight/dedup counters prove clients
// shared work rather than repeating it.
func TestConcurrentClientsShareArtifacts(t *testing.T) {
	srv, ts := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			var resp *http.Response
			switch i % 3 {
			case 0:
				resp, err = http.Post(ts.URL+"/v1/analyze", "application/json",
					bytes.NewReader([]byte(`{"bench":"compress","size":"test"}`)))
			case 1:
				resp, err = http.Post(ts.URL+"/v1/simulate", "application/json",
					bytes.NewReader([]byte(`{"bench":"compress","size":"test","tus":4}`)))
			default:
				resp, err = http.Get(ts.URL + "/v1/figures/fig2?size=test&bench=compress")
			}
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	st := srv.Engine().Stats()
	// 12 requests over one benchmark: the pipeline must have run once,
	// with everything else served by cache hits or in-flight joins.
	if st.Cache.Hits == 0 && st.Deduped == 0 {
		t.Errorf("no sharing observed: %+v", st)
	}
	if got := fmt.Sprintf("%d", srv.requests.Load()); got != "12" {
		t.Errorf("requests = %s, want 12", got)
	}
}
