// Degradation suite: proves the overload-safety tentpole end to end.
// Under admission saturation, injected disk faults, injected peer
// faults, cluster deadlines, handler panics, and client disconnects,
// every /v1 response is either byte-identical to the fault-free run or
// a clean, well-formed 429/504 — never a hang, a truncated 200, or a
// leaked goroutine.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/fault"
	"repro/internal/shard"
)

// TestDegradeSaturationParity drives a capacity-1 gate to saturation
// and checks the contract: warm (store-resolvable) requests keep
// succeeding byte-identically, cold computes shed with a well-formed
// 429 + Retry-After, /readyz flips to 503 while the queue is full, and
// everything recovers once capacity frees.
func TestDegradeSaturationParity(t *testing.T) {
	srv := NewWithConfig(engine.New(engine.Options{Workers: 2}), nil, Config{
		AdmitCapacity: 1,
		AdmitQueue:    1,
		AdmitMaxWait:  5 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ops := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ops.Close)

	// Warm up one simulate while the gate is free; its response is the
	// byte-level reference.
	simBody := `{"bench":"compress","size":"test","tus":4}`
	resp, ref := postJSON(t, ts.URL+"/v1/simulate", simBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", resp.StatusCode, ref)
	}

	// Occupy the whole gate.
	release, err := srv.gate.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// Warm traffic bypasses the gate: same request, same bytes, while
	// the gate is fully held.
	resp, warm := postJSON(t, ts.URL+"/v1/simulate", simBody)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(warm, ref) {
		t.Fatalf("warm request under saturation: status %d, parity %v",
			resp.StatusCode, bytes.Equal(warm, ref))
	}

	// A cold compute queues (filling the single queue slot)...
	queued := make(chan int, 1)
	go func() {
		r2, _ := postJSON(t, ts.URL+"/v1/analyze", `{"bench":"ijpeg","size":"test"}`)
		queued <- r2.StatusCode
	}()
	pollUntil(t, 5*time.Second, func() bool { return srv.gate.Stats().Waiting == 1 })

	// ...so the node is saturated: /readyz says back off...
	if code := getStatus(t, ops.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while saturated = %d, want 503", code)
	}
	// ...and the next cold compute is shed instantly with a clean 429.
	r3, body := postJSON(t, ts.URL+"/v1/analyze", `{"bench":"li","size":"test"}`)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cold request on full queue: status %d: %s", r3.StatusCode, body)
	}
	if ra := r3.Header.Get("Retry-After"); ra == "" {
		t.Error("429 must carry Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("429 body is not the error envelope: %q", body)
	}

	// Release the gate: the queued cold compute admits and completes.
	release()
	select {
	case code := <-queued:
		if code != http.StatusOK {
			t.Errorf("queued request after release: status %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued request never completed after release")
	}
	if code := getStatus(t, ops.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after recovery = %d, want 200", code)
	}

	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Admit == nil {
		t.Fatal("stats must include the admit section when the gate is on")
	}
	if st.Admit.Bypassed == 0 || st.Admit.RejectedFull == 0 || st.Admit.Admitted == 0 {
		t.Errorf("admit counters: %+v", st.Admit)
	}
}

// blockEngineWorker occupies every scheduler worker of eng with jobs
// that park until the returned release func is called. With the
// worker pool pinned, any subsequent engine task sits queued until its
// context expires, making deadline tests deterministic: they never
// race a fast compute against a short timer.
func blockEngineWorker(t *testing.T, eng *engine.Engine, workers int) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	started := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		go func() {
			eng.Exec(context.Background(), engine.Job{
				Run: func(ctx context.Context, deps []any) (any, error) {
					started <- struct{}{}
					<-ch
					return nil, nil
				},
			})
		}()
	}
	for i := 0; i < workers; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("blocker job never started")
		}
	}
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// TestDegradeDeadline504 proves deadline exhaustion is a clean 504 on
// both mint paths: the -default-deadline budget and an adopted
// X-Spmt-Deadline header. The engine's only worker is pinned by a
// parked job, so the deadlined request's compute can never start
// before its budget expires — the scheduler withdraws it from the
// queue and the handler maps the context error to 504.
func TestDegradeDeadline504(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	srv := NewWithConfig(eng, nil, Config{
		DefaultDeadline: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	release := blockEngineWorker(t, eng, 1)
	defer release()
	resp, body := postJSON(t, ts.URL+"/v1/simulate", `{"bench":"compress","size":"test","tus":4}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("cold compute under a 50ms default deadline with the worker pinned: status %d: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("504 body is not the error envelope: %q", body)
	}

	// Header adoption: no default deadline configured, the forwarded
	// budget alone must cancel the compute.
	eng2 := engine.New(engine.Options{Workers: 1})
	ts2 := httptest.NewServer(New(eng2).Handler())
	t.Cleanup(ts2.Close)
	release2 := blockEngineWorker(t, eng2, 1)
	defer release2()
	req, err := http.NewRequest("POST", ts2.URL+"/v1/analyze",
		strings.NewReader(`{"bench":"compress","size":"test"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(shard.DeadlineHeader, "50")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusGatewayTimeout {
		b, _ := io.ReadAll(r2.Body)
		t.Fatalf("cold compute under a 50ms header deadline with the worker pinned: status %d: %s", r2.StatusCode, b)
	}
}

// TestDegradeDiskFaultParity runs the full parity suite on a server
// whose disk tier suffers seeded read/write/torn-write faults: every
// response must stay byte-identical to the fault-free run (the store
// degrades to recompute, never to wrong bytes).
func TestDegradeDiskFaultParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity suite is slow")
	}
	ref := referenceResponses(t)

	inj := fault.New(7)
	inj.Enable(fault.DiskRead, 0.3, 0)
	inj.Enable(fault.DiskWrite, 0.3, 0)
	inj.Enable(fault.DiskTorn, 0.2, 0)
	disk, err := engine.OpenDiskTier(t.TempDir(), 0, codec.New())
	if err != nil {
		t.Fatal(err)
	}
	disk.SetFaults(inj)
	eng := engine.New(engine.Options{Workers: 2, Disk: disk})
	t.Cleanup(eng.Close)
	srv := NewWithConfig(eng, nil, Config{Fault: inj})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Two passes: the first computes under write faults, the second
	// re-reads under read faults.
	for pass := 0; pass < 2; pass++ {
		for _, req := range parityRequests() {
			status, body := doRequest(t, ts.URL, req)
			if status != http.StatusOK {
				t.Fatalf("pass %d, %s: status %d: %s", pass, req.name, status, body)
			}
			if !bytes.Equal(body, ref[req.name]) {
				t.Errorf("pass %d, %s: response differs under disk faults", pass, req.name)
			}
		}
	}

	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Fault == nil {
		t.Fatal("stats must expose the fault section when an injector is installed")
	}
	var injected uint64
	for _, n := range st.Fault.Injected {
		injected += n
	}
	if injected == 0 {
		t.Error("fault injector never fired — the test proved nothing")
	}
}

// TestDegradePeerFaultParity runs a two-node cluster where node 0's
// entire outbound peer transport fails deterministically: every parity
// request through EITHER entry node must still answer 200
// byte-identical (replica/local fallback), node 0's breaker must open
// and fast-fail instead of re-dialing a dead transport, and the
// breaker fallback must be visible in the stats.
func TestDegradePeerFaultParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node parity suite is slow")
	}
	ref := referenceResponses(t)

	inj := fault.New(42)
	inj.Enable(fault.PeerError, 1, 0)

	switches := make([]*switchHandler, 2)
	nodes := make([]*clusterNode, 2)
	urls := make([]string, 2)
	for i := range nodes {
		switches[i] = &switchHandler{}
		ts := httptest.NewServer(switches[i])
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{ts: ts, url: ts.URL}
		urls[i] = ts.URL
	}
	for i := range nodes {
		opts := shard.Options{}
		var cfg Config
		if i == 0 {
			opts.BreakerFailures = 2
			opts.BreakerCooldown = 10 * time.Second // no half-open during the test
			opts.WrapTransport = inj.Transport
			cfg.Fault = inj
		}
		cl, err := shard.New(urls[i], urls, opts)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(engine.Options{
			Workers: 2,
			Remote:  shard.NewFetcher(cl, codec.New()),
		})
		t.Cleanup(eng.Close)
		nodes[i].srv = NewWithConfig(eng, cl, cfg)
		switches[i].set(nodes[i].srv.Handler())
	}

	for entry, node := range nodes {
		for _, req := range parityRequests() {
			status, body := doRequest(t, node.url, req)
			if status != http.StatusOK {
				t.Fatalf("entry %d, %s: status %d: %s", entry, req.name, status, body)
			}
			if !bytes.Equal(body, ref[req.name]) {
				t.Errorf("entry %d, %s: response differs under peer faults", entry, req.name)
			}
		}
	}

	bs := nodes[0].srv.Cluster().BreakerStats()
	if bs.Opens == 0 {
		t.Errorf("node 0's breaker never opened: %+v", bs)
	}
	if bs.FastFails == 0 {
		t.Errorf("open breaker never fast-failed a call: %+v", bs)
	}
	st := nodes[0].srv.Cluster().Stats()
	if st.ProxyFallbackReasons[string(shard.FallbackBreaker)]+
		st.ProxyFallbackReasons[string(shard.FallbackTransport)] == 0 {
		t.Errorf("no transport/breaker proxy fallback recorded: %+v", st.ProxyFallbackReasons)
	}
}

// TestDegradePanicRecovery proves the HTTP panic barrier: a panicking
// handler becomes a logged JSON 500 plus a counter bump, and the
// server keeps serving on the same client connection.
func TestDegradePanicRecovery(t *testing.T) {
	srv := New(engine.New(engine.Options{Workers: 1}))
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	mux.HandleFunc("GET /v1/ok", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "fine") //nolint:errcheck
	})
	ts := httptest.NewServer(srv.observe(mux))
	t.Cleanup(ts.Close)

	resp, body := postJSON(t, ts.URL+"/v1/panic", `{}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("panic response is not the error envelope: %q", body)
	}
	if got := srv.httpPanics.Load(); got != 1 {
		t.Errorf("httpPanics = %d, want 1", got)
	}
	// The same server (and connection pool) still answers.
	r2, err := http.Get(ts.URL + "/v1/ok")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("request after panic: status %d", r2.StatusCode)
	}

	// The counter reaches /metrics.
	api := httptest.NewServer(srv.Handler())
	t.Cleanup(api.Close)
	mresp, err := http.Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mb), "spmt_http_panics_total 1") {
		t.Error("spmt_http_panics_total not exported")
	}
}

// TestDegradeReadyzDraining checks the liveness/readiness split:
// draining flips /readyz to 503 while /healthz stays 200.
func TestDegradeReadyzDraining(t *testing.T) {
	srv, _ := newTestServer(t)
	ops := httptest.NewServer(srv.OpsHandler())
	t.Cleanup(ops.Close)

	if code := getStatus(t, ops.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz at rest = %d", code)
	}
	srv.SetDraining(true)
	if code := getStatus(t, ops.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", code)
	}
	if code := getStatus(t, ops.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200 (liveness != readiness)", code)
	}
	srv.SetDraining(false)
	if code := getStatus(t, ops.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after drain cleared = %d", code)
	}
}

// TestDegradeClientDisconnectMidBatch proves a client hanging up
// mid-stream stops the batch: specs not yet started never run (the
// engine's sim latency count — one observation per executed sim —
// stops growing below the grid size) and the handler's goroutines
// drain.
func TestDegradeClientDisconnectMidBatch(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	t.Cleanup(eng.Close)
	srv := New(eng)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	http.DefaultClient.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	const grid = 12
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/batch",
		strings.NewReader(`{"size":"test","sweep":{"benches":["compress"],"tus":[1,2,3,4,5,6,7,8,9,10,11,12]}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("first NDJSON line: %v", err)
	}
	// Hang up after the first line.
	cancel()
	resp.Body.Close()

	// The sim count must stop growing strictly below the grid size:
	// in-flight sims finish, unstarted ones are never run.
	simCount := func() uint64 { return eng.Stats().Latency["sim"].Count }
	var last uint64
	stable := 0
	pollUntil(t, 30*time.Second, func() bool {
		cur := simCount()
		if cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
		return stable >= 5 // ~500ms without a new sim completing
	})
	if got := simCount(); got >= grid {
		t.Errorf("all %d sims ran despite mid-stream disconnect (count=%d)", grid, got)
	}

	// No leaked goroutines: the handler, SimEach, and slot channels all
	// unwind back to (about) the pre-request baseline.
	http.DefaultClient.CloseIdleConnections()
	pollUntil(t, 10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	})
	if n := runtime.NumGoroutine(); n > baseline+3 {
		t.Errorf("goroutines leaked: baseline %d, now %d", baseline, n)
	}
}

// waitFor polls cond every 100ms until it holds or the deadline
// passes (then fails the test).
func pollUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", d)
}

// getStatus GETs a URL and returns just the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode
}
