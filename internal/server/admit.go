// Server-side admission: the glue between the HTTP handlers and the
// cost-tiered gate in internal/admit. Each compute endpoint declares a
// weight (≈ engine jobs it will pin) and a warmness probe (is the
// answer already in the artifact store?); warm requests bypass the
// gate so an overloaded node keeps serving cached traffic flat-out,
// while cold computes queue boundedly and shed with 429 + Retry-After.
//
// The gate sits on the LOCAL-COMPUTE path only, after routeToOwner has
// declined: a proxied request is gated by its owner, and the owner's
// 429 is relayed verbatim (429 is not a transient status), so the
// cluster sheds consistently instead of ping-ponging rejected work.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/admit"
	"repro/internal/engine"
)

// Endpoint weights, in gate units (≈ concurrently-pinned engine jobs).
// Analyze resolves one artifact chain; pairs/simulate add a table or
// sim on top; a figure fans a whole sweep into the engine at once.
const (
	weightAnalyze = 1
	weightTable   = 2
	weightFigure  = 4
)

// admitState tracks, per request, whether the request already holds
// gate capacity — the handshake between the up-front admitCompute call
// and the engine-side compute gate. Once a request has acquired (or a
// leaf acquisition succeeded), nested compute-gate consultations pass
// for free: the request's weight already covers its whole job tree,
// and re-acquiring per dependency would deadlock a small gate against
// itself.
type admitState struct {
	held atomic.Bool
}

type admitStateKey struct{}

// admitStateFrom extracts the request's admitState (nil outside the
// middleware, e.g. direct handler tests).
func admitStateFrom(ctx context.Context) *admitState {
	st, _ := ctx.Value(admitStateKey{}).(*admitState)
	return st
}

// withComputeGate installs the engine-side admission hook (and its
// per-request state) on ctx: when Exec commits to computing a keyed
// artifact under this request and the request does not already hold
// gate capacity — the warm-probe classification was stale — a weight-1
// slot is acquired (or the compute refused) at that moment.
func (s *Server) withComputeGate(ctx context.Context) context.Context {
	st := &admitState{}
	ctx = context.WithValue(ctx, admitStateKey{}, st)
	return engine.WithComputeGate(ctx, func(c context.Context) (func(), error) {
		if st.held.Load() {
			return nil, nil
		}
		release, err := s.gate.Acquire(c, 1)
		if err != nil {
			s.admitDecisions.Add(1, "compute", rejectDecision(err))
			return nil, fmt.Errorf("overloaded: %w", err)
		}
		s.admitDecisions.Add(1, "compute", "recheck")
		// First acquisition covers the request's remaining job tree.
		st.held.Store(true)
		return func() {
			st.held.Store(false)
			release()
		}, nil
	})
}

// admitCompute gates one cold compute (or records a warm bypass).
// ok=false means the rejection response has been written and the
// handler must return; ok=true hands back a release closure the
// handler must call (defer) when its compute finishes.
func (s *Server) admitCompute(w http.ResponseWriter, r *http.Request, endpoint string, weight int, warm bool) (release func(), ok bool) {
	if s.gate == nil {
		return func() {}, true
	}
	if warm {
		s.gate.NoteBypass()
		s.admitDecisions.Add(1, endpoint, "bypass")
		return func() {}, true
	}
	release, err := s.gate.Acquire(r.Context(), weight)
	if err == nil {
		s.admitDecisions.Add(1, endpoint, "admit")
		if st := admitStateFrom(r.Context()); st != nil {
			st.held.Store(true)
			inner := release
			release = func() {
				st.held.Store(false)
				inner()
			}
		}
		return release, true
	}
	s.admitDecisions.Add(1, endpoint, rejectDecision(err))
	if errors.Is(err, admit.ErrDeadline) && r.Context().Err() != nil {
		// The request's own budget is spent — that is deadline
		// exhaustion (504), not overload shedding (429): retrying
		// immediately would be correct for the client, waiting
		// Retry-After would not help.
		writeError(w, http.StatusGatewayTimeout, fmt.Errorf("deadline exhausted: %w", err))
		return nil, false
	}
	// Every other rejection is a 429: the request was well-formed, the
	// node is shedding. Retry-After tells a well-behaved client when
	// the backlog should have moved.
	w.Header().Set("Retry-After", strconv.Itoa(s.gate.RetryAfter()))
	writeError(w, http.StatusTooManyRequests, fmt.Errorf("overloaded: %w", err))
	return nil, false
}

// rejectDecision labels a gate rejection for the decision counter.
func rejectDecision(err error) string {
	switch {
	case errors.Is(err, admit.ErrSaturated):
		return "reject_full"
	case errors.Is(err, admit.ErrDeadline):
		return "reject_deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return "reject_wait"
}

// computeStatus maps a compute error onto its HTTP status: deadline
// exhaustion (minted locally or propagated via X-Spmt-Deadline) is a
// 504 — the request was valid but its time budget ran out mid-compute
// — and a compute-time admission rejection surfaced through the engine
// is the same 429 the up-front gate would have sent. Anything else
// keeps the handler's own fallback status.
func computeStatus(fallback int, err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, admit.ErrSaturated) || errors.Is(err, admit.ErrWaitTimeout) ||
		errors.Is(err, admit.ErrDeadline) {
		return http.StatusTooManyRequests
	}
	return fallback
}

// computeError writes a compute-path error response, attaching the
// gate's Retry-After hint when the status is an admission 429. All
// handler compute-error paths funnel through here so an engine-
// surfaced rejection carries the same headers an up-front one does.
func (s *Server) computeError(w http.ResponseWriter, fallback int, err error) {
	status := computeStatus(fallback, err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.gate.RetryAfter()))
	}
	writeError(w, status, err)
}
