// Server-side admission: the glue between the HTTP handlers and the
// cost-tiered gate in internal/admit. Each compute endpoint declares a
// weight (≈ engine jobs it will pin) and a warmness probe (is the
// answer already in the artifact store?); warm requests bypass the
// gate so an overloaded node keeps serving cached traffic flat-out,
// while cold computes queue boundedly and shed with 429 + Retry-After.
//
// The gate sits on the LOCAL-COMPUTE path only, after routeToOwner has
// declined: a proxied request is gated by its owner, and the owner's
// 429 is relayed verbatim (429 is not a transient status), so the
// cluster sheds consistently instead of ping-ponging rejected work.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/admit"
)

// Endpoint weights, in gate units (≈ concurrently-pinned engine jobs).
// Analyze resolves one artifact chain; pairs/simulate add a table or
// sim on top; a figure fans a whole sweep into the engine at once.
const (
	weightAnalyze = 1
	weightTable   = 2
	weightFigure  = 4
)

// admitCompute gates one cold compute (or records a warm bypass).
// ok=false means the rejection response has been written and the
// handler must return; ok=true hands back a release closure the
// handler must call (defer) when its compute finishes.
func (s *Server) admitCompute(w http.ResponseWriter, r *http.Request, endpoint string, weight int, warm bool) (release func(), ok bool) {
	if s.gate == nil {
		return func() {}, true
	}
	if warm {
		s.gate.NoteBypass()
		s.admitDecisions.Add(1, endpoint, "bypass")
		return func() {}, true
	}
	release, err := s.gate.Acquire(r.Context(), weight)
	if err == nil {
		s.admitDecisions.Add(1, endpoint, "admit")
		return release, true
	}
	decision := "reject_wait"
	switch {
	case errors.Is(err, admit.ErrSaturated):
		decision = "reject_full"
	case errors.Is(err, admit.ErrDeadline):
		decision = "reject_deadline"
	case errors.Is(err, context.Canceled):
		decision = "canceled"
	}
	s.admitDecisions.Add(1, endpoint, decision)
	// Every rejection is a 429: the request was well-formed, the node
	// is shedding. Retry-After tells a well-behaved client when the
	// backlog should have moved.
	w.Header().Set("Retry-After", strconv.Itoa(s.gate.RetryAfter()))
	writeError(w, http.StatusTooManyRequests, fmt.Errorf("overloaded: %w", err))
	return nil, false
}

// computeStatus maps a compute error onto its HTTP status: deadline
// exhaustion (minted locally or propagated via X-Spmt-Deadline) is a
// 504 — the request was valid but its time budget ran out mid-compute
// — anything else keeps the handler's own fallback status.
func computeStatus(fallback int, err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return fallback
}
