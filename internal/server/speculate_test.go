// Speculation + correctness-fix suite: speculative precomputation must
// be byte-invisible on /v1 (on vs off, idle vs saturated) while its
// hits eliminate demand-path recompute; and the three correctness
// regressions — the warm-probe/compute TOCTOU in admission, the
// sub-millisecond deadline truncation, and replication drop repair —
// each carry a test that fails on the old code.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/shard"
	"repro/internal/workload"
)

// simSpec returns the resolved SimSpec (and its artifact key) for the
// canonical compress/test/profile request at the given TU count —
// matching the defaults handleSimulate applies.
func simSpec(tus int) (expt.SimSpec, string) {
	sp := expt.SimSpec{Bench: "compress", Policy: "profile", TUs: tus, Predictor: cluster.Perfect}
	return sp, expt.SimKey(workload.SizeTest, sp)
}

func simBody(tus int) string {
	return fmt.Sprintf(`{"bench":"compress","size":"test","tus":%d}`, tus)
}

// TestSpeculationDeterminism is the tentpole acceptance test: train the
// predictor on a tus=1→tus=2 progression, evict the tus=2 artifact,
// and check that re-requesting tus=1 launches the tus=2 sim
// speculatively on idle workers — so the next demand request is served
// from the store with ZERO demand-path recompute and byte-identical to
// a speculation-off server — without touching admission accounting.
func TestSpeculationDeterminism(t *testing.T) {
	// Reference bodies from a speculation-off server.
	_, refTS := newTestServer(t)
	resp, ref1 := postJSON(t, refTS.URL+"/v1/simulate", simBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference tus=1: status %d: %s", resp.StatusCode, ref1)
	}
	_, ref2 := postJSON(t, refTS.URL+"/v1/simulate", simBody(2))

	eng := engine.New(engine.Options{Workers: 2})
	srv := NewWithConfig(eng, nil, Config{Speculate: true, AdmitCapacity: 4})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Train: the sweep progression 1→2 is one observed transition.
	resp, b1 := postJSON(t, ts.URL+"/v1/simulate", simBody(1))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b1, ref1) {
		t.Fatalf("tus=1 with speculation on: status %d, parity %v", resp.StatusCode, bytes.Equal(b1, ref1))
	}
	resp, b2 := postJSON(t, ts.URL+"/v1/simulate", simBody(2))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b2, ref2) {
		t.Fatalf("tus=2 with speculation on: status %d, parity %v", resp.StatusCode, bytes.Equal(b2, ref2))
	}

	// Evict the predicted artifact, then replay the predecessor: the
	// predictor must launch tus=2 on an idle worker.
	_, key2 := simSpec(2)
	if !eng.Drop(key2) {
		t.Fatalf("Drop(%q) found nothing to evict", key2)
	}
	admitBefore := srv.gate.Stats()
	resp, b1b := postJSON(t, ts.URL+"/v1/simulate", simBody(1))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b1b, ref1) {
		t.Fatalf("tus=1 replay: status %d, parity %v", resp.StatusCode, bytes.Equal(b1b, ref1))
	}
	// WastedBytes > 0 means the launch record landed AFTER Launch
	// returned — the sim's Exec (and its latency observation) is fully
	// retired before the demand-path meter below is snapshotted.
	pollUntil(t, 15*time.Second, func() bool {
		st := srv.spec.stats()
		return st.Launches >= 1 && st.WastedBytes > 0 && eng.Has(key2)
	})

	// The speculative launch bypassed admission accounting entirely:
	// only the tus=1 replay's warm bypass moved the gate counters.
	admitAfter := srv.gate.Stats()
	if admitAfter.Admitted != admitBefore.Admitted {
		t.Errorf("speculative launch consumed admission: admitted %d → %d",
			admitBefore.Admitted, admitAfter.Admitted)
	}
	if admitAfter.Bypassed != admitBefore.Bypassed+1 {
		t.Errorf("bypassed %d → %d, want exactly the one demand replay",
			admitBefore.Bypassed, admitAfter.Bypassed)
	}

	// Demand request for the predicted artifact: zero recompute (the
	// sim latency histogram — one observation per executed sim — must
	// not move) and byte-identical to the speculation-off run.
	before := eng.Stats().Latency["sim"].Count
	resp, b2b := postJSON(t, ts.URL+"/v1/simulate", simBody(2))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b2b, ref2) {
		t.Fatalf("predicted demand request: status %d, parity %v", resp.StatusCode, bytes.Equal(b2b, ref2))
	}
	if after := eng.Stats().Latency["sim"].Count; after != before {
		t.Errorf("demand request recomputed: sim runs %d → %d, want store hit", before, after)
	}
	st := srv.spec.stats()
	if st.Hits < 1 || st.Accuracy <= 0 || st.Predictions < 1 {
		t.Errorf("spec books after hit: %+v", st)
	}

	// Both observability views expose the books.
	var stats statsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Spec == nil || stats.Spec.Launches < 1 || stats.Spec.Hits < 1 {
		t.Errorf("/v1/stats spec section: %+v", stats.Spec)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{
		"spmt_spec_predictions_total", "spmt_spec_launches_total", "spmt_spec_hits_total",
		"spmt_spec_accuracy", "spmt_spec_wasted_bytes", "spmt_spec_predictor_observations_total",
	} {
		if !strings.Contains(string(mb), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestSpeculationUnderSaturationParity proves speculation stands down
// under admission saturation instead of competing with demand work:
// queued predictions are withdrawn (never launched), warm demand
// traffic stays byte-identical throughout, recovery serves the evicted
// artifact correctly, and no goroutines leak.
func TestSpeculationUnderSaturationParity(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	srv := NewWithConfig(eng, nil, Config{
		Speculate:     true,
		AdmitCapacity: 1,
		AdmitQueue:    1,
		AdmitMaxWait:  10 * time.Second,
	})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Warm + train, then capture the steady-state goroutine count.
	resp, ref1 := postJSON(t, ts.URL+"/v1/simulate", simBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up tus=1: status %d", resp.StatusCode)
	}
	resp, ref2 := postJSON(t, ts.URL+"/v1/simulate", simBody(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up tus=2: status %d", resp.StatusCode)
	}
	http.DefaultClient.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	// Saturate: occupy the whole gate, then fill the single queue slot
	// with a cold compute.
	release, err := srv.gate.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan int, 1)
	go func() {
		r, _ := postJSON(t, ts.URL+"/v1/analyze", `{"bench":"ijpeg","size":"test"}`)
		queued <- r.StatusCode
	}()
	pollUntil(t, 5*time.Second, func() bool { return srv.gate.Saturated() })

	// A warm replay during saturation must answer byte-identically AND
	// have its prediction withdrawn, not launched.
	_, key2 := simSpec(2)
	if !eng.Drop(key2) {
		t.Fatalf("Drop(%q) found nothing to evict", key2)
	}
	resp, b1 := postJSON(t, ts.URL+"/v1/simulate", simBody(1))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b1, ref1) {
		t.Fatalf("warm replay under saturation: status %d, parity %v", resp.StatusCode, bytes.Equal(b1, ref1))
	}
	pollUntil(t, 5*time.Second, func() bool { return srv.spec.stats().Withdrawn >= 1 })
	if st := srv.spec.stats(); st.Launches != 0 {
		t.Errorf("speculation launched during saturation: %+v", st)
	}

	// Recover: the queued compute admits, and the evicted artifact is
	// served correctly on demand (cold compute, same bytes).
	release()
	select {
	case code := <-queued:
		if code != http.StatusOK {
			t.Errorf("queued request after release: status %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued request never completed after release")
	}
	resp, b2 := postJSON(t, ts.URL+"/v1/simulate", simBody(2))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(b2, ref2) {
		t.Fatalf("post-recovery tus=2: status %d, parity %v", resp.StatusCode, bytes.Equal(b2, ref2))
	}

	// No goroutines leaked by the withdraw/launch machinery.
	http.DefaultClient.CloseIdleConnections()
	pollUntil(t, 10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	})
}

// TestAdmitRecheckClosesTOCTOU is the admission regression test: a
// request classified warm by the handler's index probe bypasses the
// gate, but if the artifact is gone by the time Exec commits to
// computing (here: resident only in a disk tier whose reads fail), the
// compute-time re-check must refuse under a full gate. The old code
// computed ungated and answered 200.
func TestAdmitRecheckClosesTOCTOU(t *testing.T) {
	// Warm a store directory with one sim artifact, then shut the
	// engine down cleanly.
	dir := t.TempDir()
	disk1, err := engine.OpenDiskTier(dir, 0, codec.New())
	if err != nil {
		t.Fatal(err)
	}
	eng1 := engine.New(engine.Options{Workers: 2, Disk: disk1})
	ts1 := httptest.NewServer(New(eng1).Handler())
	resp, ref := postJSON(t, ts1.URL+"/v1/simulate", simBody(4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: status %d: %s", resp.StatusCode, ref)
	}
	ts1.Close()
	eng1.Close()

	// Restart over the same directory: the sim artifact is indexed on
	// disk (so the warm probe passes) but not in memory. The bench
	// chain is rebuilt up front while the gate is free, because the
	// simulate probe needs Has(benchKey) too.
	inj := fault.New(3)
	disk2, err := engine.OpenDiskTier(dir, 0, codec.New())
	if err != nil {
		t.Fatal(err)
	}
	disk2.SetFaults(inj)
	eng2 := engine.New(engine.Options{Workers: 2, Disk: disk2})
	t.Cleanup(eng2.Close)
	srv := NewWithConfig(eng2, nil, Config{
		AdmitCapacity: 1,
		AdmitQueue:    1,
		AdmitMaxWait:  100 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"bench":"compress","size":"test"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("bench rebuild: status %d: %s", resp.StatusCode, body)
	}
	_, simKey := simSpec(4)
	if !eng2.Has(simKey) {
		t.Fatalf("restart lost the disk index for %q", simKey)
	}

	// Occupy the whole gate, then make every disk read fail: the
	// request classifies warm, bypasses the gate, and discovers at
	// compute time that the artifact is unreadable.
	release, err := srv.gate.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	inj.Enable(fault.DiskRead, 1, 0)
	resp, body := postJSON(t, ts.URL+"/v1/simulate", simBody(4))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("stale-warm compute under a full gate: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("compute-time 429 must carry Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("429 body is not the error envelope: %q", body)
	}
	if st := srv.gate.Stats(); st.RejectedWait == 0 && st.RejectedFull == 0 {
		t.Errorf("the gate never saw the compute-time acquisition: %+v", st)
	}

	// Release the gate: the same request now admits at compute time,
	// recomputes (reads still fail), and answers byte-identically.
	release()
	admitted := srv.gate.Stats().Admitted
	resp, body = postJSON(t, ts.URL+"/v1/simulate", simBody(4))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, ref) {
		t.Fatalf("recompute after release: status %d, parity %v", resp.StatusCode, bytes.Equal(body, ref))
	}
	if srv.gate.Stats().Admitted == admitted {
		t.Error("recompute never acquired the gate (still running ungated)")
	}
}

// TestDeadlineZeroHeaderIsSpentBudget is the deadline regression test:
// an explicit X-Spmt-Deadline of 0 means the sender's budget is SPENT,
// not absent. Cold compute must answer 504 without running anything;
// warm, store-resolvable requests still answer 200 byte-identically.
// The old code ignored the header and granted an unbounded budget.
func TestDeadlineZeroHeaderIsSpentBudget(t *testing.T) {
	srv, ts := newTestServer(t)
	do := func(deadline string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/simulate", strings.NewReader(simBody(3)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if deadline != "" {
			req.Header.Set(shard.DeadlineHeader, deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}

	resp, body := do("0")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("cold compute with a spent budget: status %d, want 504: %s", resp.StatusCode, body)
	}
	if got := srv.Engine().Stats().Latency["sim"].Count; got != 0 {
		t.Errorf("spent-budget request ran %d sims, want 0", got)
	}

	resp, ref := do("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unbudgeted compute: status %d: %s", resp.StatusCode, ref)
	}
	resp, body = do("0")
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, ref) {
		t.Fatalf("warm request with a spent budget: status %d, parity %v (store hits need no budget)",
			resp.StatusCode, bytes.Equal(body, ref))
	}
}

// TestDeadlineTinyBudgetAcrossHops drives a ~1ms budget through a
// two-node forward: with every worker pinned, no hop may compute, and
// the client must get a clean 504 — never a 200 minted on a hop that
// misread the sub-millisecond remainder as "no deadline".
func TestDeadlineTinyBudgetAcrossHops(t *testing.T) {
	nodes := startTestCluster(t, 2)

	// Pick a spec owned by the far node so the entry hop forwards.
	tus := 0
	for c := 1; c <= 64; c++ {
		_, key := simSpec(c)
		if nodes[0].srv.Cluster().Owner(key) == nodes[1].url {
			tus = c
			break
		}
	}
	if tus == 0 {
		t.Fatal("no spec in 1..64 is owned by node 1")
	}
	for _, n := range nodes {
		release := blockEngineWorker(t, n.srv.Engine(), 2)
		defer release()
	}

	req, err := http.NewRequest("POST", nodes[0].url+"/v1/simulate", strings.NewReader(simBody(tus)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(shard.DeadlineHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("1ms budget across two pinned hops: status %d, want 504: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("504 body is not the error envelope: %q", body)
	}
}

// TestReplicationDropRepair is the replication regression test: a
// replicator whose queue overflows (capacity 1, no workers) leaves
// every computed artifact at R=1, and with STABLE membership nothing
// used to repair that. The drop-repair tick must notice the
// accumulated drops and trigger sweeps until every disk key is
// resident on every member of its replica set.
func TestReplicationDropRepair(t *testing.T) {
	if testing.Short() {
		t.Skip("replication repair suite is slow")
	}
	const n = 2
	nodes := make([]*clusterNode, n)
	urls := make([]string, n)
	switches := make([]*switchHandler, n)
	for i := range nodes {
		switches[i] = &switchHandler{}
		ts := httptest.NewServer(switches[i])
		t.Cleanup(ts.Close)
		nodes[i] = &clusterNode{ts: ts, url: ts.URL}
		urls[i] = ts.URL
	}
	for i := range nodes {
		cl, err := shard.New(urls[i], urls, shard.Options{})
		if err != nil {
			t.Fatal(err)
		}
		disk, err := engine.OpenDiskTier(t.TempDir(), 0, codec.New())
		if err != nil {
			t.Fatal(err)
		}
		repl := shard.NewReplicatorOpts(cl, codec.New(), shard.ReplicatorOptions{QueueCap: 1, Workers: -1})
		eng := engine.New(engine.Options{
			Workers:   2,
			Disk:      disk,
			Remote:    shard.NewFetcher(cl, codec.New()),
			Replicate: repl,
		})
		t.Cleanup(eng.Close)
		t.Cleanup(repl.Close)
		nodes[i].srv = NewWithConfig(eng, cl, Config{ReplRepairInterval: 25 * time.Millisecond})
		t.Cleanup(nodes[i].srv.Close)
		switches[i].set(nodes[i].srv.Handler())
	}

	// Compute enough artifacts that the 1-slot queue must shed.
	for _, req := range parityRequests()[:4] {
		if status, body := doRequest(t, nodes[0].url, req); status != http.StatusOK {
			t.Fatalf("warm-up %s: status %d: %s", req.name, status, body)
		}
	}
	var dropped uint64
	for _, node := range nodes {
		dropped += node.srv.Cluster().Stats().Replication.Dropped
	}
	if dropped == 0 {
		t.Fatal("the overflow burst never dropped a push — the test proved nothing")
	}

	// Membership never changes from here on: only the drop-repair tick
	// can start the sweeps that restore R=2.
	byURL := make(map[string]*clusterNode, n)
	for _, node := range nodes {
		byURL[node.url] = node
	}
	waitFor(t, "drop-repair convergence to R=2", func() bool {
		for _, node := range nodes {
			node.srv.Engine().Disk().Flush() // the sweep scans the disk index
		}
		for _, node := range nodes {
			for _, key := range node.srv.Engine().Disk().Keys() {
				for _, owner := range node.srv.Cluster().ReplicaSet(key) {
					if o := byURL[owner]; o != nil && !o.srv.Engine().Has(key) {
						return false
					}
				}
			}
		}
		return true
	})
	var sweeps uint64
	for _, node := range nodes {
		sweeps += node.srv.Cluster().Stats().Replication.Sweeps
	}
	if sweeps == 0 {
		t.Error("convergence without a sweep — who repaired the replicas?")
	}
}
