// Speculative artifact precomputation: the paper's spawn-point idea
// applied to the request stream. Each resolved request spec is one
// "instruction" in a program trace; the predictor (internal/spec)
// learns which spec tends to follow which, and the speculator launches
// the predicted NEXT artifact on idle scheduler workers — so a client
// sweeping a config space finds each successive artifact already in
// the tiered store. Speculation is strictly additive: launches run
// only on otherwise-idle workers (sched's speculative task class),
// bypass admission accounting, stand down when the gate saturates or
// the server drains, and never change a /v1 response byte.
package server

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/expt"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/workload"
)

// specPayload is the launch recipe recorded with every predictor edge:
// enough resolved state to recompute the artifact without re-parsing a
// request.
type specPayload struct {
	kind  string // "bench" or "sim"
	bench string
	sz    workload.SizeClass
	spec  expt.SimSpec // kind "sim" only
}

// speculation owns one server's predictor + speculator pair and the
// request-stream history feeding them.
type speculation struct {
	s    *Server
	pred *spec.Predictor
	sp   *spec.Speculator

	mu   sync.Mutex
	last string // previous observed artifact key (the Markov state)
}

// newSpeculation wires the speculator's hooks into the server: pause
// on drain/saturation, launch only self-owned cold keys, submit
// through the scheduler's idle-only task class.
func newSpeculation(s *Server) *speculation {
	sc := &speculation{s: s, pred: spec.NewPredictor(0, 0)}
	sc.sp = spec.NewSpeculator(spec.Options{
		Paused: func() bool {
			return s.draining.Load() || s.gate.Saturated()
		},
		Eligible: func(key string) bool {
			if s.cluster != nil && !s.cluster.Owns(key) {
				return false
			}
			return !s.eng.Has(key)
		},
		Launch: sc.launch,
		Submit: func(fn func()) (<-chan struct{}, func()) {
			return s.eng.Sched().Speculate("spec", fn)
		},
	})
	return sc
}

// note records one demand-resolved artifact spec: score a hit if the
// key was speculatively launched, learn the transition from the
// previous spec, and enqueue the predicted successors of this one.
func (sc *speculation) note(key string, p specPayload) {
	sc.sp.MarkDemand(key)
	sc.mu.Lock()
	prev := sc.last
	sc.last = key
	sc.mu.Unlock()
	sc.pred.Observe(prev, key, p)
	if preds := sc.pred.Predict(key); len(preds) > 0 {
		sc.sp.Enqueue(preds)
	}
}

// launch computes one predicted artifact through the normal engine
// path — singleflight, tiered store, write-through replication — under
// a fresh trace whose exec spans are marked speculative. It runs on a
// scheduler worker claimed from the speculative queue.
func (sc *speculation) launch(ctx context.Context, p spec.Prediction) (int64, error) {
	pl, ok := p.Payload.(specPayload)
	if !ok {
		return 0, fmt.Errorf("speculation: bad payload %T for %q", p.Payload, p.Key)
	}
	ctx = engine.WithSpeculative(ctx)
	ctx = obs.ContextWithTrace(ctx, sc.s.tracer.Trace(""))
	suite, err := expt.NewSuiteEngineCtx(ctx, sc.s.eng, pl.sz, []string{pl.bench})
	if err != nil {
		return 0, err
	}
	if pl.kind == "sim" {
		if _, err := suite.Sim(suite.Bench(pl.bench), pl.spec); err != nil {
			return 0, err
		}
	}
	return sc.storedBytes(p.Key), nil
}

// storedBytes approximates the store cost of the launched artifact for
// the wasted-bytes gauge, mirroring the cache's own charging rule.
func (sc *speculation) storedBytes(key string) int64 {
	v, ok := sc.s.eng.Peek(key)
	if !ok {
		return 0
	}
	if s, ok := v.(engine.Sizer); ok {
		if b := s.ApproxBytes(); b > 0 {
			return b
		}
	}
	return 1 << 10
}

// close stops the speculator (withdrawing any queued launch).
func (sc *speculation) close() { sc.sp.Close() }

// specStats is the /v1/stats speculation section.
type specStats struct {
	spec.Stats
	Predictor spec.PredictorStats `json:"predictor"`
}

// stats snapshots both halves.
func (sc *speculation) stats() specStats {
	return specStats{Stats: sc.sp.Stats(), Predictor: sc.pred.Stats()}
}

// noteAnalyze feeds one resolved analyze spec into the predictor (
// no-op when speculation is disabled).
func (s *Server) noteAnalyze(bench string, sz workload.SizeClass) {
	if s.spec == nil {
		return
	}
	s.spec.note(expt.BenchKey(bench, sz), specPayload{kind: "bench", bench: bench, sz: sz})
}

// noteSim feeds one resolved simulate spec into the predictor (no-op
// when speculation is disabled).
func (s *Server) noteSim(sz workload.SizeClass, sp expt.SimSpec) {
	if s.spec == nil {
		return
	}
	s.spec.note(expt.SimKey(sz, sp), specPayload{kind: "sim", bench: sp.Bench, sz: sz, spec: sp})
}
