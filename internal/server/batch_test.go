package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// batchLines posts a /v1/batch request and splits the NDJSON body.
func batchLines(t *testing.T, url, body string) (*http.Response, []string) {
	t.Helper()
	resp, raw := postJSON(t, url+"/v1/batch", body)
	text := strings.TrimRight(string(raw), "\n")
	if text == "" {
		return resp, nil
	}
	return resp, strings.Split(text, "\n")
}

// TestBatchMatchesSerialSimulate: each NDJSON line must be
// byte-identical to the compacted body of the equivalent /v1/simulate
// call, with the request index prepended — the acceptance criterion
// for the batch API.
func TestBatchMatchesSerialSimulate(t *testing.T) {
	_, ts := newTestServer(t)
	specs := []string{
		`{"bench":"compress","policy":"none","tus":1}`,
		`{"bench":"compress","policy":"profile","tus":16}`,
		`{"bench":"ijpeg","policy":"heuristics","tus":4,"predictor":"stride"}`,
		`{"bench":"compress","policy":"profile","tus":16}`, // duplicate: dedups in flight
	}
	resp, lines := batchLines(t, ts.URL,
		fmt.Sprintf(`{"size":"test","specs":[%s]}`, strings.Join(specs, ",")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, strings.Join(lines, "\n"))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if len(lines) != len(specs) {
		t.Fatalf("batch returned %d lines for %d specs", len(lines), len(specs))
	}
	for i, spec := range specs {
		sresp, sbody := postJSON(t, ts.URL+"/v1/simulate",
			strings.Replace(spec, "{", `{"size":"test",`, 1))
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %d status = %d: %s", i, sresp.StatusCode, sbody)
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, sbody); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf(`{"index":%d,%s`, i, compact.String()[1:])
		if lines[i] != want {
			t.Errorf("line %d differs from serial simulate:\nbatch: %s\nwant:  %s", i, lines[i], want)
		}
	}
}

func TestBatchSweepExpansion(t *testing.T) {
	_, ts := newTestServer(t)
	resp, lines := batchLines(t, ts.URL,
		`{"size":"test","sweep":{"benches":["compress"],"policies":["none","profile"],"tus":[1,4]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if len(lines) != 4 {
		t.Fatalf("sweep expanded to %d lines, want 4 (2 policies x 2 tus)", len(lines))
	}
	// Deterministic nested order: policies outer, tus inner.
	wantOrder := []struct {
		policy string
		tus    int
	}{{"none", 1}, {"none", 4}, {"profile", 1}, {"profile", 4}}
	for i, line := range lines {
		var item struct {
			Index  int             `json:"index"`
			Bench  string          `json:"bench"`
			Policy string          `json:"policy"`
			TUs    int             `json:"tus"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if item.Index != i || item.Bench != "compress" ||
			item.Policy != wantOrder[i].policy || item.TUs != wantOrder[i].tus {
			t.Errorf("line %d = %+v, want index=%d policy=%s tus=%d",
				i, item, i, wantOrder[i].policy, wantOrder[i].tus)
		}
		if len(item.Result) == 0 {
			t.Errorf("line %d carries no result", i)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty", `{"size":"test"}`, "specs or a sweep"},
		{"bad bench", `{"size":"test","specs":[{"bench":"nope"}]}`, "unknown benchmark"},
		{"bad policy", `{"size":"test","specs":[{"bench":"compress","policy":"nope"}]}`, "unknown policy"},
		{"bad tus", `{"size":"test","specs":[{"bench":"compress","tus":-1}]}`, "tus must be"},
		{"bad predictor", `{"size":"test","specs":[{"bench":"compress","predictor":"psychic"}]}`, "unknown predictor"},
		{"bad size", `{"size":"galactic","specs":[{"bench":"compress"}]}`, "size"},
		{"unknown field", `{"size":"test","bogus":1}`, "bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/batch", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if !strings.Contains(string(body), tc.wantErr) {
				t.Errorf("error %q does not mention %q", body, tc.wantErr)
			}
		})
	}
}

func TestBatchSharesArtifactsWithSimulate(t *testing.T) {
	srv, ts := newTestServer(t)
	// Warm via batch...
	resp, _ := batchLines(t, ts.URL,
		`{"size":"test","specs":[{"bench":"compress","policy":"profile","tus":16}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("batch failed")
	}
	before := srv.Engine().Stats()
	// ...then the identical /v1/simulate must be pure cache hits.
	sresp, _ := postJSON(t, ts.URL+"/v1/simulate",
		`{"bench":"compress","size":"test","policy":"profile","tus":16}`)
	if sresp.StatusCode != http.StatusOK {
		t.Fatal("simulate failed")
	}
	after := srv.Engine().Stats()
	if sims := after.Latency["sim"].Count - before.Latency["sim"].Count; sims != 0 {
		t.Errorf("simulate after identical batch executed %d sim jobs, want 0", sims)
	}
}
