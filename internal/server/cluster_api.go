// Cluster control plane: the join/leave/membership/health endpoints
// behind live membership, and the artifact PUT/check endpoints behind
// R=2 replication. All of it lives under /v1/cluster and /v1/artifacts
// — none of it can alter an existing /v1 response body, which is what
// keeps the byte-parity invariant trivially intact.
//
//	POST /v1/cluster/join       {"node":url} → admit node, gossip, return membership
//	POST /v1/cluster/leave      {"node":url} → remove node, gossip, return membership
//	GET  /v1/cluster/membership              → current epoch-numbered membership
//	POST /v1/cluster/membership <membership> → gossip receive: adopt if newer, return ours
//	GET  /v1/cluster/health                  → liveness + membership fingerprint (prober)
//	PUT  /v1/artifacts?key=…                 → replication receive: store a pushed image
//	GET  /v1/artifacts?check=1&key=…         → 204/404 residency probe (sweep pre-check)
package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/shard"
)

// errNotClustered answers cluster-control requests on a standalone
// node.
func errNotClustered(w http.ResponseWriter) {
	writeError(w, http.StatusServiceUnavailable, fmt.Errorf("this node is not in cluster mode"))
}

// memberChange is the join/leave request body.
type memberChange struct {
	Node string `json:"node"`
}

// gossipMembership pushes ms to the rest of the cluster in the
// background. The originator of a membership change announces it;
// failed pushes are repaired by the prober's anti-entropy on its next
// round, so no retry machinery is needed here.
func (s *Server) gossipMembership(ms shard.Membership) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.cluster.Gossip(ctx, ms)
	}()
}

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		errNotClustered(w)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req memberChange
	if err := decodeBody(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ms, changed, err := s.cluster.AddMember(req.Node)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if changed {
		slog.Info("server: member joined", "node", req.Node, "epoch", ms.Epoch)
		s.gossipMembership(ms)
	}
	writeJSON(w, http.StatusOK, ms)
}

func (s *Server) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		errNotClustered(w)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req memberChange
	if err := decodeBody(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ms, changed, err := s.cluster.RemoveMember(req.Node)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if changed {
		slog.Info("server: member left", "node", req.Node, "epoch", ms.Epoch)
		s.gossipMembership(ms)
	}
	writeJSON(w, http.StatusOK, ms)
}

func (s *Server) handleMembershipGet(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		errNotClustered(w)
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Membership())
}

// handleMembershipPost is the gossip receiver: adopt the pushed view
// if newer, answer with ours either way (the sender adopts back if
// OURS is newer — gossip is symmetric repair).
func (s *Server) handleMembershipPost(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		errNotClustered(w)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var ms shard.Membership
	if err := decodeBody(body, &ms); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.cluster.AdoptMembership(ms, false) {
		slog.Info("server: adopted gossiped membership", "epoch", ms.Epoch)
	}
	writeJSON(w, http.StatusOK, s.cluster.Membership())
}

func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		errNotClustered(w)
		return
	}
	ms := s.cluster.Membership()
	writeJSON(w, http.StatusOK, shard.HealthDoc{
		OK:          true,
		Node:        s.cluster.Self(),
		Epoch:       ms.Epoch,
		Hash:        ms.Hash(),
		RingVersion: s.cluster.RingVersion(),
	})
}

// handleArtifactPut is the replication receiver: a peer pushing an
// artifact image it computed (write-through) or re-replicating after a
// membership change (sweep). The image is decoded with the shared
// codec and injected through the engine's store tiers; a key already
// resident or mid-computation here is reported stored=false, which the
// pusher counts as a dedupe, not an error.
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing key parameter"))
		return
	}
	kind := r.Header.Get(shard.ArtifactKindHeader)
	if kind == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing %s header", shard.ArtifactKindHeader))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, shard.MaxArtifactBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad artifact body: %w", err))
		return
	}
	v, err := s.codec.Decode(kind, data)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("undecodable %q image: %w", kind, err))
		return
	}
	stored := s.eng.Inject(key, v)
	if s.cluster != nil {
		s.cluster.NoteReplicaReceived(stored)
	}
	writeJSON(w, http.StatusOK, struct {
		Stored bool `json:"stored"`
	}{Stored: stored})
}
