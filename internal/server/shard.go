// Peer-mode routing: in a shard cluster every request is answered by
// the node owning its artifact key. The entry node forwards non-owned
// work to the owner verbatim (the owner's response bytes ARE the
// single-node response bytes, because every node runs the same
// deterministic pipeline over the same content keys), and any forward
// failure falls back to local compute, so a degraded cluster degrades
// in efficiency, never in availability or in response bytes.
//
// Batches are the one composite case: the validated grid is split
// per-spec across owners, each group streams back as a forwarded
// sub-batch, and the entry node re-merges the lines in request order —
// preserving the NDJSON stream contract bit-for-bit. A sub-batch that
// fails (dead shard, truncated stream, remote error line) has its
// missing specs recomputed locally, which reproduces the exact bytes a
// single-node server would have produced.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/expt"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// maxProxyBodyBytes caps a buffered owner response (the largest
// legitimate one is a full-size figure table, far below this). Guards
// the entry node against a misbehaving peer, like the artifact
// fetcher's own read cap.
const maxProxyBodyBytes = 1 << 28

// forwarded reports whether the request arrived from a peer shard.
// Forwarded requests are never re-routed: the receiver computes
// locally, which implements "owned work runs locally" and makes
// routing loops impossible even under (transient) membership
// disagreement.
func forwarded(r *http.Request) bool { return r.Header.Get(shard.ForwardedHeader) != "" }

// routeToOwner forwards the request to the artifact key's owning shard
// and streams the owner's response through, reporting true when the
// response has been written. A transient primary failure (transport
// error, 5xx, death mid-body) earns ONE retry against the key's
// replica after a jittered backoff — the node holding the warm copy
// under R=2. False means the caller must answer locally: standalone
// mode, forwarded or self-owned requests, and the fallback when the
// replica set is exhausted. The response bytes are identical on every
// path — primary, replica, or local — because every node runs the same
// deterministic pipeline.
func (s *Server) routeToOwner(w http.ResponseWriter, r *http.Request, key string, body []byte) bool {
	if s.cluster == nil || forwarded(r) || key == "" {
		return false
	}
	set := s.cluster.ReplicaSet(key)
	if len(set) == 0 {
		return false
	}
	primary := set[0]
	span, ctx := obs.StartSpan(r.Context(), "route", obs.A("key", key), obs.A("owner", primary))
	defer span.End()
	if primary == "" || primary == s.cluster.Self() {
		span.SetAttr("decision", "local")
		return false
	}
	handled, reason := s.forwardTo(ctx, w, r, primary, body, span)
	if handled {
		span.SetAttr("decision", "proxied")
		return true
	}
	if len(set) > 1 && set[1] != s.cluster.Self() {
		// The bounded replica retry: back off (jittered), then ask the
		// node replication keeps warm. A cancelled context skips it.
		if s.cluster.RetrySleep(ctx, key) {
			span.SetAttr("retry_peer", set[1])
			retried, _ := s.forwardTo(ctx, w, r, set[1], body, span)
			s.cluster.NoteRetry(retried)
			if retried {
				span.SetAttr("decision", "retried")
				return true
			}
		}
	}
	s.cluster.NoteProxyFallback(reason)
	span.SetAttr("decision", "fallback")
	span.SetAttr("reason", string(reason))
	return false
}

// forwardTo attempts one peer: forward, buffer, relay. handled=true
// means the response has been written; otherwise reason names the
// transient failure and nothing has been written (the body is fully
// buffered before the first byte goes out, which is what makes a
// second attempt — or local fallback — safe).
func (s *Server) forwardTo(ctx context.Context, w http.ResponseWriter, r *http.Request,
	peer string, body []byte, span *obs.Span) (handled bool, reason shard.FallbackReason) {
	resp, err := s.cluster.Forward(ctx, peer, r.Method, r.URL.RequestURI(), body)
	if err != nil {
		reason := shard.FallbackTransport
		if errors.Is(err, shard.ErrBreakerOpen) {
			// Fast-fail: the breaker refused before touching the network,
			// so the replica retry / local fallback starts immediately.
			reason = shard.FallbackBreaker
		}
		slog.Warn("server: forward failed",
			"method", r.Method, "path", r.URL.Path, "peer", peer, "err", err,
			"trace", obs.TraceIDFrom(ctx))
		return false, reason
	}
	defer resp.Body.Close()
	// From here the peer handled the request (and recorded its own
	// spans under our trace ID), so the span names it as a peer for the
	// cross-node stitcher even when we fall back.
	span.SetAttr("peer", peer)
	if shard.TransientStatus(resp.StatusCode) {
		slog.Warn("server: forward answered 5xx",
			"method", r.Method, "path", r.URL.Path, "peer", peer, "status", resp.StatusCode,
			"trace", obs.TraceIDFrom(ctx))
		return false, shard.FallbackStatus
	}
	// Buffer the whole (bounded JSON) body before relaying: a peer
	// dying mid-body must become a retry or local-compute fallback, not
	// a truncated 200 the client has no way to distinguish from
	// success. The read is capped so a misbehaving peer streaming
	// garbage becomes a fallback too, not an entry-node OOM.
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBodyBytes+1))
	if err != nil || len(out) > maxProxyBodyBytes {
		slog.Warn("server: forward died mid-body",
			"method", r.Method, "path", r.URL.Path, "peer", peer, "bytes", len(out), "err", err,
			"trace", obs.TraceIDFrom(ctx))
		return false, shard.FallbackBody
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(out) //nolint:errcheck // client went away
	return true, ""
}

// batchLine is one merged NDJSON result line of a sharded batch. Field
// names and order mirror batchItem exactly, with the result subobject
// carried as raw bytes: a line assembled from a sub-batch stream is
// byte-identical to the line the single-node handler encodes.
type batchLine struct {
	Index  int             `json:"index"`
	Bench  string          `json:"bench"`
	Size   string          `json:"size"`
	Policy string          `json:"policy"`
	TUs    int             `json:"tus"`
	Result json.RawMessage `json:"result"`
}

// wireBatchLine is the decoded shape of one sub-batch response line.
type wireBatchLine struct {
	Index  int             `json:"index"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// handleBatchSharded fans the validated grid out to the owning shards
// and merges the result streams in request order. specs are the
// defaulted wire specs (re-forwarded verbatim inside sub-batches);
// resolved are their validated SimSpec forms, index-aligned.
func (s *Server) handleBatchSharded(w http.ResponseWriter, r *http.Request,
	sz workload.SizeClass, specs []batchSpec, resolved []expt.SimSpec) {
	ctx := r.Context()

	// Group spec indices by owning shard, in first-appearance order.
	groups := make(map[string][]int)
	var order []string
	for i, sp := range resolved {
		owner := s.cluster.Owner(expt.SimKey(sz, sp))
		if _, ok := groups[owner]; !ok {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], i)
	}

	type line struct {
		result json.RawMessage
		err    string
	}
	slots := make([]chan line, len(resolved))
	for i := range slots {
		slots[i] = make(chan line, 1)
	}
	deliver := func(i int, res *cluster.Result, err error) {
		if err != nil {
			slots[i] <- line{err: err.Error()}
			return
		}
		raw, merr := json.Marshal(res)
		if merr != nil {
			slots[i] <- line{err: merr.Error()}
			return
		}
		slots[i] <- line{result: raw}
	}

	// runLocal computes the given specs on this node's engine: the
	// owned group, and the fallback for any spec a sub-batch failed to
	// return. The suite covers exactly the benchmarks these specs
	// touch — artifact chains for remote-owned benchmarks are never
	// built here (and warm ones are shared through the engine).
	runLocal := func(idxs []int) {
		var names []string
		seen := make(map[string]bool)
		for _, i := range idxs {
			if n := resolved[i].Bench; !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
		suite, err := expt.NewSuiteEngineCtx(ctx, s.eng, sz, names)
		if err != nil {
			for _, i := range idxs {
				deliver(i, nil, err)
			}
			return
		}
		reqs := make([]expt.SimReq, len(idxs))
		for j, i := range idxs {
			reqs[j] = expt.SimReq{Bench: suite.Bench(resolved[i].Bench), Spec: resolved[i]}
		}
		if err := suite.SimEach(ctx, reqs, func(j int, res *cluster.Result, err error) {
			deliver(idxs[j], res, err)
		}); err != nil {
			// Spec errors were excluded by validation; SimEach can only
			// fail before any callback fires.
			for _, i := range idxs {
				select {
				case slots[i] <- line{err: err.Error()}:
				default:
				}
			}
		}
	}

	// runRemote streams one owner's sub-batch, remapping its indices
	// into the request's. A sub-stream that transiently fails before
	// delivering a single line is retried ONCE against the group's
	// replica (any node answers byte-identically; the replica is the
	// one replication keeps warm). Anything still not received intact —
	// unreachable owners, non-200, truncated stream, remote error
	// line — is recomputed locally for byte-exact output.
	runRemote := func(owner string, idxs []int) {
		span, fctx := obs.StartSpan(ctx, "fanout",
			obs.A("owner", owner), obs.A("specs", strconv.Itoa(len(idxs))))
		defer span.End()
		sub := batchRequest{Size: sz.String(), Specs: make([]batchSpec, len(idxs))}
		for j, i := range idxs {
			sub.Specs[j] = specs[i]
		}
		body, err := json.Marshal(sub)
		if err != nil {
			runLocal(idxs)
			return
		}
		got := make([]bool, len(idxs))
		received := 0
		// stream attempts one peer; reason is "" when the sub-stream
		// arrived complete.
		stream := func(peer string) shard.FallbackReason {
			s.cluster.NoteBatchFanout()
			resp, err := s.cluster.Forward(fctx, peer, http.MethodPost, "/v1/batch", body)
			if err != nil {
				slog.Warn("server: batch fan-out unreachable",
					"peer", peer, "specs", len(idxs), "err", err, "trace", obs.TraceIDFrom(fctx))
				if errors.Is(err, shard.ErrBreakerOpen) {
					return shard.FallbackBreaker
				}
				return shard.FallbackTransport
			}
			span.SetAttr("peer", peer)
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				slog.Warn("server: batch fan-out rejected",
					"peer", peer, "specs", len(idxs), "status", resp.StatusCode, "trace", obs.TraceIDFrom(fctx))
				return shard.FallbackStatus
			}
			dec := json.NewDecoder(resp.Body)
			for {
				var wl wireBatchLine
				if err := dec.Decode(&wl); err != nil {
					break // io.EOF, or a truncated stream from a dying shard
				}
				if wl.Index < 0 || wl.Index >= len(idxs) || got[wl.Index] {
					continue
				}
				if wl.Error != "" || len(wl.Result) == 0 {
					continue // recompute locally: deterministic failures reproduce, transient ones vanish
				}
				got[wl.Index] = true
				received++
				slots[idxs[wl.Index]] <- line{result: wl.Result}
			}
			resp.Body.Close()
			if received < len(idxs) {
				return shard.FallbackStream
			}
			return ""
		}
		reason := stream(owner)
		if reason != "" {
			s.cluster.NoteProxyFallback(reason)
			// Retry the whole sub-batch against the replica only when
			// NOTHING arrived: a partially-delivered stream means the
			// owner was up and the missing specs likely failed
			// deterministically — recompute those locally instead of
			// replaying delivered work on another node.
			if received == 0 && len(idxs) > 0 {
				rset := s.cluster.ReplicaSet(expt.SimKey(sz, resolved[idxs[0]]))
				if len(rset) > 1 && rset[1] != s.cluster.Self() && rset[1] != owner &&
					s.cluster.RetrySleep(fctx, "batch/"+rset[1]) {
					span.SetAttr("retry_peer", rset[1])
					r2 := stream(rset[1])
					s.cluster.NoteRetry(r2 == "")
					if r2 == "" {
						reason = ""
					}
				}
			}
		}
		var missing []int
		for j, ok := range got {
			if !ok {
				missing = append(missing, idxs[j])
			}
		}
		if len(missing) > 0 {
			if reason == "" {
				reason = shard.FallbackStream
			}
			s.cluster.NoteBatchFallback(len(missing), reason)
			span.SetAttr("fallback_specs", strconv.Itoa(len(missing)))
			span.SetAttr("reason", string(reason))
			runLocal(missing)
		}
	}

	// Admission: the entry node gates its own share of the grid before
	// the stream starts (a rejection must be a clean whole-request 429,
	// never a broken half-stream). Remote groups are gated by their
	// owners; fallback recomputes stay ungated because by then the
	// stream is already committed — availability over shedding.
	selfCold, selfOwned := 0, 0
	for _, owner := range order {
		if owner == s.cluster.Self() || owner == "" {
			for _, i := range groups[owner] {
				selfOwned++
				if !s.eng.Has(expt.SimKey(sz, resolved[i])) {
					selfCold++
				}
			}
		}
	}
	release := func() {}
	if selfOwned > 0 {
		var ok bool
		if release, ok = s.admitCompute(w, r, "/v1/batch", selfCold, selfCold == 0); !ok {
			return
		}
	}
	var localWG sync.WaitGroup
	for _, owner := range order {
		idxs := groups[owner]
		if owner == s.cluster.Self() || owner == "" {
			localWG.Add(1)
			go func(idxs []int) {
				defer localWG.Done()
				runLocal(idxs)
			}(idxs)
		} else {
			go runRemote(owner, idxs)
		}
	}
	go func() {
		localWG.Wait()
		release()
	}()

	// Merge in request order, flushing each line as soon as it and all
	// its predecessors are done — the single-node stream contract.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range resolved {
		select {
		case <-ctx.Done():
			return
		case ln := <-slots[i]:
			var out any
			if ln.err != "" {
				out = batchError{Index: i, Error: ln.err}
			} else {
				// Observe the full merged stream (the Eligible hook
				// confines launches to self-owned keys; learning the
				// whole progression costs nothing and survives
				// membership moves).
				s.noteSim(sz, resolved[i])
				out = batchLine{
					Index:  i,
					Bench:  resolved[i].Bench,
					Size:   sz.String(),
					Policy: resolved[i].Policy,
					TUs:    resolved[i].TUs,
					Result: ln.result,
				}
			}
			if err := enc.Encode(out); err != nil {
				return // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// nodeStats is one member's slice of the cluster-aggregate stats view.
type nodeStats struct {
	Reachable bool          `json:"reachable"`
	Error     string        `json:"error,omitempty"`
	Engine    *engine.Stats `json:"engine,omitempty"`
	Requests  uint64        `json:"requests,omitempty"`
	Shard     *shard.Stats  `json:"shard,omitempty"`
}

// clusterAggregate sums the load-bearing counters across reachable
// members.
type clusterAggregate struct {
	Members         int    `json:"members"`
	Reachable       int    `json:"reachable"`
	Requests        uint64 `json:"requests"`
	Executed        uint64 `json:"executed"`
	Deduped         uint64 `json:"deduped"`
	CacheHits       uint64 `json:"cache_hits"`
	CacheMisses     uint64 `json:"cache_misses"`
	BytesResident   int64  `json:"bytes_resident"`
	DiskBytes       int64  `json:"disk_bytes"`
	Proxied         uint64 `json:"proxied"`
	RemoteFetches   uint64 `json:"remote_fetches"`
	ArtifactsServed uint64 `json:"artifacts_served"`
}

// clusterStats is the cluster view of /v1/stats: every member's local
// snapshot plus the aggregate.
type clusterStats struct {
	Aggregate clusterAggregate      `json:"aggregate"`
	Nodes     map[string]*nodeStats `json:"nodes"`
}

// clusterView fans /v1/stats?scope=local out to every member (self is
// answered from the already-taken local snapshot) and aggregates.
// Unreachable members are reported, not fatal: stats must work best on
// a degraded cluster.
func (s *Server) clusterView(r *http.Request, local statsResponse) *clusterStats {
	members := s.cluster.Members()
	nodes := make(map[string]*nodeStats, len(members))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range members {
		if m == s.cluster.Self() {
			mu.Lock()
			nodes[m] = &nodeStats{
				Reachable: true,
				Engine:    &local.Engine,
				Requests:  local.Requests,
				Shard:     local.Shard,
			}
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			var st statsResponse
			ns := &nodeStats{}
			if err := s.cluster.GetJSON(r.Context(), m, "/v1/stats?scope=local", &st); err != nil {
				ns.Error = err.Error()
			} else {
				ns.Reachable = true
				ns.Engine = &st.Engine
				ns.Requests = st.Requests
				ns.Shard = st.Shard
			}
			mu.Lock()
			nodes[m] = ns
			mu.Unlock()
		}(m)
	}
	wg.Wait()

	agg := clusterAggregate{Members: len(members)}
	for _, ns := range nodes {
		if !ns.Reachable {
			continue
		}
		agg.Reachable++
		agg.Requests += ns.Requests
		agg.Executed += ns.Engine.Executed
		agg.Deduped += ns.Engine.Deduped
		agg.CacheHits += ns.Engine.Cache.Hits
		agg.CacheMisses += ns.Engine.Cache.Misses
		agg.BytesResident += ns.Engine.Cache.BytesResident
		if ns.Engine.Disk != nil {
			agg.DiskBytes += ns.Engine.Disk.BytesResident
		}
		if ns.Shard != nil {
			agg.Proxied += ns.Shard.Proxied
			agg.RemoteFetches += ns.Shard.RemoteFetches
			agg.ArtifactsServed += ns.Shard.ArtifactsServed
		}
	}
	return &clusterStats{Aggregate: agg, Nodes: nodes}
}
