// Package admit is the server's cost-tiered admission gate: a
// weighted concurrency limiter with a bounded, deadline-aware FIFO
// wait queue in front of cold computes. Requests that resolve from
// the artifact store never touch the gate (the server checks
// Engine.Peek first and calls NoteBypass), so an overloaded node
// keeps serving cached traffic flat-out while shedding new compute
// with 429 + Retry-After instead of queueing unboundedly and OOMing.
//
// Semantics:
//
//   - A request of weight w (≈ how many engine jobs it will pin)
//     admits immediately when w units are free and nobody is queued.
//   - Otherwise it waits, FIFO, for at most min(MaxWait, its own
//     deadline). Grants respect arrival order — a heavy request at
//     the head is not starved by light ones slipping past it.
//   - Rejections are immediate (never queued) when the queue is full
//     or the caller's deadline already expired; waits that time out
//     or get cancelled also reject. Every rejection path is cheap and
//     allocation-light: refusal must stay cheaper than the work
//     refused, the same bargain the paper's squash path makes.
package admit

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// Rejection sentinels. The server maps all of them to 429 (the
// request was well-formed; the node is shedding) and sets Retry-After
// from RetryAfter.
var (
	// ErrSaturated: the wait queue is full. The node is overloaded
	// beyond what queueing can absorb.
	ErrSaturated = errors.New("admit: saturated (queue full)")
	// ErrDeadline: the caller's deadline has already expired, or is
	// too close to plausibly cover queue wait + compute.
	ErrDeadline = errors.New("admit: deadline cannot be met")
	// ErrWaitTimeout: the request queued for MaxWait (or its own
	// deadline) without a slot freeing up.
	ErrWaitTimeout = errors.New("admit: timed out waiting for capacity")
)

// Options configures a Gate. Zero values select the documented
// defaults.
type Options struct {
	// Capacity is the number of concurrent weight units (≈ engine
	// jobs) the gate admits. <= 0 means 8.
	Capacity int
	// QueueLimit bounds how many requests may wait. <= 0 means
	// 4*Capacity.
	QueueLimit int
	// MaxWait bounds how long one request may wait for capacity
	// before being shed. <= 0 means 2s.
	MaxWait time.Duration
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 8
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 4 * o.Capacity
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Second
	}
	return o
}

// waiter is one queued request. ready is closed (with granted=true)
// by the releaser that hands it capacity; the waiter removes itself
// under mu on timeout/cancel, and whichever side flips granted first
// wins — a grant that races an abandon is returned to the pool by the
// abandoning side.
type waiter struct {
	weight  int
	ready   chan struct{}
	granted bool
	elem    *list.Element
}

// Gate is a weighted admission gate. The zero value is not usable;
// call NewGate. A nil *Gate admits everything (methods are nil-safe),
// which is how the library default stays "no gate" while the binary
// opts in.
type Gate struct {
	opts Options

	mu      sync.Mutex
	inUse   int
	waiters list.List // of *waiter, FIFO

	// Counters (under mu; read via Stats).
	admitted         uint64
	bypassed         uint64
	rejectedFull     uint64
	rejectedDeadline uint64
	rejectedWait     uint64
	canceled         uint64
}

// NewGate builds a gate with the given options.
func NewGate(o Options) *Gate {
	return &Gate{opts: o.withDefaults()}
}

// Acquire admits a request of the given weight, blocking in the
// bounded FIFO queue if needed. On success it returns a release
// function that MUST be called exactly once when the request's
// compute finishes. On failure the error is one of the package
// sentinels and nothing needs releasing.
//
// Weights are clamped to [1, Capacity] so a single huge batch can
// still ever be admitted (it just needs the whole gate to itself).
func (g *Gate) Acquire(ctx context.Context, weight int) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	if weight < 1 {
		weight = 1
	}
	if weight > g.opts.Capacity {
		weight = g.opts.Capacity
	}

	wait := g.opts.MaxWait
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			g.mu.Lock()
			g.rejectedDeadline++
			g.mu.Unlock()
			return nil, ErrDeadline
		}
		if remaining < wait {
			wait = remaining
		}
	}

	g.mu.Lock()
	if g.waiters.Len() == 0 && g.inUse+weight <= g.opts.Capacity {
		g.inUse += weight
		g.admitted++
		g.mu.Unlock()
		return g.releaseFunc(weight), nil
	}
	if g.waiters.Len() >= g.opts.QueueLimit {
		g.rejectedFull++
		g.mu.Unlock()
		return nil, ErrSaturated
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	w.elem = g.waiters.PushBack(w)
	g.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.ready:
		g.mu.Lock()
		g.admitted++
		g.mu.Unlock()
		return g.releaseFunc(weight), nil
	case <-timer.C:
		if g.abandon(w) {
			g.mu.Lock()
			g.rejectedWait++
			g.mu.Unlock()
			return nil, ErrWaitTimeout
		}
		// Granted in the race window: keep the slot.
		g.mu.Lock()
		g.admitted++
		g.mu.Unlock()
		return g.releaseFunc(weight), nil
	case <-ctx.Done():
		if g.abandon(w) {
			g.mu.Lock()
			g.canceled++
			g.mu.Unlock()
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, ErrDeadline
			}
			return nil, ctx.Err()
		}
		g.mu.Lock()
		g.admitted++
		g.mu.Unlock()
		return g.releaseFunc(weight), nil
	}
}

// abandon removes w from the queue if it has not been granted yet.
// Reports true when the caller successfully backed out; false means a
// grant won the race and the caller owns the capacity after all.
func (g *Gate) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return false
	}
	g.waiters.Remove(w.elem)
	return true
}

// releaseFunc returns the once-only release closure for a granted
// acquisition.
func (g *Gate) releaseFunc(weight int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inUse -= weight
			g.grantLocked()
			g.mu.Unlock()
		})
	}
}

// grantLocked hands freed capacity to queued waiters in FIFO order.
// Strict FIFO: stop at the first waiter that does not fit, so heavy
// requests are not starved.
func (g *Gate) grantLocked() {
	for e := g.waiters.Front(); e != nil; {
		w := e.Value.(*waiter)
		if g.inUse+w.weight > g.opts.Capacity {
			return
		}
		next := e.Next()
		g.waiters.Remove(e)
		w.granted = true
		g.inUse += w.weight
		close(w.ready)
		e = next
	}
}

// NoteBypass records a request that skipped the gate because it
// resolved from the store (warm traffic). Nil-safe.
func (g *Gate) NoteBypass() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.bypassed++
	g.mu.Unlock()
}

// Saturated reports whether the wait queue is full — the signal
// /readyz uses to tell the load balancer to back off. Nil-safe
// (a disabled gate is never saturated).
func (g *Gate) Saturated() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters.Len() >= g.opts.QueueLimit
}

// RetryAfter is the Retry-After hint (in seconds, >= 1) the server
// attaches to rejections: half the max queue wait, the expected time
// for the backlog to move. Nil-safe.
func (g *Gate) RetryAfter() int {
	if g == nil {
		return 1
	}
	secs := int((g.opts.MaxWait / 2) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Stats is a point-in-time snapshot for /metrics and /v1/stats.
type Stats struct {
	Capacity         int    `json:"capacity"`
	InUse            int    `json:"in_use"`
	Waiting          int    `json:"waiting"`
	QueueLimit       int    `json:"queue_limit"`
	Admitted         uint64 `json:"admitted"`
	Bypassed         uint64 `json:"bypassed"`
	RejectedFull     uint64 `json:"rejected_full"`
	RejectedDeadline uint64 `json:"rejected_deadline"`
	RejectedWait     uint64 `json:"rejected_wait"`
	Canceled         uint64 `json:"canceled"`
}

// Stats snapshots the gate. Nil-safe: a nil gate reports zeros.
func (g *Gate) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Capacity:         g.opts.Capacity,
		InUse:            g.inUse,
		Waiting:          g.waiters.Len(),
		QueueLimit:       g.opts.QueueLimit,
		Admitted:         g.admitted,
		Bypassed:         g.bypassed,
		RejectedFull:     g.rejectedFull,
		RejectedDeadline: g.rejectedDeadline,
		RejectedWait:     g.rejectedWait,
		Canceled:         g.canceled,
	}
}
