package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPath(t *testing.T) {
	g := NewGate(Options{Capacity: 2})
	rel1, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.InUse != 2 || s.Admitted != 2 {
		t.Fatalf("stats = %+v", s)
	}
	rel1()
	rel1() // double release must be a no-op
	rel2()
	if s := g.Stats(); s.InUse != 0 {
		t.Fatalf("in_use after release = %d", s.InUse)
	}
}

func TestAdmissionWeightClamp(t *testing.T) {
	g := NewGate(Options{Capacity: 4})
	// Weight above capacity clamps down so it can ever be admitted.
	rel, err := g.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if s := g.Stats(); s.InUse != 4 {
		t.Fatalf("in_use = %d, want clamped 4", s.InUse)
	}
	rel()
}

func TestAdmissionQueueFIFOAndGrant(t *testing.T) {
	g := NewGate(Options{Capacity: 1, QueueLimit: 8, MaxWait: 5 * time.Second})
	rel, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	order := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := g.Acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			r()
		}()
		// Space arrivals so queue order matches i.
		for {
			time.Sleep(2 * time.Millisecond)
			if g.Stats().Waiting == i+1 {
				break
			}
		}
	}
	rel()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("grant order: got %d, want %d (FIFO violated)", got, want)
		}
		want++
	}
}

func TestAdmissionSaturated(t *testing.T) {
	g := NewGate(Options{Capacity: 1, QueueLimit: 1, MaxWait: 5 * time.Second})
	rel, _ := g.Acquire(context.Background(), 1)
	defer rel()
	// Fill the queue with one waiter.
	go g.Acquire(context.Background(), 1)
	for g.Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	if !g.Saturated() {
		t.Fatal("gate should report saturated")
	}
	_, err := g.Acquire(context.Background(), 1)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if s := g.Stats(); s.RejectedFull != 1 {
		t.Fatalf("rejected_full = %d", s.RejectedFull)
	}
}

func TestAdmissionWaitTimeout(t *testing.T) {
	g := NewGate(Options{Capacity: 1, QueueLimit: 4, MaxWait: 20 * time.Millisecond})
	rel, _ := g.Acquire(context.Background(), 1)
	defer rel()
	start := time.Now()
	_, err := g.Acquire(context.Background(), 1)
	if !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("err = %v, want ErrWaitTimeout", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond || d > 2*time.Second {
		t.Fatalf("wait took %v", d)
	}
	if s := g.Stats(); s.RejectedWait != 1 || s.Waiting != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionExpiredDeadline(t *testing.T) {
	g := NewGate(Options{Capacity: 1})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := g.Acquire(ctx, 1)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if s := g.Stats(); s.RejectedDeadline != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionDeadlineBoundsWait(t *testing.T) {
	// A short request deadline trumps a long MaxWait.
	g := NewGate(Options{Capacity: 1, MaxWait: 10 * time.Second})
	rel, _ := g.Acquire(context.Background(), 1)
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := g.Acquire(ctx, 1)
	if err == nil {
		t.Fatal("expected rejection")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("waited %v despite 30ms deadline", d)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	g := NewGate(Options{Capacity: 1, MaxWait: 5 * time.Second})
	rel, _ := g.Acquire(context.Background(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, 1)
		done <- err
	}()
	for g.Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := g.Stats(); s.Canceled != 1 || s.Waiting != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// The abandoned waiter must not wedge the gate.
	rel()
	rel2, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestAdmissionNilGate(t *testing.T) {
	var g *Gate
	rel, err := g.Acquire(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	g.NoteBypass()
	if g.Saturated() {
		t.Fatal("nil gate is never saturated")
	}
	if g.RetryAfter() < 1 {
		t.Fatal("retry-after must be >= 1")
	}
	if s := g.Stats(); s != (Stats{}) {
		t.Fatalf("nil stats = %+v", s)
	}
}

func TestAdmissionHeavyNotStarved(t *testing.T) {
	// A weight-2 waiter at the head must not be starved by weight-1
	// arrivals slipping past it (strict FIFO grant).
	g := NewGate(Options{Capacity: 2, QueueLimit: 8, MaxWait: 5 * time.Second})
	relA, _ := g.Acquire(context.Background(), 1)
	relB, _ := g.Acquire(context.Background(), 1)

	heavyDone := make(chan struct{})
	go func() {
		r, err := g.Acquire(context.Background(), 2)
		if err != nil {
			t.Errorf("heavy: %v", err)
			close(heavyDone)
			return
		}
		close(heavyDone)
		r()
	}()
	for g.Stats().Waiting != 1 {
		time.Sleep(time.Millisecond)
	}
	lightDone := make(chan struct{})
	go func() {
		r, err := g.Acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("light: %v", err)
		} else {
			r()
		}
		close(lightDone)
	}()
	for g.Stats().Waiting != 2 {
		time.Sleep(time.Millisecond)
	}
	// Free one unit: heavy (head, weight 2) still does not fit, and
	// light must NOT jump the queue.
	relA()
	select {
	case <-heavyDone:
		t.Fatal("heavy admitted with only 1 unit free")
	case <-lightDone:
		t.Fatal("light jumped the FIFO queue past heavy")
	case <-time.After(50 * time.Millisecond):
	}
	// Free the second unit: heavy goes first, then light.
	relB()
	<-heavyDone
	<-lightDone
}
