package cache

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	c := New(Config{})
	if got := c.Access(0x1000, 10); got != 18 {
		t.Errorf("first access ready at %d, want 18 (miss)", got)
	}
	if got := c.Access(0x1008, 100); got != 103 {
		t.Errorf("same-block access ready at %d, want 103 (hit)", got)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way: three conflicting blocks evict the least recently used.
	c := New(Config{SizeBytes: 1 << 10, Ways: 2, BlockBytes: 32})
	setStride := uint64(1 << 10 / 2) // nSets*block = 16 sets * 32B = 512
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, 0)
	c.Access(b, 10)
	c.Access(a, 20) // a more recent than b
	c.Access(d, 30) // evicts b
	if !c.Contains(a) || !c.Contains(d) {
		t.Error("a and d must be resident")
	}
	if c.Contains(b) {
		t.Error("b must have been evicted (LRU)")
	}
}

func TestMSHRLimitsOutstandingMisses(t *testing.T) {
	c := New(Config{MSHRs: 2, MissLat: 8})
	// Three distinct blocks missed in the same cycle: the third waits
	// for an MSHR.
	r1 := c.Access(0x10000, 0)
	r2 := c.Access(0x20000, 0)
	r3 := c.Access(0x30000, 0)
	if r1 != 8 || r2 != 8 {
		t.Errorf("first two misses ready at %d,%d, want 8,8", r1, r2)
	}
	if r3 != 16 {
		t.Errorf("third miss ready at %d, want 16 (MSHR stall)", r3)
	}
	if c.MSHRStalls != 1 {
		t.Errorf("MSHR stalls = %d, want 1", c.MSHRStalls)
	}
}

func TestDistinctSetsDontConflict(t *testing.T) {
	c := New(Config{})
	for i := uint64(0); i < 512; i++ {
		c.Access(i*32, 0)
	}
	hits := c.Hits
	for i := uint64(0); i < 512; i++ {
		c.Access(i*32, 1000)
	}
	if c.Hits != hits+512 {
		t.Errorf("second sweep of 16KB should hit entirely: hits=%d", c.Hits-hits)
	}
}

// TestMatchesReferenceModel cross-checks hit/miss classification against
// a simple map-based reference LRU model on random access streams.
func TestMatchesReferenceModel(t *testing.T) {
	type ref struct {
		sets map[uint64][]uint64 // set -> tags, most recent first
	}
	f := func(raw []uint16) bool {
		c := New(Config{SizeBytes: 1 << 10, Ways: 2, BlockBytes: 32})
		r := ref{sets: map[uint64][]uint64{}}
		nSets := uint64(16)
		for _, x := range raw {
			addr := uint64(x)
			block := addr >> 5
			set := block % nSets
			tag := block / nSets
			tags := r.sets[set]
			refHit := false
			for i, tg := range tags {
				if tg == tag {
					refHit = true
					copy(tags[1:i+1], tags[:i])
					tags[0] = tag
					break
				}
			}
			if !refHit {
				tags = append([]uint64{tag}, tags...)
				if len(tags) > 2 {
					tags = tags[:2]
				}
				r.sets[set] = tags
			}
			hitsBefore := c.Hits
			c.Access(addr, 0)
			gotHit := c.Hits == hitsBefore+1
			if gotHit != refHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Config{})
	if len(c.sets) != 512 {
		t.Errorf("sets = %d, want 512 (32KB / 2 ways / 32B)", len(c.sets))
	}
	if len(c.mshr) != 4 {
		t.Errorf("mshrs = %d, want 4", len(c.mshr))
	}
}
