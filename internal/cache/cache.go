// Package cache models the paper's per-thread-unit first-level data
// cache (HPCA'02 §4.1): 32KB, 2-way set associative, 32-byte blocks,
// non-blocking with up to 4 outstanding misses, 3-cycle hits and
// 8-cycle misses, LRU replacement.
package cache

// Config sizes the cache. The zero value is replaced by the paper's
// parameters.
type Config struct {
	SizeBytes  int   // total capacity (default 32KB)
	Ways       int   // associativity (default 2)
	BlockBytes int   // line size (default 32)
	HitLat     int64 // cycles for a hit (default 3)
	MissLat    int64 // cycles for a miss (default 8)
	MSHRs      int   // outstanding misses (default 4)
}

func (c Config) withDefaults() Config {
	if c.SizeBytes == 0 {
		c.SizeBytes = 32 << 10
	}
	if c.Ways == 0 {
		c.Ways = 2
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 32
	}
	if c.HitLat == 0 {
		c.HitLat = 3
	}
	if c.MissLat == 0 {
		c.MissLat = 8
	}
	if c.MSHRs == 0 {
		c.MSHRs = 4
	}
	return c
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64
}

// Cache is a set-associative non-blocking cache model. It tracks only
// tags and timing — data values come from the trace.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	setBits   uint
	blockBits uint
	tick      uint64  // LRU clock
	mshr      []int64 // completion cycle of each outstanding miss
	// Stats
	Hits, Misses, MSHRStalls uint64
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	nSets := cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes)
	if nSets < 1 {
		nSets = 1
	}
	blockBits := uint(0)
	for 1<<blockBits < cfg.BlockBytes {
		blockBits++
	}
	setBits := uint(0)
	for 1<<setBits < nSets {
		setBits++
	}
	sets := make([][]line, nSets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(nSets - 1),
		setBits:   setBits,
		blockBits: blockBits,
		mshr:      make([]int64, cfg.MSHRs),
	}
}

// Access simulates an access issued at cycle `now` and returns the
// cycle at which the data is available. Misses allocate the line and an
// MSHR; when all MSHRs are busy the miss waits for the earliest one.
func (c *Cache) Access(addr uint64, now int64) int64 {
	block := addr >> c.blockBits
	set := c.sets[block&c.setMask]
	tag := block >> c.setBits
	c.tick++

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			c.Hits++
			return now + c.cfg.HitLat
		}
	}
	c.Misses++

	// MSHR allocation: take the earliest-free slot.
	slot, best := 0, c.mshr[0]
	for i, t := range c.mshr {
		if t < best {
			slot, best = i, t
		}
	}
	start := now
	if best > now {
		start = best // all MSHRs busy: wait for one to free
		c.MSHRStalls++
	}
	done := start + c.cfg.MissLat
	c.mshr[slot] = done

	// Fill: replace LRU way.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.tick}
	return done
}

// Contains reports whether the block holding addr is resident (for
// tests).
func (c *Cache) Contains(addr uint64) bool {
	block := addr >> c.blockBits
	set := c.sets[block&c.setMask]
	tag := block >> c.setBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}
