package bpred

import (
	"testing"
	"testing/quick"
)

func TestLearnsAlwaysTaken(t *testing.T) {
	g := NewGshare(10)
	pc := uint32(0x40)
	// The global history shifts on every update, so the first ~10
	// updates each train a different entry; once the history saturates
	// the hot entry trains quickly.
	for i := 0; i < 30; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("predictor failed to learn always-taken")
	}
}

func TestLearnsAlternatingWithHistory(t *testing.T) {
	// T,N,T,N... is perfectly predictable with global history once the
	// counters warm up.
	g := NewGshare(10)
	taken := false
	for i := 0; i < 400; i++ {
		g.Update(0x10, taken)
		taken = !taken
	}
	hits := 0
	for i := 0; i < 200; i++ {
		if g.Predict(0x10) == taken {
			hits++
		}
		g.Update(0x10, taken)
		taken = !taken
	}
	if hits < 190 {
		t.Errorf("alternating pattern hits = %d/200", hits)
	}
}

func TestColdPredictorDefaultsNotTaken(t *testing.T) {
	g := NewGshare(10)
	if g.Predict(0x1234) {
		t.Error("cold counters must predict not-taken")
	}
}

func TestBadBitsClamped(t *testing.T) {
	for _, bits := range []uint{0, 64} {
		g := NewGshare(bits)
		if len(g.table) != 1<<10 {
			t.Errorf("bits=%d: table size %d, want 1024", bits, len(g.table))
		}
	}
}

func TestCountersStayInRange(t *testing.T) {
	f := func(pcs []uint16, dirs []bool) bool {
		g := NewGshare(8)
		n := len(pcs)
		if len(dirs) < n {
			n = len(dirs)
		}
		for i := 0; i < n; i++ {
			g.Update(uint32(pcs[i]), dirs[i])
		}
		for _, c := range g.table {
			if c > 3 {
				return false
			}
		}
		return g.history <= g.mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
