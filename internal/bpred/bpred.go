// Package bpred implements the per-thread-unit branch predictor of the
// paper's machine model: a gshare predictor with a 10-bit global history
// and 2-bit saturating counters (HPCA'02 §4.1). Predictor state is
// per-TU and is deliberately *not* cleared when a new thread is spawned
// on the unit, exactly as the paper specifies.
package bpred

// Gshare is a global-history XOR-indexed 2-bit-counter predictor.
type Gshare struct {
	bits    uint
	history uint32
	mask    uint32
	table   []uint8
}

// NewGshare returns a gshare predictor with the given history length in
// bits (the paper uses 10, giving a 1024-entry table).
func NewGshare(bits uint) *Gshare {
	if bits == 0 || bits > 20 {
		bits = 10
	}
	return &Gshare{
		bits:  bits,
		mask:  (1 << bits) - 1,
		table: make([]uint8, 1<<bits),
	}
}

func (g *Gshare) index(pc uint32) uint32 {
	return (pc ^ g.history) & g.mask
}

// ResetHistory clears the global history register. The paper keeps the
// predictor *tables* warm across thread spawns but a newly assigned
// thread starts with a fresh history; resetting also re-aligns the
// table entries that corresponding branches of sibling threads train.
func (g *Gshare) ResetHistory() { g.history = 0 }

// Predict returns the predicted direction for a conditional branch at
// pc.
func (g *Gshare) Predict(pc uint32) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the counter and shifts the outcome into the global
// history.
func (g *Gshare) Update(pc uint32, taken bool) {
	i := g.index(pc)
	c := g.table[i]
	if taken {
		if c < 3 {
			g.table[i] = c + 1
		}
	} else {
		if c > 0 {
			g.table[i] = c - 1
		}
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.mask
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
