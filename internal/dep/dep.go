// Package dep performs the trace-based dependence and value-
// predictability analysis behind the paper's spawning-pair ordering
// criteria (HPCA'02 §3.1) and live-in identification (§4.3.1):
//
//   - live-in registers of a candidate speculative thread (read before
//     written after the CQIP),
//   - the stride-predictability of each live-in across dynamic
//     instances,
//   - the expected number of spawned-thread instructions that are
//     independent of the SP→CQIP region (criterion b), and
//   - the number independent of it or dependent only on predictable
//     live-ins (criterion c).
//
// Dependences are tracked with a three-state taint lattice
// (clean < predictable < dependent) propagated through registers and
// same-thread memory, with the thread window length set to the pair's
// expected distance, exactly the assumption the paper makes.
package dep

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// Key identifies a candidate spawning pair by instruction PCs.
type Key struct {
	SP   uint32
	CQIP uint32
}

// Stats aggregates the analysis for one candidate pair.
type Stats struct {
	// Occurrences is the number of dynamic (SP→CQIP) instances sampled.
	Occurrences int
	// AvgDist is the mean dynamic instruction distance SP→CQIP over the
	// sampled instances (useful for pairs not present in the pruned
	// graph, e.g. heuristic pairs).
	AvgDist float64
	// AvgIndep is the mean number of thread-window instructions fully
	// independent of the SP→CQIP region.
	AvgIndep float64
	// AvgPred is the mean number independent or dependent only on
	// stride-predictable live-ins.
	AvgPred float64
	// LiveIns is the union of registers read before written in the
	// sampled thread windows and written in the SP→CQIP region.
	LiveIns []isa.Reg
	// HitRate maps each live-in register to its measured stride hit
	// rate across instances.
	HitRate map[isa.Reg]float64
}

// PredictableLiveIns returns the live-ins whose stride hit rate meets
// the threshold.
func (s *Stats) PredictableLiveIns(threshold float64) []isa.Reg {
	var out []isa.Reg
	for _, r := range s.LiveIns {
		if s.HitRate[r] >= threshold {
			out = append(out, r)
		}
	}
	return out
}

// Config bounds the sampling work.
type Config struct {
	// MaxOccurrences caps the dynamic instances sampled per pair
	// (default 12).
	MaxOccurrences int
	// MaxWindow caps the thread-window length in instructions
	// (default 384).
	MaxWindow int
}

func (c Config) withDefaults() Config {
	if c.MaxOccurrences <= 0 {
		c.MaxOccurrences = 12
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 384
	}
	return c
}

// Request names a pair to analyse and its expected distance (used as
// the thread-window length; 0 means "measure from the trace").
type Request struct {
	Key  Key
	Dist float64
}

// taint lattice values.
const (
	clean uint8 = iota
	predictable
	dependent
)

// Analyze runs the dependence analysis for each requested pair over the
// trace. The trace must have its index built.
func Analyze(tr *trace.Trace, reqs []Request, cfg Config) map[Key]*Stats {
	cfg = cfg.withDefaults()
	regIdx := trace.NewRegIndex(tr)
	out := make(map[Key]*Stats, len(reqs))
	for _, rq := range reqs {
		out[rq.Key] = analyzePair(tr, regIdx, rq, cfg)
	}
	return out
}

// occurrence is one dynamic (SP at t0 → CQIP at t1) instance.
type occurrence struct{ t0, t1 int }

// findOccurrences samples up to max instances of the pair, skipping
// instances where the SP recurs before the CQIP (which the reaching-
// probability constraint treats as failures).
func findOccurrences(tr *trace.Trace, k Key, max int) []occurrence {
	var occs []occurrence
	after := -1
	for len(occs) < max {
		t0 := tr.NextOccurrence(k.SP, after)
		if t0 < 0 {
			break
		}
		after = t0
		t1 := tr.NextOccurrence(k.CQIP, t0)
		if t1 < 0 {
			continue
		}
		if k.SP != k.CQIP {
			if nextSP := tr.NextOccurrence(k.SP, t0); nextSP >= 0 && nextSP < t1 {
				continue
			}
		}
		occs = append(occs, occurrence{t0, t1})
		if t1 > after {
			after = t1
		}
	}
	return occs
}

func analyzePair(tr *trace.Trace, regIdx *trace.RegIndex, rq Request, cfg Config) *Stats {
	st := &Stats{HitRate: make(map[isa.Reg]float64)}
	occs := findOccurrences(tr, rq.Key, cfg.MaxOccurrences)
	st.Occurrences = len(occs)
	if len(occs) == 0 {
		return st
	}

	// Pass 0: measured distance.
	var distSum float64
	for _, oc := range occs {
		distSum += float64(oc.t1 - oc.t0)
	}
	st.AvgDist = distSum / float64(len(occs))

	window := int(rq.Dist)
	if window <= 0 {
		window = int(st.AvgDist)
	}
	if window > cfg.MaxWindow {
		window = cfg.MaxWindow
	}
	if window < 1 {
		window = 1
	}

	// Pass 1: live-in discovery and per-occurrence live-in values.
	liveInSet := make(map[isa.Reg]bool)
	values := make(map[isa.Reg][]uint64) // per live-in, value at each t1
	for _, oc := range occs {
		for r := range scanLiveIns(tr, oc, window) {
			liveInSet[r] = true
		}
	}
	var liveList []isa.Reg
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if liveInSet[r] {
			liveList = append(liveList, r)
		}
	}
	st.LiveIns = liveList

	// Gather live-in values at each CQIP instance (architected value
	// just before t1).
	for _, oc := range occs {
		for _, r := range liveList {
			values[r] = append(values[r], regIdx.ValueAt(r, oc.t1))
		}
	}
	for _, r := range liveList {
		st.HitRate[r] = strideHitRate(values[r])
	}
	predSet := make(map[isa.Reg]bool)
	for _, r := range liveList {
		if st.HitRate[r] >= PredictableThreshold {
			predSet[r] = true
		}
	}

	// Pass 2: taint propagation with predictability classification.
	var indepSum, predSum float64
	for _, oc := range occs {
		indep, pred := countIndependent(tr, oc, window, predSet)
		indepSum += float64(indep)
		predSum += float64(pred)
	}
	st.AvgIndep = indepSum / float64(len(occs))
	st.AvgPred = predSum / float64(len(occs))
	return st
}

// PredictableThreshold is the stride hit rate above which a live-in is
// treated as predictable by the ordering criterion (c).
const PredictableThreshold = 0.75

// strideHitRate measures how often v[n] == v[n-1] + (v[n-1] - v[n-2]).
func strideHitRate(vals []uint64) float64 {
	switch len(vals) {
	case 0, 1:
		return 1 // a single instance is trivially predictable-by-copy
	case 2:
		if vals[0] == vals[1] {
			return 1
		}
		return 0
	}
	hits, trials := 0, 0
	for n := 2; n < len(vals); n++ {
		stride := vals[n-1] - vals[n-2]
		trials++
		if vals[n] == vals[n-1]+stride {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// scanLiveIns computes the thread-window live-ins of one occurrence:
// registers read before written in the window and written in the
// SP→CQIP region.
func scanLiveIns(tr *trace.Trace, oc occurrence, window int) map[isa.Reg]bool {
	regionWrites := make(map[isa.Reg]bool)
	for t := oc.t0; t < oc.t1; t++ {
		e := &tr.Events[t]
		if e.Op.WritesReg() && e.Dst != 0 {
			regionWrites[e.Dst] = true
		}
	}
	liveIns := make(map[isa.Reg]bool)
	written := make(map[isa.Reg]bool)
	end := oc.t1 + window
	if end > tr.Len() {
		end = tr.Len()
	}
	for t := oc.t1; t < end; t++ {
		e := &tr.Events[t]
		regs, n := readsOf(e)
		for i := 0; i < n; i++ {
			r := regs[i]
			if !written[r] && regionWrites[r] {
				liveIns[r] = true
			}
		}
		if e.Op.WritesReg() && e.Dst != 0 {
			written[e.Dst] = true
		}
	}
	return liveIns
}

// countIndependent propagates the clean/predictable/dependent lattice
// through the thread window and returns (#clean, #clean-or-predictable).
func countIndependent(tr *trace.Trace, oc occurrence, window int, predSet map[isa.Reg]bool) (indep, pred int) {
	// Region taint.
	regState := [isa.NumRegs]uint8{}
	memWritten := make(map[uint64]bool)
	for t := oc.t0; t < oc.t1; t++ {
		e := &tr.Events[t]
		if e.Op.WritesReg() && e.Dst != 0 {
			if predSet[e.Dst] {
				regState[e.Dst] = predictable
			} else {
				regState[e.Dst] = dependent
			}
		}
		if e.Op == isa.OpStore {
			memWritten[e.Addr] = true
		}
	}

	memState := make(map[uint64]uint8) // same-thread stores in window
	end := oc.t1 + window
	if end > tr.Len() {
		end = tr.Len()
	}
	for t := oc.t1; t < end; t++ {
		e := &tr.Events[t]
		state := clean
		regs, n := readsOf(e)
		for i := 0; i < n; i++ {
			if s := regState[regs[i]]; s > state {
				state = s
			}
		}
		if e.Op == isa.OpLoad {
			if s, ok := memState[e.Addr]; ok {
				if s > state {
					state = s
				}
			} else if memWritten[e.Addr] {
				// Produced by the spawning thread's region: memory
				// values are not predicted (paper §4.1), so dependent.
				state = dependent
			}
		}
		switch state {
		case clean:
			indep++
			pred++
		case predictable:
			pred++
		}
		if e.Op.WritesReg() && e.Dst != 0 {
			regState[e.Dst] = state
		}
		if e.Op == isa.OpStore {
			memState[e.Addr] = state
		}
	}
	return indep, pred
}

// readsOf returns the registers a trace event reads.
func readsOf(e *trace.Event) ([2]isa.Reg, int) {
	ins := isa.Instruction{Op: e.Op, Dst: e.Dst, Src1: e.Src1, Src2: e.Src2}
	return ins.Reads()
}
