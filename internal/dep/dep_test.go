package dep

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func traceOf(t *testing.T, p *isa.Program) *trace.Trace {
	t.Helper()
	res, err := emu.Run(p, emu.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	res.Trace.BuildIndex()
	return res.Trace
}

func TestStrideHitRate(t *testing.T) {
	cases := []struct {
		vals []uint64
		want float64
	}{
		{nil, 1},
		{[]uint64{5}, 1},
		{[]uint64{5, 5}, 1},
		{[]uint64{5, 6}, 0},
		{[]uint64{0, 8, 16, 24, 32}, 1},          // perfect stride
		{[]uint64{0, 8, 16, 99, 100}, 1.0 / 3.0}, // one hit of three
		{[]uint64{7, 7, 7, 7}, 1},                // constant = stride 0
		{[]uint64{1, 2, 4, 8, 16}, 0},            // geometric
	}
	for _, c := range cases {
		if got := strideHitRate(c.vals); got != c.want {
			t.Errorf("strideHitRate(%v) = %v, want %v", c.vals, got, c.want)
		}
	}
}

// TestTaintLattice uses a hand-built straight-line program where the
// dependence structure is known exactly.
func TestTaintLattice(t *testing.T) {
	b := isa.NewBuilder("lattice")
	b.Func("main")
	b.Li(12, 5)                  // 0: before SP — clean source
	b.Li(8, 1)                   // 1: SP
	b.Addi(8, 8, 3)              // 2: region writes r8
	b.Addi(13, 12, 1)            // 3: CQIP — reads r12 (clean)
	b.Op3(isa.OpAdd, 14, 13, 12) // 4: clean chain
	b.Op3(isa.OpAdd, 15, 8, 12)  // 5: reads r8 -> region-dependent
	b.Op3(isa.OpAdd, 16, 15, 13) // 6: transitively dependent
	b.Halt()                     // 7
	tr := traceOf(t, b.MustBuild())

	stats := Analyze(tr, []Request{{Key: Key{SP: 1, CQIP: 3}, Dist: 4}}, Config{})
	st := stats[Key{SP: 1, CQIP: 3}]
	if st.Occurrences != 1 {
		t.Fatalf("occurrences = %d", st.Occurrences)
	}
	if st.AvgDist != 2 {
		t.Errorf("avg dist = %v, want 2", st.AvgDist)
	}
	// Window = instructions 3..6: two clean (3, 4), two dependent on
	// the region (5, 6). With a single occurrence the live-in r8 is
	// trivially predictable, so AvgPred counts all four.
	if st.AvgIndep != 2 {
		t.Errorf("AvgIndep = %v, want 2", st.AvgIndep)
	}
	if st.AvgPred != 4 {
		t.Errorf("AvgPred = %v, want 4", st.AvgPred)
	}
	if len(st.LiveIns) != 1 || st.LiveIns[0] != 8 {
		t.Errorf("live-ins = %v, want [r8]", st.LiveIns)
	}
}

// TestMemoryDependence: a load in the window from an address stored in
// the region must be dependent (memory values are never predicted).
func TestMemoryDependence(t *testing.T) {
	b := isa.NewBuilder("memdep")
	b.Func("main")
	b.Li(10, 0x1000)             // 0
	b.Li(11, 7)                  // 1: SP
	b.Store(11, 10, 0)           // 2: region store to 0x1000
	b.Load(12, 10, 0)            // 3: CQIP — load from region-written addr
	b.Op3(isa.OpAdd, 13, 12, 12) // 4: transitively dependent
	b.Li(14, 9)                  // 5: clean
	b.Halt()
	tr := traceOf(t, b.MustBuild())
	st := Analyze(tr, []Request{{Key: Key{SP: 1, CQIP: 3}, Dist: 3}}, Config{})[Key{SP: 1, CQIP: 3}]
	if st.AvgIndep != 1 { // only the Li
		t.Errorf("AvgIndep = %v, want 1", st.AvgIndep)
	}
	// r11 is written in the region but the window never reads it
	// directly — the memory dependence is not a live-in.
	for _, r := range st.LiveIns {
		if r == 12 || r == 11 {
			t.Errorf("unexpected live-in r%d", r)
		}
	}
	// Memory dependences are never "predictable": AvgPred counts the
	// clean Li plus nothing else.
	if st.AvgPred != 1 {
		t.Errorf("AvgPred = %v, want 1", st.AvgPred)
	}
}

// TestSameThreadStoreForward: a window load fed by a window store takes
// the store's taint, not the region's.
func TestSameThreadStoreForward(t *testing.T) {
	b := isa.NewBuilder("fwd")
	b.Func("main")
	b.Li(10, 0x2000)   // 0
	b.Li(11, 1)        // 1: SP
	b.Addi(11, 11, 1)  // 2: region
	b.Li(12, 42)       // 3: CQIP — clean
	b.Store(12, 10, 0) // 4: window store, clean data
	b.Load(13, 10, 0)  // 5: load sees the window store -> clean
	b.Halt()
	tr := traceOf(t, b.MustBuild())
	st := Analyze(tr, []Request{{Key: Key{SP: 1, CQIP: 3}, Dist: 3}}, Config{})[Key{SP: 1, CQIP: 3}]
	if st.AvgIndep != 3 {
		t.Errorf("AvgIndep = %v, want 3 (all window instrs clean)", st.AvgIndep)
	}
}

// TestLoopLiveIns: in the independent-map kernel, the loop-iteration
// pair's live-ins are the two induction pointers, and both must be
// stride-predictable.
func TestLoopLiveIns(t *testing.T) {
	p := workload.KernelIndependentMap(64, 2)
	tr := traceOf(t, p)
	// The map loop's head is the first loop label after init; find it
	// via the known structure: the load is the loop's first
	// instruction. Locate the first Load in the second half of code.
	var head uint32
	for pc := range p.Code {
		if p.Code[pc].Op == isa.OpLoad {
			head = uint32(pc)
			break
		}
	}
	key := Key{SP: head, CQIP: head}
	st := Analyze(tr, []Request{{Key: key}}, Config{MaxOccurrences: 16})[key]
	if st.Occurrences < 10 {
		t.Fatalf("occurrences = %d", st.Occurrences)
	}
	found := map[isa.Reg]bool{}
	for _, r := range st.LiveIns {
		found[r] = true
	}
	if !found[8] || !found[11] {
		t.Errorf("live-ins = %v, want r8 and r11 (induction pointers)", st.LiveIns)
	}
	for _, r := range []isa.Reg{8, 11} {
		if st.HitRate[r] < 0.99 {
			t.Errorf("r%d stride hit rate = %v, want ~1", r, st.HitRate[r])
		}
	}
	if len(st.PredictableLiveIns(0.75)) < 2 {
		t.Errorf("predictable live-ins = %v", st.PredictableLiveIns(0.75))
	}
	// Iterations are independent apart from predictable induction:
	// AvgPred should be nearly the whole window.
	if st.AvgPred < st.AvgDist*0.9 {
		t.Errorf("AvgPred = %v of window %v", st.AvgPred, st.AvgDist)
	}
}

// TestSkipsSPRecurrence: occurrences where the SP recurs before the
// CQIP are not instances of the pair.
func TestSkipsSPRecurrence(t *testing.T) {
	// Loop runs 5 times then falls through to the CQIP: only the last
	// head occurrence reaches the CQIP without an intervening head.
	b := isa.NewBuilder("recur")
	b.Func("main")
	b.Li(8, 0)
	b.Li(9, 5)
	b.Label("head")
	b.Addi(8, 8, 1)
	b.Branch(isa.OpBltu, 8, 9, "head")
	b.Li(10, 1) // CQIP
	b.Halt()
	tr := traceOf(t, b.MustBuild())
	head := uint32(2)
	cqip := uint32(4)
	st := Analyze(tr, []Request{{Key: Key{SP: head, CQIP: cqip}}}, Config{})[Key{SP: head, CQIP: cqip}]
	if st.Occurrences != 1 {
		t.Errorf("occurrences = %d, want 1 (only the final iteration)", st.Occurrences)
	}
	if st.AvgDist != 2 {
		t.Errorf("avg dist = %v, want 2", st.AvgDist)
	}
}

func TestNoOccurrences(t *testing.T) {
	b := isa.NewBuilder("none")
	b.Func("main")
	b.Li(8, 1)
	b.Halt()
	tr := traceOf(t, b.MustBuild())
	st := Analyze(tr, []Request{{Key: Key{SP: 0, CQIP: 99}}}, Config{})[Key{SP: 0, CQIP: 99}]
	if st.Occurrences != 0 {
		t.Errorf("occurrences = %d", st.Occurrences)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxOccurrences <= 0 || c.MaxWindow <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	c = Config{MaxOccurrences: 3, MaxWindow: 7}.withDefaults()
	if c.MaxOccurrences != 3 || c.MaxWindow != 7 {
		t.Errorf("explicit values clobbered: %+v", c)
	}
}
