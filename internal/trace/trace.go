// Package trace holds the dynamic instruction stream produced by the
// functional emulator and consumed by the analyses and the trace-driven
// simulator. Each event records the executed PC, the architectural values
// involved, the effective address for memory operations, and the PC of
// the dynamically next instruction — everything the HPCA'02 study's
// ATOM-instrumented traces provided.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/isa"
)

// Event is one executed instruction.
type Event struct {
	PC   uint32 // PC of this instruction
	Next uint32 // PC of the dynamically next instruction
	Op   isa.Op
	Dst  isa.Reg
	Src1 isa.Reg
	Src2 isa.Reg
	Val  uint64 // value written to Dst (or the stored value for stores)
	Addr uint64 // effective address for loads/stores, else 0
}

// Taken reports whether a control instruction redirected the PC (for
// non-control instructions it reports false).
func (e *Event) Taken() bool { return e.Op.IsControl() && e.Next != e.PC+1 }

// Trace is a complete dynamic instruction stream.
type Trace struct {
	Program *isa.Program
	Events  []Event

	// index maps PC -> sorted positions at which it executed. Built
	// lazily by BuildIndex; required by NextOccurrence. indexOnce makes
	// the build safe when the engine shares one *Trace across workers:
	// concurrent BuildIndex calls synchronise on it, and its
	// happens-before edge publishes the map to every caller.
	indexOnce sync.Once
	index     map[uint32][]int32
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Events) }

// ApproxBytes reports the trace's approximate resident size — the event
// stream plus the occurrence index — for engine cache accounting.
// Traces dominate every other artifact by orders of magnitude. The
// program is charged to its own artifact entry.
func (t *Trace) ApproxBytes() int64 {
	// One Event is 32 bytes; the index adds one int32 per event plus
	// map overhead (~8B/event amortised).
	return int64(len(t.Events))*44 + 128
}

// BuildIndex constructs the PC → positions index used by NextOccurrence.
// It is idempotent and safe for concurrent use.
func (t *Trace) BuildIndex() {
	t.indexOnce.Do(func() {
		idx := make(map[uint32][]int32)
		for i, e := range t.Events {
			idx[e.PC] = append(idx[e.PC], int32(i))
		}
		t.index = idx
	})
}

// NextOccurrence returns the smallest trace position strictly greater
// than after at which pc executes, or -1 if there is none. BuildIndex
// must have been called.
func (t *Trace) NextOccurrence(pc uint32, after int) int {
	ps := t.index[pc]
	i := sort.Search(len(ps), func(i int) bool { return int(ps[i]) > after })
	if i == len(ps) {
		return -1
	}
	return int(ps[i])
}

// Occurrences returns every position at which pc executed (shared slice;
// callers must not mutate). BuildIndex must have been called.
func (t *Trace) Occurrences(pc uint32) []int32 { return t.index[pc] }

// Validate checks stream invariants: each event's Next matches the PC of
// the following event, and PCs are within the program.
func (t *Trace) Validate() error {
	n := len(t.Events)
	codeLen := uint32(t.Program.Len())
	for i := 0; i < n; i++ {
		e := &t.Events[i]
		if e.PC >= codeLen {
			return fmt.Errorf("trace: event %d PC %d out of range", i, e.PC)
		}
		if i+1 < n && e.Next != t.Events[i+1].PC {
			return fmt.Errorf("trace: event %d Next=%d but event %d PC=%d",
				i, e.Next, i+1, t.Events[i+1].PC)
		}
	}
	return nil
}

const eventSize = 4 + 4 + 1 + 1 + 1 + 1 + 8 + 8

// WriteTo serialises the event stream (not the program) in a fixed-width
// little-endian binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.Events)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	written := int64(8)
	var buf [eventSize]byte
	for i := range t.Events {
		e := &t.Events[i]
		binary.LittleEndian.PutUint32(buf[0:], e.PC)
		binary.LittleEndian.PutUint32(buf[4:], e.Next)
		buf[8] = byte(e.Op)
		buf[9] = byte(e.Dst)
		buf[10] = byte(e.Src1)
		buf[11] = byte(e.Src2)
		binary.LittleEndian.PutUint64(buf[12:], e.Val)
		binary.LittleEndian.PutUint64(buf[20:], e.Addr)
		n, err := w.Write(buf[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadFrom deserialises an event stream written by WriteTo. The Program
// field must be attached by the caller.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	read := int64(8)
	events := make([]Event, n)
	var buf [eventSize]byte
	for i := range events {
		m, err := io.ReadFull(r, buf[:])
		read += int64(m)
		if err != nil {
			return read, err
		}
		events[i] = Event{
			PC:   binary.LittleEndian.Uint32(buf[0:]),
			Next: binary.LittleEndian.Uint32(buf[4:]),
			Op:   isa.Op(buf[8]),
			Dst:  isa.Reg(buf[9]),
			Src1: isa.Reg(buf[10]),
			Src2: isa.Reg(buf[11]),
			Val:  binary.LittleEndian.Uint64(buf[12:]),
			Addr: binary.LittleEndian.Uint64(buf[20:]),
		}
	}
	t.Events = events
	t.index = nil
	t.indexOnce = sync.Once{}
	return read, nil
}
