package trace

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func tinyProgram() *isa.Program {
	b := isa.NewBuilder("t")
	b.Func("main")
	b.Li(1, 1)                // 0
	b.Li(2, 2)                // 1
	b.Op3(isa.OpAdd, 3, 1, 2) // 2
	b.Halt()                  // 3
	return b.MustBuild()
}

func tinyTrace() *Trace {
	p := tinyProgram()
	return &Trace{Program: p, Events: []Event{
		{PC: 0, Next: 1, Op: isa.OpLui, Dst: 1, Val: 1},
		{PC: 1, Next: 2, Op: isa.OpLui, Dst: 2, Val: 2},
		{PC: 2, Next: 3, Op: isa.OpAdd, Dst: 3, Src1: 1, Src2: 2, Val: 3},
		{PC: 3, Next: 3, Op: isa.OpHalt},
	}}
}

func TestValidateOK(t *testing.T) {
	if err := tinyTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesDiscontinuity(t *testing.T) {
	tr := tinyTrace()
	tr.Events[1].Next = 9
	if err := tr.Validate(); err == nil {
		t.Fatal("expected discontinuity error")
	}
	tr = tinyTrace()
	tr.Events[0].PC = 99
	if err := tr.Validate(); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestNextOccurrence(t *testing.T) {
	tr := &Trace{Program: tinyProgram(), Events: []Event{
		{PC: 0, Next: 1}, {PC: 1, Next: 0}, {PC: 0, Next: 1}, {PC: 1, Next: 3}, {PC: 3, Next: 3},
	}}
	tr.BuildIndex()
	if got := tr.NextOccurrence(0, 0); got != 2 {
		t.Errorf("NextOccurrence(0, after 0) = %d, want 2", got)
	}
	if got := tr.NextOccurrence(1, 1); got != 3 {
		t.Errorf("NextOccurrence(1, after 1) = %d, want 3", got)
	}
	if got := tr.NextOccurrence(0, 2); got != -1 {
		t.Errorf("NextOccurrence(0, after 2) = %d, want -1", got)
	}
	if got := tr.NextOccurrence(7, 0); got != -1 {
		t.Errorf("NextOccurrence(unknown) = %d, want -1", got)
	}
	if got := len(tr.Occurrences(1)); got != 2 {
		t.Errorf("Occurrences(1) len = %d", got)
	}
}

func TestTaken(t *testing.T) {
	e := Event{PC: 5, Next: 6, Op: isa.OpBeq}
	if e.Taken() {
		t.Error("fallthrough branch reported taken")
	}
	e.Next = 2
	if !e.Taken() {
		t.Error("redirecting branch reported not taken")
	}
	e = Event{PC: 5, Next: 2, Op: isa.OpAdd}
	if e.Taken() {
		t.Error("non-control op reported taken")
	}
}

func TestSerialisationRoundTrip(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back Trace
	back.Program = tr.Program
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("event count %d != %d", len(back.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back.Events[i], tr.Events[i])
		}
	}
}

func TestSerialisationProperty(t *testing.T) {
	f := func(pcs []uint16, vals []uint64) bool {
		n := len(pcs)
		if len(vals) < n {
			n = len(vals)
		}
		events := make([]Event, n)
		for i := 0; i < n; i++ {
			events[i] = Event{PC: uint32(pcs[i]), Next: uint32(pcs[i]) + 1,
				Op: isa.OpAdd, Dst: 3, Val: vals[i], Addr: vals[i] >> 3}
		}
		tr := &Trace{Events: events}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		var back Trace
		if _, err := back.ReadFrom(&buf); err != nil {
			return false
		}
		if len(back.Events) != n {
			return false
		}
		for i := range events {
			if back.Events[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRegIndex(t *testing.T) {
	tr := tinyTrace()
	idx := NewRegIndex(tr)
	if v := idx.ValueAt(1, 0); v != 0 {
		t.Errorf("r1 before any write = %d", v)
	}
	if v := idx.ValueAt(1, 1); v != 1 {
		t.Errorf("r1 after write = %d", v)
	}
	if v := idx.ValueAt(3, 3); v != 3 {
		t.Errorf("r3 at end = %d", v)
	}
	if v := idx.ValueAt(3, 2); v != 0 {
		t.Errorf("r3 before write = %d", v)
	}
	if v := idx.ValueAt(0, 3); v != 0 {
		t.Errorf("r0 must always be 0, got %d", v)
	}
	if p := idx.LastWriteBefore(3, 3); p != 2 {
		t.Errorf("LastWriteBefore(r3,3) = %d", p)
	}
	if p := idx.LastWriteBefore(3, 2); p != -1 {
		t.Errorf("LastWriteBefore(r3,2) = %d", p)
	}
	if p := idx.LastWriteBefore(0, 3); p != -1 {
		t.Errorf("LastWriteBefore(r0) = %d", p)
	}
}

// TestRegIndexMatchesReplay cross-checks the index against a sequential
// replay of register state on a synthetic stream.
func TestRegIndexMatchesReplay(t *testing.T) {
	var events []Event
	var regs [isa.NumRegs]uint64
	state := uint64(12345)
	for i := 0; i < 500; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		r := isa.Reg(1 + state%(isa.NumRegs-1))
		events = append(events, Event{PC: uint32(i), Next: uint32(i + 1),
			Op: isa.OpLui, Dst: r, Val: state})
	}
	tr := &Trace{Events: events}
	idx := NewRegIndex(tr)
	for i, e := range events {
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if got, want := idx.ValueAt(r, i), regs[r]; got != want {
				t.Fatalf("pos %d r%d: got %d want %d", i, r, got, want)
			}
		}
		regs[e.Dst] = e.Val
	}
}

// TestBuildIndexConcurrent exercises the sync.Once guard: the engine
// shares one *Trace across workers that all call BuildIndex before
// querying. Run with -race.
func TestBuildIndexConcurrent(t *testing.T) {
	tr := tinyTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.BuildIndex()
			if got := tr.NextOccurrence(1, 0); got != 1 {
				t.Errorf("NextOccurrence(1, 0) = %d, want 1", got)
			}
		}()
	}
	wg.Wait()
}

func TestReadFromResetsIndex(t *testing.T) {
	tr := tinyTrace()
	tr.BuildIndex()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := tinyTrace()
	dst.BuildIndex()
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	dst.BuildIndex() // must rebuild despite the earlier Once firing
	if got := dst.NextOccurrence(2, 0); got != 2 {
		t.Errorf("NextOccurrence(2, 0) = %d, want 2", got)
	}
}
