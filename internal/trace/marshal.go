package trace

import (
	"fmt"
	"sync"

	"repro/internal/binio"
	"repro/internal/isa"
)

// traceVersion tags the Trace wire format.
const traceVersion = 1

// MarshalBinary serialises the trace as a self-contained artifact:
// unlike WriteTo (event stream only), it embeds the program so a
// disk-cached trace can be decoded without any sibling artifact.
func (t *Trace) MarshalBinary() ([]byte, error) {
	var prog []byte
	if t.Program != nil {
		var err error
		if prog, err = t.Program.MarshalBinary(); err != nil {
			return nil, err
		}
	}
	w := binio.NewWriter(16 + len(prog) + len(t.Events)*eventSize)
	w.U8(traceVersion)
	w.Bool(t.Program != nil)
	if t.Program != nil {
		w.Blob(prog)
	}
	w.Uvarint(uint64(len(t.Events)))
	for i := range t.Events {
		e := &t.Events[i]
		w.U32(e.PC)
		w.U32(e.Next)
		w.U8(uint8(e.Op))
		w.U8(uint8(e.Dst))
		w.U8(uint8(e.Src1))
		w.U8(uint8(e.Src2))
		w.U64(e.Val)
		w.U64(e.Addr)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a trace written by MarshalBinary and builds
// the occurrence index eagerly, so a disk-loaded trace is immediately
// safe for the concurrent consumers that expect an indexed trace (the
// engine publishes cached traces to many workers).
func (t *Trace) UnmarshalBinary(data []byte) error {
	r := binio.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != traceVersion {
		return fmt.Errorf("trace: format version %d (want %d)", v, traceVersion)
	}
	var prog *isa.Program
	if r.Bool() {
		prog = new(isa.Program)
		if b := r.Blob(); r.Err() == nil {
			if err := prog.UnmarshalBinary(b); err != nil {
				return fmt.Errorf("trace: embedded program: %w", err)
			}
		}
	}
	events := make([]Event, r.Count(eventSize))
	for i := range events {
		events[i] = Event{
			PC:   r.U32(),
			Next: r.U32(),
			Op:   isa.Op(r.U8()),
			Dst:  isa.Reg(r.U8()),
			Src1: isa.Reg(r.U8()),
			Src2: isa.Reg(r.U8()),
			Val:  r.U64(),
			Addr: r.U64(),
		}
	}
	if err := r.Close(); err != nil {
		return err
	}
	t.Program = prog
	t.Events = events
	t.index = nil
	t.indexOnce = sync.Once{}
	t.BuildIndex()
	return nil
}
