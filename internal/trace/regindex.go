package trace

import (
	"sort"

	"repro/internal/isa"
)

// RegIndex answers "what is the architected value of register r just
// before trace position q" queries, which the simulator uses to validate
// predicted thread live-in values at join time (HPCA'02 §4.3.1).
type RegIndex struct {
	writes [isa.NumRegs]regWrites
}

type regWrites struct {
	pos []int32
	val []uint64
}

// NewRegIndex builds the per-register writer index in one pass.
func NewRegIndex(t *Trace) *RegIndex {
	idx := &RegIndex{}
	for i := range t.Events {
		e := &t.Events[i]
		if e.Op.WritesReg() && e.Dst != 0 {
			w := &idx.writes[e.Dst]
			w.pos = append(w.pos, int32(i))
			w.val = append(w.val, e.Val)
		}
	}
	return idx
}

// ValueAt returns the architected value of register r immediately before
// trace position q executes (i.e., the value written by the last writer
// strictly before q, or zero if never written).
func (idx *RegIndex) ValueAt(r isa.Reg, q int) uint64 {
	if r == 0 {
		return 0
	}
	w := &idx.writes[r]
	i := sort.Search(len(w.pos), func(i int) bool { return int(w.pos[i]) >= q })
	if i == 0 {
		return 0
	}
	return w.val[i-1]
}

// LastWriteBefore returns the position of the last write to r strictly
// before q, or -1 if there is none.
func (idx *RegIndex) LastWriteBefore(r isa.Reg, q int) int {
	if r == 0 {
		return -1
	}
	w := &idx.writes[r]
	i := sort.Search(len(w.pos), func(i int) bool { return int(w.pos[i]) >= q })
	if i == 0 {
		return -1
	}
	return int(w.pos[i-1])
}
