package binio

import (
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xdeadbeef)
	w.U64(1 << 60)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.Uvarint(300)
	w.Varint(-77)
	w.Int(42)
	w.String("hello")
	w.Blob([]byte{1, 2, 3})
	w.Raw([]byte{9, 9})

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %x", v)
	}
	if v := r.U64(); v != 1<<60 {
		t.Errorf("U64 = %d", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := r.F64(); !math.IsInf(v, -1) {
		t.Errorf("F64 inf = %v", v)
	}
	if v := r.Uvarint(); v != 300 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := r.Varint(); v != -77 {
		t.Errorf("Varint = %d", v)
	}
	if v := r.Int(); v != 42 {
		t.Errorf("Int = %d", v)
	}
	if v := r.String(); v != "hello" {
		t.Errorf("String = %q", v)
	}
	if b := r.Blob(); len(b) != 3 || b[0] != 1 {
		t.Errorf("Blob = %v", b)
	}
	if b := r.Raw(2); len(b) != 2 || b[1] != 9 {
		t.Errorf("Raw = %v", b)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedStickyError(t *testing.T) {
	w := NewWriter(0)
	w.U64(5)
	r := NewReader(w.Bytes()[:3])
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Every later read is a zero value, no panic.
	if r.U32() != 0 || r.String() != "" || r.Int() != 0 {
		t.Error("reads after error must return zero values")
	}
	if r.Close() == nil {
		t.Error("Close must surface the sticky error")
	}
}

func TestCountGuardsAllocation(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(1 << 40) // claims a trillion elements
	r := NewReader(w.Bytes())
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("Count = %d, err = %v; want guard error", n, r.Err())
	}
	if !strings.Contains(r.Err().Error(), "count") {
		t.Errorf("unexpected error: %v", r.Err())
	}
}

func TestCloseRejectsTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	_ = r.U8()
	if err := r.Close(); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}
