package binio

import (
	"bytes"
	"testing"
)

// FuzzReader drives every Reader primitive over arbitrary bytes, with
// the input itself selecting the op sequence. The contract under fuzz:
// no panic, no unbounded allocation (Count's elemMin guard), and the
// sticky error keeps every later read a cheap zero-value return.
func FuzzReader(f *testing.F) {
	// Seeds: a well-formed stream touching every primitive, plus the
	// classic corruptions — truncation, scribbled varints, a huge
	// length prefix.
	w := NewWriter(64)
	w.U8(1)
	w.Bool(true)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.F64(3.14159)
	w.Uvarint(300)
	w.Varint(-7)
	w.Int(42)
	w.Blob([]byte("blob"))
	w.String("str")
	good := w.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add(append([]byte{0x09, 0xFF}, bytes.Repeat([]byte{0x80}, 16)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for r.Err() == nil && r.Remaining() > 0 {
			switch r.U8() % 12 {
			case 0:
				r.U8()
			case 1:
				r.Bool()
			case 2:
				r.U32()
			case 3:
				r.U64()
			case 4:
				r.F64()
			case 5:
				r.Uvarint()
			case 6:
				r.Varint()
			case 7:
				r.Int()
			case 8:
				// Count's bound is the whole point: a scribbled length
				// prefix must not provoke a huge allocation.
				n := r.Count(8)
				if r.Err() == nil && n > r.Remaining() {
					t.Fatalf("Count(8) = %d exceeds %d remaining bytes", n, r.Remaining())
				}
				_ = make([]uint64, n)
			case 9:
				b := r.Blob()
				if r.Err() == nil && len(b) > len(data) {
					t.Fatalf("Blob longer than input: %d > %d", len(b), len(data))
				}
			case 10:
				_ = r.String()
			case 11:
				r.Raw(int(r.U8()))
			}
		}
		// The sticky error must make every further read free and safe.
		if r.Err() != nil {
			before := r.Remaining()
			r.U64()
			r.Blob()
			r.Count(1)
			if r.Remaining() != before {
				t.Fatal("reads after a sticky error must not consume input")
			}
		}
		_ = r.Close()
	})
}

// FuzzRoundTrip checks write→read symmetry for the variable-width
// primitives over arbitrary values.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), "")
	f.Add(uint64(1<<63), int64(-1<<62), "spawn-pair")
	f.Add(uint64(300), int64(127), string([]byte{0, 0xFF, 0x80}))

	f.Fuzz(func(t *testing.T, u uint64, i int64, s string) {
		w := NewWriter(0)
		w.Uvarint(u)
		w.Varint(i)
		w.String(s)
		w.Blob([]byte(s))
		r := NewReader(w.Bytes())
		if got := r.Uvarint(); got != u {
			t.Fatalf("Uvarint %d -> %d", u, got)
		}
		if got := r.Varint(); got != i {
			t.Fatalf("Varint %d -> %d", i, got)
		}
		if got := r.String(); got != s {
			t.Fatalf("String %q -> %q", s, got)
		}
		if got := r.Blob(); !bytes.Equal(got, []byte(s)) {
			t.Fatalf("Blob %q -> %q", s, got)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("Close after full read: %v", err)
		}
	})
}
