// Package binio provides the little-endian binary encoding helpers
// behind every artifact codec (programs, traces, profiles, graphs,
// matrices, spawn tables, simulation results). The encoding is
// deterministic — map contents are written in sorted key order by the
// callers — so the same artifact always serialises to the same bytes,
// and decoding is hardened against corrupt input: the Reader carries a
// sticky error instead of panicking, and collection counts are bounded
// by the bytes actually remaining so a scribbled length prefix cannot
// trigger a huge allocation.
package binio

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends primitives to a growing buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for sizeHint
// bytes (0 is fine).
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 writes a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// F64 writes a float64 as its IEEE-754 bits (exact round trip).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint writes a signed (zig-zag) varint.
func (w *Writer) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Raw appends bytes with no length prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Blob writes a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.Raw(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes a buffer written by Writer. The first decode error
// sticks: every later call returns a zero value, so callers check Err
// (or Close) once at the end instead of after every read.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Close returns the sticky error, or an error if unread bytes remain —
// a trailing-garbage check for fixed-layout decoders.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("binio: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// fail records the sticky error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// take returns the next n bytes, or nil after recording an error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail("binio: truncated input (want %d bytes, have %d)", n, r.Remaining())
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool (any nonzero byte is true).
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("binio: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed (zig-zag) varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("binio: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Count reads a collection length and validates it against the bytes
// remaining: each element needs at least elemMin bytes, so a corrupt
// length prefix cannot provoke a multi-gigabyte allocation. elemMin
// must be >= 1.
func (r *Reader) Count(elemMin int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if v > uint64(r.Remaining()/elemMin) {
		r.fail("binio: count %d exceeds %d remaining bytes (elem >= %d)", v, r.Remaining(), elemMin)
		return 0
	}
	return int(v)
}

// Raw reads n bytes with no length prefix. The returned slice aliases
// the input buffer.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Blob reads a length-prefixed byte slice (aliasing the input buffer).
func (r *Reader) Blob() []byte {
	n := r.Count(1)
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Blob()) }
