// Package spec is the spawn-point predictor behind speculative
// artifact precomputation — the source paper's idea (predict
// profitable spawn points, run them speculatively, report spawn-scheme
// accuracy) applied to the server's own job DAG. The request stream is
// a program trace: each resolved artifact spec (an analyze target, a
// simulate config) is one "instruction", and clients sweeping a config
// space make the stream highly predictable — after (cfg, n=64) the
// same client tends to ask for n=128, then n=256. The Predictor learns
// those transitions in a bounded per-key successor table (a first-
// order Markov chain, degrading gracefully to last-successor when the
// successor bound is 1); the Speculator turns predictions into
// background computations on idle workers and keeps the books the
// paper keeps for spawn schemes: predictions, launches, hits, wasted
// bytes, accuracy.
package spec

import (
	"container/list"
	"sort"
	"sync"
)

// Prediction is one predicted successor of an observed key.
type Prediction struct {
	// Key is the artifact key the predictor expects to be requested
	// next; Payload is the opaque launch recipe recorded at Observe
	// time (the server stores the resolved spec needed to recompute
	// the artifact without re-parsing a request).
	Key     string
	Payload any
	// Count is how many times this transition has been observed.
	Count uint64
}

// successor is one edge of the transition table.
type successor struct {
	key     string
	payload any
	count   uint64
}

// state is the bounded successor list of one source key.
type state struct {
	key  string
	succ []successor
}

// Predictor is a bounded first-order Markov / last-successor table
// over artifact keys. States are LRU-bounded: observing a transition
// from a new source key when the table is full evicts the least
// recently observed state. Each state keeps at most maxSuccessors
// edges; a new successor observed on a full state replaces the
// lowest-count edge (ties broken by key order, deterministically).
// All methods are safe for concurrent use.
type Predictor struct {
	mu            sync.Mutex
	maxStates     int
	maxSuccessors int
	ll            *list.List // MRU at front; values are *state
	states        map[string]*list.Element

	observations uint64
	evictions    uint64
}

// NewPredictor builds a predictor bounded to maxStates source keys of
// maxSuccessors edges each (<=0 selects defaults 256 and 4).
func NewPredictor(maxStates, maxSuccessors int) *Predictor {
	if maxStates <= 0 {
		maxStates = 256
	}
	if maxSuccessors <= 0 {
		maxSuccessors = 4
	}
	return &Predictor{
		maxStates:     maxStates,
		maxSuccessors: maxSuccessors,
		ll:            list.New(),
		states:        make(map[string]*list.Element),
	}
}

// Observe records the transition prev→key. payload is kept with the
// edge and handed back verbatim in Predictions for key — the launch
// recipe. A prev of "" (no history yet) records nothing.
func (p *Predictor) Observe(prev, key string, payload any) {
	if prev == "" || key == "" || prev == key {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observations++
	el, ok := p.states[prev]
	if !ok {
		if p.ll.Len() >= p.maxStates {
			old := p.ll.Back()
			p.ll.Remove(old)
			delete(p.states, old.Value.(*state).key)
			p.evictions++
		}
		el = p.ll.PushFront(&state{key: prev})
		p.states[prev] = el
	} else {
		p.ll.MoveToFront(el)
	}
	st := el.Value.(*state)
	for i := range st.succ {
		if st.succ[i].key == key {
			st.succ[i].count++
			st.succ[i].payload = payload
			return
		}
	}
	if len(st.succ) < p.maxSuccessors {
		st.succ = append(st.succ, successor{key: key, payload: payload, count: 1})
		return
	}
	// Replace the weakest edge so a shifted sweep pattern can be
	// relearned; pick deterministically under count ties.
	weakest := 0
	for i := 1; i < len(st.succ); i++ {
		if st.succ[i].count < st.succ[weakest].count ||
			(st.succ[i].count == st.succ[weakest].count && st.succ[i].key < st.succ[weakest].key) {
			weakest = i
		}
	}
	st.succ[weakest] = successor{key: key, payload: payload, count: 1}
}

// Predict returns the recorded successors of key, strongest first
// (count descending, key ascending under ties — a deterministic
// order). The slice is a copy; nil when key has no history. Predicting
// does not touch recency: only Observe reshapes the table.
func (p *Predictor) Predict(key string) []Prediction {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.states[key]
	if !ok {
		return nil
	}
	st := el.Value.(*state)
	if len(st.succ) == 0 {
		return nil
	}
	out := make([]Prediction, len(st.succ))
	for i, sc := range st.succ {
		out[i] = Prediction{Key: sc.key, Payload: sc.payload, Count: sc.count}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// PredictorStats is a point-in-time snapshot of the table.
type PredictorStats struct {
	// States is the current number of source keys tracked;
	// Observations counts every recorded transition; Evictions counts
	// states dropped by the LRU bound.
	States       int    `json:"states"`
	Observations uint64 `json:"observations"`
	Evictions    uint64 `json:"evictions"`
}

// Stats snapshots the predictor counters.
func (p *Predictor) Stats() PredictorStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PredictorStats{
		States:       p.ll.Len(),
		Observations: p.observations,
		Evictions:    p.evictions,
	}
}
