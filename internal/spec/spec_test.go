package spec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestPredictorLearnsTransitions(t *testing.T) {
	p := NewPredictor(8, 4)
	p.Observe("a", "b", "pb")
	p.Observe("a", "b", "pb")
	p.Observe("a", "c", "pc")
	got := p.Predict("a")
	if len(got) != 2 {
		t.Fatalf("predictions = %d, want 2", len(got))
	}
	if got[0].Key != "b" || got[0].Count != 2 || got[0].Payload != "pb" {
		t.Fatalf("strongest = %+v, want b/2/pb", got[0])
	}
	if got[1].Key != "c" || got[1].Count != 1 {
		t.Fatalf("second = %+v, want c/1", got[1])
	}
	if p.Predict("b") != nil {
		t.Fatal("b has no successors, want nil")
	}
}

func TestPredictorIgnoresDegenerate(t *testing.T) {
	p := NewPredictor(8, 4)
	p.Observe("", "b", nil)
	p.Observe("a", "", nil)
	p.Observe("a", "a", nil)
	if st := p.Stats(); st.Observations != 0 || st.States != 0 {
		t.Fatalf("degenerate observations recorded: %+v", st)
	}
}

func TestPredictorTieBreakDeterministic(t *testing.T) {
	p := NewPredictor(8, 4)
	p.Observe("a", "z", nil)
	p.Observe("a", "b", nil)
	got := p.Predict("a")
	if got[0].Key != "b" || got[1].Key != "z" {
		t.Fatalf("equal-count order = [%s %s], want key-ascending [b z]", got[0].Key, got[1].Key)
	}
}

func TestPredictorBoundsStates(t *testing.T) {
	p := NewPredictor(2, 4)
	p.Observe("s1", "x", nil)
	p.Observe("s2", "x", nil)
	p.Observe("s3", "x", nil) // evicts s1 (LRU)
	if p.Predict("s1") != nil {
		t.Fatal("s1 should have been evicted")
	}
	if p.Predict("s2") == nil || p.Predict("s3") == nil {
		t.Fatal("s2/s3 should survive")
	}
	if st := p.Stats(); st.States != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 states / 1 eviction", st)
	}
}

func TestPredictorBoundsSuccessorsReplacesWeakest(t *testing.T) {
	p := NewPredictor(8, 2)
	p.Observe("a", "b", nil)
	p.Observe("a", "b", nil)
	p.Observe("a", "c", nil)
	p.Observe("a", "d", nil) // replaces c (count 1 < b's 2)
	got := p.Predict("a")
	if len(got) != 2 {
		t.Fatalf("successors = %d, want 2", len(got))
	}
	if got[0].Key != "b" || got[1].Key != "d" {
		t.Fatalf("successors = [%s %s], want [b d]", got[0].Key, got[1].Key)
	}
}

// syncSubmit runs fn on a fresh goroutine immediately — a stand-in for
// the scheduler's idle-only class in unit tests.
func syncSubmit(fn func()) (<-chan struct{}, func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	return done, func() {}
}

func waitStats(t *testing.T, sp *Speculator, ok func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := sp.Stats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition never met; stats = %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSpeculatorLaunchesAndScoresHits(t *testing.T) {
	var launched atomic.Uint64
	sp := NewSpeculator(Options{
		Submit: syncSubmit,
		Launch: func(ctx context.Context, p Prediction) (int64, error) {
			launched.Add(1)
			return 100, nil
		},
	})
	defer sp.Close()
	sp.Enqueue([]Prediction{{Key: "k1"}, {Key: "k2"}})
	st := waitStats(t, sp, func(s Stats) bool { return s.Launches == 2 })
	if st.Predictions != 2 || st.WastedBytes != 200 {
		t.Fatalf("stats = %+v, want 2 predictions / 200 wasted", st)
	}
	if !sp.MarkDemand("k1") {
		t.Fatal("demand for launched k1 should score a hit")
	}
	if sp.MarkDemand("k1") {
		t.Fatal("a hit is scored once")
	}
	if sp.MarkDemand("never") {
		t.Fatal("unlaunched key cannot hit")
	}
	st = sp.Stats()
	if st.Hits != 1 || st.WastedBytes != 100 {
		t.Fatalf("stats = %+v, want 1 hit / 100 wasted", st)
	}
	if want := 0.5; st.Accuracy != want {
		t.Fatalf("accuracy = %v, want %v", st.Accuracy, want)
	}
}

func TestSpeculatorDedupesLaunchedKeys(t *testing.T) {
	sp := NewSpeculator(Options{
		Submit: syncSubmit,
		Launch: func(ctx context.Context, p Prediction) (int64, error) { return 1, nil },
	})
	defer sp.Close()
	sp.Enqueue([]Prediction{{Key: "k"}})
	waitStats(t, sp, func(s Stats) bool { return s.Launches == 1 })
	sp.Enqueue([]Prediction{{Key: "k"}})
	st := waitStats(t, sp, func(s Stats) bool { return s.Predictions == 2 && s.QueueDepth == 0 })
	if st.Launches != 1 {
		t.Fatalf("launches = %d, want 1 (relaunch of a tracked key)", st.Launches)
	}
}

func TestSpeculatorPausedWithdraws(t *testing.T) {
	paused := atomic.Bool{}
	paused.Store(true)
	sp := NewSpeculator(Options{
		Submit: syncSubmit,
		Paused: paused.Load,
		Launch: func(ctx context.Context, p Prediction) (int64, error) {
			t.Error("launched while paused")
			return 0, nil
		},
	})
	defer sp.Close()
	sp.Enqueue([]Prediction{{Key: "k"}})
	st := waitStats(t, sp, func(s Stats) bool { return s.Withdrawn == 1 })
	if st.Launches != 0 {
		t.Fatalf("launches = %d, want 0", st.Launches)
	}
}

func TestSpeculatorIneligibleSkips(t *testing.T) {
	sp := NewSpeculator(Options{
		Submit:   syncSubmit,
		Eligible: func(string) bool { return false },
		Launch: func(ctx context.Context, p Prediction) (int64, error) {
			t.Error("launched an ineligible key")
			return 0, nil
		},
	})
	defer sp.Close()
	sp.Enqueue([]Prediction{{Key: "k"}})
	waitStats(t, sp, func(s Stats) bool { return s.Skipped == 1 })
}

func TestSpeculatorLaunchErrorCounted(t *testing.T) {
	sp := NewSpeculator(Options{
		Submit: syncSubmit,
		Launch: func(ctx context.Context, p Prediction) (int64, error) {
			return 0, errors.New("boom")
		},
	})
	defer sp.Close()
	sp.Enqueue([]Prediction{{Key: "k"}})
	st := waitStats(t, sp, func(s Stats) bool { return s.Errors == 1 })
	if st.WastedBytes != 0 {
		t.Fatalf("failed launch charged %d wasted bytes", st.WastedBytes)
	}
	if sp.MarkDemand("k") {
		t.Fatal("failed launch must not score hits")
	}
}

func TestSpeculatorQueueBoundDrops(t *testing.T) {
	block := make(chan struct{})
	sp := NewSpeculator(Options{
		QueueLimit: 1,
		Submit:     syncSubmit,
		Launch: func(ctx context.Context, p Prediction) (int64, error) {
			<-block
			return 1, nil
		},
	})
	defer func() {
		close(block)
		sp.Close()
	}()
	// First prediction dequeues into the (blocked) launch; the queue
	// then holds one and sheds the rest.
	var preds []Prediction
	for i := 0; i < 8; i++ {
		preds = append(preds, Prediction{Key: fmt.Sprintf("k%d", i)})
	}
	sp.Enqueue(preds)
	st := waitStats(t, sp, func(s Stats) bool { return s.Dropped >= 6 })
	if st.Predictions != 8 {
		t.Fatalf("predictions = %d, want 8", st.Predictions)
	}
}

func TestSpeculatorCloseCancelsContext(t *testing.T) {
	started := make(chan struct{})
	finished := make(chan struct{})
	sp := NewSpeculator(Options{
		Submit: syncSubmit,
		Launch: func(ctx context.Context, p Prediction) (int64, error) {
			close(started)
			<-ctx.Done()
			close(finished)
			return 0, ctx.Err()
		},
	})
	sp.Enqueue([]Prediction{{Key: "k"}})
	<-started
	sp.Close()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel the launch context")
	}
}
