package spec

import (
	"container/list"
	"context"
	"sync"
)

// Options configures a Speculator. Submit and Launch are required;
// the remaining hooks default to permissive no-ops.
type Options struct {
	// QueueLimit bounds the prediction queue (<=0 selects 64).
	// Predictions enqueued past the bound are dropped and counted —
	// speculation sheds itself before it sheds anything else.
	QueueLimit int
	// Paused reports that speculation should stand down right now
	// (admission gate saturated, server draining). Checked both when a
	// prediction is dequeued and again when its task is claimed by an
	// idle worker, so a prediction queued before saturation is
	// withdrawn rather than computed during it.
	Paused func() bool
	// Eligible reports whether key is worth launching: typically
	// "self-owned by the shard ring and not already in the store".
	Eligible func(key string) bool
	// Launch computes the predicted artifact under ctx and returns its
	// approximate stored size in bytes. It runs on a scheduler worker
	// claimed from the speculative queue.
	Launch func(ctx context.Context, p Prediction) (bytes int64, err error)
	// Submit hands fn to the scheduler's speculative (idle-only) task
	// class, returning the task's completion channel and a withdraw
	// function (sched.Scheduler.Speculate).
	Submit func(fn func()) (done <-chan struct{}, cancel func())
}

// launchRecord is the hit-accounting entry of one launched artifact.
type launchRecord struct {
	key   string
	bytes int64
	hit   bool
}

// Speculator drains a bounded queue of predictions through the
// scheduler's idle-only task class, one launch at a time — speculation
// never holds more than one worker even on an idle pool, so a demand
// burst finds the pool at full strength minus at most one task that is
// stolen last anyway. It keeps the paper's spawn-scheme books: every
// launched artifact is remembered (bounded LRU) so a later demand
// request for its key counts as a hit and reclaims its bytes from the
// wasted-bytes gauge. All methods are safe for concurrent use.
type Speculator struct {
	opts   Options
	queue  chan Prediction
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu          sync.Mutex
	ll          *list.List // launched-record LRU, MRU at front
	launched    map[string]*list.Element
	predictions uint64
	launches    uint64
	hits        uint64
	withdrawn   uint64
	skipped     uint64
	errors      uint64
	dropped     uint64
	wastedBytes int64
}

// launchedCap bounds the hit-accounting LRU. A record evicted before
// its key is requested stays counted as wasted — by then it has sat
// unused through launchedCap subsequent launches.
const launchedCap = 1024

// NewSpeculator starts the launcher goroutine. Close releases it.
func NewSpeculator(opts Options) *Speculator {
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = 64
	}
	if opts.Paused == nil {
		opts.Paused = func() bool { return false }
	}
	if opts.Eligible == nil {
		opts.Eligible = func(string) bool { return true }
	}
	ctx, cancel := context.WithCancel(context.Background())
	sp := &Speculator{
		opts:     opts,
		queue:    make(chan Prediction, opts.QueueLimit),
		ctx:      ctx,
		cancel:   cancel,
		ll:       list.New(),
		launched: make(map[string]*list.Element),
	}
	sp.wg.Add(1)
	go sp.run()
	return sp
}

// Enqueue queues predictions for launch, dropping (and counting) any
// past the queue bound. Predictions for keys already launched and not
// yet evicted from the accounting LRU are skipped up front — a sweep
// that revisits its own trained pattern must not relaunch the world.
func (sp *Speculator) Enqueue(preds []Prediction) {
	for _, p := range preds {
		sp.mu.Lock()
		sp.predictions++
		_, seen := sp.launched[p.Key]
		sp.mu.Unlock()
		if seen {
			continue
		}
		select {
		case sp.queue <- p:
		default:
			sp.mu.Lock()
			sp.dropped++
			sp.mu.Unlock()
		}
	}
}

// run is the launcher: pop a prediction, vet it, hand it to the
// idle-only task class, wait for that single task to finish before
// popping the next.
func (sp *Speculator) run() {
	defer sp.wg.Done()
	for {
		select {
		case <-sp.ctx.Done():
			return
		case p := <-sp.queue:
			if sp.opts.Paused() {
				sp.count(&sp.withdrawn)
				continue
			}
			if !sp.opts.Eligible(p.Key) {
				sp.count(&sp.skipped)
				continue
			}
			done, cancel := sp.opts.Submit(func() { sp.launch(p) })
			select {
			case <-done:
			case <-sp.ctx.Done():
				cancel()
				return
			}
		}
	}
}

// launch runs on a scheduler worker claimed from the speculative
// queue. Conditions are re-checked here — at claim time — so a task
// queued healthy but claimed during saturation or drain withdraws
// instead of computing.
func (sp *Speculator) launch(p Prediction) {
	if sp.ctx.Err() != nil || sp.opts.Paused() {
		sp.count(&sp.withdrawn)
		return
	}
	if !sp.opts.Eligible(p.Key) {
		sp.count(&sp.skipped)
		return
	}
	sp.mu.Lock()
	sp.launches++
	sp.mu.Unlock()
	bytes, err := sp.opts.Launch(sp.ctx, p)
	if err != nil {
		sp.count(&sp.errors)
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if _, ok := sp.launched[p.Key]; !ok {
		if sp.ll.Len() >= launchedCap {
			old := sp.ll.Back()
			sp.ll.Remove(old)
			delete(sp.launched, old.Value.(*launchRecord).key)
		}
		sp.launched[p.Key] = sp.ll.PushFront(&launchRecord{key: p.Key, bytes: bytes})
		sp.wastedBytes += bytes
	}
}

// MarkDemand tells the speculator a demand request for key arrived; it
// reports whether that request hit a speculatively-launched artifact
// (first demand only — a hit is scored once, like the paper scores a
// spawned thread that commits).
func (sp *Speculator) MarkDemand(key string) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	el, ok := sp.launched[key]
	if !ok {
		return false
	}
	rec := el.Value.(*launchRecord)
	if rec.hit {
		return false
	}
	rec.hit = true
	sp.hits++
	sp.wastedBytes -= rec.bytes
	return true
}

// count bumps one counter under the lock.
func (sp *Speculator) count(c *uint64) {
	sp.mu.Lock()
	*c++
	sp.mu.Unlock()
}

// Stats is a point-in-time snapshot of speculation activity.
type Stats struct {
	// Predictions counts every prediction handed to Enqueue; Launches
	// counts speculative computations started; Hits counts launched
	// artifacts later requested on the demand path.
	Predictions uint64 `json:"predictions"`
	Launches    uint64 `json:"launches"`
	Hits        uint64 `json:"hits"`
	// Withdrawn counts predictions stood down because the server was
	// saturated or draining; Skipped counts predictions vetoed by the
	// eligibility hook (already stored, not self-owned); Errors counts
	// failed launches; Dropped counts predictions shed by the bounded
	// queue.
	Withdrawn uint64 `json:"withdrawn"`
	Skipped   uint64 `json:"skipped"`
	Errors    uint64 `json:"errors"`
	Dropped   uint64 `json:"dropped"`
	// WastedBytes is the store bytes held by launched artifacts no
	// demand request has asked for (the misprediction cost gauge);
	// Accuracy is Hits/Launches — the paper's spawn-scheme accuracy
	// analogue (0 when nothing has launched).
	WastedBytes int64   `json:"wasted_bytes"`
	Accuracy    float64 `json:"accuracy"`
	// QueueDepth is the instantaneous prediction-queue depth.
	QueueDepth int `json:"queue_depth"`
}

// Stats snapshots the speculator counters.
func (sp *Speculator) Stats() Stats {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	st := Stats{
		Predictions: sp.predictions,
		Launches:    sp.launches,
		Hits:        sp.hits,
		Withdrawn:   sp.withdrawn,
		Skipped:     sp.skipped,
		Errors:      sp.errors,
		Dropped:     sp.dropped,
		WastedBytes: sp.wastedBytes,
		QueueDepth:  len(sp.queue),
	}
	if sp.launches > 0 {
		st.Accuracy = float64(sp.hits) / float64(sp.launches)
	}
	return st
}

// Close stops the launcher, withdrawing any not-yet-started task, and
// cancels the context handed to in-flight launches. It does not wait
// for an already-running launch body — that body runs on a scheduler
// worker and aborts at its next context check.
func (sp *Speculator) Close() {
	sp.cancel()
	sp.wg.Wait()
}
