package obs

import (
	"math"
	"strings"
	"testing"
)

func TestValidMetricName(t *testing.T) {
	valid := []string{"spmt_http_requests_total", "spmt_x", "spmt_a1_b2"}
	for _, s := range valid {
		if !ValidMetricName(s) {
			t.Errorf("ValidMetricName(%q) = false, want true", s)
		}
	}
	invalid := []string{"", "spmt_", "http_requests_total", "spmt_Upper", "spmt_1leading", "spmt_has-dash", "SPMT_x"}
	for _, s := range invalid {
		if ValidMetricName(s) {
			t.Errorf("ValidMetricName(%q) = true, want false", s)
		}
	}
}

func TestWriterCounterGauge(t *testing.T) {
	w := NewMetricsWriter()
	w.Counter("spmt_jobs_total", "Jobs run.", 42, A("kind", "sim"))
	w.Counter("spmt_jobs_total", "Jobs run.", 7, A("kind", "reach"))
	w.Gauge("spmt_workers", "Worker slots.", 8)
	out, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP spmt_jobs_total Jobs run.
# TYPE spmt_jobs_total counter
spmt_jobs_total{kind="sim"} 42
spmt_jobs_total{kind="reach"} 7
# HELP spmt_workers Worker slots.
# TYPE spmt_workers gauge
spmt_workers 8
`
	if string(out) != want {
		t.Fatalf("exposition mismatch:\n got %q\nwant %q", out, want)
	}
}

func TestWriterHistogramCumulates(t *testing.T) {
	w := NewMetricsWriter()
	h := HistSnapshot{
		Bounds: []float64{0.1, 0.5},
		Counts: []uint64{3, 2, 1}, // non-cumulative, trailing +Inf
		Sum:    1.25,
		Count:  6,
	}
	w.Histogram("spmt_dur_seconds", "Duration.", h, A("endpoint", "/v1/simulate"))
	out, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`spmt_dur_seconds_bucket{endpoint="/v1/simulate",le="0.1"} 3`,
		`spmt_dur_seconds_bucket{endpoint="/v1/simulate",le="0.5"} 5`,
		`spmt_dur_seconds_bucket{endpoint="/v1/simulate",le="+Inf"} 6`,
		`spmt_dur_seconds_sum{endpoint="/v1/simulate"} 1.25`,
		`spmt_dur_seconds_count{endpoint="/v1/simulate"} 6`,
	} {
		if !strings.Contains(string(out), line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
	if n := strings.Count(string(out), "# TYPE spmt_dur_seconds histogram"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}
}

func TestWriterRejectsBadNames(t *testing.T) {
	w := NewMetricsWriter()
	w.Counter("bad_name_total", "x", 1)
	if _, err := w.Bytes(); err == nil {
		t.Fatal("unprefixed metric name accepted")
	}

	w = NewMetricsWriter()
	w.Counter("spmt_ok_total", "x", 1, A("BadLabel", "v"))
	if _, err := w.Bytes(); err == nil {
		t.Fatal("invalid label name accepted")
	}

	w = NewMetricsWriter()
	w.Counter("spmt_x", "x", 1)
	w.Gauge("spmt_x", "x", 1)
	if _, err := w.Bytes(); err == nil {
		t.Fatal("type conflict accepted")
	}

	// Non-consecutive series for one family.
	w = NewMetricsWriter()
	w.Counter("spmt_a_total", "x", 1)
	w.Counter("spmt_b_total", "x", 1)
	w.Counter("spmt_a_total", "x", 2)
	if _, err := w.Bytes(); err == nil {
		t.Fatal("interleaved families accepted")
	}
}

func TestWriterEscapesLabelValues(t *testing.T) {
	w := NewMetricsWriter()
	w.Counter("spmt_x_total", "x", 1, A("k", "a\"b\\c\nd"))
	out, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `k="a\"b\\c\nd"`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:   "0",
		1.5: "1.5",
		1e9: "1e+09",
		-2:  "-2",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("+Inf = %q", got)
	}
}

func TestCounterVec(t *testing.T) {
	v := NewCounterVec("endpoint", "code")
	v.Add(1, "/v1/simulate", "200")
	v.Add(2, "/v1/simulate", "200")
	v.Add(1, "/v1/analyze", "400")
	if got := v.Sum(); got != 4 {
		t.Fatalf("Sum = %v, want 4", got)
	}
	w := NewMetricsWriter()
	v.Write(w, "spmt_http_requests_total", "HTTP requests.")
	out, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by label values: /v1/analyze before /v1/simulate.
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if lines[2] != `spmt_http_requests_total{endpoint="/v1/analyze",code="400"} 1` ||
		lines[3] != `spmt_http_requests_total{endpoint="/v1/simulate",code="200"} 3` {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec([]float64{0.1, 1}, "endpoint")
	v.Observe(0.05, "/a")
	v.Observe(0.1, "/a") // on the bound -> le="0.1" bucket
	v.Observe(0.5, "/a")
	v.Observe(5, "/a")
	w := NewMetricsWriter()
	v.Write(w, "spmt_d_seconds", "d")
	out, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`spmt_d_seconds_bucket{endpoint="/a",le="0.1"} 2`,
		`spmt_d_seconds_bucket{endpoint="/a",le="1"} 3`,
		`spmt_d_seconds_bucket{endpoint="/a",le="+Inf"} 4`,
		`spmt_d_seconds_count{endpoint="/a"} 4`,
	} {
		if !strings.Contains(string(out), line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestCounterVecPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on label arity mismatch")
		}
	}()
	NewCounterVec("a", "b").Add(1, "only-one")
}
