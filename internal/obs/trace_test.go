package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestValidID(t *testing.T) {
	valid := []string{"a", "deadbeef01234567", "A-Z_09", "0000000000000000"}
	for _, s := range valid {
		if !ValidID(s) {
			t.Errorf("ValidID(%q) = false, want true", s)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	invalid := []string{"", "has space", "semi;colon", "new\nline", `quo"te`, string(long)}
	for _, s := range invalid {
		if ValidID(s) {
			t.Errorf("ValidID(%q) = true, want false", s)
		}
	}
}

func TestNewIDIsValid(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if !ValidID(id) {
			t.Fatalf("NewID() = %q, not valid", id)
		}
		if len(id) != 16 {
			t.Fatalf("NewID() = %q, want 16 hex chars", id)
		}
		seen[id] = true
	}
	if len(seen) < 100 {
		t.Fatalf("NewID produced duplicates in 100 draws: %d unique", len(seen))
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	if s.Active() {
		t.Fatal("nil span reports active")
	}
	s.SetAttr("k", "v") // must not panic
	s.End()             // must not panic
}

func TestUntracedContext(t *testing.T) {
	ctx := context.Background()
	if id := TraceIDFrom(ctx); id != "" {
		t.Fatalf("TraceIDFrom(untraced) = %q, want empty", id)
	}
	sp, ctx2 := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatal("StartSpan on untraced context returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan on untraced context changed the context")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer("node-a", 0, 0).Trace("t1")
	ctx := ContextWithTrace(context.Background(), tr)
	if id := TraceIDFrom(ctx); id != "t1" {
		t.Fatalf("TraceIDFrom = %q, want t1", id)
	}

	root, ctx := StartSpan(ctx, "http /v1/simulate", A("endpoint", "/v1/simulate"))
	child, cctx := StartSpan(ctx, "exec sim", A("tier", "computed"))
	grand, _ := StartSpan(cctx, "run sim")
	grand.End()
	child.SetAttr("tier", "mem") // overwrite
	child.End()
	child.End() // idempotent
	sibling, _ := StartSpan(ctx, "route")
	sibling.End()
	root.End()

	j := tr.JSON()
	if j.ID != "t1" || j.Node != "node-a" {
		t.Fatalf("trace identity: %+v", j)
	}
	if j.Spans != 4 {
		t.Fatalf("got %d spans, want 4", j.Spans)
	}
	if len(j.Roots) != 1 || j.Roots[0].Name != "http /v1/simulate" {
		t.Fatalf("roots = %+v", j.Roots)
	}
	if j.Roots[0].Node != "node-a" {
		t.Fatalf("root node = %q, want node-a", j.Roots[0].Node)
	}
	kids := j.Roots[0].Children
	if len(kids) != 2 {
		t.Fatalf("root has %d children, want 2: %+v", len(kids), kids)
	}
	var exec *SpanJSON
	for _, k := range kids {
		if k.Name == "exec sim" {
			exec = k
		}
	}
	if exec == nil {
		t.Fatalf("no exec sim child: %+v", kids)
	}
	if exec.Attrs["tier"] != "mem" {
		t.Fatalf("SetAttr overwrite failed: %+v", exec.Attrs)
	}
	if len(exec.Children) != 1 || exec.Children[0].Name != "run sim" {
		t.Fatalf("exec children = %+v", exec.Children)
	}

	sum := tr.Summary()
	if sum.Root != "http /v1/simulate" || sum.Spans != 4 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestSpanBudget(t *testing.T) {
	tc := NewTracer("", 0, 3)
	tr := tc.Trace("budget")
	ctx := ContextWithTrace(context.Background(), tr)
	for i := 0; i < 5; i++ {
		sp, _ := StartSpan(ctx, "s")
		sp.End()
	}
	j := tr.JSON()
	if j.Spans != 3 {
		t.Fatalf("kept %d spans, want 3", j.Spans)
	}
	if j.Dropped != 2 {
		t.Fatalf("dropped %d, want 2", j.Dropped)
	}
	if st := tc.Stats(); st.SpansDropped != 2 {
		t.Fatalf("tracer dropped = %d, want 2", st.SpansDropped)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tc := NewTracer("n", 3, 0)
	for i := 0; i < 5; i++ {
		tc.Trace(fmt.Sprintf("id%d", i))
	}
	if _, ok := tc.Lookup("id0"); ok {
		t.Fatal("id0 should have been evicted")
	}
	if _, ok := tc.Lookup("id1"); ok {
		t.Fatal("id1 should have been evicted")
	}
	for i := 2; i < 5; i++ {
		if _, ok := tc.Lookup(fmt.Sprintf("id%d", i)); !ok {
			t.Fatalf("id%d missing", i)
		}
	}
	st := tc.Stats()
	if st.Started != 5 || st.Resident != 3 {
		t.Fatalf("stats = %+v", st)
	}
	recent := tc.Recent(0)
	if len(recent) != 3 || recent[0].ID != "id4" || recent[2].ID != "id2" {
		t.Fatalf("recent = %+v", recent)
	}
	if r := tc.Recent(2); len(r) != 2 {
		t.Fatalf("Recent(2) = %d entries", len(r))
	}
}

func TestTraceGetOrCreateAdoptsID(t *testing.T) {
	tc := NewTracer("n", 0, 0)
	a := tc.Trace("shared")
	b := tc.Trace("shared")
	if a != b {
		t.Fatal("same ID produced distinct traces")
	}
	c := tc.Trace("not a valid id!")
	if c.ID() == "not a valid id!" {
		t.Fatal("invalid ID adopted verbatim")
	}
	if !ValidID(c.ID()) {
		t.Fatalf("replacement ID %q invalid", c.ID())
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer("n", 0, 0).Trace("conc")
	ctx := ContextWithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				sp, sctx := StartSpan(ctx, "outer")
				in, _ := StartSpan(sctx, "inner")
				in.SetAttr("k", "v")
				in.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if j := tr.JSON(); j.Spans != DefaultMaxSpans {
		t.Fatalf("spans = %d, want budget %d", j.Spans, DefaultMaxSpans)
	}
}
