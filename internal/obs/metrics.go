// Hand-rolled Prometheus text exposition (version 0.0.4): a
// MetricsWriter that renders counters, gauges, and histograms with
// HELP/TYPE headers, label escaping, and strict name validation — any
// series not matching spmt_ snake_case is a hard error, so a typo'd
// metric fails the scrape test instead of shipping — plus two small
// live instruments (CounterVec, HistogramVec) for values that have no
// existing atomic counter to snapshot (per-endpoint HTTP latency and
// status codes).
package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricNamePrefix is the mandatory prefix of every exposed series.
const MetricNamePrefix = "spmt_"

// ValidMetricName reports whether name is spmt_-prefixed snake_case.
func ValidMetricName(name string) bool {
	if !strings.HasPrefix(name, MetricNamePrefix) {
		return false
	}
	rest := name[len(MetricNamePrefix):]
	if rest == "" || rest[0] < 'a' || rest[0] > 'z' {
		return false
	}
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// MetricsWriter accumulates one exposition document. Series of one
// name must be written consecutively (HELP/TYPE are emitted on the
// first); reusing a name with a different type, or any invalid name,
// poisons the writer and Bytes reports the error.
type MetricsWriter struct {
	buf   bytes.Buffer
	err   error
	types map[string]string
	last  string
}

// NewMetricsWriter returns an empty exposition document.
func NewMetricsWriter() *MetricsWriter {
	return &MetricsWriter{types: make(map[string]string)}
}

func (w *MetricsWriter) fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf(format, args...)
	}
}

// header validates the name and emits HELP/TYPE on first use.
func (w *MetricsWriter) header(name, help, typ string) bool {
	if w.err != nil {
		return false
	}
	if !ValidMetricName(name) {
		w.fail("obs: metric name %q is not %ssnake_case", name, MetricNamePrefix)
		return false
	}
	if prev, ok := w.types[name]; ok {
		if prev != typ {
			w.fail("obs: metric %q declared as both %s and %s", name, prev, typ)
			return false
		}
		if w.last != name {
			w.fail("obs: metric %q series are not consecutive", name)
			return false
		}
		return true
	}
	w.types[name] = typ
	w.last = name
	help = strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help)
	fmt.Fprintf(&w.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return true
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`)

// series writes one sample line.
func (w *MetricsWriter) series(name string, attrs []Attr, v float64) {
	if w.err != nil {
		return
	}
	w.buf.WriteString(name)
	if len(attrs) > 0 {
		w.buf.WriteByte('{')
		for i, a := range attrs {
			if !validLabelName(a.Key) {
				w.fail("obs: metric %q has invalid label name %q", name, a.Key)
				return
			}
			if i > 0 {
				w.buf.WriteByte(',')
			}
			fmt.Fprintf(&w.buf, `%s="%s"`, a.Key, labelEscaper.Replace(a.Value))
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatValue(v))
	w.buf.WriteByte('\n')
	w.last = name
}

// Counter writes one counter series.
func (w *MetricsWriter) Counter(name, help string, v float64, attrs ...Attr) {
	if w.header(name, help, "counter") {
		w.series(name, attrs, v)
	}
}

// Gauge writes one gauge series.
func (w *MetricsWriter) Gauge(name, help string, v float64, attrs ...Attr) {
	if w.header(name, help, "gauge") {
		w.series(name, attrs, v)
	}
}

// HistSnapshot is one histogram's state for exposition. Counts holds
// per-bucket (non-cumulative) counts with one trailing +Inf bucket, so
// len(Counts) == len(Bounds)+1; the writer emits the cumulative form
// the exposition format requires.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Histogram writes one histogram series set (buckets, sum, count).
func (w *MetricsWriter) Histogram(name, help string, h HistSnapshot, attrs ...Attr) {
	if !w.header(name, help, "histogram") {
		return
	}
	if len(h.Counts) != len(h.Bounds)+1 {
		w.fail("obs: histogram %q has %d counts for %d bounds", name, len(h.Counts), len(h.Bounds))
		return
	}
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		w.series(name+"_bucket", append(append([]Attr(nil), attrs...),
			Attr{Key: "le", Value: formatValue(bound)}), float64(cum))
	}
	cum += h.Counts[len(h.Bounds)]
	w.series(name+"_bucket", append(append([]Attr(nil), attrs...),
		Attr{Key: "le", Value: "+Inf"}), float64(cum))
	w.series(name+"_sum", attrs, h.Sum)
	w.series(name+"_count", attrs, float64(h.Count))
	// _bucket/_sum/_count interleave under one family name.
	w.last = name
}

// Bytes returns the document, or the first error the writer hit.
func (w *MetricsWriter) Bytes() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	return w.buf.Bytes(), nil
}

// labelKey joins label values into one deterministic map key.
const labelSep = "\x1f"

// CounterVec is a live set of counter series over a fixed label
// schema, for events with no pre-existing atomic counter to snapshot.
type CounterVec struct {
	labels []string
	mu     sync.Mutex
	vals   map[string]float64
}

// NewCounterVec builds a counter vector with the given label names.
func NewCounterVec(labels ...string) *CounterVec {
	return &CounterVec{labels: labels, vals: make(map[string]float64)}
}

// Add increments the series at the given label values.
func (v *CounterVec) Add(n float64, labelValues ...string) {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("obs: CounterVec.Add got %d label values, want %d", len(labelValues), len(v.labels)))
	}
	key := strings.Join(labelValues, labelSep)
	v.mu.Lock()
	v.vals[key] += n
	v.mu.Unlock()
}

// Write emits every series, label-sorted for deterministic output.
func (v *CounterVec) Write(w *MetricsWriter, name, help string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	snap := make(map[string]float64, len(v.vals))
	for k, val := range v.vals {
		snap[k] = val
	}
	v.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		w.Counter(name, help, snap[k], v.attrs(k)...)
	}
}

// Sum returns the total over every series (for cross-checks).
func (v *CounterVec) Sum() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var total float64
	for _, val := range v.vals {
		total += val
	}
	return total
}

func (v *CounterVec) attrs(key string) []Attr {
	parts := strings.Split(key, labelSep)
	attrs := make([]Attr, len(v.labels))
	for i, name := range v.labels {
		attrs[i] = Attr{Key: name, Value: parts[i]}
	}
	return attrs
}

// HistogramVec is a live set of histogram series over a fixed label
// schema and shared bucket bounds.
type HistogramVec struct {
	labels []string
	bounds []float64
	mu     sync.Mutex
	cells  map[string]*histCell
}

type histCell struct {
	counts []uint64
	sum    float64
	count  uint64
}

// NewHistogramVec builds a histogram vector. bounds are the ascending
// bucket upper bounds (an implicit +Inf bucket is appended).
func NewHistogramVec(bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{
		labels: labels,
		bounds: append([]float64(nil), bounds...),
		cells:  make(map[string]*histCell),
	}
}

// Observe records one value into the series at the given label values.
func (v *HistogramVec) Observe(x float64, labelValues ...string) {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("obs: HistogramVec.Observe got %d label values, want %d", len(labelValues), len(v.labels)))
	}
	key := strings.Join(labelValues, labelSep)
	v.mu.Lock()
	cell := v.cells[key]
	if cell == nil {
		cell = &histCell{counts: make([]uint64, len(v.bounds)+1)}
		v.cells[key] = cell
	}
	i := sort.SearchFloat64s(v.bounds, x)
	cell.counts[i]++
	cell.sum += x
	cell.count++
	v.mu.Unlock()
}

// Write emits every series, label-sorted for deterministic output.
func (v *HistogramVec) Write(w *MetricsWriter, name, help string) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.cells))
	snaps := make(map[string]HistSnapshot, len(v.cells))
	for k, cell := range v.cells {
		keys = append(keys, k)
		snaps[k] = HistSnapshot{
			Bounds: v.bounds,
			Counts: append([]uint64(nil), cell.counts...),
			Sum:    cell.sum,
			Count:  cell.count,
		}
	}
	v.mu.Unlock()
	sort.Strings(keys)
	cv := CounterVec{labels: v.labels} // reuse label rendering
	for _, k := range keys {
		w.Histogram(name, help, snaps[k], cv.attrs(k)...)
	}
}
