// Span-tree rendering: the wire shape GET /v1/traces/{id} serves and
// the shape the entry node's stitcher consumes from peers. Spans are
// stored flat (id, parent) and assembled into a tree here; grafting a
// peer's subtree is a pure append of its roots under the local span
// that crossed the wire.
package obs

import (
	"sort"
	"time"
)

// SpanJSON is one span of a rendered trace tree.
type SpanJSON struct {
	Name string `json:"name"`
	// Node is set on the root spans of each node's subtree in a
	// stitched cross-node trace; children inherit their nearest
	// ancestor's node.
	Node          string            `json:"node,omitempty"`
	StartUnixNano int64             `json:"start_unix_nano"`
	DurationNanos int64             `json:"duration_ns"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Children      []*SpanJSON       `json:"children,omitempty"`
}

// TraceJSON is the GET /v1/traces/{id} response body.
type TraceJSON struct {
	ID   string `json:"id"`
	Node string `json:"node,omitempty"`
	// Spans counts spans in this tree (before any stitching); Dropped
	// counts spans lost to the per-trace budget.
	Spans   int         `json:"spans"`
	Dropped uint64      `json:"dropped,omitempty"`
	Roots   []*SpanJSON `json:"roots"`
}

// TraceSummary is one line of the GET /v1/traces listing.
type TraceSummary struct {
	ID            string `json:"id"`
	Node          string `json:"node,omitempty"`
	Root          string `json:"root,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationNanos int64  `json:"duration_ns"`
	Spans         int    `json:"spans"`
}

// snapshot copies the recorded spans under the trace lock.
func (tr *Trace) snapshot() (spans []spanRec, dropped uint64, created time.Time) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]spanRec(nil), tr.spans...), tr.dropped, tr.created
}

// JSON renders the trace's local span tree. Spans whose parent was
// never recorded (still running, dropped, or the root) become roots.
// Siblings are ordered by start time (ID as tiebreak), so the tree
// reads in execution order.
func (tr *Trace) JSON() *TraceJSON {
	spans, dropped, _ := tr.snapshot()
	nodes := make(map[uint32]*SpanJSON, len(spans))
	for i := range spans {
		rec := &spans[i]
		sj := &SpanJSON{
			Name:          rec.name,
			StartUnixNano: rec.start.UnixNano(),
			DurationNanos: int64(rec.dur),
		}
		if len(rec.attrs) > 0 {
			sj.Attrs = make(map[string]string, len(rec.attrs))
			for _, a := range rec.attrs {
				sj.Attrs[a.Key] = a.Value
			}
		}
		nodes[rec.id] = sj
	}
	out := &TraceJSON{ID: tr.id, Node: tr.node, Spans: len(spans), Dropped: dropped}
	for i := range spans {
		rec := &spans[i]
		if parent, ok := nodes[rec.parent]; ok && rec.parent != rec.id {
			parent.Children = append(parent.Children, nodes[rec.id])
		} else {
			out.Roots = append(out.Roots, nodes[rec.id])
		}
	}
	sortTree(out.Roots)
	for _, r := range out.Roots {
		r.Node = tr.node
	}
	return out
}

func sortTree(spans []*SpanJSON) {
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].StartUnixNano < spans[j].StartUnixNano
	})
	for _, s := range spans {
		sortTree(s.Children)
	}
}

// Summary renders the trace's listing line. Duration spans the
// earliest span start to the latest span end (the root span's window
// when one exists).
func (tr *Trace) Summary() TraceSummary {
	spans, _, created := tr.snapshot()
	sum := TraceSummary{
		ID:            tr.id,
		Node:          tr.node,
		StartUnixNano: created.UnixNano(),
		Spans:         len(spans),
	}
	var first, last time.Time
	var rootStart time.Time
	for i := range spans {
		rec := &spans[i]
		end := rec.start.Add(rec.dur)
		if first.IsZero() || rec.start.Before(first) {
			first = rec.start
		}
		if end.After(last) {
			last = end
		}
		if rec.parent == 0 && (sum.Root == "" || rec.start.Before(rootStart)) {
			sum.Root = rec.name
			rootStart = rec.start
		}
	}
	if !first.IsZero() {
		sum.StartUnixNano = first.UnixNano()
		sum.DurationNanos = int64(last.Sub(first))
	}
	return sum
}
