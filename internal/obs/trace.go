// Package obs is the zero-dependency observability layer threaded
// through the server, shard, engine, and store: request tracing
// (bounded in-memory ring of span trees, propagated across shard hops
// via the X-Spmt-Trace header) and hand-rolled Prometheus text
// exposition (metrics.go).
//
// The hard invariant of the whole package: observing a request must
// never change its response bytes. Spans live in headers, side
// endpoints (/v1/traces), and process memory only; every instrument
// is safe to call with tracing disabled (a nil *Span is a no-op), so
// instrumented code paths stay byte-identical to uninstrumented ones.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceHeader carries the trace ID on /v1 requests and responses, and
// on every intra-cluster hop (proxy, batch fan-out, artifact fetch,
// stats fan-out), so one client request stitches into one cluster-wide
// trace.
const TraceHeader = "X-Spmt-Trace"

// Defaults for NewTracer(_, 0, 0).
const (
	DefaultTraceCapacity = 128
	DefaultMaxSpans      = 512
)

// NewID returns a fresh 16-hex-digit trace ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID
		// still traces, it just collides with other zero IDs.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s is acceptable as a client-supplied trace
// ID: short and shell/log-safe, so arbitrary header values can neither
// bloat the ring's key space nor smuggle control bytes into logs.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Attr is one span attribute. A slice of Attrs (not a map) keeps the
// record order deterministic and allocation cheap.
type Attr struct {
	Key, Value string
}

// A returns an Attr (shorthand for literals at call sites).
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// spanRec is one completed span as stored in a Trace.
type spanRec struct {
	id     uint32
	parent uint32
	name   string
	start  time.Time
	dur    time.Duration
	attrs  []Attr
}

// Trace accumulates the spans of one traced request (across however
// many jobs and goroutines serve it on this node). Spans are recorded
// on End; the per-trace span count is bounded, with overflow counted
// rather than stored.
type Trace struct {
	id   string
	node string

	mu       sync.Mutex
	nextSpan uint32
	spans    []spanRec
	dropped  uint64
	maxSpans int
	created  time.Time
	tracer   *Tracer
}

// ID returns the trace ID (as propagated in TraceHeader).
func (tr *Trace) ID() string { return tr.id }

// record appends one completed span, honouring the span budget.
func (tr *Trace) record(rec spanRec) {
	tr.mu.Lock()
	if len(tr.spans) >= tr.maxSpans {
		tr.dropped++
		tr.mu.Unlock()
		if tr.tracer != nil {
			tr.tracer.noteDropped()
		}
		return
	}
	tr.spans = append(tr.spans, rec)
	tr.mu.Unlock()
}

// Span is one in-flight span. A nil Span (no active trace in the
// context) is valid and every method on it is a no-op, so
// instrumentation sites need no conditionals.
type Span struct {
	tr     *Trace
	id     uint32
	parent uint32
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  []Attr
	ended  bool
}

// Active reports whether the span records anywhere (i.e. a trace is
// live on this request path). Use it to skip work that exists only to
// enrich the span.
func (s *Span) Active() bool { return s != nil && s.tr != nil }

// SetAttr attaches or overwrites one attribute.
func (s *Span) SetAttr(key, value string) {
	if !s.Active() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End completes the span and records it into its trace. Idempotent.
func (s *Span) End() {
	if !s.Active() {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tr.record(spanRec{
		id:     s.id,
		parent: s.parent,
		name:   s.name,
		start:  s.start,
		dur:    time.Since(s.start),
		attrs:  attrs,
	})
}

// ctxKey carries the active trace + parent span ID through a request's
// context.
type ctxKey struct{}

type ctxVal struct {
	tr     *Trace
	spanID uint32
}

// ContextWithTrace roots a trace in the context: spans started under
// the returned context parent to the trace's root (span ID 0).
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{tr: tr})
}

// TraceIDFrom returns the active trace's ID, or "" when the context is
// untraced — the value a peer hop writes into TraceHeader.
func TraceIDFrom(ctx context.Context) string {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.tr.id
	}
	return ""
}

// StartSpan opens a span under the context's active trace and returns
// it with a derived context that parents nested spans to it. With no
// active trace it returns (nil, ctx) — zero cost beyond the context
// lookup, and the nil Span's methods are no-ops.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (*Span, context.Context) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return nil, ctx
	}
	tr := v.tr
	tr.mu.Lock()
	tr.nextSpan++
	id := tr.nextSpan
	tr.mu.Unlock()
	s := &Span{
		tr:     tr,
		id:     id,
		parent: v.spanID,
		name:   name,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...),
	}
	return s, context.WithValue(ctx, ctxKey{}, ctxVal{tr: tr, spanID: id})
}

// TracerStats is a point-in-time snapshot of tracer activity (exposed
// as spmt_traces_* metrics).
type TracerStats struct {
	// Started counts traces created (fresh IDs and adopted peer IDs).
	Started uint64 `json:"started"`
	// SpansDropped counts spans discarded because their trace hit the
	// per-trace span budget.
	SpansDropped uint64 `json:"spans_dropped"`
	// Resident is the number of traces currently held in the ring.
	Resident int `json:"resident"`
}

// Tracer owns the bounded ring of recent traces on one node.
type Tracer struct {
	node     string
	capacity int
	maxSpans int

	mu      sync.Mutex
	byID    map[string]*Trace
	order   []string // creation order; front = oldest
	started uint64
	dropped uint64
}

// NewTracer builds a tracer. node names this process in stitched
// cross-node traces (the shard self URL in peer mode, "" standalone);
// capacity bounds the trace ring and maxSpans the spans kept per trace
// (<= 0 selects the defaults).
func NewTracer(node string, capacity, maxSpans int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{
		node:     node,
		capacity: capacity,
		maxSpans: maxSpans,
		byID:     make(map[string]*Trace),
	}
}

// Node returns the tracer's node name.
func (t *Tracer) Node() string { return t.node }

// Trace returns the trace under id, creating it if absent (evicting
// the oldest trace when the ring is full). An empty or invalid id gets
// a fresh one. Requests forwarded across the cluster under one ID all
// land in the same Trace on each node, which is what lets the entry
// node stitch the pieces back together.
func (t *Tracer) Trace(id string) *Trace {
	if !ValidID(id) {
		id = NewID()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr, ok := t.byID[id]; ok {
		return tr
	}
	for len(t.order) >= t.capacity {
		oldest := t.order[0]
		t.order = t.order[1:]
		delete(t.byID, oldest)
	}
	tr := &Trace{id: id, node: t.node, maxSpans: t.maxSpans, created: time.Now(), tracer: t}
	t.byID[id] = tr
	t.order = append(t.order, id)
	t.started++
	return tr
}

// Lookup returns the trace under id without creating one.
func (t *Tracer) Lookup(id string) (*Trace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.byID[id]
	return tr, ok
}

// Stats snapshots the tracer counters.
func (t *Tracer) Stats() TracerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TracerStats{Started: t.started, SpansDropped: t.dropped, Resident: len(t.byID)}
}

func (t *Tracer) noteDropped() {
	t.mu.Lock()
	t.dropped++
	t.mu.Unlock()
}

// Recent returns summaries of up to limit traces, newest first.
func (t *Tracer) Recent(limit int) []TraceSummary {
	t.mu.Lock()
	ids := make([]string, len(t.order))
	copy(ids, t.order)
	traces := make([]*Trace, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		traces = append(traces, t.byID[ids[i]])
	}
	t.mu.Unlock()
	if limit > 0 && len(traces) > limit {
		traces = traces[:limit]
	}
	out := make([]TraceSummary, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.Summary())
	}
	return out
}
