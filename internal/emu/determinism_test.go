package emu

import (
	"testing"

	"repro/internal/workload"
)

// TestEmulationDeterministic: two runs of the same program produce
// byte-identical traces and profiles — the property every downstream
// cache (suite pipelines, saved traces) relies on.
func TestEmulationDeterministic(t *testing.T) {
	p := workload.MustGenerate("go", workload.SizeTest)
	a, err := Run(p, Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Instrs != b.Instrs {
		t.Fatalf("instruction counts differ: %d vs %d", a.Instrs, b.Instrs)
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if len(a.Profile.EdgeCount) != len(b.Profile.EdgeCount) {
		t.Fatal("edge counts differ")
	}
	for e, c := range a.Profile.EdgeCount {
		if b.Profile.EdgeCount[e] != c {
			t.Fatalf("edge %v count differs", e)
		}
	}
}

// TestTraceMatchesProfile: the profile's block counts must equal the
// counts recovered by replaying the trace — the two collection paths
// must agree exactly.
func TestTraceMatchesProfile(t *testing.T) {
	p := workload.MustGenerate("compress", workload.SizeTest)
	res, err := Run(p, Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	replay := make(map[uint32]uint64)
	for i := range res.Trace.Events {
		pc := res.Trace.Events[i].PC
		if res.Profile.IsLeader(pc) {
			replay[pc]++
		}
	}
	for leader, count := range res.Profile.BlockCount {
		if replay[leader] != count {
			t.Errorf("block %d: profile %d vs trace replay %d", leader, count, replay[leader])
		}
	}
	var total uint64
	for _, e := range res.Profile.EdgeCount {
		total += e
	}
	_ = total
	if uint64(res.Instrs) != res.Profile.TotalInstrs {
		t.Errorf("instrs %d != profile total %d", res.Instrs, res.Profile.TotalInstrs)
	}
}
