package emu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// buildLoop returns a 3-iteration loop summing constants into r2.
func buildLoop(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("loop")
	b.Func("main")
	b.Li(1, 3) // n
	b.Li(2, 0) // acc
	b.Li(3, 0) // i
	b.Label("top")
	b.Addi(2, 2, 5)
	b.Addi(3, 3, 1)
	b.Branch(isa.OpBltu, 3, 1, "top")
	b.Halt()
	return b.MustBuild()
}

func TestRunSimpleLoop(t *testing.T) {
	res, err := Run(buildLoop(t), Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 + 3*3 + 1
	if res.Instrs != want {
		t.Errorf("instrs = %d, want %d", res.Instrs, want)
	}
	// Final accumulate event should carry 15.
	var accVal uint64
	for _, e := range res.Trace.Events {
		if e.Dst == 2 && e.Op == isa.OpAddi {
			accVal = e.Val
		}
	}
	if accVal != 15 {
		t.Errorf("acc = %d, want 15", accVal)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	b := isa.NewBuilder("arith")
	b.Func("main")
	b.Li(1, 10)
	b.Li(2, 3)
	b.Op3(isa.OpAdd, 3, 1, 2)   // 13
	b.Op3(isa.OpSub, 4, 1, 2)   // 7
	b.Op3(isa.OpMul, 5, 1, 2)   // 30
	b.Op3(isa.OpAnd, 6, 1, 2)   // 2
	b.Op3(isa.OpOr, 7, 1, 2)    // 11
	b.Op3(isa.OpXor, 8, 1, 2)   // 9
	b.Op3(isa.OpShl, 9, 1, 2)   // 80
	b.Op3(isa.OpShr, 10, 1, 2)  // 1
	b.Op3(isa.OpSltu, 11, 2, 1) // 1
	b.Op3(isa.OpSltu, 12, 1, 2) // 0
	b.Op3(isa.OpFDiv, 13, 1, 2) // 3
	b.Op3(isa.OpFDiv, 14, 1, 0) // div-by-zero guard -> 10
	b.Halt()
	p := b.MustBuild()
	res, err := Run(p, Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := map[isa.Reg]uint64{3: 13, 4: 7, 5: 30, 6: 2, 7: 11, 8: 9, 9: 80, 10: 1, 11: 1, 12: 0, 13: 3, 14: 10}
	got := map[isa.Reg]uint64{}
	for _, e := range res.Trace.Events {
		if e.Op.WritesReg() {
			got[e.Dst] = e.Val
		}
	}
	for r, w := range want {
		if got[r] != w {
			t.Errorf("r%d = %d, want %d", r, got[r], w)
		}
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	if m.Load(0x1000) != 0 {
		t.Error("uninitialised memory must read zero")
	}
	m.Store(0x1000, 42)
	m.Store(0x1008, 43)
	if m.Load(0x1000) != 42 || m.Load(0x1008) != 43 {
		t.Error("store/load mismatch")
	}
	// Unaligned access hits the containing word.
	if m.Load(0x1003) != 42 {
		t.Error("sub-word address must alias the containing word")
	}
	if m.Pages() != 1 {
		t.Errorf("pages = %d, want 1", m.Pages())
	}
}

func TestMemoryProperty(t *testing.T) {
	// Property: last store to an address wins; distinct words don't alias.
	f := func(addrs []uint16, vals []uint64) bool {
		m := NewMemory()
		ref := map[uint64]uint64{}
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a := uint64(addrs[i]) &^ 7
			m.Store(a, vals[i])
			ref[a] = vals[i]
		}
		for a, v := range ref {
			if m.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCallReturnAndCallStats(t *testing.T) {
	b := isa.NewBuilder("calls")
	b.Func("main")
	b.Li(1, 2)
	b.Call("f") // pc 1
	b.Call("f") // pc 2
	b.Halt()
	b.Func("f")
	b.Addi(1, 1, 1)
	b.Ret()
	p := b.MustBuild()
	res, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile.CallSites) != 2 {
		t.Fatalf("call sites = %d, want 2", len(res.Profile.CallSites))
	}
	for pc, cs := range res.Profile.CallSites {
		if cs.Count != 1 {
			t.Errorf("call %d count = %d", pc, cs.Count)
		}
		// call + addi + ret = 3 dynamic instructions per invocation
		if cs.TotalInstrs != 3 {
			t.Errorf("call %d instrs = %d, want 3", pc, cs.TotalInstrs)
		}
		if cs.AvgLen() != 3 {
			t.Errorf("call %d avglen = %v", pc, cs.AvgLen())
		}
	}
}

func TestReturnWithoutCallFails(t *testing.T) {
	b := isa.NewBuilder("badret")
	b.Func("main")
	b.Ret()
	b.Halt()
	if _, err := Run(b.MustBuild(), Config{}); err == nil {
		t.Fatal("expected empty-call-stack error")
	}
}

func TestBudgetExceeded(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Func("main")
	b.Label("top")
	b.Jmp("top")
	b.Halt()
	_, err := Run(b.MustBuild(), Config{MaxInstrs: 100})
	if err == nil {
		t.Fatal("expected budget error")
	}
}

func TestProfileBlocksAndEdges(t *testing.T) {
	p := buildLoop(t)
	res, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Profile
	// Blocks: entry [0..2], loop body [3..5], exit halt [6].
	if len(pr.Leaders) != 3 {
		t.Fatalf("leaders = %v", pr.Leaders)
	}
	if pr.BlockCount[0] != 1 || pr.BlockCount[3] != 3 || pr.BlockCount[6] != 1 {
		t.Errorf("block counts: %v", pr.BlockCount)
	}
	if pr.EdgeCount[Edge{0, 3}] != 1 {
		t.Errorf("entry->body edge = %d", pr.EdgeCount[Edge{0, 3}])
	}
	if pr.EdgeCount[Edge{3, 3}] != 2 {
		t.Errorf("backedge = %d", pr.EdgeCount[Edge{3, 3}])
	}
	if pr.EdgeCount[Edge{3, 6}] != 1 {
		t.Errorf("exit edge = %d", pr.EdgeCount[Edge{3, 6}])
	}
	if pr.BlockOf(4) != 3 || pr.BlockOf(0) != 0 || pr.BlockOf(6) != 6 {
		t.Error("BlockOf misassigns")
	}
	if !pr.IsLeader(3) || pr.IsLeader(4) {
		t.Error("IsLeader misassigns")
	}
	if pr.BlockInstrs(3) != 9 {
		t.Errorf("BlockInstrs(3) = %d, want 9", pr.BlockInstrs(3))
	}
	var total uint64
	for _, l := range pr.Leaders {
		total += pr.BlockInstrs(l)
	}
	if total != pr.TotalInstrs {
		t.Errorf("sum of block instrs %d != total %d", total, pr.TotalInstrs)
	}
}

// TestProfileEdgeFlowConservation checks a structural CFG property on a
// generated benchmark: for every block, inflow and execution count agree
// (modulo the entry block) — the property the reaching-probability
// engine's transition matrix relies on.
func TestProfileEdgeFlowConservation(t *testing.T) {
	b := isa.NewBuilder("flow")
	b.Func("main")
	b.Li(1, 6)
	b.Li(2, 0)
	b.Li(3, 1)
	b.Label("top")
	b.Op3(isa.OpAnd, 4, 2, 3)
	b.Branch(isa.OpBeq, 4, 0, "even")
	b.Addi(5, 5, 2)
	b.Jmp("join")
	b.Label("even")
	b.Addi(5, 5, 1)
	b.Label("join")
	b.Addi(2, 2, 1)
	b.Branch(isa.OpBltu, 2, 1, "top")
	b.Halt()
	res, err := Run(b.MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Profile
	inflow := map[uint32]uint64{}
	for e, c := range pr.EdgeCount {
		inflow[e.To] += c
	}
	for _, l := range pr.Leaders {
		want := pr.BlockCount[l]
		if l == 0 {
			want-- // entry visited once without an incoming edge
		}
		if inflow[l] != want {
			t.Errorf("block %d inflow %d != count %d", l, inflow[l], want)
		}
	}
}
