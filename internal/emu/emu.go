// Package emu is the functional emulator for the repository's ISA. It
// plays the role ATOM played in the HPCA'02 study: it executes a program
// to completion, producing the exact dynamic instruction trace and the
// basic-block/edge execution profile that the spawning analyses and the
// trace-driven processor simulator consume.
package emu

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
)

// ErrBudgetExceeded is returned when a program does not halt within the
// configured instruction budget.
var ErrBudgetExceeded = errors.New("emu: instruction budget exceeded")

// DefaultMaxInstrs bounds runaway programs.
const DefaultMaxInstrs = 64 << 20

// Config controls an emulation run.
type Config struct {
	// MaxInstrs caps the dynamic instruction count (DefaultMaxInstrs
	// when zero).
	MaxInstrs int
	// CollectTrace enables recording the full event stream. The profile
	// is always collected.
	CollectTrace bool
}

// Result bundles the artefacts of a run.
type Result struct {
	Trace   *trace.Trace // nil unless Config.CollectTrace
	Profile *Profile
	Instrs  int // dynamic instruction count
}

// ApproxBytes reports the run's approximate resident size (trace plus
// profile) for engine cache accounting.
func (r *Result) ApproxBytes() int64 {
	var b int64 = 64
	if r.Trace != nil {
		b += r.Trace.ApproxBytes()
	}
	if r.Profile != nil {
		b += r.Profile.ApproxBytes()
	}
	return b
}

type callFrame struct {
	retPC    uint32
	callPC   uint32
	startSeq uint64
}

// Run executes the program to its halt instruction and returns the trace
// (if requested) and profile.
func Run(p *isa.Program, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxInstrs := cfg.MaxInstrs
	if maxInstrs <= 0 {
		maxInstrs = DefaultMaxInstrs
	}

	var regs [isa.NumRegs]uint64
	mem := NewMemory()
	prof := newProfile(p)
	var events []trace.Event
	if cfg.CollectTrace {
		events = make([]trace.Event, 0, 1<<16)
	}

	var stack []callFrame
	pc := p.Entry
	prevBlock := uint32(0)
	haveBlock := false
	seq := uint64(0)

	for {
		if seq >= uint64(maxInstrs) {
			return nil, fmt.Errorf("%w: %s after %d instructions at pc %d",
				ErrBudgetExceeded, p.Name, seq, pc)
		}
		ins := &p.Code[pc]

		// Profile: block and edge accounting at block entry.
		if prof.IsLeader(pc) {
			prof.BlockCount[pc]++
			if haveBlock {
				prof.EdgeCount[Edge{From: prevBlock, To: pc}]++
			}
			prevBlock = pc
			haveBlock = true
		}

		next := pc + 1
		var val, addr uint64
		halted := false

		switch ins.Op {
		case isa.OpNop:
		case isa.OpAdd:
			val = regs[ins.Src1] + regs[ins.Src2]
		case isa.OpSub:
			val = regs[ins.Src1] - regs[ins.Src2]
		case isa.OpAnd:
			val = regs[ins.Src1] & regs[ins.Src2]
		case isa.OpOr:
			val = regs[ins.Src1] | regs[ins.Src2]
		case isa.OpXor:
			val = regs[ins.Src1] ^ regs[ins.Src2]
		case isa.OpShl:
			val = regs[ins.Src1] << (regs[ins.Src2] & 63)
		case isa.OpShr:
			val = regs[ins.Src1] >> (regs[ins.Src2] & 63)
		case isa.OpSltu:
			if regs[ins.Src1] < regs[ins.Src2] {
				val = 1
			}
		case isa.OpAddi:
			val = regs[ins.Src1] + uint64(ins.Imm)
		case isa.OpLui:
			val = uint64(ins.Imm)
		case isa.OpMul:
			val = regs[ins.Src1] * regs[ins.Src2]
		case isa.OpLoad:
			addr = regs[ins.Src1] + uint64(ins.Imm)
			val = mem.Load(addr)
		case isa.OpStore:
			addr = regs[ins.Src1] + uint64(ins.Imm)
			val = regs[ins.Src2]
			mem.Store(addr, val)
		case isa.OpBeq:
			if regs[ins.Src1] == regs[ins.Src2] {
				next = ins.Target
			}
		case isa.OpBne:
			if regs[ins.Src1] != regs[ins.Src2] {
				next = ins.Target
			}
		case isa.OpBltu:
			if regs[ins.Src1] < regs[ins.Src2] {
				next = ins.Target
			}
		case isa.OpBgeu:
			if regs[ins.Src1] >= regs[ins.Src2] {
				next = ins.Target
			}
		case isa.OpJmp:
			next = ins.Target
		case isa.OpCall:
			stack = append(stack, callFrame{retPC: pc + 1, callPC: pc, startSeq: seq})
			next = ins.Target
		case isa.OpRet:
			if len(stack) == 0 {
				return nil, fmt.Errorf("emu: return with empty call stack at pc %d", pc)
			}
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			next = fr.retPC
			cs := prof.CallSites[fr.callPC]
			cs.Count++
			cs.TotalInstrs += seq - fr.startSeq + 1
			prof.CallSites[fr.callPC] = cs
		case isa.OpFAdd:
			val = regs[ins.Src1] + regs[ins.Src2]
		case isa.OpFMul:
			val = regs[ins.Src1] * regs[ins.Src2]
		case isa.OpFDiv:
			d := regs[ins.Src2]
			if d == 0 {
				d = 1
			}
			val = regs[ins.Src1] / d
		case isa.OpHalt:
			halted = true
			next = pc
		default:
			return nil, fmt.Errorf("emu: unknown opcode %v at pc %d", ins.Op, pc)
		}

		if ins.Op.WritesReg() && ins.Dst != 0 {
			regs[ins.Dst] = val
		}

		if cfg.CollectTrace {
			events = append(events, trace.Event{
				PC: pc, Next: next, Op: ins.Op,
				Dst: ins.Dst, Src1: ins.Src1, Src2: ins.Src2,
				Val: val, Addr: addr,
			})
		}
		seq++
		prof.TotalInstrs++
		if halted {
			break
		}
		pc = next
	}

	res := &Result{Profile: prof, Instrs: int(seq)}
	if cfg.CollectTrace {
		res.Trace = &trace.Trace{Program: p, Events: events}
	}
	return res, nil
}
