package emu

import (
	"sort"

	"repro/internal/isa"
)

// Edge is a dynamic control-flow transition between two basic blocks,
// identified by their leader PCs.
type Edge struct {
	From, To uint32
}

// CallStat aggregates the dynamic behaviour of one call site.
type CallStat struct {
	Count       uint64 // number of times the call executed and returned
	TotalInstrs uint64 // dynamic instructions from the call to its return, inclusive of the callee
}

// AvgLen returns the mean dynamic instruction count per invocation.
func (c CallStat) AvgLen() float64 {
	if c.Count == 0 {
		return 0
	}
	return float64(c.TotalInstrs) / float64(c.Count)
}

// Profile is the ATOM-style execution profile: basic-block execution
// counts, dynamic edge frequencies, per-call-site statistics, and totals.
// Blocks are identified by their leader PC.
type Profile struct {
	Program *isa.Program

	// Leaders is the sorted list of static basic-block leader PCs.
	Leaders []uint32
	// BlockLen maps a leader to the static length of its block.
	BlockLen map[uint32]int
	// BlockCount maps a leader to its dynamic execution count.
	BlockCount map[uint32]uint64
	// EdgeCount maps dynamic block-to-block transitions (including
	// call and return transitions, context-insensitively) to counts.
	EdgeCount map[Edge]uint64
	// CallSites maps a call instruction's PC to its statistics.
	CallSites map[uint32]CallStat
	// TotalInstrs is the total number of dynamic instructions.
	TotalInstrs uint64

	leaderSet []bool // indexed by PC, true when the PC starts a block
}

// ApproxBytes reports the profile's approximate resident size for
// engine cache accounting: the block/edge/call-site maps dominate
// (~32–48B per entry including bucket overhead).
func (pr *Profile) ApproxBytes() int64 {
	return int64(len(pr.Leaders))*4 +
		int64(len(pr.BlockLen)+len(pr.BlockCount))*32 +
		int64(len(pr.EdgeCount))*48 +
		int64(len(pr.CallSites))*48 +
		int64(len(pr.leaderSet)) + 128
}

// ComputeLeaders returns the sorted basic-block leader PCs of a program:
// the entry, every control-flow target, and every fall-through successor
// of a control instruction.
func ComputeLeaders(p *isa.Program) []uint32 {
	isLeader := make([]bool, len(p.Code))
	isLeader[p.Entry] = true
	for i := range p.Funcs {
		isLeader[p.Funcs[i].Entry] = true
	}
	for pc, ins := range p.Code {
		if !ins.Op.IsControl() {
			continue
		}
		if ins.Op != isa.OpRet && ins.Op != isa.OpHalt {
			isLeader[ins.Target] = true
		}
		if pc+1 < len(p.Code) {
			isLeader[pc+1] = true
		}
	}
	var leaders []uint32
	for pc, l := range isLeader {
		if l {
			leaders = append(leaders, uint32(pc))
		}
	}
	return leaders
}

// newProfile allocates a profile with static block structure precomputed.
func newProfile(p *isa.Program) *Profile {
	leaders := ComputeLeaders(p)
	blockLen := make(map[uint32]int, len(leaders))
	for i, l := range leaders {
		end := uint32(len(p.Code))
		if i+1 < len(leaders) {
			end = leaders[i+1]
		}
		blockLen[l] = int(end - l)
	}
	leaderSet := make([]bool, len(p.Code))
	for _, l := range leaders {
		leaderSet[l] = true
	}
	return &Profile{
		Program:    p,
		Leaders:    leaders,
		BlockLen:   blockLen,
		BlockCount: make(map[uint32]uint64, len(leaders)),
		EdgeCount:  make(map[Edge]uint64),
		CallSites:  make(map[uint32]CallStat),
		leaderSet:  leaderSet,
	}
}

// BlockOf returns the leader PC of the block containing pc.
func (pr *Profile) BlockOf(pc uint32) uint32 {
	i := sort.Search(len(pr.Leaders), func(i int) bool { return pr.Leaders[i] > pc })
	return pr.Leaders[i-1]
}

// IsLeader reports whether pc starts a basic block.
func (pr *Profile) IsLeader(pc uint32) bool {
	if pr.leaderSet != nil {
		return pr.leaderSet[pc]
	}
	i := sort.Search(len(pr.Leaders), func(i int) bool { return pr.Leaders[i] >= pc })
	return i < len(pr.Leaders) && pr.Leaders[i] == pc
}

// BlockInstrs returns the dynamic instruction count attributable to a
// block: executions × static length.
func (pr *Profile) BlockInstrs(leader uint32) uint64 {
	return pr.BlockCount[leader] * uint64(pr.BlockLen[leader])
}
