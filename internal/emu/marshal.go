package emu

import (
	"fmt"
	"sort"

	"repro/internal/binio"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Wire-format version tags; bump on layout changes.
const (
	profileVersion = 1
	resultVersion  = 1
)

// MarshalBinary serialises the profile (program, block structure, and
// dynamic counts) deterministically: every map is written in sorted key
// order, so the same profile always produces the same bytes.
func (pr *Profile) MarshalBinary() ([]byte, error) {
	var prog []byte
	if pr.Program != nil {
		var err error
		if prog, err = pr.Program.MarshalBinary(); err != nil {
			return nil, err
		}
	}
	w := binio.NewWriter(64 + len(prog) + len(pr.Leaders)*4 +
		(len(pr.BlockLen)+len(pr.BlockCount))*12 + len(pr.EdgeCount)*16 + len(pr.CallSites)*20)
	w.U8(profileVersion)
	w.Bool(pr.Program != nil)
	if pr.Program != nil {
		w.Blob(prog)
	}
	w.Uvarint(uint64(len(pr.Leaders)))
	for _, l := range pr.Leaders {
		w.U32(l)
	}
	writeU32Map := func(n int, keys []uint32, val func(uint32)) {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.Uvarint(uint64(n))
		for _, k := range keys {
			w.U32(k)
			val(k)
		}
	}
	blKeys := make([]uint32, 0, len(pr.BlockLen))
	for k := range pr.BlockLen {
		blKeys = append(blKeys, k)
	}
	writeU32Map(len(pr.BlockLen), blKeys, func(k uint32) { w.Int(pr.BlockLen[k]) })
	bcKeys := make([]uint32, 0, len(pr.BlockCount))
	for k := range pr.BlockCount {
		bcKeys = append(bcKeys, k)
	}
	writeU32Map(len(pr.BlockCount), bcKeys, func(k uint32) { w.U64(pr.BlockCount[k]) })
	edges := make([]Edge, 0, len(pr.EdgeCount))
	for e := range pr.EdgeCount {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	w.Uvarint(uint64(len(edges)))
	for _, e := range edges {
		w.U32(e.From)
		w.U32(e.To)
		w.U64(pr.EdgeCount[e])
	}
	csKeys := make([]uint32, 0, len(pr.CallSites))
	for k := range pr.CallSites {
		csKeys = append(csKeys, k)
	}
	writeU32Map(len(pr.CallSites), csKeys, func(k uint32) {
		cs := pr.CallSites[k]
		w.U64(cs.Count)
		w.U64(cs.TotalInstrs)
	})
	w.U64(pr.TotalInstrs)
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a profile written by MarshalBinary and
// rebuilds the leader-set fast path from the decoded program.
func (pr *Profile) UnmarshalBinary(data []byte) error {
	r := binio.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != profileVersion {
		return fmt.Errorf("emu: profile format version %d (want %d)", v, profileVersion)
	}
	var prog *isa.Program
	if r.Bool() {
		prog = new(isa.Program)
		if b := r.Blob(); r.Err() == nil {
			if err := prog.UnmarshalBinary(b); err != nil {
				return fmt.Errorf("emu: profile program: %w", err)
			}
		}
	}
	leaders := make([]uint32, r.Count(4))
	for i := range leaders {
		leaders[i] = r.U32()
	}
	blockLen := make(map[uint32]int, 16)
	for n := r.Count(5); n > 0; n-- {
		k := r.U32()
		blockLen[k] = r.Int()
	}
	blockCount := make(map[uint32]uint64, 16)
	for n := r.Count(12); n > 0; n-- {
		k := r.U32()
		blockCount[k] = r.U64()
	}
	edgeCount := make(map[Edge]uint64, 16)
	for n := r.Count(16); n > 0; n-- {
		e := Edge{From: r.U32(), To: r.U32()}
		edgeCount[e] = r.U64()
	}
	callSites := make(map[uint32]CallStat, 8)
	for n := r.Count(20); n > 0; n-- {
		k := r.U32()
		callSites[k] = CallStat{Count: r.U64(), TotalInstrs: r.U64()}
	}
	total := r.U64()
	if err := r.Close(); err != nil {
		return err
	}
	pr.Program = prog
	pr.Leaders = leaders
	pr.BlockLen = blockLen
	pr.BlockCount = blockCount
	pr.EdgeCount = edgeCount
	pr.CallSites = callSites
	pr.TotalInstrs = total
	pr.leaderSet = nil
	if prog != nil {
		set := make([]bool, len(prog.Code))
		for _, l := range leaders {
			if int(l) < len(set) {
				set[l] = true
			}
		}
		pr.leaderSet = set
	}
	return nil
}

// MarshalBinary serialises the emulation result (trace, profile,
// dynamic instruction count) as one self-contained artifact.
func (r *Result) MarshalBinary() ([]byte, error) {
	var tr []byte
	if r.Trace != nil {
		var err error
		if tr, err = r.Trace.MarshalBinary(); err != nil {
			return nil, err
		}
	}
	var prof []byte
	if r.Profile != nil {
		var err error
		if prof, err = r.Profile.MarshalBinary(); err != nil {
			return nil, err
		}
	}
	w := binio.NewWriter(32 + len(tr) + len(prof))
	w.U8(resultVersion)
	w.Bool(r.Trace != nil)
	if r.Trace != nil {
		w.Blob(tr)
	}
	w.Bool(r.Profile != nil)
	if r.Profile != nil {
		w.Blob(prof)
	}
	w.Int(r.Instrs)
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a result written by MarshalBinary. When both
// the trace and the profile are present, the profile is re-pointed at
// the trace's program, restoring the aliasing a fresh emulation run
// produces (one *isa.Program shared by both).
func (r *Result) UnmarshalBinary(data []byte) error {
	rd := binio.NewReader(data)
	if v := rd.U8(); rd.Err() == nil && v != resultVersion {
		return fmt.Errorf("emu: result format version %d (want %d)", v, resultVersion)
	}
	var tr *trace.Trace
	if rd.Bool() {
		tr = new(trace.Trace)
		if b := rd.Blob(); rd.Err() == nil {
			if err := tr.UnmarshalBinary(b); err != nil {
				return fmt.Errorf("emu: result trace: %w", err)
			}
		}
	}
	var prof *Profile
	if rd.Bool() {
		prof = new(Profile)
		if b := rd.Blob(); rd.Err() == nil {
			if err := prof.UnmarshalBinary(b); err != nil {
				return fmt.Errorf("emu: result profile: %w", err)
			}
		}
	}
	instrs := rd.Int()
	if err := rd.Close(); err != nil {
		return err
	}
	if tr != nil && prof != nil && tr.Program != nil {
		prof.Program = tr.Program
	}
	r.Trace = tr
	r.Profile = prof
	r.Instrs = instrs
	return nil
}
