package emu

// pageBits selects a 4KiB page (512 64-bit words).
const (
	pageBits  = 12
	pageWords = 1 << (pageBits - 3)
	pageMask  = (1 << pageBits) - 1
)

// Memory is a sparse, paged 64-bit word memory. Addresses are byte
// addresses; accesses operate on naturally aligned 8-byte words (the low
// three address bits are ignored). The zero value is ready to use.
type Memory struct {
	pages map[uint64]*[pageWords]uint64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]uint64)}
}

// Load reads the 64-bit word at addr (missing pages read as zero).
func (m *Memory) Load(addr uint64) uint64 {
	page, ok := m.pages[addr>>pageBits]
	if !ok {
		return 0
	}
	return page[(addr&pageMask)>>3]
}

// Store writes the 64-bit word at addr, allocating the page if needed.
func (m *Memory) Store(addr, val uint64) {
	key := addr >> pageBits
	page, ok := m.pages[key]
	if !ok {
		page = new([pageWords]uint64)
		m.pages[key] = page
	}
	page[(addr&pageMask)>>3] = val
}

// Pages returns the number of allocated pages (for diagnostics).
func (m *Memory) Pages() int { return len(m.pages) }
