package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFaultParse(t *testing.T) {
	in, err := Parse("disk.read:0.25,peer.latency:1:20ms,peer.error:0", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Ops(); len(got) != 3 {
		t.Fatalf("ops = %v, want 3 entries", got)
	}
	if in.rules[PeerLatency].param != 20*time.Millisecond {
		t.Fatalf("latency param = %v", in.rules[PeerLatency].param)
	}
	if in2, err := Parse("", 7); err != nil || in2 != nil {
		t.Fatalf("empty spec: %v %v, want nil nil", in2, err)
	}
	for _, bad := range []string{
		"disk.read",                   // no rate
		"nope:0.5",                    // unknown op
		"disk.read:2",                 // rate out of range
		"disk.read:x",                 // rate not a number
		"peer.latency:1:zzz",          // bad duration
		"disk.read:0.5,disk.read:0.5", // duplicate
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// TestFaultDeterminism: two injectors with the same seed and call
// sequence make identical decisions; a different seed diverges.
func TestFaultDeterminism(t *testing.T) {
	const n = 2000
	run := func(seed uint64) []bool {
		in, err := Parse("disk.read:0.3", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, n)
		for i := range out {
			out[i] = in.ReadError("k") != nil
		}
		return out
	}
	a, b, c := run(42), run(42), run(43)
	hits := 0
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
		if a[i] != c[i] {
			diverged = true
		}
		if a[i] {
			hits++
		}
	}
	if !diverged {
		t.Fatal("different seeds made identical decisions")
	}
	// Rate 0.3 over 2000 decisions: expect roughly 600, allow wide slack.
	if hits < 400 || hits > 800 {
		t.Fatalf("hits = %d for rate 0.3 over %d decisions", hits, n)
	}
	st, _ := Parse("disk.read:0.3", 42)
	for i := 0; i < n; i++ {
		st.ReadError("k")
	}
	stats := st.Stats()
	if stats.Decisions["disk.read"] != n || stats.Injected["disk.read"] != uint64(hits) {
		t.Fatalf("stats = %+v, want decisions=%d injected=%d", stats, n, hits)
	}
}

func TestFaultNilInjector(t *testing.T) {
	var in *Injector
	if err := in.ReadError("k"); err != nil {
		t.Fatal(err)
	}
	if err := in.WriteError("k"); err != nil {
		t.Fatal(err)
	}
	img := []byte("hello")
	if got := in.MangleImage("k", img); string(got) != "hello" {
		t.Fatalf("MangleImage = %q", got)
	}
	base := http.DefaultTransport
	if got := in.Transport(base); got != base {
		t.Fatal("nil injector should return base transport unchanged")
	}
	if s := in.Stats(); s.Seed != 0 || s.Decisions != nil {
		t.Fatalf("nil stats = %+v", s)
	}
}

func TestFaultTornWrite(t *testing.T) {
	in := New(1)
	in.Enable(DiskTorn, 1, 0)
	img := []byte(strings.Repeat("x", 100))
	got := in.MangleImage("k", img)
	if len(got) >= len(img) || len(got) == 0 {
		t.Fatalf("torn image len = %d, want 0 < len < %d", len(got), len(img))
	}
}

func TestFaultTransport(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	t.Run("error", func(t *testing.T) {
		in := New(1)
		in.Enable(PeerError, 1, 0)
		c := &http.Client{Transport: in.Transport(nil)}
		_, err := c.Get(srv.URL)
		var fe *Error
		if !errors.As(err, &fe) || fe.Op != PeerError {
			t.Fatalf("err = %v, want injected peer.error", err)
		}
	})
	t.Run("latency", func(t *testing.T) {
		in := New(1)
		in.Enable(PeerLatency, 1, 30*time.Millisecond)
		c := &http.Client{Transport: in.Transport(nil)}
		start := time.Now()
		resp, err := c.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d := time.Since(start); d < 30*time.Millisecond {
			t.Fatalf("round trip took %v, want >= 30ms", d)
		}
	})
	t.Run("hang respects context", func(t *testing.T) {
		in := New(1)
		in.Enable(PeerHang, 1, time.Minute)
		c := &http.Client{Transport: in.Transport(nil)}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
		start := time.Now()
		_, err := c.Do(req)
		if err == nil {
			t.Fatal("hang returned no error")
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("hang ignored context cancellation (%v)", d)
		}
	})
}
