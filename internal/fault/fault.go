// Package fault is a seeded, deterministic fault injector for the
// degradation test suite and chaos tooling. It sits behind seams the
// production code already has — the disk tier's read/write path and
// the shard transports — and never activates unless explicitly
// constructed, so the zero configuration (a nil *Injector) costs one
// nil check per seam.
//
// Determinism: every decision is a pure function of (seed, op, n)
// where n is the op's own injection counter. Two processes built with
// the same seed and the same per-op call sequence inject the same
// faults at the same points, which is what lets the degradation suite
// assert byte-level response parity instead of "it probably survived".
package fault

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Op names one injectable fault class. The set is closed: Parse
// rejects anything else so a typo in -fault-inject fails boot instead
// of silently injecting nothing.
type Op string

const (
	// DiskRead fails DiskTier loads (Get/Image) with an I/O error.
	DiskRead Op = "disk.read"
	// DiskWrite fails DiskTier persists with an I/O error.
	DiskWrite Op = "disk.write"
	// DiskTorn truncates the encoded image before it reaches disk,
	// modelling a torn write: the CRC check catches it on read.
	DiskTorn Op = "disk.torn"
	// PeerError fails a peer HTTP round trip with a transport error.
	PeerError Op = "peer.error"
	// PeerLatency delays a peer round trip by the op's param.
	PeerLatency Op = "peer.latency"
	// PeerHang blocks a peer round trip until the request context is
	// done (capped by the op's param, default 30s), then fails it.
	PeerHang Op = "peer.hang"
)

var allOps = map[Op]bool{
	DiskRead: true, DiskWrite: true, DiskTorn: true,
	PeerError: true, PeerLatency: true, PeerHang: true,
}

// rule is one configured op: a probability and an optional duration
// parameter (latency delay / hang cap).
type rule struct {
	rate  float64
	param time.Duration
	n     atomic.Uint64 // decisions taken for this op
	hits  atomic.Uint64 // decisions that injected
}

// Injector decides, deterministically, whether each operation faults.
// All methods are safe on a nil receiver (no faults) and for
// concurrent use.
type Injector struct {
	seed  uint64
	rules map[Op]*rule
}

// New builds an injector with no rules enabled; use Enable to add
// them. Mostly useful in tests — production config goes through Parse.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, rules: make(map[Op]*rule)}
}

// Enable sets op to inject with the given probability in [0,1] and
// optional duration parameter.
func (in *Injector) Enable(op Op, rate float64, param time.Duration) {
	in.rules[op] = &rule{rate: rate, param: param}
}

// Parse builds an injector from a comma-separated spec of
// op:rate[:param] clauses, e.g.
//
//	disk.read:0.2,peer.latency:0.5:100ms
//
// Rates are probabilities in [0,1]; params are Go durations. An empty
// spec yields a nil injector (no faults).
func Parse(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := New(seed)
	for _, clause := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(clause), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("fault: bad clause %q (want op:rate[:param])", clause)
		}
		op := Op(parts[0])
		if !allOps[op] {
			return nil, fmt.Errorf("fault: unknown op %q", parts[0])
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("fault: bad rate %q for %s (want 0..1)", parts[1], op)
		}
		var param time.Duration
		if len(parts) == 3 {
			param, err = time.ParseDuration(parts[2])
			if err != nil || param < 0 {
				return nil, fmt.Errorf("fault: bad param %q for %s", parts[2], op)
			}
		}
		if _, dup := in.rules[op]; dup {
			return nil, fmt.Errorf("fault: duplicate op %s", op)
		}
		in.rules[op] = &rule{rate: rate, param: param}
	}
	return in, nil
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash of
// the decision index so rate comparisons see uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func opHash(op Op) uint64 {
	h := fnv.New64a()
	h.Write([]byte(op))
	return h.Sum64()
}

// decide consumes one decision for op and reports whether it injects.
// Returns the rule only when it fires.
func (in *Injector) decide(op Op) (*rule, bool) {
	if in == nil {
		return nil, false
	}
	r, ok := in.rules[op]
	if !ok || r.rate <= 0 {
		return nil, false
	}
	n := r.n.Add(1) - 1
	if r.rate < 1 {
		u := splitmix64(in.seed ^ opHash(op) ^ n)
		// Top 53 bits → uniform float64 in [0,1).
		if float64(u>>11)/(1<<53) >= r.rate {
			return nil, false
		}
	}
	r.hits.Add(1)
	return r, true
}

// Error is the sentinel wrapped into every injected failure, so tests
// and logs can tell an injected fault from a real one.
type Error struct{ Op Op }

func (e *Error) Error() string { return "fault: injected " + string(e.Op) }

// ReadError implements the disk-tier read seam: a non-nil error means
// this load must fail as if the file were unreadable.
func (in *Injector) ReadError(key string) error {
	if _, hit := in.decide(DiskRead); hit {
		return &Error{Op: DiskRead}
	}
	return nil
}

// WriteError implements the disk-tier write seam.
func (in *Injector) WriteError(key string) error {
	if _, hit := in.decide(DiskWrite); hit {
		return &Error{Op: DiskWrite}
	}
	return nil
}

// MangleImage implements the torn-write seam: given the encoded bytes
// about to be persisted, it may return a truncated copy. The disk
// tier writes whatever comes back; the CRC in the artifact header is
// what detects the tear on the next read.
func (in *Injector) MangleImage(key string, img []byte) []byte {
	if _, hit := in.decide(DiskTorn); hit && len(img) > 1 {
		return img[:1+len(img)*3/4]
	}
	return img
}

// Transport wraps base so peer round trips are subject to peer.*
// rules. A nil receiver returns base unchanged.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if in == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{in: in, base: base}
}

type faultTransport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if r, hit := t.in.decide(PeerLatency); hit {
		d := r.param
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if r, hit := t.in.decide(PeerHang); hit {
		cap := r.param
		if cap <= 0 {
			cap = 30 * time.Second
		}
		timer := time.NewTimer(cap)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
		}
		return nil, &Error{Op: PeerHang}
	}
	if _, hit := t.in.decide(PeerError); hit {
		return nil, &Error{Op: PeerError}
	}
	return t.base.RoundTrip(req)
}

// Stats is a point-in-time injection census for /metrics and
// /v1/stats.
type Stats struct {
	Seed      uint64            `json:"seed"`
	Decisions map[string]uint64 `json:"decisions"` // per op: opportunities seen
	Injected  map[string]uint64 `json:"injected"`  // per op: faults injected
}

// Stats snapshots the injector. Nil-safe: a nil injector reports a
// zero Stats with nil maps.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	s := Stats{Seed: in.seed, Decisions: map[string]uint64{}, Injected: map[string]uint64{}}
	for op, r := range in.rules {
		s.Decisions[string(op)] = r.n.Load()
		s.Injected[string(op)] = r.hits.Load()
	}
	return s
}

// Ops lists the configured ops in sorted order (for stable metric
// emission). Nil-safe.
func (in *Injector) Ops() []Op {
	if in == nil {
		return nil
	}
	ops := make([]Op, 0, len(in.rules))
	for op := range in.rules {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}

// Gate is a tiny helper for tests that want to block until the
// injector has made at least n decisions for op — e.g. "wait until the
// transport actually saw traffic". It polls; fine for tests only.
func (in *Injector) Gate(ctx context.Context, op Op, n uint64) error {
	if in == nil {
		return nil
	}
	r, ok := in.rules[op]
	if !ok {
		return fmt.Errorf("fault: op %s not enabled", op)
	}
	for r.n.Load() < n {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}
