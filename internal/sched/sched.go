// Package sched is the process-wide work-stealing scheduler every
// parallelism level of the repository runs on: engine job execution,
// reach's per-source fan-out, and linalg's GEMM/LU tile fan-out all
// submit tasks to ONE pool of workers (one per core by default)
// instead of each opening a private goroutine pool. A batch sweep that
// used to run engine_workers × reach_workers × tile_workers goroutines
// now keeps exactly `workers` goroutines busy, so a fixed core budget
// is neither under- nor over-subscribed no matter how the levels nest.
//
// # Topology
//
// Each worker owns a LIFO deque: tasks forked by code running on that
// worker push to its own deque and are popped newest-first (locality —
// a nested fan-out's tiles run hot on the worker that packed their
// operands), while idle workers steal oldest-first from a victim's
// deque (the stolen task is the coarsest remaining work). External
// goroutines (HTTP handlers, CLIs) submit through a global inject
// queue. Parked workers are woken through a bounded token channel; a
// token is sent on every enqueue, so a queued task can never be
// stranded while a worker sleeps.
//
// # Nesting without deadlock
//
// Two different waiting rules keep the pool deadlock-free, and the
// distinction between them is load-bearing.
//
// Group.Wait — the fork-join join — helps, but ONLY with tasks that
// descend from the waited group (the group's own forks and any groups
// forked inside them). This is the fully-strict discipline of Cilk-
// style schedulers: a joiner may run its own subtree but never steals
// unrelated work onto its stack. Helping with an ARBITRARY task would
// let that task block on a resource the joiner's own lower frames hold
// — with the engine's singleflight that is a real cycle, not a
// theoretical one: a worker leading the computation of key K helps a
// task that transitively joins K and waits forever on its own
// unfinished frame. Subtree-only helping cannot form that cycle:
// everything in the subtree is strictly below the helper's leaderships
// in the dependency DAG.
//
// Block — the primitive for waiting on an EXTERNAL condition (an
// engine singleflight join) — never helps. Instead it lends the
// blocked worker's core to a substitute worker for the duration of the
// wait, the block_in_place design of tokio and rayon: the pool always
// has ~W runnable workers, queued tasks (including whatever the
// blocked worker is waiting for) always have a runner, and because the
// blocked goroutine's stack acquires nothing new while parked, the
// waits-for graph stays exactly the acyclic dependency DAG.
//
// # Reserve/commit determinism
//
// The Group's parallel-for follows the round-based reserve/commit
// discipline of PBBS's speculative_for: every index i in [0, n)
// RESERVES a fixed, disjoint output slot (a result row, a C tile, a
// response line) at submission time — the reservation is the index
// itself, not a runtime allocation — so bodies never contend on
// output, and any ordered side effects COMMIT through a frontier in
// ascending index order regardless of completion order (ForCommit).
// Because slots are disjoint, commit order is fixed, and every body is
// a pure function of its index, results are byte-identical for every
// worker count, including one — the property the repository's
// serial-equivalence suites pin end to end.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler runs tasks on a pool of worker goroutines: a fixed set of
// primaries (the core budget) plus transient substitutes covering for
// primaries parked in Block. It is safe for concurrent use; one
// Scheduler is meant to be shared by every parallelism level in the
// process.
type Scheduler struct {
	// wmu guards ws: the first `fixed` entries are the permanent
	// workers, the tail is the live substitutes.
	wmu   sync.RWMutex
	ws    []*worker
	fixed int

	mu     sync.Mutex
	global []*task
	// spec is the low-priority speculative queue: claimed only by a
	// fully-idle worker loop after its unfiltered scan of every demand
	// queue (own deque, global, steal sweep) came up empty. Helping
	// joins never claim from it, so speculative work can never run on
	// the stack of a demand task nor delay a demand join.
	spec []*task

	// notify carries wake tokens to parked workers. A token is posted
	// on every enqueue and consumed only by workers whose rescan is
	// unfiltered, so a failed (full) send still guarantees enough
	// post-push rescans to claim the task (see the liveness note on
	// worker.loop).
	notify chan struct{}
	closed chan struct{}

	// retire counts substitute workers that should exit at their next
	// idle moment (their lender's Block has returned).
	retire atomic.Int64

	submitted     atomic.Uint64
	completed     atomic.Uint64
	specSubmitted atomic.Uint64
	inline        atomic.Uint64
	steals        atomic.Uint64
	parks         atomic.Uint64
	unparks       atomic.Uint64
	subSpawns     atomic.Uint64

	kindMu sync.RWMutex
	kinds  map[string]*atomic.Uint64

	// byGoid maps a worker goroutine's runtime ID to its *worker, the
	// "am I on a worker?" lookup behind inline execution, fork
	// locality, and the helping join.
	byGoid sync.Map
}

// task is one queued unit of work.
type task struct {
	fn   func()
	g    *Group // join target for group tasks (nil for Do tasks)
	done chan struct{}
	// state: 0 pending, 1 claimed (running or finished), 2 cancelled.
	// Claiming is a CAS so a context-cancelled Do task and the worker
	// that popped it cannot both think they own it.
	state  atomic.Int32
	panicv any
	panics bool
}

type worker struct {
	s   *Scheduler
	id  int
	sub bool
	// cur is the task this worker is currently running — the fork
	// point NewGroup reads to parent a nested group. Only touched by
	// the worker's own goroutine.
	cur *task

	mu sync.Mutex
	dq []*task // bottom (LIFO end) at the tail

	tasks  atomic.Uint64
	steals atomic.Uint64
	busyNS atomic.Int64
}

// New builds a scheduler with the given number of primary workers
// (<= 0 selects runtime.GOMAXPROCS(0)). Workers are spawned eagerly
// and park when idle.
func New(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		fixed:  workers,
		notify: make(chan struct{}, workers),
		closed: make(chan struct{}),
		kinds:  make(map[string]*atomic.Uint64),
	}
	s.ws = make([]*worker, workers)
	for i := range s.ws {
		s.ws[i] = &worker{s: s, id: i}
	}
	// Spawn only after the slice is fully populated: a worker's steal
	// sweep reads every element.
	var ready sync.WaitGroup
	for _, w := range s.ws {
		ready.Add(1)
		go w.loop(&ready)
	}
	// Wait for every worker to register its goroutine ID so the
	// identity map is complete from the first task on.
	ready.Wait()
	return s
}

var (
	defaultOnce sync.Once
	defaultSch  *Scheduler
)

// Default returns the lazily-created process-wide scheduler, sized one
// worker per core (GOMAXPROCS). Library entry points that are not
// handed an explicit scheduler (the spmt facade) run on it.
func Default() *Scheduler {
	defaultOnce.Do(func() { defaultSch = New(0) })
	return defaultSch
}

// Workers returns the primary pool size — the core budget.
func (s *Scheduler) Workers() int { return s.fixed }

// Close stops the workers once they go idle. Close is meant for
// transient schedulers (deprecated Workers-knob compatibility paths,
// tests) after their work has drained; tasks still queued at Close may
// never run, so a long-lived scheduler is simply never closed.
func (s *Scheduler) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
}

// countKind bumps the per-kind submission counter.
func (s *Scheduler) countKind(kind string) {
	s.kindMu.RLock()
	c := s.kinds[kind]
	s.kindMu.RUnlock()
	if c == nil {
		s.kindMu.Lock()
		if c = s.kinds[kind]; c == nil {
			c = new(atomic.Uint64)
			s.kinds[kind] = c
		}
		s.kindMu.Unlock()
	}
	c.Add(1)
}

// current returns the worker the calling goroutine is, or nil for an
// external goroutine.
func (s *Scheduler) current() *worker {
	if v, ok := s.byGoid.Load(goid()); ok {
		return v.(*worker)
	}
	return nil
}

// enqueue places t on the submitter's own deque (locality for nested
// fork-join) or the global queue, then posts a wake token.
func (s *Scheduler) enqueue(w *worker, t *task) {
	s.submitted.Add(1)
	if w != nil {
		w.mu.Lock()
		w.dq = append(w.dq, t)
		w.mu.Unlock()
	} else {
		s.mu.Lock()
		s.global = append(s.global, t)
		s.mu.Unlock()
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// find claims the next runnable task for w: own deque newest-first,
// then the global queue oldest-first, then a steal sweep over the
// other workers' deques oldest-first, and — only on an unfiltered scan
// that found no demand work at all — the speculative queue oldest-
// first. A nil g accepts any task; a non-nil g restricts the claim to
// tasks descending from g (the fully-strict helping rule — see package
// doc) and never touches the speculative queue.
func (s *Scheduler) find(w *worker, g *Group) *task {
	w.mu.Lock()
	for i := len(w.dq) - 1; i >= 0; i-- {
		if g == nil || g.contains(w.dq[i]) {
			t := w.dq[i]
			w.dq = append(w.dq[:i], w.dq[i+1:]...)
			w.mu.Unlock()
			return t
		}
	}
	w.mu.Unlock()

	s.mu.Lock()
	for i := 0; i < len(s.global); i++ {
		if g == nil || g.contains(s.global[i]) {
			t := s.global[i]
			s.global = append(s.global[:i], s.global[i+1:]...)
			s.mu.Unlock()
			return t
		}
	}
	s.mu.Unlock()

	s.wmu.RLock()
	n := len(s.ws)
	for i := 1; i < n; i++ {
		v := s.ws[(w.id+i)%n]
		if v == w {
			continue
		}
		v.mu.Lock()
		for j := 0; j < len(v.dq); j++ {
			if g == nil || g.contains(v.dq[j]) {
				t := v.dq[j]
				v.dq = append(v.dq[:j], v.dq[j+1:]...)
				v.mu.Unlock()
				s.wmu.RUnlock()
				s.steals.Add(1)
				w.steals.Add(1)
				return t
			}
		}
		v.mu.Unlock()
	}
	s.wmu.RUnlock()

	if g == nil {
		s.mu.Lock()
		if len(s.spec) > 0 {
			t := s.spec[0]
			s.spec = s.spec[1:]
			s.mu.Unlock()
			return t
		}
		s.mu.Unlock()
	}
	return nil
}

// run claims and executes t on w. A lost claim means the task was
// cancelled; it is dropped.
func (s *Scheduler) run(w *worker, t *task) {
	if !t.state.CompareAndSwap(0, 1) {
		s.completed.Add(1) // cancelled before it ran
		return
	}
	prev := w.cur
	w.cur = t
	start := time.Now()
	func() {
		defer func() {
			if p := recover(); p != nil {
				// Deliver the panic to the join point (Group.Wait or
				// the Do caller) instead of killing the worker: the
				// engine's job-panic protocol re-raises it on the
				// goroutine that owns the job.
				t.panicv, t.panics = p, true
			}
			w.cur = prev
			if t.g != nil {
				t.g.finish(t)
			} else if t.done != nil {
				close(t.done)
			}
		}()
		t.fn()
	}()
	w.tasks.Add(1)
	w.busyNS.Add(int64(time.Since(start)))
	s.completed.Add(1)
}

// loop is the worker body: run anything findable, park on the token
// channel otherwise; substitutes retire at an idle moment once their
// lender has returned from Block.
//
// Liveness: an enqueue whose token send finds the channel full has, at
// that instant, a channel's worth of unconsumed tokens; each of those
// is consumed by a worker that then rescans every queue under the
// queue locks, so the pushed task is seen by at least one post-push
// unfiltered rescan (tokens are consumed only here, never by filtered
// helpers). A worker parks only after an empty unfiltered scan, so no
// task is ever stranded while a worker sleeps.
func (w *worker) loop(ready *sync.WaitGroup) {
	s := w.s
	id := goid()
	s.byGoid.Store(id, w)
	if ready != nil {
		ready.Done()
	}
	defer s.byGoid.Delete(id)
	for {
		if t := s.find(w, nil); t != nil {
			s.run(w, t)
			continue
		}
		// Idle: an idle substitute with a pending retirement exits.
		// Its deque is necessarily empty (only code running ON a
		// worker pushes to its deque), so nothing is abandoned.
		if w.sub && s.tryRetire() {
			s.removeWorker(w)
			return
		}
		s.parks.Add(1)
		select {
		case <-s.notify:
			s.unparks.Add(1)
		case <-s.closed:
			return
		}
	}
}

// tryRetire consumes one pending retirement.
func (s *Scheduler) tryRetire() bool {
	for {
		n := s.retire.Load()
		if n <= 0 {
			return false
		}
		if s.retire.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// lend keeps the pool at full strength while the calling worker blocks
// in Block: it cancels a pending substitute retirement if one exists
// (the idle substitute keeps serving — no spawn churn), otherwise it
// spawns a fresh substitute worker.
func (s *Scheduler) lend() {
	if s.tryRetire() {
		return
	}
	w := &worker{s: s, sub: true}
	s.wmu.Lock()
	w.id = len(s.ws)
	s.ws = append(s.ws, w)
	s.wmu.Unlock()
	s.subSpawns.Add(1)
	go w.loop(nil)
}

// reclaim returns the lent core: the next substitute to go idle exits.
// The wake token lets a parked substitute notice the retirement.
func (s *Scheduler) reclaim() {
	s.retire.Add(1)
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// removeWorker unlinks an exiting substitute from the steal sweep.
func (s *Scheduler) removeWorker(w *worker) {
	s.wmu.Lock()
	for i, v := range s.ws {
		if v == w {
			s.ws = append(s.ws[:i], s.ws[i+1:]...)
			break
		}
	}
	s.wmu.Unlock()
}

// Do runs fn under the scheduler's core budget and returns when it has
// finished: called from a worker it runs inline (the caller already
// holds a core), called externally it is queued and picked up by a
// worker. A context cancelled while the task is still queued withdraws
// it — fn has not run and never will — and returns ctx.Err(); once fn
// has started, Do waits for it. A panic inside fn resurfaces on the
// caller.
func (s *Scheduler) Do(ctx context.Context, kind string, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.countKind(kind)
	if w := s.current(); w != nil {
		s.submitted.Add(1)
		s.inline.Add(1)
		start := time.Now()
		defer func() {
			w.tasks.Add(1)
			w.busyNS.Add(int64(time.Since(start)))
			s.completed.Add(1)
		}()
		fn()
		return nil
	}
	t := &task{fn: fn, done: make(chan struct{})}
	s.enqueue(nil, t)
	select {
	case <-t.done:
	case <-ctx.Done():
		if t.state.CompareAndSwap(0, 2) {
			return ctx.Err()
		}
		<-t.done // started before the cancellation won; let it finish
	}
	if t.panics {
		panic(t.panicv)
	}
	return nil
}

// Block waits until done is closed or ctx is cancelled, returning
// ctx.Err() if cancellation won. Called from a worker it lends the
// worker's core to a substitute for the duration of the wait, so the
// pool keeps ~Workers() runnable workers and whatever computation done
// is waiting on always has a runner. Block deliberately does NOT help
// run queued tasks: an arbitrary helped task could block on a resource
// the caller's own stack holds (see package doc).
func (s *Scheduler) Block(ctx context.Context, done <-chan struct{}) error {
	if w := s.current(); w != nil {
		s.lend()
		defer s.reclaim()
	}
	s.parks.Add(1)
	defer s.unparks.Add(1)
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Speculate submits fn as a speculative task: it runs only when a
// worker's unfiltered scan finds no demand work anywhere in the pool,
// so speculation never delays a queued demand task. The returned done
// channel closes when fn has finished or the task was withdrawn;
// cancel withdraws the task if it has not started (after the task has
// started, cancel is a no-op and done closes when fn returns). Both
// are safe to use from any goroutine; cancel is idempotent.
//
// A wake token is posted like any enqueue so a fully-parked pool
// notices the work; the woken worker still drains demand queues first
// by construction of find.
func (s *Scheduler) Speculate(kind string, fn func()) (done <-chan struct{}, cancel func()) {
	s.countKind(kind)
	t := &task{fn: fn, done: make(chan struct{})}
	s.submitted.Add(1)
	s.specSubmitted.Add(1)
	s.mu.Lock()
	s.spec = append(s.spec, t)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return t.done, func() {
		// A won CAS means fn never ran and never will: the worker that
		// eventually pops the task loses its claim CAS and drops it
		// (run's failed-claim path does not touch done, so this close
		// is the only one).
		if t.state.CompareAndSwap(0, 2) {
			close(t.done)
		}
	}
}

// Group is one fork-join scope. Create it, fork with Go, join with
// Wait (exactly once, from the creating goroutine). Tasks may fork
// further into the same group — or open nested groups of their own —
// and the join helps run exactly that subtree; the join cannot fire
// before late forks are counted because their parent task is still
// pending.
type Group struct {
	s *Scheduler
	// parent is the group of the task that created this one (nil when
	// created outside any group task) — the ancestry the fully-strict
	// helping rule walks.
	parent *Group
	// pending starts at 1 (the owner's token, released by Wait) so the
	// zero crossing — which closes done — happens exactly once.
	pending atomic.Int64
	done    chan struct{}

	pmu    sync.Mutex
	panicv any
	panics bool
}

// NewGroup opens a fork-join scope, parented to the group of the task
// the calling worker is running (if any).
func (s *Scheduler) NewGroup() *Group {
	g := &Group{s: s, done: make(chan struct{})}
	if w := s.current(); w != nil && w.cur != nil {
		g.parent = w.cur.g
	}
	g.pending.Store(1)
	return g
}

// contains reports whether t descends from g: t belongs to g or to a
// group transitively forked from inside g's tasks.
func (g *Group) contains(t *task) bool {
	for x := t.g; x != nil; x = x.parent {
		if x == g {
			return true
		}
	}
	return false
}

// Go forks fn into the group, onto the forking worker's own deque
// (LIFO locality) or the global queue when forked externally.
func (g *Group) Go(kind string, fn func()) {
	g.s.countKind(kind)
	g.pending.Add(1)
	t := &task{fn: fn, g: g}
	g.s.enqueue(g.s.current(), t)
}

// finish retires one group task, recording its panic (first wins) and
// closing the join channel on the last retirement.
func (g *Group) finish(t *task) {
	if t.panics {
		g.pmu.Lock()
		if !g.panics {
			g.panicv, g.panics = t.panicv, true
		}
		g.pmu.Unlock()
	}
	if g.pending.Add(-1) == 0 {
		close(g.done)
	}
}

// Wait joins the group: called on a worker it helps run the group's
// own subtree (its tasks and their nested groups', wherever they were
// stolen to) until the group drains; tasks outside the subtree are
// never helped — they are the other workers' and substitutes' job.
// Once the subtree has no claimable work left (everything is running
// elsewhere), Wait parks on the join; the runners' own worker loops
// pick up any late forks. If any task panicked, Wait re-panics with
// the first recovered value after the group has fully drained.
func (g *Group) Wait() {
	s := g.s
	if g.pending.Add(-1) == 0 {
		close(g.done)
	} else if w := s.current(); w != nil {
		for {
			select {
			case <-g.done:
			default:
				if t := s.find(w, g); t != nil {
					s.run(w, t)
					continue
				}
				s.parks.Add(1)
				<-g.done
				s.unparks.Add(1)
			}
			break
		}
	}
	<-g.done
	if g.panics {
		panic(g.panicv)
	}
}

// For runs body(i) for every i in [0, n): the caller participates and
// up to workers-1 forked tasks claim indices from a shared counter, so
// progress never depends on a free worker and parallelism never
// exceeds the core budget. Each index is a reservation of a disjoint
// output slot (see package doc); bodies must not depend on claim
// order. For returns when every body has.
func (s *Scheduler) For(kind string, n int, body func(i int)) {
	if n <= 0 {
		return
	}
	var next atomic.Int64
	loop := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			body(i)
		}
	}
	k := min(s.fixed, n) - 1
	if k <= 0 {
		loop()
		return
	}
	g := s.NewGroup()
	for j := 0; j < k; j++ {
		g.Go(kind, loop)
	}
	loop()
	g.Wait()
}

// ForCommit is For with an ordered commit phase: commit(i) is invoked
// for i = 0, 1, 2, … strictly in ascending order, each after body(i)
// has returned — the fixed-order commit half of the reserve/commit
// contract. Commits are serialised (one at a time, under the frontier
// lock) on whichever runner completed the frontier index, so they must
// be brief; bodies still run fully in parallel. Output driven only by
// commit order is therefore byte-identical for every worker count.
func (s *Scheduler) ForCommit(kind string, n int, body func(i int), commit func(i int)) {
	if n <= 0 {
		return
	}
	var fr struct {
		sync.Mutex
		ready []bool
		next  int
	}
	fr.ready = make([]bool, n)
	s.For(kind, n, func(i int) {
		body(i)
		fr.Lock()
		defer fr.Unlock()
		fr.ready[i] = true
		for fr.next < n && fr.ready[fr.next] {
			commit(fr.next)
			fr.next++
		}
	})
}

// WorkerStats is one primary worker's lifetime occupancy.
type WorkerStats struct {
	// Tasks counts tasks this worker executed (inline Do runs
	// included); Steals counts how many of them it stole.
	Tasks  uint64 `json:"tasks"`
	Steals uint64 `json:"steals"`
	// BusyMS is cumulative task-execution time in milliseconds — the
	// occupancy numerator (divide by wall time × workers for pool
	// utilisation).
	BusyMS float64 `json:"busy_ms"`
	// QueueDepth is the instantaneous deque depth.
	QueueDepth int `json:"queue_depth"`
}

// Stats is a point-in-time snapshot of scheduler activity.
type Stats struct {
	Workers int `json:"workers"`
	// Submitted counts every task handed to the scheduler (Do, Go,
	// inline); Completed counts retirements (cancelled tasks retire
	// without running); Inline counts Do calls that ran directly on a
	// worker already holding a core.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Inline    uint64 `json:"inline"`
	// Steals counts tasks claimed from another worker's deque; Parks/
	// Unparks count idle transitions (blocking waits included).
	Steals  uint64 `json:"steals"`
	Parks   uint64 `json:"parks"`
	Unparks uint64 `json:"unparks"`
	// SubstitutesSpawned counts substitute workers ever spawned to
	// cover for Block-parked workers; SubstitutesAlive is how many are
	// live right now (serving or awaiting retirement).
	SubstitutesSpawned uint64 `json:"substitutes_spawned"`
	SubstitutesAlive   int    `json:"substitutes_alive"`
	// QueueDepth is the instantaneous total of queued demand tasks
	// (global + every deque); the speculative queue is counted
	// separately in SpecQueued.
	QueueDepth int `json:"queue_depth"`
	// SpecSubmitted counts tasks ever submitted through Speculate;
	// SpecQueued is the instantaneous speculative-queue depth.
	SpecSubmitted uint64 `json:"spec_submitted"`
	SpecQueued    int    `json:"spec_queued"`
	// TasksByKind counts submissions by the caller-supplied kind label
	// ("emu", "sim", "reach", "tile", …).
	TasksByKind map[string]uint64 `json:"tasks_by_kind,omitempty"`
	// PerWorker is indexed by primary worker ID.
	PerWorker []WorkerStats `json:"per_worker"`
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Workers:            s.fixed,
		Submitted:          s.submitted.Load(),
		Completed:          s.completed.Load(),
		Inline:             s.inline.Load(),
		Steals:             s.steals.Load(),
		Parks:              s.parks.Load(),
		Unparks:            s.unparks.Load(),
		SubstitutesSpawned: s.subSpawns.Load(),
		SpecSubmitted:      s.specSubmitted.Load(),
	}
	s.mu.Lock()
	st.QueueDepth = len(s.global)
	st.SpecQueued = len(s.spec)
	s.mu.Unlock()
	st.PerWorker = make([]WorkerStats, s.fixed)
	s.wmu.RLock()
	st.SubstitutesAlive = len(s.ws) - s.fixed
	for i, w := range s.ws {
		w.mu.Lock()
		depth := len(w.dq)
		w.mu.Unlock()
		st.QueueDepth += depth
		if i < s.fixed {
			st.PerWorker[i] = WorkerStats{
				Tasks:      w.tasks.Load(),
				Steals:     w.steals.Load(),
				BusyMS:     float64(w.busyNS.Load()) / 1e6,
				QueueDepth: depth,
			}
		}
	}
	s.wmu.RUnlock()
	s.kindMu.RLock()
	if len(s.kinds) > 0 {
		st.TasksByKind = make(map[string]uint64, len(s.kinds))
		for k, c := range s.kinds {
			st.TasksByKind[k] = c.Load()
		}
	}
	s.kindMu.RUnlock()
	return st
}
