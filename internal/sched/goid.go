package sched

import (
	"bytes"
	"runtime"
	"strconv"
)

// goid returns the calling goroutine's runtime ID, parsed from the
// first line of its stack header ("goroutine 123 [running]:"). Go has
// no goroutine-local storage, and the scheduler needs to answer "is
// this goroutine one of my workers?" to run Do inline and to turn
// blocking joins into helping waits; a 64-byte Stack call is ~1µs,
// negligible against the ms-scale tasks this scheduler runs, and the
// Group caches the lookup so hot fork paths do it once per scope.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	b := buf[:n]
	b = bytes.TrimPrefix(b, []byte("goroutine "))
	if i := bytes.IndexByte(b, ' '); i > 0 {
		b = b[:i]
	}
	id, _ := strconv.ParseUint(string(b), 10, 64)
	return id
}
