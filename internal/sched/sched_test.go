package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoExternalRuns(t *testing.T) {
	s := New(2)
	defer s.Close()
	var ran atomic.Bool
	if err := s.Do(context.Background(), "t", func() { ran.Store(true) }); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("Do returned before fn ran")
	}
}

func TestDoInlineOnWorker(t *testing.T) {
	s := New(1)
	defer s.Close()
	// From inside a worker task, a nested Do must run inline — with
	// one worker, queuing it would deadlock.
	errc := make(chan error, 1)
	if err := s.Do(context.Background(), "outer", func() {
		errc <- s.Do(context.Background(), "inner", func() {})
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Inline != 1 {
		t.Fatalf("inline = %d, want 1", st.Inline)
	}
}

func TestDoCancelledBeforeStart(t *testing.T) {
	s := New(1)
	defer s.Close()
	// Occupy the only worker so the second Do stays queued, then
	// cancel it: fn must never run.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Do(context.Background(), "hold", func() { <-release })
	}()
	// Wait until the holder is actually running.
	deadline := time.After(5 * time.Second)
	for s.Stats().Completed == 0 && s.Stats().Submitted == 0 {
		select {
		case <-deadline:
			t.Fatal("holder never started")
		default:
			runtime.Gosched()
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	err := s.Do(ctx, "late", func() { ran.Store(true) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("cancelled task ran")
	}
	close(release)
	wg.Wait()
}

func TestDoPanicPropagates(t *testing.T) {
	s := New(2)
	defer s.Close()
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want boom", p)
		}
	}()
	_ = s.Do(context.Background(), "t", func() { panic("boom") })
	t.Fatal("Do returned instead of panicking")
}

func TestGroupPanicPropagates(t *testing.T) {
	s := New(2)
	defer s.Close()
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want boom", p)
		}
	}()
	g := s.NewGroup()
	g.Go("t", func() { panic("boom") })
	g.Wait()
	t.Fatal("Wait returned instead of panicking")
}

func TestGroupNestedFanOut(t *testing.T) {
	// batch → sims → tiles nesting: each level forks into its own
	// group from inside a parent task, on a small pool.
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			s := New(workers)
			defer s.Close()
			var total atomic.Int64
			outer := s.NewGroup()
			for i := 0; i < 4; i++ {
				outer.Go("sim", func() {
					mid := s.NewGroup()
					for j := 0; j < 4; j++ {
						mid.Go("reach", func() {
							s.For("tile", 4, func(int) { total.Add(1) })
						})
					}
					mid.Wait()
				})
			}
			outer.Wait()
			if got := total.Load(); got != 64 {
				t.Fatalf("ran %d leaf bodies, want 64", got)
			}
		})
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		s := New(workers)
		n := 1000
		hits := make([]atomic.Int32, n)
		s.For("t", n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("w=%d: index %d ran %d times", workers, i, c)
			}
		}
		s.Close()
	}
}

func TestForCommitOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		s := New(workers)
		n := 200
		var mu sync.Mutex
		var order []int
		s.ForCommit("t", n,
			func(i int) { time.Sleep(time.Duration(i%7) * time.Microsecond) },
			func(i int) { mu.Lock(); order = append(order, i); mu.Unlock() })
		if len(order) != n {
			t.Fatalf("w=%d: committed %d, want %d", workers, len(order), n)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("w=%d: commit[%d] = %d, want ascending order", workers, i, v)
			}
		}
		s.Close()
	}
}

func TestBlockLendsSubstitute(t *testing.T) {
	// One worker blocks on a channel that is only closed by a task
	// submitted AFTER it started blocking. Block must lend the core to
	// a substitute worker so the closer task still has a runner.
	s := New(1)
	defer s.Close()
	done := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		finished <- s.Do(context.Background(), "waiter", func() {
			_ = s.Block(context.Background(), done)
		})
	}()
	// Give the waiter time to park inside Block.
	time.Sleep(20 * time.Millisecond)
	if err := s.Do(context.Background(), "closer", func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-finished:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Block never returned: no substitute covered the blocked worker")
	}
	if st := s.Stats(); st.SubstitutesSpawned == 0 {
		t.Fatal("Block on a worker did not spawn a substitute")
	}
	// The lent core has been returned; the substitute must retire at
	// its next idle moment, restoring O(workers) goroutines.
	deadline := time.After(5 * time.Second)
	for s.Stats().SubstitutesAlive > 0 {
		select {
		case <-deadline:
			t.Fatalf("substitutes never retired: %d alive", s.Stats().SubstitutesAlive)
		default:
			runtime.Gosched()
		}
	}
}

func TestBlockNoSingleflightCycle(t *testing.T) {
	// Regression for the help-while-waiting deadlock: a worker that is
	// the singleflight LEADER of key K blocks joining another key; if
	// Block helped run queued tasks it could pick up a task that joins
	// K, parking its own stack on a channel only a lower frame of that
	// same stack can close. With lend-a-substitute Block the joiner
	// runs on a substitute and everything drains.
	s := New(1)
	defer s.Close()
	kdone := make(chan struct{})  // closed when the leader finishes K
	k2done := make(chan struct{}) // the result the leader is joining
	finished := make(chan error, 1)
	go func() {
		finished <- s.Do(context.Background(), "leader", func() {
			_ = s.Block(context.Background(), k2done)
			close(kdone)
		})
	}()
	time.Sleep(20 * time.Millisecond)
	var wg sync.WaitGroup
	wg.Add(2)
	// Submitted first: a task that joins K. A helping Block would claim
	// it and deadlock the leader on its own unfinished frame.
	go func() {
		defer wg.Done()
		_ = s.Do(context.Background(), "joiner", func() {
			_ = s.Block(context.Background(), kdone)
		})
	}()
	time.Sleep(20 * time.Millisecond)
	go func() {
		defer wg.Done()
		_ = s.Do(context.Background(), "closer", func() { close(k2done) })
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("singleflight-style wait cycle deadlocked the pool")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("joiner or closer never finished")
	}
}

func TestBlockCancellation(t *testing.T) {
	s := New(1)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	never := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- s.Block(ctx, never) }()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Block ignored cancellation")
	}
}

func TestGoroutineCountIsOWorkers(t *testing.T) {
	// The whole point of one shared pool: a deeply nested fan-out must
	// not spawn goroutines per task. Allow slack for the runtime and
	// test harness, but 8 workers running 8×8×8 nested bodies must stay
	// far below the ~512 goroutines a pool-per-level design would open.
	before := runtime.NumGoroutine()
	s := New(8)
	defer s.Close()
	var peak atomic.Int64
	g := s.NewGroup()
	for i := 0; i < 8; i++ {
		g.Go("sim", func() {
			s.For("reach", 8, func(int) {
				s.For("tile", 8, func(int) {
					n := int64(runtime.NumGoroutine())
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					time.Sleep(100 * time.Microsecond)
				})
			})
		})
	}
	g.Wait()
	if got := peak.Load(); got > int64(before)+8+16 {
		t.Fatalf("peak goroutines %d (baseline %d, 8 workers): fan-out is spawning per-task goroutines", got, before)
	}
}

func TestStatsCounts(t *testing.T) {
	s := New(2)
	defer s.Close()
	for i := 0; i < 10; i++ {
		_ = s.Do(context.Background(), "a", func() {})
	}
	s.For("b", 5, func(int) {})
	st := s.Stats()
	if st.Workers != 2 {
		t.Fatalf("workers = %d", st.Workers)
	}
	if st.Submitted < 10 || st.Completed < 10 {
		t.Fatalf("submitted=%d completed=%d, want >= 10", st.Submitted, st.Completed)
	}
	if st.TasksByKind["a"] != 10 {
		t.Fatalf("kind a = %d, want 10", st.TasksByKind["a"])
	}
	if st.TasksByKind["b"] == 0 {
		t.Fatal("kind b missing")
	}
	if len(st.PerWorker) != 2 {
		t.Fatalf("per-worker len %d", len(st.PerWorker))
	}
}

func TestDeterministicSumAcrossWorkerCounts(t *testing.T) {
	// Fixed-order reduction via disjoint slots: each body writes its
	// reserved slot, the (serial) combine after Wait reads in index
	// order, so float rounding is identical for every worker count.
	ref := ""
	for _, workers := range []int{1, 2, 3, 8} {
		s := New(workers)
		n := 500
		out := make([]float64, n)
		s.For("t", n, func(i int) { out[i] = 1.0 / float64(i+1) })
		sum := 0.0
		for _, v := range out {
			sum += v
		}
		got := fmt.Sprintf("%.17g", sum)
		if ref == "" {
			ref = got
		} else if got != ref {
			t.Fatalf("w=%d: sum %s != w=1 sum %s", workers, got, ref)
		}
		s.Close()
	}
}

func TestDefaultIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default returned distinct schedulers")
	}
	if Default().Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS", Default().Workers())
	}
}

func TestSpeculateRunsWhenIdle(t *testing.T) {
	s := New(2)
	defer s.Close()
	var ran atomic.Bool
	done, _ := s.Speculate("spec", func() { ran.Store(true) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("speculative task never ran on an idle pool")
	}
	if !ran.Load() {
		t.Fatal("done closed but fn did not run")
	}
	st := s.Stats()
	if st.SpecSubmitted != 1 {
		t.Fatalf("SpecSubmitted = %d, want 1", st.SpecSubmitted)
	}
	if st.TasksByKind["spec"] != 1 {
		t.Fatalf("kind spec = %d, want 1", st.TasksByKind["spec"])
	}
}

func TestSpeculateCancelBeforeStart(t *testing.T) {
	s := New(1)
	defer s.Close()
	// Occupy the only worker so the speculative task stays queued.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Do(context.Background(), "hold", func() { <-release })
	}()
	for s.Stats().TasksByKind["hold"] == 0 || s.Stats().QueueDepth > 0 {
		time.Sleep(time.Millisecond)
	}
	var ran atomic.Bool
	done, cancel := s.Speculate("spec", func() { ran.Store(true) })
	cancel()
	cancel() // idempotent
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not close done")
	}
	close(release)
	wg.Wait()
	// Let the worker pop (and drop) the withdrawn task.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().SpecQueued > 0 {
		if time.Now().After(deadline) {
			t.Fatal("withdrawn task never drained from the spec queue")
		}
		time.Sleep(time.Millisecond)
	}
	if ran.Load() {
		t.Fatal("cancelled speculative task ran")
	}
}

func TestSpeculateYieldsToDemandWork(t *testing.T) {
	s := New(1)
	defer s.Close()
	// Occupy the only worker, queue one speculative and then one
	// demand task, release: the demand task must run first even though
	// the speculative one was submitted earlier.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Do(context.Background(), "hold", func() { <-release })
	}()
	for s.Stats().TasksByKind["hold"] == 0 || s.Stats().QueueDepth > 0 {
		time.Sleep(time.Millisecond)
	}
	var mu sync.Mutex
	var order []string
	specDone, _ := s.Speculate("spec", func() {
		mu.Lock()
		order = append(order, "spec")
		mu.Unlock()
	})
	demandDone := make(chan struct{})
	go func() {
		defer close(demandDone)
		_ = s.Do(context.Background(), "demand", func() {
			mu.Lock()
			order = append(order, "demand")
			mu.Unlock()
		})
	}()
	// Wait until the demand task is actually queued before releasing.
	for s.Stats().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-demandDone
	select {
	case <-specDone:
	case <-time.After(5 * time.Second):
		t.Fatal("speculative task starved forever")
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "demand" || order[1] != "spec" {
		t.Fatalf("execution order = %v, want [demand spec]", order)
	}
}

func TestSpeculateNotClaimedByJoinHelper(t *testing.T) {
	s := New(2)
	defer s.Close()
	// A Group.Wait help loop passes a non-nil g to find and must never
	// claim speculative work. Pin it structurally: submit a spec task
	// that blocks until the join completes — if Wait helped it, the
	// join would deadlock on its own helper.
	joined := make(chan struct{})
	specStarted := make(chan struct{})
	done, _ := s.Speculate("spec", func() {
		close(specStarted)
		<-joined
	})
	g := s.NewGroup()
	for i := 0; i < 4; i++ {
		g.Go("t", func() { time.Sleep(5 * time.Millisecond) })
	}
	g.Wait()
	close(joined)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("speculative task never finished")
	}
}
