package core

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/reach"
	"repro/internal/trace"
	"repro/internal/workload"
)

// pipeline runs profile -> pruned CFG -> reach -> Select for a program.
func pipeline(t *testing.T, p *isa.Program, cfgSel Config) (*Table, *emu.Profile, *cfg.Graph, *trace.Trace) {
	t.Helper()
	res, err := emu.Run(p, emu.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(res.Profile).Prune(0.9, 256)
	if err != nil {
		t.Fatal(err)
	}
	r, err := reach.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Select(res.Profile, g, r, res.Trace, cfgSel)
	if err != nil {
		t.Fatal(err)
	}
	return tab, res.Profile, g, res.Trace
}

func TestSelectIndependentMap(t *testing.T) {
	// 64 iterations × 33 instructions: the iteration pair passes both
	// thresholds (RP = 63/64, distance 33 ≥ 32).
	p := workload.KernelIndependentMap(64, 14)
	tab, _, g, _ := pipeline(t, p, Config{})
	if tab.Len() == 0 {
		t.Fatalf("no pairs selected; graph nodes=%d", len(g.Nodes))
	}
	for _, pair := range tab.Primary {
		if pair.Kind != KindProfile {
			continue
		}
		if pair.Prob < 0.95 {
			t.Errorf("pair %+v below probability threshold", pair)
		}
		if pair.Dist < 32 {
			t.Errorf("pair %+v below distance threshold", pair)
		}
	}
}

func TestSelectRespectsThresholds(t *testing.T) {
	p := workload.MustGenerate("compress", workload.SizeTest)
	tab, _, _, _ := pipeline(t, p, Config{MinProb: 0.99, MinDist: 64})
	for _, pair := range tab.Primary {
		if pair.Kind == KindProfile && (pair.Prob < 0.99 || pair.Dist < 64) {
			t.Errorf("pair violates thresholds: %+v", pair)
		}
		if pair.Kind == KindReturn && pair.Dist < 64 {
			t.Errorf("return pair violates size: %+v", pair)
		}
	}
}

func TestSelectOnePrimaryPerSP(t *testing.T) {
	p := workload.MustGenerate("ijpeg", workload.SizeTest)
	tab, _, _, _ := pipeline(t, p, Config{})
	seen := map[uint32]bool{}
	for _, pair := range tab.Primary {
		if seen[pair.SP] {
			t.Errorf("duplicate SP %d", pair.SP)
		}
		seen[pair.SP] = true
	}
	if tab.TotalCandidates < tab.Len()-countKind(tab, KindReturn) {
		t.Errorf("total candidates %d < selected profile pairs", tab.TotalCandidates)
	}
}

func countKind(tab *Table, k PairKind) int {
	n := 0
	for _, p := range tab.Primary {
		if p.Kind == k {
			n++
		}
	}
	return n
}

func TestSelectReturnPairs(t *testing.T) {
	// The call-chain kernel's leaf is long enough to qualify as a
	// return pair.
	p := workload.KernelCallChain(50, 20)
	tab, pr, _, _ := pipeline(t, p, Config{})
	var callPC uint32
	for pc := range pr.CallSites {
		callPC = pc
	}
	found := false
	for _, pair := range tab.Primary {
		if pair.Kind == KindReturn {
			found = true
			if pair.SP != callPC || pair.CQIP != callPC+1 {
				t.Errorf("return pair at %d->%d, want %d->%d", pair.SP, pair.CQIP, callPC, callPC+1)
			}
		}
	}
	if !found {
		t.Error("no return pair added")
	}

	// Disabled: no return pairs.
	tab2, _, _, _ := pipeline(t, p, Config{DisableReturnPairs: true})
	if countKind(tab2, KindReturn) != 0 {
		t.Error("return pairs present despite DisableReturnPairs")
	}
}

func TestSelectShortCalleeRejected(t *testing.T) {
	p := workload.KernelCallChain(50, 2) // leaf ~7 instructions < 32
	tab, _, _, _ := pipeline(t, p, Config{})
	if n := countKind(tab, KindReturn); n != 0 {
		t.Errorf("short callee produced %d return pairs", n)
	}
}

func TestBySP(t *testing.T) {
	p := workload.MustGenerate("ijpeg", workload.SizeTest)
	tab, _, _, _ := pipeline(t, p, Config{})
	if tab.Len() == 0 {
		t.Fatal("no pairs")
	}
	for i := range tab.Primary {
		got := tab.BySP(tab.Primary[i].SP)
		if got == nil || got.SP != tab.Primary[i].SP {
			t.Fatalf("BySP(%d) = %v", tab.Primary[i].SP, got)
		}
	}
	if tab.BySP(0xffffffff) != nil {
		t.Error("BySP(bogus) != nil")
	}
}

func TestCriteriaChangeOrdering(t *testing.T) {
	p := workload.MustGenerate("perl", workload.SizeTest)
	res, err := emu.Run(p, emu.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(res.Profile).Prune(0.9, 256)
	if err != nil {
		t.Fatal(err)
	}
	r, err := reach.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	tables := map[Criterion]*Table{}
	for _, crit := range []Criterion{MaxDistance, MaxIndependent, MaxPredictable} {
		tab, err := Select(res.Profile, g, r, res.Trace, Config{Criterion: crit})
		if err != nil {
			t.Fatal(err)
		}
		tables[crit] = tab
		// Score must match the criterion's metric.
		for _, pair := range tab.Primary {
			if pair.Kind != KindProfile {
				continue
			}
			var want float64
			switch crit {
			case MaxIndependent:
				want = pair.AvgIndep
			case MaxPredictable:
				want = pair.AvgPred
			default:
				want = pair.Dist
			}
			if pair.Score != want {
				t.Errorf("%v: score %v != metric %v", crit, pair.Score, want)
			}
		}
	}
	// Same SPs under every criterion (ordering changes, the SP set
	// doesn't).
	if tables[MaxDistance].Len() != tables[MaxIndependent].Len() {
		t.Errorf("SP counts differ: %d vs %d",
			tables[MaxDistance].Len(), tables[MaxIndependent].Len())
	}
	// Alternates are criterion-ordered best-first.
	for sp, alts := range tables[MaxDistance].Alternates {
		prev := tables[MaxDistance].BySP(sp).Score
		for _, a := range alts {
			if a.Score > prev+1e-9 {
				t.Errorf("alternate better than primary for SP %d", sp)
			}
			prev = a.Score
		}
	}
}

func TestCriterionAndKindStrings(t *testing.T) {
	if MaxDistance.String() != "max-distance" || MaxIndependent.String() != "independent" ||
		MaxPredictable.String() != "predictable" {
		t.Error("criterion names wrong")
	}
	if Criterion(9).String() == "" {
		t.Error("unknown criterion must still print")
	}
	for k := KindProfile; k <= KindSubCont; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if PairKind(42).String() == "" {
		t.Error("unknown kind must still print")
	}
}

func TestSelectGraphMismatch(t *testing.T) {
	p := workload.KernelCountLoop(50, 4)
	res, err := emu.Run(p, emu.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := cfg.Build(res.Profile).Prune(0.9, 0)
	r, err := reach.Compute(g1)
	if err != nil {
		t.Fatal(err)
	}
	// An equal-content copy (the engine's disk tier round-trips reach
	// results and graphs as independent artifacts) must be accepted:
	// the matrices index the same node set.
	copyG, _ := cfg.Build(res.Profile).Prune(0.9, 0)
	if _, err := Select(res.Profile, copyG, r, res.Trace, Config{}); err != nil {
		t.Errorf("equal-content graph copy rejected: %v", err)
	}
	// A genuinely different node set must still be rejected.
	g2, _ := cfg.Build(res.Profile).Prune(0.9, 0)
	g2.Nodes = append([]cfg.Node(nil), g2.Nodes...)
	g2.Nodes[0].PC++
	if _, err := Select(res.Profile, g2, r, res.Trace, Config{}); err == nil {
		t.Error("expected graph-mismatch error")
	}
}
