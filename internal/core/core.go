// Package core implements the paper's primary contribution: the
// profile-based thread-spawning scheme (HPCA'02 §3.1). From the pruned
// dynamic CFG and its reaching-probability/distance matrices it selects
// spawning pairs — (spawning point, control quasi-independent point)
// instruction pairs — that satisfy the paper's three requirements:
//
//  1. high probability of reaching the CQIP after the SP (≥ MinProb,
//     default 0.95),
//  2. an expected SP→CQIP distance large enough to amortise thread
//     creation (≥ MinDist, default 32 instructions), and
//  3. a favourable dependence profile, used to order competing CQIPs
//     for the same SP under one of three criteria: maximum expected
//     distance (the paper's default), maximum count of independent
//     spawned-thread instructions, or maximum count of independent-or-
//     predictable instructions.
//
// Subroutine return pairs that meet the size constraint are appended,
// as §3.1 prescribes, since multi-caller subroutines dilute reaching
// probabilities in the context-insensitive CFG.
package core

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/dep"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/reach"
	"repro/internal/trace"
)

// Criterion orders competing CQIP candidates for one spawning point.
type Criterion int

// The three ordering criteria of §3.1.
const (
	// MaxDistance prefers the CQIP with the largest expected SP→CQIP
	// distance (largest speculative thread).
	MaxDistance Criterion = iota
	// MaxIndependent prefers the CQIP whose thread has the most
	// instructions independent of the SP→CQIP region.
	MaxIndependent
	// MaxPredictable prefers the CQIP whose thread has the most
	// instructions that are independent or value-predictable.
	MaxPredictable
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case MaxDistance:
		return "max-distance"
	case MaxIndependent:
		return "independent"
	case MaxPredictable:
		return "predictable"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// PairKind records how a pair was derived.
type PairKind int

// Pair kinds: profile-selected, subroutine-return augmentation, and the
// three traditional heuristics (produced by package heuristic).
const (
	KindProfile PairKind = iota
	KindReturn
	KindLoopIter
	KindLoopCont
	KindSubCont
)

// String names the pair kind.
func (k PairKind) String() string {
	switch k {
	case KindProfile:
		return "profile"
	case KindReturn:
		return "return"
	case KindLoopIter:
		return "loop-iter"
	case KindLoopCont:
		return "loop-cont"
	case KindSubCont:
		return "sub-cont"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Pair is one spawning pair: reaching the SP spawns a thread at the
// CQIP.
type Pair struct {
	SP   uint32
	CQIP uint32
	Kind PairKind
	// LoopEnd is the PC of the loop-closing backward branch for
	// loop-iteration and loop-continuation pairs (the simulator's
	// construct-level misspeculation detector needs the loop's static
	// extent). Zero for non-loop pairs.
	LoopEnd uint32
	// Prob is the reaching probability RP(SP, CQIP).
	Prob float64
	// Dist is the expected SP→CQIP distance in instructions.
	Dist float64
	// Score is the value the selection criterion ordered by.
	Score float64
	// LiveIns are the registers the spawned thread reads before
	// writing; the value predictor predicts exactly these.
	LiveIns []isa.Reg
	// Predictable flags the live-ins whose profiled stride hit rate
	// met dep.PredictableThreshold.
	Predictable []isa.Reg
	// AvgIndep / AvgPred are the dependence-analysis counts behind the
	// MaxIndependent / MaxPredictable criteria.
	AvgIndep float64
	AvgPred  float64
}

// Table is a spawn-pair table: one primary pair per spawning point,
// with criterion-ordered alternates available to the reassign policy.
type Table struct {
	// Primary holds the selected pair for each distinct SP, sorted by
	// SP.
	Primary []Pair
	// Alternates maps an SP to its remaining candidates in criterion
	// order (best first), excluding the primary.
	Alternates map[uint32][]Pair
	// TotalCandidates counts every (block,block) pair that met the
	// probability and distance thresholds (Figure 2's "Total Pairs").
	TotalCandidates int
}

// Len returns the number of primary pairs (Figure 2's "Selected
// Pairs").
func (t *Table) Len() int { return len(t.Primary) }

// ApproxBytes reports the table's approximate resident size for engine
// cache accounting (~160B per pair including live-in slices).
func (t *Table) ApproxBytes() int64 {
	pairs := len(t.Primary)
	for _, alts := range t.Alternates {
		pairs += len(alts)
	}
	return int64(pairs)*160 + int64(len(t.Alternates))*32 + 96
}

// BySP returns the primary pair for an SP, or nil.
func (t *Table) BySP(pc uint32) *Pair {
	i := sort.Search(len(t.Primary), func(i int) bool { return t.Primary[i].SP >= pc })
	if i < len(t.Primary) && t.Primary[i].SP == pc {
		return &t.Primary[i]
	}
	return nil
}

// Config parameterises selection. The zero value gives the paper's
// defaults.
type Config struct {
	// MinProb is the reaching-probability threshold (default 0.95).
	MinProb float64
	// MinDist is the minimum expected distance in instructions
	// (default 32).
	MinDist float64
	// MaxDist, when positive, drops pairs with larger expected
	// distance (the paper notes very large threads cause imbalance;
	// default 0 = unbounded).
	MaxDist float64
	// Criterion orders competing CQIPs per SP (default MaxDistance).
	Criterion Criterion
	// MaxAlternates bounds the stored alternates per SP (default 4).
	MaxAlternates int
	// DisableReturnPairs suppresses the §3.1 return-pair augmentation.
	DisableReturnPairs bool
	// Dep bounds the dependence-analysis sampling.
	Dep dep.Config
}

func (c Config) withDefaults() Config {
	if c.MinProb == 0 {
		c.MinProb = 0.95
	}
	if c.MinDist == 0 {
		c.MinDist = 32
	}
	if c.MaxAlternates == 0 {
		c.MaxAlternates = 4
	}
	return c
}

// sameGraph reports whether the reach result's graph describes the
// same node set as g. Pointer equality is the fast path; a decoded
// artifact (the engine's disk tier round-trips reach results and CFGs
// independently) is an equal-content copy, so fall back to comparing
// the node identity that the matrices are indexed by.
func sameGraph(a, b *cfg.Graph) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i].PC != b.Nodes[i].PC {
			return false
		}
	}
	return true
}

// Select runs the full profile-based selection over a pruned CFG, its
// reach analysis, and the trace (for dependence analysis).
func Select(pr *emu.Profile, g *cfg.Graph, r *reach.Result, tr *trace.Trace, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	if !sameGraph(r.G, g) {
		return nil, fmt.Errorf("core: reach result computed over a different graph")
	}
	n := len(g.Nodes)

	type cand struct {
		sp, cqip   uint32
		prob, dist float64
	}
	bySP := make(map[uint32][]cand)
	total := 0
	for i := 0; i < n; i++ {
		sp := g.Nodes[i].PC
		for j := 0; j < n; j++ {
			p := r.Prob.At(i, j)
			d := r.Dist.At(i, j)
			if p < cfg.MinProb || d < cfg.MinDist {
				continue
			}
			if cfg.MaxDist > 0 && d > cfg.MaxDist {
				continue
			}
			total++
			bySP[sp] = append(bySP[sp], cand{sp: sp, cqip: g.Nodes[j].PC, prob: p, dist: d})
		}
	}

	// Dependence analysis: for the distance criterion only the
	// eventual winners need live-ins, but ranking under the other two
	// criteria needs stats for every candidate. Analysing all
	// candidates keeps the code uniform; the sampling caps bound the
	// cost.
	var reqs []dep.Request
	for _, cands := range bySP {
		for _, c := range cands {
			reqs = append(reqs, dep.Request{Key: dep.Key{SP: c.sp, CQIP: c.cqip}, Dist: c.dist})
		}
	}
	tr.BuildIndex()
	stats := dep.Analyze(tr, reqs, cfg.Dep)

	table := &Table{Alternates: make(map[uint32][]Pair)}
	table.TotalCandidates = total
	for sp, cands := range bySP {
		pairs := make([]Pair, 0, len(cands))
		for _, c := range cands {
			st := stats[dep.Key{SP: c.sp, CQIP: c.cqip}]
			p := Pair{
				SP: c.sp, CQIP: c.cqip, Kind: KindProfile,
				Prob: c.prob, Dist: c.dist,
			}
			if st != nil {
				p.LiveIns = st.LiveIns
				p.Predictable = st.PredictableLiveIns(dep.PredictableThreshold)
				p.AvgIndep = st.AvgIndep
				p.AvgPred = st.AvgPred
			}
			switch cfg.Criterion {
			case MaxIndependent:
				p.Score = p.AvgIndep
			case MaxPredictable:
				p.Score = p.AvgPred
			default:
				p.Score = p.Dist
			}
			pairs = append(pairs, p)
		}
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].Score != pairs[b].Score {
				return pairs[a].Score > pairs[b].Score
			}
			return pairs[a].CQIP < pairs[b].CQIP
		})
		table.Primary = append(table.Primary, pairs[0])
		alt := pairs[1:]
		if len(alt) > cfg.MaxAlternates {
			alt = alt[:cfg.MaxAlternates]
		}
		if len(alt) > 0 {
			table.Alternates[sp] = append([]Pair(nil), alt...)
		}
	}

	if !cfg.DisableReturnPairs {
		addReturnPairs(pr, tr, table, cfg)
	}

	sort.Slice(table.Primary, func(a, b int) bool { return table.Primary[a].SP < table.Primary[b].SP })
	return table, nil
}

// addReturnPairs appends (call, continuation) pairs whose mean callee
// length satisfies the size constraint and whose SP is not already in
// the table.
func addReturnPairs(pr *emu.Profile, tr *trace.Trace, table *Table, cfg Config) {
	taken := make(map[uint32]bool, len(table.Primary))
	for i := range table.Primary {
		taken[table.Primary[i].SP] = true
	}
	var reqs []dep.Request
	type rp struct {
		sp, cqip uint32
		dist     float64
	}
	var cands []rp
	for callPC, cs := range pr.CallSites {
		avg := cs.AvgLen()
		if avg < cfg.MinDist || (cfg.MaxDist > 0 && avg > cfg.MaxDist) {
			continue
		}
		if taken[callPC] {
			continue
		}
		cands = append(cands, rp{sp: callPC, cqip: callPC + 1, dist: avg})
		reqs = append(reqs, dep.Request{Key: dep.Key{SP: callPC, CQIP: callPC + 1}, Dist: avg})
	}
	rstats := dep.Analyze(tr, reqs, cfg.Dep)
	for _, c := range cands {
		st := rstats[dep.Key{SP: c.sp, CQIP: c.cqip}]
		p := Pair{SP: c.sp, CQIP: c.cqip, Kind: KindReturn, Prob: 1, Dist: c.dist, Score: c.dist}
		if st != nil {
			p.LiveIns = st.LiveIns
			p.Predictable = st.PredictableLiveIns(dep.PredictableThreshold)
			p.AvgIndep = st.AvgIndep
			p.AvgPred = st.AvgPred
		}
		table.Primary = append(table.Primary, p)
	}
}
