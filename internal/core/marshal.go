package core

import (
	"fmt"
	"sort"

	"repro/internal/binio"
	"repro/internal/isa"
)

// tableVersion tags the Table wire format.
const tableVersion = 1

// minPairBytes is the least bytes one encoded Pair can occupy, used to
// bound decode-side allocations against corrupt length prefixes.
const minPairBytes = 39

func writePair(w *binio.Writer, p *Pair) {
	w.U32(p.SP)
	w.U32(p.CQIP)
	w.Int(int(p.Kind))
	w.U32(p.LoopEnd)
	w.F64(p.Prob)
	w.F64(p.Dist)
	w.F64(p.Score)
	writeRegs := func(regs []isa.Reg) {
		w.Uvarint(uint64(len(regs)))
		for _, r := range regs {
			w.U8(uint8(r))
		}
	}
	writeRegs(p.LiveIns)
	writeRegs(p.Predictable)
	w.F64(p.AvgIndep)
	w.F64(p.AvgPred)
}

func readPair(r *binio.Reader) Pair {
	p := Pair{
		SP:      r.U32(),
		CQIP:    r.U32(),
		Kind:    PairKind(r.Int()),
		LoopEnd: r.U32(),
		Prob:    r.F64(),
		Dist:    r.F64(),
		Score:   r.F64(),
	}
	readRegs := func() []isa.Reg {
		n := r.Count(1)
		if n == 0 {
			return nil
		}
		regs := make([]isa.Reg, n)
		for i := range regs {
			regs[i] = isa.Reg(r.U8())
		}
		return regs
	}
	p.LiveIns = readRegs()
	p.Predictable = readRegs()
	p.AvgIndep = r.F64()
	p.AvgPred = r.F64()
	return p
}

// MarshalBinary serialises the spawn-pair table deterministically: the
// alternates map is written in sorted SP order.
func (t *Table) MarshalBinary() ([]byte, error) {
	alts := 0
	for _, a := range t.Alternates {
		alts += len(a)
	}
	w := binio.NewWriter(64 + (len(t.Primary)+alts)*64)
	w.U8(tableVersion)
	w.Uvarint(uint64(len(t.Primary)))
	for i := range t.Primary {
		writePair(w, &t.Primary[i])
	}
	sps := make([]uint32, 0, len(t.Alternates))
	for sp := range t.Alternates {
		sps = append(sps, sp)
	}
	sort.Slice(sps, func(i, j int) bool { return sps[i] < sps[j] })
	w.Uvarint(uint64(len(sps)))
	for _, sp := range sps {
		w.U32(sp)
		pairs := t.Alternates[sp]
		w.Uvarint(uint64(len(pairs)))
		for i := range pairs {
			writePair(w, &pairs[i])
		}
	}
	w.Int(t.TotalCandidates)
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a table written by MarshalBinary.
func (t *Table) UnmarshalBinary(data []byte) error {
	r := binio.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != tableVersion {
		return fmt.Errorf("core: table format version %d (want %d)", v, tableVersion)
	}
	var primary []Pair
	if n := r.Count(minPairBytes); n > 0 {
		primary = make([]Pair, n)
		for i := range primary {
			primary[i] = readPair(r)
		}
	}
	// Alternates is always a live map on a built table (Select and
	// heuristic.Pairs both allocate it), so decode matches.
	alternates := make(map[uint32][]Pair)
	for n := r.Count(5); n > 0; n-- {
		sp := r.U32()
		pairs := make([]Pair, r.Count(minPairBytes))
		for i := range pairs {
			pairs[i] = readPair(r)
		}
		alternates[sp] = pairs
	}
	total := r.Int()
	if err := r.Close(); err != nil {
		return err
	}
	t.Primary = primary
	t.Alternates = alternates
	t.TotalCandidates = total
	return nil
}
