// Package heuristic derives the traditional spawning schemes the paper
// compares against (HPCA'02 §3 and [15]): loop-iteration,
// loop-continuation, and subroutine-continuation pairs, plus their
// combination. Unlike the profile-based scheme, these heuristics attach
// threads to program constructs without probability or size filtering —
// that is exactly the weakness the paper exploits.
package heuristic

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Scheme selects which construct-based pairs to generate.
type Scheme int

// Individual schemes and the paper's combined baseline.
const (
	LoopIteration Scheme = 1 << iota
	LoopContinuation
	SubroutineContinuation

	// Combined is the baseline the paper compares against: the union
	// of all three schemes.
	Combined = LoopIteration | LoopContinuation | SubroutineContinuation
)

// String names the scheme set.
func (s Scheme) String() string {
	switch s {
	case LoopIteration:
		return "loop-iteration"
	case LoopContinuation:
		return "loop-continuation"
	case SubroutineContinuation:
		return "subroutine-continuation"
	case Combined:
		return "combined-heuristics"
	}
	out := ""
	if s&LoopIteration != 0 {
		out += "+loop-iteration"
	}
	if s&LoopContinuation != 0 {
		out += "+loop-continuation"
	}
	if s&SubroutineContinuation != 0 {
		out += "+subroutine-continuation"
	}
	if out == "" {
		return "none"
	}
	return out[1:]
}

// Config controls pair derivation.
type Config struct {
	// MinCount drops constructs never seen executing in the profile
	// (default 1 dynamic execution of the SP block).
	MinCount uint64
	// Dep bounds the dependence-analysis sampling for live-ins.
	Dep dep.Config
}

// Pairs derives the heuristic spawn-pair table for a program from its
// static structure, profile, and trace.
//
// Loop iteration: the target of a backward control transfer is both SP
// and CQIP. Loop continuation: the loop head is the SP and the
// instruction after the closing backward branch is the CQIP.
// Subroutine continuation: every call is an SP with its fall-through as
// CQIP.
func Pairs(p *isa.Program, pr *emu.Profile, tr *trace.Trace, scheme Scheme, cfg Config) *core.Table {
	minCount := cfg.MinCount
	if minCount == 0 {
		minCount = 1
	}

	type protoPair struct {
		sp, cqip uint32
		kind     core.PairKind
		loopEnd  uint32
		alt      bool // a later scheme hit an SP already taken
	}
	var protos []protoPair
	seen := make(map[uint32]bool)
	seenPair := make(map[dep.Key]bool)

	add := func(sp, cqip uint32, kind core.PairKind, loopEnd uint32) {
		if seenPair[dep.Key{SP: sp, CQIP: cqip}] {
			return
		}
		if pr.BlockCount[pr.BlockOf(sp)] < minCount {
			return
		}
		seenPair[dep.Key{SP: sp, CQIP: cqip}] = true
		protos = append(protos, protoPair{sp: sp, cqip: cqip, kind: kind, loopEnd: loopEnd, alt: seen[sp]})
		seen[sp] = true
	}

	// Scan static code for backward control edges and calls, in PC
	// order for determinism.
	for pc := 0; pc < p.Len(); pc++ {
		ins := &p.Code[pc]
		backward := (ins.Op.IsBranch() || ins.Op == isa.OpJmp) && ins.Target <= uint32(pc)
		if backward {
			head := ins.Target
			if scheme&LoopIteration != 0 {
				add(head, head, core.KindLoopIter, uint32(pc))
			}
			if scheme&LoopContinuation != 0 && pc+1 < p.Len() {
				add(head, uint32(pc)+1, core.KindLoopCont, uint32(pc))
			}
		}
		if ins.Op == isa.OpCall && scheme&SubroutineContinuation != 0 && pc+1 < p.Len() {
			add(uint32(pc), uint32(pc)+1, core.KindSubCont, 0)
		}
	}

	// Live-ins and measured distances from the trace.
	tr.BuildIndex()
	reqs := make([]dep.Request, 0, len(protos))
	for _, pp := range protos {
		reqs = append(reqs, dep.Request{Key: dep.Key{SP: pp.sp, CQIP: pp.cqip}})
	}
	stats := dep.Analyze(tr, reqs, cfg.Dep)

	table := &core.Table{Alternates: make(map[uint32][]core.Pair)}
	for _, pp := range protos {
		pair := core.Pair{SP: pp.sp, CQIP: pp.cqip, Kind: pp.kind, LoopEnd: pp.loopEnd, Prob: 1}
		if st := stats[dep.Key{SP: pp.sp, CQIP: pp.cqip}]; st != nil {
			if st.Occurrences == 0 {
				continue // construct never completes an SP→CQIP instance
			}
			pair.Dist = st.AvgDist
			pair.Score = st.AvgDist
			pair.LiveIns = st.LiveIns
			pair.Predictable = st.PredictableLiveIns(dep.PredictableThreshold)
			pair.AvgIndep = st.AvgIndep
			pair.AvgPred = st.AvgPred
		}
		if pp.alt {
			table.Alternates[pp.sp] = append(table.Alternates[pp.sp], pair)
		} else {
			table.Primary = append(table.Primary, pair)
		}
	}
	table.TotalCandidates = len(table.Primary)
	sort.Slice(table.Primary, func(a, b int) bool { return table.Primary[a].SP < table.Primary[b].SP })
	return table
}
