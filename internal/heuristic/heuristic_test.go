package heuristic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func run(t *testing.T, p *isa.Program) (*emu.Profile, *trace.Trace) {
	t.Helper()
	res, err := emu.Run(p, emu.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Profile, res.Trace
}

func kinds(tab *core.Table) map[core.PairKind]int {
	m := map[core.PairKind]int{}
	for _, p := range tab.Primary {
		m[p.Kind]++
	}
	return m
}

func TestLoopIterationPair(t *testing.T) {
	p := workload.KernelCountLoop(50, 4)
	pr, tr := run(t, p)
	tab := Pairs(p, pr, tr, LoopIteration, Config{})
	if len(tab.Primary) != 1 {
		t.Fatalf("pairs = %d, want 1", len(tab.Primary))
	}
	pair := tab.Primary[0]
	if pair.Kind != core.KindLoopIter {
		t.Errorf("kind = %v", pair.Kind)
	}
	if pair.SP != pair.CQIP {
		t.Errorf("loop-iteration pair must have SP == CQIP, got %d -> %d", pair.SP, pair.CQIP)
	}
	if pair.SP != 2 { // loop head
		t.Errorf("SP = %d, want 2", pair.SP)
	}
	// Iteration size: pad 4 + addi + branch = 6.
	if pair.Dist != 6 {
		t.Errorf("dist = %v, want 6", pair.Dist)
	}
}

func TestLoopContinuationPair(t *testing.T) {
	p := workload.KernelCountLoop(50, 4)
	pr, tr := run(t, p)
	tab := Pairs(p, pr, tr, LoopContinuation, Config{})
	if len(tab.Primary) != 1 {
		t.Fatalf("pairs = %d, want 1", len(tab.Primary))
	}
	pair := tab.Primary[0]
	if pair.Kind != core.KindLoopCont {
		t.Errorf("kind = %v", pair.Kind)
	}
	if pair.SP != 2 || pair.CQIP != 8 { // instruction after the backedge
		t.Errorf("pair = %d -> %d, want 2 -> 8", pair.SP, pair.CQIP)
	}
	// Only the final iteration reaches the continuation without
	// revisiting the head: distance = one iteration.
	if pair.Dist != 6 {
		t.Errorf("dist = %v, want 6", pair.Dist)
	}
}

func TestSubroutineContinuationPair(t *testing.T) {
	p := workload.KernelCallChain(20, 5)
	pr, tr := run(t, p)
	tab := Pairs(p, pr, tr, SubroutineContinuation, Config{})
	if len(tab.Primary) != 1 {
		t.Fatalf("pairs = %d, want 1", len(tab.Primary))
	}
	pair := tab.Primary[0]
	if pair.Kind != core.KindSubCont {
		t.Errorf("kind = %v", pair.Kind)
	}
	if pair.CQIP != pair.SP+1 {
		t.Errorf("continuation must follow the call: %d -> %d", pair.SP, pair.CQIP)
	}
	// call + li + 5×2 pad + or + ret = 14 dynamic instructions.
	if pair.Dist != 14 {
		t.Errorf("dist = %v", pair.Dist)
	}
}

func TestCombinedUnion(t *testing.T) {
	p := workload.MustGenerate("vortex", workload.SizeTest)
	pr, tr := run(t, p)
	comb := Pairs(p, pr, tr, Combined, Config{})
	km := kinds(comb)
	if km[core.KindLoopIter] == 0 || km[core.KindSubCont] == 0 {
		t.Errorf("combined missing kinds: %v", km)
	}
	// Union covers at least as many SPs as each individual scheme.
	for _, s := range []Scheme{LoopIteration, LoopContinuation, SubroutineContinuation} {
		ind := Pairs(p, pr, tr, s, Config{})
		if comb.Len() < ind.Len() {
			t.Errorf("combined %d < %v %d", comb.Len(), s, ind.Len())
		}
	}
}

func TestColdConstructsDropped(t *testing.T) {
	// A loop behind a never-taken branch must not produce pairs.
	b := isa.NewBuilder("cold")
	b.Func("main")
	b.Li(8, 1)
	b.Branch(isa.OpBeq, 8, 0, "coldloop") // never taken
	b.Li(9, 5)
	b.Label("hot")
	b.Addi(8, 8, 1)
	b.Branch(isa.OpBltu, 8, 9, "hot")
	b.Halt()
	b.Label("coldloop")
	b.Addi(10, 10, 1)
	b.Branch(isa.OpBltu, 10, 9, "coldloop")
	b.Jmp("hot")
	p := b.MustBuild()
	pr, tr := run(t, p)
	tab := Pairs(p, pr, tr, Combined, Config{})
	for _, pair := range tab.Primary {
		if pair.SP >= 7 {
			t.Errorf("cold-loop pair selected: %+v", pair)
		}
	}
}

func TestBackwardJmpIsLoop(t *testing.T) {
	// Loop closed by jmp (conditional exit + unconditional backedge).
	b := isa.NewBuilder("jmploop")
	b.Func("main")
	b.Li(8, 0)
	b.Li(9, 10)
	b.Label("head")
	b.Addi(8, 8, 1)
	b.Branch(isa.OpBgeu, 8, 9, "done")
	b.Jmp("head")
	b.Label("done")
	b.Halt()
	p := b.MustBuild()
	pr, tr := run(t, p)
	tab := Pairs(p, pr, tr, LoopIteration, Config{})
	if len(tab.Primary) != 1 || tab.Primary[0].SP != 2 {
		t.Errorf("jmp-closed loop not detected: %+v", tab.Primary)
	}
}

func TestSchemeString(t *testing.T) {
	cases := map[Scheme]string{
		LoopIteration:                    "loop-iteration",
		LoopContinuation:                 "loop-continuation",
		SubroutineContinuation:           "subroutine-continuation",
		Combined:                         "combined-heuristics",
		LoopIteration | LoopContinuation: "loop-iteration+loop-continuation",
		Scheme(0):                        "none",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", s, got, want)
		}
	}
}

func TestLiveInsPopulated(t *testing.T) {
	p := workload.MustGenerate("m88ksim", workload.SizeTest)
	pr, tr := run(t, p)
	tab := Pairs(p, pr, tr, Combined, Config{})
	withLiveIns := 0
	for _, pair := range tab.Primary {
		if len(pair.LiveIns) > 0 {
			withLiveIns++
		}
	}
	if withLiveIns == 0 {
		t.Error("no heuristic pair has live-ins")
	}
}
