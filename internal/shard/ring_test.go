package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	rng := rand.New(rand.NewSource(42))
	for i := range keys {
		// Shaped like real artifact keys.
		keys[i] = fmt.Sprintf("sim/test/%x/bench%d/profile/tu%d", rng.Uint64(), i%8, 1<<(i%5))
	}
	return keys
}

func nodeList(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://127.0.0.1:%d", 8080+i)
	}
	return nodes
}

// TestRingOrderIndependent: every node of a cluster builds the ring
// from its own flag parse; ownership must not depend on list order or
// duplicates.
func TestRingOrderIndependent(t *testing.T) {
	nodes := nodeList(5)
	a := NewRing(nodes, 64)
	shuffled := append([]string{nodes[3], nodes[3]}, nodes[4], nodes[0], nodes[2], nodes[1], nodes[3])
	b := NewRing(shuffled, 64)
	if a.Len() != 5 || b.Len() != 5 {
		t.Fatalf("Len = %d, %d, want 5 (duplicates must collapse)", a.Len(), b.Len())
	}
	for _, k := range testKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("ring disagrees on %q: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance: with the default virtual-node count every member
// owns close to 1/N of a large key population.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		ring := NewRing(nodeList(n), 0)
		keys := testKeys(20000)
		counts := map[string]int{}
		for _, k := range keys {
			counts[ring.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes own keys", n, len(counts))
		}
		share := float64(len(keys)) / float64(n)
		for node, c := range counts {
			if f := float64(c) / share; f < 0.5 || f > 1.7 {
				t.Errorf("n=%d: %s owns %.2fx its fair share (%d keys)", n, node, f, c)
			}
		}
	}
}

// TestRingRemapProperty is the consistent-hashing contract: removing
// one member moves only the keys that member owned (~1/N of the
// keyspace); every other key keeps its owner exactly.
func TestRingRemapProperty(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{2, 3, 4, 8} {
		nodes := nodeList(n)
		ring := NewRing(nodes, 0)
		for _, gone := range []string{nodes[0], nodes[n-1]} {
			after := ring.Without(gone)
			if after.Len() != n-1 {
				t.Fatalf("Without: Len = %d, want %d", after.Len(), n-1)
			}
			moved := 0
			for _, k := range keys {
				before := ring.Owner(k)
				now := after.Owner(k)
				if before == gone {
					moved++
					if now == gone {
						t.Fatalf("n=%d: removed node still owns %q", n, k)
					}
					continue
				}
				if now != before {
					t.Fatalf("n=%d: key %q not owned by removed %s moved %s -> %s",
						n, k, gone, before, now)
				}
			}
			frac := float64(moved) / float64(len(keys))
			want := 1 / float64(n)
			if frac < 0.5*want || frac > 1.7*want {
				t.Errorf("n=%d: removing %s moved %.3f of keys, want ~%.3f", n, gone, frac, want)
			}
		}
	}
}

// TestRingAdditionRemapProperty is the same contract for a join: a new
// member takes ~1/(N+1) of the keyspace and nothing else moves.
func TestRingAdditionRemapProperty(t *testing.T) {
	keys := testKeys(20000)
	nodes := nodeList(4)
	before := NewRing(nodes[:3], 0)
	after := NewRing(nodes, 0)
	moved := 0
	for _, k := range keys {
		was, now := before.Owner(k), after.Owner(k)
		if was == now {
			continue
		}
		if now != nodes[3] {
			t.Fatalf("key %q moved %s -> %s, but only the new member may take keys", k, was, now)
		}
		moved++
	}
	if frac := float64(moved) / float64(len(keys)); frac < 0.5/4 || frac > 1.7/4 {
		t.Errorf("join moved %.3f of keys, want ~0.25", frac)
	}
}

func TestEmptyAndSingleRing(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("sim/x"); owner != "" {
		t.Errorf("empty ring owner = %q, want \"\"", owner)
	}
	one := NewRing([]string{"http://a:1"}, 0)
	for _, k := range testKeys(100) {
		if one.Owner(k) != "http://a:1" {
			t.Fatalf("single-node ring must own everything")
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New("http://a:1", []string{"http://b:2"}, Options{}); err == nil {
		t.Error("self outside member list must error")
	}
	if _, err := New("ftp://a:1", []string{"ftp://a:1"}, Options{}); err == nil {
		t.Error("non-http scheme must error")
	}
	if _, err := New("http://", []string{"http://"}, Options{}); err == nil {
		t.Error("missing host must error")
	}
	// Trailing slashes normalise away.
	c, err := New("http://a:1/", []string{"http://a:1", "http://b:2/"}, Options{VNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != "http://a:1" || len(c.Members()) != 2 {
		t.Errorf("normalised cluster: self=%q members=%v", c.Self(), c.Members())
	}
	if got := c.Stats(); got.VNodes != 8 || got.Self != "http://a:1" {
		t.Errorf("stats = %+v", got)
	}
}
