// Write-through replication: the Replicator implements the engine's
// Replicate hook, so every locally-COMPUTED artifact is pushed to the
// key's replica owners (R-1 peers) through a bounded async queue —
// replication rides the network, never the job-completion path. The
// queue sheds under overload (drops are counted and repaired by the
// next re-replication sweep) rather than back-pressuring computation:
// a replica copy is an availability optimisation, not a durability
// requirement — the primary's own disk tier already has the artifact.
package shard

import (
	"context"
	"log/slog"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
)

// replQueueCap bounds queued write-through pushes; replWorkers drain
// it. At test and smoke scale the queue never fills; under a sustained
// compute burst the oldest pushes are shed and counted.
const (
	replQueueCap = 1024
	replWorkers  = 4
)

type replJob struct {
	// ctx carries trace identity only — captured with
	// context.WithoutCancel at enqueue, because the push outlives the
	// request that computed the artifact.
	ctx context.Context
	key string
	val any
}

// Replicator is the engine.Replicator for one cluster node. Build with
// NewReplicator, wire into engine.Options.Replicate, Close on
// shutdown.
type Replicator struct {
	cl    *Cluster
	codec engine.Codec

	sendMu sync.Mutex
	closed bool
	queue  chan replJob
	wg     sync.WaitGroup
}

// ReplicatorOptions sizes a Replicator. Zero values select the
// package defaults; Workers < 0 starts none (tests use a worker-less
// replicator to force deterministic queue overflow).
type ReplicatorOptions struct {
	QueueCap int
	Workers  int
}

// NewReplicator starts the push workers for cl, encoding artifacts
// with codec (the same codec the peers' artifact endpoints decode
// with).
func NewReplicator(cl *Cluster, codec engine.Codec) *Replicator {
	return NewReplicatorOpts(cl, codec, ReplicatorOptions{})
}

// NewReplicatorOpts is NewReplicator with explicit queue/worker sizing.
func NewReplicatorOpts(cl *Cluster, codec engine.Codec, opts ReplicatorOptions) *Replicator {
	if opts.QueueCap <= 0 {
		opts.QueueCap = replQueueCap
	}
	if opts.Workers == 0 {
		opts.Workers = replWorkers
	}
	r := &Replicator{cl: cl, codec: codec, queue: make(chan replJob, opts.QueueCap)}
	for i := 0; i < opts.Workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// Replicate queues the artifact for push to the key's replica owners.
// Non-blocking: a full queue drops the push (counted; the next sweep
// repairs it), a closed replicator ignores it. Kinds without a codec
// never enqueue — they cannot cross the wire.
func (r *Replicator) Replicate(ctx context.Context, key string, val any) {
	if !fetchableKinds[engine.JobKind(key)] || r.cl.Replicas() < 2 {
		return
	}
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	if r.closed {
		return
	}
	select {
	case r.queue <- replJob{ctx: context.WithoutCancel(ctx), key: key, val: val}:
		r.cl.replPending.Add(1)
	default:
		r.cl.replDropped.Add(1)
	}
}

// Close drains in-flight pushes and stops the workers. Queued pushes
// are still delivered (the queue is closed, not abandoned), so a test
// or graceful shutdown that Closes observes Pending reach zero.
func (r *Replicator) Close() {
	r.sendMu.Lock()
	if !r.closed {
		r.closed = true
		close(r.queue)
	}
	r.sendMu.Unlock()
	r.wg.Wait()
}

func (r *Replicator) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.push(j)
		r.cl.replPending.Add(-1)
	}
}

// push delivers one artifact to every replica owner except self. The
// replica set is computed at DELIVERY time, not enqueue time, so a
// push queued just before a membership change lands on the owners the
// new ring actually names.
func (r *Replicator) push(j replJob) {
	kindTag := engine.JobKind(j.key)
	span, ctx := obs.StartSpan(j.ctx, "replicate "+kindTag, obs.A("key", j.key))
	defer span.End()
	var targets []string
	for _, n := range r.cl.ReplicaSet(j.key) {
		if n != r.cl.Self() {
			targets = append(targets, n)
		}
	}
	if len(targets) == 0 {
		span.SetAttr("outcome", "no-targets")
		return
	}
	kind, data, ok, err := r.codec.Encode(j.val)
	if err != nil {
		r.cl.replPushErrors.Add(1)
		span.SetAttr("outcome", "encode-error")
		slog.Warn("shard: replication encode failed", "key", j.key, "err", err)
		return
	}
	if !ok {
		span.SetAttr("outcome", "memory-only")
		return
	}
	span.SetAttr("bytes", strconv.Itoa(len(data)))
	for _, t := range targets {
		stored, err := r.cl.PushArtifact(ctx, t, j.key, kind, data)
		if err != nil {
			r.cl.replPushErrors.Add(1)
			slog.Warn("shard: replication push failed", "key", j.key, "peer", t, "err", err)
			continue
		}
		r.cl.replPushed.Add(1)
		if !stored {
			r.cl.replPushSkipped.Add(1)
		}
	}
}
