// The health prober: a background loop that probes every peer's
// /v1/cluster/health on a fixed interval, suspects a peer after K
// consecutive failures (temporary effective-ring exclusion — see
// membership.go), and readmits it on the first success. A dead node
// thus stops receiving proxies within roughly Interval*Failures
// instead of costing every routed request a transport timeout.
//
// The probe doubles as membership anti-entropy: the health document
// carries the peer's epoch and member-set hash, and any mismatch
// triggers a PullMembership — so a node that missed a gossip round
// converges within one probe interval without a dedicated repair
// protocol.
package shard

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// ProberOptions configures a Prober.
type ProberOptions struct {
	// Interval between probe rounds (default 2s).
	Interval time.Duration
	// Timeout bounds one probe call (default 1s).
	Timeout time.Duration
	// Failures is K: consecutive probe failures before a peer is
	// suspected (default 3).
	Failures int
}

// Prober drives the periodic health-probe loop for one cluster node.
type Prober struct {
	cl   *Cluster
	opts ProberOptions

	mu    sync.Mutex
	fails map[string]int

	cancel context.CancelFunc
	done   chan struct{}
}

// StartProber launches the probe loop and returns its handle. Close
// stops it.
func StartProber(cl *Cluster, opts ProberOptions) *Prober {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = time.Second
	}
	if opts.Failures <= 0 {
		opts.Failures = 3
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Prober{
		cl:     cl,
		opts:   opts,
		fails:  make(map[string]int),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go p.run(ctx)
	return p
}

// Close stops the probe loop and waits for it to exit.
func (p *Prober) Close() {
	p.cancel()
	<-p.done
}

func (p *Prober) run(ctx context.Context) {
	defer close(p.done)
	t := time.NewTicker(p.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.round(ctx)
		}
	}
}

// round probes every peer once, concurrently (a dead peer costs its
// probe Timeout; serial probing would let one dead peer delay
// suspicion of another).
func (p *Prober) round(ctx context.Context) {
	self := p.cl.Self()
	var wg sync.WaitGroup
	for _, m := range p.cl.Members() {
		if m == self {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			p.probe(ctx, peer)
		}(m)
	}
	wg.Wait()
}

func (p *Prober) probe(ctx context.Context, peer string) {
	p.cl.probes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, p.opts.Timeout)
	doc, err := p.cl.ProbeHealth(pctx, peer)
	cancel()
	if err != nil {
		p.cl.probeFailures.Add(1)
		p.mu.Lock()
		p.fails[peer]++
		n := p.fails[peer]
		p.mu.Unlock()
		if n == p.opts.Failures {
			if p.cl.Suspect(peer) {
				slog.Warn("shard: peer suspected", "peer", peer, "failures", n)
			}
		}
		return
	}
	p.mu.Lock()
	p.fails[peer] = 0
	p.mu.Unlock()
	if p.cl.Readmit(peer) {
		slog.Info("shard: peer readmitted", "peer", peer)
	}
	// Anti-entropy: a differing epoch or member-set hash means one of
	// us missed gossip. Pull the peer's view — AdoptMembership keeps it
	// only if actually newer; if OURS is newer the pull is a no-op and
	// the peer repairs itself when it probes us.
	ours := p.cl.Membership()
	if doc.Epoch != ours.Epoch || doc.Hash != ours.Hash() {
		actx, cancel := context.WithTimeout(ctx, p.opts.Timeout)
		if _, err := p.cl.PullMembership(actx, peer); err != nil {
			slog.Warn("shard: membership anti-entropy pull failed", "peer", peer, "err", err)
		}
		cancel()
	}
}
