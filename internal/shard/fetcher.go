// Fetcher plugs the artifact exchange into the engine: wired to
// engine.Options.Remote, it is consulted on every store miss and
// transfers the owning shard's disk-tier artifact image instead of
// recomputing it locally. Keys this node owns are never fetched (the
// owner is the node expected to compute them), and only kinds the
// codec can carry over the wire are attempted, so composite memory-only
// artifacts cost no round trip.
package shard

import (
	"context"
	"log/slog"
	"strconv"

	"repro/internal/engine"
	"repro/internal/obs"
)

// fetchableKinds lists the job-key prefixes (engine.JobKind) whose
// artifacts have a binary codec and are therefore worth a network
// round trip. "bench" composites are memory-only and reassembled
// cheaply from these stages, so they are deliberately absent.
var fetchableKinds = map[string]bool{
	"program": true,
	"emu":     true,
	"cfg":     true,
	"reach":   true,
	"table":   true,
	"heur":    true,
	"sim":     true,
}

// Fetcher implements engine.RemoteFetcher over a Cluster.
type Fetcher struct {
	cluster *Cluster
	codec   engine.Codec
}

// NewFetcher builds the engine remote-fetch hook for one node. The
// codec must match the one the peers' artifact endpoints encode with
// (in practice: internal/engine/codec.New on every node).
func NewFetcher(cluster *Cluster, codec engine.Codec) *Fetcher {
	return &Fetcher{cluster: cluster, codec: codec}
}

// Fetch walks the key's replica set — primary first, then each
// replica — asking each peer for the artifact image and decoding the
// first answer. Any exhausted attempt — unreachable owners, owner
// misses, corrupt images — is reported as a miss so the engine simply
// computes the artifact locally; a degraded cluster loses transfer
// efficiency, never answers.
//
// The caller's context contributes trace identity only: the network
// calls run detached from its cancellation (context.WithoutCancel),
// because the engine shares one in-flight fetch between every
// concurrent miss on the key — the first caller hanging up must not
// kill the fetch the others are still waiting on. The fetch client's
// own FetchTimeout bounds each attempt instead.
func (f *Fetcher) Fetch(ctx context.Context, key string) (any, bool) {
	kind := engine.JobKind(key)
	if !fetchableKinds[kind] {
		return nil, false
	}
	peers := make([]string, 0, f.cluster.Replicas())
	for _, n := range f.cluster.ReplicaSet(key) {
		if n != f.cluster.Self() {
			peers = append(peers, n)
		}
	}
	if len(peers) == 0 {
		return nil, false
	}
	span, ctx := obs.StartSpan(ctx, "fetch "+kind, obs.A("key", key))
	defer span.End()
	nctx := context.WithoutCancel(ctx)
	for i, peer := range peers {
		if v, ok := f.fetchFrom(nctx, span, key, peer, i > 0); ok {
			return v, true
		}
	}
	return nil, false
}

// fetchFrom attempts one peer. retried marks replica attempts (every
// peer after the first) for the retry counters.
func (f *Fetcher) fetchFrom(ctx context.Context, span *obs.Span, key, peer string, retried bool) (any, bool) {
	if retried {
		// The primary failed or missed; this is the bounded replica
		// retry, so back off first and count it.
		if !f.cluster.RetrySleep(ctx, key) {
			return nil, false
		}
	}
	wireKind, data, ok, err := f.cluster.FetchArtifact(ctx, peer, key)
	if retried {
		f.cluster.NoteRetry(err == nil && ok)
	}
	if err != nil {
		f.cluster.NoteFetchError(FetchErrTransport)
		span.SetAttr("outcome", "error")
		slog.Warn("shard: artifact fetch failed",
			"key", key, "peer", peer, "err", err, "trace", obs.TraceIDFrom(ctx))
		return nil, false
	}
	if !ok {
		f.cluster.fetchMisses.Add(1)
		span.SetAttr("outcome", "miss")
		return nil, false
	}
	v, err := f.codec.Decode(wireKind, data)
	if err != nil {
		f.cluster.NoteFetchError(FetchErrDecode)
		span.SetAttr("outcome", "error")
		slog.Warn("shard: fetched artifact image undecodable",
			"key", key, "kind", wireKind, "peer", peer, "err", err, "trace", obs.TraceIDFrom(ctx))
		return nil, false
	}
	f.cluster.remoteFetches.Add(1)
	span.SetAttr("outcome", "hit")
	span.SetAttr("peer", peer)
	span.SetAttr("bytes", strconv.Itoa(len(data)))
	return v, true
}
