// Fetcher plugs the artifact exchange into the engine: wired to
// engine.Options.Remote, it is consulted on every store miss and
// transfers the owning shard's disk-tier artifact image instead of
// recomputing it locally. Keys this node owns are never fetched (the
// owner is the node expected to compute them), and only kinds the
// codec can carry over the wire are attempted, so composite memory-only
// artifacts cost no round trip.
package shard

import (
	"context"
	"log/slog"
	"strconv"

	"repro/internal/engine"
	"repro/internal/obs"
)

// fetchableKinds lists the job-key prefixes (engine.JobKind) whose
// artifacts have a binary codec and are therefore worth a network
// round trip. "bench" composites are memory-only and reassembled
// cheaply from these stages, so they are deliberately absent.
var fetchableKinds = map[string]bool{
	"program": true,
	"emu":     true,
	"cfg":     true,
	"reach":   true,
	"table":   true,
	"heur":    true,
	"sim":     true,
}

// Fetcher implements engine.RemoteFetcher over a Cluster.
type Fetcher struct {
	cluster *Cluster
	codec   engine.Codec
}

// NewFetcher builds the engine remote-fetch hook for one node. The
// codec must match the one the peers' artifact endpoints encode with
// (in practice: internal/engine/codec.New on every node).
func NewFetcher(cluster *Cluster, codec engine.Codec) *Fetcher {
	return &Fetcher{cluster: cluster, codec: codec}
}

// Fetch asks the key's owning shard for the artifact image and decodes
// it. Any failure — unreachable owner, owner miss, corrupt image — is
// reported as a miss so the engine simply computes the artifact
// locally; a degraded cluster loses transfer efficiency, never
// answers.
//
// The caller's context contributes trace identity only: the network
// call runs detached from its cancellation (context.WithoutCancel),
// because the engine shares one in-flight fetch between every
// concurrent miss on the key — the first caller hanging up must not
// kill the fetch the others are still waiting on. The fetch client's
// own FetchTimeout bounds it instead.
func (f *Fetcher) Fetch(ctx context.Context, key string) (any, bool) {
	kind := engine.JobKind(key)
	if !fetchableKinds[kind] {
		return nil, false
	}
	owner := f.cluster.Owner(key)
	if owner == "" || owner == f.cluster.Self() {
		return nil, false
	}
	span, ctx := obs.StartSpan(ctx, "fetch "+kind, obs.A("key", key), obs.A("peer", owner))
	defer span.End()
	wireKind, data, ok, err := f.cluster.FetchArtifact(context.WithoutCancel(ctx), owner, key)
	if err != nil {
		f.cluster.fetchErrors.Add(1)
		span.SetAttr("outcome", "error")
		slog.Warn("shard: artifact fetch failed; computing locally",
			"key", key, "peer", owner, "err", err, "trace", obs.TraceIDFrom(ctx))
		return nil, false
	}
	if !ok {
		f.cluster.fetchMisses.Add(1)
		span.SetAttr("outcome", "miss")
		return nil, false
	}
	v, err := f.codec.Decode(wireKind, data)
	if err != nil {
		f.cluster.fetchErrors.Add(1)
		span.SetAttr("outcome", "error")
		slog.Warn("shard: fetched artifact image undecodable; computing locally",
			"key", key, "kind", wireKind, "peer", owner, "err", err, "trace", obs.TraceIDFrom(ctx))
		return nil, false
	}
	f.cluster.remoteFetches.Add(1)
	span.SetAttr("outcome", "hit")
	span.SetAttr("bytes", strconv.Itoa(len(data)))
	return v, true
}
