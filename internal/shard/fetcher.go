// Fetcher plugs the artifact exchange into the engine: wired to
// engine.Options.Remote, it is consulted on every store miss and
// transfers the owning shard's disk-tier artifact image instead of
// recomputing it locally. Keys this node owns are never fetched (the
// owner is the node expected to compute them), and only kinds the
// codec can carry over the wire are attempted, so composite memory-only
// artifacts cost no round trip.
package shard

import (
	"context"
	"log"

	"repro/internal/engine"
)

// fetchableKinds lists the job-key prefixes (engine.JobKind) whose
// artifacts have a binary codec and are therefore worth a network
// round trip. "bench" composites are memory-only and reassembled
// cheaply from these stages, so they are deliberately absent.
var fetchableKinds = map[string]bool{
	"program": true,
	"emu":     true,
	"cfg":     true,
	"reach":   true,
	"table":   true,
	"heur":    true,
	"sim":     true,
}

// Fetcher implements engine.RemoteFetcher over a Cluster.
type Fetcher struct {
	cluster *Cluster
	codec   engine.Codec
}

// NewFetcher builds the engine remote-fetch hook for one node. The
// codec must match the one the peers' artifact endpoints encode with
// (in practice: internal/engine/codec.New on every node).
func NewFetcher(cluster *Cluster, codec engine.Codec) *Fetcher {
	return &Fetcher{cluster: cluster, codec: codec}
}

// Fetch asks the key's owning shard for the artifact image and decodes
// it. Any failure — unreachable owner, owner miss, corrupt image — is
// reported as a miss so the engine simply computes the artifact
// locally; a degraded cluster loses transfer efficiency, never
// answers.
func (f *Fetcher) Fetch(key string) (any, bool) {
	if !fetchableKinds[engine.JobKind(key)] {
		return nil, false
	}
	owner := f.cluster.Owner(key)
	if owner == "" || owner == f.cluster.Self() {
		return nil, false
	}
	kind, data, ok, err := f.cluster.FetchArtifact(context.Background(), owner, key)
	if err != nil {
		f.cluster.fetchErrors.Add(1)
		log.Printf("shard: fetch %q from %s: %v (computing locally)", key, owner, err)
		return nil, false
	}
	if !ok {
		f.cluster.fetchMisses.Add(1)
		return nil, false
	}
	v, err := f.codec.Decode(kind, data)
	if err != nil {
		f.cluster.fetchErrors.Add(1)
		log.Printf("shard: decode fetched %q (%s) from %s: %v (computing locally)", key, kind, owner, err)
		return nil, false
	}
	f.cluster.remoteFetches.Add(1)
	return v, true
}
