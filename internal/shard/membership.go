// Live membership: the cluster's member list is no longer frozen at
// boot. A Membership is an epoch-numbered member set — every change
// (join, leave) bumps the epoch on the node that originates it and is
// gossiped to the rest of the cluster, and any node adopts a view that
// is strictly newer than its own. Two views with the same epoch are
// ordered by the hash of their member list, so concurrent changes
// converge on one deterministic winner (the loser's change is repaired
// by the operator or a retried join; full version-vector merging is
// out of scope for a cache cluster whose worst case is a recompute).
//
// Layered under the membership is SUSPICION, a purely local and
// temporary view: the health prober marks a peer that fails K
// consecutive probes as suspect, and the cluster excludes it from the
// EFFECTIVE ring — the one ownership and replica placement actually
// use — via Ring.Without, readmitting it the moment a probe succeeds.
// Suspicion never changes the membership epoch: a wobbling node moves
// no data and needs no operator action, it just stops receiving
// proxies until it answers probes again.
package shard

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"slices"
	"strings"
	"sync"
)

// Membership is an epoch-numbered member set — the unit of the
// join/leave gossip protocol. Members are normalized, sorted node
// URLs.
type Membership struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// Hash fingerprints the member set (order-independent: members are
// kept sorted). Used to order same-epoch views and to let the health
// probe detect membership drift without shipping the full list.
func (m Membership) Hash() string {
	sum := sha256.Sum256([]byte(strings.Join(m.Members, "\n")))
	return hex.EncodeToString(sum[:8])
}

// newerThan reports whether m should replace cur: strictly higher
// epoch, or same epoch with a lexicographically greater member-set
// hash (the deterministic tie-break every node agrees on).
func (m Membership) newerThan(cur Membership) bool {
	if m.Epoch != cur.Epoch {
		return m.Epoch > cur.Epoch
	}
	return m.Hash() > cur.Hash()
}

// ChangeReason tags an effective-ring change for the OnChange hook.
type ChangeReason string

const (
	// ChangeMembership: the member list itself changed (join, leave, or
	// adopted gossip) — the trigger for a re-replication sweep.
	ChangeMembership ChangeReason = "membership"
	// ChangeSuspect: a peer failed K consecutive probes and left the
	// effective ring.
	ChangeSuspect ChangeReason = "suspect"
	// ChangeReadmit: a suspected peer answered a probe and rejoined the
	// effective ring — also sweep-triggering, so replicas thinned while
	// it was out are repaired.
	ChangeReadmit ChangeReason = "readmit"
)

// Membership returns this node's current membership view.
func (c *Cluster) Membership() Membership {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Membership{Epoch: c.epoch, Members: slices.Clone(c.members)}
}

// Epoch returns the current membership epoch.
func (c *Cluster) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// RingVersion counts effective-ring rebuilds (membership changes AND
// suspicion/readmission). Tests poll it instead of sleeping.
func (c *Cluster) RingVersion() uint64 { return c.ringVersion.Load() }

// Suspects returns the currently suspected members, sorted.
func (c *Cluster) Suspects() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.suspects))
	for n := range c.suspects {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// OnChange registers the hook invoked (on its own goroutine) after
// every effective-ring change. At most one hook; the server uses it to
// schedule re-replication sweeps.
func (c *Cluster) OnChange(fn func(ChangeReason)) {
	c.mu.Lock()
	c.onChange = fn
	c.mu.Unlock()
}

// rebuildLocked recomputes the full and effective rings from the
// current members and suspects. Callers hold c.mu.
func (c *Cluster) rebuildLocked() {
	c.full = NewRing(c.members, c.vnodes)
	eff := c.full
	for n := range c.suspects {
		eff = eff.Without(n)
	}
	// Never exclude self: a fully-suspected view must still answer by
	// local compute, not route into the void.
	if eff.Len() == 0 {
		eff = NewRing([]string{c.self}, c.vnodes)
	}
	c.effective = eff
	c.ringVersion.Add(1)
}

// notify runs the change hook, if any. Called after c.mu is released.
func (c *Cluster) notify(reason ChangeReason) {
	c.mu.RLock()
	fn := c.onChange
	c.mu.RUnlock()
	if fn != nil {
		go fn(reason)
	}
}

// AdoptMembership installs ms if it is newer than the current view
// (always, when force is set — the join path, where the seed's answer
// is authoritative by construction). Reports whether the view changed.
func (c *Cluster) AdoptMembership(ms Membership, force bool) bool {
	norm := make([]string, 0, len(ms.Members))
	for _, m := range ms.Members {
		n, err := normalizeNode(m)
		if err != nil {
			return false
		}
		norm = append(norm, n)
	}
	slices.Sort(norm)
	norm = slices.Compact(norm)
	ms.Members = norm
	c.mu.Lock()
	cur := Membership{Epoch: c.epoch, Members: c.members}
	if len(ms.Members) == 0 || (!force && !ms.newerThan(cur)) {
		c.mu.Unlock()
		return false
	}
	c.epoch = ms.Epoch
	c.members = ms.Members
	// Drop suspicion state for departed members.
	for n := range c.suspects {
		if !slices.Contains(c.members, n) {
			delete(c.suspects, n)
		}
	}
	c.rebuildLocked()
	c.mu.Unlock()
	c.notify(ChangeMembership)
	return true
}

// AddMember adds node to the membership, bumping the epoch. Reports
// the resulting view and whether it changed (an existing member is an
// idempotent no-op — the rejoin-after-crash path).
func (c *Cluster) AddMember(node string) (Membership, bool, error) {
	n, err := normalizeNode(node)
	if err != nil {
		return Membership{}, false, err
	}
	c.mu.Lock()
	if slices.Contains(c.members, n) {
		ms := Membership{Epoch: c.epoch, Members: slices.Clone(c.members)}
		c.mu.Unlock()
		return ms, false, nil
	}
	c.members = append(slices.Clone(c.members), n)
	slices.Sort(c.members)
	c.epoch++
	c.rebuildLocked()
	ms := Membership{Epoch: c.epoch, Members: slices.Clone(c.members)}
	c.mu.Unlock()
	c.notify(ChangeMembership)
	return ms, true, nil
}

// RemoveMember removes node from the membership, bumping the epoch.
// Removing self leaves a single-member view (the departed node keeps
// answering standalone until it is shut down, rather than routing
// every request away from itself).
func (c *Cluster) RemoveMember(node string) (Membership, bool, error) {
	n, err := normalizeNode(node)
	if err != nil {
		return Membership{}, false, err
	}
	c.mu.Lock()
	if !slices.Contains(c.members, n) {
		ms := Membership{Epoch: c.epoch, Members: slices.Clone(c.members)}
		c.mu.Unlock()
		return ms, false, nil
	}
	rest := slices.DeleteFunc(slices.Clone(c.members), func(m string) bool { return m == n })
	if n == c.self || len(rest) == 0 {
		rest = []string{c.self}
	}
	c.members = rest
	delete(c.suspects, n)
	c.epoch++
	c.rebuildLocked()
	ms := Membership{Epoch: c.epoch, Members: slices.Clone(c.members)}
	c.mu.Unlock()
	c.breaker.forget(n)
	c.notify(ChangeMembership)
	return ms, true, nil
}

// Suspect excludes node from the effective ring (K probe failures —
// see Prober). Local and temporary: the membership epoch is untouched.
// Reports whether the node was newly suspected.
func (c *Cluster) Suspect(node string) bool {
	c.mu.Lock()
	if node == c.self || c.suspects[node] || !slices.Contains(c.members, node) {
		c.mu.Unlock()
		return false
	}
	c.suspects[node] = true
	c.rebuildLocked()
	c.mu.Unlock()
	c.suspicions.Add(1)
	c.notify(ChangeSuspect)
	return true
}

// Readmit returns a suspected node to the effective ring (a probe
// succeeded). Reports whether the node was suspected.
func (c *Cluster) Readmit(node string) bool {
	c.mu.Lock()
	if !c.suspects[node] {
		c.mu.Unlock()
		return false
	}
	delete(c.suspects, node)
	c.rebuildLocked()
	c.mu.Unlock()
	c.readmissions.Add(1)
	c.notify(ChangeReadmit)
	return true
}

// ReplicaSet returns the nodes owning key on the effective ring, in
// ring order: element 0 is the primary, the rest are replicas (R
// total, bounded by the live member count). Reads try the set in
// order; write-through replication targets every element.
func (c *Cluster) ReplicaSet(key string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.effective.OwnersN(key, c.replicas)
}

// Replicas returns the configured replication factor R.
func (c *Cluster) Replicas() int { return c.replicas }

// ReplicationDropped returns the cumulative count of write-through
// pushes shed by the replicator's full queue — the drop counter the
// server's repair tick watches to trigger a coalescing re-replication
// sweep (a drop otherwise leaves its key at R=1 until the next
// membership change).
func (c *Cluster) ReplicationDropped() uint64 { return c.replDropped.Load() }

// membershipPath is the gossip endpoint; joinPath/leavePath the
// operator-facing membership mutations.
const (
	membershipPath = "/v1/cluster/membership"
	joinPath       = "/v1/cluster/join"
	healthPath     = "/v1/cluster/health"
)

// JoinVia asks seed to admit this node to its cluster and adopts the
// membership the seed answers with. The boot path behind the -join
// flag: a new node starts with a single-member view and inherits the
// seed's.
func (c *Cluster) JoinVia(ctx context.Context, seed string) (Membership, error) {
	seedN, err := normalizeNode(seed)
	if err != nil {
		return Membership{}, err
	}
	body, err := json.Marshal(struct {
		Node string `json:"node"`
	}{Node: c.self})
	if err != nil {
		return Membership{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, seedN+joinPath, bytes.NewReader(body))
	if err != nil {
		return Membership{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.ctl.Do(req)
	if err != nil {
		return Membership{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Membership{}, fmt.Errorf("shard: join via %s: status %d", seedN, resp.StatusCode)
	}
	var ms Membership
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyLimit)).Decode(&ms); err != nil {
		return Membership{}, fmt.Errorf("shard: join via %s: %w", seedN, err)
	}
	if !slices.Contains(ms.Members, c.self) {
		return Membership{}, fmt.Errorf("shard: join via %s: returned membership omits self", seedN)
	}
	c.AdoptMembership(ms, true)
	return c.Membership(), nil
}

// LeaveVia announces this node's departure to peer, which removes it
// from the membership and gossips the change — the graceful-shutdown
// path. Best-effort: a failed leave just means the survivors suspect
// the node instead of removing it.
func (c *Cluster) LeaveVia(ctx context.Context, peer string) error {
	peerN, err := normalizeNode(peer)
	if err != nil {
		return err
	}
	body, _ := json.Marshal(struct {
		Node string `json:"node"`
	}{Node: c.self})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peerN+"/v1/cluster/leave", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.ctl.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: leave via %s: status %d", peerN, resp.StatusCode)
	}
	return nil
}

// Gossip pushes ms to every member except self and adopts any newer
// view a receiver answers with (the receiver may have seen a later
// change). Push failures are logged, not fatal: the prober's
// anti-entropy comparison repairs missed gossip on its next round.
func (c *Cluster) Gossip(ctx context.Context, ms Membership) {
	var wg sync.WaitGroup
	for _, m := range ms.Members {
		if m == c.self {
			continue
		}
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			if err := c.gossipTo(ctx, m, ms); err != nil {
				slog.Warn("shard: membership gossip failed", "peer", m, "epoch", ms.Epoch, "err", err)
			}
		}(m)
	}
	wg.Wait()
}

// gossipTo pushes ms to one peer and adopts the peer's answer if it is
// newer than ours.
func (c *Cluster) gossipTo(ctx context.Context, peer string, ms Membership) error {
	body, err := json.Marshal(ms)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+membershipPath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.ctl.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var theirs Membership
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyLimit)).Decode(&theirs); err != nil {
		return err
	}
	c.AdoptMembership(theirs, false)
	return nil
}

// PullMembership fetches peer's membership view and adopts it if
// newer — the anti-entropy path the prober takes when a health probe
// reports an epoch ahead of ours.
func (c *Cluster) PullMembership(ctx context.Context, peer string) (Membership, error) {
	var ms Membership
	if err := c.GetJSON(ctx, peer, membershipPath, &ms); err != nil {
		return Membership{}, err
	}
	c.AdoptMembership(ms, false)
	return ms, nil
}
