package shard

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine/codec"
	"repro/internal/linalg"
)

// TestFetcherWireContract runs the fetch path against a fake peer
// artifact endpoint: hit, miss, corrupt image, non-fetchable kind, and
// dead owner are all exercised from the client side (the server side
// lives in internal/server's cluster tests).
func TestFetcherWireContract(t *testing.T) {
	cod := codec.New()
	want := &linalg.Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2.5, -3, 4}}
	kind, img, ok, err := cod.Encode(want)
	if err != nil || !ok {
		t.Fatalf("encode fixture: ok=%v err=%v", ok, err)
	}

	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/artifacts" {
			http.NotFound(w, r)
			return
		}
		if r.Header.Get(ForwardedHeader) == "" {
			t.Errorf("artifact fetch must carry %s", ForwardedHeader)
		}
		key := r.URL.Query().Get("key")
		switch {
		case strings.HasPrefix(key, "reach/warm/"):
			w.Header().Set(ArtifactKindHeader, kind)
			w.Write(img)
		case strings.HasPrefix(key, "reach/corrupt/"):
			w.Header().Set(ArtifactKindHeader, kind)
			w.Write(img[:len(img)/2])
		default:
			http.Error(w, `{"error":"no such artifact"}`, http.StatusNotFound)
		}
	}))
	defer peer.Close()

	self := httptest.NewServer(http.NotFoundHandler())
	defer self.Close()
	cl, err := New(self.URL, []string{self.URL, peer.URL}, Options{VNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFetcher(cl, cod)

	// Ownership is a hash; synthesise a key under the given stem that
	// the peer owns so every case below actually crosses the wire.
	peerKey := func(stem string) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("%s%d", stem, i)
			if cl.Owner(k) == peer.URL {
				return k
			}
		}
	}
	selfKey := func(stem string) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("%s%d", stem, i)
			if cl.Owner(k) == cl.Self() {
				return k
			}
		}
	}

	if v, ok := f.Fetch(context.Background(), peerKey("reach/warm/")); !ok {
		t.Error("fetch of a warm peer artifact must hit")
	} else if got, isMat := v.(*linalg.Matrix); !isMat || got.Rows != 2 || got.Data[1] != 2.5 {
		t.Errorf("fetched artifact = %#v, want decoded matrix", v)
	}
	if _, ok := f.Fetch(context.Background(), peerKey("reach/cold/")); ok {
		t.Error("owner miss must report a local miss")
	}
	if _, ok := f.Fetch(context.Background(), peerKey("reach/corrupt/")); ok {
		t.Error("corrupt image must report a miss, not a decoded value")
	}
	// Under R=2 a key this node owns still has the peer in its replica
	// set, and a local miss consults it — the path that serves a
	// freshly-joined node's moved-arc keys warm from their old owner.
	if _, ok := f.Fetch(context.Background(), selfKey("reach/warm/")); !ok {
		t.Error("a self-owned key must fall through to its warm replica")
	}
	if _, ok := f.Fetch(context.Background(), peerKey("bench/composite/")); ok {
		t.Error("non-fetchable kinds must not cross the wire")
	}

	st := cl.Stats()
	if st.RemoteFetches != 2 || st.FetchMisses != 1 || st.FetchErrors != 1 {
		t.Errorf("stats = fetches %d, misses %d, errors %d; want 2, 1, 1",
			st.RemoteFetches, st.FetchMisses, st.FetchErrors)
	}
	if st.FetchErrorReasons["decode"] != 1 || st.FetchErrorReasons["transport"] != 0 {
		t.Errorf("fetch error reasons = %v; want exactly one decode", st.FetchErrorReasons)
	}

	// Unreachable owner: every key must degrade to a miss, not a wedge.
	peer.Close()
	if _, ok := f.Fetch(context.Background(), peerKey("reach/warm/")); ok {
		t.Error("fetch from a dead peer must miss, enabling local compute")
	}
}
