// Package shard turns spmt-server into a horizontally scalable
// cluster: a consistent-hash ring maps every engine artifact key to
// one owning node, an HTTP peer client proxies requests and exchanges
// disk-tier artifact images between shards, and a Fetcher plugs the
// exchange into the engine's store-miss path so a shard that needs a
// dependency another shard already computed transfers the artifact
// instead of recomputing it.
//
// Ownership is a pure function of (member set, key): every node of a
// cluster configured with the same member list computes the same owner
// for every key, with no coordination traffic. Membership change moves
// only the keys whose arc the joining/leaving node covers — about 1/N
// of the keyspace — which is what makes the disk tier's content-keyed
// artifact files a practical transfer unit during resharding.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"slices"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when Options
// leaves it zero. 128 points per node keeps the largest arc within a
// few percent of the mean, so load and remap fractions track 1/N
// closely.
const DefaultVNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node names
// (URLs, for the HTTP cluster). The zero Ring is not usable; build one
// with NewRing. A Ring is safe for concurrent use.
type Ring struct {
	vnodes int
	nodes  []string
	points []point
}

// hashKey positions an artifact key (or virtual node label) on the
// ring. sha256 rather than a cheap multiplicative hash: ring balance
// is a direct function of hash uniformity, and the cost is noise next
// to the work being routed.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given nodes with vnodes virtual nodes
// each (vnodes <= 0 selects DefaultVNodes). Duplicate node names are
// collapsed; the ring is identical for any input order. An empty node
// list yields a ring whose Owner returns "".
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := slices.Clone(nodes)
	sort.Strings(uniq)
	uniq = slices.Compact(uniq)
	r := &Ring{
		vnodes: vnodes,
		nodes:  uniq,
		points: make([]point, 0, len(uniq)*vnodes),
	}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: hashKey(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	// Ties broken by node name so two members with a colliding virtual
	// hash still agree on ownership everywhere.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string { return slices.Clone(r.nodes) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the node owning key: the first virtual node at or
// after the key's hash, wrapping at the top of the ring. An empty ring
// owns nothing and returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// OwnersN returns the first n DISTINCT nodes at or after the key's
// hash, wrapping at the top of the ring — the key's replica set:
// element 0 is the primary (identical to Owner), element 1 the next
// distinct node, and so on. Fewer than n members yields all of them in
// ring order. Removing a member from the ring deletes exactly its
// entries from this sequence (the property the re-replication sweep
// and the degraded read path rely on): every surviving element keeps
// its relative order, and the set gains only the next distinct node
// off the end.
func (r *Ring) OwnersN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	for j := 0; j < len(r.points) && len(owners) < n; j++ {
		node := r.points[(i+j)%len(r.points)].node
		if !slices.Contains(owners, node) {
			owners = append(owners, node)
		}
	}
	return owners
}

// Without returns a ring over the members minus the given node — the
// ownership map a cluster converges to when that node leaves. Keys the
// departed node did not own keep their owner; only its arc remaps.
func (r *Ring) Without(node string) *Ring {
	rest := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			rest = append(rest, n)
		}
	}
	return NewRing(rest, r.vnodes)
}
