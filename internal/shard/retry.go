// Retry discipline for peer calls: transient failures (transport
// errors, 5xx) earn ONE bounded retry against the key's replica after
// a jittered backoff, then the caller falls back to local compute.
// One retry, not a loop: the replica either has the artifact warm or
// local compute is the faster answer — a cache cluster's worst case is
// a recompute, never data loss, so aggressive retrying only adds
// latency.
package shard

import (
	"context"
	"time"
)

// TransientStatus reports whether an HTTP status from a peer marks a
// transient failure worth one replica retry (the peer is up but
// failing). 4xx answers are authoritative and relayed, not retried.
func TransientStatus(code int) bool { return code >= 500 }

// RetrySleep blocks for the jittered retry backoff — a delay in
// [base/2, base) derived deterministically from the key, so concurrent
// retries for different keys spread out while tests stay repeatable —
// and reports whether the caller should proceed (false: the context
// was cancelled first).
func (c *Cluster) RetrySleep(ctx context.Context, key string) bool {
	base := c.retryBackoff
	half := base / 2
	if half <= 0 {
		half = time.Millisecond
	}
	d := half + time.Duration(hashKey(key+"#retry")%uint64(half))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
