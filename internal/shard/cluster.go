// Cluster state and the HTTP peer client: forwarding whole requests to
// a key's owner and fetching individual artifact images between
// shards. All counters are atomic; one Cluster is shared by the server
// handlers and the engine's remote-fetch hook.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ForwardedHeader marks intra-cluster requests (value: the sender's
// node URL). A forwarded request is never re-routed: the receiver
// computes it locally, which both implements "owned work runs locally"
// and makes routing loops impossible even when two nodes briefly
// disagree about membership.
const ForwardedHeader = "X-Spmt-Forwarded"

// ArtifactKindHeader carries the codec kind tag of an artifact image
// served by GET /v1/artifacts.
const ArtifactKindHeader = "X-Spmt-Artifact-Kind"

// maxArtifactBytes bounds one fetched artifact image (traces dominate;
// a full-size trace is tens of MB). Guards the fetcher against a
// misbehaving peer, not against legitimate artifacts.
const maxArtifactBytes = 1 << 31

// FallbackReason distinguishes why a proxied request or fanned-out
// sub-batch was answered by local compute instead of its owner. The
// causes degrade differently — a transport error means the owner is
// down or partitioned, a 5xx means it is up but failing, a mid-body
// failure means it died streaming — so they are counted separately
// (metric label "reason") rather than collapsed into one counter.
type FallbackReason string

const (
	// FallbackTransport: the connection failed (dial, reset, timeout)
	// before a status line arrived.
	FallbackTransport FallbackReason = "transport"
	// FallbackStatus: the owner answered with a 5xx.
	FallbackStatus FallbackReason = "status"
	// FallbackBody: the owner's response died mid-body (proxy copy
	// failed after headers were committed).
	FallbackBody FallbackReason = "body"
	// FallbackStream: a fanned-out batch sub-stream ended early or
	// carried malformed lines, so the missing specs were recomputed.
	FallbackStream FallbackReason = "stream"
)

// Options configures a Cluster.
type Options struct {
	// VNodes is the virtual-node count per member (<= 0 selects
	// DefaultVNodes).
	VNodes int
	// FetchTimeout bounds one artifact-image fetch (default 30s).
	FetchTimeout time.Duration
	// ProxyHeaderTimeout bounds how long a forwarded request waits for
	// the owner's response HEADERS (default 5m) — the guard against an
	// owner that is wedged but still accepting connections. Forwarded
	// requests carry no overall timeout (batch sub-streams and
	// full-size figure sweeps are legitimately slow, and the caller's
	// request context already cancels an abandoned proxy); a request
	// whose owner computes longer than this before its first byte
	// simply falls back to local compute — correct, just duplicated
	// work.
	ProxyHeaderTimeout time.Duration
}

// Stats is a point-in-time snapshot of one node's shard activity,
// exposed under "shard" in /v1/stats.
type Stats struct {
	Self    string   `json:"self"`
	Members []string `json:"members"`
	VNodes  int      `json:"vnodes"`
	// Proxied counts requests forwarded to their owning shard;
	// ProxyFallbacks counts forwards that failed and were answered by
	// local compute instead (degraded-cluster path), with
	// ProxyFallbackReasons splitting the total by FallbackReason.
	Proxied              uint64            `json:"proxied"`
	ProxyFallbacks       uint64            `json:"proxy_fallbacks"`
	ProxyFallbackReasons map[string]uint64 `json:"proxy_fallback_reasons,omitempty"`
	// BatchFanouts counts sub-batches sent to owning shards;
	// BatchFallbackSpecs counts batch specs recomputed locally after a
	// sub-batch failed or its stream came back incomplete, split by
	// reason in BatchFallbackReasons.
	BatchFanouts         uint64            `json:"batch_fanouts"`
	BatchFallbackSpecs   uint64            `json:"batch_fallback_specs"`
	BatchFallbackReasons map[string]uint64 `json:"batch_fallback_reasons,omitempty"`
	// RemoteFetches counts artifact images fetched from owning shards
	// on store miss; FetchMisses counts fetch attempts the owner could
	// not serve (it had not computed the artifact either);
	// FetchErrors counts transport/decode failures.
	RemoteFetches uint64 `json:"remote_fetches"`
	FetchMisses   uint64 `json:"fetch_misses"`
	FetchErrors   uint64 `json:"fetch_errors"`
	// ArtifactsServed counts artifact images this node served to
	// peers.
	ArtifactsServed uint64 `json:"artifacts_served"`
}

// Cluster is one node's view of the shard cluster: the (fixed) member
// ring, this node's own URL, and the peer HTTP client. Safe for
// concurrent use.
type Cluster struct {
	self  string
	ring  *Ring
	proxy *http.Client
	fetch *http.Client

	proxied            atomic.Uint64
	proxyFallbacks     atomic.Uint64
	batchFanouts       atomic.Uint64
	batchFallbackSpecs atomic.Uint64
	remoteFetches      atomic.Uint64
	fetchMisses        atomic.Uint64
	fetchErrors        atomic.Uint64
	artifactsServed    atomic.Uint64

	// Reason splits are mutex-guarded maps rather than per-reason
	// atomics: fallbacks are the degraded path, orders of magnitude
	// rarer than the atomic counters above.
	reasonMu            sync.Mutex
	proxyFallbackReason map[FallbackReason]uint64
	batchFallbackReason map[FallbackReason]uint64
}

// normalizeNode validates and canonicalises one member URL.
func normalizeNode(raw string) (string, error) {
	s := strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("shard: bad node URL %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("shard: node URL %q must be http(s)://host[:port]", raw)
	}
	return s, nil
}

// New builds one node's cluster view. self must appear in members
// (URLs are compared after trimming trailing slashes); every node of
// the cluster must be configured with the same member list, or their
// ownership maps disagree and requests bounce through the forwarded
// fallback instead of being served by their owner.
func New(self string, members []string, opts Options) (*Cluster, error) {
	selfN, err := normalizeNode(self)
	if err != nil {
		return nil, err
	}
	norm := make([]string, 0, len(members))
	found := false
	for _, m := range members {
		n, err := normalizeNode(m)
		if err != nil {
			return nil, err
		}
		norm = append(norm, n)
		found = found || n == selfN
	}
	if !found {
		return nil, fmt.Errorf("shard: self %q is not in the member list %v", selfN, norm)
	}
	if opts.FetchTimeout <= 0 {
		opts.FetchTimeout = 30 * time.Second
	}
	if opts.ProxyHeaderTimeout <= 0 {
		opts.ProxyHeaderTimeout = 5 * time.Minute
	}
	// Forwards carry no overall timeout (the owner may legitimately
	// compute for minutes), but the connect and header phases must be
	// bounded: a partitioned owner that drops packets, or one that is
	// wedged while its socket keeps accepting, would otherwise stall a
	// routed request indefinitely instead of triggering the
	// local-compute fallback.
	dial := (&net.Dialer{Timeout: 5 * time.Second}).DialContext
	return &Cluster{
		self:                selfN,
		proxyFallbackReason: make(map[FallbackReason]uint64),
		batchFallbackReason: make(map[FallbackReason]uint64),
		ring:                NewRing(norm, opts.VNodes),
		proxy: &http.Client{Transport: &http.Transport{
			DialContext:           dial,
			ResponseHeaderTimeout: opts.ProxyHeaderTimeout,
		}},
		fetch: &http.Client{Transport: &http.Transport{DialContext: dial}, Timeout: opts.FetchTimeout},
	}, nil
}

// Self returns this node's URL.
func (c *Cluster) Self() string { return c.self }

// Members returns the member URLs, sorted.
func (c *Cluster) Members() []string { return c.ring.Nodes() }

// Ring returns the ownership ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner returns the node owning the artifact key.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Owns reports whether this node owns the artifact key.
func (c *Cluster) Owns(key string) bool { return c.ring.Owner(key) == c.self }

// Stats snapshots the shard counters.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Self:               c.self,
		Members:            c.ring.Nodes(),
		VNodes:             c.ring.VNodes(),
		Proxied:            c.proxied.Load(),
		ProxyFallbacks:     c.proxyFallbacks.Load(),
		BatchFanouts:       c.batchFanouts.Load(),
		BatchFallbackSpecs: c.batchFallbackSpecs.Load(),
		RemoteFetches:      c.remoteFetches.Load(),
		FetchMisses:        c.fetchMisses.Load(),
		FetchErrors:        c.fetchErrors.Load(),
		ArtifactsServed:    c.artifactsServed.Load(),
	}
	c.reasonMu.Lock()
	if len(c.proxyFallbackReason) > 0 {
		s.ProxyFallbackReasons = make(map[string]uint64, len(c.proxyFallbackReason))
		for r, n := range c.proxyFallbackReason {
			s.ProxyFallbackReasons[string(r)] = n
		}
	}
	if len(c.batchFallbackReason) > 0 {
		s.BatchFallbackReasons = make(map[string]uint64, len(c.batchFallbackReason))
		for r, n := range c.batchFallbackReason {
			s.BatchFallbackReasons[string(r)] = n
		}
	}
	c.reasonMu.Unlock()
	return s
}

// NoteProxyFallback records a failed forward answered locally.
func (c *Cluster) NoteProxyFallback(reason FallbackReason) {
	c.proxyFallbacks.Add(1)
	c.reasonMu.Lock()
	c.proxyFallbackReason[reason]++
	c.reasonMu.Unlock()
}

// NoteBatchFanout records one sub-batch sent to an owning shard.
func (c *Cluster) NoteBatchFanout() { c.batchFanouts.Add(1) }

// NoteBatchFallback records n batch specs recomputed locally.
func (c *Cluster) NoteBatchFallback(n int, reason FallbackReason) {
	if n <= 0 {
		return
	}
	c.batchFallbackSpecs.Add(uint64(n))
	c.reasonMu.Lock()
	c.batchFallbackReason[reason] += uint64(n)
	c.reasonMu.Unlock()
}

// NoteArtifactServed records one artifact image served to a peer.
func (c *Cluster) NoteArtifactServed() { c.artifactsServed.Add(1) }

// setTraceHeader propagates the context's trace ID onto an
// intra-cluster request, so the spans the peer records land in the
// same trace the entry node started and the stitcher can find them.
func setTraceHeader(ctx context.Context, req *http.Request) {
	if id := obs.TraceIDFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
}

// Forward sends the (already-read) request body to node's
// path-and-query, marked with ForwardedHeader so the receiver computes
// locally. The caller owns the returned response and must close its
// body; a nil response with an error means the node was unreachable
// and the caller should fall back to local compute.
func (c *Cluster) Forward(ctx context.Context, node, method, pathQuery string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, node+pathQuery, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	setTraceHeader(ctx, req)
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.proxy.Do(req)
	if err != nil {
		return nil, err
	}
	c.proxied.Add(1)
	return resp, nil
}

// GetJSON fetches node's path and decodes the JSON response into v
// (used by the cluster-aggregate stats view).
func (c *Cluster) GetJSON(ctx context.Context, node, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set(ForwardedHeader, c.self)
	setTraceHeader(ctx, req)
	resp, err := c.fetch.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: %s%s: status %d", node, path, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxArtifactBytes)).Decode(v)
}

// FetchArtifact asks node for the encoded image of the artifact under
// key. ok=false with a nil error means the node answered but does not
// hold the artifact (or its type is memory-only).
func (c *Cluster) FetchArtifact(ctx context.Context, node, key string) (kind string, data []byte, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		node+"/v1/artifacts?key="+url.QueryEscape(key), nil)
	if err != nil {
		return "", nil, false, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	setTraceHeader(ctx, req)
	resp, err := c.fetch.Do(req)
	if err != nil {
		return "", nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return "", nil, false, nil
	default:
		return "", nil, false, fmt.Errorf("shard: fetch %q from %s: status %d", key, node, resp.StatusCode)
	}
	kind = resp.Header.Get(ArtifactKindHeader)
	if kind == "" {
		return "", nil, false, fmt.Errorf("shard: fetch %q from %s: missing %s header", key, node, ArtifactKindHeader)
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes))
	if err != nil {
		return "", nil, false, err
	}
	return kind, data, true, nil
}
