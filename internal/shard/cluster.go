// Cluster state and the HTTP peer client: forwarding whole requests to
// a key's owner, exchanging individual artifact images between shards
// (pull on store miss, push for R=2 write-through replication), and
// the control-plane calls behind live membership (join, leave, gossip,
// health). All counters are atomic; one Cluster is shared by the
// server handlers, the engine's remote-fetch hook, the write-through
// replicator, and the health prober.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ForwardedHeader marks intra-cluster requests (value: the sender's
// node URL). A forwarded request is never re-routed: the receiver
// computes it locally, which both implements "owned work runs locally"
// and makes routing loops impossible even when two nodes briefly
// disagree about membership.
const ForwardedHeader = "X-Spmt-Forwarded"

// DeadlineHeader carries a request's remaining time budget, in whole
// milliseconds, across cluster hops. The entry node mints it (from
// the caller's deadline or -default-deadline), every Forward/fetch
// leg re-derives it from the sender's context — so it shrinks
// naturally at each hop — and the receiver applies it as a context
// deadline, cancelling engine work the moment the budget is spent.
const DeadlineHeader = "X-Spmt-Deadline"

// ArtifactKindHeader carries the codec kind tag of an artifact image
// served by GET /v1/artifacts (and pushed by PUT /v1/artifacts).
const ArtifactKindHeader = "X-Spmt-Artifact-Kind"

// MaxArtifactBytes bounds one fetched or pushed artifact image (traces
// dominate; a full-size trace is tens of MB). Guards against a
// misbehaving peer, not against legitimate artifacts. 1<<31 - 1 rather
// than 1<<31: the bound must stay a representable int on 32-bit
// builds, where 1<<31 overflows.
const MaxArtifactBytes = 1<<31 - 1

// maxBodyLimit bounds a control-plane JSON body (membership views,
// health documents — all tiny).
const maxBodyLimit = 1 << 20

// DefaultReplicas is the replication factor R when Options leaves it
// zero: every key has a primary and one next-distinct-node replica, so
// any single member loss leaves every previously-computed artifact
// warm somewhere.
const DefaultReplicas = 2

// FallbackReason distinguishes why a proxied request or fanned-out
// sub-batch was answered by local compute instead of its owner. The
// causes degrade differently — a transport error means the owner is
// down or partitioned, a 5xx means it is up but failing, a mid-body
// failure means it died streaming — so they are counted separately
// (metric label "reason") rather than collapsed into one counter.
type FallbackReason string

const (
	// FallbackTransport: the connection failed (dial, reset, timeout)
	// before a status line arrived.
	FallbackTransport FallbackReason = "transport"
	// FallbackStatus: the owner answered with a 5xx.
	FallbackStatus FallbackReason = "status"
	// FallbackBody: the owner's response died mid-body (proxy copy
	// failed after headers were committed).
	FallbackBody FallbackReason = "body"
	// FallbackStream: a fanned-out batch sub-stream ended early or
	// carried malformed lines, so the missing specs were recomputed.
	FallbackStream FallbackReason = "stream"
)

// FetchErrorReason splits artifact-fetch failures the way proxy
// fallbacks already are: a transport failure (unreachable peer, bad
// status, missing kind header) degrades differently from a decode
// failure (the peer is up but shipping corrupt images).
type FetchErrorReason string

const (
	FetchErrTransport FetchErrorReason = "transport"
	FetchErrDecode    FetchErrorReason = "decode"
)

// Options configures a Cluster.
type Options struct {
	// VNodes is the virtual-node count per member (<= 0 selects
	// DefaultVNodes).
	VNodes int
	// Replicas is the replication factor R: each key is owned by its
	// primary plus R-1 next-distinct ring nodes, write-through pushes
	// artifacts to all of them, and degraded reads walk the set in
	// order (<= 0 selects DefaultReplicas; 1 disables replication).
	Replicas int
	// FetchTimeout bounds one artifact-image fetch or push (default
	// 30s).
	FetchTimeout time.Duration
	// DialTimeout bounds the connect phase of every peer call (default
	// 5s).
	DialTimeout time.Duration
	// CtlTimeout bounds one control-plane call — gossip, join, leave,
	// membership pull (default 5s). Health probes carry their own
	// per-probe deadline (ProberOptions.Timeout).
	CtlTimeout time.Duration
	// RetryBackoff is the base delay before the single bounded retry a
	// transiently-failed peer call gets against the key's replica; the
	// actual delay is jittered in [base/2, base) (default 50ms).
	RetryBackoff time.Duration
	// ProxyHeaderTimeout bounds how long a forwarded request waits for
	// the owner's response HEADERS (default 5m) — the guard against an
	// owner that is wedged but still accepting connections. Forwarded
	// requests carry no overall timeout (batch sub-streams and
	// full-size figure sweeps are legitimately slow, and the caller's
	// request context already cancels an abandoned proxy); a request
	// whose owner computes longer than this before its first byte
	// simply falls back to local compute — correct, just duplicated
	// work.
	ProxyHeaderTimeout time.Duration
	// BreakerFailures is the consecutive transport/5xx failure count
	// that opens a peer's circuit breaker (0 selects the default 5;
	// < 0 disables the breaker entirely).
	BreakerFailures int
	// BreakerCooldown is how long an open circuit fast-fails before
	// admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// WrapTransport, when set, wraps every peer HTTP transport (proxy,
	// fetch, control-plane) — the seam the fault injector uses to
	// impose peer errors, latency, and hangs without touching
	// production call sites.
	WrapTransport func(http.RoundTripper) http.RoundTripper
}

// ReplicationStats is the R=2 write-through and re-replication view,
// exposed under shard.replication in /v1/stats.
type ReplicationStats struct {
	// Pushed counts artifact images pushed to replica owners (write-
	// through and sweep combined); PushErrors counts failed pushes;
	// PushSkipped counts sweep pushes skipped because the target
	// already held the key; Dropped counts write-through pushes shed
	// because the async queue was full (a later sweep repairs them).
	Pushed      uint64 `json:"pushed"`
	PushErrors  uint64 `json:"push_errors"`
	PushSkipped uint64 `json:"push_skipped"`
	Dropped     uint64 `json:"dropped"`
	// Pending gauges write-through pushes accepted but not yet
	// delivered (queued + in flight) — zero means replication has
	// quiesced.
	Pending int64 `json:"pending"`
	// Received counts images peers pushed to this node and stored;
	// ReceivedDuplicate counts pushes for keys already resident.
	Received          uint64 `json:"received"`
	ReceivedDuplicate uint64 `json:"received_duplicate"`
	// Sweeps counts completed re-replication sweeps; SweepKeys the
	// store keys they scanned; SweepPushed/SweepErrors their push
	// outcomes; LastSweepEpoch the membership epoch of the most recent
	// completed sweep.
	Sweeps         uint64 `json:"sweeps"`
	SweepKeys      uint64 `json:"sweep_keys"`
	SweepPushed    uint64 `json:"sweep_pushed"`
	SweepErrors    uint64 `json:"sweep_errors"`
	LastSweepEpoch uint64 `json:"last_sweep_epoch"`
}

// Stats is a point-in-time snapshot of one node's shard activity,
// exposed under "shard" in /v1/stats.
type Stats struct {
	Self    string   `json:"self"`
	Members []string `json:"members"`
	VNodes  int      `json:"vnodes"`
	// Epoch is the membership version; RingVersion counts effective-
	// ring rebuilds (membership changes plus suspicion/readmission) —
	// the stat timing-sensitive tests poll instead of sleeping.
	// Suspects lists members currently excluded from the effective
	// ring by the health prober.
	Epoch       uint64   `json:"epoch"`
	RingVersion uint64   `json:"ring_version"`
	Replicas    int      `json:"replicas"`
	Suspects    []string `json:"suspects,omitempty"`
	// Probes/ProbeFailures count health probes sent and failed;
	// Suspicions/Readmissions count effective-ring exclusions and
	// recoveries.
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	Suspicions    uint64 `json:"suspicions"`
	Readmissions  uint64 `json:"readmissions"`
	// PeerRetries counts transiently-failed peer calls retried against
	// the key's replica; PeerRetrySuccesses the retries that answered.
	PeerRetries        uint64 `json:"peer_retries"`
	PeerRetrySuccesses uint64 `json:"peer_retry_successes"`
	// Proxied counts requests forwarded to their owning shard;
	// ProxyFallbacks counts forwards that failed and were answered by
	// local compute instead (degraded-cluster path), with
	// ProxyFallbackReasons splitting the total by FallbackReason.
	Proxied              uint64            `json:"proxied"`
	ProxyFallbacks       uint64            `json:"proxy_fallbacks"`
	ProxyFallbackReasons map[string]uint64 `json:"proxy_fallback_reasons,omitempty"`
	// BatchFanouts counts sub-batches sent to owning shards;
	// BatchFallbackSpecs counts batch specs recomputed locally after a
	// sub-batch failed or its stream came back incomplete, split by
	// reason in BatchFallbackReasons.
	BatchFanouts         uint64            `json:"batch_fanouts"`
	BatchFallbackSpecs   uint64            `json:"batch_fallback_specs"`
	BatchFallbackReasons map[string]uint64 `json:"batch_fallback_reasons,omitempty"`
	// RemoteFetches counts artifact images fetched from owning shards
	// on store miss; FetchMisses counts fetch attempts the owner could
	// not serve (it had not computed the artifact either);
	// FetchErrors counts transport/decode failures in total, split by
	// FetchErrorReason in FetchErrorReasons.
	RemoteFetches     uint64            `json:"remote_fetches"`
	FetchMisses       uint64            `json:"fetch_misses"`
	FetchErrors       uint64            `json:"fetch_errors"`
	FetchErrorReasons map[string]uint64 `json:"fetch_error_reasons,omitempty"`
	// ArtifactsServed counts artifact images this node served to
	// peers.
	ArtifactsServed uint64 `json:"artifacts_served"`
	// Replication is the R=2 write-through / sweep view.
	Replication ReplicationStats `json:"replication"`
	// Breaker is the per-peer circuit-breaker view.
	Breaker BreakerStats `json:"breaker"`
}

// Cluster is one node's view of the shard cluster: the live member
// ring, this node's own URL, and the peer HTTP clients. Safe for
// concurrent use.
type Cluster struct {
	self         string
	vnodes       int
	replicas     int
	retryBackoff time.Duration
	proxy        *http.Client
	fetch        *http.Client
	ctl          *http.Client
	breaker      *breaker

	// mu guards the membership view: the member list, the full ring
	// over it, the suspect set, and the effective ring (full minus
	// suspects) that ownership and replica placement actually use.
	mu        sync.RWMutex
	epoch     uint64
	members   []string
	suspects  map[string]bool
	full      *Ring
	effective *Ring
	onChange  func(ChangeReason)

	ringVersion atomic.Uint64

	proxied            atomic.Uint64
	proxyFallbacks     atomic.Uint64
	batchFanouts       atomic.Uint64
	batchFallbackSpecs atomic.Uint64
	remoteFetches      atomic.Uint64
	fetchMisses        atomic.Uint64
	fetchErrors        atomic.Uint64
	artifactsServed    atomic.Uint64

	probes        atomic.Uint64
	probeFailures atomic.Uint64
	suspicions    atomic.Uint64
	readmissions  atomic.Uint64
	retries       atomic.Uint64
	retryHits     atomic.Uint64

	replPushed      atomic.Uint64
	replPushErrors  atomic.Uint64
	replPushSkipped atomic.Uint64
	replDropped     atomic.Uint64
	replPending     atomic.Int64
	replReceived    atomic.Uint64
	replDuplicate   atomic.Uint64
	sweeps          atomic.Uint64
	sweepKeys       atomic.Uint64
	sweepPushed     atomic.Uint64
	sweepErrors     atomic.Uint64
	lastSweepEpoch  atomic.Uint64

	// Reason splits are mutex-guarded maps rather than per-reason
	// atomics: fallbacks are the degraded path, orders of magnitude
	// rarer than the atomic counters above.
	reasonMu            sync.Mutex
	proxyFallbackReason map[FallbackReason]uint64
	batchFallbackReason map[FallbackReason]uint64
	fetchErrorReason    map[FetchErrorReason]uint64
}

// normalizeNode validates and canonicalises one member URL.
func normalizeNode(raw string) (string, error) {
	s := strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("shard: bad node URL %q: %w", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("shard: node URL %q must be http(s)://host[:port]", raw)
	}
	return s, nil
}

// New builds one node's cluster view over the boot-time member list
// (membership epoch 1). self must appear in members (URLs are compared
// after trimming trailing slashes). Unlike the frozen-ring versions of
// this package, members is only the STARTING view: joins, leaves, and
// gossip move it forward, and the health prober may temporarily
// exclude unresponsive peers from the effective ring. A node booting
// with only itself can acquire the rest via JoinVia.
func New(self string, members []string, opts Options) (*Cluster, error) {
	selfN, err := normalizeNode(self)
	if err != nil {
		return nil, err
	}
	norm := make([]string, 0, len(members))
	found := false
	for _, m := range members {
		n, err := normalizeNode(m)
		if err != nil {
			return nil, err
		}
		norm = append(norm, n)
		found = found || n == selfN
	}
	if !found {
		return nil, fmt.Errorf("shard: self %q is not in the member list %v", selfN, norm)
	}
	if opts.FetchTimeout <= 0 {
		opts.FetchTimeout = 30 * time.Second
	}
	if opts.ProxyHeaderTimeout <= 0 {
		opts.ProxyHeaderTimeout = 5 * time.Minute
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.CtlTimeout <= 0 {
		opts.CtlTimeout = 5 * time.Second
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	if opts.Replicas <= 0 {
		opts.Replicas = DefaultReplicas
	}
	vn := opts.VNodes
	if vn <= 0 {
		vn = DefaultVNodes
	}
	// Forwards carry no overall timeout (the owner may legitimately
	// compute for minutes), but the connect and header phases must be
	// bounded: a partitioned owner that drops packets, or one that is
	// wedged while its socket keeps accepting, would otherwise stall a
	// routed request indefinitely instead of triggering the
	// local-compute fallback. Fetches, pushes, and control-plane calls
	// additionally carry explicit total deadlines — they move bounded
	// payloads.
	dial := (&net.Dialer{Timeout: opts.DialTimeout}).DialContext
	c := &Cluster{
		self:                selfN,
		vnodes:              vn,
		replicas:            opts.Replicas,
		retryBackoff:        opts.RetryBackoff,
		suspects:            make(map[string]bool),
		proxyFallbackReason: make(map[FallbackReason]uint64),
		batchFallbackReason: make(map[FallbackReason]uint64),
		fetchErrorReason:    make(map[FetchErrorReason]uint64),
		proxy: &http.Client{Transport: &http.Transport{
			DialContext:           dial,
			ResponseHeaderTimeout: opts.ProxyHeaderTimeout,
		}},
		fetch: &http.Client{Transport: &http.Transport{DialContext: dial}, Timeout: opts.FetchTimeout},
		ctl:   &http.Client{Transport: &http.Transport{DialContext: dial}, Timeout: opts.CtlTimeout},
	}
	bf := opts.BreakerFailures
	if bf == 0 {
		bf = 5
	}
	c.breaker = newBreaker(bf, opts.BreakerCooldown)
	if opts.WrapTransport != nil {
		c.proxy.Transport = opts.WrapTransport(c.proxy.Transport)
		c.fetch.Transport = opts.WrapTransport(c.fetch.Transport)
		c.ctl.Transport = opts.WrapTransport(c.ctl.Transport)
	}
	c.epoch = 1
	c.members = NewRing(norm, 1).Nodes() // sorted, deduped
	c.rebuildLocked()
	return c, nil
}

// Self returns this node's URL.
func (c *Cluster) Self() string { return c.self }

// Members returns the current member URLs, sorted.
func (c *Cluster) Members() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.full.Nodes()
}

// Ring returns the current EFFECTIVE ownership ring (members minus
// suspects). The returned ring is immutable; callers needing a
// consistent multi-key view should hold onto one snapshot.
func (c *Cluster) Ring() *Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.effective
}

// Owner returns the node owning the artifact key on the effective
// ring.
func (c *Cluster) Owner(key string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.effective.Owner(key)
}

// Owns reports whether this node owns the artifact key.
func (c *Cluster) Owns(key string) bool { return c.Owner(key) == c.self }

// RetryBackoff returns the base delay for the bounded replica retry.
func (c *Cluster) RetryBackoff() time.Duration { return c.retryBackoff }

// Stats snapshots the shard counters.
func (c *Cluster) Stats() Stats {
	c.mu.RLock()
	members := c.full.Nodes()
	epoch := c.epoch
	vnodes := c.vnodes
	c.mu.RUnlock()
	s := Stats{
		Self:               c.self,
		Members:            members,
		VNodes:             vnodes,
		Epoch:              epoch,
		RingVersion:        c.ringVersion.Load(),
		Replicas:           c.replicas,
		Suspects:           c.Suspects(),
		Probes:             c.probes.Load(),
		ProbeFailures:      c.probeFailures.Load(),
		Suspicions:         c.suspicions.Load(),
		Readmissions:       c.readmissions.Load(),
		PeerRetries:        c.retries.Load(),
		PeerRetrySuccesses: c.retryHits.Load(),
		Proxied:            c.proxied.Load(),
		ProxyFallbacks:     c.proxyFallbacks.Load(),
		BatchFanouts:       c.batchFanouts.Load(),
		BatchFallbackSpecs: c.batchFallbackSpecs.Load(),
		RemoteFetches:      c.remoteFetches.Load(),
		FetchMisses:        c.fetchMisses.Load(),
		FetchErrors:        c.fetchErrors.Load(),
		ArtifactsServed:    c.artifactsServed.Load(),
		Replication: ReplicationStats{
			Pushed:            c.replPushed.Load(),
			PushErrors:        c.replPushErrors.Load(),
			PushSkipped:       c.replPushSkipped.Load(),
			Dropped:           c.replDropped.Load(),
			Pending:           c.replPending.Load(),
			Received:          c.replReceived.Load(),
			ReceivedDuplicate: c.replDuplicate.Load(),
			Sweeps:            c.sweeps.Load(),
			SweepKeys:         c.sweepKeys.Load(),
			SweepPushed:       c.sweepPushed.Load(),
			SweepErrors:       c.sweepErrors.Load(),
			LastSweepEpoch:    c.lastSweepEpoch.Load(),
		},
		Breaker: c.breaker.stats(),
	}
	if len(s.Suspects) == 0 {
		s.Suspects = nil
	}
	c.reasonMu.Lock()
	if len(c.proxyFallbackReason) > 0 {
		s.ProxyFallbackReasons = make(map[string]uint64, len(c.proxyFallbackReason))
		for r, n := range c.proxyFallbackReason {
			s.ProxyFallbackReasons[string(r)] = n
		}
	}
	if len(c.batchFallbackReason) > 0 {
		s.BatchFallbackReasons = make(map[string]uint64, len(c.batchFallbackReason))
		for r, n := range c.batchFallbackReason {
			s.BatchFallbackReasons[string(r)] = n
		}
	}
	if len(c.fetchErrorReason) > 0 {
		s.FetchErrorReasons = make(map[string]uint64, len(c.fetchErrorReason))
		for r, n := range c.fetchErrorReason {
			s.FetchErrorReasons[string(r)] = n
		}
	}
	c.reasonMu.Unlock()
	return s
}

// NoteProxyFallback records a failed forward answered locally.
func (c *Cluster) NoteProxyFallback(reason FallbackReason) {
	c.proxyFallbacks.Add(1)
	c.reasonMu.Lock()
	c.proxyFallbackReason[reason]++
	c.reasonMu.Unlock()
}

// NoteBatchFanout records one sub-batch sent to an owning shard.
func (c *Cluster) NoteBatchFanout() { c.batchFanouts.Add(1) }

// NoteBatchFallback records n batch specs recomputed locally.
func (c *Cluster) NoteBatchFallback(n int, reason FallbackReason) {
	if n <= 0 {
		return
	}
	c.batchFallbackSpecs.Add(uint64(n))
	c.reasonMu.Lock()
	c.batchFallbackReason[reason] += uint64(n)
	c.reasonMu.Unlock()
}

// NoteArtifactServed records one artifact image served to a peer.
func (c *Cluster) NoteArtifactServed() { c.artifactsServed.Add(1) }

// NoteFetchError records one artifact-fetch failure by cause.
func (c *Cluster) NoteFetchError(reason FetchErrorReason) {
	c.fetchErrors.Add(1)
	c.reasonMu.Lock()
	c.fetchErrorReason[reason]++
	c.reasonMu.Unlock()
}

// NoteRetry records one bounded replica retry; hit reports whether it
// answered.
func (c *Cluster) NoteRetry(hit bool) {
	c.retries.Add(1)
	if hit {
		c.retryHits.Add(1)
	}
}

// NoteReplicaReceived records one pushed artifact image accepted
// (stored) or deduplicated (already resident).
func (c *Cluster) NoteReplicaReceived(stored bool) {
	if stored {
		c.replReceived.Add(1)
	} else {
		c.replDuplicate.Add(1)
	}
}

// NoteSweep records one completed re-replication sweep over the given
// membership epoch.
func (c *Cluster) NoteSweep(epoch uint64, keys, pushed, skipped, errors uint64) {
	c.sweeps.Add(1)
	c.sweepKeys.Add(keys)
	c.sweepPushed.Add(pushed)
	c.replPushSkipped.Add(skipped)
	c.sweepErrors.Add(errors)
	c.lastSweepEpoch.Store(epoch)
}

// setTraceHeader propagates the context's trace ID onto an
// intra-cluster request, so the spans the peer records land in the
// same trace the entry node started and the stitcher can find them.
func setTraceHeader(ctx context.Context, req *http.Request) {
	if id := obs.TraceIDFrom(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
}

// setDeadlineHeader stamps the context's remaining budget onto an
// intra-cluster request as whole milliseconds, rounded UP so a
// positive sub-millisecond remainder never truncates to a value the
// receiver could confuse with "no budget". A budget already spent is
// stamped as an explicit "0", which the receiver treats as expired —
// distinct from an absent header, which means no deadline at all.
func setDeadlineHeader(ctx context.Context, req *http.Request) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	rem := time.Until(dl)
	if rem <= 0 {
		req.Header.Set(DeadlineHeader, "0")
		return
	}
	ms := int64((rem + time.Millisecond - 1) / time.Millisecond)
	req.Header.Set(DeadlineHeader, fmt.Sprintf("%d", ms))
}

// Forward sends the (already-read) request body to node's
// path-and-query, marked with ForwardedHeader so the receiver computes
// locally. The caller owns the returned response and must close its
// body; a nil response with an error means the node was unreachable
// and the caller should fall back to the replica or local compute.
func (c *Cluster) Forward(ctx context.Context, node, method, pathQuery string, body []byte) (*http.Response, error) {
	if err := c.breaker.allow(node); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, method, node+pathQuery, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	setTraceHeader(ctx, req)
	setDeadlineHeader(ctx, req)
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.proxy.Do(req)
	if err != nil {
		c.breaker.report(node, false)
		return nil, err
	}
	c.breaker.report(node, !TransientStatus(resp.StatusCode))
	c.proxied.Add(1)
	return resp, nil
}

// GetJSON fetches node's path and decodes the JSON response into v
// (used by the cluster-aggregate stats view and membership pulls).
func (c *Cluster) GetJSON(ctx context.Context, node, path string, v any) error {
	if err := c.breaker.allow(node); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set(ForwardedHeader, c.self)
	setTraceHeader(ctx, req)
	setDeadlineHeader(ctx, req)
	resp, err := c.fetch.Do(req)
	if err != nil {
		c.breaker.report(node, false)
		return err
	}
	c.breaker.report(node, !TransientStatus(resp.StatusCode))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: %s%s: status %d", node, path, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, MaxArtifactBytes)).Decode(v)
}

// FetchArtifact asks node for the encoded image of the artifact under
// key. ok=false with a nil error means the node answered but does not
// hold the artifact (or its type is memory-only).
func (c *Cluster) FetchArtifact(ctx context.Context, node, key string) (kind string, data []byte, ok bool, err error) {
	if err := c.breaker.allow(node); err != nil {
		return "", nil, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		node+"/v1/artifacts?key="+url.QueryEscape(key), nil)
	if err != nil {
		return "", nil, false, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	setTraceHeader(ctx, req)
	setDeadlineHeader(ctx, req)
	resp, err := c.fetch.Do(req)
	if err != nil {
		c.breaker.report(node, false)
		return "", nil, false, err
	}
	c.breaker.report(node, !TransientStatus(resp.StatusCode))
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return "", nil, false, nil
	default:
		return "", nil, false, fmt.Errorf("shard: fetch %q from %s: status %d", key, node, resp.StatusCode)
	}
	kind = resp.Header.Get(ArtifactKindHeader)
	if kind == "" {
		return "", nil, false, fmt.Errorf("shard: fetch %q from %s: missing %s header", key, node, ArtifactKindHeader)
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, MaxArtifactBytes))
	if err != nil {
		return "", nil, false, err
	}
	return kind, data, true, nil
}

// CheckArtifact asks node whether it holds the artifact under key —
// the header-only probe the re-replication sweep runs before shipping
// an image, so an already-replicated key costs one round trip and no
// payload.
func (c *Cluster) CheckArtifact(ctx context.Context, node, key string) (bool, error) {
	if err := c.breaker.allow(node); err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		node+"/v1/artifacts?check=1&key="+url.QueryEscape(key), nil)
	if err != nil {
		return false, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	setTraceHeader(ctx, req)
	setDeadlineHeader(ctx, req)
	resp, err := c.fetch.Do(req)
	if err != nil {
		c.breaker.report(node, false)
		return false, err
	}
	c.breaker.report(node, !TransientStatus(resp.StatusCode))
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("shard: check %q on %s: status %d", key, node, resp.StatusCode)
	}
}

// PushArtifact ships an encoded artifact image to node (the R=2
// write-through and re-replication transport; the receiving side is
// PUT /v1/artifacts). stored=false with a nil error means the node
// already held the key.
func (c *Cluster) PushArtifact(ctx context.Context, node, key, kind string, data []byte) (stored bool, err error) {
	if err := c.breaker.allow(node); err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		node+"/v1/artifacts?key="+url.QueryEscape(key), bytes.NewReader(data))
	if err != nil {
		return false, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	req.Header.Set(ArtifactKindHeader, kind)
	req.Header.Set("Content-Type", "application/octet-stream")
	setTraceHeader(ctx, req)
	setDeadlineHeader(ctx, req)
	resp, err := c.fetch.Do(req)
	if err != nil {
		c.breaker.report(node, false)
		return false, err
	}
	c.breaker.report(node, !TransientStatus(resp.StatusCode))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("shard: push %q to %s: status %d", key, node, resp.StatusCode)
	}
	var out struct {
		Stored bool `json:"stored"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyLimit)).Decode(&out); err != nil {
		return false, fmt.Errorf("shard: push %q to %s: %w", key, node, err)
	}
	return out.Stored, nil
}

// HealthDoc is the GET /v1/cluster/health body: liveness plus the
// membership fingerprint the prober compares for anti-entropy.
type HealthDoc struct {
	OK          bool   `json:"ok"`
	Node        string `json:"node"`
	Epoch       uint64 `json:"epoch"`
	Hash        string `json:"hash"`
	RingVersion uint64 `json:"ring_version"`
}

// ProbeHealth performs one health probe against node, bounded by the
// context's deadline. Probes bypass the circuit breaker's allow check
// (they are the out-of-band recovery path and must never be
// fast-failed) but their outcomes feed it, so a successful probe
// closes an open circuit even with no request traffic to half-open
// it.
func (c *Cluster) ProbeHealth(ctx context.Context, node string) (HealthDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+healthPath, nil)
	if err != nil {
		return HealthDoc{}, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.ctl.Do(req)
	if err != nil {
		c.breaker.report(node, false)
		return HealthDoc{}, err
	}
	c.breaker.report(node, !TransientStatus(resp.StatusCode))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return HealthDoc{}, fmt.Errorf("shard: probe %s: status %d", node, resp.StatusCode)
	}
	var doc HealthDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyLimit)).Decode(&doc); err != nil {
		return HealthDoc{}, err
	}
	if !doc.OK {
		return doc, fmt.Errorf("shard: probe %s: not ok", node)
	}
	return doc, nil
}
