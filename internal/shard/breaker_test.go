package shard

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// fakeClock is an injectable time source for breaker tests.
type fakeClock struct{ t atomic.Int64 }

func (f *fakeClock) now() time.Time          { return time.Unix(0, f.t.Load()) }
func (f *fakeClock) advance(d time.Duration) { f.t.Add(int64(d)) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{}
	b := newBreaker(3, time.Second)
	b.now = clk.now
	const peer = "http://peer:1"

	// Closed: failures below threshold keep admitting.
	for i := 0; i < 2; i++ {
		if err := b.allow(peer); err != nil {
			t.Fatalf("closed allow #%d: %v", i, err)
		}
		b.report(peer, false)
	}
	// A success resets the consecutive count.
	b.report(peer, true)
	for i := 0; i < 2; i++ {
		b.report(peer, false)
	}
	if err := b.allow(peer); err != nil {
		t.Fatal("2 consecutive failures must not open a threshold-3 breaker")
	}
	// Third consecutive failure opens it.
	b.report(peer, false)
	if err := b.allow(peer); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("allow after open = %v, want ErrBreakerOpen", err)
	}
	if s := b.stats(); s.Opens != 1 || s.FastFails != 1 || len(s.Open) != 1 {
		t.Fatalf("stats = %+v", s)
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	clk.advance(time.Second)
	if err := b.allow(peer); err != nil {
		t.Fatalf("half-open probe not admitted: %v", err)
	}
	if err := b.allow(peer); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second caller admitted during half-open probe")
	}
	// Probe fails: back to open for another cooldown.
	b.report(peer, false)
	if err := b.allow(peer); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("allow after failed probe, want fast-fail")
	}
	clk.advance(time.Second)
	if err := b.allow(peer); err != nil {
		t.Fatalf("second half-open probe: %v", err)
	}
	// Probe succeeds: closed again, other peers unaffected throughout.
	b.report(peer, true)
	if err := b.allow(peer); err != nil {
		t.Fatalf("allow after recovery: %v", err)
	}
	s := b.stats()
	if s.Closes != 1 || s.Opens != 2 || s.HalfOpenProbes != 2 || len(s.Open) != 0 {
		t.Fatalf("final stats = %+v", s)
	}
	if err := b.allow("http://other:1"); err != nil {
		t.Fatal("unrelated peer affected")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Second)
	for i := 0; i < 100; i++ {
		b.report("p", false)
	}
	if err := b.allow("p"); err != nil {
		t.Fatal("disabled breaker must always allow")
	}
	if s := b.stats(); s.Enabled {
		t.Fatal("disabled breaker reports enabled")
	}
}

// TestBreakerFastFail drives a two-node cluster view whose peer
// transport is a seeded injector failing 100% of calls: after the
// threshold the breaker must fast-fail without touching the network,
// and a successful probe (injector swapped off) must close it.
func TestBreakerFastFail(t *testing.T) {
	var delivered atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delivered.Add(1)
		w.Write([]byte("{}"))
	}))
	defer peer.Close()

	inj := fault.New(42)
	inj.Enable(fault.PeerError, 1, 0)
	var faulty atomic.Bool
	faulty.Store(true)
	cl, err := New("http://self:0", []string{"http://self:0", peer.URL}, Options{
		BreakerFailures: 3,
		BreakerCooldown: 10 * time.Millisecond,
		WrapTransport: func(base http.RoundTripper) http.RoundTripper {
			withFault := inj.Transport(base)
			return roundTripFunc(func(req *http.Request) (*http.Response, error) {
				if faulty.Load() {
					return withFault.RoundTrip(req)
				}
				return base.RoundTrip(req)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, _, err := cl.FetchArtifact(ctx, peer.URL, "k"); err == nil {
			t.Fatalf("fetch #%d succeeded under 100%% peer.error", i)
		}
	}
	decisionsAtOpen := inj.Stats().Decisions[string(fault.PeerError)]
	// Breaker is now open: further calls fast-fail without reaching
	// the transport (the injector sees no new decisions).
	if _, _, _, err := cl.FetchArtifact(ctx, peer.URL, "k"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if resp, err := cl.Forward(ctx, peer.URL, http.MethodGet, "/v1/stats", nil); !errors.Is(err, ErrBreakerOpen) {
		if resp != nil {
			resp.Body.Close()
		}
		t.Fatalf("Forward err = %v, want ErrBreakerOpen", err)
	}
	if got := inj.Stats().Decisions[string(fault.PeerError)]; got != decisionsAtOpen {
		t.Fatalf("fast-fail reached the transport: %d decisions, want %d", got, decisionsAtOpen)
	}
	if n := delivered.Load(); n != 0 {
		t.Fatalf("peer saw %d requests through a 100%%-error injector", n)
	}
	if s := cl.BreakerStats(); s.FastFails < 2 || s.Opens != 1 {
		t.Fatalf("breaker stats = %+v", s)
	}

	// Heal the transport; after the cooldown the half-open probe goes
	// through and closes the circuit.
	faulty.Store(false)
	time.Sleep(15 * time.Millisecond)
	if ok, err := cl.CheckArtifact(ctx, peer.URL, "k"); err == nil && !ok {
		// 200 with empty body decodes as a check failure status-wise;
		// any non-breaker outcome is fine here.
		_ = ok
	} else if errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open probe fast-failed after cooldown")
	}
	if s := cl.BreakerStats(); s.Closes != 1 || len(s.Open) != 0 {
		t.Fatalf("post-recovery stats = %+v", s)
	}
	if delivered.Load() == 0 {
		t.Fatal("healed transport never reached the peer")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
