package shard

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func headerFor(t *testing.T, ctx context.Context) (string, bool) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://peer/v1/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	setDeadlineHeader(ctx, req)
	vals, ok := req.Header[http.CanonicalHeaderKey(DeadlineHeader)]
	if !ok {
		return "", false
	}
	return vals[0], true
}

func TestSetDeadlineHeaderNoDeadline(t *testing.T) {
	if got, ok := headerFor(t, context.Background()); ok {
		t.Fatalf("header = %q, want absent without a deadline", got)
	}
}

func TestSetDeadlineHeaderExpiredStampsZero(t *testing.T) {
	// An already-spent budget must forward as an explicit "0" — the
	// receiver rejects it as expired. Stamping the old floor of "1"
	// would grant the next hop a fresh millisecond per hop, letting an
	// expired request ricochet through the cluster doing real work.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-10*time.Millisecond))
	defer cancel()
	if got, ok := headerFor(t, ctx); !ok || got != "0" {
		t.Fatalf("header = %q (present=%v), want \"0\" for an expired budget", got, ok)
	}
}

func TestSetDeadlineHeaderRoundsUp(t *testing.T) {
	// A live sub-millisecond budget must round UP: truncation to 0
	// would be indistinguishable from expiry, and the old floor-then-
	// clamp path conflated the two cases.
	ctx, cancel := context.WithTimeout(context.Background(), 900*time.Microsecond)
	defer cancel()
	got, ok := headerFor(t, ctx)
	if !ok || got == "0" {
		t.Fatalf("header = %q (present=%v), want >= 1ms for a live budget", got, ok)
	}
	// 2.5ms remaining must stamp 3, not truncate to 2 — each hop may
	// only shrink the budget it grants downstream by rounding, never
	// grow it past what remains... but it must also never shrink a
	// live budget to dead. Ceil is the only stamp with both
	// properties for the receiver's whole-ms contract.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2500*time.Microsecond)
	defer cancel2()
	got2, ok2 := headerFor(t, ctx2)
	if !ok2 || (got2 != "3" && got2 != "2") {
		// Scheduling delay can spend up to ~0.5ms between WithTimeout
		// and the stamp; both ceils are correct. "2" from the OLD
		// floor path is indistinguishable here, so the load-bearing
		// assertions are the expired/sub-ms cases above.
		t.Fatalf("header = %q (present=%v), want ceil of remaining ms", got2, ok2)
	}
}
