package shard

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by peer calls fast-failed because the
// target's circuit breaker is open. Callers treat it like a transport
// error — fall back to the replica or local compute — but it costs no
// connection attempt, which is the point: between prober rounds
// (seconds apart) a dead peer would otherwise eat a dial timeout per
// request.
var ErrBreakerOpen = errors.New("shard: circuit breaker open")

// FallbackBreaker: the owner's breaker was open, so the forward was
// fast-failed without a connection attempt.
const FallbackBreaker FallbackReason = "breaker"

// Breaker state machine per peer: closed (normal) → open after
// BreakerFailures consecutive transport/5xx failures → half-open
// after BreakerCooldown, admitting exactly one probe call whose
// outcome closes or re-opens the circuit. It complements the health
// prober: the prober reshapes the ring on a seconds cadence, the
// breaker reacts within a handful of failed requests.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

type peerCircuit struct {
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

type breaker struct {
	threshold int // consecutive failures to open; <= 0 disables
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu    sync.Mutex
	peers map[string]*peerCircuit

	opens          uint64
	closes         uint64
	fastFails      uint64
	halfOpenProbes uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		peers:     make(map[string]*peerCircuit),
	}
}

// allow reports whether a call to node may proceed. ErrBreakerOpen
// means fast-fail now.
func (b *breaker) allow(node string) error {
	if b == nil || b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.peers[node]
	if p == nil || p.state == breakerClosed {
		return nil
	}
	if p.state == breakerOpen && b.now().Sub(p.openedAt) >= b.cooldown {
		p.state = breakerHalfOpen
		p.probing = false
	}
	if p.state == breakerHalfOpen && !p.probing {
		// Admit exactly one probe; everyone else keeps fast-failing
		// until its outcome is in.
		p.probing = true
		b.halfOpenProbes++
		return nil
	}
	b.fastFails++
	return ErrBreakerOpen
}

// report records the outcome of a call allowed through to node.
// ok=false means a transport error or 5xx.
func (b *breaker) report(node string, ok bool) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.peers[node]
	if p == nil {
		if ok {
			return
		}
		p = &peerCircuit{}
		b.peers[node] = p
	}
	if ok {
		if p.state != breakerClosed {
			b.closes++
		}
		p.state = breakerClosed
		p.fails = 0
		p.probing = false
		return
	}
	switch p.state {
	case breakerHalfOpen:
		// The probe failed: back to open for another cooldown.
		p.state = breakerOpen
		p.openedAt = b.now()
		p.probing = false
		b.opens++
	case breakerClosed:
		p.fails++
		if p.fails >= b.threshold {
			p.state = breakerOpen
			p.openedAt = b.now()
			b.opens++
		}
	}
	// Already open: nothing to do (a racing in-flight call failed).
}

// forget drops a peer's circuit (on membership removal).
func (b *breaker) forget(node string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	delete(b.peers, node)
	b.mu.Unlock()
}

// openPeers lists peers whose circuit is currently not closed, sorted.
func (b *breaker) openPeers() []string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for node, p := range b.peers {
		if p.state != breakerClosed {
			out = append(out, node)
		}
	}
	sort.Strings(out)
	return out
}

// BreakerStats is the circuit-breaker view under shard.breaker in
// /v1/stats.
type BreakerStats struct {
	// Enabled reports whether the breaker is active (threshold > 0).
	Enabled bool `json:"enabled"`
	// Opens counts closed/half-open → open transitions; Closes counts
	// recoveries to closed; FastFails counts calls shed without a
	// connection attempt; HalfOpenProbes counts probe calls admitted
	// while half-open.
	Opens          uint64 `json:"opens"`
	Closes         uint64 `json:"closes"`
	FastFails      uint64 `json:"fast_fails"`
	HalfOpenProbes uint64 `json:"half_open_probes"`
	// Open lists peers whose circuit is currently open or half-open.
	Open []string `json:"open,omitempty"`
}

func (b *breaker) stats() BreakerStats {
	if b == nil || b.threshold <= 0 {
		return BreakerStats{}
	}
	b.mu.Lock()
	s := BreakerStats{
		Enabled:        true,
		Opens:          b.opens,
		Closes:         b.closes,
		FastFails:      b.fastFails,
		HalfOpenProbes: b.halfOpenProbes,
	}
	b.mu.Unlock()
	s.Open = b.openPeers()
	return s
}

// AllowPeer exposes the breaker check for callers outside this
// package that are about to spend something expensive on a peer (the
// server's forward path asks before buffering a body, for example).
// A nil or disabled breaker always allows.
func (c *Cluster) AllowPeer(node string) error { return c.breaker.allow(node) }

// ReportPeer records an externally-observed call outcome for node.
func (c *Cluster) ReportPeer(node string, ok bool) { c.breaker.report(node, ok) }

// BreakerStats snapshots the circuit-breaker counters.
func (c *Cluster) BreakerStats() BreakerStats { return c.breaker.stats() }
