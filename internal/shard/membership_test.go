package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds. Timing-sensitive membership tests
// observe epochs, suspect lists, and ring versions instead of sleeping
// fixed amounts — the counters exist for exactly this.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMembershipOrdering(t *testing.T) {
	old := Membership{Epoch: 2, Members: []string{"http://a:1"}}
	grown := Membership{Epoch: 3, Members: []string{"http://a:1", "http://b:2"}}
	if !grown.newerThan(old) || old.newerThan(grown) {
		t.Error("a higher epoch must win regardless of member count")
	}
	if old.newerThan(old) {
		t.Error("a view must not be newer than itself")
	}
	// Same epoch, different members: exactly one side wins, and both
	// sides agree on which (the hash tie-break every node computes).
	left := Membership{Epoch: 5, Members: []string{"http://a:1", "http://b:2"}}
	right := Membership{Epoch: 5, Members: []string{"http://a:1", "http://c:3"}}
	if left.newerThan(right) == right.newerThan(left) {
		t.Error("same-epoch conflict must have a deterministic winner")
	}
	if left.Hash() == right.Hash() {
		t.Error("differing member sets must fingerprint differently")
	}
}

func TestMembershipMutations(t *testing.T) {
	cl, err := New("http://a:1", []string{"http://a:1", "http://b:2"}, Options{VNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Epoch() != 1 {
		t.Fatalf("boot epoch = %d, want 1", cl.Epoch())
	}
	rv := cl.RingVersion()

	ms, changed, err := cl.AddMember("http://c:3/")
	if err != nil || !changed {
		t.Fatalf("AddMember: changed=%v err=%v", changed, err)
	}
	if ms.Epoch != 2 || len(ms.Members) != 3 {
		t.Fatalf("post-join view = %+v", ms)
	}
	if cl.RingVersion() == rv {
		t.Error("a membership change must bump the ring version")
	}
	if _, changed, _ := cl.AddMember("http://c:3"); changed {
		t.Error("re-adding a member must be an idempotent no-op")
	}
	if cl.Epoch() != 2 {
		t.Errorf("idempotent re-add moved the epoch to %d", cl.Epoch())
	}

	ms, changed, err = cl.RemoveMember("http://c:3")
	if err != nil || !changed || ms.Epoch != 3 || len(ms.Members) != 2 {
		t.Fatalf("RemoveMember: view=%+v changed=%v err=%v", ms, changed, err)
	}
	if _, changed, _ := cl.RemoveMember("http://c:3"); changed {
		t.Error("removing an absent member must be a no-op")
	}

	// Stale and equal views are rejected; newer ones adopted.
	if cl.AdoptMembership(Membership{Epoch: 1, Members: []string{"http://z:9"}}, false) {
		t.Error("a stale view must not be adopted")
	}
	if !cl.AdoptMembership(Membership{Epoch: 9, Members: []string{"http://a:1", "http://b:2", "http://d:4"}}, false) {
		t.Error("a newer view must be adopted")
	}
	if cl.Epoch() != 9 || len(cl.Members()) != 3 {
		t.Errorf("adopted view: epoch=%d members=%v", cl.Epoch(), cl.Members())
	}
	// Force-adopt (the join path) wins even against a higher local
	// epoch — the seed's answer is authoritative by construction.
	if !cl.AdoptMembership(Membership{Epoch: 4, Members: []string{"http://a:1", "http://b:2"}}, true) {
		t.Error("force-adopt must install the view unconditionally")
	}
	if cl.Epoch() != 4 {
		t.Errorf("force-adopted epoch = %d, want 4", cl.Epoch())
	}

	// Removing self degrades to a standalone single-member view rather
	// than routing every request away from the only node left.
	if _, changed, _ = cl.RemoveMember("http://a:1"); !changed {
		t.Fatal("removing self must change the view")
	}
	if got := cl.Members(); len(got) != 1 || got[0] != "http://a:1" {
		t.Errorf("post-self-removal members = %v, want just self", got)
	}
}

func TestSuspicionReroutesOwnership(t *testing.T) {
	nodes := nodeList(3)
	cl, err := New(nodes[0], nodes, Options{VNodes: 32})
	if err != nil {
		t.Fatal(err)
	}
	var key string
	for _, k := range testKeys(2000) {
		if cl.Owner(k) == nodes[1] {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by the suspect-to-be")
	}

	rv := cl.RingVersion()
	if !cl.Suspect(nodes[1]) {
		t.Fatal("Suspect must report a new suspicion")
	}
	if cl.Suspect(nodes[1]) {
		t.Error("re-suspecting must be a no-op")
	}
	if cl.Suspect(nodes[0]) {
		t.Error("self must never be suspectable")
	}
	if cl.RingVersion() == rv {
		t.Error("suspicion must bump the ring version")
	}
	if cl.Epoch() != 1 {
		t.Error("suspicion is local and temporary: the epoch must not move")
	}
	if got := cl.Suspects(); !slices.Equal(got, []string{nodes[1]}) {
		t.Errorf("suspects = %v", got)
	}
	if cl.Owner(key) == nodes[1] {
		t.Error("a suspected member must leave the effective ring")
	}
	if slices.Contains(cl.ReplicaSet(key), nodes[1]) {
		t.Error("replica placement must skip suspected members")
	}
	if got := len(cl.Members()); got != 3 {
		t.Errorf("full membership shrank to %d under suspicion", got)
	}

	// Suspecting every peer must never exclude self: a fully-isolated
	// node answers by local compute.
	cl.Suspect(nodes[2])
	for _, k := range testKeys(50) {
		if cl.Owner(k) != nodes[0] {
			t.Fatalf("isolated node does not own %q", k)
		}
	}

	if !cl.Readmit(nodes[1]) {
		t.Fatal("Readmit must report recovery of a suspect")
	}
	if cl.Readmit(nodes[1]) {
		t.Error("readmitting a healthy member must be a no-op")
	}
	cl.Readmit(nodes[2])
	if cl.Owner(key) != nodes[1] {
		t.Error("readmission must restore the original ownership")
	}
	st := cl.Stats()
	if st.Suspicions != 2 || st.Readmissions != 2 {
		t.Errorf("suspicions/readmissions = %d/%d, want 2/2", st.Suspicions, st.Readmissions)
	}
}

// TestReplicaSetWithoutProperty is the replica-placement contract under
// member loss: because removing a member deletes exactly its points
// from the ring's distinct-owner sequence, a key's surviving R=2 set
// keeps every surviving member in order and gains at most the old
// third-distinct node — so the replica the degraded read path retries
// is always a node the write-through path had already targeted.
func TestReplicaSetWithoutProperty(t *testing.T) {
	keys := testKeys(4000)
	for _, n := range []int{3, 4, 5, 8} {
		nodes := nodeList(n)
		ring := NewRing(nodes, 0)
		for _, gone := range []string{nodes[0], nodes[n/2], nodes[n-1]} {
			after := ring.Without(gone)
			for _, k := range keys {
				old3 := ring.OwnersN(k, 3)
				old2 := old3[:2]
				new2 := after.OwnersN(k, 2)
				if old2[0] != ring.Owner(k) {
					t.Fatalf("n=%d: OwnersN[0] disagrees with Owner for %q", n, k)
				}
				if !slices.Contains(old2, gone) {
					if !slices.Equal(new2, old2) {
						t.Fatalf("n=%d: %q not owned by removed %s but set moved %v -> %v",
							n, k, gone, old2, new2)
					}
					continue
				}
				want := make([]string, 0, 2)
				for _, m := range old3 {
					if m != gone {
						want = append(want, m)
					}
				}
				if !slices.Equal(new2, want) {
					t.Fatalf("n=%d: removing %s from %v must yield %v, got %v",
						n, gone, old3, want, new2)
				}
			}
		}
	}
}

// proberPeer serves the control-plane endpoints one real peer would,
// answering from the view the observing cluster currently holds (so the
// prober sees no membership drift) — unless down, in which case every
// request 500s.
func proberPeer(t *testing.T, clRef *atomic.Pointer[Cluster], down *atomic.Bool, view func() Membership) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cl := clRef.Load()
		if cl == nil || down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		ms := view()
		switch r.URL.Path {
		case healthPath:
			json.NewEncoder(w).Encode(HealthDoc{OK: true, Node: "peer", Epoch: ms.Epoch, Hash: ms.Hash()})
		case membershipPath:
			json.NewEncoder(w).Encode(ms)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestProberSuspectsAndReadmits(t *testing.T) {
	var clRef atomic.Pointer[Cluster]
	var down atomic.Bool
	peer := proberPeer(t, &clRef, &down, func() Membership { return clRef.Load().Membership() })

	self := "http://127.0.0.1:1"
	cl, err := New(self, []string{self, peer.URL}, Options{VNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	clRef.Store(cl)
	p := StartProber(cl, ProberOptions{Interval: 5 * time.Millisecond, Timeout: 500 * time.Millisecond, Failures: 2})
	defer p.Close()

	waitFor(t, "probe rounds", func() bool { return cl.Stats().Probes >= 3 })
	if len(cl.Suspects()) != 0 {
		t.Fatal("a healthy peer must not be suspected")
	}

	down.Store(true)
	waitFor(t, "suspicion after K failures", func() bool {
		return slices.Contains(cl.Suspects(), peer.URL)
	})
	if cl.Epoch() != 1 {
		t.Error("probe-driven suspicion must not move the membership epoch")
	}

	down.Store(false)
	waitFor(t, "readmission on recovery", func() bool { return len(cl.Suspects()) == 0 })
	st := cl.Stats()
	if st.Suspicions < 1 || st.Readmissions < 1 || st.ProbeFailures < 2 {
		t.Errorf("prober counters: suspicions=%d readmissions=%d failures=%d",
			st.Suspicions, st.Readmissions, st.ProbeFailures)
	}
}

func TestProberAntiEntropy(t *testing.T) {
	var clRef atomic.Pointer[Cluster]
	var down atomic.Bool
	self := "http://127.0.0.1:1"
	third := "http://127.0.0.1:9"
	var ahead atomic.Bool
	peer := proberPeer(t, &clRef, &down, func() Membership {
		cl := clRef.Load()
		if !ahead.Load() {
			return cl.Membership()
		}
		// The peer has seen a join this node's gossip missed.
		return Membership{Epoch: 7, Members: []string{self, clRef.Load().Members()[1], third}}
	})

	cl, err := New(self, []string{self, peer.URL}, Options{VNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	clRef.Store(cl)
	p := StartProber(cl, ProberOptions{Interval: 5 * time.Millisecond, Timeout: 500 * time.Millisecond, Failures: 3})
	defer p.Close()

	waitFor(t, "baseline probes", func() bool { return cl.Stats().Probes >= 2 })
	ahead.Store(true)
	// One probe sees the epoch mismatch and pulls the newer view.
	waitFor(t, "anti-entropy adoption", func() bool {
		return cl.Epoch() == 7 && slices.Contains(cl.Members(), third)
	})
}

func TestTransientStatusAndRetrySleep(t *testing.T) {
	for code, want := range map[int]bool{200: false, 404: false, 499: false, 500: true, 503: true} {
		if TransientStatus(code) != want {
			t.Errorf("TransientStatus(%d) = %v, want %v", code, !want, want)
		}
	}

	cl, err := New("http://a:1", []string{"http://a:1"}, Options{VNodes: 4, RetryBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if !cl.RetrySleep(context.Background(), "sim/x") {
		t.Error("an uncancelled RetrySleep must report proceed")
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("backoff slept %v, want at least base/2", d)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if cl.RetrySleep(ctx, "sim/x") {
		t.Error("a cancelled context must abort the retry")
	}
}
