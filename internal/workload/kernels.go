package workload

import "repro/internal/isa"

// Hand-built kernels with known structure, used by unit tests and the
// quickstart example. They are deliberately tiny and analysable by hand.

// KernelCountLoop returns a program with a single counted loop of the
// given trip count whose body has `pad` independent ALU ops.
func KernelCountLoop(trips, pad int) *isa.Program {
	b := isa.NewBuilder("count-loop")
	b.Func("main")
	b.Li(8, 0)
	b.Li(9, int64(trips))
	b.Label("loop")
	for i := 0; i < pad; i++ {
		b.Op3(isa.OpAdd, isa.Reg(10+i%4), 8, 9)
	}
	b.Addi(8, 8, 1)
	b.Branch(isa.OpBltu, 8, 9, "loop")
	b.Halt()
	return b.MustBuild()
}

// KernelIndependentMap returns a map-style loop: dst[i] = src[i] + k,
// with fully independent iterations of roughly `pad`+4 instructions.
// Iterations are ideal speculative threads.
func KernelIndependentMap(trips, pad int) *isa.Program {
	if trips > arrayWords {
		trips = arrayWords
	}
	b := isa.NewBuilder("independent-map")
	b.Func("main")
	// init src with a linear sequence
	b.Li(8, dataBase)
	b.Li(9, dataBase+8*int64(trips))
	b.Li(10, 7)
	b.Label("init")
	b.Store(10, 8, 0)
	b.Addi(10, 10, 3)
	b.Addi(8, 8, 8)
	b.Branch(isa.OpBltu, 8, 9, "init")
	// map loop
	b.Li(8, dataBase)
	b.Li(9, dataBase+8*int64(trips))
	b.Li(11, dataBase+arrayStep)
	b.Label("loop")
	b.Load(12, 8, 0)
	for i := 0; i < pad; i++ {
		b.Op3(isa.OpAdd, 13, 12, 12)
		b.Op3(isa.OpXor, 12, 13, 12)
	}
	b.Store(12, 11, 0)
	b.Addi(8, 8, 8)
	b.Addi(11, 11, 8)
	b.Branch(isa.OpBltu, 8, 9, "loop")
	b.Halt()
	return b.MustBuild()
}

// KernelCallChain returns a program whose main loop calls a leaf
// function; the continuation does not consume the return value, so
// subroutine-continuation spawning is profitable.
func KernelCallChain(trips, leafPad int) *isa.Program {
	b := isa.NewBuilder("call-chain")
	b.Func("main")
	b.Li(8, 0)
	b.Li(9, int64(trips))
	b.Label("loop")
	b.Call("leaf")
	b.Op3(isa.OpAdd, 10, 8, 9)
	b.Op3(isa.OpXor, 11, 10, 8)
	b.Addi(8, 8, 1)
	b.Branch(isa.OpBltu, 8, 9, "loop")
	b.Halt()
	b.Func("leaf")
	b.Li(15, 3)
	for i := 0; i < leafPad; i++ {
		b.Op3(isa.OpAdd, 16, 15, 15)
		b.Op3(isa.OpAdd, 15, 16, 15)
	}
	b.Op3(isa.OpOr, 1, 15, 0)
	b.Ret()
	return b.MustBuild()
}

// KernelDiamond returns a loop whose body is an if/else diamond selected
// by a data-dependent condition (i&1), joining before the backedge.
func KernelDiamond(trips int) *isa.Program {
	b := isa.NewBuilder("diamond")
	b.Func("main")
	b.Li(8, 0)
	b.Li(9, int64(trips))
	b.Li(13, 1)
	b.Label("loop")
	b.Op3(isa.OpAnd, 10, 8, 13)
	b.Branch(isa.OpBeq, 10, 0, "even")
	b.Op3(isa.OpAdd, 11, 8, 9)
	b.Op3(isa.OpAdd, 11, 11, 11)
	b.Jmp("join")
	b.Label("even")
	b.Op3(isa.OpXor, 11, 8, 9)
	b.Label("join")
	b.Op3(isa.OpAdd, 12, 11, 8)
	b.Addi(8, 8, 1)
	b.Branch(isa.OpBltu, 8, 9, "loop")
	b.Halt()
	return b.MustBuild()
}
