package workload

import (
	"fmt"

	"repro/internal/isa"
)

// emitMain generates the entry function: global setup, array and
// chase-list initialisation, then one outer loop per phase calling that
// phase's workers.
func (g *gen) emitMain() {
	b := g.b
	b.Func("main")

	// Global state.
	b.Li(regLCG, int64(g.spec.Seed*0x9e3779b9+1))
	b.Li(regShared, sharedBase)
	b.Li(regSP, stackBase)

	g.emitArrayInits()
	g.emitChaseInit()
	g.emitSharedInit()

	// Phases.
	for ph := 0; ph < g.spec.Phases; ph++ {
		g.emitPhase(ph)
	}
	// Keep the accumulated result observable.
	b.Store(mainR0+2, regShared, 0)
	b.Halt()
}

// emitArrayInits fills each data array with either a linear sequence
// (stride-predictable loads downstream) or LCG-hashed values. Bodies
// are unrolled 16× so the loops have realistic iteration sizes (tight
// few-instruction loops would be unrepresentative serial regions —
// real compilers unroll them).
func (g *gen) emitArrayInits() {
	b := g.b
	const (
		ptr    = mainR0     // r8: write pointer
		end    = mainR0 + 1 // r9: end address
		val    = mainR0 + 2 // r10: running value
		step   = mainR0 + 3 // r11: linear step
		unroll = 16
	)
	for i := 0; i < g.nArrays; i++ {
		base := g.arrayBase(i)
		loop := g.label("init")
		b.Li(ptr, base)
		b.Li(end, base+8*arrayWords)
		if g.linear[i] {
			b.Li(val, int64(g.r.rangeInt(3, 1000)))
			b.Li(step, int64(g.r.rangeInt(1, 64)))
			b.Label(loop)
			for u := 0; u < unroll; u++ {
				b.Store(val, ptr, int64(8*u))
				b.Op3(isa.OpAdd, val, val, step)
			}
		} else {
			b.Li(step, lcgMulK)
			b.Li(val, int64(g.r.next()))
			b.Label(loop)
			for u := 0; u < unroll; u++ {
				b.Op3(isa.OpMul, val, val, step)
				b.Addi(val, val, lcgAddK)
				b.Store(val, ptr, int64(8*u))
			}
		}
		b.Addi(ptr, ptr, 8*unroll)
		b.Branch(isa.OpBltu, ptr, end, loop)
	}
}

// emitChaseInit links the chase array into a strided cyclic permutation:
// node i points at node (i+k) & (n-1), with k odd so the walk covers the
// whole array.
func (g *gen) emitChaseInit() {
	b := g.b
	const (
		idx   = mainR0     // r8: i
		n     = mainR0 + 1 // r9
		base  = mainR0 + 2 // r10
		k     = mainR0 + 3 // r11
		mask  = mainR0 + 4 // r12
		eight = mainR0 + 5 // r13
		nxt   = mainR0 + 6 // r14
	)
	stride := g.r.rangeInt(3, 31) | 1
	loop := g.label("chaseinit")
	b.Li(idx, 0)
	b.Li(n, chaseWords)
	b.Li(base, chaseBase)
	b.Li(k, int64(stride))
	b.Li(mask, chaseWords-1)
	b.Li(eight, 8)
	b.Label(loop)
	for u := 0; u < 8; u++ {
		b.Op3(isa.OpAdd, nxt, idx, k)
		b.Op3(isa.OpAnd, nxt, nxt, mask)
		b.Op3(isa.OpMul, nxt, nxt, eight)
		b.Op3(isa.OpAdd, nxt, nxt, base)
		b.Op3(isa.OpMul, regTmp, idx, eight)
		b.Op3(isa.OpAdd, regTmp, regTmp, base)
		b.Store(nxt, regTmp, 0)
		b.Addi(idx, idx, 1)
	}
	b.Branch(isa.OpBltu, idx, n, loop)
}

// emitSharedInit zeroes the shared table.
func (g *gen) emitSharedInit() {
	b := g.b
	const (
		ptr = mainR0
		end = mainR0 + 1
	)
	loop := g.label("sharedinit")
	b.Li(ptr, sharedBase)
	b.Li(end, sharedBase+8*sharedWords)
	b.Label(loop)
	b.Store(0, ptr, 0)
	b.Addi(ptr, ptr, 8)
	b.Branch(isa.OpBltu, ptr, end, loop)
}

// emitPhase generates one outer loop calling the phase's workers. The
// body optionally routes through helper wrappers (call-heavy codes),
// consumes return values (dependence-bound continuations), and injects
// LCG-driven worker selection noise (irregular control).
func (g *gen) emitPhase(ph int) {
	b := g.b
	const (
		i     = mainR0     // r8
		trips = mainR0 + 1 // r9
		acc   = mainR0 + 2 // r10
	)
	loop := fmt.Sprintf("phase_%d", ph)
	done := g.label("phasedone")

	b.Li(i, 0)
	b.Li(trips, int64(g.spec.OuterTrips*g.factor))
	b.Label(loop)

	ws := g.workers[ph]
	// Optionally pick between two workers with an unpredictable branch.
	noisy := len(ws) >= 2 && g.r.chance(g.spec.BranchNoise)
	start := 0
	if noisy {
		alt := g.label("alt")
		join := g.label("join")
		g.emitLCGStep(mainR0 + 3) // r11 <- fresh LCG bits
		b.Li(mainR0+4, 1)
		b.Op3(isa.OpAnd, regTmp, mainR0+3, mainR0+4)
		b.Branch(isa.OpBeq, regTmp, 0, alt)
		g.emitWorkerCall(ws[0], acc)
		b.Jmp(join)
		b.Label(alt)
		g.emitWorkerCall(ws[1], acc)
		b.Label(join)
		start = 2
	}
	for _, w := range ws[start:] {
		g.emitWorkerCall(w, acc)
	}
	if g.spec.Recursion && ph == 0 {
		depth := g.r.rangeInt(6, 11)
		b.Li(regRet, int64(depth))
		b.Call("rec")
		b.Op3(isa.OpAdd, acc, acc, regRet)
	}
	b.Addi(i, i, 1)
	b.Branch(isa.OpBgeu, i, trips, done)
	b.Jmp(loop)
	b.Label(done)
}

// emitWorkerCall calls a worker (directly or via its helper) and, per the
// spec, either consumes the return value into acc or ignores it.
func (g *gen) emitWorkerCall(w worker, acc isa.Reg) {
	b := g.b
	target := w.label
	if w.helper != "" {
		target = w.helper
	}
	b.Call(target)
	if g.r.chance(g.spec.RetValUsed) {
		b.Op3(isa.OpAdd, acc, acc, regRet)
	}
}

// emitLCGStep advances the global LCG and leaves mixed bits in dst.
// Clobbers regTmp.
func (g *gen) emitLCGStep(dst isa.Reg) {
	b := g.b
	b.Li(regTmp, lcgMulK)
	b.Op3(isa.OpMul, regLCG, regLCG, regTmp)
	b.Addi(regLCG, regLCG, lcgAddK)
	b.Li(regTmp, 33)
	b.Op3(isa.OpShr, dst, regLCG, regTmp)
}
