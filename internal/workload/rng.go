package workload

// rng is a xorshift64* PRNG. The generator embeds all randomness at
// program-construction time so that a (benchmark, seed, size) triple
// always produces the identical program, independent of Go version.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// rangeInt returns a uniform value in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// chance reports true with probability p.
func (r *rng) chance(p float64) bool {
	return float64(r.next()>>11)/(1<<53) < p
}
