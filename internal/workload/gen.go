package workload

import (
	"fmt"

	"repro/internal/isa"
)

// Register conventions for generated code. Workers, helpers, and the
// recursive routine use disjoint register windows so nested calls never
// clobber live caller state; the LCG state and table bases are global.
const (
	regRet    isa.Reg = 1 // argument 0 / return value
	regArg1   isa.Reg = 2
	regLCG    isa.Reg = 4  // global linear-congruential generator state
	regShared isa.Reg = 5  // shared-table base address
	regTmp    isa.Reg = 6  // short-lived scratch (never live across calls)
	regSP     isa.Reg = 27 // memory stack pointer (recursion only)

	mainR0   isa.Reg = 8  // main locals: r8..r14
	workerR0 isa.Reg = 15 // worker locals: r15..r21
	helperR0 isa.Reg = 22 // helper/recursive locals: r22..r26
	padR0    isa.Reg = 28 // block-pad scratch: r28..r31 (never live across calls)
)

// Memory layout of generated programs (byte addresses, 8-byte words).
const (
	arrayWords  = 128
	chaseWords  = 256
	sharedWords = 64

	dataBase   = 0x100000
	arrayStep  = 0x10000
	chaseBase  = 0x300000
	sharedBase = 0x400000
	stackBase  = 0x800000

	lcgMulK = 6364136223846793005
	lcgAddK = 1442695040888963407
)

// workerKind enumerates the loop shapes a worker routine can have.
type workerKind int

const (
	kindMap workerKind = iota
	kindReduce
	kindChase
	kindBranchy
)

func (k workerKind) String() string {
	switch k {
	case kindMap:
		return "map"
	case kindReduce:
		return "reduce"
	case kindChase:
		return "chase"
	default:
		return "branchy"
	}
}

type worker struct {
	label string
	kind  workerKind
	// helper, when non-empty, is a small wrapper function that calls
	// the worker (subroutine-continuation material at two call depths).
	helper string
}

type gen struct {
	b      *isa.Builder
	r      *rng
	spec   Spec
	factor int

	nArrays int
	linear  []bool     // per array: linear (stride-predictable) data?
	workers [][]worker // per phase
	labelN  int
}

// Generate builds the named benchmark at the given size. The same
// (name, size) always yields the identical program.
func Generate(name string, size SizeClass) (*isa.Program, error) {
	spec, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return GenerateSpec(spec, size)
}

// MustGenerate is Generate that panics on error (tests, examples).
func MustGenerate(name string, size SizeClass) *isa.Program {
	p, err := Generate(name, size)
	if err != nil {
		panic(err)
	}
	return p
}

// GenerateSpec builds a program from an arbitrary personality spec.
func GenerateSpec(spec Spec, size SizeClass) (*isa.Program, error) {
	if spec.Phases <= 0 || spec.WorkersPerPhase <= 0 || spec.OuterTrips <= 0 {
		return nil, fmt.Errorf("workload: spec %q has non-positive shape parameters", spec.Name)
	}
	g := &gen{
		b:      isa.NewBuilder(spec.Name),
		r:      newRNG(spec.Seed),
		spec:   spec,
		factor: size.factor(),
	}
	g.nArrays = spec.Phases + 1
	if g.nArrays < 4 {
		g.nArrays = 4
	}
	g.linear = make([]bool, g.nArrays)
	for i := range g.linear {
		g.linear[i] = g.r.chance(spec.PredictableData)
	}
	g.planWorkers()
	g.emitMain()
	g.emitWorkers()
	g.b.SetEntry("main")
	return g.b.Build()
}

func (g *gen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s_%d", prefix, g.labelN)
}

func (g *gen) arrayBase(i int) int64 {
	return int64(dataBase + (i%g.nArrays)*arrayStep)
}

// pickKind draws a worker kind from the spec's normalised weights.
func (g *gen) pickKind() workerKind {
	w := []float64{g.spec.MapFrac, g.spec.ReduceFrac, g.spec.ChaseFrac, g.spec.BranchyFrac}
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return kindMap
	}
	p := float64(g.r.next()>>11) / (1 << 53) * total
	for k, x := range w {
		if p < x {
			return workerKind(k)
		}
		p -= x
	}
	return kindBranchy
}

func (g *gen) planWorkers() {
	g.workers = make([][]worker, g.spec.Phases)
	for ph := range g.workers {
		n := g.r.rangeInt(2, g.spec.WorkersPerPhase)
		ws := make([]worker, n)
		for i := range ws {
			ws[i] = worker{
				label: fmt.Sprintf("w_p%d_%d", ph, i),
				kind:  g.pickKind(),
			}
			if g.r.chance(g.spec.CallHeavy) {
				ws[i].helper = fmt.Sprintf("h_p%d_%d", ph, i)
			}
		}
		g.workers[ph] = ws
	}
}

// minLoopBody is the minimum generated loop-body size in instructions
// (excluding the closing induction update and branch). Compiled loop
// bodies in SpecInt95-class code are rarely smaller; keeping generated
// loops above the paper's 32-instruction minimum pair distance makes
// the profile scheme's size filter meaningful rather than vacuous.
const minLoopBody = 33
