package workload

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

// TestOpcodeMixSanity: every benchmark's dynamic stream must contain a
// plausible mix of memory operations, branches, and calls — the streams
// the spawning analyses and the memory system are exercised by.
func TestOpcodeMixSanity(t *testing.T) {
	for _, name := range Benchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			p := MustGenerate(name, SizeTest)
			res, err := emu.Run(p, emu.Config{CollectTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			var loads, stores, branches, calls int
			for i := range res.Trace.Events {
				switch res.Trace.Events[i].Op {
				case isa.OpLoad:
					loads++
				case isa.OpStore:
					stores++
				case isa.OpBeq, isa.OpBne, isa.OpBltu, isa.OpBgeu:
					branches++
				case isa.OpCall:
					calls++
				}
			}
			n := res.Trace.Len()
			frac := func(c int) float64 { return float64(c) / float64(n) }
			if frac(loads) < 0.01 {
				t.Errorf("loads %.2f%% too rare", 100*frac(loads))
			}
			if frac(stores) < 0.005 {
				t.Errorf("stores %.2f%% too rare", 100*frac(stores))
			}
			if frac(branches) < 0.01 || frac(branches) > 0.25 {
				t.Errorf("branches %.2f%% implausible", 100*frac(branches))
			}
			if calls == 0 {
				t.Error("no calls at all")
			}
		})
	}
}

// TestAllBenchmarksDeterministicAcrossSizes: same (name, size) must
// yield identical programs on every call, for every benchmark and size.
func TestAllBenchmarksDeterministicAcrossSizes(t *testing.T) {
	for _, name := range Benchmarks {
		for _, size := range []SizeClass{SizeTest, SizeFull} {
			a := MustGenerate(name, size)
			b := MustGenerate(name, size)
			if len(a.Code) != len(b.Code) {
				t.Fatalf("%s/%v: lengths differ", name, size)
			}
			for i := range a.Code {
				if a.Code[i] != b.Code[i] {
					t.Fatalf("%s/%v: instruction %d differs", name, size, i)
				}
			}
		}
	}
}

// TestDisassembleListsFunctions: the disassembler must show every
// generated function exactly once.
func TestDisassembleListsFunctions(t *testing.T) {
	p := MustGenerate("compress", SizeTest)
	var sb strings.Builder
	if err := isa.Disassemble(&sb, p); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, f := range p.Funcs {
		if !strings.Contains(out, f.Name+":") {
			t.Errorf("function %s missing from listing", f.Name)
		}
	}
	if !strings.Contains(out, "halt") {
		t.Error("no halt in listing")
	}
}

// TestVariableTripsActuallyVary: with VarTrips enabled, the same worker
// loop must execute different iteration counts across invocations
// (observable as differing block counts vs a VarTrips=0 clone).
func TestVariableTripsActuallyVary(t *testing.T) {
	spec, err := Lookup("perl")
	if err != nil {
		t.Fatal(err)
	}
	spec.VarTrips = 1.0
	withVar, err := GenerateSpec(spec, SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	spec.VarTrips = 0
	withoutVar, err := GenerateSpec(spec, SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := emu.Run(withVar, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := emu.Run(withoutVar, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Instrs == rb.Instrs {
		t.Error("variable trip counts produced identical dynamic length")
	}
}
