package workload

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

func TestGenerateAllBenchmarksRun(t *testing.T) {
	for _, name := range Benchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Generate(name, SizeTest)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			res, err := emu.Run(p, emu.Config{CollectTrace: true})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Instrs < 5000 {
				t.Errorf("suspiciously small run: %d instructions", res.Instrs)
			}
			if res.Instrs > 2_000_000 {
				t.Errorf("suspiciously large test-size run: %d instructions", res.Instrs)
			}
			if err := res.Trace.Validate(); err != nil {
				t.Fatalf("trace: %v", err)
			}
			if len(res.Profile.CallSites) == 0 {
				t.Error("no call sites profiled")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("perl", SizeTest)
	b := MustGenerate("perl", SizeTest)
	if len(a.Code) != len(b.Code) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, a.Code[i], b.Code[i])
		}
	}
}

func TestSizeClassesScaleWork(t *testing.T) {
	var got [3]int
	for i, sz := range []SizeClass{SizeTest, SizeSmall, SizeFull} {
		p := MustGenerate("m88ksim", sz)
		res, err := emu.Run(p, emu.Config{})
		if err != nil {
			t.Fatalf("%v: %v", sz, err)
		}
		got[i] = res.Instrs
	}
	if !(got[0] < got[1] && got[1] < got[2]) {
		t.Errorf("sizes not monotone: %v", got)
	}
}

func TestGenerateUnknownBenchmark(t *testing.T) {
	if _, err := Generate("nonesuch", SizeTest); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestGenerateSpecRejectsBadShape(t *testing.T) {
	if _, err := GenerateSpec(Spec{Name: "bad"}, SizeTest); err == nil {
		t.Fatal("expected error for zero-shape spec")
	}
}

func TestKernelsRunAndTerminate(t *testing.T) {
	kernels := map[string]*isa.Program{
		"count":   KernelCountLoop(100, 4),
		"map":     KernelIndependentMap(64, 3),
		"calls":   KernelCallChain(50, 5),
		"diamond": KernelDiamond(80),
	}
	for name, p := range kernels {
		res, err := emu.Run(p, emu.Config{CollectTrace: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Fatalf("%s trace: %v", name, err)
		}
	}
}

func TestKernelCountLoopInstrCount(t *testing.T) {
	trips, pad := 10, 3
	p := KernelCountLoop(trips, pad)
	res, err := emu.Run(p, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// li,li + trips*(pad+addi+branch) + halt
	want := 2 + trips*(pad+2) + 1
	if res.Instrs != want {
		t.Errorf("instrs = %d, want %d", res.Instrs, want)
	}
}

func TestRNGDeterminismAndRanges(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.rangeInt(3, 9); v < 3 || v > 9 {
			t.Fatalf("rangeInt out of bounds: %d", v)
		}
		if v := r.intn(5); v < 0 || v >= 5 {
			t.Fatalf("intn out of bounds: %d", v)
		}
	}
	if newRNG(0).next() == 0 {
		t.Error("zero seed must still produce values")
	}
}
