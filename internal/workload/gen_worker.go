package workload

import (
	"repro/internal/isa"
)

// emitWorkers generates every worker routine planned by planWorkers,
// their helper wrappers, and the recursive routine when enabled.
func (g *gen) emitWorkers() {
	for ph, ws := range g.workers {
		for i := range ws {
			w := &ws[i]
			src := (ph + i) % g.nArrays
			dst := (ph + i + 1) % g.nArrays
			g.emitWorker(w, src, dst)
			if w.helper != "" {
				g.emitHelper(w)
			}
		}
	}
	if g.spec.Recursion {
		g.emitRecursive()
	}
}

// Worker-local register assignments (r15..r21).
const (
	wR0 = workerR0     // r15
	wR1 = workerR0 + 1 // r16
	wR2 = workerR0 + 2 // r17
	wR3 = workerR0 + 3 // r18
	wR4 = workerR0 + 4 // r19
	wR5 = workerR0 + 5 // r20
	wR6 = workerR0 + 6 // r21
)

func (g *gen) emitWorker(w *worker, srcArr, dstArr int) {
	switch w.kind {
	case kindMap:
		g.emitMapWorker(w, srcArr, dstArr)
	case kindReduce:
		g.emitReduceWorker(w, srcArr)
	case kindChase:
		g.emitChaseWorker(w)
	case kindBranchy:
		g.emitBranchyWorker(w, srcArr)
	}
}

func (g *gen) trips() int {
	t := g.r.rangeInt(g.spec.InnerTripsLo, g.spec.InnerTripsHi)
	if t > arrayWords {
		t = arrayWords
	}
	return t
}

// emitSegments generates the multi-block body core of a worker loop: a
// chain of pad segments, each optionally guarded by a data-dependent
// diamond. Every segment join is an always-executed block, so loops
// with several segments contribute quadratically many candidate pairs —
// the structure behind the paper's thousands of qualifying pairs.
// The dataflow runs from `in` to the returned register (wR4).
func (g *gen) emitSegments(in isa.Reg, diamondProb float64) isa.Reg {
	b := g.b
	cur := in
	segs := g.r.rangeInt(2, 4)
	for s := 0; s < segs; s++ {
		pad := g.r.rangeInt(g.spec.BlockPadLo, g.spec.BlockPadHi)
		g.emitPad(pad, []isa.Reg{cur, in}, wR4)
		cur = wR4
		if g.r.chance(diamondProb) {
			alt := g.label("segalt")
			join := g.label("segjoin")
			bits := g.r.rangeInt(1, 3)
			b.Li(wR5, int64(1)<<uint(bits)-1)
			b.Op3(isa.OpAnd, wR5, cur, wR5)
			b.Branch(isa.OpBeq, wR5, 0, alt)
			g.emitPad(g.r.rangeInt(2, g.spec.BlockPadLo+3), []isa.Reg{cur}, wR6)
			b.Op3(isa.OpAdd, wR4, cur, wR6)
			b.Jmp(join)
			b.Label(alt)
			g.emitPad(g.r.rangeInt(2, g.spec.BlockPadLo+3), []isa.Reg{cur}, wR6)
			b.Op3(isa.OpXor, wR4, cur, wR6)
			b.Label(join)
			cur = wR4
		}
	}
	return cur
}

// emitVarTrips leaves a data-dependent trip count in dst: lo plus a
// power-of-two-bounded LCG value, clamped so address-bounded loops stay
// inside their arrays. Clobbers wR5 and regTmp.
func (g *gen) emitVarTrips(dst isa.Reg, lo, hi, cap int) {
	target := hi * 2
	if target > cap {
		target = cap
	}
	spread := 1
	for lo+spread*2-1 <= target {
		spread *= 2
	}
	b := g.b
	g.emitLCGStep(dst)
	b.Li(wR5, int64(spread-1))
	b.Op3(isa.OpAnd, dst, dst, wR5)
	b.Addi(dst, dst, int64(lo))
}

// emitAddrBound leaves the loop end address base+8*trips in dst, either
// fixed or data-dependent per the spec's VarTrips probability. The base
// register must already hold the array base.
func (g *gen) emitAddrBound(dst, baseReg isa.Reg, base int64, trips int) {
	b := g.b
	if g.r.chance(g.spec.VarTrips) {
		g.emitVarTrips(dst, g.spec.InnerTripsLo, g.spec.InnerTripsHi, arrayWords)
		b.Li(wR5, 8)
		b.Op3(isa.OpMul, dst, dst, wR5)
		b.Op3(isa.OpAdd, dst, dst, baseReg)
		return
	}
	b.Li(dst, base+8*int64(trips))
}

// padBodyTo pads a loop body with independent filler ops until it is at
// least min instructions long (counted from start). Generated loops thus
// have realistic iteration sizes — real compiled loop bodies are rarely
// a handful of instructions.
func (g *gen) padBodyTo(start uint32, min int, src isa.Reg) {
	for i := 0; int(g.b.PC()-start) < min; i++ {
		g.b.Op3(isa.OpXor, padR0+isa.Reg(i%4), src, src)
	}
}

// emitMapWorker: independent iterations — dst[i] = f(src[i]). The
// parallel-friendly shape the profile scheme should exploit.
func (g *gen) emitMapWorker(w *worker, srcArr, dstArr int) {
	b := g.b
	trips := g.trips()
	src := g.arrayBase(srcArr)
	dst := g.arrayBase(dstArr)
	loop := g.label("maploop")

	b.Func(w.label)
	b.Li(wR0, src)
	g.emitAddrBound(wR1, wR0, src, trips)
	b.Li(wR2, dst)
	b.Label(loop)
	bodyStart := b.PC()
	b.Load(wR3, wR0, 0)
	out := g.emitSegments(wR3, g.spec.BranchNoise)
	b.Store(out, wR2, 0)
	g.maybeSharedWrite(out)
	g.padBodyTo(bodyStart, minLoopBody, out)
	b.Addi(wR0, wR0, 8)
	b.Addi(wR2, wR2, 8)
	b.Branch(isa.OpBltu, wR0, wR1, loop)
	b.Op3(isa.OpOr, regRet, out, 0)
	b.Ret()
}

// emitReduceWorker: acc = acc ⊕ f(src[i]) — a loop-carried scalar that
// defeats iteration-level speculation (the accumulator live-in is not
// stride-predictable).
func (g *gen) emitReduceWorker(w *worker, srcArr int) {
	b := g.b
	trips := g.trips()
	src := g.arrayBase(srcArr)
	loop := g.label("redloop")

	b.Func(w.label)
	b.Li(wR0, src)
	g.emitAddrBound(wR1, wR0, src, trips)
	b.Li(wR2, int64(g.r.rangeInt(0, 9))) // acc
	b.Label(loop)
	bodyStart := b.PC()
	b.Load(wR3, wR0, 0)
	out := g.emitSegments(wR3, g.spec.BranchNoise)
	b.Op3(isa.OpAdd, wR2, wR2, out)
	g.maybeSharedWrite(wR2)
	g.padBodyTo(bodyStart, minLoopBody, out)
	b.Addi(wR0, wR0, 8)
	b.Branch(isa.OpBltu, wR0, wR1, loop)
	b.Op3(isa.OpOr, regRet, wR2, 0)
	b.Ret()
}

// emitChaseWorker: p = *p pointer chase — serial and latency-bound, with
// an unpredictable loop-carried live-in.
func (g *gen) emitChaseWorker(w *worker) {
	b := g.b
	trips := g.r.rangeInt(g.spec.InnerTripsLo, g.spec.InnerTripsHi)
	if trips > chaseWords {
		trips = chaseWords
	}
	pad := g.r.rangeInt(2, g.spec.BlockPadLo+2)
	loop := g.label("chaseloop")

	b.Func(w.label)
	b.Li(wR0, chaseBase)
	if g.r.chance(g.spec.VarTrips) {
		g.emitVarTrips(wR2, g.spec.InnerTripsLo, g.spec.InnerTripsHi, chaseWords)
	} else {
		b.Li(wR2, int64(trips))
	}
	b.Li(wR1, 0)
	b.Label(loop)
	bodyStart := b.PC()
	b.Load(wR0, wR0, 0)
	g.emitPad(pad, []isa.Reg{wR0}, wR3)
	g.padBodyTo(bodyStart, minLoopBody, wR3)
	b.Addi(wR1, wR1, 1)
	b.Branch(isa.OpBltu, wR1, wR2, loop)
	b.Op3(isa.OpAdd, regRet, wR0, wR3)
	b.Ret()
}

// emitBranchyWorker: a scan whose body branches on loaded data in every
// segment — the irregular-control shape (gshare-hostile when the data
// is hashed).
func (g *gen) emitBranchyWorker(w *worker, srcArr int) {
	b := g.b
	trips := g.trips()
	src := g.arrayBase(srcArr)
	loop := g.label("brloop")

	b.Func(w.label)
	b.Li(wR0, src)
	g.emitAddrBound(wR1, wR0, src, trips)
	b.Li(wR2, 0) // acc
	b.Label(loop)
	bodyStart := b.PC()
	b.Load(wR3, wR0, 0)
	out := g.emitSegments(wR3, 1.0)
	b.Op3(isa.OpXor, wR2, wR2, out)
	g.maybeSharedWrite(wR2)
	g.padBodyTo(bodyStart, minLoopBody, out)
	b.Addi(wR0, wR0, 8)
	b.Branch(isa.OpBltu, wR0, wR1, loop)
	b.Op3(isa.OpOr, regRet, wR2, 0)
	b.Ret()
}

// emitHelper wraps a worker behind a small function: compute, call,
// post-process the return value.
func (g *gen) emitHelper(w *worker) {
	b := g.b
	const (
		hR0 = helperR0     // r22
		hR1 = helperR0 + 1 // r23
		hR2 = helperR0 + 2 // r24
	)
	b.Func(w.helper)
	b.Li(hR0, int64(g.r.rangeInt(1, 1<<16)))
	g.emitPad(g.r.rangeInt(2, 4), []isa.Reg{hR0}, hR1)
	b.Call(w.label)
	g.emitPad(g.r.rangeInt(2, 4), []isa.Reg{regRet, hR1}, hR2)
	b.Op3(isa.OpAdd, regRet, regRet, hR2)
	b.Ret()
}

// emitRecursive generates rec(n) = rec(n-1) + n with the frame saved on
// the memory stack (call/return-rich irregular region).
func (g *gen) emitRecursive() {
	b := g.b
	const tmp = helperR0 // r22
	b.Func("rec")
	b.Li(tmp, 1)
	b.Branch(isa.OpBgeu, tmp, regRet, "rec_base")
	b.Store(regRet, regSP, 0)
	b.Addi(regSP, regSP, 8)
	b.Addi(regRet, regRet, -1)
	b.Call("rec")
	b.Addi(regSP, regSP, -8)
	b.Load(tmp, regSP, 0)
	b.Op3(isa.OpAdd, regRet, regRet, tmp)
	b.Ret()
	b.Label("rec_base")
	b.Li(regRet, 1)
	b.Ret()
}

// maybeSharedWrite emits, with the spec's probability, a read-modify-
// write of an LCG-hashed shared-table slot — the cross-thread memory
// dependences the speculative versioning cache must detect.
func (g *gen) maybeSharedWrite(v isa.Reg) {
	if !g.r.chance(g.spec.SharedWrite) {
		return
	}
	b := g.b
	g.emitLCGStep(wR5)
	b.Li(wR6, sharedWords-1)
	b.Op3(isa.OpAnd, wR5, wR5, wR6)
	b.Li(wR6, 8)
	b.Op3(isa.OpMul, wR5, wR5, wR6)
	b.Op3(isa.OpAdd, wR5, wR5, regShared)
	b.Load(wR6, wR5, 0)
	b.Op3(isa.OpAdd, wR6, wR6, v)
	b.Store(wR6, wR5, 0)
}

// padOps is the op mix for straight-line padding: mostly 1-cycle ALU,
// a little integer multiply and FP to exercise the other unit pools.
var padOps = []isa.Op{
	isa.OpAdd, isa.OpAdd, isa.OpXor, isa.OpSub, isa.OpOr, isa.OpAnd,
	isa.OpAdd, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpMul, isa.OpFAdd,
}

// emitPad generates n straight-line ops whose dataflow starts from the
// `in` registers and ends in `out`. Intermediate results live in the pad
// scratch window (r28..r31), so pads never interfere across calls.
func (g *gen) emitPad(n int, in []isa.Reg, out isa.Reg) {
	b := g.b
	if n < 1 {
		n = 1
	}
	pool := append([]isa.Reg{}, in...)
	for i := 0; i < n; i++ {
		dst := padR0 + isa.Reg(i%4)
		if i == n-1 {
			dst = out
		}
		op := padOps[g.r.intn(len(padOps))]
		s1 := pool[g.r.intn(len(pool))]
		s2 := pool[g.r.intn(len(pool))]
		if op == isa.OpShl || op == isa.OpShr {
			if s1 == dst {
				s1 = in[0] // keep the dataflow chain intact
			}
			// Bound shift amounts via a small immediate register.
			b.Li(dst, int64(g.r.rangeInt(1, 13)))
			b.Op3(op, dst, s1, dst)
		} else {
			b.Op3(op, dst, s1, s2)
		}
		if len(pool) < 6 {
			pool = append(pool, dst)
		} else {
			pool[g.r.intn(len(pool))] = dst
		}
	}
}
