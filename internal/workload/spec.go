// Package workload generates the synthetic SpecInt95-like benchmark
// suite. SpecInt95 sources, inputs, and Alpha binaries are not available,
// so each benchmark is replaced by a deterministic synthetic program
// whose *dynamic-stream properties* mimic the published character of the
// original (DESIGN.md §1): code footprint, loop regularity, branch bias,
// value predictability of thread live-ins, and the density of
// dependences that cross candidate thread boundaries. Those are the only
// properties the spawning analyses and the trace-driven simulator
// observe.
package workload

import "fmt"

// SizeClass scales dynamic work without changing program structure.
type SizeClass int

// Size classes: Test keeps unit tests fast; Small is the default for
// examples; Full is used by the experiment harness and benches.
const (
	SizeTest SizeClass = iota
	SizeSmall
	SizeFull
)

// factor returns the trip-count multiplier for the class.
func (s SizeClass) factor() int {
	switch s {
	case SizeTest:
		return 1
	case SizeSmall:
		return 2
	default:
		return 4
	}
}

// String returns the class name.
func (s SizeClass) String() string {
	switch s {
	case SizeTest:
		return "test"
	case SizeSmall:
		return "small"
	default:
		return "full"
	}
}

// ParseSize parses a size-class name ("test", "small", "full") as the
// CLI tools and the server accept it.
func ParseSize(s string) (SizeClass, error) {
	switch s {
	case "test":
		return SizeTest, nil
	case "small":
		return SizeSmall, nil
	case "full":
		return SizeFull, nil
	}
	return 0, fmt.Errorf("workload: unknown size %q (want test, small, or full)", s)
}

// Spec is a benchmark personality. All probabilities are in [0,1].
type Spec struct {
	Name string
	Seed uint64

	// Phases is the number of top-level program phases (each phase is
	// an outer loop over a distinct mix of worker routines).
	Phases int
	// WorkersPerPhase bounds the worker routines a phase draws on.
	WorkersPerPhase int
	// OuterTrips is the base outer-loop trip count of each phase.
	OuterTrips int
	// InnerTripsLo/Hi bound per-loop trip counts of worker loops.
	InnerTripsLo, InnerTripsHi int

	// MapFrac is the probability a worker loop is a map-style loop with
	// independent iterations (parallel-friendly); the rest are
	// reductions, pointer chases, or branchy scans per the weights
	// below (normalised).
	MapFrac     float64
	ReduceFrac  float64
	ChaseFrac   float64
	BranchyFrac float64

	// CallHeavy is the probability a phase body routes work through a
	// chain of small helper calls (subroutine-continuation material).
	CallHeavy float64
	// RetValUsed is the probability a call's return value is consumed
	// immediately by the continuation (making the heuristic
	// subroutine-continuation spawn dependence-bound).
	RetValUsed float64
	// Recursion enables a bounded recursive routine (go, li).
	Recursion bool

	// BranchNoise is the probability a worker-loop body includes a
	// data-dependent (LCG-driven) unpredictable branch.
	BranchNoise float64
	// PredictableData is the probability array data is laid out as
	// linear sequences (stride-predictable loads) rather than hashed.
	PredictableData float64

	// BlockPadLo/Hi bound the straight-line compute padding per block,
	// controlling block and thread sizes.
	BlockPadLo, BlockPadHi int

	// SharedWrite is the per-iteration probability that a worker loop
	// read-modify-writes a hashed slot of a shared table, creating the
	// occasional cross-thread memory dependence the SVC must catch.
	SharedWrite float64

	// VarTrips is the probability a worker loop's trip count is
	// data-dependent (computed from the in-program LCG at entry)
	// rather than fixed. Variable trip counts create the thread-size
	// imbalance the paper's spawning-pair removal policy targets, and
	// make loop exits branch-unpredictable.
	VarTrips float64
}

// Benchmarks lists the SpecInt95 programs in the paper's order.
var Benchmarks = []string{
	"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex",
}

// specs maps each benchmark to its personality. The parameters were
// chosen so the suite spans the axes the paper's results turn on:
// ijpeg most regular (highest speed-up), compress tiny code footprint
// (~30 selected pairs) and serial, gcc the largest CFG, go/li irregular
// control with recursion, vortex call-heavy.
var specs = map[string]Spec{
	"go": {
		Name: "go", Seed: 101,
		Phases: 4, WorkersPerPhase: 5, OuterTrips: 12,
		InnerTripsLo: 6, InnerTripsHi: 22,
		MapFrac: 0.35, ReduceFrac: 0.25, ChaseFrac: 0.10, BranchyFrac: 0.30,
		CallHeavy: 0.5, RetValUsed: 0.5, Recursion: true,
		BranchNoise: 0.45, PredictableData: 0.45,
		BlockPadLo: 3, BlockPadHi: 8,
		SharedWrite: 0.06,
		VarTrips:    0.5,
	},
	"m88ksim": {
		Name: "m88ksim", Seed: 202,
		Phases: 3, WorkersPerPhase: 4, OuterTrips: 14,
		InnerTripsLo: 8, InnerTripsHi: 28,
		MapFrac: 0.50, ReduceFrac: 0.20, ChaseFrac: 0.05, BranchyFrac: 0.25,
		CallHeavy: 0.6, RetValUsed: 0.35, Recursion: false,
		BranchNoise: 0.25, PredictableData: 0.65,
		BlockPadLo: 4, BlockPadHi: 9,
		SharedWrite: 0.04,
		VarTrips:    0.3,
	},
	"gcc": {
		Name: "gcc", Seed: 303,
		Phases: 7, WorkersPerPhase: 6, OuterTrips: 8,
		InnerTripsLo: 4, InnerTripsHi: 18,
		MapFrac: 0.40, ReduceFrac: 0.20, ChaseFrac: 0.10, BranchyFrac: 0.30,
		CallHeavy: 0.7, RetValUsed: 0.45, Recursion: false,
		BranchNoise: 0.40, PredictableData: 0.50,
		BlockPadLo: 3, BlockPadHi: 7,
		SharedWrite: 0.08,
		VarTrips:    0.5,
	},
	"compress": {
		Name: "compress", Seed: 404,
		Phases: 2, WorkersPerPhase: 3, OuterTrips: 30,
		InnerTripsLo: 10, InnerTripsHi: 24,
		MapFrac: 0.20, ReduceFrac: 0.55, ChaseFrac: 0.15, BranchyFrac: 0.10,
		CallHeavy: 0.2, RetValUsed: 0.7, Recursion: false,
		BranchNoise: 0.35, PredictableData: 0.40,
		BlockPadLo: 3, BlockPadHi: 6,
		SharedWrite: 0.15,
		VarTrips:    0.3,
	},
	"li": {
		Name: "li", Seed: 505,
		Phases: 4, WorkersPerPhase: 4, OuterTrips: 11,
		InnerTripsLo: 5, InnerTripsHi: 16,
		MapFrac: 0.35, ReduceFrac: 0.25, ChaseFrac: 0.20, BranchyFrac: 0.20,
		CallHeavy: 0.7, RetValUsed: 0.5, Recursion: true,
		BranchNoise: 0.30, PredictableData: 0.55,
		BlockPadLo: 3, BlockPadHi: 7,
		SharedWrite: 0.06,
		VarTrips:    0.45,
	},
	"ijpeg": {
		Name: "ijpeg", Seed: 606,
		Phases: 3, WorkersPerPhase: 4, OuterTrips: 14,
		InnerTripsLo: 20, InnerTripsHi: 56,
		MapFrac: 0.80, ReduceFrac: 0.10, ChaseFrac: 0.0, BranchyFrac: 0.10,
		CallHeavy: 0.3, RetValUsed: 0.2, Recursion: false,
		BranchNoise: 0.08, PredictableData: 0.9,
		BlockPadLo: 5, BlockPadHi: 10,
		SharedWrite: 0.01,
		VarTrips:    0.1,
	},
	"perl": {
		Name: "perl", Seed: 707,
		Phases: 5, WorkersPerPhase: 5, OuterTrips: 10,
		InnerTripsLo: 4, InnerTripsHi: 36,
		MapFrac: 0.40, ReduceFrac: 0.20, ChaseFrac: 0.15, BranchyFrac: 0.25,
		CallHeavy: 0.6, RetValUsed: 0.5, Recursion: false,
		BranchNoise: 0.35, PredictableData: 0.50,
		BlockPadLo: 2, BlockPadHi: 9,
		SharedWrite: 0.08,
		VarTrips:    0.55,
	},
	"vortex": {
		Name: "vortex", Seed: 808,
		Phases: 5, WorkersPerPhase: 5, OuterTrips: 11,
		InnerTripsLo: 8, InnerTripsHi: 24,
		MapFrac: 0.55, ReduceFrac: 0.15, ChaseFrac: 0.05, BranchyFrac: 0.25,
		CallHeavy: 0.85, RetValUsed: 0.3, Recursion: false,
		BranchNoise: 0.20, PredictableData: 0.65,
		BlockPadLo: 4, BlockPadHi: 8,
		SharedWrite: 0.05,
		VarTrips:    0.35,
	},
}

// Lookup returns the personality spec for a benchmark name.
func Lookup(name string) (Spec, error) {
	s, ok := specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return s, nil
}
