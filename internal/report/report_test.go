package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Figure X: sample",
		Note:    "a note",
		Columns: []string{"benchmark", "speed-up"},
	}
	t.AddRow("ijpeg", "6.83")
	t.AddRow("compress, special", `has "quotes"`)
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure X: sample", "benchmark", "ijpeg", "6.83", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Column alignment: the second column starts at the same offset in
	// the header and data lines.
	lines := strings.Split(out, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "benchmark") {
			header = l
			row = lines[i+2]
			break
		}
	}
	if strings.Index(header, "speed-up") < 0 || len(row) == 0 {
		t.Fatalf("unexpected layout:\n%s", out)
	}
}

func TestRenderCSVEscapes(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"compress, special"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"has ""quotes"""`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "benchmark,speed-up") {
		t.Errorf("missing header:\n%s", out)
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3.14159: "3.14",
		42.5:    "42.5",
		12345:   "12345",
	}
	for v, want := range cases {
		if got := Fmt(v); got != want {
			t.Errorf("Fmt(%v) = %q, want %q", v, got, want)
		}
	}
	if FmtInt(7) != "7" {
		t.Error("FmtInt wrong")
	}
	if FmtPct(0.125) != "12.5%" {
		t.Error("FmtPct wrong")
	}
}

func TestRenderEmptyTable(t *testing.T) {
	tab := &Table{Columns: []string{"a"}}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
