// Package report renders the experiment results as aligned ASCII tables
// (one per paper figure) and exports CSV for plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented report: one row per benchmark (or
// configuration) plus an optional summary row.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fmt formats a float at a sensible precision for the tables.
func Fmt(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// FmtInt formats an integer cell.
func FmtInt(v int64) string { return fmt.Sprintf("%d", v) }

// FmtPct formats a fraction as a percentage.
func FmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}

	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", min(total, len(t.Title)))); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			if i == 0 {
				sb.WriteString(cell + strings.Repeat(" ", pad))
			} else {
				sb.WriteString("  " + strings.Repeat(" ", pad) + cell)
			}
		}
		_, err := fmt.Fprintln(w, sb.String())
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
