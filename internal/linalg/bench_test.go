package linalg

import (
	"fmt"
	"testing"
)

func randomSquare(n int, seed uint64) *Matrix {
	s := seed
	next := func() float64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return float64(s*0x2545f4914f6cdd1d%1000)/1000 - 0.5
	}
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		sum := 0.0
		for j := range row {
			row[j] = next()
			sum += row[j]
			if sum < 0 {
				sum = -sum
			}
		}
		row[i] = sum + 1 // diagonally dominant: always factorisable
	}
	return a
}

// BenchmarkLinalg measures the packed register-blocked kernels (the
// *-into benchmarks), the allocating convenience wrappers, and the
// scalar reference kernels they replaced (*-ref) — so the micro-kernel
// speedup is visible in one table. scripts/bench_reach.sh records
// these numbers alongside BenchmarkReach in BENCH_reach.json.
func BenchmarkLinalg(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		a := randomSquare(n, 7)
		bm := randomSquare(n, 13)
		b.Run(fmt.Sprintf("factor-alloc/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Factor(a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("factor-into/n=%d", n), func(b *testing.B) {
			f := NewLU(n)
			if err := f.FactorInto(a); err != nil { // warm the packing buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.FactorInto(a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("factor-ref/n=%d", n), func(b *testing.B) {
			f := NewLU(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.FactorIntoRef(a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("inverse-into/n=%d", n), func(b *testing.B) {
			f := NewLU(n)
			if err := f.FactorInto(a); err != nil {
				b.Fatal(err)
			}
			dst := NewMatrix(n, n)
			f.InverseInto(dst) // warm the packing buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.InverseInto(dst)
			}
		})
		b.Run(fmt.Sprintf("trsm/n=%d", n), func(b *testing.B) {
			f := NewLU(n)
			if err := f.FactorInto(a); err != nil {
				b.Fatal(err)
			}
			dst := NewMatrix(n, n)
			f.SolveMatInto(dst, bm) // warm the packing buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.SolveMatInto(dst, bm)
			}
		})
		b.Run(fmt.Sprintf("mul-alloc/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Mul(a, bm)
			}
		})
		b.Run(fmt.Sprintf("mul-into/n=%d", n), func(b *testing.B) {
			dst := NewMatrix(n, n)
			ws := NewWorkspace()
			MulIntoOpt(dst, a, bm, 1, ws) // warm the packing buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulIntoOpt(dst, a, bm, 1, ws)
			}
		})
		b.Run(fmt.Sprintf("mul-ref/n=%d", n), func(b *testing.B) {
			dst := NewMatrix(n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulIntoRef(dst, a, bm)
			}
		})
		b.Run(fmt.Sprintf("solve/n=%d", n), func(b *testing.B) {
			f := NewLU(n)
			if err := f.FactorInto(a); err != nil {
				b.Fatal(err)
			}
			rhs := make([]float64, n)
			x := make([]float64, n)
			for i := range rhs {
				rhs[i] = float64(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Solve(rhs, x)
			}
		})
	}
}
