package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve([]float64{5, 10}, x)
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestFactorRequiresSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected non-square error")
	}
}

func TestSingularDetected(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestDet(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 4)
	a.Set(1, 1, 2)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 2, 1e-12) {
		t.Errorf("det = %v, want 2", f.Det())
	}
}

func TestIdentityAndMul(t *testing.T) {
	id := Identity(3)
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64(i*3+j+1))
		}
	}
	p := Mul(a, id)
	for i := range a.Data {
		if p.Data[i] != a.Data[i] {
			t.Fatalf("A·I != A at %d", i)
		}
	}
	p = Mul(id, a)
	for i := range a.Data {
		if p.Data[i] != a.Data[i] {
			t.Fatalf("I·A != A at %d", i)
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 2)
	a.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("y = %v", y)
	}
}

// randomDiagDominant builds a well-conditioned matrix from fuzz input.
func randomDiagDominant(n int, vals []float64) *Matrix {
	a := NewMatrix(n, n)
	k := 0
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := math.Mod(math.Abs(vals[k%len(vals)]), 1.0)
			k++
			a.Set(i, j, v)
			sum += v
		}
		a.Set(i, i, sum+1)
	}
	return a
}

func TestInverseProperty(t *testing.T) {
	f := func(raw []float64, nRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		n := int(nRaw%6) + 2
		a := randomDiagDominant(n, raw)
		inv, err := Invert(a)
		if err != nil {
			return false
		}
		prod := Mul(a, inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(prod.At(i, j), want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveMatchesMulVecProperty(t *testing.T) {
	f := func(raw []float64, nRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		n := int(nRaw%5) + 2
		a := randomDiagDominant(n, raw)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Mod(raw[i%len(raw)], 10)
		}
		b := make([]float64, n)
		a.MulVec(x, b)
		fac, err := Factor(a)
		if err != nil {
			return false
		}
		got := make([]float64, n)
		fac.Solve(b, got)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Identity(2)
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}
