// Scalar reference kernels. These are the pre-blocking implementations
// of the O(n³) operations, kept for two jobs: they are the numerical
// parity oracle the property tests pit the packed/blocked kernels
// against, and they are the fallback path on architectures without the
// assembly micro-kernel (and for matrices too small to amortise
// packing). They allocate nothing beyond their destination arguments.
package linalg

import (
	"fmt"
	"math"
)

// mulBlock is the k-panel height of the reference multiply: mulBlock
// rows of B (≤ 2KB each at n ≤ 256) stay L1/L2-resident while a C row
// accumulates across the panel.
const mulBlock = 64

// MulIntoRef computes dst = a·b with the scalar axpy kernel. dst must
// not alias a or b. It is the parity reference for MulInto and the
// fallback when the packed micro-kernel is unavailable or not worth
// its packing overhead.
func MulIntoRef(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dims %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reshape(a.Rows, b.Cols)
	for kk := 0; kk < a.Cols; kk += mulBlock {
		kend := kk + mulBlock
		if kend > a.Cols {
			kend = a.Cols
		}
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			crow := dst.Row(i)
			for k := kk; k < kend; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	return dst
}

// FactorIntoRef factorises a into f's storage with the unblocked
// scalar elimination. Same contract as FactorInto; it is the parity
// reference for the blocked path.
func (f *LU) FactorIntoRef(a *Matrix) error {
	n, err := f.factorPrologue(a)
	if err != nil {
		return err
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Pivot selection.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max < pivotTol {
			return fmt.Errorf("%w: pivot %d ~ %g", ErrSingular, k, max)
		}
		if p != k {
			f.swapRows(k, p)
		}
		// Elimination.
		pivot := lu.At(k, k)
		rowk := lu.Row(k)
		for i := k + 1; i < n; i++ {
			rowi := lu.Row(i)
			fac := rowi[k] / pivot
			rowi[k] = fac
			if fac == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				rowi[j] -= fac * rowk[j]
			}
		}
	}
	return nil
}

// InverseIntoRef computes A⁻¹ column by column through Solve — the
// parity reference for the blocked InverseInto.
func (f *LU) InverseIntoRef(dst *Matrix) *Matrix {
	n := f.lu.Rows
	dst.Reshape(n, n)
	e := f.aux
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		f.Solve(e, e)
		for i := 0; i < n; i++ {
			dst.Set(i, j, e[i])
		}
	}
	return dst
}

// gemmBlockRef applies C[ci:ci+m, cj:cj+n] op= A[ai:ai+m, ak:ak+kk] ·
// B[bk:bk+kk, bj:bj+n] with scalar loops — the mode-aware view GEMM
// used when the packed path is unavailable. op is gemmSet/gemmAdd/
// gemmSub.
func gemmBlockRef(c *Matrix, ci, cj int, a *Matrix, ai, ak int, b *Matrix, bk, bj int, m, kk, n, mode int) {
	if mode == gemmSet {
		for i := 0; i < m; i++ {
			crow := c.Row(ci + i)[cj : cj+n]
			for j := range crow {
				crow[j] = 0
			}
		}
	}
	sign := 1.0
	if mode == gemmSub {
		sign = -1
	}
	for i := 0; i < m; i++ {
		arow := a.Row(ai + i)[ak : ak+kk]
		crow := c.Row(ci + i)[cj : cj+n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			av *= sign
			brow := b.Row(bk + k)[bj : bj+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}
