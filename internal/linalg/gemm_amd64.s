// AVX2+FMA micro-kernels for the packed GEMM engine and the dense
// vector helpers. Selected at start-up by cpuHasAVX2FMA; every caller
// is gated on useAsm, so these routines may assume AVX2 and FMA3.
#include "textflag.h"

// func cpuHasAVX2FMA() bool
//
// CPUID.1:ECX must report FMA (bit 12), OSXSAVE (bit 27) and AVX
// (bit 28); XCR0 must enable XMM+YMM state (bits 1,2); and
// CPUID.7.0:EBX must report AVX2 (bit 5).
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<12 | 1<<27 | 1<<28), R8
	CMPL R8, $(1<<12 | 1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func gemm4x8(kc int, ap, bp, c *float64, ldc, mode int)
//
// Computes the 4×8 tile T[r][s] = Σ_p ap[4p+r]·bp[8p+s] over a depth-kc
// packed A micro-panel (column-major 4-row groups) and packed B
// micro-panel (row-major 8-col groups), then applies it to C (row
// stride ldc elements) according to mode: 0 store, 1 add, 2 subtract.
// The 8 YMM accumulators never touch memory inside the loop, so the
// inner loop runs at FMA throughput rather than load/store bandwidth.
TEXT ·gemm4x8(SB), NOSPLIT, $0-48
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8 // row stride in bytes
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
loop:
	VMOVUPD      (DI), Y8
	VMOVUPD      32(DI), Y9
	VBROADCASTSD (SI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 8(SI), Y11
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(SI), Y12
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD 24(SI), Y13
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ $32, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

	MOVQ mode+40(FP), AX
	CMPQ AX, $1
	JE   addmode
	CMPQ AX, $2
	JE   submode

	// mode 0: C = T
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	ADDQ    R8, DX
	VMOVUPD Y2, (DX)
	VMOVUPD Y3, 32(DX)
	ADDQ    R8, DX
	VMOVUPD Y4, (DX)
	VMOVUPD Y5, 32(DX)
	ADDQ    R8, DX
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)
	VZEROUPPER
	RET

addmode:
	// mode 1: C += T
	VADDPD  (DX), Y0, Y0
	VADDPD  32(DX), Y1, Y1
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	ADDQ    R8, DX
	VADDPD  (DX), Y2, Y2
	VADDPD  32(DX), Y3, Y3
	VMOVUPD Y2, (DX)
	VMOVUPD Y3, 32(DX)
	ADDQ    R8, DX
	VADDPD  (DX), Y4, Y4
	VADDPD  32(DX), Y5, Y5
	VMOVUPD Y4, (DX)
	VMOVUPD Y5, 32(DX)
	ADDQ    R8, DX
	VADDPD  (DX), Y6, Y6
	VADDPD  32(DX), Y7, Y7
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)
	VZEROUPPER
	RET

submode:
	// mode 2: C -= T
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VSUBPD  Y0, Y8, Y8
	VSUBPD  Y1, Y9, Y9
	VMOVUPD Y8, (DX)
	VMOVUPD Y9, 32(DX)
	ADDQ    R8, DX
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VSUBPD  Y2, Y8, Y8
	VSUBPD  Y3, Y9, Y9
	VMOVUPD Y8, (DX)
	VMOVUPD Y9, 32(DX)
	ADDQ    R8, DX
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VSUBPD  Y4, Y8, Y8
	VSUBPD  Y5, Y9, Y9
	VMOVUPD Y8, (DX)
	VMOVUPD Y9, 32(DX)
	ADDQ    R8, DX
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9
	VSUBPD  Y6, Y8, Y8
	VSUBPD  Y7, Y9, Y9
	VMOVUPD Y8, (DX)
	VMOVUPD Y9, 32(DX)
	VZEROUPPER
	RET

// func dotAsm(x, y *float64, n int) float64
//
// Four-accumulator FMA dot product: the 16-wide main loop keeps four
// independent YMM chains so the add latency of a single serial chain
// never bounds throughput; the fixed reduction order keeps results
// deterministic.
TEXT ·dotAsm(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ   CX, DX
	SHRQ   $4, DX
	JZ     reduce
loop16:
	VMOVUPD     (SI), Y4
	VMOVUPD     32(SI), Y5
	VMOVUPD     64(SI), Y6
	VMOVUPD     96(SI), Y7
	VFMADD231PD (DI), Y4, Y0
	VFMADD231PD 32(DI), Y5, Y1
	VFMADD231PD 64(DI), Y6, Y2
	VFMADD231PD 96(DI), Y7, Y3
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        DX
	JNZ         loop16
reduce:
	VADDPD       Y1, Y0, Y0
	VADDPD       Y3, Y2, Y2
	VADDPD       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0
	VZEROUPPER
	ANDQ         $15, CX
	JZ           done
tail:
	MOVSD (SI), X1
	MULSD (DI), X1
	ADDSD X1, X0
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JNZ   tail
done:
	MOVSD X0, ret+24(FP)
	RET

// func axpyAsm(a float64, x, y *float64, n int)
//
// y += a·x, 16 elements per iteration with FMA.
TEXT ·axpyAsm(SB), NOSPLIT, $0-32
	VBROADCASTSD a+0(FP), Y0
	MOVQ         x+8(FP), SI
	MOVQ         y+16(FP), DI
	MOVQ         n+24(FP), CX
	MOVQ         CX, DX
	SHRQ         $4, DX
	JZ           tailsetup
loop16:
	VMOVUPD     (DI), Y1
	VMOVUPD     32(DI), Y2
	VMOVUPD     64(DI), Y3
	VMOVUPD     96(DI), Y4
	VFMADD231PD (SI), Y0, Y1
	VFMADD231PD 32(SI), Y0, Y2
	VFMADD231PD 64(SI), Y0, Y3
	VFMADD231PD 96(SI), Y0, Y4
	VMOVUPD     Y1, (DI)
	VMOVUPD     Y2, 32(DI)
	VMOVUPD     Y3, 64(DI)
	VMOVUPD     Y4, 96(DI)
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        DX
	JNZ         loop16
tailsetup:
	ANDQ $15, CX
	JZ   done2
	// Scalar tail: a stays in X0's low lane after VZEROUPPER.
	VZEROUPPER
tail2:
	MOVSD (SI), X1
	MULSD X0, X1
	ADDSD (DI), X1
	MOVSD X1, (DI)
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JNZ   tail2
	RET
done2:
	VZEROUPPER
	RET
