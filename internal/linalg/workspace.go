package linalg

// Workspace is a reusable scratch arena for vectors, matrices, and LU
// factorisations. Taking an object removes it from the pool; putting it
// back makes its storage available to the next request of compatible
// size, so a caller that runs the same computation repeatedly (the
// reach engine solves one chain per CFG, with ~a dozen scratch vectors
// per source node) reaches a steady state of zero allocations.
//
// A Workspace is NOT safe for concurrent use: give each goroutine its
// own, or guard it externally. Objects obtained from a Workspace may be
// returned to any Workspace (or simply dropped).
type Workspace struct {
	vecs []([]float64)
	mats []*Matrix
	lus  []*LU
	bufs []*gemmBuf
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Vec returns a zeroed length-n vector, reusing pooled storage with
// sufficient capacity when available.
func (w *Workspace) Vec(n int) []float64 {
	for i := len(w.vecs) - 1; i >= 0; i-- {
		if cap(w.vecs[i]) >= n {
			v := w.vecs[i][:n]
			last := len(w.vecs) - 1
			w.vecs[i] = w.vecs[last]
			w.vecs[last] = nil
			w.vecs = w.vecs[:last]
			for j := range v {
				v[j] = 0
			}
			return v
		}
	}
	return make([]float64, n)
}

// PutVec returns a vector to the pool.
func (w *Workspace) PutVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	w.vecs = append(w.vecs, v[:cap(v)])
}

// Matrix returns a zeroed rows×cols matrix, reusing pooled storage with
// sufficient capacity when available.
func (w *Workspace) Matrix(rows, cols int) *Matrix {
	n := rows * cols
	for i := len(w.mats) - 1; i >= 0; i-- {
		if cap(w.mats[i].Data) >= n {
			m := w.mats[i]
			last := len(w.mats) - 1
			w.mats[i] = w.mats[last]
			w.mats[last] = nil
			w.mats = w.mats[:last]
			m.Reshape(rows, cols)
			return m
		}
	}
	return NewMatrix(rows, cols)
}

// PutMatrix returns a matrix to the pool.
func (w *Workspace) PutMatrix(m *Matrix) {
	if m == nil {
		return
	}
	w.mats = append(w.mats, m)
}

// LU returns a factorisation scratch sized for n×n matrices (call
// FactorInto on it), reusing a pooled one when available.
func (w *Workspace) LU(n int) *LU {
	if last := len(w.lus) - 1; last >= 0 {
		f := w.lus[last]
		w.lus[last] = nil
		w.lus = w.lus[:last]
		return f
	}
	return NewLU(n)
}

// PutLU returns a factorisation to the pool.
func (w *Workspace) PutLU(f *LU) {
	if f == nil {
		return
	}
	w.lus = append(w.lus, f)
}

// packBuf returns a GEMM packing workspace (A block, B panel, bounce
// tile), reusing a pooled one when available. The packed multiply
// paths take one per call, so a caller that multiplies in a loop with
// the same Workspace reaches zero steady-state allocation.
func (w *Workspace) packBuf() *gemmBuf {
	if last := len(w.bufs) - 1; last >= 0 {
		b := w.bufs[last]
		w.bufs[last] = nil
		w.bufs = w.bufs[:last]
		return b
	}
	return new(gemmBuf)
}

// putPackBuf returns a packing workspace to the pool.
func (w *Workspace) putPackBuf(b *gemmBuf) {
	if b == nil {
		return
	}
	w.bufs = append(w.bufs, b)
}
