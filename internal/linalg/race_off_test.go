//go:build !race

package linalg

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately drops Puts at random under -race, so allocation pins on
// pool-backed paths only hold without it.
const raceEnabled = false
