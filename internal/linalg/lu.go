// Blocked LU factorisation and the solves built on it. FactorInto is
// right-looking with a fixed panel width: the panel is factorised with
// scalar/axpy column operations (partial pivoting, full-row swaps), the
// panel's row block of U is produced by a triangular solve (TRSM), and
// the trailing submatrix is updated through the packed GEMM kernel —
// which is where ~all of the O(n³) work lands. InverseInto and
// SolveMatInto are blocked forward/back substitutions over many right-
// hand sides at once, again with GEMM carrying the bulk of the flops.
package linalg

import (
	"fmt"
	"log/slog"
	"math"
	"sync"

	"repro/internal/sched"
)

// luPanel is the blocked factorisation's panel width: narrow enough
// that the scalar panel work stays a small fraction of n³, deep enough
// that the trailing GEMM's micro-kernel loop amortises its tile
// stores.
const luPanel = 32

// pivotTol is the magnitude below which a pivot is treated as
// (effectively) singular.
const pivotTol = 1e-14

// LU is a compact LU factorisation with partial pivoting: PA = LU. An
// LU's storage is reused across FactorInto calls, and Solve/
// SolveMatInto/InverseInto run out of its internal scratch, so a
// long-lived LU performs no steady-state allocation. An LU is not safe
// for concurrent use.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
	work []float64 // Solve scratch
	aux  []float64 // InverseIntoRef column scratch
	buf  *gemmBuf  // packing workspace for the blocked kernels

	// Sched, when non-nil, forks the trailing GEMM updates of
	// FactorInto/InverseInto/SolveMatInto as a task group on the
	// process's work-stealing scheduler, sharing its core budget.
	// Output is byte-identical for every scheduler size.
	Sched *sched.Scheduler

	// Workers bounds the deterministic tile fan-out with a private
	// goroutine pool when Sched is nil (<= 1 is serial; output is
	// byte-identical for every value).
	//
	// Deprecated: set Sched instead, so tile work draws from the one
	// scheduler budget rather than adding a pool on top of it.
	Workers int
}

// warnWorkersOnce emits the one-time deprecation notice for the
// private-pool LU.Workers knob.
var warnWorkersOnce sync.Once

// par resolves the fan-out selection, warning once when the deprecated
// private-pool knob is the one in effect.
func (f *LU) par() gemmPar {
	if f.Sched == nil && f.Workers > 1 {
		warnWorkersOnce.Do(func() {
			slog.Warn("linalg: LU.Workers is deprecated; set LU.Sched to share the scheduler budget")
		})
	}
	return gemmPar{sched: f.Sched, workers: f.Workers}
}

// NewLU returns an LU with storage preallocated for n×n factorisations.
func NewLU(n int) *LU {
	return &LU{
		lu:   NewMatrix(n, n),
		piv:  make([]int, n),
		work: make([]float64, n),
		aux:  make([]float64, n),
	}
}

// Factor computes the LU factorisation of a square matrix into fresh
// storage. The input is not modified.
func Factor(a *Matrix) (*LU, error) {
	f := NewLU(a.Rows)
	if err := f.FactorInto(a); err != nil {
		return nil, err
	}
	return f, nil
}

// factorPrologue copies a into f's (grown) storage and resets the
// pivot bookkeeping.
func (f *LU) factorPrologue(a *Matrix) (int, error) {
	if a.Rows != a.Cols {
		return 0, fmt.Errorf("linalg: Factor needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if f.lu == nil {
		f.lu = &Matrix{}
	}
	f.lu.CopyFrom(a)
	if cap(f.piv) < n {
		f.piv = make([]int, n)
		f.work = make([]float64, n)
		f.aux = make([]float64, n)
	}
	f.piv = f.piv[:n]
	f.work = f.work[:n]
	f.aux = f.aux[:n]
	for i := range f.piv {
		f.piv[i] = i
	}
	f.sign = 1.0
	return n, nil
}

// swapRows exchanges full rows k and p of the factorisation and the
// pivot record.
func (f *LU) swapRows(k, p int) {
	rk, rp := f.lu.Row(k), f.lu.Row(p)
	for j := range rk {
		rk[j], rp[j] = rp[j], rk[j]
	}
	f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
	f.sign = -f.sign
}

// FactorInto factorises a into f's storage, growing it if needed but
// never allocating once f has seen a matrix of this size. The input is
// not modified. On error f's previous factorisation is destroyed.
func (f *LU) FactorInto(a *Matrix) error {
	if !useAsm {
		return f.FactorIntoRef(a)
	}
	n, err := f.factorPrologue(a)
	if err != nil {
		return err
	}
	if f.buf == nil {
		f.buf = new(gemmBuf)
	}
	par := f.par()
	for k := 0; k < n; k += luPanel {
		kb := min(luPanel, n-k)
		if err := f.factorPanel(k, kb); err != nil {
			return err
		}
		rest := n - k - kb
		if rest == 0 {
			continue
		}
		f.trsmPanel(k, kb, rest)
		// Trailing update A22 -= A21·U12 through the packed kernel.
		gemmBlock(f.lu, k+kb, k+kb, f.lu, k+kb, k, f.lu, k, k+kb,
			rest, kb, rest, gemmSub, par, f.buf)
	}
	return nil
}

// factorPanel factorises columns [k, k+kb) over rows [k, n) with
// partial pivoting. Row swaps are applied to the full rows, so the
// pivot bookkeeping matches the unblocked reference exactly; the
// elimination updates only the panel's own columns — the columns to
// the right are handled by trsmPanel and the trailing GEMM.
func (f *LU) factorPanel(k, kb int) error {
	lu := f.lu
	n := lu.Rows
	for j := k; j < k+kb; j++ {
		p, max := j, math.Abs(lu.At(j, j))
		for i := j + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, j)); v > max {
				p, max = i, v
			}
		}
		if max < pivotTol {
			return fmt.Errorf("%w: pivot %d ~ %g", ErrSingular, j, max)
		}
		if p != j {
			f.swapRows(j, p)
		}
		pivot := lu.At(j, j)
		w := k + kb - j - 1 // update width within the panel
		rowj := lu.Row(j)[j+1 : j+1+w]
		for i := j + 1; i < n; i++ {
			rowi := lu.Row(i)
			fac := rowi[j] / pivot
			rowi[j] = fac
			if fac == 0 || w == 0 {
				continue
			}
			dst := rowi[j+1 : j+1+w]
			if useAsm && w >= 8 {
				axpyAsm(-fac, &rowj[0], &dst[0], w)
				continue
			}
			for t, v := range rowj {
				dst[t] -= fac * v
			}
		}
	}
	return nil
}

// trsmPanel computes U12 = L11⁻¹·A12 in place: for each panel row the
// contributions of the preceding panel rows are subtracted (L11 has
// unit diagonal, so no divisions).
func (f *LU) trsmPanel(k, kb, rest int) {
	lu := f.lu
	for j := k + 1; j < k+kb; j++ {
		ljrow := lu.Row(j)
		dst := ljrow[k+kb : k+kb+rest]
		for i := k; i < j; i++ {
			fac := ljrow[i]
			if fac == 0 {
				continue
			}
			src := lu.Row(i)[k+kb : k+kb+rest]
			if useAsm && rest >= 8 {
				axpyAsm(-fac, &src[0], &dst[0], rest)
				continue
			}
			for t, v := range src {
				dst[t] -= fac * v
			}
		}
	}
}

// Solve solves A·x = b into x (x and b may alias). It runs out of the
// LU's internal scratch and does not allocate.
func (f *LU) Solve(b, x []float64) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: Solve dimension mismatch")
	}
	// Apply permutation.
	tmp := f.work
	for i := 0; i < n; i++ {
		tmp[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := tmp[i]
		for j := 0; j < i; j++ {
			s -= row[j] * tmp[j]
		}
		tmp[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := tmp[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * tmp[j]
		}
		tmp[i] = s / row[i]
	}
	copy(x, tmp)
}

// SolveMatInto solves A·X = B for a full right-hand-side matrix,
// writing X into dst (reshaped as needed; dst must not alias b). The
// substitutions run blocked over row bands — the inter-band work is
// GEMM — so wide right-hand sides run at matrix-multiply throughput
// rather than column-at-a-time Solve speed.
func (f *LU) SolveMatInto(dst, b *Matrix) *Matrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("linalg: SolveMat dims %dx%d × %dx%d", n, n, b.Rows, b.Cols))
	}
	dst.reshapeNoClear(n, b.Cols)
	for i := 0; i < n; i++ {
		copy(dst.Row(i), b.Row(f.piv[i]))
	}
	f.solveBlocked(dst)
	return dst
}

// InverseInto computes A⁻¹ into dst (reshaped as needed) without
// allocating beyond dst's backing array and f's reusable workspace.
func (f *LU) InverseInto(dst *Matrix) *Matrix {
	if !useAsm {
		return f.InverseIntoRef(dst)
	}
	n := f.lu.Rows
	dst.Reshape(n, n)
	// dst starts as P·I: row i of the permuted identity.
	for i := 0; i < n; i++ {
		dst.Set(i, f.piv[i], 1)
	}
	f.solveBlocked(dst)
	return dst
}

// Inverse computes A⁻¹ into a fresh matrix.
func (f *LU) Inverse() *Matrix {
	return f.InverseInto(NewMatrix(f.lu.Rows, f.lu.Rows))
}

// solveBlocked runs L·U·X = X' in place over all columns of x:
// a blocked forward substitution with L (unit diagonal) followed by a
// blocked back substitution with U. Within a band the substitution is
// row axpy work; across bands it is one GEMM per band, which is where
// the O(n³) lands.
func (f *LU) solveBlocked(x *Matrix) {
	lu := f.lu
	n := lu.Rows
	w := x.Cols
	if f.buf == nil {
		f.buf = new(gemmBuf)
	}
	par := f.par()
	// Forward: X[band] -= L[band, 0:k]·X[0:k], then in-band solve.
	for k := 0; k < n; k += luPanel {
		ke := min(k+luPanel, n)
		if k > 0 {
			gemmBlock(x, k, 0, lu, k, 0, x, 0, 0, ke-k, k, w, gemmSub, par, f.buf)
		}
		for i := k + 1; i < ke; i++ {
			lrow := lu.Row(i)
			dst := x.Row(i)
			for j := k; j < i; j++ {
				fac := lrow[j]
				if fac == 0 {
					continue
				}
				src := x.Row(j)
				if useAsm && w >= 8 {
					axpyAsm(-fac, &src[0], &dst[0], w)
					continue
				}
				for t, v := range src {
					dst[t] -= fac * v
				}
			}
		}
	}
	// Backward: X[band] -= U[band, ke:n]·X[ke:n], then in-band solve
	// with the diagonal divisions.
	start := (n - 1) / luPanel * luPanel
	for k := start; k >= 0; k -= luPanel {
		ke := min(k+luPanel, n)
		if ke < n {
			gemmBlock(x, k, 0, lu, k, ke, x, ke, 0, ke-k, n-ke, w, gemmSub, par, f.buf)
		}
		for i := ke - 1; i >= k; i-- {
			urow := lu.Row(i)
			dst := x.Row(i)
			for j := i + 1; j < ke; j++ {
				fac := urow[j]
				if fac == 0 {
					continue
				}
				src := x.Row(j)
				if useAsm && w >= 8 {
					axpyAsm(-fac, &src[0], &dst[0], w)
					continue
				}
				for t, v := range src {
					dst[t] -= fac * v
				}
			}
			inv := 1 / urow[i]
			for t := range dst {
				dst[t] *= inv
			}
		}
	}
}

// Det returns the determinant from the factorisation.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Invert is a convenience wrapper: Factor + Inverse.
func Invert(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}
