package linalg

import (
	"fmt"
	"math"
	"testing"
)

// awkwardSizes stresses every edge of the blocking machinery: the
// trivial 1×1, sizes below/at/above the micro-kernel shape (4×8), the
// LU panel width (32), the GEMM cache blocks (128/256/512), primes,
// and one-past-a-power-of-two (257 crosses the KC panel boundary).
var awkwardSizes = []int{1, 2, 3, 5, 7, 8, 9, 13, 31, 32, 33, 64, 97, 127, 128, 129, 257}

func randFilled(rows, cols int, seed uint64) *Matrix {
	s := seed
	next := func() float64 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return float64(s*0x2545f4914f6cdd1d%1000)/1000 - 0.5
	}
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = next()
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

// TestPackedMulMatchesReference pits the packed micro-kernel GEMM
// against the scalar reference over rectangular shapes that are not
// multiples of the micro-kernel or cache-block sizes.
func TestPackedMulMatchesReference(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {1, 257, 1}, {3, 5, 7}, {4, 8, 8}, {5, 9, 17},
		{31, 33, 29}, {63, 64, 65}, {127, 100, 129}, {256, 256, 256},
		{257, 31, 130}, {130, 257, 61}, {300, 64, 300},
	}
	for _, sh := range shapes {
		a := randFilled(sh.m, sh.k, uint64(sh.m*1000+sh.k))
		b := randFilled(sh.k, sh.n, uint64(sh.k*1000+sh.n))
		want := MulIntoRef(NewMatrix(1, 1), a, b)
		got := MulInto(NewMatrix(1, 1), a, b)
		if got.Rows != sh.m || got.Cols != sh.n {
			t.Fatalf("%v: shape %dx%d", sh, got.Rows, got.Cols)
		}
		if d := maxAbsDiff(want.Data, got.Data); d > 1e-9 {
			t.Errorf("%dx%dx%d: packed vs reference differs by %g", sh.m, sh.k, sh.n, d)
		}
	}
}

// TestBlockedFactorMatchesReference checks the blocked LU against the
// unblocked scalar elimination on every awkward size: same pivot
// sequence, matching determinant, and solves that agree to 1e-9.
func TestBlockedFactorMatchesReference(t *testing.T) {
	for _, n := range awkwardSizes {
		a := randomDiagDominant(n, randFilled(1, 2*n+3, uint64(n)).Data)
		ref := NewLU(n)
		if err := ref.FactorIntoRef(a); err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		blk := NewLU(n)
		if err := blk.FactorInto(a); err != nil {
			t.Fatalf("n=%d: blocked: %v", n, err)
		}
		for i := range ref.piv {
			if ref.piv[i] != blk.piv[i] {
				t.Fatalf("n=%d: pivot sequence diverged at %d", n, i)
			}
		}
		if rd, bd := ref.Det(), blk.Det(); math.Abs(rd-bd) > 1e-9*math.Max(1, math.Abs(rd)) {
			t.Errorf("n=%d: det %g vs %g", n, rd, bd)
		}
		b := randFilled(1, n, uint64(n)+7).Data
		xr, xb := make([]float64, n), make([]float64, n)
		ref.Solve(b, xr)
		blk.Solve(b, xb)
		if d := maxAbsDiff(xr, xb); d > 1e-9 {
			t.Errorf("n=%d: solve differs by %g", n, d)
		}
	}
}

// TestBlockedInverseMatchesReference checks the blocked multi-RHS
// substitution against the column-at-a-time reference, and that both
// actually invert: A·A⁻¹ ≈ I.
func TestBlockedInverseMatchesReference(t *testing.T) {
	for _, n := range awkwardSizes {
		a := randomDiagDominant(n, randFilled(1, 2*n+5, uint64(n)*3+1).Data)
		f, err := Factor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref := f.InverseIntoRef(NewMatrix(1, 1))
		blk := f.InverseInto(NewMatrix(1, 1))
		if d := maxAbsDiff(ref.Data, blk.Data); d > 1e-9 {
			t.Errorf("n=%d: blocked inverse differs from reference by %g", n, d)
		}
		prod := Mul(a, blk)
		worst := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if d := math.Abs(prod.At(i, j) - want); d > worst {
					worst = d
				}
			}
		}
		if worst > 1e-8 {
			t.Errorf("n=%d: A·A⁻¹ off identity by %g", n, worst)
		}
	}
}

// TestSolveMatMatchesSolve: the blocked multi-RHS solve must agree
// with the single-RHS Solve column by column.
func TestSolveMatMatchesSolve(t *testing.T) {
	for _, n := range []int{1, 7, 33, 129} {
		a := randomDiagDominant(n, randFilled(1, n+9, uint64(n)*5+2).Data)
		f, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		rhs := randFilled(n, n, uint64(n)+99)
		x := f.SolveMatInto(NewMatrix(1, 1), rhs)
		col := make([]float64, n)
		got := make([]float64, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				col[i] = rhs.At(i, j)
			}
			f.Solve(col, got)
			for i := 0; i < n; i++ {
				if d := math.Abs(x.At(i, j) - got[i]); d > 1e-9 {
					t.Fatalf("n=%d: column %d row %d differs by %g", n, j, i, d)
				}
			}
		}
	}
}

// TestSingularDetectedBlocked: exactly dependent rows must surface
// ErrSingular from both the blocked and reference paths, wherever the
// dependency sits relative to the panel boundaries.
func TestSingularDetectedBlocked(t *testing.T) {
	for _, n := range []int{2, 33, 67, 129} {
		for _, dup := range []int{0, n / 2, n - 1} {
			a := randomDiagDominant(n, randFilled(1, n+3, uint64(n*31+dup)).Data)
			src := (dup + 1) % n
			copy(a.Row(dup), a.Row(src)) // two identical rows
			blk := NewLU(n)
			if err := blk.FactorInto(a); err == nil {
				t.Errorf("n=%d dup=%d: blocked path missed singularity", n, dup)
			}
			ref := NewLU(n)
			if err := ref.FactorIntoRef(a); err == nil {
				t.Errorf("n=%d dup=%d: reference path missed singularity", n, dup)
			}
		}
	}
}

// TestParallelKernelsAreDeterministic: the tile fan-out must be
// byte-identical for every worker count — the property the reach
// engine's parallel == serial guarantee rests on. Run under -race this
// also proves the disjoint-tile claim.
func TestParallelKernelsAreDeterministic(t *testing.T) {
	const n = 300 // > gemmParMinRows so the fan-out actually engages
	a := randFilled(n, n, 11)
	b := randFilled(n, n, 13)
	serialMul := MulIntoOpt(NewMatrix(1, 1), a, b, 1, nil)
	ws := NewWorkspace()
	for _, workers := range []int{2, 3, 8} {
		got := MulIntoOpt(NewMatrix(1, 1), a, b, workers, ws)
		for i := range serialMul.Data {
			if serialMul.Data[i] != got.Data[i] {
				t.Fatalf("workers=%d: MulIntoOpt diverged at %d", workers, i)
			}
		}
	}

	dd := randomDiagDominant(n, randFilled(1, n, 17).Data)
	serial := NewLU(n)
	if err := serial.FactorInto(dd); err != nil {
		t.Fatal(err)
	}
	serialInv := serial.InverseInto(NewMatrix(1, 1))
	for _, workers := range []int{2, 4} {
		par := NewLU(n)
		par.Workers = workers
		if err := par.FactorInto(dd); err != nil {
			t.Fatal(err)
		}
		for i := range serial.lu.Data {
			if serial.lu.Data[i] != par.lu.Data[i] {
				t.Fatalf("workers=%d: blocked LU diverged at %d", workers, i)
			}
		}
		inv := par.InverseInto(NewMatrix(1, 1))
		for i := range serialInv.Data {
			if serialInv.Data[i] != inv.Data[i] {
				t.Fatalf("workers=%d: inverse diverged at %d", workers, i)
			}
		}
	}
}

// TestAxpyDotMatchScalar pins the vector kernels against plain loops.
func TestAxpyDotMatchScalar(t *testing.T) {
	for _, n := range []int{1, 15, 16, 17, 64, 100, 257} {
		x := randFilled(1, n, uint64(n)).Data
		y := randFilled(1, n, uint64(n)+1).Data
		want := 0.0
		for i := range x {
			want += x[i] * y[i]
		}
		if d := math.Abs(Dot(x, y) - want); d > 1e-9 {
			t.Errorf("n=%d: Dot off by %g", n, d)
		}
		yc := append([]float64(nil), y...)
		Axpy(0.75, x, yc)
		for i := range yc {
			if d := math.Abs(yc[i] - (y[i] + 0.75*x[i])); d > 1e-12 {
				t.Errorf("n=%d: Axpy off by %g at %d", n, d, i)
			}
		}
	}
}

// TestPackedPathsZeroAlloc extends the allocation pins to the packed
// kernels: once buffers are warm, the blocked GEMM/LU/inverse/solve
// paths allocate nothing — whether the packing buffers come from a
// Workspace or an LU's internal workspace.
func TestPackedPathsZeroAlloc(t *testing.T) {
	const n = 64 // large enough that the packed path (not the scalar fallback) runs
	a := randomDiagDominant(n, randFilled(1, n, 3).Data)
	b := randFilled(n, n, 5)
	ws := NewWorkspace()
	dst := NewMatrix(n, n)
	f := NewLU(n)
	inv := NewMatrix(n, n)
	x := NewMatrix(n, n)

	cases := map[string]func(){
		"MulIntoOpt/ws": func() { MulIntoOpt(dst, a, b, 1, ws) },
		"FactorInto": func() {
			if err := f.FactorInto(a); err != nil {
				t.Fatal(err)
			}
		},
		"InverseInto":  func() { f.InverseInto(inv) },
		"SolveMatInto": func() { f.SolveMatInto(x, b) },
	}
	if !raceEnabled {
		// sync.Pool drops Puts at random under -race; the pool-backed
		// entry point is only pinnable in a normal build.
		cases["MulInto/pool"] = func() { MulInto(dst, a, b) }
	}
	for name, fn := range cases {
		fn() // warm buffers
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per run, want 0", name, allocs)
		}
	}
}

// TestMulIntoReshapesWithoutClearGarbage: MulInto skips Reshape's
// zeroing; a dst recycled from a larger, dirty matrix must still come
// out exactly right (every element is written).
func TestMulIntoReshapesWithoutClearGarbage(t *testing.T) {
	dirty := NewMatrix(90, 90)
	for i := range dirty.Data {
		dirty.Data[i] = math.NaN()
	}
	a := randFilled(65, 33, 21)
	b := randFilled(33, 41, 22)
	got := MulInto(dirty, a, b)
	want := MulIntoRef(NewMatrix(1, 1), a, b)
	if d := maxAbsDiff(want.Data, got.Data); d > 1e-9 || math.IsNaN(d) {
		t.Fatalf("recycled dst differs by %v", d)
	}
}

func BenchmarkGemmShapes(b *testing.B) {
	// Edge-heavy shape: exercises the bounce-tile path.
	a := randFilled(257, 129, 1)
	bb := randFilled(129, 255, 2)
	dst := NewMatrix(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, a, bb)
	}
	_ = fmt.Sprint(dst.Rows)
}
