package linalg

import (
	"testing"

	"repro/internal/binio"
)

func TestMatrixRoundTrip(t *testing.T) {
	m := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2.5, -3, 0, 1e-300, 9}}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Matrix
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.Rows != 2 || got.Cols != 3 {
		t.Fatalf("shape %dx%d", got.Rows, got.Cols)
	}
	for i, v := range m.Data {
		if got.Data[i] != v {
			t.Fatalf("element %d: %v != %v", i, got.Data[i], v)
		}
	}
}

// TestMatrixUnmarshalOverflowShape: a crafted shape whose product
// overflows int must be a clean decode error, not a make() panic —
// the disk tier's "corruption is a miss, never fatal" contract.
func TestMatrixUnmarshalOverflowShape(t *testing.T) {
	w := binio.NewWriter(0)
	w.U8(1)              // matrixVersion
	w.Uvarint(1 << 33)   // rows
	w.Uvarint(1<<30 + 1) // cols: product wraps negative as int64*int64 -> int
	var m Matrix
	if err := m.UnmarshalBinary(w.Bytes()); err == nil {
		t.Fatal("overflowing shape must error")
	}
	w2 := binio.NewWriter(0)
	w2.U8(1)
	w2.Uvarint(4)
	w2.Uvarint(4) // claims 16 elements, provides none
	if err := m.UnmarshalBinary(w2.Bytes()); err == nil {
		t.Fatal("undersized payload must error")
	}
}
